package coordattack_test

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	coordattack "repro"
)

func ExampleClassify() {
	for _, name := range []string{"S0", "C1", "S1", "R1", "AlmostFair"} {
		s, _ := coordattack.SchemeByName(name)
		v, _ := coordattack.Classify(s)
		fmt.Printf("%-10s solvable=%-5v minRounds=%d\n", name, v.Solvable, v.MinRounds)
	}
	// Output:
	// S0         solvable=true  minRounds=1
	// C1         solvable=true  minRounds=2
	// S1         solvable=true  minRounds=2
	// R1         solvable=false minRounds=-1
	// AlmostFair solvable=true  minRounds=-1
}

func ExampleRun() {
	s := coordattack.AlmostFair()
	v, _ := coordattack.Classify(s)
	white, black, _ := coordattack.NewAlgorithm(v)
	tr := coordattack.Run(white, black, [2]coordattack.Value{0, 1},
		coordattack.MustScenario("w.(.)"), 100)
	fmt.Println(tr.Decisions[0], tr.Decisions[1], coordattack.Check(tr).OK())
	// Output: 1 1 true
}

func ExampleIndex() {
	w := coordattack.MustWord("w.b")
	fmt.Println(coordattack.Index(w))
	// Output: 23
}

func ExampleNetworkSolvable() {
	g := coordattack.Barbell(4, 2) // c(G)=2 < deg(G)=3: the open regime
	fmt.Println(coordattack.NetworkSolvable(g, 1), coordattack.NetworkSolvable(g, 2))
	// Output: true false
}

func TestFacadeBasics(t *testing.T) {
	if len(coordattack.SchemeNames()) < 9 {
		t.Error("scheme registry too small")
	}
	if _, err := coordattack.SchemeByName("nope"); err == nil {
		t.Error("unknown scheme")
	}
	w, err := coordattack.ParseWord(".wb")
	if err != nil || w.Len() != 3 {
		t.Error("ParseWord")
	}
	if _, err := coordattack.ParseScenario("((("); err == nil {
		t.Error("ParseScenario must fail")
	}
	if k, _ := coordattack.IndexInt64(coordattack.MustWord("w.b")); k != 23 {
		t.Error("IndexInt64")
	}
	if got := coordattack.UnIndex(3, big.NewInt(23)); !got.Equal(coordattack.MustWord("w.b")) {
		t.Error("UnIndex")
	}
	if next, ok := coordattack.AdjacentWord(coordattack.MustWord("bb")); !ok || !next.Equal(coordattack.MustWord("b.")) {
		t.Error("AdjacentWord")
	}
	if !coordattack.IsSpecialPair(coordattack.MustScenario("w(b)"), coordattack.MustScenario(".(b)")) {
		t.Error("IsSpecialPair")
	}
	if p, ok := coordattack.SpecialPartner(coordattack.MustScenario("w(b)")); !ok || !p.Equal(coordattack.MustScenario(".(b)")) {
		t.Error("SpecialPartner")
	}
	if coordattack.RoleOf(coordattack.MustScenario("(w)")) != coordattack.RoleConstant {
		t.Error("RoleOf")
	}
	if !coordattack.InCanonicalMinimalObstruction(coordattack.MustScenario("(.)")) {
		t.Error("fair scenarios belong to the minimal obstruction")
	}
}

func TestNewAlgorithmErrors(t *testing.T) {
	v, err := coordattack.Classify(coordattack.R1())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coordattack.NewAlgorithm(v); err == nil {
		t.Error("obstruction must not yield an algorithm")
	}
	if _, _, err := coordattack.NewAlgorithm(nil); err == nil {
		t.Error("nil verdict")
	}
}

func TestSchemeCombinators(t *testing.T) {
	u := coordattack.UnionSchemes("u", coordattack.TWhite(), coordattack.TBlack())
	if eq, _ := coordattack.SchemesEquivalent(u, coordattack.S1()); !eq {
		t.Error("TW ∪ TB = S1")
	}
	i := coordattack.IntersectSchemes("i", coordattack.TWhite(), coordattack.TBlack())
	if eq, _ := coordattack.SchemesEquivalent(i, coordattack.S0()); !eq {
		t.Error("TW ∩ TB = S0")
	}
	m := coordattack.MinusScenarios("m", coordattack.R1(), coordattack.MustScenario("(b)"))
	if eq, _ := coordattack.SchemesEquivalent(m, coordattack.AlmostFair()); !eq {
		t.Error("R1 \\ (b) = AlmostFair")
	}
}

func TestEndToEndSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"S0", "TW", "TB", "C1", "S1", "Fair", "AlmostFair"} {
		s, err := coordattack.SchemeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		v, err := coordattack.Classify(s)
		if err != nil || !v.Solvable {
			t.Fatalf("%s: %v %+v", name, err, v)
		}
		for trial := 0; trial < 10; trial++ {
			sc, ok := s.SampleScenario(rng, rng.Intn(6))
			if !ok {
				t.Fatal("sample")
			}
			for _, inputs := range [][2]coordattack.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
				white, black, err := coordattack.NewAlgorithm(v)
				if err != nil {
					t.Fatal(err)
				}
				tr := coordattack.Run(white, black, inputs, sc, 300)
				if !coordattack.Check(tr).OK() {
					t.Fatalf("%s under %s: %s", name, sc, tr)
				}
				// The concurrent runner agrees.
				w2, b2, _ := coordattack.NewAlgorithm(v)
				tr2 := coordattack.RunConcurrent(w2, b2, inputs, sc, 300)
				if !tr.Equal(tr2) {
					t.Fatalf("%s: runner divergence", name)
				}
				if v.MinRounds != coordattack.Unbounded {
					for _, dr := range tr.DecisionRound {
						if dr > v.MinRounds {
							t.Fatalf("%s: decided at %d > MinRounds %d", name, dr, v.MinRounds)
						}
					}
				}
			}
		}
	}
}

func TestSolvableInRoundsFacade(t *testing.T) {
	if coordattack.SolvableInRounds(coordattack.R1(), 3) {
		t.Error("Γ^ω is never bounded-round solvable")
	}
	if !coordattack.SolvableInRounds(coordattack.S1(), 2) {
		t.Error("S1 is 2-round solvable")
	}
}

func TestWorstCaseAdversaryFacade(t *testing.T) {
	s := coordattack.AlmostFair()
	adv := coordattack.WorstCaseAdversary(s, coordattack.ConstantScenario(coordattack.LossBlack))
	white := coordattack.NewAW(coordattack.ConstantScenario(coordattack.LossBlack))
	black := coordattack.NewAW(coordattack.ConstantScenario(coordattack.LossBlack))
	tr := coordattack.RunAdversary(white, black, [2]coordattack.Value{0, 1}, adv, 25)
	if !tr.TimedOut {
		t.Error("worst-case adversary should stall A_w indefinitely on AlmostFair")
	}
}

func TestNetworkFacade(t *testing.T) {
	g := coordattack.Barbell(3, 1)
	cut, ok := coordattack.MinCut(g)
	if !ok || cut.Size() != 1 {
		t.Fatalf("cut: %+v", cut)
	}
	if coordattack.EdgeConnectivity(g) != 1 {
		t.Error("c(barbell(3,1)) = 1")
	}
	inputs := make([]coordattack.Value, g.N())
	inputs[0] = 1
	tr := coordattack.RunNetwork(g, coordattack.NewFloodNodes(g), inputs, coordattack.NoDrops(), g.N())
	if !coordattack.CheckNetwork(tr).OK() {
		t.Fatalf("flood failed: %s", tr)
	}
	// Budgeted random losses below connectivity.
	g2 := coordattack.Hypercube(3)
	tr = coordattack.RunNetwork(g2, coordattack.NewFloodNodes(g2),
		make([]coordattack.Value, g2.N()),
		coordattack.RandomLossAdversary(2, rand.New(rand.NewSource(3))), g2.N())
	if !coordattack.CheckNetwork(tr).OK() {
		t.Fatalf("flood under budget failed: %s", tr)
	}
	// Γ_C adversary at the connectivity bound breaks flooding.
	in := make([]coordattack.Value, g.N())
	for _, v := range cut.SideB {
		in[v] = 1
	}
	tr = coordattack.RunNetwork(g, coordattack.NewFloodNodes(g), in,
		coordattack.CutAdversary(cut, coordattack.ConstantScenario(coordattack.LossWhite)), g.N())
	if coordattack.CheckNetwork(tr).Agreement {
		t.Error("cut adversary at f = c(G) must break agreement")
	}
	// Algorithm 4 on the cut with the almost-fair witness.
	nodes := coordattack.NewCutTwoPhaseNodes(g, cut, coordattack.ConstantScenario(coordattack.LossBlack))
	tr = coordattack.RunNetwork(g, nodes, in,
		coordattack.CutAdversary(cut, coordattack.MustScenario("w.(.)")), 60)
	if !coordattack.CheckNetwork(tr).OK() {
		t.Fatalf("Algorithm 4 failed: %s", tr)
	}
	// Emulation lifting compiles into the two-process world.
	white := coordattack.NewEmulation(g, cut, func() coordattack.Node { return coordattack.NewFloodNodes(g)[0] })
	black := coordattack.NewEmulation(g, cut, func() coordattack.Node { return coordattack.NewFloodNodes(g)[0] })
	tw := coordattack.Run(white, black, [2]coordattack.Value{0, 1}, coordattack.MustScenario("(.)"), g.N()+2)
	if tw.TimedOut {
		t.Fatalf("emulated flooding timed out: %s", tw)
	}
	if coordattack.NetworkSolvable(coordattack.PathGraph(3), 1) {
		t.Error("path with f=1 unsolvable")
	}
	if !coordattack.NetworkSolvable(coordattack.Complete(4), 2) {
		t.Error("K4 with f=2 solvable")
	}
	disc := coordattack.NewGraph("disc", 3)
	if coordattack.NetworkSolvable(disc, 0) {
		t.Error("disconnected graphs are unsolvable")
	}
	if coordattack.TargetedCutAdversary(cut, 0).Drops(1, g) == nil {
		// Zero-budget adversary returns an empty (possibly nil) map.
		t.Log("targeted cut with f=0 drops nothing")
	}
}

func TestDecreasingObstructionsFacade(t *testing.T) {
	seq := coordattack.DecreasingObstructions(1)
	if len(seq) != 2 {
		t.Fatal("sequence length")
	}
	v, err := coordattack.Classify(seq[1])
	if err != nil || v.Solvable {
		t.Error("L_1 must be an obstruction")
	}
	window := coordattack.UnfairWindow(2)
	if len(coordattack.PairGraph(window)) == 0 {
		t.Error("pair graph empty")
	}
}

func TestTopologyAndValencyFacade(t *testing.T) {
	cx := coordattack.ProtocolComplex(coordattack.R1(), 3)
	if !cx.Connected || cx.Vertices != cx.Edges {
		t.Errorf("Γ^ω complex at r=3 should be a connected cycle: %+v", cx)
	}
	v, err := coordattack.Classify(coordattack.S1())
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (coordattack.Process, coordattack.Process) {
		w, b, err := coordattack.NewAlgorithm(v)
		if err != nil {
			t.Fatal(err)
		}
		return w, b
	}
	an := coordattack.NewValencyAnalyzer(factory, coordattack.S1(), [2]coordattack.Value{0, 1}, 4)
	if got := an.Valency(coordattack.MustWord("")); got != coordattack.Bivalent {
		t.Errorf("ε valency = %v", got)
	}
	if got := an.Valency(coordattack.MustWord("b")); got != coordattack.Valent0 {
		t.Errorf("valency(b) = %v", got)
	}
	if p, ok := coordattack.MinRoundsComplete(3, 1, 3); !ok || p != 2 {
		t.Errorf("K3 f=1 horizon %d", p)
	}
	if coordattack.AnalyzeComplete(2, 1, 3) {
		t.Error("two generals with f=1 stay unsolvable")
	}
}

func ExampleParseScheme() {
	s, _ := coordattack.ParseScheme(`[.w]^w | [.b]^w`)
	v, _ := coordattack.Classify(s)
	fmt.Println(v.Solvable, v.MinRounds)
	// Output: true 2
}

func ExampleSynthesize() {
	// Compile a round-optimal algorithm for the all-or-nothing channel
	// with one blackout — a double-omission scheme Theorem III.8 cannot
	// classify, but the full-information analysis can solve.
	s := coordattack.BlackoutBudget(1)
	white, black, ok := coordattack.Synthesize(s, 2)
	fmt.Println(ok)
	tr := coordattack.Run(white, black, [2]coordattack.Value{1, 0},
		coordattack.MustScenario("x(.)"), 5)
	fmt.Println(tr.Decisions[0], tr.Decisions[1], tr.Rounds)
	// Output:
	// true
	// 0 0 2
}

func ExampleProtocolComplex() {
	cx := coordattack.ProtocolComplex(coordattack.R1(), 2)
	fmt.Printf("V=%d E=%d components=%d\n", cx.Vertices, cx.Edges, cx.Components)
	// Output: V=36 E=36 components=1
}

func ExampleWorstCaseAdversary() {
	// The adversary that tracks the excluded scenario stalls A_w forever
	// on the almost-fair scheme (no bounded-round algorithm exists).
	s := coordattack.AlmostFair()
	w := coordattack.ConstantScenario(coordattack.LossBlack)
	tr := coordattack.RunAdversary(coordattack.NewAW(w), coordattack.NewAW(w),
		[2]coordattack.Value{0, 1}, coordattack.WorstCaseAdversary(s, w), 20)
	fmt.Println(tr.TimedOut)
	// Output: true
}

func TestAnalyzeRoundsFacade(t *testing.T) {
	an := coordattack.AnalyzeRounds(coordattack.S1(), 2)
	if !an.Solvable || an.MixedComponents != 0 || an.Components == 0 || an.Configs == 0 {
		t.Errorf("AnalyzeRounds(S1, 2) = %+v", an)
	}
	if coordattack.AnalyzeRounds(coordattack.R1(), 2).Solvable {
		t.Error("R1 must not be 2-round solvable")
	}
	if an.Solvable != coordattack.SolvableInRounds(coordattack.S1(), 2) {
		t.Error("AnalyzeRounds and SolvableInRounds disagree")
	}
}

func TestUnIndexCheckedFacade(t *testing.T) {
	w, err := coordattack.UnIndexChecked(2, big.NewInt(4))
	if err != nil || w.String() != ".." {
		t.Errorf("UnIndexChecked(2, 4) = %v, %v", w, err)
	}
	if _, err := coordattack.UnIndexChecked(2, big.NewInt(9)); err == nil {
		t.Error("out-of-range index should error")
	}
	w, err = coordattack.UnIndexInt64Checked(2, 4)
	if err != nil || w.String() != ".." {
		t.Errorf("UnIndexInt64Checked(2, 4) = %v, %v", w, err)
	}
	if _, err := coordattack.UnIndexInt64Checked(40, 0); err == nil {
		t.Error("length past the int64-safe bound should error")
	}
}

func TestChaosFacade(t *testing.T) {
	s := coordattack.S1()
	algo, err := coordattack.AWForScheme(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coordattack.RunChaosCampaign(coordattack.ChaosConfig{
		Scheme: s, Algo: algo, Executions: 100, Seed: 9, CheckInvariant: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("A_w campaign on S1 found violations:\n%s", rep)
	}
	if _, err := coordattack.AWForScheme(coordattack.R1()); err == nil {
		t.Error("AWForScheme(R1) should refuse: R1 is an obstruction")
	}

	g := coordattack.Complete(4)
	nrep, err := coordattack.RunNetworkChaosCampaign(coordattack.NetChaosConfig{
		Graph:      g,
		NewNodes:   func() []coordattack.Node { return coordattack.NewFloodNodes(g) },
		Executions: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !nrep.OK() {
		t.Fatalf("network campaign found violations:\n%s", nrep)
	}

	// Hardened runners are reachable and interruptible from the facade.
	white, black, err := coordattack.NewAlgorithm(mustClassify(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ht := coordattack.RunHardened(context.Background(), white, black,
		[2]coordattack.Value{0, 1}, coordattack.MustScenario("w.(.)"), 100)
	if !coordattack.Check(ht.Trace).OK() || len(ht.Crashes) != 0 || ht.Interrupted {
		t.Errorf("hardened run: %+v", ht)
	}
	nht := coordattack.RunNetworkConcurrentHardened(context.Background(), g,
		coordattack.NewFloodNodes(g), []coordattack.Value{1, 0, 1, 1},
		coordattack.RandomLossAdversarySeed(1, 6), g.N()+2)
	if !coordattack.CheckNetwork(nht.Trace).OK() {
		t.Errorf("hardened network run failed consensus: %+v", nht.Trace)
	}

	if coordattack.DeriveSeed(1, 2) == coordattack.DeriveSeed(1, 3) {
		t.Error("DeriveSeed should separate executions")
	}
	if coordattack.NewSeededRand(5).Int63() != coordattack.NewSeededRand(5).Int63() {
		t.Error("NewSeededRand not deterministic")
	}
}

func mustClassify(t *testing.T, s *coordattack.Scheme) *coordattack.Verdict {
	t.Helper()
	v, err := coordattack.Classify(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
