package coordattack

import (
	"context"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nchain"
	"repro/internal/netconsensus"
	"repro/internal/netsim"
	"repro/internal/omission"
)

// Network-facing API: Section V of the paper — consensus on synchronous
// communication networks of arbitrary topology with at most f message
// losses per round.

type (
	// Graph is a simple undirected communication network.
	Graph = graph.Graph
	// Edge is an undirected edge.
	Edge = graph.Edge
	// DirEdge is a directed message channel.
	DirEdge = graph.DirEdge
	// Cut is a minimum edge cut with connected sides.
	Cut = graph.Cut
	// Node is a deterministic synchronous network process.
	Node = netsim.Node
	// NetAdversary drops directed messages each round.
	NetAdversary = netsim.Adversary
	// NetTrace records a network execution.
	NetTrace = netsim.Trace
	// NetReport is the network consensus property check.
	NetReport = netsim.Report
)

// Graph generators.
var (
	// NewGraph creates an empty graph with n vertices.
	NewGraph = graph.New
	// Cycle returns C_n.
	Cycle = graph.Cycle
	// PathGraph returns P_n.
	PathGraph = graph.Path
	// Complete returns K_n.
	Complete = graph.Complete
	// CompleteBipartite returns K_{a,b}.
	CompleteBipartite = graph.CompleteBipartite
	// Grid returns the w×h grid.
	Grid = graph.Grid
	// Hypercube returns Q_d.
	Hypercube = graph.Hypercube
	// Barbell returns two K_k cliques joined by the given number of
	// bridges — the c(G) < deg(G) family of the open question settled by
	// Theorem V.1.
	Barbell = graph.Barbell
	// Theta returns the two-hub multi-path graph.
	Theta = graph.Theta
	// RandomGraph returns a connected G(n,p) sample.
	RandomGraph = graph.Random
	// Wheel returns W_n (a hub joined to a cycle).
	Wheel = graph.Wheel
	// Star returns K_{1,n−1}.
	Star = graph.Star
	// Petersen returns the Petersen graph.
	Petersen = graph.Petersen
	// BinaryTree returns the complete binary tree on n vertices.
	BinaryTree = graph.BinaryTree
	// ParseEdgeList builds a graph from "a-b,c-d,…" notation.
	ParseEdgeList = graph.ParseEdgeList
)

// VertexConnectivity returns κ(G) (for comparison with c(G): Theorem V.1
// is about edge connectivity; Whitney's inequality gives κ ≤ c ≤ δ).
func VertexConnectivity(g *Graph) int { return g.VertexConnectivity() }

// NetworkSolvable answers Theorem V.1: consensus on G with at most f
// message losses per round is solvable iff f < c(G).
func NetworkSolvable(g *Graph, f int) bool {
	return g.Connected() && f < g.EdgeConnectivity()
}

// EdgeConnectivity returns c(G).
func EdgeConnectivity(g *Graph) int { return g.EdgeConnectivity() }

// NetAnalysisRequest selects an n-process bounded-round solvability
// computation for the unified engine entry point: K_N (Graph nil) or an
// arbitrary topology, at a fixed horizon or as an incremental MinRounds
// search. See nchain.Request for all fields.
type NetAnalysisRequest = nchain.Request

// NetAnalysisReport is the outcome of AnalyzeNet, with aggregated
// EngineStats for the whole request.
type NetAnalysisReport = nchain.Report

// AnalyzeNet is the context-first engine entry point for n-process
// bounded-round analysis (the exhaustive, all-algorithms form of
// Theorem V.1 on small instances). The legacy helpers AnalyzeComplete,
// MinRoundsComplete, AnalyzeGraphConsensus, and MinRoundsGraph delegate
// here.
func AnalyzeNet(ctx context.Context, req NetAnalysisRequest) (NetAnalysisReport, error) {
	return nchain.Analyze(ctx, req)
}

// MinCut returns a minimum edge cut with connected sides (the (A, B, C)
// partition of the Theorem V.1 proof).
func MinCut(g *Graph) (Cut, bool) { return g.MinCut() }

// NewFloodNodes builds the flooding consensus nodes (decide min after n−1
// rounds) — the possibility half of Theorem V.1 for f < c(G).
func NewFloodNodes(g *Graph) []Node { return netconsensus.NewFloodNodes(g) }

// NewCutTwoPhaseNodes builds Algorithm 4: designated cut endpoints run
// A_w across the cut, then broadcast inside the loss-free sides.
func NewCutTwoPhaseNodes(g *Graph, cut Cut, witness Source) []Node {
	return netconsensus.NewCutTwoPhaseNodes(g, cut, witness)
}

// NewEmulation lifts a network algorithm to a two-process algorithm
// (Algorithms 2/3): the process hosts one connected side of the cut.
func NewEmulation(g *Graph, cut Cut, makeNode func() Node) Process {
	return netconsensus.NewEmulation(g, cut, makeNode)
}

// RunNetwork executes nodes on a graph under a network adversary.
func RunNetwork(g *Graph, nodes []Node, inputs []Value, adv NetAdversary, maxRounds int) NetTrace {
	return netsim.Run(g, nodes, inputs, adv, maxRounds)
}

// CheckNetwork verifies uniform consensus on a network trace.
func CheckNetwork(t NetTrace) NetReport { return netsim.Check(t) }

// NoDrops is the failure-free adversary.
func NoDrops() NetAdversary { return netsim.NoDrops{} }

// RandomLossAdversary drops up to f random directed messages per round.
//
// Deprecated: prefer RandomLossAdversarySeed, which owns its random
// source, so a shared *rand.Rand cannot couple the adversary to other
// consumers and break replayability. This wrapper remains for callers
// that deliberately share a source.
func RandomLossAdversary(f int, rng *rand.Rand) NetAdversary {
	return netsim.RandomF{F: f, Rng: rng}
}

// RandomLossAdversarySeed drops up to f random directed messages per
// round from a private source derived from seed. Two adversaries built
// from the same seed play identical drop schedules, which is what chaos
// replay and the -seed CLI flags rely on; nothing in the library ever
// draws from the global math/rand state.
func RandomLossAdversarySeed(f int, seed int64) NetAdversary {
	return netsim.RandomF{F: f, Rng: rand.New(rand.NewSource(seed))}
}

// CutAdversary plays the Γ_C scheme of the impossibility proof, driven by
// a two-process scenario through ρ⁻¹: 'w' drops all SideA→SideB cut
// messages, 'b' all SideB→SideA.
func CutAdversary(cut Cut, src Source) NetAdversary {
	return netsim.CutScenario{Cut: cut, Src: src}
}

// TargetedCutAdversary drops f fixed cut edges A→B per round (the meanest
// budget-respecting adversary).
func TargetedCutAdversary(cut Cut, f int) NetAdversary {
	return netsim.TargetedCut{Cut: cut, F: f}
}

// ConstantScenario returns l^ω.
func ConstantScenario(l Letter) Scenario { return omission.Constant(l) }
