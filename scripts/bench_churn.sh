#!/usr/bin/env sh
# bench_churn.sh — measure the clustered coordinator through membership
# churn and record the result as BENCH_8.json.
#
# capbench -churn boots the self-contained cluster (3 backends + one
# coordinator with the health prober enabled), measures a healthy
# phase, then runs a churn phase: one backend is killed a quarter of
# the way in — the prober must eject it — and restarted at the halfway
# mark — the prober must readmit it and the ring must converge back to
# full membership. The phase's availability is the fraction of replies
# that were neither shed nor errors.
#
# Acceptance bars:
#   -availability-bar 0.99 — >= 99% of churn-phase requests answered
#   -p99-bar 2             — churn p99 within 2x the healthy p99
# plus the implicit convergence gate (>= 1 ejection, readmissions catch
# up to ejections, all backends routable again).
#
# The defaults are sized for a small CI box (the repo's reference
# machine is a single core); raise BENCH8_RPS / BENCH8_MAX_HORIZON on
# real hardware. Usage:
#
#   ./scripts/bench_churn.sh [bench8.json]
set -eu

cd "$(dirname "$0")/.."

OUT8="${1:-BENCH_8.json}"
RPS="${BENCH8_RPS:-60}"
DURATION="${BENCH8_DURATION:-4s}"
MAXH="${BENCH8_MAX_HORIZON:-6}"

go run ./cmd/capbench \
	-backends-n 3 -replicas 2 \
	-churn -slow-delay 0 \
	-rps "${RPS}" -duration "${DURATION}" -warmup 1s \
	-max-horizon "${MAXH}" \
	-p99-bar 2 -availability-bar 0.99 -out "${OUT8}"

AVAIL="$(sed -n 's/.*"availability": \([0-9.]*\).*/\1/p' "${OUT8}" | tail -n 1)"
RATIO="$(sed -n 's/.*"churnP99Ratio": \([0-9.]*\).*/\1/p' "${OUT8}" | head -n 1)"
echo "bench_churn: wrote ${OUT8} (churn availability ${AVAIL:-?} bar 0.99, churn/healthy p99 ratio ${RATIO:-?} bar 2)"
