#!/usr/bin/env sh
# bench_smoke.sh — measure the incremental MinRounds engine against the
# per-horizon restart strategy and record the result as BENCH_4.json.
#
# The benchmark sweeps R1 (never solvable, so both sides walk every
# horizon 0..maxR) and the acceptance bar is a ≥2× speedup: the restart
# side rebuilds interners, union-find, and the walk at every horizon,
# while the incremental side grows one frontier. Usage:
#
#   ./scripts/bench_smoke.sh [output.json]
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_4.json}"
MAXR=8
COUNT="${BENCH_COUNT:-3x}"

RAW="$(go test -run '^$' -bench '^BenchmarkMinRoundsIncrementalVsRestart$' -benchtime "${COUNT}" .)"
echo "${RAW}"

RESTART_NS="$(echo "${RAW}" | awk '/\/restart/ {print $3}')"
INCREMENTAL_NS="$(echo "${RAW}" | awk '/\/incremental/ {print $3}')"
if [ -z "${RESTART_NS}" ] || [ -z "${INCREMENTAL_NS}" ]; then
	echo "bench_smoke: benchmark output missing restart/incremental lines" >&2
	exit 1
fi

SPEEDUP="$(awk "BEGIN {printf \"%.2f\", ${RESTART_NS} / ${INCREMENTAL_NS}}")"
cat >"${OUT}" <<EOF
{
  "benchmark": "BenchmarkMinRoundsIncrementalVsRestart",
  "scheme": "R1",
  "max_horizon": ${MAXR},
  "restart_ns_per_op": ${RESTART_NS},
  "incremental_ns_per_op": ${INCREMENTAL_NS},
  "speedup": ${SPEEDUP}
}
EOF
echo "bench_smoke: wrote ${OUT} (speedup ${SPEEDUP}x)"

if ! awk "BEGIN {exit !(${SPEEDUP} >= 2.0)}"; then
	echo "bench_smoke: speedup ${SPEEDUP}x is below the 2x acceptance bar" >&2
	exit 1
fi
