#!/usr/bin/env sh
# bench_smoke.sh — measure the repo's MinRounds engines and record the
# results as BENCH_4.json and BENCH_5.json.
#
# BENCH_4: the incremental engine against the per-horizon restart
# strategy on R1 (never solvable, so both sides walk every horizon
# 0..maxR). Acceptance bar ≥2×: the restart side rebuilds interners,
# union-find, and the walk at every horizon, while the incremental side
# grows one frontier.
#
# BENCH_5: the hash-consed dedup engine in its shipped configuration
# against the frozen PR-4 baseline engine, same R1 MinRounds search at a
# deeper horizon (BENCH5_MAXR, default 13). Acceptance bar ≥5×; the
# measured frontier dedup ratio is recorded alongside (exactly 1.0 on
# R1, whose views are history-injective — see DESIGN.md).
#
# BENCH_6: the symbolic index-interval backend sweeping the R1
# MinRounds search to BENCH6_MAXR (default 40 — 4·3^40 configurations,
# beyond int64 and beyond any enumeration budget) against the flat-table
# enumerating engine at its own BENCH_5 horizon. Acceptance bars: the
# symbolic horizon must reach ≥25 and the symbolic sweep must still beat
# the 3×-shallower enumeration by ≥10×. The exact configuration count at
# the top horizon is recorded alongside. Usage:
#
#   ./scripts/bench_smoke.sh [bench4.json] [bench5.json] [bench6.json]
set -eu

cd "$(dirname "$0")/.."

OUT4="${1:-BENCH_4.json}"
OUT5="${2:-BENCH_5.json}"
OUT6="${3:-BENCH_6.json}"
MAXR=8
MAXR5="${BENCH5_MAXR:-13}"
MAXR6="${BENCH6_MAXR:-40}"
COUNT="${BENCH_COUNT:-3x}"

RAW="$(go test -run '^$' -bench '^BenchmarkMinRoundsIncrementalVsRestart$' -benchtime "${COUNT}" .)"
echo "${RAW}"

RESTART_NS="$(echo "${RAW}" | awk '/\/restart/ {print $3}')"
INCREMENTAL_NS="$(echo "${RAW}" | awk '/\/incremental/ {print $3}')"
if [ -z "${RESTART_NS}" ] || [ -z "${INCREMENTAL_NS}" ]; then
	echo "bench_smoke: benchmark output missing restart/incremental lines" >&2
	exit 1
fi

SPEEDUP="$(awk "BEGIN {printf \"%.2f\", ${RESTART_NS} / ${INCREMENTAL_NS}}")"
cat >"${OUT4}" <<EOF
{
  "benchmark": "BenchmarkMinRoundsIncrementalVsRestart",
  "scheme": "R1",
  "max_horizon": ${MAXR},
  "restart_ns_per_op": ${RESTART_NS},
  "incremental_ns_per_op": ${INCREMENTAL_NS},
  "speedup": ${SPEEDUP}
}
EOF
echo "bench_smoke: wrote ${OUT4} (speedup ${SPEEDUP}x)"

if ! awk "BEGIN {exit !(${SPEEDUP} >= 2.0)}"; then
	echo "bench_smoke: speedup ${SPEEDUP}x is below the 2x acceptance bar" >&2
	exit 1
fi

RAW5="$(BENCH5_MAXR="${MAXR5}" go test -run '^$' -bench '^BenchmarkMinRoundsDedupVsPR4$' -benchtime "${COUNT}" ./internal/chain/)"
echo "${RAW5}"

PR4_NS="$(echo "${RAW5}" | awk '/\/pr4/ {print $3}')"
DEDUP_NS="$(echo "${RAW5}" | awk '/\/dedup/ {print $3}')"
DEDUP_RATIO="$(echo "${RAW5}" | awk '/\/dedup/ {for (i = 1; i < NF; i++) if ($(i + 1) == "dedup_ratio") print $i}')"
if [ -z "${PR4_NS}" ] || [ -z "${DEDUP_NS}" ]; then
	echo "bench_smoke: benchmark output missing pr4/dedup lines" >&2
	exit 1
fi
DEDUP_RATIO="${DEDUP_RATIO:-0}"

SPEEDUP5="$(awk "BEGIN {printf \"%.2f\", ${PR4_NS} / ${DEDUP_NS}}")"
cat >"${OUT5}" <<EOF
{
  "benchmark": "BenchmarkMinRoundsDedupVsPR4",
  "scheme": "R1",
  "max_horizon": ${MAXR5},
  "pr4_ns_per_op": ${PR4_NS},
  "dedup_ns_per_op": ${DEDUP_NS},
  "dedup_ratio": ${DEDUP_RATIO},
  "speedup": ${SPEEDUP5}
}
EOF
echo "bench_smoke: wrote ${OUT5} (speedup ${SPEEDUP5}x, dedup ratio ${DEDUP_RATIO})"

if ! awk "BEGIN {exit !(${SPEEDUP5} >= 5.0)}"; then
	echo "bench_smoke: speedup ${SPEEDUP5}x is below the 5x acceptance bar" >&2
	exit 1
fi

RAW6="$(BENCH5_MAXR="${MAXR5}" BENCH6_MAXR="${MAXR6}" go test -run '^$' -bench '^BenchmarkMinRoundsSymbolicVsFlat$' -benchtime "${COUNT}" ./internal/chain/)"
echo "${RAW6}"

SYM_NS="$(echo "${RAW6}" | awk '/\/symbolic/ {for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") print $i}' | head -n 1)"
FLAT_NS="$(echo "${RAW6}" | awk '/\/flat/ {for (i = 1; i < NF; i++) if ($(i + 1) == "ns/op") print $i}' | head -n 1)"
CONFIGS_EXACT="$(echo "${RAW6}" | awk '{for (i = 1; i < NF; i++) if ($i == "bench6_configs_exact") {print $(i + 1); exit}}')"
if [ -z "${SYM_NS}" ] || [ -z "${FLAT_NS}" ] || [ -z "${CONFIGS_EXACT}" ]; then
	echo "bench_smoke: benchmark output missing symbolic/flat/configs lines" >&2
	exit 1
fi

SPEEDUP6="$(awk "BEGIN {printf \"%.2f\", ${FLAT_NS} / ${SYM_NS}}")"
cat >"${OUT6}" <<EOF
{
  "benchmark": "BenchmarkMinRoundsSymbolicVsFlat",
  "scheme": "R1",
  "symbolic_max_horizon": ${MAXR6},
  "symbolic_ns_per_op": ${SYM_NS},
  "configs_exact_at_max": "${CONFIGS_EXACT}",
  "enumerate_max_horizon": ${MAXR5},
  "enumerate_ns_per_op": ${FLAT_NS},
  "speedup": ${SPEEDUP6}
}
EOF
echo "bench_smoke: wrote ${OUT6} (symbolic horizon ${MAXR6}, speedup ${SPEEDUP6}x over enumeration at ${MAXR5})"

if ! awk "BEGIN {exit !(${MAXR6} >= 25)}"; then
	echo "bench_smoke: symbolic horizon ${MAXR6} is below the 25-round acceptance bar" >&2
	exit 1
fi
if ! awk "BEGIN {exit !(${SPEEDUP6} >= 10.0)}"; then
	echo "bench_smoke: speedup ${SPEEDUP6}x is below the 10x acceptance bar" >&2
	exit 1
fi
