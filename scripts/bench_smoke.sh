#!/usr/bin/env sh
# bench_smoke.sh — measure the repo's MinRounds engines and record the
# results as BENCH_4.json and BENCH_5.json.
#
# BENCH_4: the incremental engine against the per-horizon restart
# strategy on R1 (never solvable, so both sides walk every horizon
# 0..maxR). Acceptance bar ≥2×: the restart side rebuilds interners,
# union-find, and the walk at every horizon, while the incremental side
# grows one frontier.
#
# BENCH_5: the hash-consed dedup engine in its shipped configuration
# against the frozen PR-4 baseline engine, same R1 MinRounds search at a
# deeper horizon (BENCH5_MAXR, default 13). Acceptance bar ≥5×; the
# measured frontier dedup ratio is recorded alongside (exactly 1.0 on
# R1, whose views are history-injective — see DESIGN.md). Usage:
#
#   ./scripts/bench_smoke.sh [bench4.json] [bench5.json]
set -eu

cd "$(dirname "$0")/.."

OUT4="${1:-BENCH_4.json}"
OUT5="${2:-BENCH_5.json}"
MAXR=8
MAXR5="${BENCH5_MAXR:-13}"
COUNT="${BENCH_COUNT:-3x}"

RAW="$(go test -run '^$' -bench '^BenchmarkMinRoundsIncrementalVsRestart$' -benchtime "${COUNT}" .)"
echo "${RAW}"

RESTART_NS="$(echo "${RAW}" | awk '/\/restart/ {print $3}')"
INCREMENTAL_NS="$(echo "${RAW}" | awk '/\/incremental/ {print $3}')"
if [ -z "${RESTART_NS}" ] || [ -z "${INCREMENTAL_NS}" ]; then
	echo "bench_smoke: benchmark output missing restart/incremental lines" >&2
	exit 1
fi

SPEEDUP="$(awk "BEGIN {printf \"%.2f\", ${RESTART_NS} / ${INCREMENTAL_NS}}")"
cat >"${OUT4}" <<EOF
{
  "benchmark": "BenchmarkMinRoundsIncrementalVsRestart",
  "scheme": "R1",
  "max_horizon": ${MAXR},
  "restart_ns_per_op": ${RESTART_NS},
  "incremental_ns_per_op": ${INCREMENTAL_NS},
  "speedup": ${SPEEDUP}
}
EOF
echo "bench_smoke: wrote ${OUT4} (speedup ${SPEEDUP}x)"

if ! awk "BEGIN {exit !(${SPEEDUP} >= 2.0)}"; then
	echo "bench_smoke: speedup ${SPEEDUP}x is below the 2x acceptance bar" >&2
	exit 1
fi

RAW5="$(BENCH5_MAXR="${MAXR5}" go test -run '^$' -bench '^BenchmarkMinRoundsDedupVsPR4$' -benchtime "${COUNT}" ./internal/chain/)"
echo "${RAW5}"

PR4_NS="$(echo "${RAW5}" | awk '/\/pr4/ {print $3}')"
DEDUP_NS="$(echo "${RAW5}" | awk '/\/dedup/ {print $3}')"
DEDUP_RATIO="$(echo "${RAW5}" | awk '/\/dedup/ {for (i = 1; i < NF; i++) if ($(i + 1) == "dedup_ratio") print $i}')"
if [ -z "${PR4_NS}" ] || [ -z "${DEDUP_NS}" ]; then
	echo "bench_smoke: benchmark output missing pr4/dedup lines" >&2
	exit 1
fi
DEDUP_RATIO="${DEDUP_RATIO:-0}"

SPEEDUP5="$(awk "BEGIN {printf \"%.2f\", ${PR4_NS} / ${DEDUP_NS}}")"
cat >"${OUT5}" <<EOF
{
  "benchmark": "BenchmarkMinRoundsDedupVsPR4",
  "scheme": "R1",
  "max_horizon": ${MAXR5},
  "pr4_ns_per_op": ${PR4_NS},
  "dedup_ns_per_op": ${DEDUP_NS},
  "dedup_ratio": ${DEDUP_RATIO},
  "speedup": ${SPEEDUP5}
}
EOF
echo "bench_smoke: wrote ${OUT5} (speedup ${SPEEDUP5}x, dedup ratio ${DEDUP_RATIO})"

if ! awk "BEGIN {exit !(${SPEEDUP5} >= 5.0)}"; then
	echo "bench_smoke: speedup ${SPEEDUP5}x is below the 5x acceptance bar" >&2
	exit 1
fi
