#!/usr/bin/env sh
# bench_batch.sh — measure the zero-alloc service hot path and the
# batch endpoint, and record the result as BENCH_9.json.
#
# Two measurements, both against this working tree:
#
#   1. BenchmarkServeSolveAllocs — a cached-hit /v1/solvable request
#      driven through the full middleware stack (admission, breaker,
#      decode, key, cache, pooled encode). allocs/op is pinned by
#      TestServeSolveAllocsGate at <= 24; the gate runs first so the
#      recorded number is also the enforced one. The pre-refactor seed
#      (commit 4f494fa, measured with the same driver before the pooled
#      I/O / streaming-encode / scratch-reuse work) is recorded
#      alongside for the before/after.
#
#   2. capbench -batch — a self-contained 3-backend cluster serving the
#      same warmed query population two ways: one request per query vs
#      /v1/solve/batch groups, with equal items in flight. Acceptance
#      bar: batch items/sec >= 1.5x single-item qps at equal-or-better
#      p99 (capbench exits 1 otherwise).
#
# The heap profile the batch run writes (-memprofile) is kept next to
# the report for CI artifact upload. Usage:
#
#   ./scripts/bench_batch.sh [bench9.json] [heap.pprof]
set -eu

cd "$(dirname "$0")/.."

OUT9="${1:-BENCH_9.json}"
PROF="${2:-capbench_heap.pprof}"
ITEMS="${BENCH9_ITEMS:-4096}"
BATCH_SIZE="${BENCH9_BATCH_SIZE:-16}"
BAR="${BENCH9_BAR:-1.5}"

# Seed baseline: BenchmarkServeSolveAllocs run at the pre-refactor seed
# commit (4f494fa) with this same driver. Re-measure by checking out
# that commit, copying internal/serve/bench_test.go across, and running
# the benchmark there.
SEED_COMMIT="4f494fa"
SEED_ALLOCS=43
SEED_BYTES=4392
SEED_NS=11021

echo "== alloc gate =="
go test -run '^TestServeSolveAllocsGate$' -count=1 ./internal/serve/

echo "== BenchmarkServeSolveAllocs =="
RAW="$(go test -run '^$' -bench '^BenchmarkServeSolveAllocs$' -benchmem -benchtime "${BENCH_COUNT:-50000x}" ./internal/serve/)"
echo "${RAW}"
NS="$(echo "${RAW}" | awk '/^BenchmarkServeSolveAllocs/ {print $3}')"
BYTES="$(echo "${RAW}" | awk '/^BenchmarkServeSolveAllocs/ {for (i = 1; i < NF; i++) if ($(i + 1) == "B/op") print $i}')"
ALLOCS="$(echo "${RAW}" | awk '/^BenchmarkServeSolveAllocs/ {for (i = 1; i < NF; i++) if ($(i + 1) == "allocs/op") print $i}')"
if [ -z "${NS}" ] || [ -z "${BYTES}" ] || [ -z "${ALLOCS}" ]; then
	echo "bench_batch: benchmark output missing the serve alloc line" >&2
	exit 1
fi

echo "== capbench -batch (3-backend cluster, bar ${BAR}x) =="
go run ./cmd/capbench \
	-backends-n 3 -replicas 2 -slow-delay 0 \
	-duration 1s -warmup 500ms \
	-batch -batch-items "${ITEMS}" -batch-size "${BATCH_SIZE}" \
	-batch-bar "${BAR}" -memprofile "${PROF}" \
	-out "${OUT9}.capbench"

# Merge the alloc benchmark and the seed baseline into the capbench
# report's batchComparison to form the BENCH_9 record.
SPEEDUP="$(sed -n 's/.*"speedupX": \([0-9.]*\).*/\1/p' "${OUT9}.capbench" | head -n 1)"
python3 - "$OUT9" "$OUT9.capbench" <<EOF
import json, sys
out, src = sys.argv[1], sys.argv[2]
rep = json.load(open(src))
record = {
    "benchmark": "BenchmarkServeSolveAllocs + capbench -batch",
    "serveAllocs": {
        "seedCommit": "${SEED_COMMIT}",
        "seedNsPerOp": ${SEED_NS},
        "seedBytesPerOp": ${SEED_BYTES},
        "seedAllocsPerOp": ${SEED_ALLOCS},
        "nsPerOp": ${NS},
        "bytesPerOp": ${BYTES},
        "allocsPerOp": ${ALLOCS},
        "allocBudget": 24,
    },
    "batchComparison": rep["batchComparison"],
}
json.dump(record, open(out, "w"), indent=2)
open(out, "a").write("\n")
EOF
rm -f "${OUT9}.capbench"
echo "bench_batch: wrote ${OUT9} (cached hit ${ALLOCS} allocs/op vs seed ${SEED_ALLOCS}; batch speedup ${SPEEDUP:-?}x, bar ${BAR}x)"
