#!/usr/bin/env sh
# bench_cluster.sh — measure the clustered coordinator under load and
# record the result as BENCH_7.json.
#
# capbench (self-contained mode) spins up 3 backend capserved instances
# plus a coordinator in one process, drives an open-loop mixed workload
# (solvable/classify/netsolve plus unique "heavy" automata that defeat
# both cache tiers) at the target RPS, and reports p50/p99/shed-rate/
# hedge-rate per phase. Two measured phases:
#
#   healthy           — all 3 backends fast
#   one-slow-backend  — one backend delays every analysis request by
#                       -slow-delay, with the hedge trigger retuned to
#                       half the measured healthy p99
#
# Acceptance bar (-p99-bar 2): the hedged p99 under one slow backend
# must stay within 2x the healthy-cluster p99 — hedging to the ring
# successor, not the slow shard, must dominate the tail.
#
# The defaults are sized for a small CI box (the repo's reference
# machine is a single core); raise BENCH7_RPS / BENCH7_MAX_HORIZON on
# real hardware. Usage:
#
#   ./scripts/bench_cluster.sh [bench7.json]
set -eu

cd "$(dirname "$0")/.."

OUT7="${1:-BENCH_7.json}"
RPS="${BENCH7_RPS:-80}"
DURATION="${BENCH7_DURATION:-4s}"
MAXH="${BENCH7_MAX_HORIZON:-6}"

go run ./cmd/capbench \
	-backends-n 3 -replicas 2 \
	-rps "${RPS}" -duration "${DURATION}" -warmup 1s \
	-max-horizon "${MAXH}" -p99-bar 2 -out "${OUT7}"

RATIO="$(sed -n 's/.*"degradedP99Ratio": \([0-9.]*\).*/\1/p' "${OUT7}" | head -n 1)"
echo "bench_cluster: wrote ${OUT7} (degraded/healthy p99 ratio ${RATIO:-?}, bar 2)"
