#!/usr/bin/env sh
# bench_wire.sh — measure the binary verdict wire protocol against the
# compact-JSON baseline and record the result as BENCH_10.json.
#
# Three measurements, all against this working tree:
#
#   1. BenchmarkServeSolveAllocs / BenchmarkServeSolveBinaryAllocs —
#      the cached-hit /v1/solvable hot path through the full middleware
#      stack, once per encoding. Both are alloc-gated (<= 24) by
#      TestServeSolveAllocsGate and TestServeSolveBinaryAllocsGate,
#      which run first so the recorded numbers are the enforced ones.
#
#   2. capbench -batch — the PR-9 batch-vs-single comparison, re-run so
#      BENCH_10 carries the number the CI trend gate compares against
#      BENCH_9 (a regression > 10% fails).
#
#   3. capbench -wire — the same warmed batch workload served twice by
#      a self-contained 3-backend cluster: JSON lines vs binary frames.
#      Acceptance bars: binary bytes/item <= 0.6x JSON (>= 40% fewer
#      bytes) at equal-or-better p99, and binary items/sec >= 1.2x the
#      JSON-batch baseline (capbench exits 1 otherwise).
#
# Usage:
#
#   ./scripts/bench_wire.sh [bench10.json]
set -eu

cd "$(dirname "$0")/.."

OUT10="${1:-BENCH_10.json}"
BASELINE="${BENCH10_BASELINE:-BENCH_9.json}"
ITEMS="${BENCH10_ITEMS:-4096}"
BATCH_SIZE="${BENCH10_BATCH_SIZE:-16}"
BATCH_BAR="${BENCH10_BATCH_BAR:-1.5}"
WIRE_BAR="${BENCH10_WIRE_BAR:-1.2}"
WIRE_BYTES_BAR="${BENCH10_WIRE_BYTES_BAR:-0.6}"
TREND_SLACK="${BENCH10_TREND_SLACK:-0.10}"

echo "== alloc gates (JSON + binary) =="
go test -run '^TestServeSolve(Binary)?AllocsGate$' -count=1 ./internal/serve/

echo "== BenchmarkServeSolveAllocs / BenchmarkServeSolveBinaryAllocs =="
RAW="$(go test -run '^$' -bench '^BenchmarkServeSolve(Binary)?Allocs$' -benchmem -benchtime "${BENCH_COUNT:-50000x}" ./internal/serve/)"
echo "${RAW}"
bench_field() { # bench_field <benchmark-name> <unit-following-field|ns>
	if [ "$2" = "ns" ]; then
		echo "${RAW}" | awk -v b="$1" '$1 ~ "^" b "(-[0-9]+)?$" {print $3}'
	else
		echo "${RAW}" | awk -v b="$1" -v u="$2" '$1 ~ "^" b "(-[0-9]+)?$" {for (i = 1; i < NF; i++) if ($(i + 1) == u) print $i}'
	fi
}
NS="$(bench_field BenchmarkServeSolveAllocs ns)"
BYTES="$(bench_field BenchmarkServeSolveAllocs B/op)"
ALLOCS="$(bench_field BenchmarkServeSolveAllocs allocs/op)"
BNS="$(bench_field BenchmarkServeSolveBinaryAllocs ns)"
BBYTES="$(bench_field BenchmarkServeSolveBinaryAllocs B/op)"
BALLOCS="$(bench_field BenchmarkServeSolveBinaryAllocs allocs/op)"
if [ -z "${NS}" ] || [ -z "${BNS}" ] || [ -z "${ALLOCS}" ] || [ -z "${BALLOCS}" ]; then
	echo "bench_wire: benchmark output missing a serve alloc line" >&2
	exit 1
fi

echo "== capbench -batch -wire (3-backend cluster; wire bars ${WIRE_BAR}x items/sec, ${WIRE_BYTES_BAR}x bytes) =="
go run ./cmd/capbench \
	-backends-n 3 -replicas 2 -slow-delay 0 \
	-duration 1s -warmup 500ms \
	-batch -batch-items "${ITEMS}" -batch-size "${BATCH_SIZE}" -batch-bar "${BATCH_BAR}" \
	-wire -wire-bar "${WIRE_BAR}" -wire-bytes-bar "${WIRE_BYTES_BAR}" \
	-out "${OUT10}.capbench"

# Merge the alloc benchmarks into the capbench report and check the
# trend against the BENCH_9 baseline: the PR-9 batch speedup and the
# serve alloc count must not regress by more than TREND_SLACK.
STATUS=0
python3 - "$OUT10" "$OUT10.capbench" "$BASELINE" <<EOF || STATUS=$?
import json, sys
out, src, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]
rep = json.load(open(src))
record = {
    "benchmark": "BenchmarkServeSolve{,Binary}Allocs + capbench -batch -wire",
    "serveAllocs": {
        "json":   {"nsPerOp": ${NS}, "bytesPerOp": ${BYTES}, "allocsPerOp": ${ALLOCS}, "allocBudget": 24},
        "binary": {"nsPerOp": ${BNS}, "bytesPerOp": ${BBYTES}, "allocsPerOp": ${BALLOCS}, "allocBudget": 24},
    },
    "batchComparison": rep["batchComparison"],
    "wireComparison": rep["wireComparison"],
}

failures = []
try:
    base = json.load(open(baseline_path))
except FileNotFoundError:
    base = None
if base:
    slack = ${TREND_SLACK}
    base_speedup = base["batchComparison"]["speedupX"]
    got_speedup = record["batchComparison"]["speedupX"]
    if got_speedup < base_speedup * (1 - slack):
        failures.append(
            f"batch speedup {got_speedup:.2f}x regressed >{slack:.0%} from {baseline_path}'s {base_speedup:.2f}x")
    base_allocs = base["serveAllocs"]["allocsPerOp"]
    got_allocs = record["serveAllocs"]["json"]["allocsPerOp"]
    if got_allocs > base_allocs * (1 + slack):
        failures.append(
            f"serve allocs {got_allocs}/op regressed >{slack:.0%} from {baseline_path}'s {base_allocs}/op")
    record["trend"] = {
        "baseline": baseline_path,
        "slack": slack,
        "baselineBatchSpeedupX": base_speedup,
        "baselineAllocsPerOp": base_allocs,
        "ok": not failures,
    }
json.dump(record, open(out, "w"), indent=2)
open(out, "a").write("\n")
for f in failures:
    print("bench_wire: TREND REGRESSION:", f, file=sys.stderr)
sys.exit(1 if failures else 0)
EOF
rm -f "${OUT10}.capbench"
[ "${STATUS}" -eq 0 ] || exit "${STATUS}"

SPEEDUP="$(sed -n 's/.*"speedupX": \([0-9.]*\).*/\1/p' "${OUT10}" | tail -n 1)"
RATIO="$(sed -n 's/.*"bytesRatio": \([0-9.]*\).*/\1/p' "${OUT10}" | head -n 1)"
echo "bench_wire: wrote ${OUT10} (binary hot path ${BALLOCS} allocs/op; wire speedup ${SPEEDUP:-?}x, bytes ratio ${RATIO:-?} vs bar ${WIRE_BYTES_BAR})"
