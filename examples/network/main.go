// Network consensus (Section V): a database cluster shaped like a barbell
// — two replicated sites, each a clique, joined by a few WAN links. The
// example sweeps the per-round loss budget f and shows the sharp Theorem
// V.1 threshold at the edge connectivity c(G), which is the number of WAN
// links — *not* the (larger) per-node degree.
package main

import (
	"fmt"
	"math/rand"

	coordattack "repro"
)

func main() {
	const cliques, wanLinks = 4, 2
	g := coordattack.Barbell(cliques, wanLinks)
	c := coordattack.EdgeConnectivity(g)
	fmt.Printf("cluster %s: %d nodes, %d links, min degree %d, connectivity c(G)=%d\n",
		g.Name(), g.N(), g.NumEdges(), g.MinDegree(), c)
	fmt.Printf("(the Santoro–Widmayer open regime is f in [%d, %d]; Theorem V.1: unsolvable there)\n\n", c, g.MinDegree()-1)

	rng := rand.New(rand.NewSource(42))
	inputs := make([]coordattack.Value, g.N())
	for i := range inputs {
		inputs[i] = coordattack.Value(rng.Intn(2))
	}

	cut, _ := coordattack.MinCut(g)
	for f := 0; f <= c; f++ {
		fmt.Printf("f = %d losses/round: Theorem V.1 says solvable=%v\n", f, coordattack.NetworkSolvable(g, f))
		if f < c {
			// Commit by flooding: every node re-broadcasts all known
			// votes for n−1 rounds and commits the minimum.
			for name, adv := range map[string]coordattack.NetAdversary{
				"random losses  ": coordattack.RandomLossAdversary(f, rng),
				"targeted at cut": coordattack.TargetedCutAdversary(cut, f),
			} {
				tr := coordattack.RunNetwork(g, coordattack.NewFloodNodes(g), inputs, adv, g.N()+2)
				fmt.Printf("   flooding vs %s: consensus=%v, decided %d in %d rounds\n",
					name, coordattack.CheckNetwork(tr).OK(), tr.Decisions[0], tr.Rounds)
			}
		} else {
			// At f = c(G) the Γ_C adversary silences one WAN direction
			// forever: the sites commit different values.
			in := make([]coordattack.Value, g.N())
			for _, v := range cut.SideB {
				in[v] = 1
			}
			adv := coordattack.CutAdversary(cut, coordattack.ConstantScenario(coordattack.LossWhite))
			tr := coordattack.RunNetwork(g, coordattack.NewFloodNodes(g), in, adv, g.N()+2)
			rep := coordattack.CheckNetwork(tr)
			fmt.Printf("   flooding vs Γ_C cut adversary: consensus=%v %v\n", rep.OK(), rep.Violations)
		}
	}

	// Even at f = c(G), *restricting* the failure pattern restores
	// solvability: if the WAN cannot silence site B forever (the scheme
	// Γ_C minus ρ⁻¹((b)^ω)), Algorithm 4 commits through one designated
	// link pair.
	fmt.Printf("\nAlgorithm 4 under Γ_C minus one scenario (WAN cannot silence site B forever):\n")
	witness := coordattack.ConstantScenario(coordattack.LossBlack)
	nodes := coordattack.NewCutTwoPhaseNodes(g, cut, witness)
	scenario := coordattack.MustScenario("wwb.(.)")
	tr := coordattack.RunNetwork(g, nodes, inputs, coordattack.CutAdversary(cut, scenario), 80)
	fmt.Printf("   scenario %s: consensus=%v, all nodes decide %d within %d rounds\n",
		scenario, coordattack.CheckNetwork(tr).OK(), tr.Decisions[0], tr.Rounds)
}
