// Algorithm synthesis: beyond Theorem III.8. The all-or-nothing channel
// (each round either delivers both messages or drops both) uses the
// double omission 'x', which the paper's characterization leaves open.
// The library's full-information analysis still decides bounded-round
// solvability — and *compiles a round-optimal algorithm* directly from
// the analysis.
package main

import (
	"fmt"
	"log"

	coordattack "repro"
)

func main() {
	const blackouts = 2
	s := coordattack.BlackoutBudget(blackouts)
	fmt.Printf("scheme %s: %s\n\n", s.Name(), s.Description())

	// Theorem III.8 refuses (double omissions) — honest incompleteness.
	if _, err := coordattack.Classify(s); err != nil {
		fmt.Printf("Classify: %v\n\n", err)
	}

	// The chain analysis finds the exact horizon...
	p, ok := coordattack.MinRoundsSearch(s, 6)
	if !ok {
		log.Fatal("no bounded horizon found")
	}
	fmt.Printf("bounded-round analysis: first solvable horizon = %d (= blackout budget + 1)\n", p)

	// ...and Synthesize compiles an algorithm for it.
	white, black, ok := coordattack.Synthesize(s, p)
	if !ok {
		log.Fatal("synthesis failed")
	}
	fmt.Println("synthesized a round-optimal algorithm from the analysis; running it:")
	for _, scenario := range []string{"(.)", "x(.)", "xx(.)", "x.x(.)"} {
		sc := coordattack.MustScenario(scenario)
		if !s.Contains(sc) {
			continue
		}
		tr := coordattack.Run(white, black, [2]coordattack.Value{1, 0}, sc, p+2)
		fmt.Printf("  scenario %-7s → decisions (%d, %d) in %d round(s), consensus=%v\n",
			scenario, tr.Decisions[0], tr.Decisions[1], tr.Rounds, coordattack.Check(tr).OK())
	}

	// The same channel is also solved by the hand-written common-knowledge
	// protocol (FirstCleanExchange, see internal/consensus); the synthesized
	// program proves no algorithm can beat k+1 rounds, because synthesis
	// fails at horizon k:
	if _, _, ok := coordattack.Synthesize(s, p-1); ok {
		log.Fatal("synthesis below the optimal horizon should be impossible")
	}
	fmt.Printf("\nno algorithm exists at horizon %d — the k+1 bound is tight.\n", p-1)
}
