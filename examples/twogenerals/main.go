// Two generals: the seven environments of Section II-A2, narrated and
// executed. For each environment the program classifies the scheme,
// explains which Theorem III.8 condition applies, and — when solvable —
// runs the round-optimal algorithm against every member scenario prefix.
package main

import (
	"fmt"
	"log"
	"math/rand"

	coordattack "repro"
)

var stories = map[string]string{
	"S0": "no messenger is ever captured",
	"TW": "only White's messengers are at risk",
	"TB": "only Black's messengers are at risk",
	"C1": "once a general's messenger is captured, all that follow are too (the enemy got the Code of Operations)",
	"S1": "a spy sits in one army — but nobody knows which",
	"R1": "the enemy can watch one army per day: at most one capture per day",
	"S2": "any messenger may be captured at any time",
}

func main() {
	rng := rand.New(rand.NewSource(7))
	for _, name := range []string{"S0", "TW", "TB", "C1", "S1", "R1", "S2"} {
		s, err := coordattack.SchemeByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("─── %s: %s\n", name, stories[name])

		verdict, err := coordattack.Classify(s)
		if err != nil {
			// S2 is over the full alphabet Σ; Theorem III.8 decides it
			// only through monotonicity (it contains the obstruction Γ^ω).
			fmt.Printf("    OBSTRUCTION (contains Γ^ω): the generals can never coordinate.\n\n")
			continue
		}
		if !verdict.Solvable {
			fmt.Printf("    OBSTRUCTION: every algorithm fails on some scenario — %s\n\n",
				"the classic two-generals impossibility")
			continue
		}

		fmt.Printf("    solvable via %s", verdict.WitnessCondition)
		if verdict.MinRounds == coordattack.Unbounded {
			fmt.Printf("; no fixed-round bound exists\n")
		} else {
			fmt.Printf("; coordinated attack in exactly %d day(s)\n", verdict.MinRounds)
		}

		white, black, err := coordattack.NewAlgorithm(verdict)
		if err != nil {
			log.Fatal(err)
		}
		sc, ok := s.SampleScenario(rng, 4)
		if !ok {
			log.Fatalf("%s: no scenario", name)
		}
		tr := coordattack.Run(white, black, [2]coordattack.Value{1, 1}, sc, 200)
		fmt.Printf("    sample run under %s: both generals decide %d after %d day(s); consensus=%v\n\n",
			sc, tr.Decisions[0], tr.Rounds, coordattack.Check(tr).OK())
	}
}
