// Minimal obstructions (Section IV-C): explore the special-pair matching
// on unfair scenarios, walk the decreasing sequence of obstructions, and
// watch solvability flip exactly when a pair is fully removed.
package main

import (
	"fmt"
	"log"

	coordattack "repro"
)

func main() {
	// The matching: every non-constant unfair scenario has a unique
	// partner at index distance 1 forever.
	fmt.Println("special-pair matching on unfair scenarios (prefix ≤ 2):")
	for _, p := range coordattack.PairGraph(coordattack.UnfairWindow(2)) {
		fmt.Printf("   %-8s (lower)  ↔  %-8s (upper)\n", p.Lower, p.Upper)
	}

	// Removing one member of a pair from Γ^ω leaves an obstruction;
	// removing both makes the scheme solvable.
	lower := coordattack.MustScenario(".(b)")
	upper, _ := coordattack.SpecialPartner(lower)
	fmt.Printf("\ntake the pair (%s, %s):\n", lower, upper)

	oneGone := coordattack.MinusScenarios("Γω∖{lower}", coordattack.R1(), lower)
	v1, err := coordattack.Classify(oneGone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   Γ^ω minus %-6s → solvable=%v (still an obstruction)\n", lower, v1.Solvable)

	bothGone := coordattack.MinusScenarios("Γω∖pair", coordattack.R1(), lower, upper)
	v2, err := coordattack.Classify(bothGone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   Γ^ω minus the pair → solvable=%v via %s, witness %s\n",
		v2.Solvable, v2.WitnessCondition, v2.Witness)

	// The decreasing sequence of obstructions L_0 ⊋ L_1 ⊋ L_2: remove all
	// "lower" pair members up to a prefix bound — always an obstruction,
	// always strictly smaller.
	fmt.Println("\ndecreasing obstructions (remove lower members by prefix length):")
	for i, l := range coordattack.DecreasingObstructions(2) {
		v, err := coordattack.Classify(l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   L_%d: obstruction=%v\n", i, !v.Solvable)
	}

	// The limit — Γ^ω minus *all* lower members — is the canonical minimal
	// obstruction. It is not ω-regular, but membership is decidable:
	fmt.Println("\ncanonical minimal obstruction membership:")
	for _, s := range []string{"(.)", "(wb)", "(w)", "(b)", "b(w)", ".(w)", ".(b)", "w(b)"} {
		sc := coordattack.MustScenario(s)
		fmt.Printf("   %-6s role=%-8v in=%v\n", s, coordattack.RoleOf(sc), coordattack.InCanonicalMinimalObstruction(sc))
	}
	fmt.Println("\nremoving ANY further scenario from it yields a solvable scheme —")
	fmt.Println("that is inclusion-minimality (Definition II.13).")
}
