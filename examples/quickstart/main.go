// Quickstart: classify an omission scheme, build the consensus algorithm
// A_w from the verdict, and run it.
package main

import (
	"fmt"
	"log"

	coordattack "repro"
)

func main() {
	// The almost-fair environment: any message may be lost at any round,
	// except that Black's messages cannot be lost *forever*.
	s := coordattack.AlmostFair()

	verdict, err := coordattack.Classify(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme %s: solvable=%v (condition %s, witness %s)\n",
		s.Name(), verdict.Solvable, verdict.WitnessCondition, verdict.Witness)

	white, black, err := coordattack.NewAlgorithm(verdict)
	if err != nil {
		log.Fatal(err)
	}

	// General White proposes 0, General Black proposes 1. The enemy
	// captures White's first messenger, then gives up.
	scenario := coordattack.MustScenario("w(.)")
	trace := coordattack.Run(white, black, [2]coordattack.Value{0, 1}, scenario, 100)

	fmt.Printf("scenario %s:\n  %s\n", scenario, trace)
	report := coordattack.Check(trace)
	fmt.Printf("  termination=%v agreement=%v validity=%v\n",
		report.Terminated, report.Agreement, report.Validity)
}
