// Distributed commit: Gray's original motivation for the Two Generals
// Paradox [Gra78]. Two database sites vote on a transaction (1 = commit,
// 0 = abort) over a link that can drop messages, and must reach the same
// decision.
//
// The example shows the whole arc of the paper:
//  1. if any message can be lost forever, commit is impossible (Γ^ω is an
//     obstruction — the classic impossibility);
//  2. the weakest useful assumption — "site B's acks cannot be lost
//     forever" — already makes it solvable (the almost-fair scheme), with
//     A_w as the commit protocol;
//  3. with a bounded loss budget the protocol commits in exactly k+1
//     rounds (the f+1 bound).
package main

import (
	"fmt"
	"log"

	coordattack "repro"
)

func main() {
	fmt.Println("two-site transaction commit over a lossy link")
	fmt.Println()

	// 1. The impossibility: no restriction on losses.
	v, err := coordattack.Classify(coordattack.R1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. any single message may be lost each round (Γ^ω): solvable=%v\n", v.Solvable)
	fmt.Println("   → no commit protocol exists; acknowledgements regress forever.")
	fmt.Println()

	// 2. The almost-fair fix.
	af := coordattack.AlmostFair()
	v, err = coordattack.Classify(af)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. assume B's acks cannot be lost forever (%s): solvable=%v via %s\n",
		af.Name(), v.Solvable, v.WitnessCondition)
	// Uniform consensus on the proposals: both sites end up with the SAME
	// outcome, always one of the proposals, and a unanimous vote is
	// always honored (validity). (Strict atomic-commit validity — commit
	// only if *everyone* voted yes — is a different problem; with mixed
	// votes consensus may legitimately settle on either proposal.)
	for _, votes := range [][2]coordattack.Value{{1, 1}, {0, 0}, {1, 0}, {0, 1}} {
		white, black, err := coordattack.NewAlgorithm(v)
		if err != nil {
			log.Fatal(err)
		}
		// The adversary drops A's vote once, then the link heals.
		tr := coordattack.Run(white, black, votes, coordattack.MustScenario("w(.)"), 100)
		outcome := "ABORT"
		if tr.Decisions[0] == 1 {
			outcome = "COMMIT"
		}
		note := ""
		if votes[0] != votes[1] {
			note = "  (mixed votes: either outcome is valid)"
		}
		fmt.Printf("   votes (A=%d, B=%d) → %s at both sites after %d rounds (consensus=%v)%s\n",
			votes[0], votes[1], outcome, tr.Rounds, coordattack.Check(tr).OK(), note)
	}
	fmt.Println()

	// 3. Bounded loss budget: exact commit latency.
	for k := 0; k <= 2; k++ {
		s := coordattack.AtMostKLosses(k)
		v, err := coordattack.Classify(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("3. at most %d lost messages in total: commit latency exactly %d round(s)\n",
			k, v.MinRounds)
	}
	fmt.Println("\n(the k+1 latency is the classical f+1 bound, here an instance of Corollary III.14)")
}
