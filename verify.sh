#!/usr/bin/env sh
# verify.sh — the full pre-merge gate.
#
# Tier 1 (must stay green): build + tests.
# Extended: gofmt staleness + vet + race (the differential tests drive
# the fullinfo worker pool, so races in the engine fail here) + a short
# native-fuzz pass per fuzz target (go test runs one -fuzz target per
# invocation) + a capserved lifecycle smoke (serve, query, SIGTERM,
# assert a clean drained exit).
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
UNFORMATTED="$(gofmt -l .)"
if [ -n "${UNFORMATTED}" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "${UNFORMATTED}" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

FUZZTIME="${FUZZTIME:-10s}"
echo "== go fuzz (${FUZZTIME} per target) =="
for target in FuzzIndexRoundTrip FuzzParseScenario FuzzScenarioEquality; do
	echo "-- ${target}"
	go test -run "^${target}$" -fuzz "^${target}$" -fuzztime "${FUZZTIME}" ./internal/omission/
done

echo "== capserved smoke =="
./smoke_capserved.sh

echo "verify.sh: all gates passed"
