#!/usr/bin/env sh
# verify.sh — the full pre-merge gate.
#
# Tier 1 (must stay green): build + tests.
# Extended: gofmt staleness + vet + race (the differential tests drive
# the fullinfo worker pool, so races in the engine fail here) + a short
# native-fuzz pass per fuzz target (go test runs one -fuzz target per
# invocation) + a capserved lifecycle smoke (serve, query, SIGTERM,
# assert a clean drained exit).
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
UNFORMATTED="$(gofmt -l .)"
if [ -n "${UNFORMATTED}" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "${UNFORMATTED}" >&2
	exit 1
fi

echo "== deprecated engine API gate =="
# internal/ and cmd/ code must use the unified Analyze(ctx, Request)
# entry points. The deprecated wrappers exist only for out-of-tree
# callers; the repo-root facade is exempt (its legacy helpers delegate
# to them by design). Qualified calls are enough to catch violations:
# in-package wrapper tests (chain/nchain) are intentional coverage of
# the wrappers themselves and call them unqualified.
DEPRECATED='AnalyzeOpt|AnalyzeChecked|AnalyzeSequential|AnalyzeRounds|AnalyzeRoundsChecked|AnalyzeComplete|AnalyzeGraphConsensus|SolvableInRounds|SolvableInRoundsChecked|MinRounds|MinRoundsSearch|MinRoundsSearchChecked|MinRoundsComplete|MinRoundsGraph|GraphAnalyze|GraphAnalyzeOpt|GraphAnalyzeSequential|GraphSolvableInRounds|GraphSolvableInRoundsChecked|GraphMinRounds'
if grep -rnE "(chain|nchain|coordattack)\.(${DEPRECATED})\(" internal cmd --include='*.go'; then
	echo "verify.sh: internal/ or cmd/ code calls a deprecated engine wrapper — use Analyze(ctx, Request) / AnalyzeNet(ctx, Request)" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

FUZZTIME="${FUZZTIME:-10s}"
echo "== go fuzz (${FUZZTIME} per target) =="
for target in FuzzIndexRoundTrip FuzzParseScenario FuzzScenarioEquality; do
	echo "-- ${target}"
	go test -run "^${target}$" -fuzz "^${target}$" -fuzztime "${FUZZTIME}" ./internal/omission/
done
echo "-- FuzzDedupVsReference"
go test -run '^FuzzDedupVsReference$' -fuzz '^FuzzDedupVsReference$' -fuzztime "${FUZZTIME}" ./internal/fullinfo/
echo "-- FuzzSymbolicVsReference"
go test -run '^FuzzSymbolicVsReference$' -fuzz '^FuzzSymbolicVsReference$' -fuzztime "${FUZZTIME}" ./internal/chain/

echo "== capserved smoke (default backend) =="
./smoke_capserved.sh

echo "== capserved smoke (enumerate backend) =="
SMOKE_BACKEND=enumerate ./smoke_capserved.sh

echo "verify.sh: all gates passed"
