#!/usr/bin/env sh
# verify.sh — the full pre-merge gate.
#
# Tier 1 (must stay green): build + tests.
# Extended: gofmt staleness + vet + race (the differential tests drive
# the fullinfo worker pool, so races in the engine fail here) + a short
# native-fuzz pass per fuzz target (go test runs one -fuzz target per
# invocation) + a capserved lifecycle smoke (serve, query, SIGTERM,
# assert a clean drained exit) — which now includes a 3-node coordinator
# leg with a mid-run backend kill and an admin-API membership-churn leg
# — + a short capbench cluster load run with a churn phase.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
UNFORMATTED="$(gofmt -l .)"
if [ -n "${UNFORMATTED}" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "${UNFORMATTED}" >&2
	exit 1
fi

echo "== deprecated engine API gate =="
# internal/ and cmd/ code must use the unified Analyze(ctx, Request)
# entry points. The deprecated wrappers exist only for out-of-tree
# callers; the repo-root facade is exempt (its legacy helpers delegate
# to them by design). Qualified calls are enough to catch violations:
# in-package wrapper tests (chain/nchain) are intentional coverage of
# the wrappers themselves and call them unqualified.
DEPRECATED='AnalyzeOpt|AnalyzeChecked|AnalyzeSequential|AnalyzeRounds|AnalyzeRoundsChecked|AnalyzeComplete|AnalyzeGraphConsensus|SolvableInRounds|SolvableInRoundsChecked|MinRounds|MinRoundsSearch|MinRoundsSearchChecked|MinRoundsComplete|MinRoundsGraph|GraphAnalyze|GraphAnalyzeOpt|GraphAnalyzeSequential|GraphSolvableInRounds|GraphSolvableInRoundsChecked|GraphMinRounds'
if grep -rnE "(chain|nchain|coordattack)\.(${DEPRECATED})\(" internal cmd --include='*.go'; then
	echo "verify.sh: internal/ or cmd/ code calls a deprecated engine wrapper — use Analyze(ctx, Request) / AnalyzeNet(ctx, Request)" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== serve alloc gates (unraced, JSON + binary) =="
# The alloc gates skip themselves under -race (the detector's
# instrumentation allocates), so the budgets are enforced here
# explicitly — once per response encoding.
go test -run '^TestServeSolve(Binary)?AllocsGate$' -count=1 ./internal/serve/

FUZZTIME="${FUZZTIME:-10s}"
echo "== go fuzz (${FUZZTIME} per target) =="
for target in FuzzIndexRoundTrip FuzzParseScenario FuzzScenarioEquality; do
	echo "-- ${target}"
	go test -run "^${target}$" -fuzz "^${target}$" -fuzztime "${FUZZTIME}" ./internal/omission/
done
echo "-- FuzzDedupVsReference"
go test -run '^FuzzDedupVsReference$' -fuzz '^FuzzDedupVsReference$' -fuzztime "${FUZZTIME}" ./internal/fullinfo/
echo "-- FuzzSymbolicVsReference"
go test -run '^FuzzSymbolicVsReference$' -fuzz '^FuzzSymbolicVsReference$' -fuzztime "${FUZZTIME}" ./internal/chain/
echo "-- FuzzWireFrameDecode"
go test -run '^FuzzWireFrameDecode$' -fuzz '^FuzzWireFrameDecode$' -fuzztime "${FUZZTIME}" ./internal/serve/wire/

echo "== capserved smoke (default backend + 3-node coordinator) =="
./smoke_capserved.sh

echo "== capserved smoke (enumerate backend) =="
SMOKE_BACKEND=enumerate SMOKE_CLUSTER=0 ./smoke_capserved.sh

echo "== capbench (short cluster load + churn run) =="
# A brief self-contained 3-backend run: report only (no bars — the
# gating runs are scripts/bench_cluster.sh and scripts/bench_churn.sh),
# but the generator, coordinator, hedging, the health prober's
# eject/readmit cycle, and the stats scrape all have to work end to
# end. CI uploads the report as an artifact.
go run ./cmd/capbench -rps 40 -duration 2s -warmup 500ms -max-horizon 5 \
	-churn -batch -batch-items 128 -out capbench_report.json
grep -q '"one-slow-backend"' capbench_report.json || {
	echo "verify.sh: capbench report is missing the degraded phase" >&2
	exit 1
}
grep -q '"churn"' capbench_report.json || {
	echo "verify.sh: capbench report is missing the churn phase" >&2
	exit 1
}
grep -q '"churnConverged": true' capbench_report.json || {
	echo "verify.sh: churn phase did not converge (killed backend not readmitted)" >&2
	exit 1
}
grep -q '"batchComparison"' capbench_report.json || {
	echo "verify.sh: capbench report is missing the batch comparison" >&2
	exit 1
}

echo "verify.sh: all gates passed"
