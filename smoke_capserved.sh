#!/usr/bin/env sh
# smoke_capserved.sh — end-to-end lifecycle check of the analysis
# service: build, serve on an ephemeral port, poll readiness, run one
# cached solvability query twice, SIGTERM, and assert a clean drained
# exit. Deliberately free of fixed ports and sleeps-as-synchronization:
# the bound address is scraped from the server's own log line and
# readiness is polled, so the script is not timing-sensitive.
set -eu

cd "$(dirname "$0")"

WORK="$(mktemp -d)"
SERVED_PID=""
cleanup() {
	[ -n "${SERVED_PID}" ] && kill -9 "${SERVED_PID}" 2>/dev/null || true
	rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM

go build -o "${WORK}/capserved" ./cmd/capserved

# SMOKE_BACKEND selects the served analysis backend (auto|symbolic|
# enumerate); the assertions below adapt, because the symbolic interval
# walk never touches the enumerating frontier gauges.
BACKEND="${SMOKE_BACKEND:-auto}"

"${WORK}/capserved" -addr 127.0.0.1:0 -drain 5s -backend "${BACKEND}" >"${WORK}/stdout.log" 2>"${WORK}/stderr.log" &
SERVED_PID=$!

# The server logs "capserved: listening on http://ADDR" once bound.
BASE=""
i=0
while [ $i -lt 100 ]; do
	BASE="$(sed -n 's/^capserved: listening on \(http:\/\/[^ ]*\)$/\1/p' "${WORK}/stderr.log" | head -n 1)"
	[ -n "${BASE}" ] && break
	if ! kill -0 "${SERVED_PID}" 2>/dev/null; then
		echo "smoke: capserved died before binding:" >&2
		cat "${WORK}/stderr.log" >&2
		exit 1
	fi
	i=$((i + 1))
	sleep 0.1
done
if [ -z "${BASE}" ]; then
	echo "smoke: capserved never logged its address" >&2
	cat "${WORK}/stderr.log" >&2
	exit 1
fi

# Readiness, then liveness.
i=0
until curl -fsS -o /dev/null "${BASE}/readyz"; do
	i=$((i + 1))
	[ $i -ge 50 ] && { echo "smoke: /readyz never turned ready" >&2; exit 1; }
	sleep 0.1
done
HEALTH="$(curl -fsS "${BASE}/healthz")"
[ "${HEALTH}" = "ok" ] || { echo "smoke: /healthz said '${HEALTH}'" >&2; exit 1; }

# One solvability query, twice: the repeat must be served from cache,
# and both replies must carry the engine instrumentation of the original
# computation (S1 at horizon 2 streams 28 leaf configurations).
BODY='{"scheme":"S1","horizon":2}'
FIRST="$(curl -fsS -X POST -d "${BODY}" "${BASE}/v1/solvable")"
echo "${FIRST}" | grep -q '"solvable": true' || {
	echo "smoke: unexpected solvable reply: ${FIRST}" >&2
	exit 1
}
SECOND="$(curl -fsS -X POST -d "${BODY}" "${BASE}/v1/solvable")"
echo "${SECOND}" | grep -q '"cached": true' || {
	echo "smoke: repeat query was not cached: ${SECOND}" >&2
	exit 1
}
echo "${SECOND}" | grep -Eq '"configs": [1-9]' || {
	echo "smoke: cached reply lost the engine stats: ${SECOND}" >&2
	exit 1
}
if [ "${BACKEND}" = "enumerate" ]; then
	# The per-response stats must carry the frontier dedup gauges: the
	# enumerating engine probes the first rounds, and chain views are
	# history-injective, so raw == distinct > 0 and the ratio is exactly 1.
	echo "${SECOND}" | grep -Eq '"frontierRaw": [1-9]' || {
		echo "smoke: reply missing frontier dedup gauges: ${SECOND}" >&2
		exit 1
	}
	echo "${SECOND}" | grep -Eq '"dedupRatio": 1' || {
		echo "smoke: reply missing dedup ratio: ${SECOND}" >&2
		exit 1
	}
else
	# Auto picks the symbolic interval walk for S1 (a Γ scheme): the
	# reply must carry the interval gauges instead — S1 at horizon 2
	# covers its 7 admissible indices {0,1,3,4,5,7,8} with 3 maximal
	# runs after the cross-state merge.
	echo "${SECOND}" | grep -Eq '"symbolicRounds": [1-9]' || {
		echo "smoke: reply missing symbolic gauges: ${SECOND}" >&2
		exit 1
	}
	echo "${SECOND}" | grep -q '"intervalRuns": 3' || {
		echo "smoke: S1 at horizon 2 should merge to 3 index runs: ${SECOND}" >&2
		exit 1
	}
fi

# /v1/stats must aggregate the engine work: exactly one engine run so
# far (the second query was a cache hit), with non-zero configs.
STATS="$(curl -fsS "${BASE}/v1/stats")"
echo "${STATS}" | grep -Eq '"engineRuns": [1-9]' || {
	echo "smoke: /v1/stats reports no engine runs: ${STATS}" >&2
	exit 1
}
echo "${STATS}" | grep -Eq '"configsExplored": [1-9]' || {
	echo "smoke: /v1/stats reports no configs explored: ${STATS}" >&2
	exit 1
}
echo "${STATS}" | grep -q '"cacheHits": 1' || {
	echo "smoke: /v1/stats did not count the cache hit: ${STATS}" >&2
	exit 1
}
if [ "${BACKEND}" = "enumerate" ]; then
	echo "${STATS}" | grep -Eq '"frontierRaw": [1-9]' || {
		echo "smoke: /v1/stats missing frontier dedup gauges: ${STATS}" >&2
		exit 1
	}
	echo "${STATS}" | grep -Eq '"frontierDistinct": [1-9]' || {
		echo "smoke: /v1/stats missing distinct frontier gauge: ${STATS}" >&2
		exit 1
	}
else
	echo "${STATS}" | grep -Eq '"symbolicRounds": [1-9]' || {
		echo "smoke: /v1/stats missing symbolic round gauge: ${STATS}" >&2
		exit 1
	}
	echo "${STATS}" | grep -Eq '"intervalsPeak": [1-9]' || {
		echo "smoke: /v1/stats missing interval peak gauge: ${STATS}" >&2
		exit 1
	}
fi

# SIGTERM must drain and exit 0 within the drain budget.
kill -TERM "${SERVED_PID}"
STATUS=0
wait "${SERVED_PID}" || STATUS=$?
SERVED_PID=""
[ "${STATUS}" -eq 0 ] || {
	echo "smoke: capserved exited ${STATUS} on SIGTERM, want 0" >&2
	cat "${WORK}/stderr.log" >&2
	exit 1
}
grep -q "capserved: clean shutdown" "${WORK}/stdout.log" || {
	echo "smoke: no clean-shutdown line:" >&2
	cat "${WORK}/stdout.log" >&2
	exit 1
}
grep -q "capserved: drained" "${WORK}/stderr.log" || {
	echo "smoke: no drain log line:" >&2
	cat "${WORK}/stderr.log" >&2
	exit 1
}

echo "smoke_capserved.sh: OK (${BASE})"
