#!/usr/bin/env sh
# smoke_capserved.sh — end-to-end lifecycle check of the analysis
# service: build, serve on an ephemeral port, poll readiness, run one
# cached solvability query twice, SIGTERM, and assert a clean drained
# exit. Deliberately free of fixed ports and sleeps-as-synchronization:
# the bound address is scraped from the server's own log line and
# readiness is polled, so the script is not timing-sensitive.
#
# A second leg (skippable with SMOKE_CLUSTER=0) smokes the cluster
# mode: three backends behind `capserved -coordinator`, with one
# backend SIGKILLed mid-run — the fleet must keep answering, the health
# prober must eject the corpse, and the membership admin API must
# support removing and re-adding a live backend under queries.
set -eu

cd "$(dirname "$0")"

WORK="$(mktemp -d)"
SERVED_PID=""
CLUSTER_PIDS=""
cleanup() {
	[ -n "${SERVED_PID}" ] && kill -9 "${SERVED_PID}" 2>/dev/null || true
	for p in ${CLUSTER_PIDS}; do
		kill -9 "${p}" 2>/dev/null || true
	done
	rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM

go build -o "${WORK}/capserved" ./cmd/capserved

# SMOKE_BACKEND selects the served analysis backend (auto|symbolic|
# enumerate); the assertions below adapt, because the symbolic interval
# walk never touches the enumerating frontier gauges.
BACKEND="${SMOKE_BACKEND:-auto}"

"${WORK}/capserved" -addr 127.0.0.1:0 -drain 5s -backend "${BACKEND}" >"${WORK}/stdout.log" 2>"${WORK}/stderr.log" &
SERVED_PID=$!

# The server logs "capserved: listening on http://ADDR" once bound.
BASE=""
i=0
while [ $i -lt 100 ]; do
	BASE="$(sed -n 's/^capserved: listening on \(http:\/\/[^ ]*\)$/\1/p' "${WORK}/stderr.log" | head -n 1)"
	[ -n "${BASE}" ] && break
	if ! kill -0 "${SERVED_PID}" 2>/dev/null; then
		echo "smoke: capserved died before binding:" >&2
		cat "${WORK}/stderr.log" >&2
		exit 1
	fi
	i=$((i + 1))
	sleep 0.1
done
if [ -z "${BASE}" ]; then
	echo "smoke: capserved never logged its address" >&2
	cat "${WORK}/stderr.log" >&2
	exit 1
fi

# Readiness, then liveness.
i=0
until curl -fsS -o /dev/null "${BASE}/readyz"; do
	i=$((i + 1))
	[ $i -ge 50 ] && { echo "smoke: /readyz never turned ready" >&2; exit 1; }
	sleep 0.1
done
HEALTH="$(curl -fsS "${BASE}/healthz")"
[ "${HEALTH}" = "ok" ] || { echo "smoke: /healthz said '${HEALTH}'" >&2; exit 1; }

# One solvability query, twice: the repeat must be served from cache,
# and both replies must carry the engine instrumentation of the original
# computation (S1 at horizon 2 streams 28 leaf configurations).
BODY='{"scheme":"S1","horizon":2}'
FIRST="$(curl -fsS -X POST -d "${BODY}" "${BASE}/v1/solvable")"
echo "${FIRST}" | grep -q '"solvable": true' || {
	echo "smoke: unexpected solvable reply: ${FIRST}" >&2
	exit 1
}
SECOND="$(curl -fsS -X POST -d "${BODY}" "${BASE}/v1/solvable")"
echo "${SECOND}" | grep -q '"cached": true' || {
	echo "smoke: repeat query was not cached: ${SECOND}" >&2
	exit 1
}
echo "${SECOND}" | grep -Eq '"configs": [1-9]' || {
	echo "smoke: cached reply lost the engine stats: ${SECOND}" >&2
	exit 1
}
if [ "${BACKEND}" = "enumerate" ]; then
	# The per-response stats must carry the frontier dedup gauges: the
	# enumerating engine probes the first rounds, and chain views are
	# history-injective, so raw == distinct > 0 and the ratio is exactly 1.
	echo "${SECOND}" | grep -Eq '"frontierRaw": [1-9]' || {
		echo "smoke: reply missing frontier dedup gauges: ${SECOND}" >&2
		exit 1
	}
	echo "${SECOND}" | grep -Eq '"dedupRatio": 1' || {
		echo "smoke: reply missing dedup ratio: ${SECOND}" >&2
		exit 1
	}
else
	# Auto picks the symbolic interval walk for S1 (a Γ scheme): the
	# reply must carry the interval gauges instead — S1 at horizon 2
	# covers its 7 admissible indices {0,1,3,4,5,7,8} with 3 maximal
	# runs after the cross-state merge.
	echo "${SECOND}" | grep -Eq '"symbolicRounds": [1-9]' || {
		echo "smoke: reply missing symbolic gauges: ${SECOND}" >&2
		exit 1
	}
	echo "${SECOND}" | grep -q '"intervalRuns": 3' || {
		echo "smoke: S1 at horizon 2 should merge to 3 index runs: ${SECOND}" >&2
		exit 1
	}
fi

# /v1/stats must aggregate the engine work: exactly one engine run so
# far (the second query was a cache hit), with non-zero configs.
STATS="$(curl -fsS "${BASE}/v1/stats")"
echo "${STATS}" | grep -Eq '"engineRuns": [1-9]' || {
	echo "smoke: /v1/stats reports no engine runs: ${STATS}" >&2
	exit 1
}
echo "${STATS}" | grep -Eq '"configsExplored": [1-9]' || {
	echo "smoke: /v1/stats reports no configs explored: ${STATS}" >&2
	exit 1
}
echo "${STATS}" | grep -q '"cacheHits": 1' || {
	echo "smoke: /v1/stats did not count the cache hit: ${STATS}" >&2
	exit 1
}
if [ "${BACKEND}" = "enumerate" ]; then
	echo "${STATS}" | grep -Eq '"frontierRaw": [1-9]' || {
		echo "smoke: /v1/stats missing frontier dedup gauges: ${STATS}" >&2
		exit 1
	}
	echo "${STATS}" | grep -Eq '"frontierDistinct": [1-9]' || {
		echo "smoke: /v1/stats missing distinct frontier gauge: ${STATS}" >&2
		exit 1
	}
else
	echo "${STATS}" | grep -Eq '"symbolicRounds": [1-9]' || {
		echo "smoke: /v1/stats missing symbolic round gauge: ${STATS}" >&2
		exit 1
	}
	echo "${STATS}" | grep -Eq '"intervalsPeak": [1-9]' || {
		echo "smoke: /v1/stats missing interval peak gauge: ${STATS}" >&2
		exit 1
	}
fi

# SIGTERM must drain and exit 0 within the drain budget.
kill -TERM "${SERVED_PID}"
STATUS=0
wait "${SERVED_PID}" || STATUS=$?
SERVED_PID=""
[ "${STATUS}" -eq 0 ] || {
	echo "smoke: capserved exited ${STATUS} on SIGTERM, want 0" >&2
	cat "${WORK}/stderr.log" >&2
	exit 1
}
grep -q "capserved: clean shutdown" "${WORK}/stdout.log" || {
	echo "smoke: no clean-shutdown line:" >&2
	cat "${WORK}/stdout.log" >&2
	exit 1
}
grep -q "capserved: drained" "${WORK}/stderr.log" || {
	echo "smoke: no drain log line:" >&2
	cat "${WORK}/stderr.log" >&2
	exit 1
}

# --- 3-node coordinator smoke (SMOKE_CLUSTER=0 skips it) --------------
# Three backends fronted by `capserved -coordinator`: a keyed query is
# forwarded once and then served from the coordinator's cache, one
# backend is SIGKILLed mid-run and the fleet must keep answering
# (failover/hedge to the next ring replica), and the coordinator must
# still drain cleanly on SIGTERM.
if [ "${SMOKE_CLUSTER:-1}" = "1" ]; then
	BK_BASES=""
	for n in 1 2 3; do
		"${WORK}/capserved" -addr 127.0.0.1:0 -drain 5s -backend "${BACKEND}" \
			>"${WORK}/bk${n}.out" 2>"${WORK}/bk${n}.err" &
		eval "BK${n}_PID=$!"
		CLUSTER_PIDS="${CLUSTER_PIDS} $!"
	done
	for n in 1 2 3; do
		ADDR=""
		i=0
		while [ $i -lt 100 ]; do
			ADDR="$(sed -n 's/^capserved: listening on \(http:\/\/[^ ]*\)$/\1/p' "${WORK}/bk${n}.err" | head -n 1)"
			[ -n "${ADDR}" ] && break
			i=$((i + 1))
			sleep 0.1
		done
		[ -n "${ADDR}" ] || {
			echo "smoke: cluster backend ${n} never logged its address" >&2
			cat "${WORK}/bk${n}.err" >&2
			exit 1
		}
		BK_BASES="${BK_BASES},${ADDR}"
	done
	BK_BASES="${BK_BASES#,}"

	"${WORK}/capserved" -coordinator -backends "${BK_BASES}" -addr 127.0.0.1:0 \
		-replicas 2 -hedge-delay 50ms -breaker-trip 3 -breaker-cooldown 2s -drain 5s \
		>"${WORK}/coord.out" 2>"${WORK}/coord.err" &
	COORD_PID=$!
	CLUSTER_PIDS="${CLUSTER_PIDS} ${COORD_PID}"
	CBASE=""
	i=0
	while [ $i -lt 100 ]; do
		CBASE="$(sed -n 's/^coordinator: listening on \(http:\/\/[^ ]*\) .*$/\1/p' "${WORK}/coord.err" | head -n 1)"
		[ -n "${CBASE}" ] && break
		if ! kill -0 "${COORD_PID}" 2>/dev/null; then
			echo "smoke: coordinator died before binding:" >&2
			cat "${WORK}/coord.err" >&2
			exit 1
		fi
		i=$((i + 1))
		sleep 0.1
	done
	[ -n "${CBASE}" ] || {
		echo "smoke: coordinator never logged its address" >&2
		cat "${WORK}/coord.err" >&2
		exit 1
	}
	i=0
	until curl -fsS -o /dev/null "${CBASE}/readyz"; do
		i=$((i + 1))
		[ $i -ge 50 ] && { echo "smoke: coordinator /readyz never turned ready" >&2; exit 1; }
		sleep 0.1
	done

	# A keyed query is forwarded to a shard, then the repeat must come
	# out of the coordinator's own cache (X-Cluster-Cache: hit).
	CBODY='{"scheme":"S1","horizon":3}'
	CR1="$(curl -fsS -X POST -d "${CBODY}" "${CBASE}/v1/solvable")"
	echo "${CR1}" | grep -q '"solvable": true' || {
		echo "smoke: coordinator solvable reply wrong: ${CR1}" >&2
		exit 1
	}
	curl -fsS -D "${WORK}/chdr" -o /dev/null -X POST -d "${CBODY}" "${CBASE}/v1/solvable"
	grep -qi '^x-cluster-cache: hit' "${WORK}/chdr" || {
		echo "smoke: coordinator repeat was not a cache hit:" >&2
		cat "${WORK}/chdr" >&2
		exit 1
	}

	# --- batch leg: mixed cached/uncached through the coordinator -----
	# Item 0 repeats CBODY (already in the coordinator cache); items 1-2
	# compile to fresh automata, so they are misses the coordinator must
	# fan out to their ring shards. Every JSON-lines reply must be a
	# status-200 verdict, and each verdict must agree with the same query
	# asked as a single /v1/solvable call (differential check).
	BB0="${CBODY}"
	BB1='{"scheme":"S2","minus":["wwbb(.)"],"horizon":4}'
	BB2='{"scheme":"S2","minus":["bbww(.)"],"horizon":4}'
	BATCH="$(curl -fsS -X POST -H 'Content-Type: application/json' \
		-d "{\"items\":[${BB0},${BB1},${BB2}]}" "${CBASE}/v1/solve/batch")"
	[ "$(echo "${BATCH}" | grep -c '"status":200')" -eq 3 ] || {
		echo "smoke: batch did not return 3 ok lines:" >&2
		echo "${BATCH}" >&2
		exit 1
	}
	for i in 0 1 2; do
		eval "Q=\${BB${i}}"
		SINGLE="$(curl -fsS -X POST -d "${Q}" "${CBASE}/v1/solvable" | tr -d ' \n')"
		WANT="$(echo "${SINGLE}" | sed -n 's/.*"solvable":\(true\|false\).*/\1/p')"
		[ -n "${WANT}" ] || {
			echo "smoke: single-item reply for batch item ${i} had no verdict: ${SINGLE}" >&2
			exit 1
		}
		echo "${BATCH}" | grep "\"index\":${i}," | tr -d ' ' | grep -q "\"solvable\":${WANT}" || {
			echo "smoke: batch item ${i} disagrees with the single-item verdict (want solvable=${WANT}):" >&2
			echo "${BATCH}" | grep "\"index\":${i}," >&2
			exit 1
		}
	done
	# The cached item must be marked as a cluster-cache hit in its line.
	echo "${BATCH}" | grep '"index":0,' | grep -q '"cached":true' || {
		echo "smoke: batch item 0 should have come from cache:" >&2
		echo "${BATCH}" | grep '"index":0,' >&2
		exit 1
	}

	# Kill one backend outright (no drain) and keep querying: each of
	# the 12 bodies compiles to a distinct automaton, so every one is a
	# cache miss that must be routed — keys whose primary shard is the
	# dead backend have to fail over to the ring successor.
	eval "kill -9 \${BK2_PID}"
	for word in w b ww wb bw bb www wwb wbw wbb bww bwb; do
		CR="$(curl -fsS -X POST -d "{\"scheme\":\"S2\",\"minus\":[\"${word}(.)\"],\"horizon\":4}" "${CBASE}/v1/solvable")" || {
			echo "smoke: cluster query minus=${word} failed after backend kill" >&2
			curl -s "${CBASE}/v1/stats" >&2 || true
			exit 1
		}
		echo "${CR}" | grep -q '"solvable":' || {
			echo "smoke: cluster query minus=${word} returned no verdict: ${CR}" >&2
			exit 1
		}
	done
	CSTATS="$(curl -fsS "${CBASE}/v1/stats")"
	echo "${CSTATS}" | grep -Eq '"(hedges|failovers)": [1-9]' || {
		echo "smoke: no hedges or failovers after killing a backend: ${CSTATS}" >&2
		exit 1
	}

	# --- membership churn under the admin API -------------------------
	# The prober (on by default, 1s interval) must notice the SIGKILLed
	# backend and eject it from the ring.
	i=0
	until curl -fsS "${CBASE}/v1/cluster/members" | grep -q '"state": "ejected"'; do
		i=$((i + 1))
		[ $i -ge 100 ] && {
			echo "smoke: prober never ejected the killed backend:" >&2
			curl -s "${CBASE}/v1/cluster/members" >&2 || true
			exit 1
		}
		sleep 0.1
	done

	# Remove a *live* backend via the admin API, keep querying (every
	# body below is a fresh automaton — a cache miss that must route),
	# then re-add it. No reply may be a 5xx at any point (curl -f fails
	# the script on any HTTP error).
	BK3_BASE="${BK_BASES##*,}"
	curl -fsS -G -X DELETE --data-urlencode "backend=${BK3_BASE}" \
		-o "${WORK}/members.json" "${CBASE}/v1/cluster/members"
	grep -q "${BK3_BASE}" "${WORK}/members.json" && {
		echo "smoke: removed backend still listed:" >&2
		cat "${WORK}/members.json" >&2
		exit 1
	}
	for word in bbw bbb wwww wwwb; do
		CR="$(curl -fsS -X POST -d "{\"scheme\":\"S2\",\"minus\":[\"${word}(.)\"],\"horizon\":4}" "${CBASE}/v1/solvable")" || {
			echo "smoke: cluster query minus=${word} failed after member removal" >&2
			exit 1
		}
		echo "${CR}" | grep -q '"solvable":' || {
			echo "smoke: cluster query minus=${word} returned no verdict: ${CR}" >&2
			exit 1
		}
	done
	curl -fsS -X POST -d "{\"backend\":\"${BK3_BASE}\"}" \
		-o "${WORK}/members.json" "${CBASE}/v1/cluster/members"
	grep -q "${BK3_BASE}" "${WORK}/members.json" || {
		echo "smoke: re-added backend missing from members:" >&2
		cat "${WORK}/members.json" >&2
		exit 1
	}
	for word in wbbw wbbb bwww bwwb; do
		CR="$(curl -fsS -X POST -d "{\"scheme\":\"S2\",\"minus\":[\"${word}(.)\"],\"horizon\":4}" "${CBASE}/v1/solvable")" || {
			echo "smoke: cluster query minus=${word} failed after member re-add" >&2
			exit 1
		}
		echo "${CR}" | grep -q '"solvable":' || {
			echo "smoke: cluster query minus=${word} returned no verdict: ${CR}" >&2
			exit 1
		}
	done
	# The epoch must have advanced: boot (1) + eject + leave + join >= 4.
	curl -fsS "${CBASE}/v1/cluster/members" | grep -Eq '"epoch": [4-9]' || {
		echo "smoke: membership epoch did not advance through churn:" >&2
		curl -s "${CBASE}/v1/cluster/members" >&2 || true
		exit 1
	}

	# The coordinator must drain cleanly even with a dead shard.
	kill -TERM "${COORD_PID}"
	CSTATUS=0
	wait "${COORD_PID}" || CSTATUS=$?
	[ "${CSTATUS}" -eq 0 ] || {
		echo "smoke: coordinator exited ${CSTATUS} on SIGTERM, want 0" >&2
		cat "${WORK}/coord.err" >&2
		exit 1
	}
	grep -q "capserved: clean shutdown" "${WORK}/coord.out" || {
		echo "smoke: coordinator missing clean-shutdown line:" >&2
		cat "${WORK}/coord.out" >&2
		exit 1
	}
	grep -q "coordinator: drained" "${WORK}/coord.err" || {
		echo "smoke: coordinator missing drain log line:" >&2
		cat "${WORK}/coord.err" >&2
		exit 1
	}
	echo "smoke_capserved.sh: cluster OK (${CBASE} over ${BK_BASES})"
fi

echo "smoke_capserved.sh: OK (${BASE})"
