// Package coordattack is a library for studying the Coordinated Attack
// Problem (two-generals problem) under arbitrary patterns of message loss,
// reproducing Fevat & Godard, "Minimal Obstructions for the Coordinated
// Attack Problem and Beyond" (IPDPS 2011).
//
// # Overview
//
// Two synchronous processes, white and black, exchange one message each
// per round; an adversary drops messages according to an infinite word
// over the alphabet Σ = {'.', 'w', 'b', 'x'} ('.' = no loss, 'w' = white's
// message lost, 'b' = black's lost, 'x' = both). A set of such infinite
// words is an omission scheme; the question is for which schemes binary
// uniform consensus is solvable.
//
// The library provides:
//
//   - The index function ind : Γ* → [0, 3^r−1] whose ±1 adjacency encodes
//     one-process indistinguishability (Index, UnIndex, AdjacentWord).
//
//   - ω-regular omission schemes as deterministic Büchi automata, with all
//     named environments of the paper (S0, TWhite, TBlack, C1, S1, R1, S2,
//     Fair, AlmostFair) and combinators (Intersect, Union, Minus).
//
//   - The Theorem III.8 decision procedure (Classify): a scheme L ⊆ Γ^ω is
//     solvable iff a fair scenario, a whole special pair, or one of the
//     constant scenarios (w)^ω/(b)^ω lies outside L — with extracted
//     witnesses.
//
//   - The generic consensus algorithm A_w (NewAlgorithm), its round-optimal
//     bounded variant (Proposition III.15), simulation kernels (sequential
//     and goroutine/CSP-based), and consensus property checking.
//
//   - Bounded-round solvability analysis through full-information
//     indistinguishability chains (SolvableInRounds), the operational form
//     of the paper's impossibility machinery.
//
//   - Section V: synchronous networks of arbitrary topology — consensus
//     with at most f message losses per round is solvable iff f < c(G),
//     the edge connectivity (NetworkSolvable), with flooding consensus,
//     the Γ_C cut adversary, and the two-process reduction.
//
//   - Section IV-C: the special-pair matching on unfair scenarios, roles,
//     and the decreasing sequence of obstructions (minimal-obstruction
//     structure).
//
// # Quick start
//
//	s := coordattack.AlmostFair()
//	v, _ := coordattack.Classify(s)
//	white, black, _ := coordattack.NewAlgorithm(v)
//	tr := coordattack.Run(white, black, [2]coordattack.Value{0, 1},
//	    coordattack.MustScenario("w.(.)"), 100)
//	fmt.Println(tr.Decisions, coordattack.Check(tr).OK())
package coordattack

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/bivalency"
	"repro/internal/chain"
	"repro/internal/classify"
	"repro/internal/consensus"
	"repro/internal/fullinfo"
	"repro/internal/nchain"
	"repro/internal/obstruction"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Re-exported core types. See the respective internal packages for full
// documentation of methods.
type (
	// Letter is one symbol of the omission alphabet Σ.
	Letter = omission.Letter
	// Word is a finite sequence of letters (a partial scenario).
	Word = omission.Word
	// Scenario is an ultimately periodic infinite word u·v^ω.
	Scenario = omission.Scenario
	// Source is an infinite letter sequence revealed lazily.
	Source = omission.Source
	// Scheme is an ω-regular omission scheme.
	Scheme = scheme.Scheme
	// Verdict is the full Theorem III.8 analysis of a scheme.
	Verdict = classify.Result
	// Process is a deterministic synchronous two-process algorithm.
	Process = sim.Process
	// Value is a consensus value (0 or 1; None while undecided).
	Value = sim.Value
	// Trace records one two-process execution.
	Trace = sim.Trace
	// Adversary chooses omission letters adaptively.
	Adversary = sim.Adversary
	// Report is the outcome of the consensus property check.
	Report = sim.Report
	// Role classifies an unfair scenario in the special-pair matching.
	Role = obstruction.Role
	// Pair is one edge of the special-pair matching.
	Pair = obstruction.Pair
)

// Alphabet letters.
const (
	// NoLoss delivers both messages ('.').
	NoLoss = omission.None
	// LossWhite drops white's message ('w').
	LossWhite = omission.LossWhite
	// LossBlack drops black's message ('b').
	LossBlack = omission.LossBlack
	// LossBoth drops both ('x').
	LossBoth = omission.LossBoth
)

// Process identities and sentinel value.
const (
	White = sim.White
	Black = sim.Black
	None  = sim.None
)

// Unbounded is the Verdict.MinRounds value meaning no bounded-round
// algorithm exists.
const Unbounded = classify.Unbounded

// Matching roles (Section IV-C).
const (
	RoleFair     = obstruction.RoleFair
	RoleLower    = obstruction.RoleLower
	RoleUpper    = obstruction.RoleUpper
	RoleConstant = obstruction.RoleConstant
)

// ParseWord parses a finite word such as ".wb".
func ParseWord(s string) (Word, error) { return omission.ParseWord(s) }

// MustWord is ParseWord panicking on error.
func MustWord(s string) Word { return omission.MustWord(s) }

// ParseScenario parses "u(v)" as the scenario u·v^ω.
func ParseScenario(s string) (Scenario, error) { return omission.ParseScenario(s) }

// MustScenario is ParseScenario panicking on error.
func MustScenario(s string) Scenario { return omission.MustScenario(s) }

// Index computes ind(w) of Definition III.1.
func Index(w Word) *big.Int { return omission.Index(w) }

// IndexInt64 computes ind(w) as an int64 for |w| ≤ 39.
func IndexInt64(w Word) (int64, error) { return omission.IndexInt64(w) }

// UnIndex inverts the index bijection on Γ^r; it panics on out-of-range
// input (use UnIndexChecked for untrusted arguments).
func UnIndex(r int, k *big.Int) Word { return omission.UnIndex(r, k) }

// UnIndexChecked is UnIndex returning an error instead of panicking on
// out-of-range input.
func UnIndexChecked(r int, k *big.Int) (Word, error) { return omission.UnIndexChecked(r, k) }

// UnIndexInt64Checked is UnIndexChecked on the int64 fast path, valid
// for r ≤ 39 (beyond that 3^r − 1 overflows an int64).
func UnIndexInt64Checked(r int, k int64) (Word, error) { return omission.UnIndexInt64Checked(r, k) }

// AdjacentWord returns the word of equal length with index ind(w)+1.
func AdjacentWord(w Word) (Word, bool) { return omission.AdjacentWord(w) }

// Named schemes of the paper (Example II.11 and more).
var (
	// S0: no messenger is ever captured.
	S0 = scheme.S0
	// TWhite: only White's messengers may be captured.
	TWhite = scheme.TWhite
	// TBlack: only Black's messengers may be captured.
	TBlack = scheme.TBlack
	// C1: crash-like — eventually one process's messages are lost forever.
	C1 = scheme.C1
	// S1: at most one (unknown) process loses messages.
	S1 = scheme.S1
	// R1: at most one message lost per round (Γ^ω) — the classic
	// obstruction.
	R1 = scheme.R1
	// S2: any messenger may be captured (Σ^ω).
	S2 = scheme.S2
	// Fair: both directions deliver infinitely often.
	Fair = scheme.Fair
	// AlmostFair: Γ^ω minus the single scenario (b)^ω (Corollary IV.1).
	AlmostFair = scheme.AlmostFair
	// AtMostKLosses: at most k messages lost in total — the classical
	// budgeted-omission model; MinRounds = k+1 (the f+1 bound).
	AtMostKLosses = scheme.AtMostKLosses
	// BlackoutBudget: the all-or-nothing channel with at most k blackout
	// rounds — a double-omission scheme outside Theorem III.8's regime,
	// solvable in k+1 rounds.
	BlackoutBudget = scheme.BlackoutBudget
	// SigmaAtMostKLostMessages: at most k lost messages in total over Σ
	// (a double omission costs two).
	SigmaAtMostKLostMessages = scheme.SigmaAtMostKLostMessages
)

// SchemeByName looks up a named scheme ("S0", "TW", … see SchemeNames).
func SchemeByName(name string) (*Scheme, error) { return scheme.ByName(name) }

// ParseScheme builds a scheme from the rational-expression DSL, e.g.
// "[.w]^w | [.b]^w" (= S1), "[.wb]^w \\ {(b)}" (= AlmostFair), or
// "inf[.b] & inf[.w]". See scheme.Parse for the full grammar.
func ParseScheme(expr string) (*Scheme, error) { return scheme.Parse(expr) }

// SchemeNames lists the scheme registry.
func SchemeNames() []string { return scheme.Names() }

// IntersectSchemes returns L(a) ∩ L(b).
func IntersectSchemes(name string, a, b *Scheme) *Scheme { return scheme.Intersect(name, a, b) }

// UnionSchemes returns L(a) ∪ L(b).
func UnionSchemes(name string, a, b *Scheme) *Scheme { return scheme.Union(name, a, b) }

// MinusScenarios removes ultimately periodic scenarios from a scheme.
func MinusScenarios(name string, s *Scheme, scs ...Scenario) *Scheme {
	return scheme.Minus(name, s, scs...)
}

// SchemesEquivalent compares two schemes as ω-languages.
func SchemesEquivalent(a, b *Scheme) (bool, Scenario) { return scheme.Equivalent(a, b) }

// Classify runs the Theorem III.8 analysis: solvability, per-condition
// detail, an excluded-scenario witness for A_w, and the Corollary III.14
// round bound.
func Classify(s *Scheme) (*Verdict, error) { return classify.Classify(s) }

// ExplainVerdict renders a verdict as a short prose narrative tying each
// Theorem III.8 condition to its consequence.
func ExplainVerdict(v *Verdict) string { return classify.Explain(v) }

// SchemeDOT renders a scheme's Büchi automaton in Graphviz DOT format.
func SchemeDOT(s *Scheme) string { return s.ToDOT() }

// IsSpecialPair reports whether two scenarios form a special pair
// (Definition III.7).
func IsSpecialPair(a, b Scenario) bool { return classify.IsSpecialPair(a, b) }

// SpecialPartner returns the unique special-pair partner of an unfair
// non-constant scenario.
func SpecialPartner(s Scenario) (Scenario, bool) { return classify.SpecialPartner(s) }

// NewAlgorithm builds the pair of A_w processes for a solvable verdict:
// the round-optimal bounded variant (Proposition III.15) when the scheme
// admits a finite round bound, the plain A_w otherwise.
func NewAlgorithm(v *Verdict) (white, black Process, err error) {
	if v == nil || !v.Solvable {
		return nil, nil, fmt.Errorf("coordattack: scheme %v is an obstruction — no algorithm exists", schemeName(v))
	}
	if v.MinRounds != classify.Unbounded && v.MinRounds > 0 {
		w := consensus.BoundedWitness(v.MinRoundsWitness)
		return consensus.NewBoundedAW(w, v.MinRounds), consensus.NewBoundedAW(w, v.MinRounds), nil
	}
	if !v.HasWitness {
		return nil, nil, fmt.Errorf("coordattack: verdict carries no witness")
	}
	return consensus.NewAW(v.Witness), consensus.NewAW(v.Witness), nil
}

func schemeName(v *Verdict) string {
	if v == nil || v.Scheme == nil {
		return "<nil>"
	}
	return v.Scheme.Name()
}

// NewAW builds the generic algorithm A_w directly from an excluded
// scenario (which must be a valid Theorem III.8 witness for the scheme the
// algorithm will face).
func NewAW(excluded Source) Process { return consensus.NewAW(excluded) }

// Run executes two processes under a fixed scenario, sequentially.
func Run(white, black Process, inputs [2]Value, src Source, maxRounds int) Trace {
	return sim.RunScenario(white, black, inputs, src, maxRounds)
}

// RunAdversary executes under an adaptive adversary.
func RunAdversary(white, black Process, inputs [2]Value, adv Adversary, maxRounds int) Trace {
	return sim.Run(white, black, inputs, adv, maxRounds)
}

// RunConcurrent is Run with each process hosted in its own goroutine,
// rounds enforced purely by channel communication. Traces are identical
// to Run's.
func RunConcurrent(white, black Process, inputs [2]Value, src Source, maxRounds int) Trace {
	return sim.RunGoroutinesScenario(white, black, inputs, src, maxRounds)
}

// Check verifies the three consensus properties on a trace.
func Check(t Trace) Report { return sim.Check(t) }

// RoundsRequest selects a bounded-round solvability computation for the
// unified engine entry point: a fixed horizon, a MinRounds search (run
// incrementally — horizon r+1 extends horizon r's frontier), a
// verdict-only fast path, or the sequential reference walk. See
// chain.Request for all fields.
type RoundsRequest = chain.Request

// RoundsReport is the outcome of Analyze: the Analysis at the decided
// horizon, the Found flag for MinRounds searches, and aggregated
// EngineStats for the whole request.
type RoundsReport = chain.Report

// EngineStats is the engine instrumentation snapshot: configurations
// streamed, views interned, components merged, pool utilization, and
// wall time. Attach an observer via RoundsRequest.Observer (or
// NetAnalysisRequest.Observer) to receive one per engine round.
type EngineStats = fullinfo.Stats

// EngineOptions tunes the analysis engine behind Analyze / AnalyzeNet;
// attach via RoundsRequest.Engine or NetAnalysisRequest.Engine. The
// zero value asks for a sequential enumerating run — most callers want
// EngineDefaults() with fields overridden.
type EngineOptions = fullinfo.Options

// EngineDefaults returns the standard engine configuration
// (fullinfo.Defaults: parallel, exhaustive, automatic backend).
func EngineDefaults() EngineOptions { return fullinfo.Defaults() }

// EngineScratch is a reusable arena of engine state (interner tables,
// worker forks, frontier buffers); attach one via EngineOptions.Scratch
// so cache-miss requests reuse allocations instead of repaying them
// per run. One arena serves one run at a time — pool them (sync.Pool)
// for concurrent callers. See fullinfo.Scratch for the contract.
type EngineScratch = fullinfo.Scratch

// NewEngineScratch returns an empty reusable engine arena.
func NewEngineScratch() *EngineScratch { return fullinfo.NewScratch() }

// EngineBackend selects the analysis backend: the symbolic
// index-interval engine (chain-structured schemes decided by interval
// arithmetic on Definition III.1's index bijection), the per-history
// enumerating engine, or automatic selection with fragmentation
// fallback.
type EngineBackend = fullinfo.BackendMode

// The backend modes; see fullinfo.BackendMode.
const (
	BackendAuto      = fullinfo.BackendAuto
	BackendEnumerate = fullinfo.BackendEnumerate
	BackendSymbolic  = fullinfo.BackendSymbolic
)

// ParseEngineBackend parses a -backend flag value ("auto", "enumerate",
// or "symbolic").
func ParseEngineBackend(s string) (EngineBackend, error) {
	return fullinfo.ParseBackendMode(s)
}

// Analyze is the context-first engine entry point for two-process
// bounded-round analysis. Deadlines and cancellation propagate into the
// engine; every legacy analysis helper below delegates here.
func Analyze(ctx context.Context, req RoundsRequest) (RoundsReport, error) {
	return chain.Analyze(ctx, req)
}

// SolvableInRounds reports whether an r-round consensus algorithm exists
// for the scheme, by exhaustive full-information analysis. Unlike
// Classify, it also applies to schemes with double omissions.
//
// Deprecated: use Analyze with RoundsRequest.VerdictOnly.
func SolvableInRounds(s *Scheme, r int) bool { return chain.SolvableInRounds(s, r) }

// RoundsAnalysis is the full bounded-round solvability computation:
// configuration count, indistinguishability components, and the
// mixed-component count whose vanishing is equivalent to solvability.
type RoundsAnalysis = chain.Analysis

// AnalyzeRounds runs the exhaustive r-round analysis for the scheme and
// returns the full component counts.
//
// Deprecated: use Analyze.
func AnalyzeRounds(s *Scheme, r int) RoundsAnalysis {
	return chain.AnalyzeOpt(s, r, fullinfo.Defaults())
}

// MinRoundsSearch finds the smallest horizon ≤ maxR at which the scheme
// is bounded-round solvable.
//
// Deprecated: use Analyze with RoundsRequest.MinRounds.
func MinRoundsSearch(s *Scheme, maxR int) (int, bool) { return chain.MinRoundsSearch(s, maxR) }

// SolvableInRoundsChecked is SolvableInRounds under a context.
//
// Deprecated: use Analyze with RoundsRequest.VerdictOnly.
func SolvableInRoundsChecked(ctx context.Context, s *Scheme, r int) (bool, error) {
	return chain.SolvableInRoundsChecked(ctx, s, r)
}

// AnalyzeRoundsChecked is AnalyzeRounds under a context.
//
// Deprecated: use Analyze.
func AnalyzeRoundsChecked(ctx context.Context, s *Scheme, r int) (RoundsAnalysis, error) {
	return chain.AnalyzeChecked(ctx, s, r)
}

// MinRoundsSearchChecked is MinRoundsSearch under a context.
//
// Deprecated: use Analyze with RoundsRequest.MinRounds.
func MinRoundsSearchChecked(ctx context.Context, s *Scheme, maxR int) (int, bool, error) {
	return chain.MinRoundsSearchChecked(ctx, s, maxR)
}

// Synthesize compiles a round-optimal consensus algorithm for the scheme
// directly from the full-information analysis (works for double-omission
// schemes too). ok is false when the scheme is not r-round solvable.
func Synthesize(s *Scheme, r int) (white, black Process, ok bool) {
	return chain.Synthesize(s, r)
}

// WorstCaseAdversary plays the letters that maximize A_w's running time
// while staying inside the scheme.
func WorstCaseAdversary(l *Scheme, excluded Source) Adversary {
	return consensus.WorstCaseAdversary(l, excluded)
}

// ProtocolComplexInfo describes the one-dimensional protocol complex at a
// horizon (the topological object of the paper's conclusion).
type ProtocolComplexInfo = chain.Complex

// ProtocolComplex builds the protocol complex of the scheme at horizon r:
// vertices are (process, view) pairs, edges are configurations. For Γ^ω
// it is a single connected cycle at every horizon — the topological form
// of the impossibility.
func ProtocolComplex(s *Scheme, r int) ProtocolComplexInfo { return chain.ProtocolComplex(s, r) }

// ValencyAnalyzer explores a concrete algorithm's valencies against a
// scheme (the Section III-C proof technique, operationalized).
type ValencyAnalyzer = bivalency.Analyzer

// Valency classifications.
const (
	Valent0  = bivalency.Valent0
	Valent1  = bivalency.Valent1
	Bivalent = bivalency.Bivalent
)

// NewValencyAnalyzer builds an analyzer for an algorithm factory on a
// scheme with fixed inputs and exploration horizon.
func NewValencyAnalyzer(factory func() (white, black Process), s *Scheme, inputs [2]Value, horizon int) *ValencyAnalyzer {
	return bivalency.New(factory, s, inputs, horizon)
}

// AnalyzeComplete runs the n-process bounded-round analysis on the
// complete graph K_n with at most f losses per round (the paper's
// future-work direction): it reports whether r-round consensus exists.
//
// Deprecated: use AnalyzeNet with NetAnalysisRequest.VerdictOnly.
func AnalyzeComplete(n, f, r int) bool { return nchain.SolvableInRounds(n, f, r) }

// MinRoundsComplete finds the smallest solvable horizon ≤ maxR for
// (n, f) on K_n.
//
// Deprecated: use AnalyzeNet with NetAnalysisRequest.MinRounds.
func MinRoundsComplete(n, f, maxR int) (int, bool) { return nchain.MinRounds(n, f, maxR) }

// AnalyzeGraphConsensus decides whether r-round consensus exists on an
// arbitrary small graph with at most f message losses per round,
// quantifying over all algorithms — the exhaustive form of Theorem V.1.
//
// Deprecated: use AnalyzeNet with NetAnalysisRequest.Graph and
// VerdictOnly.
func AnalyzeGraphConsensus(g *Graph, f, r int) bool { return nchain.GraphSolvableInRounds(g, f, r) }

// MinRoundsGraph finds the smallest solvable horizon ≤ maxR for (g, f).
//
// Deprecated: use AnalyzeNet with NetAnalysisRequest.Graph and
// MinRounds.
func MinRoundsGraph(g *Graph, f, maxR int) (int, bool) { return nchain.GraphMinRounds(g, f, maxR) }

// RoleOf classifies a Γ-scenario in the special-pair matching.
func RoleOf(s Scenario) Role { return obstruction.RoleOf(s) }

// DecreasingObstructions builds the strictly decreasing sequence of
// obstructions L_0 ⊋ L_1 ⊋ … of Section IV-C.
func DecreasingObstructions(n int) []*Scheme { return obstruction.DecreasingObstructions(n) }

// UnfairWindow enumerates canonical unfair scenarios with bounded prefix.
func UnfairWindow(maxPrefix int) []Scenario { return obstruction.UnfairWindow(maxPrefix) }

// PairGraph returns the special-pair matching edges within a window.
func PairGraph(window []Scenario) []Pair { return obstruction.PairGraph(window) }

// InCanonicalMinimalObstruction tests membership in the canonical
// (non-regular) minimal obstruction Γ^ω minus all lower pair members.
func InCanonicalMinimalObstruction(s Scenario) bool {
	return obstruction.InCanonicalMinimalObstruction(s)
}
