package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/serve/wire"
)

// BatchItem is one scenario of a /v1/solve/batch request — the same
// shape as a single /v1/solvable request body.
type BatchItem struct {
	Scheme     string   `json:"scheme,omitempty"`
	Expr       string   `json:"expr,omitempty"`
	Minus      []string `json:"minus,omitempty"`
	Horizon    int      `json:"horizon,omitempty"`
	MinRounds  bool     `json:"minRounds,omitempty"`
	MaxHorizon int      `json:"maxHorizon,omitempty"`
}

// BatchVerdict is one decoded line of the batch response stream.
// Status carries what the single-item endpoint would have answered for
// this index; Verdict is left raw so callers unmarshal it into their
// own response struct only for the items they care about. When the
// stream arrived as binary frames, Decoded holds the typed verdict
// (*wire.Solvable, *wire.NetSolvable, or *wire.Chaos) instead and
// Verdict is nil; Raw() bridges the two.
type BatchVerdict struct {
	Index   int             `json:"index"`
	Status  int             `json:"status"`
	Verdict json.RawMessage `json:"verdict,omitempty"`
	Error   string          `json:"error,omitempty"`
	DiagID  string          `json:"diagId,omitempty"`
	Decoded any             `json:"-"`
}

// Raw returns the verdict body as JSON regardless of which encoding the
// stream used: Verdict verbatim for JSON streams, a re-marshal of
// Decoded for binary ones (nil when the item carried no verdict).
func (v *BatchVerdict) Raw() (json.RawMessage, error) {
	if v.Verdict != nil || v.Decoded == nil {
		return v.Verdict, nil
	}
	return json.Marshal(v.Decoded)
}

// SolveBatch POSTs items to /v1/solve/batch and invokes fn once per
// streamed verdict line, in item order, as each arrives. A whole-batch
// rejection (429 shed, 503 while draining) is retried under the usual
// backoff policy; once the stream has started nothing is retried —
// per-item failures arrive as lines with a non-200 Status, and fn
// returning a non-nil error aborts the stream and is returned as-is.
func (c *Client) SolveBatch(ctx context.Context, items []BatchItem, fn func(BatchVerdict) error) error {
	payload, err := json.Marshal(struct {
		Items []BatchItem `json:"items"`
	}{items})
	if err != nil {
		return fmt.Errorf("capserved: encoding batch: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			var retryAfter time.Duration
			if re, ok := lastErr.(*retryableError); ok {
				retryAfter = re.retryAfter
			}
			if err := c.opt.Sleep(ctx, c.backoff(attempt-1, retryAfter)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var streamed bool
		streamed, lastErr = c.batchOnce(ctx, payload, fn)
		if lastErr == nil {
			return nil
		}
		if streamed {
			return lastErr // mid-stream failure: retrying would replay delivered lines
		}
		if _, ok := lastErr.(*retryableError); !ok {
			return lastErr
		}
	}
	if re, ok := lastErr.(*retryableError); ok && re.api != nil {
		return re.api
	}
	return lastErr
}

// batchOnce performs one batch attempt. streamed reports whether any
// line reached fn, after which the attempt is no longer retryable.
func (c *Client) batchOnce(ctx context.Context, payload []byte, fn func(BatchVerdict) error) (streamed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/solve/batch", bytes.NewReader(payload))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	sentBinary := c.binaryOK.Load()
	if sentBinary {
		req.Header.Set("Accept", wire.AcceptVerdictStream)
	}
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, &retryableError{err: err}
	}
	defer resp.Body.Close()
	if sentBinary && resp.StatusCode == http.StatusNotAcceptable {
		c.binaryOK.Store(false)
		io.Copy(io.Discard, resp.Body)
		return false, &retryableError{err: fmt.Errorf("capserved: binary rejected; retrying as JSON")}
	}
	if resp.StatusCode != http.StatusOK {
		buf, rerr := readBody(resp.Body, c.opt.MaxBodyBytes)
		if rerr != nil {
			var trunc *TruncatedError
			if errors.As(rerr, &trunc) {
				return false, rerr
			}
			return false, &retryableError{err: rerr}
		}
		apiErr := &APIError{Status: resp.StatusCode, Body: string(bytes.TrimSpace(buf.Bytes()))}
		putBody(buf)
		if retryable(resp.StatusCode) {
			return false, &retryableError{api: apiErr, retryAfter: parseRetryAfter(resp)}
		}
		return false, apiErr
	}
	if strings.Contains(resp.Header.Get("Content-Type"), wire.MediaTypeVerdictStream) {
		return c.batchScanFrames(resp.Body, fn)
	}
	sc := bufio.NewScanner(resp.Body)
	// MaxBodyBytes bounds one line here, not the whole stream: each
	// verdict is its own record.
	sc.Buffer(make([]byte, 0, 64<<10), int(c.opt.MaxBodyBytes))
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var v BatchVerdict
		if err := json.Unmarshal(line, &v); err != nil {
			return streamed, fmt.Errorf("capserved: decoding batch line: %w", err)
		}
		streamed = true
		if err := fn(v); err != nil {
			return streamed, err
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return streamed, &TruncatedError{Limit: c.opt.MaxBodyBytes}
		}
		if !streamed {
			return false, &retryableError{err: err}
		}
		return streamed, err
	}
	return streamed, nil
}

// batchScanFrames consumes a binary batch stream: one BatchLine frame
// per item, decoded typed and delivered through the same callback as
// JSON lines.
func (c *Client) batchScanFrames(body io.Reader, fn func(BatchVerdict) error) (streamed bool, err error) {
	fs := wire.NewFrameScanner(body, int(c.opt.MaxBodyBytes))
	for {
		kind, payload, err := fs.Next()
		if err == io.EOF {
			return streamed, nil
		}
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				return streamed, &TruncatedError{Limit: c.opt.MaxBodyBytes}
			}
			if !streamed {
				return false, &retryableError{err: err}
			}
			return streamed, err
		}
		if kind != wire.KindBatchLine {
			return streamed, fmt.Errorf("capserved: unexpected %s frame in batch stream", kind)
		}
		line, err := wire.DecodeBatchLine(payload)
		if err != nil {
			return streamed, fmt.Errorf("capserved: decoding batch frame: %w", err)
		}
		streamed = true
		v := BatchVerdict{
			Index:   line.Index,
			Status:  line.Status,
			Error:   line.Error,
			DiagID:  line.DiagID,
			Decoded: line.Verdict,
		}
		if err := fn(v); err != nil {
			return streamed, err
		}
	}
}
