package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
)

// Warm-tier and cluster-membership helpers. The wire shapes mirror
// internal/serve (WarmEntry) and internal/serve/cluster (the members
// table) but are declared locally: the client package stays a thin
// protocol speaker with no dependency on the server implementations.

// WarmEntry is one warm verdict on the wire: canonical cache key plus
// the marshalled verdict body.
type WarmEntry struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// WarmExport fetches up to max warm verdicts from the node (max <= 0
// takes the server default). truncated reports that the node had more.
func (c *Client) WarmExport(ctx context.Context, max int) (entries []WarmEntry, truncated bool, err error) {
	path := "/v1/warm/export"
	if max > 0 {
		path = fmt.Sprintf("%s?max=%d", path, max)
	}
	var resp struct {
		Entries   []WarmEntry `json:"entries"`
		Truncated bool        `json:"truncated"`
	}
	if err := c.Do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, false, err
	}
	return resp.Entries, resp.Truncated, nil
}

// WarmImport pushes warm verdicts into the node's caches (and its warm
// store when one is attached). Undecodable entries are skipped by the
// server, not rejected.
func (c *Client) WarmImport(ctx context.Context, entries []WarmEntry) (imported, skipped int, err error) {
	req := struct {
		Entries []WarmEntry `json:"entries"`
	}{Entries: entries}
	var resp struct {
		Imported int `json:"imported"`
		Skipped  int `json:"skipped"`
	}
	if err := c.Do(ctx, http.MethodPost, "/v1/warm/import", req, &resp); err != nil {
		return 0, 0, err
	}
	return resp.Imported, resp.Skipped, nil
}

// Member is one coordinator cluster member as reported by the admin
// surface.
type Member struct {
	Backend  string `json:"backend"`
	State    string `json:"state"`
	Routable bool   `json:"routable"`
	Breaker  string `json:"breaker"`
}

// MembersReply is the coordinator's members table.
type MembersReply struct {
	Epoch    int64    `json:"epoch"`
	Members  []Member `json:"members"`
	Routable int      `json:"routable"`
}

// Members fetches the coordinator's live membership table.
func (c *Client) Members(ctx context.Context) (MembersReply, error) {
	var resp MembersReply
	err := c.Do(ctx, http.MethodGet, "/v1/cluster/members", nil, &resp)
	return resp, err
}

// AddMember joins a backend to the coordinator's ring (a new epoch).
func (c *Client) AddMember(ctx context.Context, backend string) (MembersReply, error) {
	req := struct {
		Backend string `json:"backend"`
	}{Backend: backend}
	var resp MembersReply
	err := c.Do(ctx, http.MethodPost, "/v1/cluster/members", req, &resp)
	return resp, err
}

// RemoveMember removes a backend from the coordinator's ring.
func (c *Client) RemoveMember(ctx context.Context, backend string) (MembersReply, error) {
	var resp MembersReply
	err := c.Do(ctx, http.MethodDelete, "/v1/cluster/members?backend="+url.QueryEscape(backend), nil, &resp)
	return resp, err
}
