package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// recordingSleep captures requested waits instead of sleeping, making
// retry timing fully deterministic.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestRetriesThroughLoadShedding(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, Options{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(1)),
		Sleep:       recordingSleep(&delays),
	})
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.Do(context.Background(), http.MethodPost, "/x", map[string]int{"a": 1}, &out); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !out.OK {
		t.Fatal("response not decoded")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(delays) != 2 {
		t.Fatalf("client slept %d times, want 2", len(delays))
	}
	// Retry-After: 3 dominates the 10ms-scale jittered backoff.
	for i, d := range delays {
		if d != 3*time.Second {
			t.Fatalf("delay %d = %s, want the server-directed 3s", i, d)
		}
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad horizon", http.StatusBadRequest)
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, Options{Sleep: recordingSleep(&delays), Rand: rand.New(rand.NewSource(1))})
	err := c.Do(context.Background(), http.MethodPost, "/x", map[string]int{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if calls.Load() != 1 || len(delays) != 0 {
		t.Fatalf("400 was retried: %d calls, %d sleeps", calls.Load(), len(delays))
	}
}

func TestRetriesExhaustedSurfacesLastError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, Options{
		MaxAttempts: 3,
		Sleep:       recordingSleep(&delays),
		Rand:        rand.New(rand.NewSource(1)),
	})
	err := c.Do(context.Background(), http.MethodGet, "/x", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503 after exhaustion", err)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times for 3 attempts, want 2", len(delays))
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	c := New("http://unused", Options{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(42)),
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	// The jitter window doubles per retry but never exceeds MaxBackoff.
	for retry, wantMax := range []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
		400 * time.Millisecond, // still capped
	} {
		for i := 0; i < 50; i++ {
			if d := c.backoff(retry, 0); d < 0 || d > wantMax {
				t.Fatalf("backoff(%d) = %s outside [0, %s]", retry, d, wantMax)
			}
		}
	}
	// A server Retry-After longer than the window always wins.
	if d := c.backoff(0, 2*time.Second); d != 2*time.Second {
		t.Fatalf("backoff with Retry-After = %s, want 2s", d)
	}
	// Pathological retry counts must clamp to MaxBackoff, not overflow
	// the exponential window negative (which would panic Int63n).
	for _, retry := range []int{32, 33, 63, 64, 1 << 20} {
		if d := c.backoff(retry, 0); d < 0 || d > 400*time.Millisecond {
			t.Fatalf("backoff(%d) = %s outside [0, 400ms]", retry, d)
		}
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, Options{
		MaxAttempts: 10,
		Rand:        rand.New(rand.NewSource(1)),
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the caller gives up while the client is waiting
			return ctx.Err()
		},
	})
	err := c.Do(ctx, http.MethodGet, "/x", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestHealthzAgainstRealServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || r.Method != http.MethodGet {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
}

// TestRetriesThroughFlakySequences drives the client against servers
// that fail once and then recover — the load-shed (429) and transient
// internal-error (500) flavors a clustered deployment produces — and
// checks the call succeeds on the second attempt with a jittered
// backoff inside the configured window.
func TestRetriesThroughFlakySequences(t *testing.T) {
	for _, tc := range []struct {
		name  string
		first int
	}{
		{"shed-then-ok", http.StatusTooManyRequests},
		{"500-then-ok", http.StatusInternalServerError},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1) == 1 {
					w.WriteHeader(tc.first)
					return
				}
				w.Write([]byte(`{"ok":true}`))
			}))
			defer ts.Close()

			var delays []time.Duration
			c := New(ts.URL, Options{
				MaxAttempts: 3,
				BaseBackoff: 20 * time.Millisecond,
				MaxBackoff:  80 * time.Millisecond,
				Rand:        rand.New(rand.NewSource(7)),
				Sleep:       recordingSleep(&delays),
			})
			var out struct {
				OK bool `json:"ok"`
			}
			if err := c.Do(context.Background(), http.MethodPost, "/x", map[string]int{}, &out); err != nil {
				t.Fatalf("Do: %v", err)
			}
			if got := calls.Load(); got != 2 {
				t.Fatalf("server saw %d calls, want 2", got)
			}
			if len(delays) != 1 {
				t.Fatalf("recorded %d backoffs, want 1: %v", len(delays), delays)
			}
			// Full jitter over the first window: 0 <= d <= BaseBackoff.
			if delays[0] < 0 || delays[0] > 20*time.Millisecond {
				t.Fatalf("first backoff %s outside [0, 20ms]", delays[0])
			}
		})
	}
}

// TestBackoffClampedUnderPersistentFailure checks that a long failure
// streak never waits beyond MaxBackoff per retry, however many attempts
// the policy allows.
func TestBackoffClampedUnderPersistentFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, Options{
		MaxAttempts: 8,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(3)),
		Sleep:       recordingSleep(&delays),
	})
	err := c.Do(context.Background(), http.MethodPost, "/x", map[string]int{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("Do = %v, want APIError 500 after exhaustion", err)
	}
	if len(delays) != 7 {
		t.Fatalf("recorded %d backoffs, want 7", len(delays))
	}
	for i, d := range delays {
		if d < 0 || d > 40*time.Millisecond {
			t.Fatalf("backoff %d = %s escapes the 40ms clamp", i, d)
		}
	}
}

// TestDeadlineBoundsRealBackoff uses the real context-aware sleep: a
// server that always 500s plus a multi-second backoff must not hold a
// caller past its deadline.
func TestDeadlineBoundsRealBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(ts.URL, Options{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Second,
		MaxBackoff:  10 * time.Second,
		Rand:        rand.New(rand.NewSource(9)),
		// Default Sleep: the real context-aware wait.
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Do(ctx, http.MethodPost, "/x", map[string]int{}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do returned after %s; backoff ignored the deadline", elapsed)
	}
}
