package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMaxBodyBytesTruncation(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprintf(w, `{"pad":%q}`, strings.Repeat("x", 4096))
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, Options{
		MaxBodyBytes: 256,
		Sleep:        recordingSleep(&delays),
		Rand:         rand.New(rand.NewSource(1)),
	})
	err := c.Do(context.Background(), http.MethodGet, "/x", nil, &struct{}{})
	var trunc *TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("err = %v, want *TruncatedError", err)
	}
	if trunc.Limit != 256 {
		t.Fatalf("TruncatedError.Limit = %d, want 256", trunc.Limit)
	}
	// Truncation is deterministic: the client must not have retried.
	if calls.Load() != 1 || len(delays) != 0 {
		t.Fatalf("truncated reply was retried (calls=%d, sleeps=%d)", calls.Load(), len(delays))
	}

	// An exactly-at-limit body must still pass.
	body := `{"ok":true}`
	c2 := New(ts.URL, Options{MaxBodyBytes: int64(len(body))})
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(body))
	}))
	defer ts2.Close()
	c2.base = ts2.URL
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c2.Do(context.Background(), http.MethodGet, "/x", nil, &out); err != nil || !out.OK {
		t.Fatalf("exactly-at-limit body: err=%v ok=%v, want clean decode", err, out.OK)
	}
}

func TestSolveBatchStreamsInOrder(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/solve/batch" {
			http.NotFound(w, r)
			return
		}
		var req struct {
			Items []BatchItem `json:"items"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := range req.Items {
			if req.Items[i].Scheme == "bogus" {
				fmt.Fprintf(w, `{"index":%d,"status":400,"error":"unknown scheme"}`+"\n", i)
				continue
			}
			fmt.Fprintf(w, `{"index":%d,"status":200,"verdict":{"solvable":true,"horizon":%d}}`+"\n",
				i, req.Items[i].Horizon)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	var got []BatchVerdict
	err := c.SolveBatch(context.Background(), []BatchItem{
		{Scheme: "S1", Horizon: 2},
		{Scheme: "bogus", Horizon: 2},
		{Scheme: "S1", Horizon: 3},
	}, func(v BatchVerdict) error {
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("streamed %d verdicts, want 3", len(got))
	}
	for i, v := range got {
		if v.Index != i {
			t.Fatalf("verdict %d has index %d; out of order", i, v.Index)
		}
	}
	if got[1].Status != http.StatusBadRequest || got[1].Error == "" {
		t.Fatalf("verdict 1 = %+v, want per-item 400", got[1])
	}
	var verdict struct {
		Solvable bool `json:"solvable"`
		Horizon  int  `json:"horizon"`
	}
	if err := json.Unmarshal(got[2].Verdict, &verdict); err != nil {
		t.Fatal(err)
	}
	if !verdict.Solvable || verdict.Horizon != 3 {
		t.Fatalf("verdict 2 decoded to %+v", verdict)
	}
}

func TestSolveBatchRetriesWholeBatchShed(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"index":0,"status":200,"verdict":{"solvable":false}}`)
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, Options{
		Sleep: recordingSleep(&delays),
		Rand:  rand.New(rand.NewSource(1)),
	})
	var lines int
	err := c.SolveBatch(context.Background(), []BatchItem{{Scheme: "S1"}}, func(v BatchVerdict) error {
		lines++
		return nil
	})
	if err != nil {
		t.Fatalf("SolveBatch after shed: %v", err)
	}
	if calls.Load() != 2 || lines != 1 {
		t.Fatalf("calls=%d lines=%d, want the shed attempt retried once", calls.Load(), lines)
	}
	if len(delays) != 1 || delays[0] != time.Second {
		t.Fatalf("delays = %v, want the server-directed 1s", delays)
	}
}

func TestSolveBatchCallbackErrorAborts(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"index":0,"status":200,"verdict":{}}`)
		fmt.Fprintln(w, `{"index":1,"status":200,"verdict":{}}`)
	}))
	defer ts.Close()

	boom := errors.New("stop here")
	c := New(ts.URL, Options{})
	var seen int
	err := c.SolveBatch(context.Background(), []BatchItem{{Scheme: "S1"}, {Scheme: "S1"}},
		func(v BatchVerdict) error {
			seen++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error back verbatim", err)
	}
	if seen != 1 {
		t.Fatalf("callback ran %d times after erroring, want 1", seen)
	}
	// Mid-stream failures must not be retried.
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1", calls.Load())
	}
}
