package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestWarmExportImportRoundTrip drives the warm-sync protocol against a
// stub speaking the server's wire shapes: export decodes entries and
// the truncation flag, import posts them back and reads the counts.
func TestWarmExportImportRoundTrip(t *testing.T) {
	var gotImport struct {
		Entries []WarmEntry `json:"entries"`
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/warm/export":
			if r.URL.Query().Get("max") != "7" {
				t.Errorf("export max = %q, want 7", r.URL.Query().Get("max"))
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"entries":[{"k":"classify|x","v":{"class":"A"}}],"truncated":true}`))
		case "/v1/warm/import":
			if err := json.NewDecoder(r.Body).Decode(&gotImport); err != nil {
				t.Errorf("decoding import body: %v", err)
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"imported":1,"skipped":0}`))
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	entries, truncated, err := c.WarmExport(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].K != "classify|x" || !truncated {
		t.Fatalf("export = %+v truncated=%v, want 1 entry and truncated", entries, truncated)
	}

	imported, skipped, err := c.WarmImport(context.Background(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if imported != 1 || skipped != 0 {
		t.Fatalf("import = (%d, %d), want (1, 0)", imported, skipped)
	}
	if len(gotImport.Entries) != 1 || gotImport.Entries[0].K != "classify|x" {
		t.Fatalf("server saw import body %+v", gotImport)
	}
}

// TestMembershipAdminMethods checks the three admin verbs hit the right
// routes with the right payloads.
func TestMembershipAdminMethods(t *testing.T) {
	table := `{"epoch":3,"routable":2,"members":[
		{"backend":"http://a","state":"active","routable":true,"breaker":"closed"},
		{"backend":"http://b","state":"ejected","routable":false,"breaker":"open"}]}`
	var sawPost, sawDelete string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/members" {
			http.NotFound(w, r)
			return
		}
		switch r.Method {
		case http.MethodPost:
			var req struct {
				Backend string `json:"backend"`
			}
			json.NewDecoder(r.Body).Decode(&req)
			sawPost = req.Backend
		case http.MethodDelete:
			sawDelete = r.URL.Query().Get("backend")
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(table))
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	mr, err := c.Members(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 3 || len(mr.Members) != 2 || mr.Members[1].State != "ejected" {
		t.Fatalf("Members = %+v", mr)
	}
	if _, err := c.AddMember(context.Background(), "http://c"); err != nil {
		t.Fatal(err)
	}
	if sawPost != "http://c" {
		t.Fatalf("AddMember posted %q", sawPost)
	}
	if _, err := c.RemoveMember(context.Background(), "http://b"); err != nil {
		t.Fatal(err)
	}
	if sawDelete != "http://b" {
		t.Fatalf("RemoveMember deleted %q", sawDelete)
	}
}
