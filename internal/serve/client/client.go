// Package client is a small retrying HTTP client for capserved. It
// speaks the service's protocol — binary verdict frames when the server
// offers them, JSON otherwise — and absorbs its load-shedding
// semantics: 429/503 responses (and transport errors) are retried with
// capped exponential backoff plus decorrelated jitter, honoring the
// server's Retry-After header when present, all bounded by the caller's
// context.
//
// Binary negotiation is transparent: verdict requests carry an Accept
// header preferring application/x-capverdict, the reply's Content-Type
// (and a frame-magic sniff) decides the decode path, and a server that
// rejects the Accept outright (406) flips the client back to JSON for
// the rest of its lifetime. Callers see identical decoded structs
// either way.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/wire"
)

// Options tunes the retry policy. The zero value gives sane defaults.
type Options struct {
	// MaxAttempts bounds total tries per call (default 5).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Rand seeds the jitter (default: a time-seeded source). Injectable
	// for deterministic tests.
	Rand *rand.Rand
	// Sleep is the wait primitive (default: context-aware sleep).
	// Injectable so tests can record delays instead of waiting.
	Sleep func(ctx context.Context, d time.Duration) error
	// MaxBodyBytes caps how many bytes of one response body (or one
	// streamed batch line / frame) the client will buffer (default
	// 1 MiB). A longer reply fails with *TruncatedError instead of being
	// silently clipped into a JSON parse error.
	MaxBodyBytes int64
	// DisableBinary forces JSON even for verdict requests the server
	// could answer with binary frames.
	DisableBinary bool
}

func (o *Options) defaults() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
}

// Client talks to one capserved base URL.
type Client struct {
	base string
	opt  Options
	// binaryOK records whether the server tolerates binary Accept
	// headers; a 406 clears it and the client stays on JSON.
	binaryOK atomic.Bool
}

// New builds a client for a base URL such as "http://127.0.0.1:8321".
func New(base string, opt Options) *Client {
	opt.defaults()
	c := &Client{base: base, opt: opt}
	c.binaryOK.Store(!opt.DisableBinary)
	return c
}

// APIError is a non-retryable (or retries-exhausted) HTTP error reply.
type APIError struct {
	Status int
	Body   string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("capserved: HTTP %d: %s", e.Status, e.Body)
}

// TruncatedError reports a response (or one batch stream line) larger
// than Options.MaxBodyBytes. It is not retried: the same query would
// produce the same oversized reply, so the caller must raise the cap.
type TruncatedError struct {
	Limit int64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("capserved: response truncated at %d bytes; raise Options.MaxBodyBytes", e.Limit)
}

// bodyPool recycles response read buffers: the retry loop and the warm
// sync paths pull whole bodies often enough that per-call ReadAll
// growth was a measurable allocation source.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// bodyPoolMax is the largest buffer returned to the pool; one giant
// warm-export reply must not pin its footprint forever.
const bodyPoolMax = 4 << 20

func getBody() *bytes.Buffer {
	b := bodyPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBody(b *bytes.Buffer) {
	if b.Cap() <= bodyPoolMax {
		bodyPool.Put(b)
	}
}

// readBody drains r into a pooled buffer, failing with *TruncatedError
// past limit. The caller owns the returned buffer and must putBody it
// after its Bytes() are no longer referenced.
func readBody(r io.Reader, limit int64) (*bytes.Buffer, error) {
	buf := getBody()
	// Read one byte past the limit: exactly-limit bodies are legal, and
	// the extra byte distinguishes "fits" from "clipped".
	if _, err := buf.ReadFrom(io.LimitReader(r, limit+1)); err != nil {
		putBody(buf)
		return nil, err
	}
	if int64(buf.Len()) > limit {
		putBody(buf)
		return nil, &TruncatedError{Limit: limit}
	}
	return buf, nil
}

// ReadBounded drains r into a pooled buffer, failing with
// *TruncatedError past limit. It is the package's pooled replacement
// for io.ReadAll at response-consumption sites (the cluster coordinator
// uses it for shard replies and handoff bodies). The caller must
// ReleaseBuffer the result once its Bytes() are no longer referenced —
// and must copy bytes that outlive the release.
func ReadBounded(r io.Reader, limit int64) (*bytes.Buffer, error) {
	return readBody(r, limit)
}

// ReleaseBuffer returns a ReadBounded buffer to the pool.
func ReleaseBuffer(b *bytes.Buffer) {
	putBody(b)
}

// retryable reports whether a status is worth retrying: the server's
// load-shedding and fast-fail replies, bad gateways in front of it, and
// plain 500s — every analysis query is idempotent, and a 500 from one
// attempt (an injected fault, a panic isolated to one request) says
// nothing about the next.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusInternalServerError:
		return true
	}
	return false
}

// backoff computes the wait before attempt i (0-based retry count):
// exponential growth from BaseBackoff, capped at MaxBackoff, with full
// jitter — a uniformly random fraction of the window, so herds of
// clients desynchronize. A server Retry-After overrides the computed
// wait when it is longer.
func (c *Client) backoff(retry int, retryAfter time.Duration) time.Duration {
	// Double up to the cap instead of shifting by retry outright: a large
	// retry count would overflow the shift negative and panic Int63n.
	window := c.opt.BaseBackoff
	for i := 0; i < retry && window < c.opt.MaxBackoff; i++ {
		window <<= 1
	}
	if window <= 0 || window > c.opt.MaxBackoff {
		window = c.opt.MaxBackoff
	}
	d := time.Duration(c.opt.Rand.Int63n(int64(window) + 1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads a Retry-After response header (seconds form).
func parseRetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// Do POSTs reqBody as JSON to path (or GETs when reqBody is nil) and
// decodes the JSON reply into respBody (skipped when nil). It retries
// retryable failures with capped backoff under ctx.
func (c *Client) Do(ctx context.Context, method, path string, reqBody, respBody any) error {
	var payload []byte
	if reqBody != nil {
		var err error
		if payload, err = json.Marshal(reqBody); err != nil {
			return fmt.Errorf("capserved: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			var retryAfter time.Duration
			if re, ok := lastErr.(*retryableError); ok {
				retryAfter = re.retryAfter
			}
			if err := c.opt.Sleep(ctx, c.backoff(attempt-1, retryAfter)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = c.once(ctx, method, path, payload, respBody)
		if lastErr == nil {
			return nil
		}
		if _, ok := lastErr.(*retryableError); !ok {
			return lastErr
		}
	}
	if re, ok := lastErr.(*retryableError); ok && re.api != nil {
		return re.api
	}
	return lastErr
}

// retryableError wraps a failure the retry loop may try again.
type retryableError struct {
	err        error
	api        *APIError
	retryAfter time.Duration
}

func (r *retryableError) Error() string {
	if r.api != nil {
		return r.api.Error()
	}
	return r.err.Error()
}

// binaryDecodable reports whether respBody is a verdict pointer the
// binary protocol can fill — the only shapes worth negotiating frames
// for. Everything else (stats maps, health bodies) stays JSON.
func binaryDecodable(respBody any) bool {
	switch respBody.(type) {
	case *wire.Solvable, *wire.NetSolvable, *wire.Chaos:
		return true
	}
	return false
}

func (c *Client) once(ctx context.Context, method, path string, payload []byte, respBody any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	sentBinary := c.binaryOK.Load() && binaryDecodable(respBody)
	if sentBinary {
		req.Header.Set("Accept", wire.AcceptVerdict)
	}
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &retryableError{err: err}
	}
	defer resp.Body.Close()
	if sentBinary && resp.StatusCode == http.StatusNotAcceptable {
		// A strict server refused the binary Accept: remember, and let
		// the retry loop re-issue the request as plain JSON.
		c.binaryOK.Store(false)
		io.Copy(io.Discard, resp.Body)
		return &retryableError{err: fmt.Errorf("capserved: binary rejected; retrying as JSON")}
	}
	buf, err := readBody(resp.Body, c.opt.MaxBodyBytes)
	if err != nil {
		var trunc *TruncatedError
		if errors.As(err, &trunc) {
			return err // deterministic: retrying re-fetches the same oversized body
		}
		return &retryableError{err: err}
	}
	defer putBody(buf)
	raw := buf.Bytes()
	if resp.StatusCode >= 400 {
		apiErr := &APIError{Status: resp.StatusCode, Body: string(bytes.TrimSpace(raw))}
		if retryable(resp.StatusCode) {
			return &retryableError{api: apiErr, retryAfter: parseRetryAfter(resp)}
		}
		return apiErr
	}
	if respBody != nil {
		if wire.IsFrame(raw) {
			if err := wire.UnmarshalInto(raw, respBody); err != nil {
				return fmt.Errorf("capserved: decoding frame: %w", err)
			}
			return nil
		}
		// JSON body — either we never asked for binary, or the server
		// (an older release) ignored the Accept header. Both are fine.
		if err := json.Unmarshal(raw, respBody); err != nil {
			return fmt.Errorf("capserved: decoding response: %w", err)
		}
	}
	return nil
}

// Healthz polls GET /healthz once.
func (c *Client) Healthz(ctx context.Context) error {
	return c.Do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Readyz polls GET /readyz once (retrying per policy).
func (c *Client) Readyz(ctx context.Context) error {
	return c.Do(ctx, http.MethodGet, "/readyz", nil, nil)
}
