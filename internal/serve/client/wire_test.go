package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/serve/wire"
)

// The client-side half of the binary negotiation contract: frames are
// requested for decodable verdict types, decoded when the server sends
// them, and abandoned — transparently, per client — when the server
// rejects the Accept outright.

// TestClientDecodesBinaryVerdict pins the happy path: a server that
// honors the binary Accept answers with one frame, and the client
// decodes it into the caller's verdict struct.
func TestClientDecodesBinaryVerdict(t *testing.T) {
	want := wire.Solvable{Scheme: "S1", Horizon: 3, Solvable: true, Configs: 81, ConfigsExact: "48630661836227715204"}
	var sawAccept atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawAccept.Store(r.Header.Get("Accept"))
		b, err := wire.Marshal(&want)
		if err != nil {
			t.Errorf("Marshal: %v", err)
		}
		w.Header().Set("Content-Type", wire.MediaTypeVerdict)
		w.Write(b)
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	var got wire.Solvable
	if err := c.Do(context.Background(), http.MethodPost, "/v1/solvable", map[string]any{"scheme": "S1", "horizon": 3}, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	if a, _ := sawAccept.Load().(string); !strings.Contains(a, wire.MediaTypeVerdict) {
		t.Fatalf("client sent Accept %q, want the binary media type", a)
	}
}

// TestClientFallsBackOnJSONReply covers old servers: they ignore the
// binary Accept and answer JSON, and the client must decode that
// without fuss (sniffing, not trusting its own request).
func TestClientFallsBackOnJSONReply(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire.Solvable{Scheme: "S1", Horizon: 3, Solvable: true})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	var got wire.Solvable
	if err := c.Do(context.Background(), http.MethodPost, "/v1/solvable", map[string]any{"scheme": "S1"}, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Solvable || got.Scheme != "S1" {
		t.Fatalf("decoded %+v from a JSON reply", got)
	}
}

// TestClient406DisablesBinary covers a hostile intermediary (or a
// strict future server) that 406es the binary Accept: the client must
// retry the request as JSON and remember the answer, so the second
// request never sends the binary Accept at all.
func TestClient406DisablesBinary(t *testing.T) {
	var requests []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		accept := r.Header.Get("Accept")
		requests = append(requests, accept)
		if strings.Contains(accept, wire.MediaTypeVerdict) {
			w.WriteHeader(http.StatusNotAcceptable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire.Solvable{Scheme: "S1", Solvable: true})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{MaxAttempts: 3})
	var got wire.Solvable
	if err := c.Do(context.Background(), http.MethodPost, "/v1/solvable", map[string]any{"scheme": "S1"}, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Solvable {
		t.Fatalf("decoded %+v after the 406 fallback", got)
	}
	var gotAgain wire.Solvable
	if err := c.Do(context.Background(), http.MethodPost, "/v1/solvable", map[string]any{"scheme": "S1"}, &gotAgain); err != nil {
		t.Fatal(err)
	}
	if len(requests) != 3 {
		t.Fatalf("server saw %d requests (%q), want 3: binary, JSON retry, JSON", len(requests), requests)
	}
	if !strings.Contains(requests[0], wire.MediaTypeVerdict) {
		t.Fatalf("first request Accept = %q, want binary", requests[0])
	}
	for _, a := range requests[1:] {
		if strings.Contains(a, wire.MediaTypeVerdict) {
			t.Fatalf("client kept sending binary Accept after a 406: %q", requests)
		}
	}
}

// TestClientDisableBinaryOption pins the opt-out: with DisableBinary
// the client never names the frame media type.
func TestClientDisableBinaryOption(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), wire.MediaTypeVerdict) {
			t.Errorf("DisableBinary client sent Accept %q", r.Header.Get("Accept"))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wire.Solvable{Scheme: "S1"})
	}))
	defer ts.Close()

	c := New(ts.URL, Options{DisableBinary: true})
	var got wire.Solvable
	if err := c.Do(context.Background(), http.MethodPost, "/v1/solvable", map[string]any{"scheme": "S1"}, &got); err != nil {
		t.Fatal(err)
	}
}

// TestBatchStreamsFrames pins the batch half: a server streaming
// BatchLine frames under the stream media type reaches the caller's
// callback with typed decoded verdicts.
func TestBatchStreamsFrames(t *testing.T) {
	lines := []*wire.BatchLine{
		{Index: 0, Status: 200, Verdict: &wire.Solvable{Scheme: "S1", Horizon: 2, Solvable: true}},
		{Index: 1, Status: 400, Error: "unknown scheme"},
		{Index: 2, Status: 200, Verdict: &wire.Solvable{Scheme: "S2", Horizon: 3}},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept"), wire.MediaTypeVerdictStream) {
			t.Errorf("batch Accept = %q, want the stream media type", r.Header.Get("Accept"))
		}
		w.Header().Set("Content-Type", wire.MediaTypeVerdictStream)
		var out []byte
		for _, l := range lines {
			var err error
			out, err = wire.AppendVerdict(out, l)
			if err != nil {
				t.Errorf("AppendVerdict: %v", err)
			}
		}
		w.Write(out)
	}))
	defer ts.Close()

	c := New(ts.URL, Options{})
	var got []BatchVerdict
	items := []BatchItem{{Scheme: "S1", Horizon: 2}, {Scheme: "nope", Horizon: 2}, {Scheme: "S2", Horizon: 3}}
	err := c.SolveBatch(context.Background(), items, func(v BatchVerdict) error {
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lines) {
		t.Fatalf("callback saw %d lines, want %d", len(got), len(lines))
	}
	for i, v := range got {
		if v.Index != lines[i].Index || v.Status != lines[i].Status || v.Error != lines[i].Error {
			t.Fatalf("line %d = %+v, want %+v", i, v, lines[i])
		}
	}
	sv, ok := got[0].Decoded.(*wire.Solvable)
	if !ok || sv.Scheme != "S1" || !sv.Solvable {
		t.Fatalf("line 0 decoded verdict = %#v, want the typed solvable", got[0].Decoded)
	}
	raw, err := got[2].Raw()
	if err != nil {
		t.Fatal(err)
	}
	var back wire.Solvable
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("Raw() of a frame-decoded verdict is not JSON: %v", err)
	}
	if back.Scheme != "S2" {
		t.Fatalf("Raw() round trip = %+v", back)
	}
}
