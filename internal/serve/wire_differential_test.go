package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve/wire"
)

// The endpoint differential suite: every verdict a node serves must be
// identical through the JSON and binary encodings — same fields, same
// values, same per-item error shapes — so a client's encoding choice
// can never change what it learns.

// postAccept is postJSON with an explicit Accept header.
func postAccept(t *testing.T, url, body, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", accept)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// normalizeVerdict zeroes the per-request serving metadata (cache tier,
// shared-flight flag, wall-clock measurements) that legitimately
// differs between two requests for the same verdict.
func normalizeVerdict(v any) {
	switch t := v.(type) {
	case *wire.Solvable:
		t.Cached, t.Shared, t.ElapsedMs = false, false, 0
		if t.Engine != nil {
			t.Engine.WallNanos = 0
		}
	case *wire.NetSolvable:
		t.Cached, t.ElapsedMs = false, 0
		if t.Engine != nil {
			t.Engine.WallNanos = 0
		}
	case *wire.Chaos:
		t.ElapsedMs = 0
	}
}

// TestSingleEndpointBinaryDifferential drives each single-verdict
// endpoint twice — once negotiating JSON, once frames — and requires
// the decoded verdicts to be equal modulo serving metadata.
func TestSingleEndpointBinaryDifferential(t *testing.T) {
	cases := []struct {
		name, path, body string
		fresh            func() any
	}{
		{"solvable", "/v1/solvable", `{"scheme":"S1","horizon":3}`, func() any { return new(wire.Solvable) }},
		{"solvable-minrounds", "/v1/solvable", `{"scheme":"S2","minRounds":true,"maxHorizon":4}`, func() any { return new(wire.Solvable) }},
		{"net-solvable", "/v1/net/solvable", `{"graph":"cycle","n":4,"f":1,"rounds":2}`, func() any { return new(wire.NetSolvable) }},
		{"chaos", "/v1/chaos", `{"scheme":"S1","executions":25,"seed":7,"maxRounds":64,"maxPrefix":4,"noShrink":true}`, func() any { return new(wire.Chaos) }},
	}
	_, ts := testServer(t, Config{})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			jresp, jraw := postJSON(t, ts.URL+c.path, c.body)
			if jresp.StatusCode != http.StatusOK {
				t.Fatalf("JSON %s = %d: %s", c.path, jresp.StatusCode, jraw)
			}
			bresp, braw := postAccept(t, ts.URL+c.path, c.body, wire.AcceptVerdict)
			if bresp.StatusCode != http.StatusOK {
				t.Fatalf("binary %s = %d: %s", c.path, bresp.StatusCode, braw)
			}
			if ct := bresp.Header.Get("Content-Type"); ct != wire.MediaTypeVerdict {
				t.Fatalf("binary Content-Type = %q, want %q", ct, wire.MediaTypeVerdict)
			}
			if !wire.IsFrame(braw) {
				t.Fatalf("binary body is not a frame: %q", braw)
			}
			if len(braw) >= len(jraw) {
				t.Fatalf("frame (%d bytes) is not smaller than JSON (%d bytes)", len(braw), len(jraw))
			}
			jv, bv := c.fresh(), c.fresh()
			if err := json.Unmarshal(jraw, jv); err != nil {
				t.Fatal(err)
			}
			if err := wire.UnmarshalInto(braw, bv); err != nil {
				t.Fatalf("decoding frame: %v", err)
			}
			normalizeVerdict(jv)
			normalizeVerdict(bv)
			if !reflect.DeepEqual(jv, bv) {
				t.Fatalf("binary verdict differs from JSON:\n bin %#v\njson %#v", bv, jv)
			}
		})
	}
}

// batchCase is one batch endpoint with a mixed item set (valid, invalid,
// repeat) and the typed decode for its verdicts.
type batchCase struct {
	name, path string
	items      []string
	badIdx     int
	fresh      func() any
}

func batchCases() []batchCase {
	return []batchCase{
		{
			name: "solve", path: "/v1/solve/batch",
			items: []string{
				`{"scheme":"S1","horizon":2}`,
				`{"scheme":"no-such-scheme","horizon":2}`,
				`{"scheme":"S2","horizon":3}`,
				`{"scheme":"S1","horizon":2}`,
			},
			badIdx: 1,
			fresh:  func() any { return new(wire.Solvable) },
		},
		{
			name: "net-solve", path: "/v1/net/solve/batch",
			items: []string{
				`{"graph":"cycle","n":4,"f":1,"rounds":2}`,
				`{"graph":"complete","n":50,"f":1,"rounds":2}`,
				`{"graph":"cycle","n":5,"f":1,"rounds":3}`,
			},
			badIdx: 1,
			fresh:  func() any { return new(wire.NetSolvable) },
		},
		{
			name: "chaos", path: "/v1/chaos/batch",
			items: []string{
				`{"scheme":"S1","executions":10,"seed":7,"maxRounds":32,"maxPrefix":3,"noShrink":true}`,
				`{"scheme":"S1","executions":999999999}`,
				`{"scheme":"S1","executions":15,"seed":9,"maxRounds":32,"maxPrefix":3,"noShrink":true}`,
			},
			badIdx: 1,
			fresh:  func() any { return new(wire.Chaos) },
		},
	}
}

// jsonBatchLine is the raw-verdict JSON decode of one stream line, so
// one shape serves all three endpoints.
type jsonBatchLine struct {
	Index   int             `json:"index"`
	Status  int             `json:"status"`
	Verdict json.RawMessage `json:"verdict,omitempty"`
	Error   string          `json:"error,omitempty"`
	DiagID  string          `json:"diagId,omitempty"`
}

// TestBatchEndpointsBinaryDifferential runs each batch endpoint's mixed
// item set against two fresh nodes — one speaking JSON lines, one
// frames — and requires identical per-item statuses, errors, and
// verdicts. Fresh nodes on both sides keep cache states symmetric, so
// even the in-batch repeat behaves the same.
func TestBatchEndpointsBinaryDifferential(t *testing.T) {
	for _, c := range batchCases() {
		t.Run(c.name, func(t *testing.T) {
			body := `{"items":[` + strings.Join(c.items, ",") + `]}`

			_, jts := testServer(t, Config{})
			jresp, jraw := postJSON(t, jts.URL+c.path, body)
			if jresp.StatusCode != http.StatusOK {
				t.Fatalf("JSON batch = %d: %s", jresp.StatusCode, jraw)
			}
			if ct := jresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("JSON batch Content-Type = %q", ct)
			}
			var jlines []jsonBatchLine
			for _, ln := range strings.Split(strings.TrimSpace(string(jraw)), "\n") {
				var l jsonBatchLine
				if err := json.Unmarshal([]byte(ln), &l); err != nil {
					t.Fatalf("bad JSON line %q: %v", ln, err)
				}
				jlines = append(jlines, l)
			}

			_, bts := testServer(t, Config{})
			bresp, braw := postAccept(t, bts.URL+c.path, body, wire.AcceptVerdictStream)
			if bresp.StatusCode != http.StatusOK {
				t.Fatalf("binary batch = %d: %s", bresp.StatusCode, braw)
			}
			if ct := bresp.Header.Get("Content-Type"); ct != wire.MediaTypeVerdictStream {
				t.Fatalf("binary batch Content-Type = %q, want %q", ct, wire.MediaTypeVerdictStream)
			}
			var blines []*wire.BatchLine
			sc := wire.NewFrameScanner(strings.NewReader(string(braw)), 0)
			for {
				kind, payload, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("scanning binary batch stream: %v", err)
				}
				if kind != wire.KindBatchLine {
					t.Fatalf("stream frame kind = %v, want batchline", kind)
				}
				l, err := wire.DecodeBatchLine(payload)
				if err != nil {
					t.Fatal(err)
				}
				blines = append(blines, l)
			}

			if len(braw) >= len(jraw) {
				t.Fatalf("binary stream (%d bytes) is not smaller than JSON (%d bytes)", len(braw), len(jraw))
			}
			if len(jlines) != len(c.items) || len(blines) != len(c.items) {
				t.Fatalf("line counts: json=%d binary=%d want %d", len(jlines), len(blines), len(c.items))
			}
			for i := range c.items {
				jl, bl := jlines[i], blines[i]
				if jl.Index != i || bl.Index != i {
					t.Fatalf("line %d indexes: json=%d binary=%d", i, jl.Index, bl.Index)
				}
				if jl.Status != bl.Status {
					t.Fatalf("item %d status: json=%d binary=%d", i, jl.Status, bl.Status)
				}
				if i == c.badIdx {
					if jl.Status != http.StatusBadRequest || jl.Error == "" || bl.Error == "" {
						t.Fatalf("invalid item %d: json=%+v binary=%+v, want per-item 400s", i, jl, bl)
					}
					if jl.Error != bl.Error {
						t.Fatalf("item %d error text: json=%q binary=%q", i, jl.Error, bl.Error)
					}
					continue
				}
				if jl.Status != http.StatusOK {
					t.Fatalf("item %d: json status %d: %+v", i, jl.Status, jl)
				}
				jv := c.fresh()
				if err := json.Unmarshal(jl.Verdict, jv); err != nil {
					t.Fatal(err)
				}
				normalizeVerdict(jv)
				normalizeVerdict(bl.Verdict)
				if !reflect.DeepEqual(jv, bl.Verdict) {
					t.Fatalf("item %d verdict differs:\n bin %#v\njson %#v", i, bl.Verdict, jv)
				}
			}
		})
	}
}

// TestWarmServedBinaryDifferential is the warm-tier differential: a
// verdict computed by one node and served from the warm store by its
// successor must be identical through both encodings — and the binary
// response must be a frame even though the store was written by a node
// that persisted it before any client asked for frames.
func TestWarmServedBinaryDifferential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.bin")
	const query = `{"scheme":"S1","horizon":9}`

	_, ts1 := testServer(t, Config{WarmStorePath: path})
	resp, raw := postJSON(t, ts1.URL+"/v1/solvable", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node 1 = %d: %s", resp.StatusCode, raw)
	}
	ts1.Close()

	s2, ts2 := testServer(t, Config{WarmStorePath: path})
	if s2.warmLoaded == 0 {
		t.Fatal("node 2 loaded no warm verdicts")
	}
	bresp, braw := postAccept(t, ts2.URL+"/v1/solvable", query, wire.AcceptVerdict)
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("node 2 binary = %d: %s", bresp.StatusCode, braw)
	}
	if !wire.IsFrame(braw) {
		t.Fatalf("warm-served binary body is not a frame: %q", braw)
	}
	var got, want wire.Solvable
	if err := wire.UnmarshalInto(braw, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Fatal("node 2 re-ran the engine instead of serving the warm verdict")
	}
	normalizeVerdict(&got)
	normalizeVerdict(&want)
	if !reflect.DeepEqual(&got, &want) {
		t.Fatalf("warm binary verdict drifted:\n got %#v\nwant %#v", got, want)
	}
}

// TestWarmSegmentExportImport round-trips warm state through the binary
// segment encoding of /v1/warm/export and /v1/warm/import: a node's
// warm verdicts travel as one segment body and the importer serves them
// as cache hits.
func TestWarmSegmentExportImport(t *testing.T) {
	src, tsSrc := testServer(t, Config{WarmStorePath: filepath.Join(t.TempDir(), "warm-src.bin")})
	const query = `{"scheme":"S2","horizon":8}`
	if resp, raw := postJSON(t, tsSrc.URL+"/v1/solvable", query); resp.StatusCode != http.StatusOK {
		t.Fatalf("source solve = %d: %s", resp.StatusCode, raw)
	}
	if src.warm.Len() == 0 {
		t.Fatal("source has no warm verdicts")
	}

	req, err := http.NewRequest(http.MethodGet, tsSrc.URL+"/v1/warm/export", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", WarmSegmentMediaType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d: %s", resp.StatusCode, seg)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, WarmSegmentMediaType) {
		t.Fatalf("export Content-Type = %q, want %q", ct, WarmSegmentMediaType)
	}
	sr, err := NewWarmSegmentReader(strings.NewReader(string(seg)))
	if err != nil {
		t.Fatalf("export body is not a segment: %v", err)
	}
	records := 0
	for {
		if _, _, err := sr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("bad export record: %v", err)
		}
		records++
	}
	if records == 0 {
		t.Fatal("export segment holds no records")
	}

	dst, tsDst := testServer(t, Config{WarmStorePath: filepath.Join(t.TempDir(), "warm-dst.bin")})
	ireq, err := http.NewRequest(http.MethodPost, tsDst.URL+"/v1/warm/import", strings.NewReader(string(seg)))
	if err != nil {
		t.Fatal(err)
	}
	ireq.Header.Set("Content-Type", WarmSegmentMediaType)
	iresp, err := http.DefaultClient.Do(ireq)
	if err != nil {
		t.Fatal(err)
	}
	irep, err := io.ReadAll(iresp.Body)
	iresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("import = %d: %s", iresp.StatusCode, irep)
	}
	var rep WarmImportResponse
	if err := json.Unmarshal(irep, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Imported != records {
		t.Fatalf("imported %d of %d exported records", rep.Imported, records)
	}
	if dst.warm.Len() == 0 {
		t.Fatal("importer holds no warm verdicts")
	}
	sresp, sraw := postJSON(t, tsDst.URL+"/v1/solvable", query)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("importer solve = %d: %s", sresp.StatusCode, sraw)
	}
	var v wire.Solvable
	if err := json.Unmarshal(sraw, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Cached {
		t.Fatal("importer recomputed a verdict it just imported")
	}
}

// TestJSONRemainsDefault pins the compatibility contract: a request
// with no Accept header (or a plain JSON one) gets exactly the JSON
// body the service has always produced.
func TestJSONRemainsDefault(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, accept := range []string{"", "application/json", "*/*"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solvable", strings.NewReader(`{"scheme":"S1","horizon":3}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Accept %q = %d: %s", accept, resp.StatusCode, raw)
		}
		if wire.IsFrame(raw) {
			t.Fatalf("Accept %q produced a binary frame", accept)
		}
		var v wire.Solvable
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("Accept %q: body is not JSON: %v", accept, err)
		}
	}
}
