//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation adds allocations, so the alloc-budget gate skips.
const raceEnabled = true
