package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/serve/wire"
)

// Warm-tier synchronization surface, consumed by the cluster
// coordinator's membership handoff (internal/serve/cluster): when a
// backend joins or is readmitted to the ring, the coordinator exports
// warm verdicts from the newcomer's ring neighbors and imports the
// slice of them the new epoch assigns to it.
//
// Entries travel in one of two shapes, negotiated per request:
//
//   - JSON (default): {entries:[{k, v}]} with v raw JSON — the legacy
//     shape, still the fallback for callers that never ask for binary.
//   - Warm segment (Accept/Content-Type application/x-capwarm-segment):
//     the verdict store's on-disk record stream, verbatim. Values are
//     wire verdict frames where the key has a frame kind, JSON bodies
//     otherwise, so a coordinator can pipe an export straight into its
//     own store — or back out to an import — without transcoding.

// WarmSegmentMediaType negotiates the binary export/import body: the
// verdict store's segment format on the wire.
const WarmSegmentMediaType = "application/x-capwarm-segment"

// warmImportBodyLimit bounds an import body (either encoding).
const warmImportBodyLimit = 64 << 20

// WarmEntry is one exported verdict in the JSON shape: canonical cache
// key plus the marshalled verdict body.
type WarmEntry struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// WarmExportResponse is the GET /v1/warm/export JSON body.
type WarmExportResponse struct {
	Entries   []WarmEntry `json:"entries"`
	Truncated bool        `json:"truncated,omitempty"`
}

// WarmImportResponse is the POST /v1/warm/import body.
type WarmImportResponse struct {
	Imported int `json:"imported"`
	Skipped  int `json:"skipped"`
}

// AppendWarmSegmentHeader starts a warm segment stream (the store's
// file header, reused as the HTTP body header).
func AppendWarmSegmentHeader(dst []byte) []byte {
	return append(dst, warmSegMagic[:]...)
}

// AppendWarmSegmentRecord appends one key/value record in the segment
// encoding. Values are opaque: JSON bodies or wire verdict frames.
func AppendWarmSegmentRecord(dst []byte, k string, v []byte) []byte {
	return appendWarmRecord(dst, k, v)
}

// WarmSegmentReader iterates the records of a warm segment stream.
type WarmSegmentReader struct {
	br *bufio.Reader
}

// NewWarmSegmentReader checks the segment header and returns a record
// iterator.
func NewWarmSegmentReader(r io.Reader) (*WarmSegmentReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var head [4]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("warm segment: short header")
	}
	if head != warmSegMagic {
		return nil, fmt.Errorf("warm segment: bad magic")
	}
	return &WarmSegmentReader{br: br}, nil
}

// Next returns the next record; io.EOF reports a clean end of stream.
// A record cut short mid-way is io.ErrUnexpectedEOF.
func (r *WarmSegmentReader) Next() (string, []byte, error) {
	k, ok := readWarmField(r.br)
	if !ok {
		if _, err := r.br.Peek(1); err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, io.ErrUnexpectedEOF
	}
	v, ok := readWarmField(r.br)
	if !ok {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(k), v, nil
}

// encodeWarmValue marshals a cached verdict value for export: a wire
// frame when the key has a frame kind and the caller negotiated binary,
// JSON otherwise. ok=false marks values that should not travel at all
// (foreign LRU entries, unencodable values).
func encodeWarmValue(key string, val any, binary bool) ([]byte, bool) {
	var b []byte
	var err error
	if _, frameable := wire.KindForKey(key); binary && frameable {
		b, err = wire.Marshal(val)
	} else {
		b, err = json.Marshal(val)
	}
	if err != nil {
		return nil, false
	}
	// Only export what decodes back: foreign LRU entries (non-verdict
	// caches) would be dead weight on the receiving node.
	if _, ok := decodeVerdict(key, b); !ok {
		return nil, false
	}
	return b, true
}

// handleWarmExport streams up to ?max= warm verdicts (default 4096):
// the LRU hot set first (most recent first — the entries a newcomer
// most wants), then the rest of the warm map. Each entry appears once.
// With Accept: application/x-capwarm-segment the body is a segment
// record stream (truncation flagged in X-Warm-Truncated); otherwise the
// JSON shape.
func (s *Server) handleWarmExport(w http.ResponseWriter, r *http.Request) {
	max := 4096
	if q := r.URL.Query().Get("max"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			max = n
		}
	}
	binary := strings.Contains(r.Header.Get("Accept"), WarmSegmentMediaType)

	var (
		seg     []byte
		resp    WarmExportResponse
		entries int
	)
	if binary {
		seg = AppendWarmSegmentHeader(nil)
	}
	seen := make(map[string]bool)
	add := func(key string, val any) bool {
		if seen[key] {
			return true
		}
		b, ok := encodeWarmValue(key, val, binary)
		if !ok {
			return true
		}
		seen[key] = true
		entries++
		if binary {
			seg = AppendWarmSegmentRecord(seg, key, b)
		} else {
			resp.Entries = append(resp.Entries, WarmEntry{K: key, V: b})
		}
		return entries < max
	}
	full := true
	s.cache.lru.Range(func(key string, val any) bool {
		full = add(key, val)
		return full
	})
	if full {
		s.warmMu.RLock()
		for k, v := range s.warmVals {
			if !add(k, v) {
				full = false
				break
			}
		}
		s.warmMu.RUnlock()
	}
	if binary {
		w.Header().Set("Content-Type", WarmSegmentMediaType)
		if !full {
			w.Header().Set("X-Warm-Truncated", "1")
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(seg)
		return
	}
	resp.Truncated = !full
	writeJSON(w, http.StatusOK, resp)
}

// installWarmEntry installs one decodable imported verdict into the
// warm map, the LRU (so it serves hot immediately), and the persistent
// store when one is attached. Returns false for undecodable or
// duplicate entries.
func (s *Server) installWarmEntry(key string, raw []byte) bool {
	v, ok := decodeVerdict(key, raw)
	if !ok {
		return false
	}
	s.warmMu.Lock()
	_, dup := s.warmVals[key]
	if !dup {
		s.warmVals[key] = v
	}
	s.warmMu.Unlock()
	if dup {
		return false
	}
	s.cache.lru.Put(key, v)
	if err := s.warm.Append(key, raw); err != nil {
		s.cfg.Logf("capserved: warm import: %v", err)
	}
	return true
}

// handleWarmImport accepts a batch of warm verdicts — the JSON shape or
// a segment stream, keyed off Content-Type — and installs the decodable
// ones. Undecodable or malformed entries are counted, not fatal — a
// handoff from a newer coordinator must warm what it can.
func (s *Server) handleWarmImport(w http.ResponseWriter, r *http.Request) {
	resp := WarmImportResponse{}
	if strings.Contains(r.Header.Get("Content-Type"), WarmSegmentMediaType) {
		sr, err := NewWarmSegmentReader(http.MaxBytesReader(w, r.Body, warmImportBodyLimit))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		for {
			k, v, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				// A torn stream still warms what arrived intact.
				resp.Skipped++
				break
			}
			if s.installWarmEntry(k, v) {
				resp.Imported++
			} else {
				resp.Skipped++
			}
		}
	} else {
		var req struct {
			Entries []WarmEntry `json:"entries"`
		}
		if err := decodeN(w, r, &req, warmImportBodyLimit); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		for _, e := range req.Entries {
			if s.installWarmEntry(e.K, e.V) {
				resp.Imported++
			} else {
				resp.Skipped++
			}
		}
	}
	s.warmImported.Add(int64(resp.Imported))
	if resp.Imported > 0 {
		s.cfg.Logf("capserved: warm import: %d verdicts accepted, %d skipped", resp.Imported, resp.Skipped)
	}
	writeJSON(w, http.StatusOK, resp)
}
