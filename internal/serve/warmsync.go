package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Warm-tier synchronization surface, consumed by the cluster
// coordinator's membership handoff (internal/serve/cluster): when a
// backend joins or is readmitted to the ring, the coordinator exports
// warm verdicts from the newcomer's ring neighbors and imports the
// slice of them the new epoch assigns to it. Entries travel in the
// verdict-store wire shape ({k, v} with v raw), so export/import
// round-trips losslessly and interoperates with coordinator-side warm
// maps that hold raw response bodies.

// WarmEntry is one exported verdict: canonical cache key plus the
// marshalled verdict body.
type WarmEntry struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// WarmExportResponse is the GET /v1/warm/export body.
type WarmExportResponse struct {
	Entries   []WarmEntry `json:"entries"`
	Truncated bool        `json:"truncated,omitempty"`
}

// WarmImportResponse is the POST /v1/warm/import body.
type WarmImportResponse struct {
	Imported int `json:"imported"`
	Skipped  int `json:"skipped"`
}

// handleWarmExport streams up to ?max= warm verdicts (default 4096):
// the LRU hot set first (most recent first — the entries a newcomer
// most wants), then the rest of the warm map. Each entry appears once.
func (s *Server) handleWarmExport(w http.ResponseWriter, r *http.Request) {
	max := 4096
	if q := r.URL.Query().Get("max"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			max = n
		}
	}
	resp := WarmExportResponse{}
	seen := make(map[string]bool)
	add := func(key string, val any) bool {
		if seen[key] {
			return true
		}
		b, err := json.Marshal(val)
		if err != nil {
			return true
		}
		// Only export what decodes back: foreign LRU entries (non-verdict
		// caches) would be dead weight on the receiving node.
		if _, ok := decodeVerdict(key, b); !ok {
			return true
		}
		seen[key] = true
		resp.Entries = append(resp.Entries, WarmEntry{K: key, V: b})
		return len(resp.Entries) < max
	}
	full := true
	s.cache.lru.Range(func(key string, val any) bool {
		full = add(key, val)
		return full
	})
	if full {
		s.warmMu.RLock()
		for k, v := range s.warmVals {
			if !add(k, v) {
				full = false
				break
			}
		}
		s.warmMu.RUnlock()
	}
	resp.Truncated = !full
	writeJSON(w, http.StatusOK, resp)
}

// handleWarmImport accepts a batch of warm verdicts and installs the
// decodable ones into the warm map, the LRU (so they serve hot
// immediately), and the persistent store when one is attached.
// Undecodable or malformed entries are counted, not fatal — a handoff
// from a newer coordinator must warm what it can.
func (s *Server) handleWarmImport(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Entries []WarmEntry `json:"entries"`
	}
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	resp := WarmImportResponse{}
	for _, e := range req.Entries {
		v, ok := decodeVerdict(e.K, e.V)
		if !ok {
			resp.Skipped++
			continue
		}
		s.warmMu.Lock()
		_, dup := s.warmVals[e.K]
		if !dup {
			s.warmVals[e.K] = v
		}
		s.warmMu.Unlock()
		if dup {
			resp.Skipped++
			continue
		}
		s.cache.lru.Put(e.K, v)
		if err := s.warm.Append(e.K, e.V); err != nil {
			s.cfg.Logf("capserved: warm import: %v", err)
		}
		resp.Imported++
	}
	s.warmImported.Add(int64(resp.Imported))
	if resp.Imported > 0 {
		s.cfg.Logf("capserved: warm import: %d verdicts accepted, %d skipped", resp.Imported, resp.Skipped)
	}
	writeJSON(w, http.StatusOK, resp)
}
