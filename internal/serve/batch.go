package serve

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/serve/wire"
)

// Batch admission tier, shared by every heavy class:
//
//	POST /v1/solve/batch      — bounded-round solvability scenarios
//	POST /v1/net/solve/batch  — network solvability instances
//	POST /v1/chaos/batch      — seeded chaos campaigns
//
// N items are admitted under ONE heavy admission slot and ONE breaker
// settle, deduplicated against the LRU/warm tiers where the class is
// cacheable (and against each other — a repeated key inside the batch
// computes once), with per-item verdicts streamed the moment each
// completes: JSON lines by default, binary verdict frames when the
// caller negotiated them (Accept: application/x-capverdict-stream).
// Partial failure is encoded per item: a bad item or a failed
// computation yields {"index":i,"status":4xx/5xx,"error":...} while its
// siblings keep streaming. Chaos campaigns are uncacheable, so under an
// open breaker they fast-fail with 503 while cacheable classes still
// serve their cache/warm hits.

// batchBodyLimit bounds a batch request body; N scenarios share one
// body, so the cap is wider than the single-item 1 MiB.
const batchBodyLimit = 8 << 20

type batchRequest struct {
	Items []solvableRequest `json:"items"`
}

// BatchLine is one JSON-lines record of a batch response stream —
// the solve-batch decode shape, kept exported because the client and
// the cluster coordinator decode and re-emit the same layout. The
// stream itself is emitted from wire.BatchLine, whose JSON encoding is
// identical; binary streams carry the same record as a frame.
type BatchLine struct {
	Index   int               `json:"index"`
	Status  int               `json:"status"`
	Verdict *solvableResponse `json:"verdict,omitempty"`
	Error   string            `json:"error,omitempty"`
	DiagID  string            `json:"diagId,omitempty"`
}

// batchItem is one pre-resolved unit of batch work: everything checked
// before any engine work runs.
type batchItem struct {
	badReq string // non-empty: rejected at parse/validate time
	// key is the verdict cache key; empty marks an uncacheable item
	// (chaos), which can never be served under an open breaker.
	key string
	// run computes the verdict under ctx (the detached compute context
	// for cacheable items, the request context for uncacheable ones).
	run func(ctx context.Context) (any, error)
	// finish patches serving metadata (cached/shared flags, elapsed
	// time) onto a copy of the verdict and returns a pointer for the
	// stream line.
	finish func(v any, cached, shared bool, elapsedMs int64) any
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeN(w, r, &req, batchBodyLimit); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	items, ok := s.checkBatchSize(w, len(req.Items))
	if !ok {
		return
	}
	// Resolve every item up front: invalid items become per-line 400s
	// without costing the batch any engine work.
	for i := range req.Items {
		it := &items[i]
		q := &req.Items[i]
		sch, err := q.Resolve()
		if err != nil {
			it.badReq = err.Error()
			continue
		}
		horizon := q.Horizon
		if q.MinRounds {
			horizon = q.MaxHorizon
		}
		if horizon < 0 || horizon > s.cfg.MaxHorizon {
			it.badReq = "horizon out of range"
			continue
		}
		minRounds := q.MinRounds
		it.key = SolvableKey(sch, horizon, minRounds)
		it.run = func(ctx context.Context) (any, error) {
			return s.solveVerdict(ctx, sch, horizon, minRounds)
		}
		it.finish = finishSolvable
	}
	s.runBatch(w, r, items)
}

func (s *Server) handleNetSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Items []netSolvableRequest `json:"items"`
	}
	if err := decodeN(w, r, &req, batchBodyLimit); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	items, ok := s.checkBatchSize(w, len(req.Items))
	if !ok {
		return
	}
	for i := range req.Items {
		it := &items[i]
		q := &req.Items[i]
		g, badReq := s.validateNetRequest(q)
		if badReq != "" {
			it.badReq = badReq
			continue
		}
		f, rounds := q.F, q.Rounds
		it.key = NetSolvableKey(g, f, rounds)
		it.run = func(ctx context.Context) (any, error) {
			return s.netVerdict(ctx, g, f, rounds)
		}
		it.finish = finishNetSolvable
	}
	s.runBatch(w, r, items)
}

func (s *Server) handleChaosBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Items []chaosRequest `json:"items"`
	}
	if err := decodeN(w, r, &req, batchBodyLimit); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	items, ok := s.checkBatchSize(w, len(req.Items))
	if !ok {
		return
	}
	for i := range req.Items {
		it := &items[i]
		q := &req.Items[i]
		sch, algo, badReq := s.validateChaosRequest(q)
		if badReq != "" {
			it.badReq = badReq
			continue
		}
		// Campaigns are uncacheable (seeded randomized runs, not
		// deterministic verdicts): no key, and like the single /v1/chaos
		// endpoint they run under the request context, not the detached
		// compute budget.
		it.run = func(ctx context.Context) (any, error) {
			_, resp, err := s.chaosCampaign(ctx, sch, algo, q)
			if err != nil {
				return nil, err
			}
			return resp, nil
		}
		it.finish = finishChaos
	}
	s.runBatch(w, r, items)
}

// checkBatchSize enforces the batch item bounds and allocates the item
// table; a false return means the rejection is already written.
func (s *Server) checkBatchSize(w http.ResponseWriter, n int) ([]batchItem, bool) {
	if n == 0 {
		s.writeError(w, http.StatusBadRequest, "batch needs at least one item")
		return nil, false
	}
	if n > s.cfg.MaxBatchItems {
		s.writeError(w, http.StatusBadRequest, "batch of %d items exceeds cap %d", n, s.cfg.MaxBatchItems)
		return nil, false
	}
	return make([]batchItem, n), true
}

// Per-class finish hooks: copy the cached verdict value and patch the
// serving metadata the stream line should carry.

func finishSolvable(v any, cached, shared bool, elapsedMs int64) any {
	resp := v.(solvableResponse)
	resp.Cached, resp.Shared = cached, shared
	resp.ElapsedMs = elapsedMs
	return &resp
}

func finishNetSolvable(v any, cached, _ bool, elapsedMs int64) any {
	resp := v.(netSolvableResponse)
	resp.Cached = cached
	resp.ElapsedMs = elapsedMs
	return &resp
}

func finishChaos(v any, _, _ bool, elapsedMs int64) any {
	resp := v.(chaosResponse)
	resp.ElapsedMs = elapsedMs
	return &resp
}

// runBatch streams per-item verdicts for a pre-resolved item table
// under one admission slot (already held — the pipeline admitted this
// request) and one breaker settle.
func (s *Server) runBatch(w http.ResponseWriter, r *http.Request, items []batchItem) {
	s.m.batches.Add(1)
	s.m.batchItems.Add(int64(len(items)))

	// One breaker check admits the whole batch's engine work. With the
	// breaker open, cache and warm hits still stream; only the items
	// that would need the engine fast-fail with 503.
	done, berr := s.brk.Acquire()
	if berr != nil {
		s.m.breakerFF.Add(1)
	}
	settled := false
	defer func() {
		if done != nil && !settled {
			done(true) // unwound mid-batch (panic): settle as failure
		}
	}()

	binary := acceptsWireStream(r)
	if binary {
		w.Header().Set("Content-Type", wire.MediaTypeVerdictStream)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	rctx := r.Context()
	engineFailed := false
	for i := range items {
		line := s.batchLine(rctx, i, &items[i], berr)
		if line.Status >= 500 && line.Verdict == nil && berr == nil && items[i].badReq == "" {
			engineFailed = true
		}
		var encErr error
		if binary {
			fb := getFrameBuf()
			var b []byte
			b, encErr = wire.AppendVerdict(fb.b[:0], &line)
			if encErr == nil {
				fb.b = b
				_, encErr = w.Write(b)
			}
			putFrameBuf(fb)
		} else {
			jb := getJSONBufCompact()
			encErr = jb.enc.Encode(line)
			if encErr == nil {
				_, encErr = w.Write(jb.buf.Bytes())
			}
			putJSONBuf(jb)
		}
		if encErr != nil {
			// Client gone or line unencodable: stop streaming. Items
			// already computed are in the cache for the retry.
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if done != nil {
		settled = true
		done(engineFailed)
	}
}

// batchLine produces the response line for one batch item: a parse
// error, a cache/warm hit, a breaker fast-fail, or a fresh computation
// through the singleflight cache (which also dedups repeats within the
// batch — the first occurrence computes, later ones hit the LRU).
func (s *Server) batchLine(rctx context.Context, i int, it *batchItem, berr error) wire.BatchLine {
	if it.badReq != "" {
		return wire.BatchLine{Index: i, Status: http.StatusBadRequest, Error: it.badReq}
	}
	start := s.cfg.Clock()
	finish := func(v any, cached, shared bool) wire.BatchLine {
		elapsed := s.cfg.Clock().Sub(start).Milliseconds()
		return wire.BatchLine{Index: i, Status: http.StatusOK, Verdict: it.finish(v, cached, shared, elapsed)}
	}
	if berr != nil {
		if it.key != "" {
			if v, ok := s.cache.peek(it.key); ok {
				return finish(v, true, false)
			}
		}
		return wire.BatchLine{Index: i, Status: http.StatusServiceUnavailable, Error: berr.Error()}
	}
	if rctx.Err() != nil {
		// The batch deadline expired: stream the remaining items as
		// timeouts instead of silently truncating the response.
		s.m.timeouts.Add(1)
		return wire.BatchLine{Index: i, Status: http.StatusGatewayTimeout, Error: "batch deadline exceeded"}
	}
	if it.key == "" {
		// Uncacheable (chaos): run directly under the request context,
		// mirroring the single-item endpoint.
		val, err := it.run(rctx)
		if err != nil {
			return s.batchErrorLine(i, err)
		}
		return finish(val, false, false)
	}
	val, cached, shared, err := s.cache.do(rctx, it.key, func() (any, error) {
		cctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.ComputeBudget)
		defer cancel()
		return it.run(cctx)
	})
	if err != nil {
		return s.batchErrorLine(i, err)
	}
	return finish(val, cached, shared)
}

// batchErrorLine maps a compute error onto the per-item status the
// single-item endpoint would have used (writeComputeError's mapping).
func (s *Server) batchErrorLine(i int, err error) wire.BatchLine {
	var cp errComputePanic
	switch {
	case errors.As(err, &cp):
		return wire.BatchLine{Index: i, Status: http.StatusInternalServerError,
			Error: "internal error; see server log", DiagID: cp.DiagID}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.m.timeouts.Add(1)
		return wire.BatchLine{Index: i, Status: http.StatusGatewayTimeout, Error: "analysis deadline exceeded"}
	default:
		return wire.BatchLine{Index: i, Status: http.StatusInternalServerError, Error: err.Error()}
	}
}
