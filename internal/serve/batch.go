package serve

import (
	"context"
	"errors"
	"net/http"

	coordattack "repro"
)

// POST /v1/solve/batch: N solvability scenarios admitted under ONE
// heavy admission slot and ONE breaker check, deduplicated against the
// LRU/warm tiers (and against each other — a repeated key inside the
// batch computes once), with per-item verdicts streamed as JSON lines
// the moment each completes. Partial failure is encoded per line: a
// bad item or a failed computation yields {"index":i,"status":4xx/5xx,
// "error":...} while its siblings keep streaming.

// batchBodyLimit bounds a batch request body; N scenarios share one
// body, so the cap is wider than the single-item 1 MiB.
const batchBodyLimit = 8 << 20

type batchRequest struct {
	Items []solvableRequest `json:"items"`
}

// BatchLine is one JSON-lines record of a /v1/solve/batch response
// stream. Status mirrors what the single-item endpoint would have
// answered for the scenario: 200 with the verdict inline, or an error
// status with the error text (and diag ID when the server logged one).
// Exported because the client and the cluster coordinator decode and
// re-emit the same shape.
type BatchLine struct {
	Index   int               `json:"index"`
	Status  int               `json:"status"`
	Verdict *solvableResponse `json:"verdict,omitempty"`
	Error   string            `json:"error,omitempty"`
	DiagID  string            `json:"diagId,omitempty"`
}

// batchItem is one pre-resolved scenario: everything checked before any
// engine work runs.
type batchItem struct {
	sch       *coordattack.Scheme
	horizon   int
	minRounds bool
	key       string
	badReq    string // non-empty: rejected at parse/validate time
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeN(w, r, &req, batchBodyLimit); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch needs at least one item")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.writeError(w, http.StatusBadRequest, "batch of %d items exceeds cap %d", len(req.Items), s.cfg.MaxBatchItems)
		return
	}
	s.m.batches.Add(1)
	s.m.batchItems.Add(int64(len(req.Items)))

	// Resolve every item up front: invalid items become per-line 400s
	// without costing the batch any engine work.
	items := make([]batchItem, len(req.Items))
	for i := range req.Items {
		it := &items[i]
		q := &req.Items[i]
		sch, err := q.Resolve()
		if err != nil {
			it.badReq = err.Error()
			continue
		}
		horizon := q.Horizon
		if q.MinRounds {
			horizon = q.MaxHorizon
		}
		if horizon < 0 || horizon > s.cfg.MaxHorizon {
			it.badReq = "horizon out of range"
			continue
		}
		it.sch, it.horizon, it.minRounds = sch, horizon, q.MinRounds
		it.key = SolvableKey(sch, horizon, q.MinRounds)
	}

	// One breaker check admits the whole batch's engine work. With the
	// breaker open, cache and warm hits still stream; only the items
	// that would need the engine fast-fail with 503.
	done, berr := s.brk.Acquire()
	if berr != nil {
		s.m.breakerFF.Add(1)
	}
	settled := false
	defer func() {
		if done != nil && !settled {
			done(true) // unwound mid-batch (panic): settle as failure
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	rctx := r.Context()
	engineFailed := false
	for i := range items {
		line := s.batchLine(rctx, i, &items[i], berr)
		if line.Status >= 500 && line.Verdict == nil && berr == nil && items[i].badReq == "" {
			engineFailed = true
		}
		jb := getJSONBufCompact()
		encErr := jb.enc.Encode(line)
		if encErr == nil {
			_, encErr = w.Write(jb.buf.Bytes())
		}
		putJSONBuf(jb)
		if encErr != nil {
			// Client gone or line unencodable: stop streaming. Items
			// already computed are in the cache for the retry.
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if done != nil {
		settled = true
		done(engineFailed)
	}
}

// batchLine produces the response line for one batch item: a parse
// error, a cache/warm hit, a breaker fast-fail, or a fresh computation
// through the singleflight cache (which also dedups repeats within the
// batch — the first occurrence computes, later ones hit the LRU).
func (s *Server) batchLine(rctx context.Context, i int, it *batchItem, berr error) BatchLine {
	if it.badReq != "" {
		return BatchLine{Index: i, Status: http.StatusBadRequest, Error: it.badReq}
	}
	start := s.cfg.Clock()
	finish := func(v any, cached, shared bool) BatchLine {
		resp := v.(solvableResponse)
		resp.Cached, resp.Shared = cached, shared
		resp.ElapsedMs = s.cfg.Clock().Sub(start).Milliseconds()
		return BatchLine{Index: i, Status: http.StatusOK, Verdict: &resp}
	}
	if berr != nil {
		if v, ok := s.cache.peek(it.key); ok {
			return finish(v, true, false)
		}
		return BatchLine{Index: i, Status: http.StatusServiceUnavailable, Error: berr.Error()}
	}
	if rctx.Err() != nil {
		// The batch deadline expired: stream the remaining items as
		// timeouts instead of silently truncating the response.
		s.m.timeouts.Add(1)
		return BatchLine{Index: i, Status: http.StatusGatewayTimeout, Error: "batch deadline exceeded"}
	}
	val, cached, shared, err := s.cache.do(rctx, it.key, func() (any, error) {
		cctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.ComputeBudget)
		defer cancel()
		return s.solveVerdict(cctx, it.sch, it.horizon, it.minRounds)
	})
	if err != nil {
		return batchErrorLine(s, i, err)
	}
	return finish(val, cached, shared)
}

// batchErrorLine maps a compute error onto the per-item status the
// single-item endpoint would have used (writeComputeError's mapping).
func batchErrorLine(s *Server, i int, err error) BatchLine {
	var cp errComputePanic
	switch {
	case errors.As(err, &cp):
		return BatchLine{Index: i, Status: http.StatusInternalServerError,
			Error: "internal error; see server log", DiagID: cp.DiagID}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.m.timeouts.Add(1)
		return BatchLine{Index: i, Status: http.StatusGatewayTimeout, Error: "analysis deadline exceeded"}
	default:
		return BatchLine{Index: i, Status: http.StatusInternalServerError, Error: err.Error()}
	}
}
