package serve

import (
	"fmt"
	"sync"
	"time"
)

// Breaker states. The mapping onto the chaos failure-model matrix is
// documented in DESIGN.md: closed ≈ fault-free operation, open ≈
// crash-stop of the expensive path (fail fast, shed to callers), and
// half-open ≈ the recovery probe that re-admits traffic only after
// evidence the path is healthy again.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// BreakerOpenError is returned by Acquire while the breaker is serving
// fast-fails; RetryAfter is the remaining cooldown.
type BreakerOpenError struct{ RetryAfter time.Duration }

func (e BreakerOpenError) Error() string {
	return fmt.Sprintf("circuit breaker open; retry in %s", e.RetryAfter)
}

// Breaker is a consecutive-failure circuit breaker around an expensive
// or remote path. It trips open after threshold consecutive failures
// (timeouts or engine errors), fast-fails every caller for a cooldown,
// then admits exactly one half-open probe; the probe's outcome decides
// between re-closing and re-opening. The clock is injected so tests
// drive the state machine deterministically.
//
// It guards capserved's engine paths and, exported, each shard of the
// cluster coordinator (internal/serve/cluster).
type Breaker struct {
	mu        sync.Mutex
	now       func() time.Time
	threshold int
	cooldown  time.Duration

	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// NewBreaker builds a breaker; zero/negative arguments take defaults
// (threshold 5, cooldown 10s, wall clock).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{now: now, threshold: threshold, cooldown: cooldown}
}

// Acquire asks to run one protected call. On success it returns a done
// callback that MUST be invoked with whether the call failed; on refusal
// it returns BreakerOpenError carrying the remaining cooldown.
func (b *Breaker) Acquire() (done func(failed bool), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return nil, BreakerOpenError{RetryAfter: remaining}
		}
		b.state = breakerHalfOpen
		b.probing = false
		fallthrough
	case breakerHalfOpen:
		if b.probing {
			return nil, BreakerOpenError{RetryAfter: b.cooldown}
		}
		b.probing = true
		return b.probeDone, nil
	default: // closed
		return b.closedDone, nil
	}
}

// probeDone settles a half-open probe.
func (b *Breaker) probeDone(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if failed {
		b.state = breakerOpen
		b.openedAt = b.now()
		return
	}
	b.state = breakerClosed
	b.fails = 0
}

// closedDone settles a call admitted while closed.
func (b *Breaker) closedDone(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		// A concurrent probe already resolved the state; stale outcomes
		// from the closed era must not flap it.
		return
	}
	if !failed {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// Reset force-closes the breaker and zeroes its failure count. The
// cluster prober calls it on readmission: health probes just proved the
// path works, so the ejected-era failures are stale evidence and the
// readmitted shard should take traffic immediately rather than serve a
// cooldown it already paid in probe time.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// Snapshot reports the state name and consecutive-failure count for varz.
func (b *Breaker) Snapshot() (state string, fails int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open", b.fails
	case breakerHalfOpen:
		return "half-open", b.fails
	default:
		return "closed", b.fails
	}
}
