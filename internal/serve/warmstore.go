package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// VerdictStore is the persistent warm tier of the two-tier verdict
// cache: an append-only JSON-lines file mapping canonical cache keys to
// marshalled verdicts. A node loads it at boot, so a restart serves
// previously computed answers instantly instead of re-running the
// engine; the cluster coordinator (internal/serve/cluster) reuses the
// same format for raw response bodies.
//
// The file is the durability story, not a database: writes are appended
// under a mutex with no fsync, later lines win on duplicate keys, and a
// torn final line (crash mid-append) is skipped on load. When the dead
// weight (duplicate, torn, or foreign lines) crosses a threshold, the
// load path compacts: the live entries are rewritten to a temp file in
// the same directory and atomically renamed over the original, so a
// crash mid-compaction leaves either the old file or the new one, never
// a hybrid. Verdicts are deterministic facts about automata, so
// replaying a stale store can only miss entries, never serve wrong ones
// — the consistency caveats are spelled out in DESIGN.md.
type VerdictStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// seen tracks keys already on disk so re-computations after an LRU
	// eviction don't grow the file without bound.
	seen map[string]struct{}
	// compacted reports how many dead lines the load-time compaction
	// dropped (0 when it didn't run).
	compacted int
}

// verdictLine is one stored entry. V stays raw: the owner decides the
// concrete type on load (typed decode in serve, pass-through bytes in
// the coordinator).
type verdictLine struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// warmCompactMinWaste is how many dead lines (duplicates, torn tails,
// foreign garbage) the load path tolerates before rewriting the file.
// Small enough that a store thrashed by restarts self-heals quickly,
// large enough that a handful of torn lines never triggers a rewrite.
const warmCompactMinWaste = 64

// OpenVerdictStore opens (creating if absent) the store at path and
// returns it together with every well-formed entry currently on disk,
// compacting the file first when dead lines exceed the threshold.
func OpenVerdictStore(path string) (*VerdictStore, map[string]json.RawMessage, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("warm store: %w", err)
	}
	entries := make(map[string]json.RawMessage)
	seen := make(map[string]struct{})
	rawLines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rawLines++
		var e verdictLine
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.K == "" {
			// Torn or foreign line (e.g. the process died mid-append):
			// skip it rather than refuse the whole store.
			continue
		}
		entries[e.K] = e.V
		seen[e.K] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("warm store: reading %s: %w", path, err)
	}
	s := &VerdictStore{f: f, path: path, seen: seen}
	if waste := rawLines - len(entries); waste >= warmCompactMinWaste {
		if err := s.compact(entries); err != nil {
			// Compaction is an optimization; a failure (read-only temp dir,
			// disk full) must not refuse the store. Keep appending to the
			// bloated file.
			if _, serr := f.Seek(0, 2); serr != nil {
				f.Close()
				return nil, nil, fmt.Errorf("warm store: %w", serr)
			}
			return s, entries, nil
		}
		s.compacted = waste
		return s, entries, nil
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("warm store: %w", err)
	}
	return s, entries, nil
}

// compact rewrites the store to hold exactly entries, via a temp file in
// the same directory and an atomic rename, then swaps the store's
// handle to the fresh file. Keys are written in sorted order so the
// result is deterministic. Caller owns s (no concurrent Append yet).
func (s *VerdictStore) compact(entries map[string]json.RawMessage) error {
	dir, base := filepath.Dir(s.path), filepath.Base(s.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := bufio.NewWriter(tmp)
	for _, k := range keys {
		b, err := json.Marshal(verdictLine{K: k, V: entries[k]})
		if err != nil {
			tmp.Close()
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	// Sync before rename: the rename must never land a file whose data
	// is still only in the page cache when the machine dies.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		tmp.Close()
		return err
	}
	old := s.f
	s.f = tmp
	old.Close()
	if _, err := s.f.Seek(0, 2); err != nil {
		return err
	}
	return nil
}

// Compacted reports how many dead lines the load-time compaction
// removed (0 when the store was clean enough to keep).
func (s *VerdictStore) Compacted() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compacted
}

// Append persists one verdict. Keys already on disk are skipped — the
// store holds deterministic facts, so the first write is as good as any
// later one.
func (s *VerdictStore) Append(key string, v json.RawMessage) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("warm store: closed")
	}
	if _, dup := s.seen[key]; dup {
		return nil
	}
	b, err := json.Marshal(verdictLine{K: key, V: v})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("warm store: appending to %s: %w", s.path, err)
	}
	s.seen[key] = struct{}{}
	return nil
}

// Len reports how many distinct keys the store has persisted.
func (s *VerdictStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// Close flushes and closes the backing file. Append after Close errors.
func (s *VerdictStore) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// decodeVerdict turns a stored raw verdict back into the concrete
// response type its cache-key prefix names. The decode MUST be typed:
// unmarshalling into `any` would push 64-bit counters through float64
// and silently corrupt values like Configs at deep horizons, and the
// handlers type-assert cached values (val.(solvableResponse)). Unknown
// prefixes — entries written by a newer binary — are skipped.
func decodeVerdict(key string, raw json.RawMessage) (any, bool) {
	op, _, ok := strings.Cut(key, "|")
	if !ok {
		return nil, false
	}
	switch op {
	case "classify":
		var v classifyResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	case "solvable":
		var v solvableResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	case "netsolve":
		var v netSolvableResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	}
	return nil, false
}

// attachWarmStore wires the warm tier into the result cache: entries
// loaded from disk answer LRU misses (via Server.warmLookup), and fresh
// successes are appended. Store errors degrade to a log line — a broken
// warm store must never take down serving.
func (s *Server) attachWarmStore(path string) {
	store, rawEntries, err := OpenVerdictStore(path)
	if err != nil {
		s.cfg.Logf("capserved: warm store disabled: %v", err)
		return
	}
	s.warmMu.Lock()
	for k, raw := range rawEntries {
		if v, ok := decodeVerdict(k, raw); ok {
			s.warmVals[k] = v
		}
	}
	loaded := len(s.warmVals)
	s.warmMu.Unlock()
	s.warm = store
	s.warmLoaded = loaded
	if n := store.Compacted(); n > 0 {
		s.cfg.Logf("capserved: warm store %s compacted (%d dead lines dropped)", path, n)
	}
	s.cfg.Logf("capserved: warm store %s loaded %d verdicts", path, loaded)
}

// warmLookup answers an LRU miss from the in-memory warm map — disk
// entries loaded at boot plus everything persisted or imported since.
func (s *Server) warmLookup(key string) (any, bool) {
	s.warmMu.RLock()
	v, ok := s.warmVals[key]
	s.warmMu.RUnlock()
	return v, ok
}

// persistVerdict records a fresh singleflight success in the warm tier.
// Without an attached store this is a no-op: the in-memory map only
// tracks what disk (or a handoff peer) already knows, so a storeless
// node keeps its old memory profile.
func (s *Server) persistVerdict(key string, val any) {
	if s.warm == nil {
		return
	}
	b, err := json.Marshal(val)
	if err != nil {
		s.cfg.Logf("capserved: warm store encode %s: %v", key, err)
		return
	}
	// Only persist what a future boot can decode; everything the heavy
	// path caches today qualifies.
	if _, ok := decodeVerdict(key, b); !ok {
		return
	}
	s.warmMu.Lock()
	s.warmVals[key] = val
	s.warmMu.Unlock()
	if err := s.warm.Append(key, b); err != nil {
		s.cfg.Logf("capserved: %v", err)
	}
}
