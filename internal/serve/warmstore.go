package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/serve/wire"
)

// VerdictStore is the persistent warm tier of the two-tier verdict
// cache: an append-only file mapping canonical cache keys to marshalled
// verdicts. A node loads it at boot, so a restart serves previously
// computed answers instantly instead of re-running the engine; the
// cluster coordinator (internal/serve/cluster) reuses the same store
// for raw response bodies.
//
// Two on-disk formats coexist:
//
//   - The binary segment format (current): a 4-byte header followed by
//     length-prefixed records `uvarint(len(k)) k uvarint(len(v)) v`.
//     Values are opaque bytes — JSON bodies or wire verdict frames —
//     so the store holds binary frames without base64 overhead.
//   - JSON lines (legacy): one `{"k":…,"v":…}` object per line. Stores
//     written by earlier releases load transparently and keep appending
//     JSON lines, so an old file stays readable by an old binary until
//     the first compaction (or the first binary-frame value) rewrites
//     it as a segment.
//
// The file is the durability story, not a database: writes are appended
// under a mutex with no fsync, later records win on duplicate keys, and
// a torn tail (crash mid-append) is skipped on load. When the dead
// weight (duplicate, torn, or foreign records) crosses a threshold, the
// load path compacts: the live entries are rewritten to a temp file in
// the same directory and atomically renamed over the original, so a
// crash mid-compaction leaves either the old file or the new one, never
// a hybrid. Compaction always writes the segment format — the in-place
// upgrade path. Verdicts are deterministic facts about automata, so
// replaying a stale store can only miss entries, never serve wrong ones
// — the consistency caveats are spelled out in DESIGN.md.
type VerdictStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// seen tracks keys already on disk so re-computations after an LRU
	// eviction don't grow the file without bound.
	seen map[string]struct{}
	// legacy marks a store still in the JSON-lines format: appends stay
	// JSON lines (old binaries can keep reading the file) until a value
	// arrives that JSON lines cannot carry, which forces an upgrade.
	legacy bool
	// compacted reports how many dead records the load-time compaction
	// dropped (0 when it didn't run).
	compacted int
}

// verdictLine is one legacy JSON-lines entry. V stays raw: the owner
// decides the concrete type on load (typed decode in serve,
// pass-through bytes in the coordinator).
type verdictLine struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// warmSegMagic opens a binary segment store: two magic bytes (distinct
// from both '{' and a verdict frame's magic) plus a format version.
var warmSegMagic = [4]byte{0xCA, 0x57, 'S', 1}

// warmMaxRecord bounds one record's key or value length; a length
// prefix past it is corruption, not an allocation request.
const warmMaxRecord = 64 << 20

// warmCompactMinWaste is how many dead records (duplicates, torn tails,
// foreign garbage) the load path tolerates before rewriting the file.
// Small enough that a store thrashed by restarts self-heals quickly,
// large enough that a handful of torn lines never triggers a rewrite.
const warmCompactMinWaste = 64

// OpenVerdictStore opens (creating if absent) the store at path and
// returns it together with every well-formed entry currently on disk,
// compacting the file first when dead records exceed the threshold.
// Values are opaque: JSON bodies or wire verdict frames.
func OpenVerdictStore(path string) (*VerdictStore, map[string][]byte, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("warm store: %w", err)
	}
	s := &VerdictStore{f: f, path: path, seen: make(map[string]struct{})}
	entries, rawRecords, err := s.load()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	for k := range entries {
		s.seen[k] = struct{}{}
	}
	if waste := rawRecords - len(entries); waste >= warmCompactMinWaste {
		if err := s.compact(entries); err == nil {
			s.compacted = waste
			return s, entries, nil
		}
		// Compaction is an optimization; a failure (read-only temp dir,
		// disk full) must not refuse the store. Keep appending to the
		// bloated file in its current format.
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("warm store: %w", err)
	}
	return s, entries, nil
}

// load reads every well-formed record, detecting the format from the
// file's first bytes. A zero-length file is initialized as a segment.
// Returns the live entries and the raw record count (for waste
// accounting); sets s.legacy for JSON-lines files.
func (s *VerdictStore) load() (map[string][]byte, int, error) {
	br := bufio.NewReaderSize(s.f, 1<<16)
	head, err := br.Peek(len(warmSegMagic))
	switch {
	case err == io.EOF && len(head) == 0:
		// Fresh store: stamp the segment header now so a crash before
		// the first append still leaves a well-formed file.
		if _, err := s.f.Write(warmSegMagic[:]); err != nil {
			return nil, 0, fmt.Errorf("warm store: %w", err)
		}
		return map[string][]byte{}, 0, nil
	case err == nil && [4]byte(head) == warmSegMagic:
		if _, err := br.Discard(len(warmSegMagic)); err != nil {
			return nil, 0, fmt.Errorf("warm store: %w", err)
		}
		return s.loadSegment(br)
	default:
		s.legacy = true
		return s.loadJSONLines(br)
	}
}

// loadSegment scans binary records until EOF or the first malformed
// record. Everything after a bad length prefix is unrecoverable (there
// is no line boundary to resync on), so the tail counts as one dead
// record and the next compaction drops it.
func (s *VerdictStore) loadSegment(br *bufio.Reader) (map[string][]byte, int, error) {
	entries := make(map[string][]byte)
	rawRecords := 0
	for {
		k, ok := readWarmField(br)
		if !ok {
			if _, err := br.Peek(1); err != io.EOF {
				rawRecords++ // torn or corrupt tail
			}
			return entries, rawRecords, nil
		}
		v, ok := readWarmField(br)
		if !ok {
			rawRecords++ // record torn between key and value
			return entries, rawRecords, nil
		}
		rawRecords++
		entries[string(k)] = v
	}
}

// readWarmField reads one uvarint-prefixed field. ok=false covers both
// clean EOF (caller distinguishes via Peek) and malformed data.
func readWarmField(br *bufio.Reader) ([]byte, bool) {
	n, err := binary.ReadUvarint(br)
	if err != nil || n > warmMaxRecord {
		return nil, false
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, false
	}
	return b, true
}

// loadJSONLines scans a legacy JSON-lines store.
func (s *VerdictStore) loadJSONLines(br *bufio.Reader) (map[string][]byte, int, error) {
	entries := make(map[string][]byte)
	rawLines := 0
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rawLines++
		var e verdictLine
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.K == "" {
			// Torn or foreign line (e.g. the process died mid-append):
			// skip it rather than refuse the whole store.
			continue
		}
		entries[e.K] = e.V
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("warm store: reading %s: %w", s.path, err)
	}
	return entries, rawLines, nil
}

// compact rewrites the store to hold exactly entries — always in the
// segment format, so compacting a legacy store upgrades it in place —
// via a temp file in the same directory and an atomic rename, then
// swaps the store's handle to the fresh file. Keys are written in
// sorted order so the result is deterministic. Caller holds s.mu (or
// owns s exclusively during open).
func (s *VerdictStore) compact(entries map[string][]byte) error {
	dir, base := filepath.Dir(s.path), filepath.Base(s.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := bufio.NewWriter(tmp)
	if _, err := w.Write(warmSegMagic[:]); err != nil {
		tmp.Close()
		return err
	}
	var rec []byte
	for _, k := range keys {
		rec = appendWarmRecord(rec[:0], k, entries[k])
		if _, err := w.Write(rec); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	// Sync before rename: the rename must never land a file whose data
	// is still only in the page cache when the machine dies.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		tmp.Close()
		return err
	}
	old := s.f
	s.f = tmp
	old.Close()
	s.legacy = false
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

func appendWarmRecord(dst []byte, k string, v []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(k)))
	dst = append(dst, k...)
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// Compacted reports how many dead records the load-time compaction
// removed (0 when the store was clean enough to keep).
func (s *VerdictStore) Compacted() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compacted
}

// Append persists one verdict. Keys already on disk are skipped — the
// store holds deterministic facts, so the first write is as good as any
// later one. Appending a value JSON lines cannot carry (a binary frame)
// to a legacy store upgrades the file to the segment format first.
func (s *VerdictStore) Append(key string, v []byte) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("warm store: closed")
	}
	if _, dup := s.seen[key]; dup {
		return nil
	}
	if s.legacy {
		if wire.IsFrame(v) {
			if err := s.upgrade(); err != nil {
				return fmt.Errorf("warm store: upgrading %s: %w", s.path, err)
			}
		} else {
			b, err := json.Marshal(verdictLine{K: key, V: json.RawMessage(v)})
			if err != nil {
				return err
			}
			b = append(b, '\n')
			if _, err := s.f.Write(b); err != nil {
				return fmt.Errorf("warm store: appending to %s: %w", s.path, err)
			}
			s.seen[key] = struct{}{}
			return nil
		}
	}
	if _, err := s.f.Write(appendWarmRecord(nil, key, v)); err != nil {
		return fmt.Errorf("warm store: appending to %s: %w", s.path, err)
	}
	s.seen[key] = struct{}{}
	return nil
}

// upgrade rewrites a legacy JSON-lines store as a binary segment:
// re-read the live entries from disk, then compact. Runs at most once
// per store, the first time a frame value arrives. Caller holds s.mu.
func (s *VerdictStore) upgrade() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	entries, _, err := s.loadJSONLines(bufio.NewReaderSize(s.f, 1<<16))
	if err != nil {
		return err
	}
	return s.compact(entries)
}

// Len reports how many distinct keys the store has persisted.
func (s *VerdictStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// Close flushes and closes the backing file. Append after Close errors.
func (s *VerdictStore) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// decodeVerdict turns a stored raw verdict — a wire frame or a JSON
// body — back into the concrete response type its cache-key prefix
// names. The JSON decode MUST be typed: unmarshalling into `any` would
// push 64-bit counters through float64 and silently corrupt values like
// Configs at deep horizons, and the handlers type-assert cached values
// (val.(solvableResponse)). Frames carry integers natively and decode
// through the same typed structs. Unknown prefixes and mismatched
// frames — entries written by a newer binary — are skipped.
func decodeVerdict(key string, raw []byte) (any, bool) {
	op, _, ok := strings.Cut(key, "|")
	if !ok {
		return nil, false
	}
	if wire.IsFrame(raw) {
		v, err := wire.Unmarshal(raw)
		if err != nil {
			return nil, false
		}
		switch t := v.(type) {
		case *wire.Solvable:
			if op == "solvable" {
				return *t, true
			}
		case *wire.NetSolvable:
			if op == "netsolve" {
				return *t, true
			}
		}
		return nil, false
	}
	switch op {
	case "classify":
		var v classifyResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	case "solvable":
		var v solvableResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	case "netsolve":
		var v netSolvableResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	}
	return nil, false
}

// attachWarmStore wires the warm tier into the result cache: entries
// loaded from disk answer LRU misses (via Server.warmLookup), and fresh
// successes are appended. Store errors degrade to a log line — a broken
// warm store must never take down serving.
func (s *Server) attachWarmStore(path string) {
	store, rawEntries, err := OpenVerdictStore(path)
	if err != nil {
		s.cfg.Logf("capserved: warm store disabled: %v", err)
		return
	}
	s.warmMu.Lock()
	for k, raw := range rawEntries {
		if v, ok := decodeVerdict(k, raw); ok {
			s.warmVals[k] = v
		}
	}
	loaded := len(s.warmVals)
	s.warmMu.Unlock()
	s.warm = store
	s.warmLoaded = loaded
	if n := store.Compacted(); n > 0 {
		s.cfg.Logf("capserved: warm store %s compacted (%d dead records dropped)", path, n)
	}
	s.cfg.Logf("capserved: warm store %s loaded %d verdicts", path, loaded)
}

// warmLookup answers an LRU miss from the in-memory warm map — disk
// entries loaded at boot plus everything persisted or imported since.
func (s *Server) warmLookup(key string) (any, bool) {
	s.warmMu.RLock()
	v, ok := s.warmVals[key]
	s.warmMu.RUnlock()
	return v, ok
}

// persistVerdict records a fresh singleflight success in the warm tier.
// Heavy verdicts with a frame encoding persist as frames (smaller, and
// integer-exact by construction); classify falls back to JSON. Without
// an attached store this is a no-op: the in-memory map only tracks what
// disk (or a handoff peer) already knows, so a storeless node keeps its
// old memory profile.
func (s *Server) persistVerdict(key string, val any) {
	if s.warm == nil {
		return
	}
	var b []byte
	var err error
	if _, ok := wire.KindForKey(key); ok {
		b, err = wire.Marshal(val)
	} else {
		b, err = json.Marshal(val)
	}
	if err != nil {
		s.cfg.Logf("capserved: warm store encode %s: %v", key, err)
		return
	}
	// Only persist what a future boot can decode; everything the heavy
	// path caches today qualifies.
	if _, ok := decodeVerdict(key, b); !ok {
		return
	}
	s.warmMu.Lock()
	s.warmVals[key] = val
	s.warmMu.Unlock()
	if err := s.warm.Append(key, b); err != nil {
		s.cfg.Logf("capserved: %v", err)
	}
}
