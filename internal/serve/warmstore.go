package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// VerdictStore is the persistent warm tier of the two-tier verdict
// cache: an append-only JSON-lines file mapping canonical cache keys to
// marshalled verdicts. A node loads it at boot, so a restart serves
// previously computed answers instantly instead of re-running the
// engine; the cluster coordinator (internal/serve/cluster) reuses the
// same format for raw response bodies.
//
// The file is the durability story, not a database: writes are appended
// under a mutex with no fsync, later lines win on duplicate keys, and a
// torn final line (crash mid-append) is skipped on load. Verdicts are
// deterministic facts about automata, so replaying a stale store can
// only miss entries, never serve wrong ones — the consistency caveats
// are spelled out in DESIGN.md.
type VerdictStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// seen tracks keys already on disk so re-computations after an LRU
	// eviction don't grow the file without bound.
	seen map[string]struct{}
}

// verdictLine is one stored entry. V stays raw: the owner decides the
// concrete type on load (typed decode in serve, pass-through bytes in
// the coordinator).
type verdictLine struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// OpenVerdictStore opens (creating if absent) the store at path and
// returns it together with every well-formed entry currently on disk.
func OpenVerdictStore(path string) (*VerdictStore, map[string]json.RawMessage, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("warm store: %w", err)
	}
	entries := make(map[string]json.RawMessage)
	seen := make(map[string]struct{})
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e verdictLine
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.K == "" {
			// Torn or foreign line (e.g. the process died mid-append):
			// skip it rather than refuse the whole store.
			continue
		}
		entries[e.K] = e.V
		seen[e.K] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("warm store: reading %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("warm store: %w", err)
	}
	return &VerdictStore{f: f, path: path, seen: seen}, entries, nil
}

// Append persists one verdict. Keys already on disk are skipped — the
// store holds deterministic facts, so the first write is as good as any
// later one.
func (s *VerdictStore) Append(key string, v json.RawMessage) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("warm store: closed")
	}
	if _, dup := s.seen[key]; dup {
		return nil
	}
	b, err := json.Marshal(verdictLine{K: key, V: v})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("warm store: appending to %s: %w", s.path, err)
	}
	s.seen[key] = struct{}{}
	return nil
}

// Len reports how many distinct keys the store has persisted.
func (s *VerdictStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// Close flushes and closes the backing file. Append after Close errors.
func (s *VerdictStore) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// decodeVerdict turns a stored raw verdict back into the concrete
// response type its cache-key prefix names. The decode MUST be typed:
// unmarshalling into `any` would push 64-bit counters through float64
// and silently corrupt values like Configs at deep horizons, and the
// handlers type-assert cached values (val.(solvableResponse)). Unknown
// prefixes — entries written by a newer binary — are skipped.
func decodeVerdict(key string, raw json.RawMessage) (any, bool) {
	op, _, ok := strings.Cut(key, "|")
	if !ok {
		return nil, false
	}
	switch op {
	case "classify":
		var v classifyResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	case "solvable":
		var v solvableResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	case "netsolve":
		var v netSolvableResponse
		if json.Unmarshal(raw, &v) == nil {
			return v, true
		}
	}
	return nil, false
}

// attachWarmStore wires the warm tier into the result cache: entries
// loaded from disk answer LRU misses, and fresh successes are appended.
// Store errors degrade to a log line — a broken warm store must never
// take down serving.
func (s *Server) attachWarmStore(path string) {
	store, rawEntries, err := OpenVerdictStore(path)
	if err != nil {
		s.cfg.Logf("capserved: warm store disabled: %v", err)
		return
	}
	warm := make(map[string]any, len(rawEntries))
	for k, raw := range rawEntries {
		if v, ok := decodeVerdict(k, raw); ok {
			warm[k] = v
		}
	}
	s.warm = store
	s.warmLoaded = len(warm)
	var mu sync.RWMutex // guards warm: persist also inserts for this process's lifetime
	s.cache.warmGet = func(key string) (any, bool) {
		mu.RLock()
		v, ok := warm[key]
		mu.RUnlock()
		return v, ok
	}
	s.cache.persist = func(key string, val any) {
		b, err := json.Marshal(val)
		if err != nil {
			s.cfg.Logf("capserved: warm store encode %s: %v", key, err)
			return
		}
		// Only persist what a future boot can decode; everything the
		// heavy path caches today qualifies.
		if _, ok := decodeVerdict(key, b); !ok {
			return
		}
		mu.Lock()
		warm[key] = val
		mu.Unlock()
		if err := store.Append(key, b); err != nil {
			s.cfg.Logf("capserved: %v", err)
		}
	}
	s.cfg.Logf("capserved: warm store %s loaded %d verdicts", path, len(warm))
}
