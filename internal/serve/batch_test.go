package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	coordattack "repro"
)

// postBatch fires a /v1/solve/batch request and decodes the JSON-lines
// stream into BatchLine records.
func postBatch(t *testing.T, url, body string) (*http.Response, []BatchLine) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve/batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp, nil
	}
	var lines []BatchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 8<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ln BatchLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading batch stream: %v", err)
	}
	return resp, lines
}

// TestSolveBatchMixedItems covers the core batch semantics in one pass:
// per-item verdicts stream in order, invalid items become per-line 400s
// without sinking their siblings, a repeated scenario inside the batch
// is served from cache after its first occurrence, and each verdict
// matches what the single-item endpoint answers.
func TestSolveBatchMixedItems(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp, lines := postBatch(t, ts.URL, `{"items":[
		{"scheme":"S1","horizon":2},
		{"scheme":"no-such-scheme","horizon":2},
		{"scheme":"S1","horizon":2},
		{"scheme":"S1","horizon":3}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4: %+v", len(lines), lines)
	}
	for i, ln := range lines {
		if ln.Index != i {
			t.Fatalf("line %d has index %d; stream out of order", i, ln.Index)
		}
	}
	if lines[0].Status != http.StatusOK || lines[0].Verdict == nil {
		t.Fatalf("line 0 = %+v, want 200 with verdict", lines[0])
	}
	if lines[1].Status != http.StatusBadRequest || lines[1].Error == "" {
		t.Fatalf("line 1 = %+v, want per-item 400", lines[1])
	}
	if lines[2].Status != http.StatusOK || lines[2].Verdict == nil || !lines[2].Verdict.Cached {
		t.Fatalf("line 2 = %+v, want cached repeat of line 0", lines[2])
	}
	if lines[3].Status != http.StatusOK || lines[3].Verdict == nil {
		t.Fatalf("line 3 = %+v, want 200 with verdict", lines[3])
	}

	// Differential: the batch verdict must be byte-for-byte the same
	// decision the single-item endpoint reaches.
	sresp, raw := postJSON(t, ts.URL+"/v1/solvable", `{"scheme":"S1","horizon":2}`)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("single solvable = %d: %s", sresp.StatusCode, raw)
	}
	var single solvableResponse
	if err := json.Unmarshal(raw, &single); err != nil {
		t.Fatal(err)
	}
	if got := lines[0].Verdict; got.Solvable != single.Solvable ||
		got.Configs != single.Configs || got.Components != single.Components {
		t.Fatalf("batch verdict %+v disagrees with single-item verdict %+v", got, single)
	}

	var v Varz
	vresp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	if err := json.NewDecoder(vresp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.BatchRequests != 1 || v.BatchItems != 4 {
		t.Fatalf("varz batches=%d items=%d, want 1 and 4", v.BatchRequests, v.BatchItems)
	}
}

// TestSolveBatchLimits pins the request-shape guards: an empty item
// list and a batch over MaxBatchItems are whole-request 400s.
func TestSolveBatchLimits(t *testing.T) {
	_, ts := testServer(t, Config{MaxBatchItems: 2})
	resp, _ := postBatch(t, ts.URL, `{"items":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
	resp, _ = postBatch(t, ts.URL, `{"items":[
		{"scheme":"S1","horizon":1},
		{"scheme":"S1","horizon":2},
		{"scheme":"S1","horizon":3}
	]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", resp.StatusCode)
	}
}

// TestSolveBatchSingleAdmissionSlot proves a batch of N scenarios runs
// under ONE admission slot: with analysis concurrency 1 and no queue, a
// multi-item batch still completes wholesale — item N does not need to
// re-enter the gate the way N separate requests would.
func TestSolveBatchSingleAdmissionSlot(t *testing.T) {
	_, ts := testServer(t, Config{AnalysisConcurrency: 1, QueueDepth: 0})
	resp, lines := postBatch(t, ts.URL, `{"items":[
		{"scheme":"S1","horizon":1},
		{"scheme":"S1","horizon":2},
		{"scheme":"S1","horizon":3},
		{"scheme":"S1","horizon":4}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch under concurrency 1 = %d, want 200", resp.StatusCode)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for i, ln := range lines {
		if ln.Status != http.StatusOK {
			t.Fatalf("line %d = %+v, want 200", i, ln)
		}
	}
}

// TestSolveBatchShedBeforeEngineWork proves overload rejects the whole
// batch up front: with the only slot occupied and the queue full, the
// batch gets one 429 with Retry-After, and no batch bookkeeping or
// engine computation ever starts.
func TestSolveBatchShedBeforeEngineWork(t *testing.T) {
	s, ts := testServer(t, Config{AnalysisConcurrency: 1, QueueDepth: 1})
	entered := make(chan struct{}, 2)
	unblock := make(chan struct{})
	defer close(unblock)
	s.mux.Handle("POST /test/block", s.protect(classHeavy, func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-unblock
		fmt.Fprintln(w, "ok")
	}))
	// One blocker occupies the execution slot, a second fills the queue.
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/test/block", "application/json", strings.NewReader(`{}`))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	<-entered
	// The queued request never reaches the handler; give it a beat to
	// take the queue slot so the batch finds the gate full.
	deadline := time.Now().Add(5 * time.Second)
	for s.heavy.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second blocker never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, _ := postBatch(t, ts.URL, `{"items":[{"scheme":"S1","horizon":2}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch under full gate = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed batch without Retry-After header")
	}
	if got := s.m.batches.Load(); got != 0 {
		t.Fatalf("shed batch was counted as admitted (batches=%d)", got)
	}
	if got := s.cache.misses.Load(); got != 0 {
		t.Fatalf("shed batch reached the compute path (misses=%d)", got)
	}
}

// TestSolveBatchBreakerOpenServesCachedItems: with the breaker open,
// a batch still streams LRU hits as 200 lines while the items that
// would need fresh engine work fast-fail with per-item 503s.
func TestSolveBatchBreakerOpenServesCachedItems(t *testing.T) {
	s, ts := testServer(t, Config{
		ComputeBudget:    time.Nanosecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	// Trip the breaker with two timed-out computations.
	for _, body := range []string{
		`{"scheme":"S1","horizon":3}`,
		`{"scheme":"S1","horizon":4}`,
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/solvable", body)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("priming failure = %d, want 504", resp.StatusCode)
		}
	}
	// Seed one verdict into the LRU directly: with a nanosecond budget
	// nothing can be computed the honest way.
	sch, err := coordattack.SchemeByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	key := SolvableKey(sch, 2, false)
	s.cache.lru.Put(key, solvableResponse{Scheme: "S1", Horizon: 2, Solvable: true})

	resp, lines := postBatch(t, ts.URL, `{"items":[
		{"scheme":"S1","horizon":2},
		{"scheme":"S1","horizon":9}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with open breaker = %d, want 200 stream", resp.StatusCode)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Status != http.StatusOK || lines[0].Verdict == nil || !lines[0].Verdict.Cached {
		t.Fatalf("cached item under open breaker = %+v, want cached 200", lines[0])
	}
	if lines[1].Status != http.StatusServiceUnavailable {
		t.Fatalf("uncached item under open breaker = %+v, want 503", lines[1])
	}
}

// TestSolveBatchDrainFinishesStream proves graceful drain lets an
// in-flight batch finish streaming: the batch is parked waiting on a
// singleflight leader when the lifecycle context is cancelled, and
// every line still reaches the client before ListenAndServe returns.
func TestSolveBatchDrainFinishesStream(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", DrainTimeout: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ListenAndServe(ctx) }()

	var base string
	for i := 0; i < 500; i++ {
		if addr := s.BoundAddr(); addr != "" {
			base = "http://" + addr
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("server never bound")
	}

	// Install a blocking singleflight leader on the key the batch's
	// first item will need, so the batch parks mid-stream.
	sch, err := coordattack.SchemeByName("S1")
	if err != nil {
		t.Fatal(err)
	}
	key := SolvableKey(sch, 2, false)
	unblock := make(chan struct{})
	leaderIn := make(chan struct{})
	go s.cache.do(context.Background(), key, func() (any, error) {
		close(leaderIn)
		<-unblock
		return solvableResponse{Scheme: "S1", Horizon: 2, Solvable: true}, nil
	})
	<-leaderIn

	type result struct {
		lines []BatchLine
		err   error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/solve/batch", "application/json",
			strings.NewReader(`{"items":[{"scheme":"S1","horizon":2},{"scheme":"S1","horizon":1}]}`))
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var r result
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var ln BatchLine
			if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
				got <- result{err: err}
				return
			}
			r.lines = append(r.lines, ln)
		}
		r.err = sc.Err()
		got <- r
	}()

	// Wait until the batch joins the leader's flight, then begin drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.cache.shared.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never joined the in-flight computation")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	// Give the shutdown a moment to close the listener, then release
	// the computation the parked batch is waiting on.
	time.Sleep(50 * time.Millisecond)
	close(unblock)

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("batch stream during drain: %v", r.err)
		}
		if len(r.lines) != 2 {
			t.Fatalf("drained batch streamed %d lines, want 2: %+v", len(r.lines), r.lines)
		}
		for i, ln := range r.lines {
			if ln.Status != http.StatusOK {
				t.Fatalf("drained line %d = %+v, want 200", i, ln)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight batch did not finish during drain")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ListenAndServe after drain = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after drain")
	}
}
