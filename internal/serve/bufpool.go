package serve

import (
	"bytes"
	"encoding/json"
	"sync"

	coordattack "repro"
)

// Pooled response encoding. Every JSON response is marshaled into a
// pooled buffer first — so encode errors surface before any byte or
// status line reaches the client — then written in a single Write.
// The encoder is pooled with its buffer: json.NewEncoder per response
// was one of the hot path's steady allocations.

// jsonBuf pairs a reusable buffer with an encoder bound to it.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// jsonBufMax is the largest buffer the pool retains; a response that
// ballooned past it (huge chaos reports) is dropped rather than pinned.
const jsonBufMax = 1 << 20

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// getJSONBuf returns a reset buffer whose encoder pretty-prints, the
// format of every whole-response body.
func getJSONBuf() *jsonBuf {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	jb.enc.SetIndent("", "  ")
	return jb
}

// getJSONBufCompact is getJSONBuf for JSON-lines streams: one record
// per line, so the encoder must not insert newlines of its own.
func getJSONBufCompact() *jsonBuf {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	jb.enc.SetIndent("", "")
	return jb
}

func putJSONBuf(jb *jsonBuf) {
	if jb.buf.Cap() <= jsonBufMax {
		jsonBufPool.Put(jb)
	}
}

// frameBuf is a reusable byte slice for binary verdict frames — the
// wire-encoding analogue of jsonBuf. Wrapped in a struct so the pool
// round-trips a stable pointer instead of re-boxing a slice header per
// request.
type frameBuf struct {
	b []byte
}

var frameBufPool = sync.Pool{New: func() any {
	return &frameBuf{b: make([]byte, 0, 4096)}
}}

func getFrameBuf() *frameBuf {
	return frameBufPool.Get().(*frameBuf)
}

func putFrameBuf(fb *frameBuf) {
	if cap(fb.b) <= jsonBufMax {
		frameBufPool.Put(fb)
	}
}

// scratchPool hands each engine run a reusable arena
// (fullinfo.Scratch): flat tables, interner shards, and frontier
// buffers persist across cache-miss requests instead of being
// reallocated per call. sync.Pool gives each concurrent request its
// own arena; Analyze releases it before the handler returns it here.
var scratchPool = sync.Pool{New: func() any {
	return coordattack.NewEngineScratch()
}}
