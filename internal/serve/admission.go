package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// errShed is returned when the admission queue for an endpoint class is
// full; the pipeline converts it into 429 + Retry-After.
type errShed struct{ RetryAfter time.Duration }

func (e errShed) Error() string {
	return fmt.Sprintf("admission queue full; retry in %s", e.RetryAfter)
}

// gate is the bounded admission queue for one endpoint class: at most
// limit requests execute concurrently and at most queueDepth more may
// wait for a slot; anything beyond that is shed immediately instead of
// piling up unboundedly. Waiting is context-bounded, so a caller whose
// deadline expires in the queue leaves it without ever holding a slot.
type gate struct {
	slots      chan struct{}
	queued     atomic.Int64
	queueDepth int64
	retryAfter time.Duration
	// releaseFn is allocated once here: returning the bound method from
	// acquire would allocate a fresh closure on every admission.
	releaseFn func()
}

func newGate(limit, queueDepth int, retryAfter time.Duration) *gate {
	if limit <= 0 {
		limit = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	g := &gate{
		slots:      make(chan struct{}, limit),
		queueDepth: int64(queueDepth),
		retryAfter: retryAfter,
	}
	g.releaseFn = g.release
	return g
}

// acquire obtains an execution slot. It returns a release callback on
// success, errShed when the waiting queue is full, or ctx.Err() when the
// caller's context expires while queued.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		return g.releaseFn, nil
	default:
	}
	// Slow path: join the bounded queue or shed. The counter may
	// transiently overshoot under contention; every overshooting caller
	// undoes its increment and sheds, so the queue length stays bounded.
	if g.queued.Add(1) > g.queueDepth {
		g.queued.Add(-1)
		return nil, errShed{RetryAfter: g.retryAfter}
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return g.releaseFn, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// depth reports (in-flight, queued) for varz.
func (g *gate) depth() (inFlight int, queued int64) {
	return len(g.slots), g.queued.Load()
}
