package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWarmStoreConfigsExactRoundTrip round-trips a solvability verdict
// whose exact configuration count is 4*3^40 — far beyond both int64 and
// float64's 2^53 integer range — through the JSON-lines store. The
// typed decode must reproduce it digit for digit; an `any` decode would
// have pushed the counters through float64 and corrupted them.
func TestWarmStoreConfigsExactRoundTrip(t *testing.T) {
	exact := new(big.Int).Mul(big.NewInt(4),
		new(big.Int).Exp(big.NewInt(3), big.NewInt(40), nil))
	const canary = 1<<53 + 1 // smallest int a float64 round-trip corrupts

	path := filepath.Join(t.TempDir(), "warm.jsonl")
	store, entries, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh store loaded %d entries, want 0", len(entries))
	}
	in := solvableResponse{
		Scheme:       "S1",
		Horizon:      41,
		Solvable:     true,
		Configs:      canary,
		ConfigsExact: exact.String(),
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	key := "solvable|roundtrip-test|h=41|min=false"
	if err := store.Append(key, raw); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh boot must reconstruct the typed verdict exactly.
	store2, entries2, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	got, ok := decodeVerdict(key, entries2[key])
	if !ok {
		t.Fatalf("decodeVerdict failed for %q", key)
	}
	out, ok := got.(solvableResponse)
	if !ok {
		t.Fatalf("decoded %T, want solvableResponse", got)
	}
	if out.Configs != canary {
		t.Fatalf("Configs = %d, want %d (float64 corruption?)", out.Configs, canary)
	}
	back, ok := new(big.Int).SetString(out.ConfigsExact, 10)
	if !ok {
		t.Fatalf("ConfigsExact %q is not a decimal integer", out.ConfigsExact)
	}
	if back.Cmp(exact) != 0 {
		t.Fatalf("ConfigsExact = %s, want %s", back, exact)
	}
}

// TestVerdictStoreTornAndDuplicateLines checks crash tolerance: a torn
// final line is skipped, later duplicate lines win on load, and Append
// skips keys already on disk instead of growing the file.
func TestVerdictStoreTornAndDuplicateLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.jsonl")
	seed := `{"k":"a","v":{"n":1}}
{"k":"a","v":{"n":2}}
not json at all
{"k":"b","v":{"trunc
`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	store, entries, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries, want 1 (only the duplicated good key): %v", len(entries), entries)
	}
	if string(entries["a"]) != `{"n":2}` {
		t.Fatalf(`entries["a"] = %s, want the later line {"n":2}`, entries["a"])
	}
	if store.Len() != 1 {
		t.Fatalf("Len = %d, want 1", store.Len())
	}
	// Appending the known key is a no-op; a new key lands.
	if err := store.Append("a", json.RawMessage(`{"n":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := store.Append("c", json.RawMessage(`{"n":4}`)); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("Len after appends = %d, want 2", store.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"k":"a"`); n != 2 {
		t.Fatalf(`key "a" appears %d times, want 2 (dup append must be skipped)`, n)
	}
}

// TestWarmStoreRestartAnswersFromCache is the acceptance scenario: node
// 1 computes a deep (horizon-13) verdict into the warm store, dies, and
// node 2 booted on the same store answers the identical query as a
// cache hit — no fresh engine run.
func TestWarmStoreRestartAnswersFromCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.jsonl")
	const query = `{"scheme":"S1","horizon":13}`

	s1, ts1 := testServer(t, Config{WarmStorePath: path, MaxHorizon: 13})
	resp, raw := postJSON(t, ts1.URL+"/v1/solvable", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node 1 solvable = %d: %s", resp.StatusCode, raw)
	}
	var first solvableResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("node 1's first answer claims to be cached")
	}
	if s1.warm.Len() == 0 {
		t.Fatal("node 1 persisted nothing to the warm store")
	}
	ts1.Close() // node 1 dies (no graceful drain — the store has no fsync to miss)

	s2, ts2 := testServer(t, Config{WarmStorePath: path, MaxHorizon: 13})
	if s2.warmLoaded == 0 {
		t.Fatal("node 2 loaded no warm verdicts")
	}
	resp2, raw2 := postJSON(t, ts2.URL+"/v1/solvable", query)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("node 2 solvable = %d: %s", resp2.StatusCode, raw2)
	}
	var second solvableResponse
	if err := json.Unmarshal(raw2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("node 2 re-ran the engine instead of serving the warm verdict")
	}
	if second.Solvable != first.Solvable || second.Horizon != first.Horizon {
		t.Fatalf("warm verdict drifted: node1=%+v node2=%+v", first, second)
	}
	if hits := s2.cache.warmHits.Load(); hits < 1 {
		t.Fatalf("warmHits = %d, want >= 1", hits)
	}
}

// TestVerdictStoreCompactsOnLoad: a store bloated past the waste
// threshold (duplicates + torn lines) is rewritten at open time via a
// temp-file rename — the reopened file holds exactly the live entries,
// appends keep working, and nothing of the dead weight survives.
func TestVerdictStoreCompactsOnLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.jsonl")
	var b strings.Builder
	// warmCompactMinWaste dead lines: the same key rewritten over and
	// over (restart loops do exactly this across crashes), plus torn
	// garbage. One extra live line so the final state is two keys.
	for i := 0; i <= warmCompactMinWaste-1; i++ {
		fmt.Fprintf(&b, "{\"k\":\"hot\",\"v\":{\"n\":%d}}\n", i)
	}
	b.WriteString("torn {garbage\n")
	b.WriteString(`{"k":"cold","v":{"n":-1}}` + "\n")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	store, entries, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}
	if string(entries["hot"]) != fmt.Sprintf(`{"n":%d}`, warmCompactMinWaste-1) {
		t.Fatalf(`entries["hot"] = %s, want the last duplicate to win`, entries["hot"])
	}
	if store.Compacted() != warmCompactMinWaste {
		t.Fatalf("Compacted = %d, want %d", store.Compacted(), warmCompactMinWaste)
	}

	// On disk: exactly the live entries, upgraded in place to the
	// binary segment format (compaction always writes segments).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewWarmSegmentReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("compacted file is not a warm segment: %v", err)
	}
	records := 0
	for {
		if _, _, err := sr.Next(); err != nil {
			if err != io.EOF {
				t.Fatalf("compacted segment: %v", err)
			}
			break
		}
		records++
	}
	if records != 2 {
		t.Fatalf("compacted segment has %d records, want 2:\n%q", records, data)
	}

	// Appends land in the fresh file and a reopen sees everything.
	if err := store.Append("new", json.RawMessage(`{"n":7}`)); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, entries2, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if len(entries2) != 3 {
		t.Fatalf("reopen loaded %d entries, want 3: %v", len(entries2), entries2)
	}
	if store2.Compacted() != 0 {
		t.Fatalf("clean store recompacted (%d) on reopen", store2.Compacted())
	}
}

// TestVerdictStoreNoCompactionUnderThreshold: a handful of dead lines
// is tolerated — the file is left byte-identical (no rewrite churn on
// every boot).
func TestVerdictStoreNoCompactionUnderThreshold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.jsonl")
	seed := `{"k":"a","v":{"n":1}}
{"k":"a","v":{"n":2}}
half a line {
`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	store, entries, err := OpenVerdictStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if len(entries) != 1 || store.Compacted() != 0 {
		t.Fatalf("entries=%d compacted=%d, want 1 entry and no compaction", len(entries), store.Compacted())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != seed {
		t.Fatalf("under-threshold store was rewritten:\n%s", data)
	}
}
