package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for deterministic breaker
// tests.
type fakeClock struct{ t time.Time }

func (fc *fakeClock) now() time.Time          { return fc.t }
func (fc *fakeClock) advance(d time.Duration) { fc.t = fc.t.Add(d) }

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, 10*time.Second, fc.now)

	// Two failures then a success: the consecutive counter must reset.
	for i := 0; i < 2; i++ {
		done, err := b.acquire()
		if err != nil {
			t.Fatalf("acquire %d while closed: %v", i, err)
		}
		done(true)
	}
	done, err := b.acquire()
	if err != nil {
		t.Fatalf("acquire after 2 failures: %v", err)
	}
	done(false)
	if state, fails := b.snapshot(); state != "closed" || fails != 0 {
		t.Fatalf("after success got (%s, %d), want (closed, 0)", state, fails)
	}

	// Three consecutive failures trip it open.
	for i := 0; i < 3; i++ {
		done, err := b.acquire()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		done(true)
	}
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("after 3 failures state = %s, want open", state)
	}

	// While open and inside the cooldown: fast-fail with the remaining
	// cooldown as Retry-After.
	fc.advance(4 * time.Second)
	_, err = b.acquire()
	var open errBreakerOpen
	if !errors.As(err, &open) {
		t.Fatalf("acquire while open = %v, want errBreakerOpen", err)
	}
	if open.RetryAfter != 6*time.Second {
		t.Fatalf("RetryAfter = %s, want 6s", open.RetryAfter)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, 10*time.Second, fc.now)

	done, err := b.acquire()
	if err != nil {
		t.Fatal(err)
	}
	done(true) // threshold 1: first failure trips it
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("state = %s, want open", state)
	}

	// Past the cooldown a single probe is admitted…
	fc.advance(11 * time.Second)
	probe, err := b.acquire()
	if err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	// …and while it is in flight, everyone else is refused.
	if _, err := b.acquire(); err == nil {
		t.Fatal("second caller admitted during half-open probe")
	}
	// A failed probe re-opens with a fresh cooldown window.
	probe(true)
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("state after failed probe = %s, want open", state)
	}
	fc.advance(9 * time.Second) // 9 < 10: still inside the NEW cooldown
	if _, err := b.acquire(); err == nil {
		t.Fatal("admitted inside re-opened cooldown; openedAt was not reset")
	}
}

func TestBreakerRecoversViaHalfOpenProbe(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(2, 5*time.Second, fc.now)

	for i := 0; i < 2; i++ {
		done, err := b.acquire()
		if err != nil {
			t.Fatal(err)
		}
		done(true)
	}
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("state = %s, want open", state)
	}

	fc.advance(6 * time.Second)
	probe, err := b.acquire()
	if err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	probe(false)
	if state, fails := b.snapshot(); state != "closed" || fails != 0 {
		t.Fatalf("after successful probe got (%s, %d), want (closed, 0)", state, fails)
	}
	// Fully recovered: ordinary traffic flows again.
	done, err := b.acquire()
	if err != nil {
		t.Fatalf("closed breaker refused traffic: %v", err)
	}
	done(false)
}

func TestBreakerStaleClosedOutcomeIgnored(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second, fc.now)

	// A slow call acquired while closed…
	slow, err := b.acquire()
	if err != nil {
		t.Fatal(err)
	}
	// …meanwhile a fast call trips the breaker, the cooldown passes, and a
	// probe re-closes it.
	fast, err := b.acquire()
	if err != nil {
		t.Fatal(err)
	}
	fast(true)
	fc.advance(2 * time.Second)
	probe, err := b.acquire()
	if err != nil {
		t.Fatal(err)
	}
	probe(true) // re-open
	// The slow call's late failure must not disturb the open state's
	// bookkeeping (it is from a previous closed era).
	slow(true)
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("state = %s, want open", state)
	}
}
