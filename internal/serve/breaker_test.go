package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for deterministic breaker
// tests.
type fakeClock struct{ t time.Time }

func (fc *fakeClock) now() time.Time          { return fc.t }
func (fc *fakeClock) advance(d time.Duration) { fc.t = fc.t.Add(d) }

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, 10*time.Second, fc.now)

	// Two failures then a success: the consecutive counter must reset.
	for i := 0; i < 2; i++ {
		done, err := b.Acquire()
		if err != nil {
			t.Fatalf("acquire %d while closed: %v", i, err)
		}
		done(true)
	}
	done, err := b.Acquire()
	if err != nil {
		t.Fatalf("acquire after 2 failures: %v", err)
	}
	done(false)
	if state, fails := b.Snapshot(); state != "closed" || fails != 0 {
		t.Fatalf("after success got (%s, %d), want (closed, 0)", state, fails)
	}

	// Three consecutive failures trip it open.
	for i := 0; i < 3; i++ {
		done, err := b.Acquire()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		done(true)
	}
	if state, _ := b.Snapshot(); state != "open" {
		t.Fatalf("after 3 failures state = %s, want open", state)
	}

	// While open and inside the cooldown: fast-fail with the remaining
	// cooldown as Retry-After.
	fc.advance(4 * time.Second)
	_, err = b.Acquire()
	var open BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("acquire while open = %v, want BreakerOpenError", err)
	}
	if open.RetryAfter != 6*time.Second {
		t.Fatalf("RetryAfter = %s, want 6s", open.RetryAfter)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(1, 10*time.Second, fc.now)

	done, err := b.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	done(true) // threshold 1: first failure trips it
	if state, _ := b.Snapshot(); state != "open" {
		t.Fatalf("state = %s, want open", state)
	}

	// Past the cooldown a single probe is admitted…
	fc.advance(11 * time.Second)
	probe, err := b.Acquire()
	if err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	// …and while it is in flight, everyone else is refused.
	if _, err := b.Acquire(); err == nil {
		t.Fatal("second caller admitted during half-open probe")
	}
	// A failed probe re-opens with a fresh cooldown window.
	probe(true)
	if state, _ := b.Snapshot(); state != "open" {
		t.Fatalf("state after failed probe = %s, want open", state)
	}
	fc.advance(9 * time.Second) // 9 < 10: still inside the NEW cooldown
	if _, err := b.Acquire(); err == nil {
		t.Fatal("admitted inside re-opened cooldown; openedAt was not reset")
	}
}

func TestBreakerRecoversViaHalfOpenProbe(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(2, 5*time.Second, fc.now)

	for i := 0; i < 2; i++ {
		done, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		done(true)
	}
	if state, _ := b.Snapshot(); state != "open" {
		t.Fatalf("state = %s, want open", state)
	}

	fc.advance(6 * time.Second)
	probe, err := b.Acquire()
	if err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	probe(false)
	if state, fails := b.Snapshot(); state != "closed" || fails != 0 {
		t.Fatalf("after successful probe got (%s, %d), want (closed, 0)", state, fails)
	}
	// Fully recovered: ordinary traffic flows again.
	done, err := b.Acquire()
	if err != nil {
		t.Fatalf("closed breaker refused traffic: %v", err)
	}
	done(false)
}

func TestBreakerStaleClosedOutcomeIgnored(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(1, time.Second, fc.now)

	// A slow call acquired while closed…
	slow, err := b.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// …meanwhile a fast call trips the breaker, the cooldown passes, and a
	// probe re-closes it.
	fast, err := b.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	fast(true)
	fc.advance(2 * time.Second)
	probe, err := b.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	probe(true) // re-open
	// The slow call's late failure must not disturb the open state's
	// bookkeeping (it is from a previous closed era).
	slow(true)
	if state, _ := b.Snapshot(); state != "open" {
		t.Fatalf("state = %s, want open", state)
	}
}

// TestBreakerHalfOpenSingleProbeUnderRace hammers a cooled-down open
// breaker with racing callers across several half-open windows: each
// window must admit exactly one probe, and a failed probe must start a
// fresh window that again admits exactly one.
func TestBreakerHalfOpenSingleProbeUnderRace(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(1, time.Second, fc.now)

	done, err := b.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	done(true) // trip open

	for window := 0; window < 3; window++ {
		fc.advance(2 * time.Second) // past the cooldown: half-open
		var (
			admitted atomic.Int32
			probe    func(bool)
			mu       sync.Mutex
			wg       sync.WaitGroup
		)
		start := make(chan struct{})
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if d, err := b.Acquire(); err == nil {
					admitted.Add(1)
					mu.Lock()
					probe = d
					mu.Unlock()
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("window %d admitted %d probes, want exactly 1", window, got)
		}
		if window < 2 {
			probe(true) // fail the probe: re-open, fresh cooldown
			if state, _ := b.Snapshot(); state != "open" {
				t.Fatalf("window %d: state after failed probe = %s, want open", window, state)
			}
		} else {
			probe(false) // final window recovers
			if state, fails := b.Snapshot(); state != "closed" || fails != 0 {
				t.Fatalf("after successful probe got (%s, %d), want (closed, 0)", state, fails)
			}
		}
	}

	// Recovered: concurrent ordinary traffic all admitted again.
	var refused atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := b.Acquire()
			if err != nil {
				refused.Add(1)
				return
			}
			d(false)
		}()
	}
	wg.Wait()
	if refused.Load() != 0 {
		t.Fatalf("closed breaker refused %d of 16 concurrent callers", refused.Load())
	}
}
