package serve

import (
	"container/list"
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// LRU is a plain mutex-guarded LRU over string keys. In capserved the
// values are the marshalled response payloads of deterministic queries,
// so hits can be served without touching the analysis engine at all;
// the cluster coordinator (internal/serve/cluster) reuses it for raw
// response bodies keyed by the same canonical automaton digests.
type LRU struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// NewLRU builds an LRU holding at most max entries (≤ 0 means 1024).
func NewLRU(max int) *LRU {
	if max <= 0 {
		max = 1024
	}
	return &LRU{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting from the cold end past max.
func (c *LRU) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// Len reports the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Range calls fn for each entry from most to least recently used,
// stopping early when fn returns false. Keys and values are snapshotted
// under the lock and fn runs outside it, so fn may use the cache (and
// recency order is the order at snapshot time) — the cluster handoff
// uses this to enumerate the hot set without stalling the serving path.
func (c *LRU) Range(fn func(key string, val any) bool) {
	c.mu.Lock()
	snap := make([]lruEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		snap = append(snap, *el.Value.(*lruEntry))
	}
	c.mu.Unlock()
	for _, e := range snap {
		if !fn(e.key, e.val) {
			return
		}
	}
}

// flightCall is one in-flight singleflight computation.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// resultCache combines the LRU with singleflight deduplication: at most
// one computation per key runs at a time, concurrent callers for the
// same key share its outcome, and successes are persisted in the LRU.
//
// When a warm tier is attached (Config.WarmStorePath), an LRU miss
// consults the verdicts loaded from the store at boot — so a restarted
// node answers previously computed queries without re-running the
// engine — and every fresh success is appended to the store.
//
// The computation runs fn under a context supplied by the server (its
// lifetime context plus the compute budget), NOT the callers' request
// contexts — a caller that disconnects mid-flight must not kill work
// other callers are waiting on. Every caller, leader included, stops
// waiting when its own context expires; the computation itself keeps
// running and its result lands in the LRU for later requests.
type resultCache struct {
	lru   *LRU
	mu    sync.Mutex
	calls map[string]*flightCall
	// onPanic, when set, records a compute-fn panic (metrics + log) and
	// returns a diagnostic ID for the client-facing error.
	onPanic func(key string, p any, stack []byte) string
	// warmGet consults the persistent warm tier on an LRU miss; persist
	// appends a fresh success to it. Both may be nil (no warm store).
	warmGet  func(key string) (any, bool)
	persist  func(key string, val any)
	hits     atomic.Int64
	misses   atomic.Int64
	shared   atomic.Int64
	warmHits atomic.Int64
}

// errComputePanic is how a panic inside a compute fn reaches waiters:
// the computation runs on its own goroutine (no HTTP recover middleware
// above it), so the runner converts the panic into this error instead
// of letting it kill the process or leave the key poisoned.
type errComputePanic struct {
	p      any
	DiagID string
}

func (e errComputePanic) Error() string {
	return fmt.Sprintf("internal error in computation (diag %s): %v", e.DiagID, e.p)
}

func newResultCache(max int) *resultCache {
	return &resultCache{lru: NewLRU(max), calls: make(map[string]*flightCall)}
}

// do returns the cached or computed value for key. cached reports an LRU
// or warm-store hit; shared reports that the value came from another
// caller's in-flight computation. Errors are never cached.
func (rc *resultCache) do(ctx context.Context, key string, fn func() (any, error)) (val any, cached, shared bool, err error) {
	if v, ok := rc.peek(key); ok {
		return v, true, false, nil
	}
	rc.mu.Lock()
	if call, ok := rc.calls[key]; ok {
		rc.mu.Unlock()
		rc.shared.Add(1)
		select {
		case <-call.done:
			return call.val, false, true, call.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	rc.calls[key] = call
	rc.mu.Unlock()

	rc.misses.Add(1)
	// The computation runs on its own goroutine so the leader, like every
	// follower, stops waiting when its own context expires — the work
	// keeps running under the compute context fn captured, and later
	// callers pick up its result. The leader does NOT pass ctx to fn.
	go rc.run(key, call, fn)
	select {
	case <-call.done:
		return call.val, false, false, call.err
	case <-ctx.Done():
		return nil, false, false, ctx.Err()
	}
}

// peek consults only the cache tiers — LRU, then the warm store — and
// never computes. The batch path uses it to keep serving hits while
// the breaker holds off fresh engine work.
func (rc *resultCache) peek(key string) (any, bool) {
	if v, ok := rc.lru.Get(key); ok {
		rc.hits.Add(1)
		return v, true
	}
	if rc.warmGet != nil {
		if v, ok := rc.warmGet(key); ok {
			// Promote into the LRU so the hot tier keeps serving it even
			// if the warm map is large and cold.
			rc.lru.Put(key, v)
			rc.hits.Add(1)
			rc.warmHits.Add(1)
			return v, true
		}
	}
	return nil, false
}

// run executes one singleflight computation. Cleanup is unconditional:
// even when fn panics, the call is deregistered and done is closed, so
// waiters fail fast instead of blocking on a permanently poisoned key.
func (rc *resultCache) run(key string, call *flightCall, fn func() (any, error)) {
	defer func() {
		if p := recover(); p != nil {
			e := errComputePanic{p: p}
			if rc.onPanic != nil {
				e.DiagID = rc.onPanic(key, p, debug.Stack())
			}
			call.val, call.err = nil, e
		}
		if call.err == nil {
			rc.lru.Put(key, call.val)
			if rc.persist != nil {
				rc.persist(key, call.val)
			}
		}
		rc.mu.Lock()
		delete(rc.calls, key)
		rc.mu.Unlock()
		close(call.done)
	}()
	call.val, call.err = fn()
}
