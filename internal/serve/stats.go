package serve

import (
	"net/http"
	"sync/atomic"

	coordattack "repro"
	"repro/internal/serve/wire"
)

// engineAgg accumulates fullinfo engine instrumentation across every
// analysis the server has computed. The observer fires once per engine
// invocation (or per incremental round of a MinRounds search), so the
// counters keep growing even when the request later times out. Cache
// hits and singleflight followers never re-run the engine and therefore
// never count — /v1/stats measures work done, not requests served.
type engineAgg struct {
	runs             atomic.Int64
	rounds           atomic.Int64
	configs          atomic.Int64
	newViews         atomic.Int64
	wallNanos        atomic.Int64
	frontierRaw      atomic.Int64
	frontierDistinct atomic.Int64
	symRounds        atomic.Int64
	symFallbacks     atomic.Int64
	intervalsPeak    atomic.Int64
}

// observe is the fullinfo Observer hook wired into every engine request.
func (a *engineAgg) observe(st coordattack.EngineStats) {
	a.runs.Add(1)
	a.rounds.Add(int64(st.Rounds))
	a.configs.Add(st.Configs)
	a.newViews.Add(int64(st.NewViews))
	a.wallNanos.Add(st.WallNanos)
	a.frontierRaw.Add(st.FrontierRaw)
	a.frontierDistinct.Add(st.FrontierDistinct)
	a.symRounds.Add(int64(st.SymbolicRounds))
	a.symFallbacks.Add(int64(st.SymbolicFallbacks))
	for {
		peak := a.intervalsPeak.Load()
		if int64(st.IntervalsPeak) <= peak || a.intervalsPeak.CompareAndSwap(peak, int64(st.IntervalsPeak)) {
			break
		}
	}
}

// engineStatsJSON is the per-response engine instrumentation block,
// cached alongside the verdict so repeat queries can still show what the
// original computation cost. The struct itself lives in wire, where the
// JSON tags and the binary frame layout stay one source of truth.
type engineStatsJSON = wire.EngineStats

func engineStatsOf(st coordattack.EngineStats) *engineStatsJSON {
	js := &engineStatsJSON{
		Rounds:           st.Rounds,
		Configs:          st.Configs,
		Vertices:         st.Vertices,
		Components:       st.Components,
		MixedComponents:  st.MixedComponents,
		Merges:           st.Merges,
		ViewsInterned:    st.ViewsInterned,
		Workers:          st.Workers,
		FrontierRaw:      st.FrontierRaw,
		FrontierDistinct: st.FrontierDistinct,
		DedupRatio:       st.DedupRatio(),
		WallNanos:        st.WallNanos,
	}
	if st.SymbolicRounds > 0 || st.SymbolicFallbacks > 0 {
		js.SymbolicRounds = st.SymbolicRounds
		js.Intervals = st.Intervals
		js.IntervalRuns = st.IntervalRuns
		js.IntervalsPeak = st.IntervalsPeak
		js.FragmentationRatio = st.FragmentationRatio()
		js.SymbolicFallbacks = st.SymbolicFallbacks
	}
	return js
}

// StatsVarz is the GET /v1/stats aggregate: lifetime engine work plus
// the cache effectiveness needed to interpret it.
type StatsVarz struct {
	EngineRuns      int64 `json:"engineRuns"`
	RoundsAnalyzed  int64 `json:"roundsAnalyzed"`
	ConfigsExplored int64 `json:"configsExplored"`
	ViewsInterned   int64 `json:"viewsInterned"`
	EngineWallNanos int64 `json:"engineWallNanos"`
	// Lifetime frontier dedup gauges across every dedup'd engine round,
	// plus the resulting raw/distinct ratio (1 when no round dedup'd).
	FrontierRaw      int64   `json:"frontierRaw"`
	FrontierDistinct int64   `json:"frontierDistinct"`
	DedupRatio       float64 `json:"dedupRatio"`
	// Lifetime symbolic-backend gauges: rounds advanced by the interval
	// walk, fallbacks to enumeration, and the largest interval set any
	// single run reached.
	SymbolicRounds     int64 `json:"symbolicRounds"`
	SymbolicFallbacks  int64 `json:"symbolicFallbacks"`
	IntervalsPeak      int64 `json:"intervalsPeak"`
	CacheHits          int64 `json:"cacheHits"`
	CacheMisses        int64 `json:"cacheMisses"`
	WarmHits           int64 `json:"warmHits"`
	SingleflightShared int64 `json:"singleflightShared"`
}

func (s *Server) statsVarz() StatsVarz {
	v := StatsVarz{
		EngineRuns:         s.engine.runs.Load(),
		RoundsAnalyzed:     s.engine.rounds.Load(),
		ConfigsExplored:    s.engine.configs.Load(),
		ViewsInterned:      s.engine.newViews.Load(),
		EngineWallNanos:    s.engine.wallNanos.Load(),
		FrontierRaw:        s.engine.frontierRaw.Load(),
		FrontierDistinct:   s.engine.frontierDistinct.Load(),
		DedupRatio:         1,
		SymbolicRounds:     s.engine.symRounds.Load(),
		SymbolicFallbacks:  s.engine.symFallbacks.Load(),
		IntervalsPeak:      s.engine.intervalsPeak.Load(),
		CacheHits:          s.cache.hits.Load(),
		CacheMisses:        s.cache.misses.Load(),
		WarmHits:           s.cache.warmHits.Load(),
		SingleflightShared: s.cache.shared.Load(),
	}
	if v.FrontierDistinct > 0 {
		v.DedupRatio = float64(v.FrontierRaw) / float64(v.FrontierDistinct)
	}
	return v
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsVarz())
}
