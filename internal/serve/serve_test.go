package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

func TestHealthReadyVarz(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v Varz
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding varz: %v", err)
	}
	if !v.Ready || v.Draining {
		t.Fatalf("varz = ready=%v draining=%v, want ready, not draining", v.Ready, v.Draining)
	}
	if v.BreakerState != "closed" {
		t.Fatalf("breakerState = %q, want closed", v.BreakerState)
	}
}

func TestClassifyEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/classify", `{"scheme":"S1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify = %d: %s", resp.StatusCode, raw)
	}
	var cr classifyResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Scheme != "S1" || cr.Solvable == nil {
		t.Fatalf("classify response = %+v, want S1 with a solvability verdict", cr)
	}
	// Same scheme spelled as an expression must share the cache entry:
	// the canonical key is the compiled automaton, not the spelling.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/classify", `{"scheme":"S1"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second classify = %d: %s", resp2.StatusCode, raw2)
	}
	var cr2 classifyResponse
	if err := json.Unmarshal(raw2, &cr2); err != nil {
		t.Fatal(err)
	}
	if !cr2.Cached {
		t.Fatal("identical classify request was not served from cache")
	}
}

func TestIndexUnindexRoundtrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/index", `{"word":"wb."}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index = %d: %s", resp.StatusCode, raw)
	}
	var ir indexResponse
	if err := json.Unmarshal(raw, &ir); err != nil {
		t.Fatal(err)
	}
	resp2, raw2 := postJSON(t, ts.URL+"/v1/unindex",
		fmt.Sprintf(`{"rounds":3,"index":%q}`, ir.Index))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unindex = %d: %s", resp2.StatusCode, raw2)
	}
	var ur indexResponse
	if err := json.Unmarshal(raw2, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Word != "wb." {
		t.Fatalf("unindex(index(%q)) = %q; bijection broken", "wb.", ur.Word)
	}

	// A word outside Γ must be rejected, not indexed.
	resp3, _ := postJSON(t, ts.URL+"/v1/index", `{"word":"x"}`)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("index of double omission = %d, want 400", resp3.StatusCode)
	}
}

func TestSolvableEndpointAndCache(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/solvable", `{"scheme":"S1","horizon":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solvable = %d: %s", resp.StatusCode, raw)
	}
	var sr solvableResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Cached {
		t.Fatal("first solvable query claims cached")
	}
	_, raw2 := postJSON(t, ts.URL+"/v1/solvable", `{"scheme":"S1","horizon":2}`)
	var sr2 solvableResponse
	if err := json.Unmarshal(raw2, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Fatal("identical solvable query not served from cache")
	}
	if sr2.Solvable != sr.Solvable {
		t.Fatal("cached verdict differs from computed verdict")
	}

	// Horizon beyond the cap is a client error, not a giant computation.
	resp3, _ := postJSON(t, ts.URL+"/v1/solvable", `{"scheme":"S1","horizon":99}`)
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized horizon = %d, want 400", resp3.StatusCode)
	}
}

func TestNetSolvableEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/net/solvable", `{"graph":"cycle","n":4,"f":1,"rounds":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("net/solvable = %d: %s", resp.StatusCode, raw)
	}
	var nr netSolvableResponse
	if err := json.Unmarshal(raw, &nr); err != nil {
		t.Fatal(err)
	}
	if nr.N != 4 || nr.EdgeConnectivity != 2 {
		t.Fatalf("cycle(4): n=%d c=%d, want n=4 c=2", nr.N, nr.EdgeConnectivity)
	}
	if !nr.TheoremV1 {
		t.Fatal("f=1 < c=2 must report Theorem V.1 solvable")
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/net/solvable", `{"graph":"complete","n":50,"f":1,"rounds":2}`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("n=50 = %d, want 400", resp2.StatusCode)
	}
}

func TestChaosEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/chaos",
		`{"scheme":"S1","executions":25,"seed":7,"maxRounds":64,"maxPrefix":4,"noShrink":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos = %d: %s", resp.StatusCode, raw)
	}
	var cr chaosResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Executions != 25 || !cr.OK {
		t.Fatalf("chaos report = %+v, want 25 clean executions", cr)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/chaos", `{"scheme":"S1","executions":999999999}`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized campaign = %d, want 400", resp2.StatusCode)
	}
}

func TestBadRequestsRejected(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct{ path, body string }{
		{"/v1/classify", `{"scheme":"no-such-scheme"}`},
		{"/v1/classify", `{"bogus_field":1}`},
		{"/v1/classify", `{}`},
		{"/v1/solvable", `not json`},
	}
	for _, c := range cases {
		resp, _ := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q = %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	var logged bytes.Buffer
	var logMu sync.Mutex
	s, ts := testServer(t, Config{Logf: func(f string, a ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(&logged, f+"\n", a...)
	}})
	s.mux.Handle("POST /test/panic", s.protect(classLight, func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	resp, raw := postJSON(t, ts.URL+"/test/panic", `{}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	var ae apiError
	if err := json.Unmarshal(raw, &ae); err != nil {
		t.Fatal(err)
	}
	if ae.DiagID == "" {
		t.Fatal("500 body carries no diagnostic ID")
	}
	logMu.Lock()
	defer logMu.Unlock()
	if !strings.Contains(logged.String(), ae.DiagID) || !strings.Contains(logged.String(), "kaboom") {
		t.Fatalf("server log does not tie diag ID %q to the panic: %s", ae.DiagID, logged.String())
	}
}

// TestHeavyComputePanicIsolated pins the panic story on the compute
// path: the singleflight runner converts a panicking computation into a
// 500 + diagnostic ID for every waiter, the breaker is settled rather
// than leaked, and the key computes normally on the next request
// instead of staying poisoned.
func TestHeavyComputePanicIsolated(t *testing.T) {
	var logged bytes.Buffer
	var logMu sync.Mutex
	s, ts := testServer(t, Config{Logf: func(f string, a ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(&logged, f+"\n", a...)
	}})
	var first atomic.Bool
	first.Store(true)
	s.mux.Handle("POST /test/compute-panic", s.protect(classHeavy, func(w http.ResponseWriter, r *http.Request) {
		val, _, _, err := s.heavyCompute(r.Context(), "test-panic-key", func(ctx context.Context) (any, error) {
			if first.CompareAndSwap(true, false) {
				panic("engine kaboom")
			}
			return "ok", nil
		})
		if err != nil {
			s.writeComputeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"val": val})
	}))

	resp, raw := postJSON(t, ts.URL+"/test/compute-panic", `{}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking compute = %d (%s), want 500", resp.StatusCode, raw)
	}
	var ae apiError
	if err := json.Unmarshal(raw, &ae); err != nil {
		t.Fatal(err)
	}
	if ae.DiagID == "" {
		t.Fatal("compute-panic 500 carries no diagnostic ID")
	}
	logMu.Lock()
	if !strings.Contains(logged.String(), ae.DiagID) || !strings.Contains(logged.String(), "engine kaboom") {
		logMu.Unlock()
		t.Fatalf("server log does not tie diag ID %q to the panic", ae.DiagID)
	}
	logMu.Unlock()

	resp2, raw2 := postJSON(t, ts.URL+"/test/compute-panic", `{}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request = %d (%s), want 200 — key poisoned or breaker leaked", resp2.StatusCode, raw2)
	}
	state, fails := s.brk.Snapshot()
	if state != "closed" || fails != 0 {
		t.Fatalf("breaker after panic+success = %s/%d, want closed/0", state, fails)
	}
}

// TestRequestTimeoutStrictParse pins the timeout_ms contract: strict
// integer parsing (trailing garbage rejected, not truncated), and the
// configured ceiling can be lowered but never raised.
func TestRequestTimeoutStrictParse(t *testing.T) {
	s := New(Config{RequestTimeout: 5 * time.Second})
	for _, tc := range []struct {
		q    string
		want time.Duration
	}{
		{"", 5 * time.Second},
		{"timeout_ms=100", 100 * time.Millisecond},
		{"timeout_ms=100abc", 5 * time.Second},
		{"timeout_ms=1e3", 5 * time.Second},
		{"timeout_ms=-5", 5 * time.Second},
		{"timeout_ms=0", 5 * time.Second},
		{"timeout_ms=999999999", 5 * time.Second},
	} {
		r := httptest.NewRequest(http.MethodPost, "/v1/solvable?"+tc.q, nil)
		if got := s.requestTimeout(r); got != tc.want {
			t.Errorf("requestTimeout(%q) = %s, want %s", tc.q, got, tc.want)
		}
	}
}

// TestBurstShedding saturates the heavy admission queue and checks the
// overflow is shed with 429 + Retry-After while admitted requests still
// complete — no deadlock, no unbounded queueing.
func TestBurstShedding(t *testing.T) {
	s, ts := testServer(t, Config{AnalysisConcurrency: 1, QueueDepth: 1})
	entered := make(chan struct{}, 16)
	unblock := make(chan struct{})
	s.mux.Handle("POST /test/block", s.protect(classHeavy, func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-unblock
		fmt.Fprintln(w, "ok")
	}))

	type outcome struct {
		status     int
		retryAfter string
	}
	results := make(chan outcome, 16)
	fire := func() {
		resp, err := http.Post(ts.URL+"/test/block", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Error(err)
			results <- outcome{status: -1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
	}

	// First request occupies the single execution slot.
	go fire()
	<-entered
	// Nine more: one fits the queue (depth 1), eight must shed NOW.
	const burst = 9
	for i := 0; i < burst; i++ {
		go fire()
	}
	shed := 0
	for shed < burst-1 {
		o := <-results
		if o.status != http.StatusTooManyRequests {
			t.Fatalf("burst response = %d, want 429", o.status)
		}
		if o.retryAfter == "" {
			t.Fatal("429 without Retry-After header")
		}
		shed++
	}
	// Unblock: the slot holder and the one queued request both finish.
	close(unblock)
	for i := 0; i < 2; i++ {
		if o := <-results; o.status != http.StatusOK {
			t.Fatalf("admitted request = %d, want 200", o.status)
		}
	}
	var v Varz
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Shed != int64(burst-1) {
		t.Fatalf("varz shed = %d, want %d", v.Shed, burst-1)
	}
}

// TestBreakerTripsOverHTTP forces consecutive compute failures with a
// microscopic compute budget and checks the breaker starts fast-failing
// with 503 + Retry-After instead of burning the engine.
func TestBreakerTripsOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{
		ComputeBudget:    time.Nanosecond, // every engine call times out instantly
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	// Two distinct keys so the failures are fresh computations (errors are
	// never cached, but identical in-flight requests would coalesce).
	for i, body := range []string{
		`{"scheme":"S1","horizon":3}`,
		`{"scheme":"S1","horizon":4}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/solvable", body)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("failure %d = %d (%s), want 504", i, resp.StatusCode, raw)
		}
	}
	resp, raw := postJSON(t, ts.URL+"/v1/solvable", `{"scheme":"S1","horizon":5}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker = %d (%s), want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}
}

// TestBreakerCoversChaos pins that /v1/chaos sits behind the circuit
// breaker like the other heavy paths: repeated campaign timeouts trip
// it, after which chaos requests fast-fail with 503 + Retry-After.
func TestBreakerCoversChaos(t *testing.T) {
	_, ts := testServer(t, Config{
		RequestTimeout:   time.Nanosecond, // every campaign times out instantly
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	body := `{"scheme":"S1","executions":50000,"seed":7}`
	for i := 0; i < 2; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/chaos", body)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("timed-out campaign %d = %d (%s), want 504", i, resp.StatusCode, raw)
		}
	}
	resp, raw := postJSON(t, ts.URL+"/v1/chaos", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker = %d (%s), want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}
}

// TestGracefulDrain proves the SIGTERM path: after the lifecycle context
// is cancelled, in-flight requests run to completion, new connections are
// refused, readiness flips, and ListenAndServe returns cleanly.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0", DrainTimeout: 10 * time.Second})
	entered := make(chan struct{})
	unblock := make(chan struct{})
	s.mux.Handle("POST /test/block", s.protect(classHeavy, func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-unblock
		fmt.Fprintln(w, "drained-ok")
	}))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ListenAndServe(ctx) }()

	var base string
	for i := 0; i < 500; i++ {
		if addr := s.BoundAddr(); addr != "" {
			base = "http://" + addr
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("server never bound")
	}

	// Park one request in a handler.
	inflight := make(chan string, 1)
	go func() {
		resp, err := http.Post(base+"/test/block", "application/json", strings.NewReader(`{}`))
		if err != nil {
			inflight <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		inflight <- fmt.Sprintf("%d %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}()
	<-entered

	// SIGTERM analog: cancel the lifecycle context; drain starts.
	cancel()

	// New work must be rejected: the listener closes during Shutdown, so
	// fresh connections fail outright (or, in the shutdown race window,
	// readiness reports draining).
	rejected := false
	for i := 0; i < 500; i++ {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			rejected = true // connection refused: listener is gone
			break
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			rejected = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !rejected {
		t.Fatal("new requests were still welcomed after drain began")
	}

	// The parked request must still complete successfully.
	close(unblock)
	select {
	case got := <-inflight:
		if got != "200 drained-ok" {
			t.Fatalf("in-flight request during drain = %q, want \"200 drained-ok\"", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ListenAndServe after drain = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after drain")
	}
	if s.ready.Load() || !s.draining.Load() {
		t.Fatal("drained server still advertises readiness")
	}
}

// TestConcurrentMixedLoad hammers the service with a mixture of cacheable
// queries from many goroutines; under -race this doubles as the data-race
// proof for the cache/singleflight/gate/metrics plumbing.
func TestConcurrentMixedLoad(t *testing.T) {
	_, ts := testServer(t, Config{AnalysisConcurrency: 2, QueueDepth: 64})
	bodies := []string{
		`{"scheme":"S1","horizon":2}`,
		`{"scheme":"S2","horizon":2}`,
		`{"scheme":"S1","horizon":3}`,
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solvable", "application/json",
				strings.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				t.Errorf("mixed load: %v", err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("mixed load: %d (%s)", resp.StatusCode, raw)
			}
		}(i)
	}
	wg.Wait()
}
