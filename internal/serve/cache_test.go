package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := NewLRU(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// "a" is now most recent, so inserting "c" must evict "b".
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted although it was most recently used")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing after insert")
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	// Updating an existing key must not grow the cache.
	c.Put("a", 99)
	if got := c.Len(); got != 2 {
		t.Fatalf("len after update = %d, want 2", got)
	}
	if v, _ := c.Get("a"); v != 99 {
		t.Fatalf("a = %v, want 99", v)
	}
}

func TestResultCacheHit(t *testing.T) {
	rc := newResultCache(8)
	calls := 0
	fn := func() (any, error) { calls++; return "v", nil }

	v, cached, shared, err := rc.do(context.Background(), "k", fn)
	if err != nil || v != "v" || cached || shared {
		t.Fatalf("first do = (%v, %v, %v, %v)", v, cached, shared, err)
	}
	v, cached, _, err = rc.do(context.Background(), "k", fn)
	if err != nil || v != "v" || !cached {
		t.Fatalf("second do = (%v, cached=%v, %v), want cache hit", v, cached, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if rc.hits.Load() != 1 || rc.misses.Load() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", rc.hits.Load(), rc.misses.Load())
	}
}

func TestResultCacheErrorsNotCached(t *testing.T) {
	rc := newResultCache(8)
	boom := errors.New("boom")
	calls := 0
	_, _, _, err := rc.do(context.Background(), "k", func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, cached, _, err := rc.do(context.Background(), "k", func() (any, error) { calls++; return "ok", nil })
	if err != nil || v != "ok" || cached {
		t.Fatalf("retry after error = (%v, cached=%v, %v); error was cached", v, cached, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

func TestResultCacheSingleflight(t *testing.T) {
	rc := newResultCache(8)
	const followers = 8
	var running atomic.Int32
	block := make(chan struct{})
	leaderIn := make(chan struct{})

	fn := func() (any, error) {
		running.Add(1)
		close(leaderIn)
		<-block
		return "shared-value", nil
	}

	var wg sync.WaitGroup
	results := make(chan struct {
		v      any
		shared bool
		err    error
	}, followers+1)
	launch := func() {
		defer wg.Done()
		v, _, shared, err := rc.do(context.Background(), "k", fn)
		results <- struct {
			v      any
			shared bool
			err    error
		}{v, shared, err}
	}

	wg.Add(1)
	go launch()
	<-leaderIn // leader is inside fn; everyone else must join it
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go launch()
	}
	// Followers register before we unblock: wait until all are accounted
	// for as shared joiners.
	deadline := time.After(5 * time.Second)
	for rc.shared.Load() < followers {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d followers joined the flight", rc.shared.Load(), followers)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(block)
	wg.Wait()
	close(results)

	sharedCount := 0
	for r := range results {
		if r.err != nil || r.v != "shared-value" {
			t.Fatalf("result = (%v, %v)", r.v, r.err)
		}
		if r.shared {
			sharedCount++
		}
	}
	if got := running.Load(); got != 1 {
		t.Fatalf("fn ran %d times under singleflight, want 1", got)
	}
	if sharedCount != followers {
		t.Fatalf("%d callers reported shared, want %d", sharedCount, followers)
	}
}

// TestResultCachePanicDoesNotPoisonKey is the regression test for the
// poisoned-flight bug: a panicking compute fn must deregister the call
// and release every waiter with an error, and the key must compute
// normally afterwards — not block all comers until restart.
func TestResultCachePanicDoesNotPoisonKey(t *testing.T) {
	rc := newResultCache(8)
	var diags atomic.Int32
	rc.onPanic = func(key string, p any, stack []byte) string {
		diags.Add(1)
		if key != "k" || p != "kaboom" || len(stack) == 0 {
			t.Errorf("onPanic(%q, %v, %d bytes)", key, p, len(stack))
		}
		return "diag-test-1"
	}

	inFn := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := rc.do(context.Background(), "k", func() (any, error) {
			close(inFn)
			<-release
			panic("kaboom")
		})
		leaderDone <- err
	}()
	<-inFn

	// A follower joins the doomed flight before the panic fires.
	followerDone := make(chan error, 1)
	go func() {
		_, _, _, err := rc.do(context.Background(), "k", func() (any, error) {
			return nil, fmt.Errorf("follower must not compute")
		})
		followerDone <- err
	}()
	for rc.shared.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	var cp errComputePanic
	for _, ch := range []chan error{leaderDone, followerDone} {
		select {
		case err := <-ch:
			if !errors.As(err, &cp) || cp.DiagID != "diag-test-1" {
				t.Fatalf("waiter err = %v, want errComputePanic with diag-test-1", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter blocked on a poisoned key")
		}
	}
	if diags.Load() != 1 {
		t.Fatalf("panic recorded %d times, want once (not once per waiter)", diags.Load())
	}

	// The key must be live again: a fresh fn computes and caches.
	v, cached, shared, err := rc.do(context.Background(), "k", func() (any, error) { return "recovered", nil })
	if err != nil || v != "recovered" || cached || shared {
		t.Fatalf("post-panic do = (%v, %v, %v, %v), want a fresh computation", v, cached, shared, err)
	}
}

// TestResultCacheLeaderHonorsOwnContext pins the deadline contract: the
// first caller for a key (the singleflight leader) must stop waiting
// when its own context expires, while the computation keeps running and
// its result still lands in the LRU for later requests.
func TestResultCacheLeaderHonorsOwnContext(t *testing.T) {
	rc := newResultCache(8)
	inFn := make(chan struct{})
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	leaderDone := make(chan error, 1)
	go func() {
		_, _, _, err := rc.do(ctx, "k", func() (any, error) {
			close(inFn)
			<-release
			return "late-value", nil
		})
		leaderDone <- err
	}()
	<-inFn
	cancel()
	select {
	case err := <-leaderDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("leader err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader ignored its own context and blocked on the computation")
	}

	// The abandoned computation finishes and feeds the cache.
	close(release)
	deadline := time.After(5 * time.Second)
	for {
		v, cached, _, err := rc.do(context.Background(), "k", func() (any, error) { return "fresh", nil })
		if err != nil {
			t.Fatalf("follow-up do: %v", err)
		}
		if cached {
			if v != "late-value" {
				t.Fatalf("cached value = %v, want the abandoned computation's late-value", v)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("abandoned computation never populated the LRU")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestResultCacheFollowerContextCancel(t *testing.T) {
	rc := newResultCache(8)
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	go rc.do(context.Background(), "k", func() (any, error) {
		close(leaderIn)
		<-block
		return "v", nil
	})
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := rc.do(ctx, "k", func() (any, error) {
			return nil, fmt.Errorf("follower must not compute")
		})
		done <- err
	}()
	// Give the follower a moment to join, then cancel it; the leader stays
	// blocked, proving the follower's exit is independent.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not return")
	}
	close(block)
}
