package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/serve/wire"
)

// Config parameterizes the coordinator. Only Backends is required.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:8322"; use :0 for
	// an ephemeral port, reported by BoundAddr).
	Addr string
	// Backends are the base URLs of the capserved shards at boot, e.g.
	// "http://127.0.0.1:8321". Membership is LIVE after boot: the admin
	// surface (GET/POST/DELETE /v1/cluster/members) joins and removes
	// backends without a restart, and the health prober (ProbeInterval)
	// ejects dead shards from routing and readmits recovered ones. Each
	// membership change swaps in a new epoch-versioned ring; in-flight
	// requests finish on the epoch they started with.
	Backends []string
	// Replicas is how many distinct shards a keyed request may try —
	// primary plus hedge/failover candidates (default 2, clamped per
	// epoch to the routable member count).
	Replicas int
	// HedgeDelay is how long the primary may stay silent before the
	// request is hedged to the next replica (default 250ms).
	HedgeDelay time.Duration
	// RequestTimeout bounds a whole coordinated request (default 30s).
	RequestTimeout time.Duration
	// AttemptTimeout bounds one backend attempt (default RequestTimeout).
	AttemptTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// CacheEntries sizes the coordinator's LRU over raw verdict bodies
	// (default 4096).
	CacheEntries int
	// WarmStorePath, when set, persists verdict bodies to a JSON-lines
	// file loaded at boot — a restarted coordinator answers known
	// queries without touching any backend.
	WarmStorePath string
	// BreakerThreshold / BreakerCooldown parameterize each shard's
	// circuit breaker (defaults 3 consecutive failures, 5s cooldown —
	// tighter than a single node's engine breaker because a shard has
	// replicas to absorb its traffic).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// VNodes is the virtual nodes per backend on the hash ring
	// (default 64).
	VNodes int
	// ProbeInterval is the health-probe period. Zero disables the
	// prober: breakers and hedging still mask failures, but nothing is
	// ejected from or readmitted to the ring automatically.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default min(ProbeInterval,
	// 1s)).
	ProbeTimeout time.Duration
	// ProbeFailThreshold is how many consecutive probe failures eject a
	// member from routing (default 3). The member is not forgotten: it
	// keeps being probed and readmits automatically.
	ProbeFailThreshold int
	// ProbeRecoverThreshold is how many consecutive probe successes
	// readmit an ejected member (default 2). Readmission re-closes the
	// shard's breaker and triggers a warm handoff.
	ProbeRecoverThreshold int
	// HandoffMaxEntries bounds how many warm verdicts a join/readmit
	// handoff replays to the newcomer (default 1024; negative disables
	// handoffs).
	HandoffMaxEntries int
	// HandoffTimeout bounds one whole handoff (default 10s).
	HandoffTimeout time.Duration
	// HTTPClient is the transport to the backends; injectable so tests
	// (and chaos campaigns) can wrap it with a fault-injecting
	// RoundTripper. Default: a dedicated client with sane pooling.
	HTTPClient *http.Client
	// Logf sinks operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Clock is the time source (default time.Now); injectable for
	// deterministic breaker tests.
	Clock func() time.Time
}

func (c *Config) defaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8322"
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 250 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = c.RequestTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
		if c.ProbeInterval > 0 && c.ProbeInterval < c.ProbeTimeout {
			c.ProbeTimeout = c.ProbeInterval
		}
	}
	if c.ProbeFailThreshold <= 0 {
		c.ProbeFailThreshold = 3
	}
	if c.ProbeRecoverThreshold <= 0 {
		c.ProbeRecoverThreshold = 2
	}
	if c.HandoffMaxEntries == 0 {
		c.HandoffMaxEntries = 1024
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 10 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
		}}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// shard is one backend plus its health bookkeeping. Shard structs are
// shared by every epoch that routes to the backend, so breaker state
// and counters survive membership changes.
type shard struct {
	base         string
	brk          *serve.Breaker
	requests     atomic.Int64
	failures     atomic.Int64
	hedges       atomic.Int64 // hedged attempts sent to this shard
	hedgeWins    atomic.Int64 // hedged attempts that produced the reply
	handoffKeys  atomic.Int64 // warm verdicts pushed to this shard on join/readmit
	exportedKeys atomic.Int64 // warm verdicts this shard exported as a handoff neighbor
}

// Coordinator is the cluster router. Construct with New, mount
// Handler on any http.Server, or let ListenAndServe own the lifecycle.
type Coordinator struct {
	cfg   Config
	mux   *http.ServeMux
	cache *serve.LRU

	// Live membership: the member table (any state, guarded by memMu)
	// and the copy-on-write routing view (atomic swap on every epoch
	// change — readers never block on membership mutations).
	memMu     sync.Mutex
	members   map[string]*member
	memOrder  []string
	epochHist []epochRecord
	view      atomic.Pointer[epochView]

	warm       *serve.VerdictStore
	warmMu     sync.RWMutex
	warmMap    map[string][]byte
	warmLoaded int

	// baseCtx is the coordinator lifetime: every backend attempt, probe,
	// and handoff runs under it, so drain cancels in-flight work; wg
	// tracks the goroutines so drain can prove they are gone.
	baseCtx    context.Context
	cancelBase context.CancelFunc
	wg         sync.WaitGroup

	ready    atomic.Bool
	draining atomic.Bool
	started  time.Time
	boundAdr atomic.Value // string

	// hedgeDelayNs is the live hedge trigger, adjustable at runtime so
	// operators (and capbench) can retune hedging to a measured healthy
	// p99 without rebuilding the coordinator.
	hedgeDelayNs atomic.Int64

	m struct {
		requests       atomic.Int64
		keyed          atomic.Int64
		cacheHits      atomic.Int64
		cacheMisses    atomic.Int64
		warmHits       atomic.Int64
		hedges         atomic.Int64
		hedgeWins      atomic.Int64
		failovers      atomic.Int64
		breakerSkips   atomic.Int64
		exhausted      atomic.Int64
		fanouts        atomic.Int64
		fanoutPartials atomic.Int64
		fanoutFailures atomic.Int64
		batches        atomic.Int64 // /v1/solve/batch requests admitted
		batchItems     atomic.Int64 // items across all admitted batches

		epochSwaps     atomic.Int64
		joins          atomic.Int64
		leaves         atomic.Int64
		probes         atomic.Int64
		probeFailures  atomic.Int64
		ejections      atomic.Int64
		readmissions   atomic.Int64
		handoffs       atomic.Int64
		handoffKeys    atomic.Int64
		handoffErrors  atomic.Int64
		handoffSkipped atomic.Int64
	}
}

// newShard builds the per-backend bookkeeping for base.
func (c *Coordinator) newShard(base string) *shard {
	return &shard{
		base: base,
		brk:  serve.NewBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, c.cfg.Clock),
	}
}

// New builds a Coordinator over the configured backends.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	cfg.defaults()
	c := &Coordinator{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   serve.NewLRU(cfg.CacheEntries),
		members: map[string]*member{},
		warmMap: map[string][]byte{},
	}
	now := cfg.Clock()
	for _, base := range cfg.Backends {
		base, err := normalizeBase(base)
		if err != nil {
			return nil, err
		}
		if _, dup := c.members[base]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %s", base)
		}
		c.members[base] = &member{sh: c.newShard(base), state: memberActive, joinedAt: now}
		c.memOrder = append(c.memOrder, base)
	}
	c.memMu.Lock()
	c.rebuild("boot")
	c.memMu.Unlock()
	if cfg.WarmStorePath != "" {
		store, entries, err := serve.OpenVerdictStore(cfg.WarmStorePath)
		if err != nil {
			cfg.Logf("coordinator: warm store disabled: %v", err)
		} else {
			c.warm, c.warmMap, c.warmLoaded = store, entries, len(entries)
		}
	}
	c.hedgeDelayNs.Store(int64(cfg.HedgeDelay))
	c.baseCtx, c.cancelBase = context.WithCancel(context.Background())
	c.started = now
	c.ready.Store(true)
	c.routes()
	if cfg.ProbeInterval > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Handler returns the fully wired HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// HedgeDelay reports the live hedge trigger.
func (c *Coordinator) HedgeDelay() time.Duration {
	return time.Duration(c.hedgeDelayNs.Load())
}

// SetHedgeDelay retunes the hedge trigger at runtime (values <= 0 are
// ignored). Hedging at roughly the measured healthy p99 keeps the extra
// load a hedge adds in the low percents while still cutting the tail.
func (c *Coordinator) SetHedgeDelay(d time.Duration) {
	if d > 0 {
		c.hedgeDelayNs.Store(int64(d))
	}
}

// BoundAddr reports the listener address once ListenAndServe has bound
// it ("" before that).
func (c *Coordinator) BoundAddr() string {
	if v := c.boundAdr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe runs the coordinator until ctx is cancelled, then
// drains: readiness flips, the listener stops accepting, in-flight
// requests and hedge goroutines get up to DrainTimeout to finish (the
// computation context is cancelled so they finish promptly), and the
// warm store is closed. Returns nil on a clean drained exit.
func (c *Coordinator) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return err
	}
	c.boundAdr.Store(ln.Addr().String())
	c.cfg.Logf("coordinator: listening on http://%s (%d backends)", ln.Addr(), len(c.currentView().shards))

	hs := &http.Server{Handler: c.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		c.Shutdown(context.Background())
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), c.cfg.DrainTimeout)
	defer cancel()
	c.draining.Store(true)
	c.ready.Store(false)
	err = hs.Shutdown(dctx)
	if serr := c.Shutdown(dctx); err == nil {
		err = serr
	}
	if e := <-serveErr; e != nil && !errors.Is(e, http.ErrServerClosed) && err == nil {
		err = e
	}
	return err
}

// Shutdown cancels every in-flight backend attempt (hedges, probes and
// handoffs included), waits for their goroutines under ctx, closes the
// warm store, and releases idle backend connections. It is exposed
// separately so tests driving Handler directly can assert a leak-free
// drain.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	c.ready.Store(false)
	c.cancelBase()
	done := make(chan struct{})
	go func() { c.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("coordinator: drain deadline: in-flight backend attempts did not finish")
	}
	if cerr := c.warm.Close(); cerr != nil && err == nil {
		err = cerr
	}
	c.cfg.HTTPClient.CloseIdleConnections()
	c.cfg.Logf("coordinator: drained (err=%v)", err)
	return err
}

// routes mounts the coordinator surface.
func (c *Coordinator) routes() {
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	c.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if !c.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	c.mux.HandleFunc("GET /v1/stats", c.handleStats)
	c.mux.HandleFunc("GET /varz", c.handleStats)
	c.mux.HandleFunc("GET /v1/cluster/members", c.handleMembersGet)
	c.mux.HandleFunc("POST /v1/cluster/members", c.handleMembersPost)
	c.mux.HandleFunc("DELETE /v1/cluster/members", c.handleMembersDelete)
	c.mux.HandleFunc("POST /v1/classify", c.keyed(c.classifyKey))
	c.mux.HandleFunc("POST /v1/solvable", c.keyed(c.solvableKey))
	c.mux.HandleFunc("POST /v1/solve/batch", c.batchHandler("/v1/solvable", wire.KindSolvable, c.solvableKey))
	c.mux.HandleFunc("POST /v1/net/solvable", c.keyed(c.netSolvableKey))
	c.mux.HandleFunc("POST /v1/net/solve/batch", c.batchHandler("/v1/net/solvable", wire.KindNetSolvable, c.netSolvableKey))
	c.mux.HandleFunc("POST /v1/index", c.passthrough)
	c.mux.HandleFunc("POST /v1/unindex", c.passthrough)
	c.mux.HandleFunc("POST /v1/chaos", c.handleChaos)
	c.mux.HandleFunc("POST /v1/chaos/batch", c.batchHandler("/v1/chaos", wire.KindChaos, c.chaosBatchKey))
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (c *Coordinator) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
}

// acceptsWire / acceptsWireStream report whether the caller negotiated
// binary verdict frames (mirroring the node's negotiation).
func acceptsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.MediaTypeVerdict)
}

func acceptsWireStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.MediaTypeVerdictStream)
}

// shardAccept is the Accept header the coordinator sends to backends
// for a keyed request: binary frames for keys that have a frame kind
// (solvable, netsolve), JSON otherwise. The cached/warm body then
// carries whichever encoding the shard answered with, and negotiateBody
// transcodes per caller.
func shardAccept(key string) string {
	if _, ok := wire.KindForKey(key); ok {
		return wire.AcceptVerdict
	}
	return ""
}

// negotiateBody reconciles a cached or shard-answered verdict body with
// what the caller asked for: frames pass through to binary callers,
// frames transcode to pretty JSON for JSON callers, and JSON bodies
// transcode to frames for binary callers when the key has a frame kind.
// The returned content type is "" when a frame body cannot be decoded
// at all (cache corruption) — the caller should answer 502.
func negotiateBody(r *http.Request, key string, body []byte) ([]byte, string) {
	wantBin := acceptsWire(r)
	if wire.IsFrame(body) {
		if wantBin {
			return body, wire.MediaTypeVerdict
		}
		j, err := wire.FrameToJSON(body, "  ")
		if err != nil {
			return nil, ""
		}
		return append(j, '\n'), "application/json"
	}
	if wantBin {
		if kind, ok := wire.KindForKey(key); ok {
			if f, err := wire.JSONToFrame(kind, body); err == nil {
				return f, wire.MediaTypeVerdict
			}
		}
	}
	return body, "application/json"
}

// Key extractors: each decodes just enough of the request to (a) reject
// garbage locally and (b) compute the canonical cache/sharding key —
// the SAME key the backend uses, so verdict stores interoperate.

func (c *Coordinator) classifyKey(body []byte) (string, error) {
	var req serve.SchemeSelector
	if err := json.Unmarshal(body, &req); err != nil {
		return "", err
	}
	sch, err := req.Resolve()
	if err != nil {
		return "", err
	}
	return serve.ClassifyKey(sch), nil
}

func (c *Coordinator) solvableKey(body []byte) (string, error) {
	var req struct {
		serve.SchemeSelector
		Horizon    int  `json:"horizon,omitempty"`
		MinRounds  bool `json:"minRounds,omitempty"`
		MaxHorizon int  `json:"maxHorizon,omitempty"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", err
	}
	sch, err := req.Resolve()
	if err != nil {
		return "", err
	}
	horizon := req.Horizon
	if req.MinRounds {
		horizon = req.MaxHorizon
	}
	return serve.SolvableKey(sch, horizon, req.MinRounds), nil
}

func (c *Coordinator) netSolvableKey(body []byte) (string, error) {
	var req struct {
		serve.GraphSelector
		F      int `json:"f"`
		Rounds int `json:"rounds"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", err
	}
	g, err := req.Resolve()
	if err != nil {
		return "", err
	}
	return serve.NetSolvableKey(g, req.F, req.Rounds), nil
}

// keyed builds the handler for a deterministic, cacheable endpoint:
// two-tier cache in front, consistent-hash routing with hedging and
// replica failover behind. The routing view is captured once per
// request — a concurrent membership change swaps the epoch for later
// requests, never mid-request.
func (c *Coordinator) keyed(keyOf func([]byte) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.m.requests.Add(1)
		c.m.keyed.Add(1)
		body, err := readBody(w, r)
		if err != nil {
			c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		key, err := keyOf(body)
		if err != nil {
			c.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if v, ok := c.cache.Get(key); ok {
			c.m.cacheHits.Add(1)
			c.serveRaw(w, r, key, "hit", v.([]byte))
			return
		}
		c.warmMu.RLock()
		raw, ok := c.warmMap[key]
		c.warmMu.RUnlock()
		if ok {
			c.m.cacheHits.Add(1)
			c.m.warmHits.Add(1)
			c.cache.Put(key, []byte(raw))
			c.serveRaw(w, r, key, "warm", []byte(raw))
			return
		}
		c.m.cacheMisses.Add(1)

		view := c.currentView()
		res, err := c.hedgedDo(r.Context(), r.URL.Path, shardAccept(key), body, view, view.ring.Replicas(key, c.cfg.Replicas))
		if err != nil {
			c.writeHedgeError(w, err)
			return
		}
		if res.status >= 400 {
			// Client-shaped rejection: every replica would agree, so the
			// first verdict is forwarded and nothing is cached.
			c.forward(w, r, key, res)
			return
		}
		c.cache.Put(key, res.body)
		c.persistWarm(key, res.body)
		c.forward(w, r, key, res)
	}
}

// passthrough routes a cheap, uncached endpoint (index/unindex) by body
// hash — still hedged, so a wedged shard cannot stall even the light
// path.
func (c *Coordinator) passthrough(w http.ResponseWriter, r *http.Request) {
	c.m.requests.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	view := c.currentView()
	res, err := c.hedgedDo(r.Context(), r.URL.Path, "", body, view, view.ring.Replicas("light|"+string(body), c.cfg.Replicas))
	if err != nil {
		c.writeHedgeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cluster-Cache", "miss")
	w.Header().Set("X-Cluster-Shard", res.base)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func (c *Coordinator) serveRaw(w http.ResponseWriter, r *http.Request, key, tier string, body []byte) {
	out, ct := negotiateBody(r, key, body)
	if ct == "" {
		c.writeError(w, http.StatusBadGateway, "cached verdict for %s is undecodable", key)
		return
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Cluster-Cache", tier)
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, key string, res *attemptResult) {
	body, ct := res.body, "application/json"
	if res.status < 400 {
		// Error bodies are JSON and must never be re-shaped; verdicts
		// negotiate.
		if body, ct = negotiateBody(r, key, res.body); ct == "" {
			c.writeError(w, http.StatusBadGateway, "shard %s returned an undecodable verdict", res.base)
			return
		}
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Cluster-Cache", "miss")
	w.Header().Set("X-Cluster-Shard", res.base)
	w.WriteHeader(res.status)
	w.Write(body)
}

func (c *Coordinator) persistWarm(key string, body []byte) {
	c.warmMu.Lock()
	if _, dup := c.warmMap[key]; !dup {
		c.warmMap[key] = json.RawMessage(bytes.Clone(body))
	}
	c.warmMu.Unlock()
	if c.warm != nil {
		if err := c.warm.Append(key, json.RawMessage(body)); err != nil {
			c.cfg.Logf("coordinator: %v", err)
		}
	}
}

// errAllShardsBroken reports that no candidate shard would admit the
// request (every breaker open, or the routable member set is empty).
type errAllShardsBroken struct{ retryAfter time.Duration }

func (e errAllShardsBroken) Error() string {
	return fmt.Sprintf("all replica breakers open; retry in %s", e.retryAfter)
}

func (c *Coordinator) writeHedgeError(w http.ResponseWriter, err error) {
	var broken errAllShardsBroken
	switch {
	case errors.As(err, &broken):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((broken.retryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: broken.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "cluster request deadline exceeded"})
	default:
		writeJSON(w, http.StatusBadGateway, apiError{Error: err.Error()})
	}
}

// boundedCtx derives the context a coordinated request's backend work
// runs under: the caller's context bounded by RequestTimeout, and
// additionally cancelled when the coordinator drains — SIGTERM must not
// strand hedge goroutines behind a slow backend.
func (c *Coordinator) boundedCtx(rctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(rctx, c.cfg.RequestTimeout)
	stop := context.AfterFunc(c.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// attemptResult is one backend attempt's outcome.
type attemptResult struct {
	base   string
	hedged bool // launched by the hedge timer or a failover, not first
	status int
	body   []byte
	err    error
}

// hedgedDo performs a keyed request against the candidate shards of one
// epoch view with hedging and failover:
//
//   - The first candidate whose breaker admits the call gets the
//     request (breaker-open shards are skipped — failover, not waiting).
//   - If no reply lands within HedgeDelay, the next admitted candidate
//     receives a hedged duplicate; first usable reply wins, the loser
//     is cancelled.
//   - A failed attempt (transport error or 5xx) immediately launches
//     the next candidate if none is in flight.
//   - 429 (shed) fails over without counting against the shard breaker;
//     other 4xx replies are verdicts and win like a success.
//
// Every attempt runs under the coordinator's lifetime context, so drain
// cancels stragglers; the per-call context bounds total latency.
func (c *Coordinator) hedgedDo(rctx context.Context, path, accept string, payload []byte, view *epochView, cands []int) (*attemptResult, error) {
	ctx, cancel := c.boundedCtx(rctx)
	defer cancel()

	results := make(chan attemptResult, len(cands))
	next := 0
	inFlight := 0
	launched := 0
	var lastOpen time.Duration

	// launch starts the next admitted candidate, skipping shards whose
	// breaker is open. Reports whether an attempt went out.
	launch := func(hedged bool) bool {
		for next < len(cands) {
			sh := view.shards[cands[next]]
			next++
			done, err := sh.brk.Acquire()
			if err != nil {
				var open serve.BreakerOpenError
				if errors.As(err, &open) {
					lastOpen = open.RetryAfter
				}
				c.m.breakerSkips.Add(1)
				continue
			}
			sh.requests.Add(1)
			if hedged {
				sh.hedges.Add(1)
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				res := c.attempt(ctx, sh, path, accept, payload)
				res.base, res.hedged = sh.base, hedged
				failed := res.err != nil || res.status >= 500
				if res.err != nil && ctx.Err() != nil {
					// The coordinator cancelled this attempt itself — a
					// rival reply won, the caller left, or drain fired.
					// That is not evidence the shard is unhealthy, and
					// counting it would let sustained hedging trip the
					// loser's breaker.
					failed = false
				}
				if failed {
					sh.failures.Add(1)
				}
				done(failed)
				if res.hedged && res.err == nil && res.status < 500 && res.status != http.StatusTooManyRequests {
					sh.hedgeWins.Add(1)
				}
				results <- res
			}()
			inFlight++
			launched++
			return true
		}
		return false
	}

	if !launch(false) {
		return nil, errAllShardsBroken{retryAfter: max(lastOpen, time.Second)}
	}
	hedge := time.NewTimer(c.HedgeDelay())
	defer hedge.Stop()

	var lastFail *attemptResult
	for {
		select {
		case res := <-results:
			inFlight--
			usable := res.err == nil && res.status < 500 && res.status != http.StatusTooManyRequests
			if usable {
				if res.hedged {
					c.m.hedgeWins.Add(1)
				}
				return &res, nil
			}
			lastFail = &res
			if inFlight == 0 {
				if launch(true) {
					c.m.failovers.Add(1)
					continue
				}
				// Out of candidates: surface the most informative failure.
				c.m.exhausted.Add(1)
				if res.err != nil {
					return nil, fmt.Errorf("all %d replica attempts failed: %w", launched, res.err)
				}
				return &res, nil // forward the 5xx/429 verbatim
			}
		case <-hedge.C:
			if launch(true) {
				c.m.hedges.Add(1)
			}
		case <-ctx.Done():
			if lastFail != nil && lastFail.err == nil {
				return lastFail, nil
			}
			return nil, ctx.Err()
		}
	}
}

// attemptBodyLimit bounds one shard reply body.
const attemptBodyLimit = 8 << 20

// attempt performs a single backend POST under the attempt timeout.
// accept, when non-empty, negotiates the reply encoding with the shard.
func (c *Coordinator) attempt(ctx context.Context, sh *shard, path, accept string, payload []byte) attemptResult {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, sh.base+path, bytes.NewReader(payload))
	if err != nil {
		return attemptResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return attemptResult{err: err}
	}
	defer resp.Body.Close()
	buf, err := client.ReadBounded(resp.Body, attemptBodyLimit)
	if err != nil {
		var trunc *client.TruncatedError
		if errors.As(err, &trunc) {
			return attemptResult{err: fmt.Errorf("shard reply exceeds %d bytes: %w", trunc.Limit, err)}
		}
		return attemptResult{err: err}
	}
	// The result outlives the pooled buffer; clone before release.
	body := bytes.Clone(buf.Bytes())
	client.ReleaseBuffer(buf)
	return attemptResult{status: resp.StatusCode, body: body}
}
