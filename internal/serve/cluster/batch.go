package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"repro/internal/serve/wire"
)

// Batch endpoints on the coordinator — /v1/solve/batch,
// /v1/net/solve/batch, /v1/chaos/batch — mirror the node's batch tier:
// items are keyed and routed INDIVIDUALLY, each miss fanning out to its
// own shard's replica set through the normal hedged path, so per-shard
// breakers, hedging, and failover all operate per item, not per batch.
// Cache and warm hits stream immediately (cacheable classes only; chaos
// campaigns always fan out); misses stream as each shard answers. Lines
// carry the originating item index, so arrival order is completion
// order. The stream is JSON lines by default and BatchLine frames when
// the caller negotiated application/x-capverdict-stream; shard-side the
// coordinator negotiates frames for every class that has one, and each
// item's verdict is transcoded (at most once) to whatever the caller
// asked for.

// batchFanout bounds how many misses of one batch are in flight against
// the shards at once.
const batchFanout = 8

// clusterBatchMax caps the item count of one coordinator batch. It is
// intentionally the same default as a single node's MaxBatchItems: the
// coordinator splits the batch per item anyway, so a bigger cap would
// only defer the backends' own limits.
const clusterBatchMax = 64

// chaosBatchKey validates one chaos item and returns the empty key:
// campaigns are uncacheable (seeded randomized runs), so items always
// fan out, routed by body hash.
func (c *Coordinator) chaosBatchKey(body []byte) (string, error) {
	var req chaosShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", err
	}
	if _, err := req.Resolve(); err != nil {
		return "", err
	}
	return "", nil
}

// batchEmitter serializes stream lines from the fan-out workers and
// owns the caller-side encoding choice. kind is the endpoint's verdict
// frame kind, used to transcode JSON shard replies for binary callers.
type batchEmitter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	binary  bool
	kind    wire.Kind
}

// verdictFor shapes a stored or shard-answered body for the stream: a
// wire.Raw for binary callers (transcoding JSON bodies through the
// endpoint's kind), raw JSON for JSON callers (transcoding frames). A
// body that fits neither encoding is dropped to an error line by the
// caller.
func (e *batchEmitter) verdictFor(body []byte) (any, bool) {
	if e.binary {
		if wire.IsFrame(body) {
			kind, payload, _, err := wire.DecodeFrame(body)
			if err != nil {
				return nil, false
			}
			return wire.Raw{Kind: kind, Payload: payload}, true
		}
		f, err := wire.JSONToFrame(e.kind, body)
		if err != nil {
			return nil, false
		}
		kind, payload, _, _ := wire.DecodeFrame(f)
		return wire.Raw{Kind: kind, Payload: payload}, true
	}
	if wire.IsFrame(body) {
		j, err := wire.FrameToJSON(body, "")
		if err != nil {
			return nil, false
		}
		return json.RawMessage(j), true
	}
	return json.RawMessage(body), true
}

func (e *batchEmitter) emit(line wire.BatchLine) {
	var out []byte
	var err error
	if e.binary {
		out, err = wire.AppendVerdict(nil, &line)
	} else {
		out, err = json.Marshal(line)
		out = append(out, '\n')
	}
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.w.Write(out)
	if e.flusher != nil {
		e.flusher.Flush()
	}
}

// batchHandler builds the coordinator batch endpoint for one heavy
// class: path is the single-item backend endpoint each item forwards
// to, kind the class's verdict frame kind, and keyOf validates an item
// and yields its cache key ("" marks the class uncacheable).
func (c *Coordinator) batchHandler(path string, kind wire.Kind, keyOf func([]byte) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.m.requests.Add(1)
		body, err := readBody(w, r)
		if err != nil {
			c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		// Items stay raw: each one IS a single-endpoint body, forwarded
		// verbatim to whichever shard its key routes to.
		var req struct {
			Items []json.RawMessage `json:"items"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if len(req.Items) == 0 {
			c.writeError(w, http.StatusBadRequest, "batch needs at least one item")
			return
		}
		if len(req.Items) > clusterBatchMax {
			c.writeError(w, http.StatusBadRequest, "batch of %d items exceeds cap %d", len(req.Items), clusterBatchMax)
			return
		}
		c.m.batches.Add(1)
		c.m.batchItems.Add(int64(len(req.Items)))

		e := &batchEmitter{w: w, binary: acceptsWireStream(r), kind: kind}
		if e.binary {
			w.Header().Set("Content-Type", wire.MediaTypeVerdictStream)
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.WriteHeader(http.StatusOK)
		e.flusher, _ = w.(http.Flusher)

		// First pass: key every item; serve cache/warm tiers inline,
		// queue the rest for the shard fan-out.
		type missItem struct {
			index int
			key   string
			body  json.RawMessage
		}
		var misses []missItem
		for i, item := range req.Items {
			key, err := keyOf(item)
			if err != nil {
				e.emit(wire.BatchLine{Index: i, Status: http.StatusBadRequest, Error: err.Error()})
				continue
			}
			if key == "" {
				// Uncacheable class (chaos): straight to the fan-out,
				// routed by body hash.
				misses = append(misses, missItem{index: i, key: "", body: item})
				continue
			}
			if v, ok := c.cache.Get(key); ok {
				c.m.cacheHits.Add(1)
				c.emitStored(e, i, v.([]byte))
				continue
			}
			c.warmMu.RLock()
			raw, ok := c.warmMap[key]
			c.warmMu.RUnlock()
			if ok {
				c.m.cacheHits.Add(1)
				c.m.warmHits.Add(1)
				c.cache.Put(key, []byte(raw))
				c.emitStored(e, i, raw)
				continue
			}
			c.m.cacheMisses.Add(1)
			misses = append(misses, missItem{index: i, key: key, body: item})
		}
		if len(misses) == 0 {
			return
		}

		// Second pass: each miss routes by its own key and goes through
		// hedgedDo independently — one slow or broken shard only delays
		// the items that hash to it. The epoch view is captured once, so
		// a membership swap mid-batch cannot split one batch across
		// rings.
		view := c.currentView()
		sem := make(chan struct{}, batchFanout)
		var wg sync.WaitGroup
		for _, ms := range misses {
			wg.Add(1)
			sem <- struct{}{}
			go func(ms missItem) {
				defer wg.Done()
				defer func() { <-sem }()
				routeKey := ms.key
				if routeKey == "" {
					routeKey = "chaos|" + string(ms.body)
				}
				res, err := c.hedgedDo(r.Context(), path, wire.AcceptVerdict, ms.body, view, view.ring.Replicas(routeKey, c.cfg.Replicas))
				if err != nil {
					e.emit(batchErrLine(ms.index, err))
					return
				}
				if res.status >= 400 {
					e.emit(wire.BatchLine{Index: ms.index, Status: res.status, Error: string(res.body)})
					return
				}
				if ms.key != "" {
					c.cache.Put(ms.key, res.body)
					c.persistWarm(ms.key, res.body)
				}
				v, ok := e.verdictFor(res.body)
				if !ok {
					e.emit(wire.BatchLine{Index: ms.index, Status: http.StatusBadGateway,
						Error: "shard returned an undecodable verdict"})
					return
				}
				e.emit(wire.BatchLine{Index: ms.index, Status: http.StatusOK, Verdict: v})
			}(ms)
		}
		wg.Wait()
	}
}

// emitStored streams a coordinator cache/warm hit. Cached marks the
// coordinator's tier — the embedded verdict is the shard's original
// reply, so its own cached flag reflects the backend's cache.
func (c *Coordinator) emitStored(e *batchEmitter, index int, body []byte) {
	v, ok := e.verdictFor(body)
	if !ok {
		e.emit(wire.BatchLine{Index: index, Status: http.StatusBadGateway,
			Error: "cached verdict is undecodable"})
		return
	}
	e.emit(wire.BatchLine{Index: index, Status: http.StatusOK, Cached: true, Verdict: v})
}

// batchErrLine maps a hedged-request failure onto the per-item status
// writeHedgeError would have used for a whole request.
func batchErrLine(index int, err error) wire.BatchLine {
	var broken errAllShardsBroken
	switch {
	case errors.As(err, &broken):
		return wire.BatchLine{Index: index, Status: http.StatusServiceUnavailable, Error: broken.Error()}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return wire.BatchLine{Index: index, Status: http.StatusGatewayTimeout, Error: "cluster request deadline exceeded"}
	default:
		return wire.BatchLine{Index: index, Status: http.StatusBadGateway, Error: err.Error()}
	}
}
