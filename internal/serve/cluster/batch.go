package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
)

// POST /v1/solve/batch on the coordinator: items are keyed and routed
// INDIVIDUALLY — each miss fans out to its own shard's replica set
// through the normal hedged path, so per-shard breakers, hedging, and
// failover all operate per item, not per batch. Cache and warm hits
// stream immediately; misses stream as each shard answers. Lines carry
// the originating item index, so arrival order is completion order.

// batchFanout bounds how many misses of one batch are in flight against
// the shards at once.
const batchFanout = 8

// clusterBatchMax caps the item count of one coordinator batch. It is
// intentionally the same default as a single node's MaxBatchItems: the
// coordinator splits the batch per item anyway, so a bigger cap would
// only defer the backends' own limits.
const clusterBatchMax = 64

// batchLine mirrors the single node's per-item stream record. Cached
// marks items served from the coordinator's LRU/warm tiers — the
// embedded verdict is the shard's original reply, so its own cached
// flag reflects the backend's cache, not the coordinator's.
type batchLine struct {
	Index   int             `json:"index"`
	Status  int             `json:"status"`
	Cached  bool            `json:"cached,omitempty"`
	Verdict json.RawMessage `json:"verdict,omitempty"`
	Error   string          `json:"error,omitempty"`
}

func (c *Coordinator) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	c.m.requests.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Items stay raw: each one IS a single /v1/solvable body, forwarded
	// verbatim to whichever shard its key routes to.
	var req struct {
		Items []json.RawMessage `json:"items"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Items) == 0 {
		c.writeError(w, http.StatusBadRequest, "batch needs at least one item")
		return
	}
	if len(req.Items) > clusterBatchMax {
		c.writeError(w, http.StatusBadRequest, "batch of %d items exceeds cap %d", len(req.Items), clusterBatchMax)
		return
	}
	c.m.batches.Add(1)
	c.m.batchItems.Add(int64(len(req.Items)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex // serializes line writes from the fan-out workers
	emit := func(line batchLine) {
		raw, err := json.Marshal(line)
		if err != nil {
			return
		}
		wmu.Lock()
		defer wmu.Unlock()
		w.Write(raw)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}

	// First pass: key every item; serve cache/warm tiers inline, queue
	// the rest for the shard fan-out.
	type missItem struct {
		index int
		key   string
		body  json.RawMessage
	}
	var misses []missItem
	for i, item := range req.Items {
		key, err := c.solvableKey(item)
		if err != nil {
			emit(batchLine{Index: i, Status: http.StatusBadRequest, Error: err.Error()})
			continue
		}
		if v, ok := c.cache.Get(key); ok {
			c.m.cacheHits.Add(1)
			emit(batchLine{Index: i, Status: http.StatusOK, Cached: true, Verdict: json.RawMessage(v.([]byte))})
			continue
		}
		c.warmMu.RLock()
		raw, ok := c.warmMap[key]
		c.warmMu.RUnlock()
		if ok {
			c.m.cacheHits.Add(1)
			c.m.warmHits.Add(1)
			c.cache.Put(key, []byte(raw))
			emit(batchLine{Index: i, Status: http.StatusOK, Cached: true, Verdict: raw})
			continue
		}
		c.m.cacheMisses.Add(1)
		misses = append(misses, missItem{index: i, key: key, body: item})
	}
	if len(misses) == 0 {
		return
	}

	// Second pass: each miss routes by its own key and goes through
	// hedgedDo independently — one slow or broken shard only delays the
	// items that hash to it. The epoch view is captured once, so a
	// membership swap mid-batch cannot split one batch across rings.
	view := c.currentView()
	sem := make(chan struct{}, batchFanout)
	var wg sync.WaitGroup
	for _, ms := range misses {
		wg.Add(1)
		sem <- struct{}{}
		go func(ms missItem) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := c.hedgedDo(r.Context(), "/v1/solvable", ms.body, view, view.ring.Replicas(ms.key, c.cfg.Replicas))
			if err != nil {
				emit(batchErrLine(ms.index, err))
				return
			}
			if res.status >= 400 {
				emit(batchLine{Index: ms.index, Status: res.status, Error: string(res.body)})
				return
			}
			c.cache.Put(ms.key, res.body)
			c.persistWarm(ms.key, res.body)
			emit(batchLine{Index: ms.index, Status: http.StatusOK, Verdict: json.RawMessage(res.body)})
		}(ms)
	}
	wg.Wait()
}

// batchErrLine maps a hedged-request failure onto the per-item status
// writeHedgeError would have used for a whole request.
func batchErrLine(index int, err error) batchLine {
	var broken errAllShardsBroken
	switch {
	case errors.As(err, &broken):
		return batchLine{Index: index, Status: http.StatusServiceUnavailable, Error: broken.Error()}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return batchLine{Index: index, Status: http.StatusGatewayTimeout, Error: "cluster request deadline exceeded"}
	default:
		return batchLine{Index: index, Status: http.StatusBadGateway, Error: err.Error()}
	}
}
