package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Member lifecycle states. Routing eligibility is the state's one hard
// consequence: active and suspect members are on the ring, ejected
// members are off it (but still probed, so they can come back).
//
//	active ──(probe fails)──▶ suspect ──(K consecutive fails)──▶ ejected
//	  ▲                         │                                  │
//	  └──────(probe ok)─────────┘        (M consecutive oks)       │
//	  └────────────────────◀───────────────────────────────────────┘
//
// Admin add/remove are orthogonal: POST /v1/cluster/members introduces
// a new active member, DELETE forgets one entirely (any state).
type memberState int32

const (
	memberActive memberState = iota
	memberSuspect
	memberEjected
)

func (s memberState) String() string {
	switch s {
	case memberSuspect:
		return "suspect"
	case memberEjected:
		return "ejected"
	default:
		return "active"
	}
}

// member is one known backend: its shard (breaker + counters, shared by
// every epoch that routes to it) plus the probe lifecycle bookkeeping.
// All fields except sh are guarded by Coordinator.memMu.
type member struct {
	sh         *shard
	state      memberState
	probeFails int // consecutive probe failures
	probeOKs   int // consecutive probe successes while ejected
	ejections  int64
	joinedAt   time.Time
}

// epochView is one immutable membership epoch: the ring plus the
// index-aligned shard slice it routes over. Swapped atomically
// (Coordinator.view) on every membership change; in-flight requests
// that captured an older view finish on it — shard structs are shared
// across epochs, so their breakers and counters stay coherent.
type epochView struct {
	seq    int64
	ring   *Ring
	bases  []string
	shards []*shard
}

// epochRecord is one line of the bounded epoch history surfaced in
// /v1/stats: why the ring changed and what it changed to.
type epochRecord struct {
	Seq     int64     `json:"epoch"`
	Reason  string    `json:"reason"`
	Members int       `json:"routableMembers"`
	At      time.Time `json:"at"`
}

// maxEpochHistory bounds the retained epoch records.
const maxEpochHistory = 16

// currentView returns the routing view for this instant. Never nil
// after New.
func (c *Coordinator) currentView() *epochView {
	return c.view.Load()
}

// rebuild recomputes the epoch view from the member table and swaps it
// in. Caller holds c.memMu. reason is recorded in the epoch history.
func (c *Coordinator) rebuild(reason string) *epochView {
	var bases []string
	var shards []*shard
	for _, base := range c.memOrder {
		m := c.members[base]
		if m.state == memberEjected {
			continue
		}
		bases = append(bases, base)
		shards = append(shards, m.sh)
	}
	old := c.view.Load()
	seq := int64(1)
	if old != nil {
		seq = old.seq + 1
	}
	v := &epochView{
		seq:    seq,
		ring:   NewRing(bases, c.cfg.VNodes),
		bases:  bases,
		shards: shards,
	}
	c.view.Store(v)
	c.m.epochSwaps.Add(1)
	c.epochHist = append(c.epochHist, epochRecord{
		Seq: seq, Reason: reason, Members: len(bases), At: c.cfg.Clock(),
	})
	if len(c.epochHist) > maxEpochHistory {
		c.epochHist = c.epochHist[len(c.epochHist)-maxEpochHistory:]
	}
	c.cfg.Logf("coordinator: epoch %d (%s): %d routable members", seq, reason, len(bases))
	return v
}

// normalizeBase canonicalizes a backend base URL for use as the member
// identity.
func normalizeBase(base string) (string, error) {
	base = strings.TrimSuffix(strings.TrimSpace(base), "/")
	if base == "" {
		return "", fmt.Errorf("cluster: empty backend URL")
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return "", fmt.Errorf("cluster: backend %q is not an http(s) URL", base)
	}
	return base, nil
}

// AddBackend introduces a new backend into the live membership: it
// joins as an active member of a fresh epoch and receives a warm
// handoff for the key range the new ring assigns to it. Errors if the
// backend is already a member.
func (c *Coordinator) AddBackend(base string) error {
	base, err := normalizeBase(base)
	if err != nil {
		return err
	}
	c.memMu.Lock()
	if _, dup := c.members[base]; dup {
		c.memMu.Unlock()
		return fmt.Errorf("cluster: backend %s is already a member", base)
	}
	c.members[base] = &member{sh: c.newShard(base), state: memberActive, joinedAt: c.cfg.Clock()}
	c.memOrder = append(c.memOrder, base)
	view := c.rebuild("join " + base)
	c.m.joins.Add(1)
	c.memMu.Unlock()
	c.startHandoff(base, view)
	return nil
}

// RemoveBackend forgets a backend entirely: off the ring, no longer
// probed, its breaker and counters dropped. In-flight requests on older
// epochs finish against it. Refuses to remove the last member.
func (c *Coordinator) RemoveBackend(base string) error {
	base, err := normalizeBase(base)
	if err != nil {
		return err
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if _, ok := c.members[base]; !ok {
		return fmt.Errorf("cluster: backend %s is not a member", base)
	}
	if len(c.members) == 1 {
		return fmt.Errorf("cluster: refusing to remove the last member %s", base)
	}
	delete(c.members, base)
	for i, b := range c.memOrder {
		if b == base {
			c.memOrder = append(c.memOrder[:i], c.memOrder[i+1:]...)
			break
		}
	}
	c.rebuild("leave " + base)
	c.m.leaves.Add(1)
	return nil
}

// MemberInfo is one member's admin/stats snapshot.
type MemberInfo struct {
	Backend      string    `json:"backend"`
	State        string    `json:"state"`
	Routable     bool      `json:"routable"`
	Breaker      string    `json:"breaker"`
	ProbeFails   int       `json:"probeConsecutiveFails,omitempty"`
	Ejections    int64     `json:"ejections,omitempty"`
	JoinedAt     time.Time `json:"joinedAt"`
	Requests     int64     `json:"requests"`
	Failures     int64     `json:"failures"`
	Hedges       int64     `json:"hedges"`
	HedgeWins    int64     `json:"hedgeWins"`
	HandoffKeys  int64     `json:"handoffKeys,omitempty"`
	ExportedKeys int64     `json:"exportedKeys,omitempty"`
}

// membersResponse is the GET /v1/cluster/members body.
type membersResponse struct {
	Epoch    int64        `json:"epoch"`
	Members  []MemberInfo `json:"members"`
	Routable int          `json:"routable"`
}

// Members snapshots the full member table (any state) in join order.
func (c *Coordinator) Members() membersResponse {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	view := c.view.Load()
	resp := membersResponse{Epoch: view.seq, Routable: len(view.shards)}
	for _, base := range c.memOrder {
		m := c.members[base]
		state, _ := m.sh.brk.Snapshot()
		resp.Members = append(resp.Members, MemberInfo{
			Backend:      base,
			State:        m.state.String(),
			Routable:     m.state != memberEjected,
			Breaker:      state,
			ProbeFails:   m.probeFails,
			Ejections:    m.ejections,
			JoinedAt:     m.joinedAt,
			Requests:     m.sh.requests.Load(),
			Failures:     m.sh.failures.Load(),
			Hedges:       m.sh.hedges.Load(),
			HedgeWins:    m.sh.hedgeWins.Load(),
			HandoffKeys:  m.sh.handoffKeys.Load(),
			ExportedKeys: m.sh.exportedKeys.Load(),
		})
	}
	return resp
}

// Admin surface: live membership as three verbs on one resource.
//
//	GET    /v1/cluster/members                  → the table + epoch
//	POST   /v1/cluster/members {"backend": u}   → join u (new epoch)
//	DELETE /v1/cluster/members?backend=u        → leave u (new epoch)
func (c *Coordinator) handleMembersGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Members())
}

func (c *Coordinator) handleMembersPost(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var req struct {
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if err := c.AddBackend(req.Backend); err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already a member") {
			code = http.StatusConflict
		}
		c.writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, c.Members())
}

func (c *Coordinator) handleMembersDelete(w http.ResponseWriter, r *http.Request) {
	base := r.URL.Query().Get("backend")
	if base == "" {
		c.writeError(w, http.StatusBadRequest, "cluster: ?backend= query parameter required")
		return
	}
	if err := c.RemoveBackend(base); err != nil {
		code := http.StatusBadRequest
		switch {
		case strings.Contains(err.Error(), "not a member"):
			code = http.StatusNotFound
		case strings.Contains(err.Error(), "last member"):
			code = http.StatusConflict
		}
		c.writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, c.Members())
}
