package cluster

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/serve"
)

// batchLine is the JSON decode shape of one coordinator stream line
// (the emit side now writes wire.BatchLine; the JSON layout is
// unchanged).
type batchLine struct {
	Index   int             `json:"index"`
	Status  int             `json:"status"`
	Cached  bool            `json:"cached,omitempty"`
	Verdict json.RawMessage `json:"verdict,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// postClusterBatch fires a batch at the coordinator and returns the
// decoded lines sorted by item index (the stream is completion-ordered).
func postClusterBatch(t *testing.T, base, body string) (*http.Response, []batchLine) {
	t.Helper()
	resp, err := http.Post(base+"/v1/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var lines []batchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 8<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ln batchLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad cluster batch line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].Index < lines[j].Index })
	return resp, lines
}

// TestClusterBatchDifferential routes a mixed batch (fresh items, a
// repeat, an invalid item) through a 3-node cluster and checks every
// per-item verdict against the same queries issued one at a time to a
// lone capserved node.
func TestClusterBatchDifferential(t *testing.T) {
	_, ts, _ := testCluster(t, 3, nil)
	ref := httptest.NewServer(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
	defer ref.Close()

	items := []string{
		`{"scheme":"S1","horizon":3}`,
		`{"scheme":"S2","horizon":4}`,
		`{"scheme":"definitely-not-a-scheme","horizon":2}`,
		`{"scheme":"S1","horizon":3}`,
		`{"scheme":"S2","minus":["(b)"],"horizon":5}`,
	}
	// Prime one item through the coordinator's single path so the batch
	// exercises the cache-hit leg too.
	postJSON(t, ts.URL+"/v1/solvable", items[0])

	resp, lines := postClusterBatch(t, ts.URL, `{"items":[`+strings.Join(items, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster batch = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if len(lines) != len(items) {
		t.Fatalf("got %d lines, want %d: %+v", len(lines), len(items), lines)
	}
	for i, ln := range lines {
		if ln.Index != i {
			t.Fatalf("after sorting, line %d has index %d — duplicate or missing index", i, ln.Index)
		}
	}
	if lines[2].Status != http.StatusBadRequest || lines[2].Error == "" {
		t.Fatalf("invalid item line = %+v, want per-item 400", lines[2])
	}
	for _, i := range []int{0, 1, 3, 4} {
		if lines[i].Status != http.StatusOK || lines[i].Verdict == nil {
			t.Fatalf("item %d = %+v, want 200 with verdict", i, lines[i])
		}
		rresp, rraw := postJSON(t, ref.URL+"/v1/solvable", items[i])
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("reference %d = %d: %s", i, rresp.StatusCode, rraw)
		}
		var cv, rv verdict
		if err := json.Unmarshal(lines[i].Verdict, &cv); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rraw, &rv); err != nil {
			t.Fatal(err)
		}
		if cv != rv {
			t.Fatalf("item %d: cluster batch says %+v, single node says %+v", i, cv, rv)
		}
	}

	st := clusterStats(t, ts.URL)
	if st.BatchRequests != 1 || st.BatchItems != int64(len(items)) {
		t.Fatalf("stats batches=%d items=%d, want 1 and %d", st.BatchRequests, st.BatchItems, len(items))
	}
	// Item 0 was primed and item 3 repeats item 0's key: at least one
	// batch member must have been served from the coordinator cache.
	if st.CacheHits == 0 {
		t.Fatal("no coordinator cache hits; batch is not consulting the LRU")
	}
	if !lines[0].Cached {
		t.Fatalf("primed item 0 not marked cached: %+v", lines[0])
	}
	if lines[1].Cached {
		t.Fatalf("fresh item 1 marked cached: %+v", lines[1])
	}
}

// TestClusterBatchSurvivesKilledBackend sends a fresh batch with one
// backend dead: every item must still answer via per-item hedging and
// failover, proving one broken shard cannot sink sibling items.
func TestClusterBatchSurvivesKilledBackend(t *testing.T) {
	_, ts, nodes := testCluster(t, 3, nil)
	nodes[1].kill()

	items := []string{
		`{"scheme":"S1","horizon":5}`,
		`{"scheme":"S2","horizon":6}`,
		`{"scheme":"S1","horizon":4}`,
		`{"scheme":"S2","minus":["(b)"],"horizon":3}`,
	}
	resp, lines := postClusterBatch(t, ts.URL, `{"items":[`+strings.Join(items, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with dead backend = %d, want 200", resp.StatusCode)
	}
	if len(lines) != len(items) {
		t.Fatalf("got %d lines, want %d", len(lines), len(items))
	}
	for i, ln := range lines {
		if ln.Status != http.StatusOK || ln.Verdict == nil {
			t.Fatalf("item %d with dead backend = %+v, want 200", i, ln)
		}
	}
}

// TestClusterBatchShapeGuards pins the whole-request rejections.
func TestClusterBatchShapeGuards(t *testing.T) {
	_, ts, _ := testCluster(t, 2, nil)
	resp, _ := postClusterBatch(t, ts.URL, `{"items":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= clusterBatchMax; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"scheme":"S1","horizon":1}`)
	}
	sb.WriteString(`]}`)
	resp, _ = postClusterBatch(t, ts.URL, sb.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", resp.StatusCode)
	}
}
