package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
)

// --- ring rebalance quality (consistent-hash minimal disruption) ------

// ownersByBase maps a key sample to the OWNING member's base URL (URLs,
// not indices — indices shift when the member slice changes).
func ownersByBase(members []string, keys []string) map[string]string {
	r := NewRing(members, 64)
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = members[r.Owner(k)]
	}
	return out
}

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("solvable|%032x|h=9", uint64(i)*2654435761)
	}
	return keys
}

// TestRingRebalanceOnLeave: removing one member of N must reassign
// exactly that member's keys (≈1/N of them) and leave every other
// key's owner untouched.
func TestRingRebalanceOnLeave(t *testing.T) {
	const n = 5
	members := ringMembers(n)
	keys := sampleKeys(20000)
	before := ownersByBase(members, keys)

	gone := members[2]
	after := ownersByBase(append(append([]string{}, members[:2]...), members[3:]...), keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if before[k] != gone {
				t.Fatalf("key %q moved from surviving member %s to %s", k, before[k], after[k])
			}
		} else if before[k] == gone {
			t.Fatalf("key %q still owned by removed member %s", k, gone)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.5/n || frac > 2.0/n {
		t.Fatalf("leave moved %.1f%% of keys, want ≈ 1/N = %.1f%%", 100*frac, 100.0/n)
	}
}

// TestRingRebalanceOnJoin: adding an (N+1)-th member must move ≈1/(N+1)
// of the keys, all of them TO the newcomer.
func TestRingRebalanceOnJoin(t *testing.T) {
	const n = 5
	members := ringMembers(n + 1)
	keys := sampleKeys(20000)
	before := ownersByBase(members[:n], keys)
	after := ownersByBase(members, keys)
	newcomer := members[n]

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != newcomer {
				t.Fatalf("key %q moved to %s, not the joining member", k, after[k])
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.5/(n+1) || frac > 2.0/(n+1) {
		t.Fatalf("join moved %.1f%% of keys, want ≈ 1/(N+1) = %.1f%%", 100*frac, 100.0/(n+1))
	}
}

// TestRingVnodeSkewBounds: ownership stays within skew bounds across
// several membership sizes — the property that makes "≈1/N" meaningful.
func TestRingVnodeSkewBounds(t *testing.T) {
	keys := sampleKeys(30000)
	for _, n := range []int{2, 4, 7} {
		members := ringMembers(n)
		counts := make(map[string]int, n)
		owners := ownersByBase(members, keys)
		for _, k := range keys {
			counts[owners[k]]++
		}
		for _, m := range members {
			frac := float64(counts[m]) / float64(len(keys))
			if frac < 0.45/float64(n) || frac > 1.8/float64(n) {
				t.Fatalf("n=%d: member %s owns %.1f%% of keys (want within [%.1f%%, %.1f%%])",
					n, m, 100*frac, 45.0/float64(n), 180.0/float64(n))
			}
		}
	}
}

// TestRingSuccessors: successors are distinct, exclude the member, and
// clamp to the other-member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(ringMembers(4), 64)
	for m := 0; m < 4; m++ {
		succ := r.Successors(m, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%d, 2) = %v, want 2 members", m, succ)
		}
		if succ[0] == succ[1] || succ[0] == m || succ[1] == m {
			t.Fatalf("Successors(%d, 2) = %v: not distinct-from-self", m, succ)
		}
	}
	if got := r.Successors(0, 99); len(got) != 3 {
		t.Fatalf("Successors(0, 99) = %v, want clamped to 3", got)
	}
	if got := NewRing(ringMembers(1), 8).Successors(0, 2); got != nil {
		t.Fatalf("singleton ring has successors: %v", got)
	}
}

// --- admin surface ----------------------------------------------------

func getMembers(t *testing.T, base string) membersResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster/members")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr membersResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	return mr
}

// TestMembershipAdminAPI drives the full join/leave surface: the table
// reads back, joins swap epochs and serve traffic, duplicates and
// unknowns are rejected with the right statuses, and the last member is
// protected.
func TestMembershipAdminAPI(t *testing.T) {
	_, ts, _ := testCluster(t, 2, nil)

	mr := getMembers(t, ts.URL)
	if len(mr.Members) != 2 || mr.Routable != 2 || mr.Epoch != 1 {
		t.Fatalf("boot members = %+v, want 2 active at epoch 1", mr)
	}

	// Join a third, freshly started backend.
	nd := &node{}
	nd.live = serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler()
	nd.ts = httptest.NewServer(nd)
	defer nd.ts.Close()
	resp, raw := postJSON(t, ts.URL+"/v1/cluster/members", fmt.Sprintf(`{"backend":%q}`, nd.ts.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d: %s", resp.StatusCode, raw)
	}
	mr = getMembers(t, ts.URL)
	if len(mr.Members) != 3 || mr.Routable != 3 || mr.Epoch != 2 {
		t.Fatalf("post-join members = %+v, want 3 active at epoch 2", mr)
	}

	// Traffic still answers across the new epoch.
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":4}`, strings.Repeat("w", i+1))
		r2, raw2 := postJSON(t, ts.URL+"/v1/solvable", body)
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("query %d after join = %d: %s", i, r2.StatusCode, raw2)
		}
	}

	// Duplicate join → 409; garbage URL → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/cluster/members", fmt.Sprintf(`{"backend":%q}`, nd.ts.URL))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate join = %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/cluster/members", `{"backend":"not-a-url"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage join = %d, want 400", resp.StatusCode)
	}

	// Leave: unknown → 404, known → epoch bump, last member → 409.
	del := func(backend string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cluster/members?backend="+backend, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if code := del("http://127.0.0.1:1"); code != http.StatusNotFound {
		t.Fatalf("unknown leave = %d, want 404", code)
	}
	if code := del(nd.ts.URL); code != http.StatusOK {
		t.Fatalf("leave = %d, want 200", code)
	}
	mr = getMembers(t, ts.URL)
	if len(mr.Members) != 2 || mr.Epoch != 3 {
		t.Fatalf("post-leave members = %+v, want 2 at epoch 3", mr)
	}
	if code := del(mr.Members[0].Backend); code != http.StatusOK {
		t.Fatalf("second leave = %d, want 200", code)
	}
	if code := del(mr.Members[1].Backend); code != http.StatusConflict {
		t.Fatalf("last-member leave = %d, want 409", code)
	}
}

// --- prober lifecycle -------------------------------------------------

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProberEjectsAndReadmits is the self-healing acceptance path: a
// killed backend is ejected from routing within the probe budget (its
// request counter freezes — no more hedges spent on it), and after a
// restart it is readmitted automatically with its breaker closed.
func TestProberEjectsAndReadmits(t *testing.T) {
	_, ts, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = 25 * time.Millisecond
		cfg.ProbeTimeout = 100 * time.Millisecond
		cfg.ProbeFailThreshold = 2
		cfg.ProbeRecoverThreshold = 2
	})

	memberState := func(base string) (string, bool) {
		st := clusterStats(t, ts.URL)
		for _, sh := range st.Shards {
			if sh.Backend == base {
				return sh.State, true
			}
		}
		return "", false
	}

	nodes[1].kill()
	waitFor(t, 5*time.Second, "ejection of the killed backend", func() bool {
		s, ok := memberState(nodes[1].ts.URL)
		return ok && s == "ejected"
	})
	st := clusterStats(t, ts.URL)
	if st.Backends != 2 || st.Membership.Routable != 2 {
		t.Fatalf("routable = %d after ejection, want 2", st.Membership.Routable)
	}
	if st.Membership.Ejections < 1 {
		t.Fatalf("ejections = %d, want >= 1", st.Membership.Ejections)
	}

	// The ejected shard is out of routing: fresh keyed traffic must not
	// touch it (its request counter freezes — hedge rate back to
	// baseline), and every request still answers.
	var deadReqs int64 = -1
	for _, sh := range st.Shards {
		if sh.Backend == nodes[1].ts.URL {
			deadReqs = sh.Requests
		}
	}
	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":4}`, strings.Repeat("b", i+1))
		resp, raw := postJSON(t, ts.URL+"/v1/solvable", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d with ejected backend = %d: %s", i, resp.StatusCode, raw)
		}
	}
	st = clusterStats(t, ts.URL)
	for _, sh := range st.Shards {
		if sh.Backend == nodes[1].ts.URL && sh.Requests != deadReqs {
			t.Fatalf("ejected shard still took traffic: %d → %d requests", deadReqs, sh.Requests)
		}
	}

	// Restart → automatic readmission, breaker closed, back in routing.
	nodes[1].restart(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
	waitFor(t, 5*time.Second, "readmission of the restarted backend", func() bool {
		s, ok := memberState(nodes[1].ts.URL)
		return ok && s == "active"
	})
	st = clusterStats(t, ts.URL)
	if st.Membership.Routable != 3 || st.Membership.Readmissions < 1 {
		t.Fatalf("after restart: routable=%d readmissions=%d, want 3 and >=1",
			st.Membership.Routable, st.Membership.Readmissions)
	}
	for _, sh := range st.Shards {
		if sh.Backend == nodes[1].ts.URL && sh.Breaker != "closed" {
			t.Fatalf("readmitted shard breaker = %q, want closed", sh.Breaker)
		}
	}
}

// --- warm handoff -----------------------------------------------------

// TestWarmHandoffOnJoin: verdicts computed through the coordinator are
// replayed to a joining backend for the key range it now owns — the
// newcomer's warm tier is non-empty before it has served a single
// request.
func TestWarmHandoffOnJoin(t *testing.T) {
	_, ts, _ := testCluster(t, 2, nil)

	// Populate the coordinator's warm map with a spread of verdicts —
	// enough keys that the joiner almost surely owns at least one.
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":3}`,
			strings.Repeat("w", i%5+1)+strings.Repeat("b", i/5+1))
		resp, raw := postJSON(t, ts.URL+"/v1/solvable", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed query %d = %d: %s", i, resp.StatusCode, raw)
		}
	}

	// Join a cold backend.
	joiner := serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf})
	jts := httptest.NewServer(joiner.Handler())
	defer jts.Close()
	resp, raw := postJSON(t, ts.URL+"/v1/cluster/members", fmt.Sprintf(`{"backend":%q}`, jts.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d: %s", resp.StatusCode, raw)
	}

	// The handoff is async; wait for the coordinator to report it and
	// the joiner to hold imported verdicts.
	waitFor(t, 5*time.Second, "handoff to the joining backend", func() bool {
		st := clusterStats(t, ts.URL)
		if st.Membership.Handoffs < 1 {
			return false
		}
		r, err := http.Get(jts.URL + "/varz")
		if err != nil {
			return false
		}
		defer r.Body.Close()
		var vz serve.Varz
		if err := json.NewDecoder(r.Body).Decode(&vz); err != nil {
			return false
		}
		return vz.WarmImported >= 1
	})

	st := clusterStats(t, ts.URL)
	if st.Membership.HandoffKeys < 1 {
		t.Fatalf("handoffKeys = %d, want >= 1", st.Membership.HandoffKeys)
	}
}

// --- membership churn under load (the chaos campaign, compressed) -----

// TestClusterChurnDifferential runs a seeded chaos.ChurnSchedule —
// kill/restart (prober path) and leave/join (admin path) — against a
// 3-node cluster while fresh keyed queries flow, and checks every
// verdict against a single reference node. The at-most-one-disrupted
// schedule plus replicas=2 means availability must stay ≈100%.
func TestClusterChurnDifferential(t *testing.T) {
	co, ts, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.ProbeInterval = 25 * time.Millisecond
		cfg.ProbeTimeout = 100 * time.Millisecond
		cfg.ProbeFailThreshold = 2
		cfg.ProbeRecoverThreshold = 2
	})
	ref := httptest.NewServer(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
	defer ref.Close()

	const duration = 2400 * time.Millisecond
	events := chaos.ChurnSchedule(42, chaos.ChurnPlan{
		Backends: 3,
		Duration: duration,
		Pairs:    2,
	})
	if len(events) != 4 {
		t.Fatalf("schedule has %d events, want 4", len(events))
	}

	var applied atomic.Int64
	start := time.Now()
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for _, ev := range events {
			time.Sleep(time.Until(start.Add(ev.At)))
			nd := nodes[ev.Target]
			switch ev.Kind {
			case chaos.ChurnKill:
				nd.kill()
			case chaos.ChurnRestart:
				nd.restart(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
			case chaos.ChurnLeave:
				req, _ := http.NewRequest(http.MethodDelete,
					ts.URL+"/v1/cluster/members?backend="+nd.ts.URL, nil)
				if r, err := http.DefaultClient.Do(req); err == nil {
					r.Body.Close()
				}
			case chaos.ChurnJoin:
				r, err := http.Post(ts.URL+"/v1/cluster/members", "application/json",
					strings.NewReader(fmt.Sprintf(`{"backend":%q}`, nd.ts.URL)))
				if err == nil {
					r.Body.Close()
				}
			}
			applied.Add(1)
		}
	}()

	total, ok := 0, 0
	for i := 0; time.Since(start) < duration; i++ {
		// Fresh cache key every iteration: churn must be survived by
		// routing, not by the coordinator cache.
		word := make([]byte, 5)
		for bit := range word {
			if i&(1<<bit) != 0 {
				word[bit] = 'w'
			} else {
				word[bit] = 'b'
			}
		}
		body := fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":3}`, word)
		total++
		cresp, craw := postJSON(t, ts.URL+"/v1/solvable", body)
		if cresp.StatusCode != http.StatusOK {
			continue
		}
		ok++
		rresp, rraw := postJSON(t, ref.URL+"/v1/solvable", body)
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("reference failed: %d", rresp.StatusCode)
		}
		var cv, rv verdict
		json.Unmarshal(craw, &cv)
		json.Unmarshal(rraw, &rv)
		if cv != rv {
			t.Fatalf("verdict drifted under churn: cluster %+v vs single %+v (query %s)", cv, rv, body)
		}
		time.Sleep(15 * time.Millisecond)
	}
	<-churnDone

	if applied.Load() != int64(len(events)) {
		t.Fatalf("only %d/%d churn events applied", applied.Load(), len(events))
	}
	if total < 20 {
		t.Fatalf("only %d requests issued; churn window too short to mean anything", total)
	}
	avail := float64(ok) / float64(total)
	if avail < 0.99 {
		t.Fatalf("availability %.3f under churn (%d/%d), want >= 0.99", avail, ok, total)
	}

	// The coordinator converges back to full membership: every node is
	// restarted/rejoined by schedule construction.
	waitFor(t, 5*time.Second, "post-churn convergence to 3 routable members", func() bool {
		st := clusterStats(t, ts.URL)
		return st.Membership.Routable == 3
	})
	st := clusterStats(t, ts.URL)
	if st.Membership.EpochSwaps < 2 {
		t.Fatalf("epochSwaps = %d after churn, want >= 2", st.Membership.EpochSwaps)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := co.Shutdown(ctx); err != nil {
		t.Fatalf("post-churn shutdown: %v", err)
	}
}
