package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// Warm handoff: when a backend joins the ring (admin POST) or is
// readmitted after an ejection, it starts cold for the key range the
// new epoch assigns to it — every request it now owns would be an
// engine miss until its caches refill. The handoff turns that latency
// cliff into a bounded rebalance: the coordinator replays warm verdicts
// for the newcomer's key range, sourced from its own warm map (a
// superset of its LRU hot set) plus exports pulled from the newcomer's
// ring neighbors — the shards that, as hedge/failover targets, most
// likely answered those keys while the newcomer was away.
//
// The handoff is best-effort and bounded (HandoffMaxEntries keys,
// HandoffTimeout wall clock): verdicts are deterministic facts, so a
// truncated or failed handoff costs recomputation, never correctness.

// handoffNeighbors is how many ring successors a handoff pulls exports
// from. Matching Config.Replicas would be natural, but 2 keeps the
// fan-in bounded even on wide replica configs.
const handoffNeighbors = 2

// startHandoff launches the asynchronous warm handoff for base, which
// must be a routable member of view. Called outside memMu.
func (c *Coordinator) startHandoff(base string, view *epochView) {
	if c.cfg.HandoffMaxEntries < 0 || view == nil {
		c.m.handoffSkipped.Add(1)
		return
	}
	idx := -1
	for i, b := range view.bases {
		if b == base {
			idx = i
			break
		}
	}
	if idx < 0 || len(view.bases) < 2 {
		// Not routable in this view (raced with an eject), or there is no
		// peer to be warmed from.
		c.m.handoffSkipped.Add(1)
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HandoffTimeout)
		defer cancel()
		n, err := c.handoff(ctx, view, idx)
		if err != nil {
			c.m.handoffErrors.Add(1)
			c.cfg.Logf("coordinator: handoff to %s failed: %v", base, err)
			return
		}
		c.m.handoffs.Add(1)
		c.m.handoffKeys.Add(int64(n))
		c.cfg.Logf("coordinator: handoff to %s: %d warm verdicts", base, n)
	}()
}

// handoff collects warm verdicts owned by member idx in view and pushes
// them to that backend. Returns how many entries were sent.
func (c *Coordinator) handoff(ctx context.Context, view *epochView, idx int) (int, error) {
	target := view.shards[idx]
	limit := c.cfg.HandoffMaxEntries

	// Collect candidates: coordinator warm map first (cheap, local, and
	// a superset of the coordinator's hot set), then neighbor exports.
	collected := make(map[string]json.RawMessage)
	owns := func(key string) bool { return view.ring.Owner(key) == idx }

	c.warmMu.RLock()
	for k, v := range c.warmMap {
		if len(collected) >= limit {
			break
		}
		if owns(k) {
			collected[k] = v
		}
	}
	c.warmMu.RUnlock()

	for _, nb := range view.ring.Successors(idx, handoffNeighbors) {
		if len(collected) >= limit {
			break
		}
		entries, err := c.pullExport(ctx, view.shards[nb].base)
		if err != nil {
			// A dead neighbor must not sink the handoff; the local warm
			// map and other neighbors still contribute.
			c.cfg.Logf("coordinator: handoff export from %s: %v", view.shards[nb].base, err)
			continue
		}
		exported := 0
		for _, e := range entries {
			if len(collected) >= limit {
				break
			}
			if _, dup := collected[e.K]; dup || !owns(e.K) {
				continue
			}
			collected[e.K] = e.V
			exported++
		}
		view.shards[nb].exportedKeys.Add(int64(exported))
	}
	if len(collected) == 0 {
		return 0, nil
	}

	// Entries travel in the warm segment format: values go out exactly
	// as stored — wire frames or JSON bodies — with no transcoding and
	// no base64 overhead.
	payload := serve.AppendWarmSegmentHeader(nil)
	for k, v := range collected {
		payload = serve.AppendWarmSegmentRecord(payload, k, v)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target.base+"/v1/warm/import", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", serve.WarmSegmentMediaType)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	buf, err := client.ReadBounded(resp.Body, 1<<20)
	if err != nil {
		return 0, fmt.Errorf("reading import reply: %w", err)
	}
	defer client.ReleaseBuffer(buf)
	body := buf.Bytes()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("import returned HTTP %d: %s", resp.StatusCode, truncate(body, 200))
	}
	var rep serve.WarmImportResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		return 0, fmt.Errorf("bad import reply: %w", err)
	}
	target.handoffKeys.Add(int64(rep.Imported))
	return len(collected), nil
}

// pullExport fetches a neighbor's warm export, bounded by the handoff
// entry budget. It negotiates the segment encoding and falls back to
// the JSON shape when the neighbor answers with it.
func (c *Coordinator) pullExport(ctx context.Context, base string) ([]serve.WarmEntry, error) {
	url := fmt.Sprintf("%s/v1/warm/export?max=%d", base, c.cfg.HandoffMaxEntries)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", serve.WarmSegmentMediaType)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := client.ReadBounded(resp.Body, 32<<20)
	if err != nil {
		var trunc *client.TruncatedError
		if errors.As(err, &trunc) {
			return nil, fmt.Errorf("export reply exceeds %d bytes: %w", trunc.Limit, err)
		}
		return nil, err
	}
	defer client.ReleaseBuffer(buf)
	body := buf.Bytes()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("export returned HTTP %d: %s", resp.StatusCode, truncate(body, 200))
	}
	if strings.Contains(resp.Header.Get("Content-Type"), serve.WarmSegmentMediaType) {
		sr, err := serve.NewWarmSegmentReader(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("bad export segment: %w", err)
		}
		var entries []serve.WarmEntry
		for {
			k, v, err := sr.Next()
			if err == io.EOF {
				return entries, nil
			}
			if err != nil {
				return nil, fmt.Errorf("bad export segment: %w", err)
			}
			// Records outlive the pooled body buffer; clone them out.
			entries = append(entries, serve.WarmEntry{K: k, V: bytes.Clone(v)})
		}
	}
	var rep serve.WarmExportResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("bad export reply: %w", err)
	}
	return rep.Entries, nil
}
