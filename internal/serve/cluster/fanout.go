package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/chaos"
	"repro/internal/serve"
)

// chaosShardRequest mirrors capserved's /v1/chaos request so the
// coordinator can re-shard it: the scheme selector rides along
// verbatim, Executions and Seed are rewritten per shard.
type chaosShardRequest struct {
	serve.SchemeSelector
	Executions    int   `json:"executions"`
	Seed          int64 `json:"seed"`
	MaxPrefix     int   `json:"maxPrefix,omitempty"`
	MaxRounds     int   `json:"maxRounds,omitempty"`
	NoInvariant   bool  `json:"noInvariant,omitempty"`
	NoShrink      bool  `json:"noShrink,omitempty"`
	MaxViolations int   `json:"maxViolations,omitempty"`
}

// chaosShardReply decodes just what the merge needs, keeping the
// violation stanzas raw so nothing a backend reports is lost in
// transit.
type chaosShardReply struct {
	Scheme     string            `json:"scheme"`
	Algorithm  string            `json:"algorithm"`
	Seed       int64             `json:"seed"`
	Executions int               `json:"executions"`
	Rounds     int64             `json:"rounds"`
	OK         bool              `json:"ok"`
	Violations []json.RawMessage `json:"violations,omitempty"`
}

// ShardOutcome is the per-shard accounting in a fan-out reply.
type ShardOutcome struct {
	Backend    string `json:"backend"`
	Executions int    `json:"executions"`        // completed on this shard
	Planned    int    `json:"planned"`           // assigned to this shard
	Seed       int64  `json:"seed"`              // the shard's derived master seed
	OK         *bool  `json:"ok,omitempty"`      // campaign verdict; nil when the shard failed
	Skipped    bool   `json:"skipped,omitempty"` // breaker refused the shard up front
	Error      string `json:"error,omitempty"`   // transport / HTTP failure
	ElapsedMs  int64  `json:"elapsedMs,omitempty"`
}

// chaosClusterResponse is the merged fan-out/fan-in campaign report.
// Partial is the honest bit: a killed shard does not fail the campaign,
// it shrinks it, and ExecutionsPlanned vs Executions says by how much.
type chaosClusterResponse struct {
	Scheme            string            `json:"scheme"`
	Algorithm         string            `json:"algorithm,omitempty"`
	Seed              int64             `json:"seed"`
	Executions        int               `json:"executions"`
	ExecutionsPlanned int               `json:"executionsPlanned"`
	Rounds            int64             `json:"rounds"`
	OK                bool              `json:"ok"`
	Partial           bool              `json:"partial"`
	Violations        []json.RawMessage `json:"violations,omitempty"`
	Shards            []ShardOutcome    `json:"shards"`
	ElapsedMs         int64             `json:"elapsedMs"`
}

// handleChaos shards the seed space of a chaos campaign across every
// shard whose breaker admits it, runs the sub-campaigns concurrently,
// and merges the reports with partial-result accounting: a failed or
// skipped shard costs coverage, never the whole campaign — unless every
// shard fails, which is a 502.
func (c *Coordinator) handleChaos(w http.ResponseWriter, r *http.Request) {
	c.m.requests.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var req chaosShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if _, err := req.Resolve(); err != nil {
		c.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Executions <= 0 {
		req.Executions = 1000 // mirror the backend default so sharding math is exact
	}

	start := c.cfg.Clock()
	c.m.fanouts.Add(1)

	// One routing view for the whole campaign: a membership change
	// mid-fan-out affects later requests, never this one's shard set.
	view := c.currentView()

	// Admit shards through their breakers; refused shards are recorded,
	// not waited for.
	type admitted struct {
		idx  int
		done func(failed bool)
	}
	var admit []admitted
	outcomes := make([]ShardOutcome, len(view.shards))
	for i, sh := range view.shards {
		outcomes[i] = ShardOutcome{Backend: sh.base}
		done, err := sh.brk.Acquire()
		if err != nil {
			outcomes[i].Skipped = true
			outcomes[i].Error = err.Error()
			c.m.breakerSkips.Add(1)
			continue
		}
		admit = append(admit, admitted{idx: i, done: done})
	}
	if len(admit) == 0 {
		c.writeError(w, http.StatusServiceUnavailable, "all shard breakers open")
		return
	}

	// Shard the seed space: executions split as evenly as possible, each
	// shard's campaign running under its own SplitMix64-derived master
	// seed, so the union of shard executions is deterministic given
	// (seed, shard count) and any single shard replays independently.
	base, rem := req.Executions/len(admit), req.Executions%len(admit)
	ctx, cancel := c.boundedCtx(r.Context())
	defer cancel()

	replies := make([]*chaosShardReply, len(view.shards))
	var wgLocal sync.WaitGroup
	for j, ad := range admit {
		n := base
		if j < rem {
			n++
		}
		outcomes[ad.idx].Planned = n
		if n == 0 {
			ad.done(false)
			continue
		}
		shardReq := req
		shardReq.Executions = n
		shardReq.Seed = chaos.DeriveSeed(req.Seed, 1_000_000+ad.idx)
		outcomes[ad.idx].Seed = shardReq.Seed
		payload, err := json.Marshal(shardReq)
		if err != nil {
			ad.done(false)
			outcomes[ad.idx].Error = err.Error()
			continue
		}
		wgLocal.Add(1)
		c.wg.Add(1)
		go func(ad admitted, payload []byte) {
			defer wgLocal.Done()
			defer c.wg.Done()
			sh := view.shards[ad.idx]
			sh.requests.Add(1)
			t0 := c.cfg.Clock()
			res := c.attempt(ctx, sh, "/v1/chaos", "", payload)
			outcomes[ad.idx].ElapsedMs = c.cfg.Clock().Sub(t0).Milliseconds()
			failed := res.err != nil || res.status >= 500
			if failed {
				sh.failures.Add(1)
			}
			ad.done(failed)
			switch {
			case res.err != nil:
				outcomes[ad.idx].Error = res.err.Error()
			case res.status != http.StatusOK:
				outcomes[ad.idx].Error = fmt.Sprintf("HTTP %d: %s", res.status, truncate(res.body, 200))
			default:
				var rep chaosShardReply
				if err := json.Unmarshal(res.body, &rep); err != nil {
					outcomes[ad.idx].Error = fmt.Sprintf("bad shard reply: %v", err)
					return
				}
				replies[ad.idx] = &rep
			}
		}(ad, payload)
	}
	wgLocal.Wait()

	resp := chaosClusterResponse{
		Seed:              req.Seed,
		ExecutionsPlanned: req.Executions,
		OK:                true,
		Shards:            outcomes,
		ElapsedMs:         c.cfg.Clock().Sub(start).Milliseconds(),
	}
	completed := 0
	for i := range view.shards {
		rep := replies[i]
		if rep == nil {
			if outcomes[i].Planned > 0 || outcomes[i].Skipped {
				resp.Partial = true
				c.m.fanoutFailures.Add(1)
			}
			continue
		}
		completed++
		ok := rep.OK
		outcomes[i].OK = &ok
		outcomes[i].Executions = rep.Executions
		resp.Scheme = rep.Scheme
		resp.Algorithm = rep.Algorithm
		resp.Executions += rep.Executions
		resp.Rounds += rep.Rounds
		resp.OK = resp.OK && rep.OK
		resp.Violations = append(resp.Violations, rep.Violations...)
	}
	resp.Shards = outcomes
	if completed == 0 {
		c.m.fanoutPartials.Add(1)
		c.writeError(w, http.StatusBadGateway, "chaos fan-out: every shard failed")
		return
	}
	if resp.Partial {
		c.m.fanoutPartials.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "…"
}
