// Package cluster implements the capserved coordinator: a router that
// consistent-hashes canonical automaton keys across N backend capserved
// instances, hedges slow or broken shards to the next replica on the
// ring, fans chaos campaigns out over the fleet, and fronts everything
// with the same two-tier verdict cache (LRU + persistent warm store) a
// single node uses.
//
// The failure model is deliberately the paper's: the coordinator treats
// its backends the way a process treats its peers under a message
// adversary — any request can be lost or delayed, so every keyed query
// has a replica set, a per-shard circuit breaker decides when a shard
// is (temporarily) crashed, and a hedged second request bounds the
// latency an adaptive adversary can extract by slowing exactly the
// shard a key hashes to. DESIGN.md §3d spells out the full model.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a backend index.
type ringPoint struct {
	hash    uint64
	backend int
}

// Ring is a consistent-hash ring over backend indices with virtual
// nodes. It is immutable after construction: membership is fixed at
// coordinator boot, and liveness is the breakers' job, not the ring's —
// a dead shard stays on the ring and its keys hedge to successors, so
// keys do not migrate (and caches do not churn) on transient failures.
type Ring struct {
	points []ringPoint
	n      int
}

// NewRing places n backends on the ring with vnodes virtual nodes each
// (vnodes ≤ 0 defaults to 64).
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*vnodes)}
	for b := 0; b < n; b++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard-%d#%d", b, v)), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hash64 is fnv-1a finished with a SplitMix64 mix. Raw fnv-1a has weak
// avalanche on near-identical short strings — the vnode labels differ
// only in trailing digits, and without the finalizer a 3-backend ring
// measured a 56%/35%/9% key split. The mix restores uniformity.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Replicas returns up to k distinct backends for key, in ring order
// starting at the key's successor point: Replicas(key, k)[0] is the
// primary shard, the rest are its hedge/failover candidates. k is
// clamped to the backend count.
func (r *Ring) Replicas(key string, k int) []int {
	if r.n == 0 {
		return nil
	}
	if k > r.n {
		k = r.n
	}
	if k <= 0 {
		k = 1
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for i := 0; len(out) < k && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}
