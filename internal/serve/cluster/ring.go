// Package cluster implements the capserved coordinator: a router that
// consistent-hashes canonical automaton keys across N backend capserved
// instances, hedges slow or broken shards to the next replica on the
// ring, fans chaos campaigns out over the fleet, and fronts everything
// with the same two-tier verdict cache (LRU + persistent warm store) a
// single node uses.
//
// The failure model is deliberately the paper's: the coordinator treats
// its backends the way a process treats its peers under a message
// adversary — any request can be lost or delayed, so every keyed query
// has a replica set, a per-shard circuit breaker decides when a shard
// is (temporarily) crashed, and a hedged second request bounds the
// latency an adaptive adversary can extract by slowing exactly the
// shard a key hashes to. Since the live-membership work, the adversary
// may also add and remove parties mid-run: membership is an
// epoch-versioned copy-on-write table (see membership.go), an active
// prober ejects dead backends from routing and readmits recovered
// ones, and rejoining shards are warmed by a bounded verdict handoff.
// DESIGN.md §3d spells out the full model.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a member index.
type ringPoint struct {
	hash   uint64
	member int
}

// Ring is a consistent-hash ring over a fixed member list with virtual
// nodes. A Ring value is immutable — live membership is expressed by
// building a NEW ring for each epoch (copy-on-write, see membership.go)
// rather than mutating one in place, so in-flight requests keep a
// coherent view. Vnode positions hash the member's stable identity (its
// base URL), not its slice index: adding or removing one member leaves
// every other member's points untouched, which is what makes rebalance
// minimal (≈1/N of keys change owner, tested in cluster_test.go).
type Ring struct {
	points []ringPoint
	n      int
}

// NewRing places the members on the ring with vnodes virtual nodes each
// (vnodes ≤ 0 defaults to 64). Replicas/Owner return indices into the
// given slice.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{n: len(members), points: make([]ringPoint, 0, len(members)*vnodes)}
	for m, id := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hash64 is fnv-1a finished with a SplitMix64 mix. Raw fnv-1a has weak
// avalanche on near-identical short strings — vnode labels differ only
// in trailing digits, and without the finalizer a 3-backend ring
// measured a 56%/35%/9% key split. The mix restores uniformity.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Replicas returns up to k distinct members for key, in ring order
// starting at the key's successor point: Replicas(key, k)[0] is the
// primary shard, the rest are its hedge/failover candidates. k is
// clamped to the member count.
func (r *Ring) Replicas(key string, k int) []int {
	if r.n == 0 {
		return nil
	}
	if k > r.n {
		k = r.n
	}
	if k <= 0 {
		k = 1
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for i := 0; len(out) < k && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Owner returns the member index owning key (its primary shard), or -1
// on an empty ring.
func (r *Ring) Owner(key string) int {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return -1
	}
	return reps[0]
}

// Successors returns up to k distinct members that follow member m on
// the ring — m's "neighbors" in the handoff sense: the shards most
// likely to have answered, as hedge/failover targets, the keys the
// current epoch assigns to m. m itself is excluded.
func (r *Ring) Successors(m, k int) []int {
	if r.n <= 1 || k <= 0 {
		return nil
	}
	if k > r.n-1 {
		k = r.n - 1
	}
	// Start from m's first point; walk forward collecting distinct other
	// members in ring order.
	start := -1
	for i, p := range r.points {
		if p.member == m {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	out := make([]int, 0, k)
	seen := map[int]bool{m: true}
	for i := 1; len(out) < k && i <= len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
