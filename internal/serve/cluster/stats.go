package cluster

import "net/http"

// ShardStats is one backend's health and traffic snapshot.
type ShardStats struct {
	Backend      string `json:"backend"`
	State        string `json:"state"` // active | suspect | ejected
	Breaker      string `json:"breaker"`
	BreakerFails int    `json:"breakerConsecutiveFails"`
	Requests     int64  `json:"requests"`
	Failures     int64  `json:"failures"`
	Hedges       int64  `json:"hedges"`
	HedgeWins    int64  `json:"hedgeWins"`
	Ejections    int64  `json:"ejections,omitempty"`
	HandoffKeys  int64  `json:"handoffKeys,omitempty"`
	ExportedKeys int64  `json:"exportedKeys,omitempty"`
}

// MembershipStats is the live-membership block of /v1/stats: epoch
// bookkeeping, prober verdicts, and handoff accounting.
type MembershipStats struct {
	Epoch        int64         `json:"epoch"`
	EpochSwaps   int64         `json:"epochSwaps"`
	Members      int           `json:"members"`  // known, any state
	Routable     int           `json:"routable"` // on the current ring
	Joins        int64         `json:"joins"`
	Leaves       int64         `json:"leaves"`
	Probes       int64         `json:"probes"`
	ProbeFails   int64         `json:"probeFailures"`
	Ejections    int64         `json:"ejections"`
	Readmissions int64         `json:"readmissions"`
	Handoffs     int64         `json:"handoffs"`
	HandoffKeys  int64         `json:"handoffKeys"`
	HandoffErrs  int64         `json:"handoffErrors"`
	EpochHistory []epochRecord `json:"epochHistory,omitempty"`
}

// Stats is the GET /v1/stats (and /varz) cluster snapshot: the hedge,
// failover, and breaker counters the chaos harness asserts on, the
// two-tier cache gauges, and the membership/epoch block.
type Stats struct {
	Ready         bool    `json:"ready"`
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Backends      int     `json:"backends"` // routable members this epoch
	Replicas      int     `json:"replicas"`

	Requests      int64 `json:"requests"`
	KeyedRequests int64 `json:"keyedRequests"`

	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	CacheLen    int   `json:"cacheEntries"`
	WarmHits    int64 `json:"warmHits"`
	WarmLoaded  int   `json:"warmLoaded"`
	WarmStored  int   `json:"warmStored"`

	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedgeWins"`
	Failovers    int64 `json:"failovers"`
	BreakerSkips int64 `json:"breakerSkips"`
	Exhausted    int64 `json:"exhausted"`

	FanoutCampaigns int64 `json:"fanoutCampaigns"`
	FanoutPartials  int64 `json:"fanoutPartials"`
	FanoutFailures  int64 `json:"fanoutShardFailures"`

	BatchRequests int64 `json:"batchRequests"`
	BatchItems    int64 `json:"batchItems"`

	Membership MembershipStats `json:"membership"`

	Shards []ShardStats `json:"shards"`
}

// StatsSnapshot assembles the current cluster stats. Shards lists every
// known member (ejected ones included — their counters explain the
// traffic they took before ejection).
func (c *Coordinator) StatsSnapshot() Stats {
	view := c.currentView()
	st := Stats{
		Ready:           c.ready.Load(),
		Draining:        c.draining.Load(),
		UptimeSeconds:   c.cfg.Clock().Sub(c.started).Seconds(),
		Backends:        len(view.shards),
		Replicas:        c.cfg.Replicas,
		Requests:        c.m.requests.Load(),
		KeyedRequests:   c.m.keyed.Load(),
		CacheHits:       c.m.cacheHits.Load(),
		CacheMisses:     c.m.cacheMisses.Load(),
		CacheLen:        c.cache.Len(),
		WarmHits:        c.m.warmHits.Load(),
		WarmLoaded:      c.warmLoaded,
		WarmStored:      c.warm.Len(),
		Hedges:          c.m.hedges.Load(),
		HedgeWins:       c.m.hedgeWins.Load(),
		Failovers:       c.m.failovers.Load(),
		BreakerSkips:    c.m.breakerSkips.Load(),
		Exhausted:       c.m.exhausted.Load(),
		FanoutCampaigns: c.m.fanouts.Load(),
		FanoutPartials:  c.m.fanoutPartials.Load(),
		FanoutFailures:  c.m.fanoutFailures.Load(),
		BatchRequests:   c.m.batches.Load(),
		BatchItems:      c.m.batchItems.Load(),
	}
	st.Membership = MembershipStats{
		Epoch:        view.seq,
		EpochSwaps:   c.m.epochSwaps.Load(),
		Routable:     len(view.shards),
		Joins:        c.m.joins.Load(),
		Leaves:       c.m.leaves.Load(),
		Probes:       c.m.probes.Load(),
		ProbeFails:   c.m.probeFailures.Load(),
		Ejections:    c.m.ejections.Load(),
		Readmissions: c.m.readmissions.Load(),
		Handoffs:     c.m.handoffs.Load(),
		HandoffKeys:  c.m.handoffKeys.Load(),
		HandoffErrs:  c.m.handoffErrors.Load(),
	}

	c.memMu.Lock()
	st.Membership.Members = len(c.members)
	st.Membership.EpochHistory = append([]epochRecord(nil), c.epochHist...)
	for _, base := range c.memOrder {
		m := c.members[base]
		state, fails := m.sh.brk.Snapshot()
		st.Shards = append(st.Shards, ShardStats{
			Backend:      base,
			State:        m.state.String(),
			Breaker:      state,
			BreakerFails: fails,
			Requests:     m.sh.requests.Load(),
			Failures:     m.sh.failures.Load(),
			Hedges:       m.sh.hedges.Load(),
			HedgeWins:    m.sh.hedgeWins.Load(),
			Ejections:    m.ejections,
			HandoffKeys:  m.sh.handoffKeys.Load(),
			ExportedKeys: m.sh.exportedKeys.Load(),
		})
	}
	c.memMu.Unlock()
	return st
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.StatsSnapshot())
}
