package cluster

import "net/http"

// ShardStats is one backend's health and traffic snapshot.
type ShardStats struct {
	Backend      string `json:"backend"`
	Breaker      string `json:"breaker"`
	BreakerFails int    `json:"breakerConsecutiveFails"`
	Requests     int64  `json:"requests"`
	Failures     int64  `json:"failures"`
	Hedges       int64  `json:"hedges"`
	HedgeWins    int64  `json:"hedgeWins"`
}

// Stats is the GET /v1/stats (and /varz) cluster snapshot: the hedge,
// failover, and breaker counters the chaos harness asserts on, plus the
// two-tier cache gauges.
type Stats struct {
	Ready         bool    `json:"ready"`
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Backends      int     `json:"backends"`
	Replicas      int     `json:"replicas"`

	Requests      int64 `json:"requests"`
	KeyedRequests int64 `json:"keyedRequests"`

	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	CacheLen    int   `json:"cacheEntries"`
	WarmHits    int64 `json:"warmHits"`
	WarmLoaded  int   `json:"warmLoaded"`
	WarmStored  int   `json:"warmStored"`

	Hedges       int64 `json:"hedges"`
	HedgeWins    int64 `json:"hedgeWins"`
	Failovers    int64 `json:"failovers"`
	BreakerSkips int64 `json:"breakerSkips"`
	Exhausted    int64 `json:"exhausted"`

	FanoutCampaigns int64 `json:"fanoutCampaigns"`
	FanoutPartials  int64 `json:"fanoutPartials"`
	FanoutFailures  int64 `json:"fanoutShardFailures"`

	Shards []ShardStats `json:"shards"`
}

// StatsSnapshot assembles the current cluster stats.
func (c *Coordinator) StatsSnapshot() Stats {
	st := Stats{
		Ready:           c.ready.Load(),
		Draining:        c.draining.Load(),
		UptimeSeconds:   c.cfg.Clock().Sub(c.started).Seconds(),
		Backends:        len(c.shards),
		Replicas:        c.cfg.Replicas,
		Requests:        c.m.requests.Load(),
		KeyedRequests:   c.m.keyed.Load(),
		CacheHits:       c.m.cacheHits.Load(),
		CacheMisses:     c.m.cacheMisses.Load(),
		CacheLen:        c.cache.Len(),
		WarmHits:        c.m.warmHits.Load(),
		WarmLoaded:      c.warmLoaded,
		WarmStored:      c.warm.Len(),
		Hedges:          c.m.hedges.Load(),
		HedgeWins:       c.m.hedgeWins.Load(),
		Failovers:       c.m.failovers.Load(),
		BreakerSkips:    c.m.breakerSkips.Load(),
		Exhausted:       c.m.exhausted.Load(),
		FanoutCampaigns: c.m.fanouts.Load(),
		FanoutPartials:  c.m.fanoutPartials.Load(),
		FanoutFailures:  c.m.fanoutFailures.Load(),
	}
	for _, sh := range c.shards {
		state, fails := sh.brk.Snapshot()
		st.Shards = append(st.Shards, ShardStats{
			Backend:      sh.base,
			Breaker:      state,
			BreakerFails: fails,
			Requests:     sh.requests.Load(),
			Failures:     sh.failures.Load(),
			Hedges:       sh.hedges.Load(),
			HedgeWins:    sh.hedgeWins.Load(),
		})
	}
	return st
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.StatsSnapshot())
}
