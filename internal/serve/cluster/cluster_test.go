package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
)

// --- ring -------------------------------------------------------------

// ringMembers fabricates n distinct member URLs of the realistic shape.
func ringMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("http://127.0.0.1:%d", 8321+i)
	}
	return m
}

func TestRingReplicasDistinctStableClamped(t *testing.T) {
	r := NewRing(ringMembers(3), 64)
	reps := r.Replicas("solvable|somekey|h=9", 2)
	if len(reps) != 2 || reps[0] == reps[1] {
		t.Fatalf("Replicas = %v, want 2 distinct backends", reps)
	}
	for i := 0; i < 10; i++ {
		again := r.Replicas("solvable|somekey|h=9", 2)
		if again[0] != reps[0] || again[1] != reps[1] {
			t.Fatalf("replica set not stable: %v then %v", reps, again)
		}
	}
	// k beyond the backend count clamps; k <= 0 still yields a primary.
	if got := r.Replicas("x", 99); len(got) != 3 {
		t.Fatalf("Replicas(k=99) = %v, want all 3 backends", got)
	}
	if got := r.Replicas("x", 0); len(got) != 1 {
		t.Fatalf("Replicas(k=0) = %v, want just the primary", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(ringMembers(3), 64)
	counts := make([]int, 3)
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Replicas(fmt.Sprintf("solvable|%032x|h=9", i*2654435761), 1)[0]]++
	}
	for b, n := range counts {
		frac := float64(n) / keys
		if frac < 0.20 || frac > 0.47 {
			t.Fatalf("backend %d owns %.1f%% of keys (counts %v); ring is skewed", b, 100*frac, counts)
		}
	}
}

// --- multi-node harness -----------------------------------------------

// node is one killable backend: a stable URL whose handler can be
// swapped between a live capserved instance and a connection-killing
// stub, so "crash" and "restart" happen without the address changing —
// which is what lets the prober's eject/readmit lifecycle (same member
// identity, interrupted availability) be exercised deterministically.
type node struct {
	ts   *httptest.Server
	mu   sync.Mutex
	live http.Handler // nil while "down"
}

func (n *node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	h := n.live
	n.mu.Unlock()
	if h == nil {
		// Crash semantics: sever the connection so the coordinator sees a
		// transport error, not a polite HTTP failure.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	h.ServeHTTP(w, r)
}

func (n *node) kill()                  { n.mu.Lock(); n.live = nil; n.mu.Unlock() }
func (n *node) restart(h http.Handler) { n.mu.Lock(); n.live = h; n.mu.Unlock() }

func quietLogf(string, ...any) {}

// testCluster boots n backend nodes and a coordinator over them.
func testCluster(t *testing.T, n int, mutate func(*Config)) (*Coordinator, *httptest.Server, []*node) {
	t.Helper()
	nodes := make([]*node, n)
	urls := make([]string, n)
	for i := range nodes {
		nd := &node{}
		s := serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf})
		nd.live = s.Handler()
		nd.ts = httptest.NewServer(nd)
		t.Cleanup(nd.ts.Close)
		nodes[i] = nd
		urls[i] = nd.ts.URL
	}
	cfg := Config{
		Backends:         urls,
		Replicas:         2,
		HedgeDelay:       15 * time.Millisecond,
		RequestTimeout:   10 * time.Second,
		AttemptTimeout:   3 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  300 * time.Millisecond,
		Logf:             quietLogf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		co.Shutdown(ctx)
	})
	return co, ts, nodes
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func clusterStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// verdict is the semantic core of a solvability reply — the part that
// must be identical however many nodes computed it.
type verdict struct {
	Solvable bool `json:"solvable"`
	Horizon  int  `json:"horizon"`
}

// TestClusterDifferentialAgainstSingleNode routes a mixed query set
// through a 3-node cluster and checks every verdict against a lone
// capserved instance.
func TestClusterDifferentialAgainstSingleNode(t *testing.T) {
	_, ts, _ := testCluster(t, 3, nil)
	ref := httptest.NewServer(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
	defer ref.Close()

	queries := []struct{ path, body string }{
		{"/v1/solvable", `{"scheme":"S1","horizon":3}`},
		{"/v1/solvable", `{"scheme":"S1","horizon":7}`},
		{"/v1/solvable", `{"scheme":"S2","horizon":4}`},
		{"/v1/solvable", `{"scheme":"S2","minus":["(b)"],"horizon":5}`},
		{"/v1/net/solvable", `{"graph":"cycle","n":4,"f":1,"rounds":2}`},
		{"/v1/net/solvable", `{"graph":"complete","n":4,"f":1,"rounds":3}`},
	}
	for _, q := range queries {
		cresp, craw := postJSON(t, ts.URL+q.path, q.body)
		rresp, rraw := postJSON(t, ref.URL+q.path, q.body)
		if cresp.StatusCode != http.StatusOK || rresp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: cluster=%d single=%d (%s / %s)",
				q.path, q.body, cresp.StatusCode, rresp.StatusCode, craw, rraw)
		}
		var cv, rv verdict
		if err := json.Unmarshal(craw, &cv); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rraw, &rv); err != nil {
			t.Fatal(err)
		}
		if cv != rv {
			t.Fatalf("%s %s: cluster says %+v, single node says %+v", q.path, q.body, cv, rv)
		}
	}

	// The same query again is a coordinator cache hit.
	resp, _ := postJSON(t, ts.URL+"/v1/solvable", `{"scheme":"S1","horizon":3}`)
	if tier := resp.Header.Get("X-Cluster-Cache"); tier != "hit" {
		t.Fatalf("repeat query X-Cluster-Cache = %q, want hit", tier)
	}
}

// TestClusterSurvivesKilledBackend kills one backend under fresh
// (uncacheable-in-advance) traffic: every request must still answer
// correctly via hedging/failover, the hedge and failover counters must
// move, and the dead shard's breaker must eventually open. After a
// restart and cooldown the shard serves again.
func TestClusterSurvivesKilledBackend(t *testing.T) {
	co, ts, nodes := testCluster(t, 3, nil)
	ref := httptest.NewServer(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
	defer ref.Close()

	nodes[1].kill()

	// Unique automata so every request misses the coordinator cache and
	// must reach a backend. Member-identity hashing makes which keys the
	// dead shard owns depend on the ephemeral port URLs, so keep issuing
	// fresh keys until its breaker has provably tripped (threshold 3).
	deadBreaker := func() string {
		for _, sh := range clusterStats(t, ts.URL).Shards {
			if sh.Backend == nodes[1].ts.URL {
				return sh.Breaker
			}
		}
		return ""
	}
	for i := 0; i < 60 && deadBreaker() != "open"; i++ {
		body := fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":4}`,
			strings.Repeat("w", i%3+1)+strings.Repeat("b", i/3+1))
		cresp, craw := postJSON(t, ts.URL+"/v1/solvable", body)
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with a dead backend = %d: %s", i, cresp.StatusCode, craw)
		}
		rresp, rraw := postJSON(t, ref.URL+"/v1/solvable", body)
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("reference request %d = %d", i, rresp.StatusCode)
		}
		var cv, rv verdict
		json.Unmarshal(craw, &cv)
		json.Unmarshal(rraw, &rv)
		if cv != rv {
			t.Fatalf("request %d verdict drifted with dead backend: cluster %+v vs single %+v", i, cv, rv)
		}
	}

	st := clusterStats(t, ts.URL)
	if st.Hedges+st.Failovers == 0 {
		t.Fatalf("no hedges or failovers recorded against a dead backend: %+v", st)
	}
	if b := deadBreaker(); b != "open" {
		t.Fatalf("dead shard breaker = %q, want open (stats %+v)", b, st.Shards)
	}

	// Restart the backend; after the cooldown a half-open probe must
	// re-admit it and traffic keeps flowing.
	nodes[1].restart(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
	time.Sleep(co.cfg.BreakerCooldown + 50*time.Millisecond)
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"scheme":"S2","minus":["b%s(.)"],"horizon":4}`, strings.Repeat("w", i+1))
		resp, raw := postJSON(t, ts.URL+"/v1/solvable", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after restart = %d: %s", i, resp.StatusCode, raw)
		}
	}
}

// TestClusterChaosFanout checks the campaign fan-out math on a healthy
// cluster: shard executions sum to the plan, per-shard seeds are the
// SplitMix64 derivations of the campaign seed, and the merged report is
// not partial.
func TestClusterChaosFanout(t *testing.T) {
	_, ts, _ := testCluster(t, 3, nil)
	resp, raw := postJSON(t, ts.URL+"/v1/chaos", `{"scheme":"S1","executions":90,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos = %d: %s", resp.StatusCode, raw)
	}
	var rep chaosClusterResponse
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatalf("healthy fan-out reported partial: %s", raw)
	}
	if rep.Executions != 90 || rep.ExecutionsPlanned != 90 {
		t.Fatalf("executions %d/%d, want 90/90", rep.Executions, rep.ExecutionsPlanned)
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("%d shard outcomes, want 3", len(rep.Shards))
	}
	total := 0
	for i, sh := range rep.Shards {
		total += sh.Executions
		if want := chaos.DeriveSeed(7, 1_000_000+i); sh.Seed != want {
			t.Fatalf("shard %d seed = %d, want DeriveSeed(7, %d) = %d", i, sh.Seed, 1_000_000+i, want)
		}
		if sh.OK == nil || !*sh.OK {
			t.Fatalf("shard %d not ok: %+v", i, sh)
		}
	}
	if total != 90 {
		t.Fatalf("shard executions sum to %d, want 90", total)
	}
}

// TestClusterChaosFanoutPartialOnDeadShard is the partial-result
// accounting contract: with one backend dead the campaign still
// succeeds (200), but honestly reports the lost coverage.
func TestClusterChaosFanoutPartialOnDeadShard(t *testing.T) {
	_, ts, nodes := testCluster(t, 3, nil)
	nodes[2].kill()
	resp, raw := postJSON(t, ts.URL+"/v1/chaos", `{"scheme":"S1","executions":90,"seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos with dead shard = %d: %s", resp.StatusCode, raw)
	}
	var rep chaosClusterResponse
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatalf("campaign with a dead shard not marked partial: %s", raw)
	}
	if rep.ExecutionsPlanned != 90 || rep.Executions != 60 {
		t.Fatalf("executions %d planned %d, want 60 of 90", rep.Executions, rep.ExecutionsPlanned)
	}
	var failed int
	for _, sh := range rep.Shards {
		if sh.Error != "" && !sh.Skipped {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("%d shards report errors, want exactly 1: %s", failed, raw)
	}

	st := clusterStats(t, ts.URL)
	if st.FanoutPartials < 1 || st.FanoutFailures < 1 {
		t.Fatalf("fanout partial/failure counters did not move: %+v", st)
	}

	// All shards dead: the campaign has nothing to report — 502.
	nodes[0].kill()
	nodes[1].kill()
	resp2, _ := postJSON(t, ts.URL+"/v1/chaos", `{"scheme":"S1","executions":30,"seed":4}`)
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead campaign = %d, want 502", resp2.StatusCode)
	}
}

// TestClusterKillAndRestartMidCampaign runs a long campaign while a
// backend is killed and later restarted mid-flight. Any interleaving is
// acceptable as long as the reply is coherent: HTTP 200, executions
// never exceed the plan, shortfalls are flagged partial, and the
// coordinator keeps serving keyed queries afterwards.
func TestClusterKillAndRestartMidCampaign(t *testing.T) {
	// A long campaign must not be guillotined by the keyed-path attempt
	// budget — especially under the race detector's ~10x slowdown.
	_, ts, nodes := testCluster(t, 3, func(cfg *Config) {
		cfg.RequestTimeout = 60 * time.Second
		cfg.AttemptTimeout = 60 * time.Second
	})

	killed := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		nodes[0].kill()
		time.Sleep(80 * time.Millisecond)
		nodes[0].restart(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
		close(killed)
	}()

	resp, raw := postJSON(t, ts.URL+"/v1/chaos",
		`{"scheme":"S1","executions":6000,"seed":11,"maxRounds":6}`)
	<-killed
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-campaign kill/restart = %d: %s", resp.StatusCode, raw)
	}
	var rep chaosClusterResponse
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Executions > rep.ExecutionsPlanned {
		t.Fatalf("executions %d exceed plan %d", rep.Executions, rep.ExecutionsPlanned)
	}
	if rep.Executions < rep.ExecutionsPlanned && !rep.Partial {
		t.Fatalf("lost coverage (%d < %d) but not marked partial",
			rep.Executions, rep.ExecutionsPlanned)
	}
	// The cluster keeps answering after the turbulence.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/solvable", `{"scheme":"S1","horizon":5}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("keyed query after campaign = %d: %s", resp2.StatusCode, raw2)
	}
}

// TestClusterUnderFaultyTransport puts the seeded chaos transport
// between coordinator and backends: drops and injected 500s must be
// absorbed by hedging/failover without corrupting verdicts.
func TestClusterUnderFaultyTransport(t *testing.T) {
	ft := &chaos.FaultyTransport{
		Seed:   42,
		Faults: chaos.TransportFaults{DropProb: 0.2, Err500Prob: 0.1},
	}
	_, ts, _ := testCluster(t, 3, func(cfg *Config) {
		cfg.Replicas = 3
		cfg.BreakerThreshold = 100 // the adversary is the subject here, not the breaker
		cfg.HTTPClient = &http.Client{Transport: ft}
	})
	ref := httptest.NewServer(serve.New(serve.Config{MaxHorizon: 13, Logf: quietLogf}).Handler())
	defer ref.Close()

	okCount := 0
	for i := 0; i < 40; i++ {
		// A distinct ultimately periodic word per request: every query is
		// a fresh cache key, so each one truly crosses the transport.
		word := make([]byte, 6)
		for bit := range word {
			if i&(1<<bit) != 0 {
				word[bit] = 'w'
			} else {
				word[bit] = 'b'
			}
		}
		body := fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":3}`, word)
		cresp, craw := postJSON(t, ts.URL+"/v1/solvable", body)
		if cresp.StatusCode != http.StatusOK {
			continue // all three replicas unlucky — allowed, but must stay rare
		}
		okCount++
		rresp, rraw := postJSON(t, ref.URL+"/v1/solvable", body)
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("reference failed: %d", rresp.StatusCode)
		}
		var cv, rv verdict
		json.Unmarshal(craw, &cv)
		json.Unmarshal(rraw, &rv)
		if cv != rv {
			t.Fatalf("verdict corrupted under chaos transport: %+v vs %+v", cv, rv)
		}
	}
	// Per-attempt failure ~0.3, so a whole request fails ~2.7% of the
	// time (3 independent replicas): 34+/40 passes with huge margin.
	if okCount < 34 {
		t.Fatalf("only %d/40 requests survived the chaos transport", okCount)
	}
	if ft.Injected() == 0 {
		t.Fatal("the chaos transport never injected a fault")
	}
	st := clusterStats(t, ts.URL)
	if st.Failovers+st.Hedges == 0 {
		t.Fatalf("no failovers/hedges under a faulty transport: %+v", st)
	}
}

// TestCoordinatorWarmStoreOutlivesBackends: verdicts computed through
// the coordinator land in its warm store; a NEW coordinator booted on
// that store answers the same query with every backend dead.
func TestCoordinatorWarmStoreOutlivesBackends(t *testing.T) {
	dir := t.TempDir()
	warm := dir + "/coord-warm.jsonl"

	co, ts, nodes := testCluster(t, 3, func(cfg *Config) { cfg.WarmStorePath = warm })
	const query = `{"scheme":"S1","horizon":6}`
	resp, raw := postJSON(t, ts.URL+"/v1/solvable", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solvable = %d: %s", resp.StatusCode, raw)
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	co.Shutdown(ctx)
	cancel()

	for _, nd := range nodes {
		nd.kill()
	}
	co2, err := New(Config{
		Backends:      []string{nodes[0].ts.URL, nodes[1].ts.URL, nodes[2].ts.URL},
		WarmStorePath: warm,
		Logf:          quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(co2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		co2.Shutdown(ctx)
	}()

	resp2, raw2 := postJSON(t, ts2.URL+"/v1/solvable", query)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm-only coordinator = %d: %s", resp2.StatusCode, raw2)
	}
	if tier := resp2.Header.Get("X-Cluster-Cache"); tier != "warm" {
		t.Fatalf("X-Cluster-Cache = %q, want warm", tier)
	}
	var v1, v2 verdict
	json.Unmarshal(raw, &v1)
	json.Unmarshal(raw2, &v2)
	if v1 != v2 {
		t.Fatalf("warm verdict drifted: %+v vs %+v", v1, v2)
	}
}

// TestCoordinatorDrainCancelsHedgesNoLeak is the graceful-drain
// contract: with hedged requests wedged against hanging backends,
// Shutdown must flip readiness, cancel every in-flight attempt, wait
// for the hedge goroutines, and leave no goroutine behind.
func TestCoordinatorDrainCancelsHedgesNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	// Backends that never answer: every request wedges until cancelled.
	// The body must be drained first — with unread body bytes buffered,
	// net/http cannot arm its background close detection and the
	// request context would never fire.
	hang := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	})
	bk1 := httptest.NewServer(hang)
	bk2 := httptest.NewServer(hang)
	co, err := New(Config{
		Backends:       []string{bk1.URL, bk2.URL},
		Replicas:       2,
		HedgeDelay:     10 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
		Logf:           quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	client := &http.Client{}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"scheme":"S2","minus":["%s(.)"],"horizon":3}`, strings.Repeat("w", i+1))
			resp, err := client.Post(ts.URL+"/v1/solvable", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}

	// Wait until hedges are provably in flight.
	deadline := time.Now().Add(3 * time.Second)
	for {
		var st Stats
		resp, err := client.Get(ts.URL + "/v1/stats")
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if st.Hedges >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hedges never launched against hanging backends")
		}
		time.Sleep(5 * time.Millisecond)
	}

	shctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := co.Shutdown(shctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Shutdown of wedged hedges took %s; attempts were not cancelled", took)
	}
	wg.Wait() // the wedged requests must come back once their attempts die

	// Drained: not ready anymore.
	resp, err := client.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", resp.StatusCode)
	}

	ts.Close()
	bk1.Close()
	bk2.Close()
	client.CloseIdleConnections()

	// Leak check: goroutines settle back to (about) the pre-test count.
	leakDeadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
