package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// probeLoop is the active health prober: every ProbeInterval it probes
// every known member (ejected ones included — that is how they come
// back) and feeds the outcomes through the suspect → ejected →
// readmitted lifecycle. It runs for the coordinator's lifetime and
// stops when baseCtx is cancelled by drain.
//
// The prober is deliberately layered ON TOP of the per-shard breakers
// rather than replacing them: breakers react to request traffic within
// milliseconds but only while traffic flows, and an open breaker still
// costs every request a skip-and-failover decision. The prober converts
// sustained failure into a membership fact — the shard leaves the ring,
// so requests stop considering it at all (no hedge budget spent, no
// breaker skips) — and converts recovery back without operator action.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			c.probeOnce()
		}
	}
}

// probeOnce probes every known member concurrently and applies the
// lifecycle transitions. Probes run without memMu held (a slow probe
// must not block admin joins); outcomes are applied under the lock and
// re-checked against the live table, so a member removed mid-probe is
// simply skipped.
func (c *Coordinator) probeOnce() {
	c.memMu.Lock()
	bases := append([]string(nil), c.memOrder...)
	c.memMu.Unlock()

	type verdict struct {
		base string
		ok   bool
	}
	verdicts := make([]verdict, len(bases))
	var wg sync.WaitGroup
	for i, base := range bases {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			verdicts[i] = verdict{base: base, ok: c.probe(base)}
		}(i, base)
	}
	wg.Wait()

	var readmitted []string
	var view *epochView
	c.memMu.Lock()
	for _, v := range verdicts {
		m, ok := c.members[v.base]
		if !ok {
			continue // removed while the probe was in flight
		}
		c.m.probes.Add(1)
		if v.ok {
			m.probeFails = 0
			switch m.state {
			case memberSuspect:
				m.state = memberActive
				c.cfg.Logf("coordinator: probe: %s recovered (suspect → active)", v.base)
			case memberEjected:
				m.probeOKs++
				if m.probeOKs >= c.cfg.ProbeRecoverThreshold {
					m.state = memberActive
					m.probeOKs = 0
					m.sh.brk.Reset()
					c.m.readmissions.Add(1)
					view = c.rebuild("readmit " + v.base)
					readmitted = append(readmitted, v.base)
				}
			}
			continue
		}
		c.m.probeFailures.Add(1)
		m.probeOKs = 0
		m.probeFails++
		switch m.state {
		case memberActive:
			m.state = memberSuspect
			c.cfg.Logf("coordinator: probe: %s failed (active → suspect, %d/%d)",
				v.base, m.probeFails, c.cfg.ProbeFailThreshold)
			fallthrough
		case memberSuspect:
			if m.probeFails >= c.cfg.ProbeFailThreshold {
				m.state = memberEjected
				m.ejections++
				c.m.ejections.Add(1)
				view = c.rebuild("eject " + v.base)
			}
		}
	}
	c.memMu.Unlock()

	// Handoffs run outside the lock: a readmitted shard is warmed for
	// the key range the fresh epoch assigns to it.
	for _, base := range readmitted {
		c.startHandoff(base, view)
	}
}

// probe performs one health check: GET /healthz under ProbeTimeout.
// Any 2xx is healthy; transport errors, timeouts, and non-2xx are not.
func (c *Coordinator) probe(base string) bool {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}
