// Package serve implements capserved: a resilient long-running HTTP/JSON
// analysis service over the repository's solvability surface (Theorem
// III.8 classification, bounded-round fullinfo walks, scenario
// index/unindex, network solvability, chaos campaigns).
//
// Every request flows through a hardened pipeline:
//
//	recover → metrics → admission (bounded queue, shed with 429) →
//	per-request deadline → [circuit breaker] → [singleflight + LRU] → handler
//
// Deadlines propagate as context.Context all the way into the fullinfo
// worker pool and the simulation kernels, so a cancelled request stops
// burning CPU at the next subtree/round boundary. The expensive analysis
// paths sit behind a consecutive-failure circuit breaker with half-open
// probes, and deterministic queries are deduplicated by singleflight and
// memoized in an LRU keyed by the canonical encoding of the compiled
// scheme automaton. SIGTERM (via the caller's context) triggers a
// graceful drain: the listener closes, readiness flips, in-flight
// requests finish under a drain deadline, and final metrics are flushed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	coordattack "repro"
)

// Config parameterizes the service. The zero value is usable: every
// field has a production-lean default.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:8321"). Use port 0
	// to let the kernel pick; BoundAddr reports the result.
	Addr string
	// AnalysisConcurrency bounds concurrently executing expensive
	// requests (solvable/netsolve/chaos); default GOMAXPROCS.
	AnalysisConcurrency int
	// LightConcurrency bounds the cheap endpoints (classify, index);
	// default 64.
	LightConcurrency int
	// QueueDepth is how many admitted-but-waiting requests each class
	// tolerates before shedding with 429 (default 2× the class limit).
	QueueDepth int
	// RequestTimeout is the per-request deadline installed by the
	// pipeline (default 30s). Clients may ask for less via
	// "timeout_ms", never for more.
	RequestTimeout time.Duration
	// ComputeBudget bounds a singleflight leader's computation,
	// independent of any caller's deadline (default RequestTimeout).
	ComputeBudget time.Duration
	// DrainTimeout bounds the graceful-shutdown drain (default 10s).
	DrainTimeout time.Duration
	// CacheEntries sizes the LRU result cache (default 1024).
	CacheEntries int
	// WarmStorePath, when non-empty, enables the persistent warm tier of
	// the verdict cache: a JSON-lines file of computed verdicts keyed by
	// canonical automaton digest, loaded at boot so a restarted node
	// serves previously computed answers without re-running the engine.
	WarmStorePath string
	// BreakerThreshold is the consecutive-failure trip count (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker fast-fails before probing
	// (default 10s).
	BreakerCooldown time.Duration
	// MaxHorizon caps the horizon accepted by analysis endpoints
	// (default 12) — a single request must not be able to demand an
	// astronomically deep walk.
	MaxHorizon int
	// MaxProcs caps n for n-process network analyses (default 7).
	MaxProcs int
	// MaxExecutions caps chaos campaign sizes (default 100000).
	MaxExecutions int
	// MaxBatchItems caps the item count of one /v1/solve/batch request
	// (default 64). The whole batch holds a single heavy admission slot
	// and one breaker check, so this bounds how much engine work one
	// slot can demand.
	MaxBatchItems int
	// Backend selects the analysis backend for every served engine
	// request. The zero value (BackendAuto) lets the engine pick the
	// symbolic interval walk when the scheme supports it and fall back
	// to enumeration otherwise.
	Backend coordattack.EngineBackend
	// Logf sinks operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Clock is the time source (default time.Now); injectable for
	// deterministic breaker tests.
	Clock func() time.Time
}

func (c *Config) defaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8321"
	}
	if c.AnalysisConcurrency <= 0 {
		c.AnalysisConcurrency = runtime.GOMAXPROCS(0)
	}
	if c.LightConcurrency <= 0 {
		c.LightConcurrency = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.AnalysisConcurrency
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ComputeBudget <= 0 {
		c.ComputeBudget = c.RequestTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = 12
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 7
	}
	if c.MaxExecutions <= 0 {
		c.MaxExecutions = 100_000
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// metrics is the server-wide counter set surfaced by /varz. All fields
// are updated with atomics; there is no lock on the request path.
type metrics struct {
	requests   atomic.Int64
	inFlight   atomic.Int64
	ok2xx      atomic.Int64
	client4xx  atomic.Int64
	server5xx  atomic.Int64
	shed       atomic.Int64
	breakerFF  atomic.Int64 // breaker fast-fails
	timeouts   atomic.Int64
	panics     atomic.Int64
	batches    atomic.Int64 // /v1/solve/batch requests admitted
	batchItems atomic.Int64 // items across all admitted batches
}

// Server is the capserved HTTP service. Construct with New, mount
// Handler on any http.Server, or let ListenAndServe own the lifecycle
// (including graceful drain).
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	m      metrics
	engine engineAgg
	cache  *resultCache
	heavy  *gate
	light  *gate
	brk    *Breaker
	// warm is the persistent verdict tier (nil unless WarmStorePath is
	// set and the store opened cleanly); warmLoaded counts the verdicts
	// usable at boot. warmVals is the in-memory mirror the result cache
	// consults on LRU misses and /v1/warm/export enumerates for cluster
	// handoffs; warmImported counts entries accepted via /v1/warm/import.
	warm         *VerdictStore
	warmLoaded   int
	warmMu       sync.RWMutex
	warmVals     map[string]any
	warmImported atomic.Int64

	// baseCtx is the computation lifetime: singleflight leaders run
	// under it so request disconnects don't kill shared work. It is
	// cancelled only when the drain deadline expires (or drain ends).
	baseCtx    context.Context
	cancelBase context.CancelFunc

	ready    atomic.Bool
	draining atomic.Bool
	started  time.Time
	boundAdr atomic.Value // string
	diagSeq  atomic.Int64
}

// New builds a Server from the config (zero value fine).
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		cache:    newResultCache(cfg.CacheEntries),
		heavy:    newGate(cfg.AnalysisConcurrency, cfg.QueueDepth, time.Second),
		light:    newGate(cfg.LightConcurrency, 4*cfg.QueueDepth, time.Second),
		brk:      NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		warmVals: make(map[string]any),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.started = cfg.Clock()
	s.cache.onPanic = s.panicDiag
	s.cache.warmGet = s.warmLookup
	s.cache.persist = s.persistVerdict
	if cfg.WarmStorePath != "" {
		s.attachWarmStore(cfg.WarmStorePath)
	}
	s.ready.Store(true)
	s.routes()
	return s
}

// panicDiag records a recovered panic — counter, log line with stack —
// and returns the fresh diagnostic ID that ties the client-facing 500
// to the server log. Shared by the recover middleware and the
// singleflight compute runner.
func (s *Server) panicDiag(where string, p any, stack []byte) string {
	s.m.panics.Add(1)
	id := fmt.Sprintf("diag-%d-%d", s.started.Unix(), s.diagSeq.Add(1))
	s.cfg.Logf("capserved: panic %s in %s: %v\n%s", id, where, p, stack)
	return id
}

// Handler returns the fully wired HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BoundAddr reports the listener address once ListenAndServe has bound
// it ("" before that) — the hook smoke tests use to find a :0 port.
func (s *Server) BoundAddr() string {
	if v := s.boundAdr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe runs the service until ctx is cancelled, then drains:
// readiness flips to 503, the listener stops accepting, in-flight
// requests get up to DrainTimeout to finish, and final metrics are
// flushed through Logf. The returned error is nil on a clean drained
// exit.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.boundAdr.Store(ln.Addr().String())
	s.cfg.Logf("capserved: listening on http://%s", ln.Addr())

	hs := &http.Server{Handler: s.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		s.cancelBase()
		return err
	case <-ctx.Done():
	}
	err = s.Drain(hs)
	if e := <-serveErr; e != nil && !errors.Is(e, http.ErrServerClosed) && err == nil {
		err = e
	}
	return err
}

// Drain performs the graceful-shutdown sequence on hs: stop advertising
// readiness, stop accepting, wait for in-flight requests under the drain
// deadline, then cancel the computation context and flush metrics. It is
// exposed separately so tests (and alternative mains) can drive it
// against their own http.Server.
func (s *Server) Drain(hs *http.Server) error {
	s.draining.Store(true)
	s.ready.Store(false)
	s.cfg.Logf("capserved: draining (deadline %s)", s.cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	s.cancelBase()
	if cerr := s.warm.Close(); cerr != nil {
		s.cfg.Logf("capserved: closing warm store: %v", cerr)
	}
	v := s.varz()
	b, merr := json.Marshal(v)
	if merr != nil {
		s.cfg.Logf("capserved: drained (err=%v); final varz unmarshalable: %v", err, merr)
		return err
	}
	s.cfg.Logf("capserved: drained (err=%v) final varz: %s", err, b)
	return err
}

// endpoint classes for the admission pipeline.
type class int

const (
	classLight class = iota // parsing/automata work: classify, index
	classHeavy              // engine walks and campaigns
)

// apiError is the uniform JSON error body.
type apiError struct {
	Error  string `json:"error"`
	DiagID string `json:"diagId,omitempty"`
}

// writeJSON encodes v into a pooled buffer and writes it as a single
// response. Encoding happens before the status line is committed; an
// encode error (only reachable with marshaler-bearing or non-finite
// payloads, which the API types avoid) degrades to a plain-text 500
// instead of an empty 200 body. Handlers with a diagnostic context use
// Server.writeOK, which logs the error under a diag ID.
func writeJSON(w http.ResponseWriter, code int, v any) {
	jb := getJSONBuf()
	defer putJSONBuf(jb)
	if err := jb.enc.Encode(v); err != nil {
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(jb.buf.Bytes())
}

// writeOK writes v as a 200 response through the pooled encoder. On
// encode failure nothing has been written yet, so the client gets a
// well-formed diag-ID 500 tied to a server log line instead of a
// truncated or empty body.
func (s *Server) writeOK(w http.ResponseWriter, v any) {
	jb := getJSONBuf()
	defer putJSONBuf(jb)
	if err := jb.enc.Encode(v); err != nil {
		id := fmt.Sprintf("diag-%d-%d", s.started.Unix(), s.diagSeq.Add(1))
		s.cfg.Logf("capserved: response encode %s: %v", id, err)
		writeJSON(w, http.StatusInternalServerError, apiError{
			Error:  "response encoding failed; see server log",
			DiagID: id,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(jb.buf.Bytes())
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// protect wraps h in the full pipeline for the class: panic recovery,
// metrics, admission with load shedding, and the per-request deadline.
// The circuit breaker is applied inside the heavy handlers (it guards
// the engine call, not queueing or parsing).
func (s *Server) protect(cl class, h http.HandlerFunc) http.Handler {
	g := s.light
	if cl == classHeavy {
		g = s.heavy
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Add(1)
		s.m.inFlight.Add(1)
		defer s.m.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				id := s.panicDiag(r.URL.Path, p, debug.Stack())
				if !sw.wrote {
					s.m.server5xx.Add(1)
					writeJSON(w, http.StatusInternalServerError, apiError{
						Error:  "internal error; see server log",
						DiagID: id,
					})
				}
				return
			}
			switch {
			case sw.status >= 500:
				s.m.server5xx.Add(1)
			case sw.status >= 400:
				s.m.client4xx.Add(1)
			default:
				s.m.ok2xx.Add(1)
			}
		}()

		release, err := g.acquire(r.Context())
		if err != nil {
			var shed errShed
			if errors.As(err, &shed) {
				s.m.shed.Add(1)
				sw.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
				writeJSON(sw, http.StatusTooManyRequests, apiError{Error: shed.Error()})
				return
			}
			// Caller's context expired while queued.
			s.m.timeouts.Add(1)
			writeJSON(sw, http.StatusServiceUnavailable, apiError{Error: err.Error()})
			return
		}
		defer release()

		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(r))
		defer cancel()
		h(sw, r.WithContext(ctx))
	})
}

// requestTimeout resolves the per-request deadline: the configured
// ceiling, lowered (never raised) by an explicit ?timeout_ms=N.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	d := s.cfg.RequestTimeout
	if r.URL.RawQuery == "" {
		// Skip Query(): it allocates a values map per call, on every
		// request of the hot path.
		return d
	}
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		// Strict parse: "100abc" is rejected, not truncated to 100.
		if n, err := strconv.ParseInt(ms, 10, 64); err == nil && n > 0 {
			if req := time.Duration(n) * time.Millisecond; req < d {
				d = req
			}
		}
	}
	return d
}

// retryAfterSeconds renders a duration as the integral seconds HTTP
// Retry-After wants, rounding up so clients never come back early.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// statusWriter records the response status for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(b)
}

// Varz is the /varz metrics snapshot.
type Varz struct {
	UptimeSeconds      float64 `json:"uptimeSeconds"`
	Ready              bool    `json:"ready"`
	Draining           bool    `json:"draining"`
	Requests           int64   `json:"requests"`
	InFlight           int64   `json:"inFlight"`
	Responses2xx       int64   `json:"responses2xx"`
	Responses4xx       int64   `json:"responses4xx"`
	Responses5xx       int64   `json:"responses5xx"`
	Shed               int64   `json:"shed"`
	BreakerFastFails   int64   `json:"breakerFastFails"`
	Timeouts           int64   `json:"timeouts"`
	Panics             int64   `json:"panics"`
	BatchRequests      int64   `json:"batchRequests"`
	BatchItems         int64   `json:"batchItems"`
	CacheHits          int64   `json:"cacheHits"`
	CacheMisses        int64   `json:"cacheMisses"`
	CacheEntries       int     `json:"cacheEntries"`
	WarmHits           int64   `json:"warmHits"`
	WarmLoaded         int     `json:"warmLoaded"`
	WarmStored         int     `json:"warmStored"`
	WarmImported       int64   `json:"warmImported"`
	SingleflightShared int64   `json:"singleflightShared"`
	BreakerState       string  `json:"breakerState"`
	BreakerFails       int     `json:"breakerConsecutiveFails"`
	HeavyInFlight      int     `json:"heavyInFlight"`
	HeavyQueued        int64   `json:"heavyQueued"`
}

func (s *Server) varz() Varz {
	state, fails := s.brk.Snapshot()
	hi, hq := s.heavy.depth()
	return Varz{
		UptimeSeconds:      s.cfg.Clock().Sub(s.started).Seconds(),
		Ready:              s.ready.Load(),
		Draining:           s.draining.Load(),
		Requests:           s.m.requests.Load(),
		InFlight:           s.m.inFlight.Load(),
		Responses2xx:       s.m.ok2xx.Load(),
		Responses4xx:       s.m.client4xx.Load(),
		Responses5xx:       s.m.server5xx.Load(),
		Shed:               s.m.shed.Load(),
		BreakerFastFails:   s.m.breakerFF.Load(),
		Timeouts:           s.m.timeouts.Load(),
		Panics:             s.m.panics.Load(),
		BatchRequests:      s.m.batches.Load(),
		BatchItems:         s.m.batchItems.Load(),
		CacheHits:          s.cache.hits.Load(),
		CacheMisses:        s.cache.misses.Load(),
		CacheEntries:       s.cache.lru.Len(),
		WarmHits:           s.cache.warmHits.Load(),
		WarmLoaded:         s.warmLoaded,
		WarmStored:         s.warm.Len(),
		WarmImported:       s.warmImported.Load(),
		SingleflightShared: s.cache.shared.Load(),
		BreakerState:       state,
		BreakerFails:       fails,
		HeavyInFlight:      hi,
		HeavyQueued:        hq,
	}
}
