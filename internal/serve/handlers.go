package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	coordattack "repro"
	"repro/internal/chaos"
	"repro/internal/serve/wire"
)

// routes mounts every endpoint on the mux behind the pipeline.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("GET /varz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.varz())
	})
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /v1/warm/export", s.protect(classLight, s.handleWarmExport))
	s.mux.Handle("POST /v1/warm/import", s.protect(classLight, s.handleWarmImport))
	s.mux.Handle("POST /v1/classify", s.protect(classLight, s.handleClassify))
	s.mux.Handle("POST /v1/index", s.protect(classLight, s.handleIndex))
	s.mux.Handle("POST /v1/unindex", s.protect(classLight, s.handleUnindex))
	s.mux.Handle("POST /v1/solvable", s.protect(classHeavy, s.handleSolvable))
	s.mux.Handle("POST /v1/solve/batch", s.protect(classHeavy, s.handleSolveBatch))
	s.mux.Handle("POST /v1/net/solvable", s.protect(classHeavy, s.handleNetSolvable))
	s.mux.Handle("POST /v1/net/solve/batch", s.protect(classHeavy, s.handleNetSolveBatch))
	s.mux.Handle("POST /v1/chaos", s.protect(classHeavy, s.handleChaos))
	s.mux.Handle("POST /v1/chaos/batch", s.protect(classHeavy, s.handleChaosBatch))
}

// acceptsWire reports whether the request negotiated the binary verdict
// encoding for a single-verdict response (Accept names the frame media
// type). JSON stays the default; clients opt in per request.
func acceptsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.MediaTypeVerdict)
}

// acceptsWireStream is acceptsWire for batch endpoints: the caller must
// name the stream media type to receive frames instead of JSON lines.
func acceptsWireStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.MediaTypeVerdictStream)
}

// writeVerdict writes a 200 verdict in the negotiated encoding: one
// binary frame when the caller asked for it, the usual pretty JSON
// otherwise. A verdict the codec cannot frame (never the case for the
// served types) degrades to JSON rather than failing the request.
func (s *Server) writeVerdict(w http.ResponseWriter, r *http.Request, v any) {
	if !acceptsWire(r) {
		s.writeOK(w, v)
		return
	}
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	b, err := wire.AppendVerdict(fb.b[:0], v)
	if err != nil {
		s.writeOK(w, v)
		return
	}
	fb.b = b
	w.Header().Set("Content-Type", wire.MediaTypeVerdict)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// decode reads a bounded JSON body into v.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	return decodeN(w, r, v, 1<<20)
}

// decodeN is decode with an explicit body cap (batch requests carry N
// scenarios in one body).
func decodeN(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// SchemeSelector selects an omission scheme: a registry name or a DSL
// expression, optionally minus ultimately periodic scenarios.
type SchemeSelector struct {
	Scheme string   `json:"scheme,omitempty"`
	Expr   string   `json:"expr,omitempty"`
	Minus  []string `json:"minus,omitempty"`
}

// resolvedSchemes memoizes selector spelling → compiled scheme.
// Schemes are immutable once wrapped (see internal/scheme), so a cached
// *Scheme is safe to share across concurrent requests — and sharing it
// also reuses its lazily compiled prefix DFA. Bounded so adversarial
// unique spellings cannot grow it without limit; an evicted spelling
// just recompiles.
var resolvedSchemes = NewLRU(512)

// selectorKey is the memoization key: the selector's exact spelling.
// Distinct spellings of the same automaton get distinct entries — the
// verdict caches already canonicalize by automaton digest, this tier
// only saves re-compilation.
func (q *SchemeSelector) selectorKey() string {
	if q.Expr == "" && len(q.Minus) == 0 {
		return "n\x00" + q.Scheme
	}
	var sb strings.Builder
	sb.WriteString("n\x00")
	sb.WriteString(q.Scheme)
	sb.WriteString("\x00e\x00")
	sb.WriteString(q.Expr)
	for _, m := range q.Minus {
		sb.WriteString("\x00m\x00")
		sb.WriteString(m)
	}
	return sb.String()
}

func (q *SchemeSelector) Resolve() (*coordattack.Scheme, error) {
	key := q.selectorKey()
	if v, ok := resolvedSchemes.Get(key); ok {
		return v.(*coordattack.Scheme), nil
	}
	var sch *coordattack.Scheme
	var err error
	switch {
	case q.Expr != "":
		sch, err = coordattack.ParseScheme(q.Expr)
	case q.Scheme != "":
		sch, err = coordattack.SchemeByName(q.Scheme)
	default:
		return nil, fmt.Errorf("request needs \"scheme\" or \"expr\"")
	}
	if err != nil {
		return nil, err
	}
	if len(q.Minus) > 0 {
		scs := make([]coordattack.Scenario, len(q.Minus))
		for i, m := range q.Minus {
			if scs[i], err = coordattack.ParseScenario(m); err != nil {
				return nil, err
			}
		}
		sch = coordattack.MinusScenarios(sch.Name()+"-custom", sch, scs...)
	}
	resolvedSchemes.Put(key, sch)
	return sch, nil
}

// CanonicalSchemeKey is the canonical cache key of a scheme: a digest of its
// compiled Büchi automaton (alphabet, start, transition table, accepting
// set). Two requests naming the same automaton — "S1" versus the
// expression "[.w]^w | [.b]^w" compiled to an identical DBA, or any
// spelling of the same Minus — share cache entries and singleflight.
// schemeDigests caches each scheme's automaton digest by pointer.
// Resolve hands out memoized pointers, so steady-state traffic hits
// this cache and skips the sha256 walk. Entries are tiny (a pointer and
// a 32-byte string); the crude size cap below only matters if something
// churns through unbounded fresh Scheme values.
var (
	schemeDigests    sync.Map
	schemeDigestsLen atomic.Int64
)

const schemeDigestsMax = 4096

func CanonicalSchemeKey(sch *coordattack.Scheme) string {
	if v, ok := schemeDigests.Load(sch); ok {
		return v.(string)
	}
	key := computeSchemeKey(sch)
	if schemeDigestsLen.Add(1) > schemeDigestsMax {
		// Reset rather than evict: reaching the cap at all means the
		// caller is not using memoized schemes, so precision is moot.
		// (Range+Delete, not Clear — the module predates go1.23.)
		schemeDigests.Range(func(k, _ any) bool {
			schemeDigests.Delete(k)
			return true
		})
		schemeDigestsLen.Store(1)
	}
	schemeDigests.Store(sch, key)
	return key
}

func computeSchemeKey(sch *coordattack.Scheme) string {
	a := sch.Automaton()
	h := sha256.New()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(x)))
		h.Write(buf[:])
	}
	put(a.Alphabet)
	put(int(a.Start))
	put(len(a.Delta))
	for _, row := range a.Delta {
		for _, q := range row {
			put(int(q))
		}
	}
	for _, acc := range a.Accepting {
		if acc {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Cache-key builders for the verdict caches. The coordinator
// (internal/serve/cluster) composes the very same keys, so its warm
// store and a backend's warm store name identical entries identically.

// ClassifyKey keys a classification verdict.
func ClassifyKey(sch *coordattack.Scheme) string {
	return "classify|" + CanonicalSchemeKey(sch)
}

// SolvableKey keys a bounded-round solvability verdict.
func SolvableKey(sch *coordattack.Scheme, horizon int, minRounds bool) string {
	return fmt.Sprintf("solvable|%s|h=%d|min=%v", CanonicalSchemeKey(sch), horizon, minRounds)
}

// NetSolvableKey keys a network solvability verdict.
func NetSolvableKey(g *coordattack.Graph, f, rounds int) string {
	return fmt.Sprintf("netsolve|%s|f=%d|r=%d", CanonicalGraphKey(g), f, rounds)
}

// GraphSelector selects a network topology by kind or explicit edge list.
type GraphSelector struct {
	Graph   string `json:"graph,omitempty"` // complete|cycle|path|grid|hypercube|barbell|theta|wheel|star|petersen|tree|custom
	N       int    `json:"n,omitempty"`
	W       int    `json:"w,omitempty"`
	H       int    `json:"h,omitempty"`
	D       int    `json:"d,omitempty"`
	K       int    `json:"k,omitempty"`
	Bridges int    `json:"bridges,omitempty"`
	Edges   string `json:"edges,omitempty"`
}

func (q *GraphSelector) Resolve() (*coordattack.Graph, error) {
	switch q.Graph {
	case "complete":
		return coordattack.Complete(q.N), nil
	case "cycle":
		return coordattack.Cycle(q.N), nil
	case "path":
		return coordattack.PathGraph(q.N), nil
	case "grid":
		return coordattack.Grid(q.W, q.H), nil
	case "hypercube":
		return coordattack.Hypercube(q.D), nil
	case "barbell":
		return coordattack.Barbell(q.K, max(q.Bridges, 1)), nil
	case "theta":
		return coordattack.Theta(max(q.Bridges, 2), 3), nil
	case "wheel":
		return coordattack.Wheel(q.N), nil
	case "star":
		return coordattack.Star(q.N), nil
	case "petersen":
		return coordattack.Petersen(), nil
	case "tree":
		return coordattack.BinaryTree(q.N), nil
	case "custom":
		return coordattack.ParseEdgeList("custom", q.Edges)
	default:
		return nil, fmt.Errorf("unknown graph %q", q.Graph)
	}
}

// CanonicalGraphKey canonically encodes a topology (vertex count +
// adjacency) for the cache, independent of how the request spelled it.
func CanonicalGraphKey(g *coordattack.Graph) string {
	h := sha256.New()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(x)))
		h.Write(buf[:])
	}
	put(g.N())
	for v := 0; v < g.N(); v++ {
		put(-1)
		for _, u := range g.Neighbors(v) {
			put(u)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// engineOptions builds the per-request engine options: the defaults with
// the server-wide backend selection applied.
func (s *Server) engineOptions() *coordattack.EngineOptions {
	eng := coordattack.EngineDefaults()
	eng.Backend = s.cfg.Backend
	return &eng
}

// engineRunOptions is engineOptions plus a pooled scratch arena, so
// consecutive cache-miss runs reuse the engine's flat tables instead of
// reallocating them. The returned release returns the arena to the
// pool; call it only after the engine run has fully finished.
func (s *Server) engineRunOptions() (*coordattack.EngineOptions, func()) {
	eng := s.engineOptions()
	scr := scratchPool.Get().(*coordattack.EngineScratch)
	eng.Scratch = scr
	return eng, func() { scratchPool.Put(scr) }
}

// isEngineFailure classifies an error for the circuit breaker: deadline
// blowouts and engine faults count, client-shaped errors do not reach
// this path at all (they are rejected before the breaker).
func isEngineFailure(err error) bool { return err != nil }

// heavyCompute runs fn behind the circuit breaker, singleflight, and the
// LRU, under a compute context detached from the request (server
// lifetime + compute budget) so caller disconnects cannot kill shared
// work. Only the singleflight leader talks to the breaker; followers and
// cache hits neither trip nor reset it.
func (s *Server) heavyCompute(rctx context.Context, key string, fn func(ctx context.Context) (any, error)) (val any, cached, shared bool, err error) {
	return s.cache.do(rctx, key, func() (any, error) {
		done, berr := s.brk.Acquire()
		if berr != nil {
			s.m.breakerFF.Add(1)
			return nil, berr
		}
		settled := false
		defer func() {
			if !settled {
				done(true) // fn panicked: settle the breaker before unwinding
			}
		}()
		cctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.ComputeBudget)
		defer cancel()
		v, e := fn(cctx)
		settled = true
		done(isEngineFailure(e))
		return v, e
	})
}

// guard runs fn behind the circuit breaker without the cache — the
// chaos path, whose seeded campaigns run under the request context
// rather than the detached compute budget. Client disconnects
// (context.Canceled) do not count against the breaker; deadline
// blowouts and engine faults do. A panic unwinding through fn settles
// the breaker as a failure so a half-open probe cannot leak.
func (s *Server) guard(fn func() error) error {
	done, berr := s.brk.Acquire()
	if berr != nil {
		s.m.breakerFF.Add(1)
		return berr
	}
	settled := false
	defer func() {
		if !settled {
			done(true)
		}
	}()
	err := fn()
	settled = true
	done(err != nil && !errors.Is(err, context.Canceled))
	return err
}

// writeComputeError maps a compute-path error onto an HTTP status.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	var open BreakerOpenError
	var cp errComputePanic
	switch {
	case errors.As(err, &open):
		w.Header().Set("Retry-After", retryAfterSeconds(open.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: open.Error()})
	case errors.As(err, &cp):
		writeJSON(w, http.StatusInternalServerError, apiError{
			Error:  "internal error; see server log",
			DiagID: cp.DiagID,
		})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.m.timeouts.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "analysis deadline exceeded"})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

// --- /v1/classify -----------------------------------------------------

type classifyResponse struct {
	Scheme      string          `json:"scheme"`
	Description string          `json:"description"`
	Complete    bool            `json:"complete"`
	Solvable    *bool           `json:"solvable,omitempty"`
	Conditions  map[string]bool `json:"conditions,omitempty"`
	Witness     string          `json:"witness,omitempty"`
	Pair        []string        `json:"pair,omitempty"`
	MinRounds   *int            `json:"minRounds,omitempty"`
	Note        string          `json:"note,omitempty"`
	Cached      bool            `json:"cached"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req SchemeSelector
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	sch, err := req.Resolve()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := ClassifyKey(sch)
	val, cached, _, err := s.cache.do(r.Context(), key, func() (any, error) {
		v, cerr := coordattack.Classify(sch)
		resp := classifyResponse{Scheme: sch.Name(), Description: sch.Description()}
		if cerr != nil {
			resp.Note = cerr.Error()
		}
		if v != nil {
			resp.Complete = v.Complete
			if cerr == nil {
				sv := v.Solvable
				resp.Solvable = &sv
				resp.Conditions = map[string]bool{
					"fairMissing":   v.FairMissing,
					"pairMissing":   v.PairMissing,
					"wOmegaMissing": v.WOmegaMissing,
					"bOmegaMissing": v.BOmegaMissing,
				}
				if v.HasWitness {
					resp.Witness = v.Witness.String()
				}
				if v.PairMissing {
					resp.Pair = []string{v.Pair[0].String(), v.Pair[1].String()}
				}
				if v.MinRounds != coordattack.Unbounded {
					mr := v.MinRounds
					resp.MinRounds = &mr
				}
			}
		}
		return resp, nil
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	resp := val.(classifyResponse)
	resp.Cached = cached
	s.writeOK(w, resp)
}

// --- /v1/index, /v1/unindex ------------------------------------------

type indexRequest struct {
	Word string `json:"word"`
}

type indexResponse struct {
	Word  string `json:"word"`
	Index string `json:"index"`
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	var req indexRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	word, err := coordattack.ParseWord(req.Word)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !word.InGamma() {
		s.writeError(w, http.StatusBadRequest, "index is defined over Γ words; %q contains a double omission", req.Word)
		return
	}
	s.writeOK(w, indexResponse{Word: word.String(), Index: coordattack.Index(word).String()})
}

type unindexRequest struct {
	Rounds int    `json:"rounds"`
	Index  string `json:"index"`
}

func (s *Server) handleUnindex(w http.ResponseWriter, r *http.Request) {
	var req unindexRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	k, ok := new(big.Int).SetString(req.Index, 10)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "index %q is not an integer", req.Index)
		return
	}
	word, err := coordattack.UnIndexChecked(req.Rounds, k)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeOK(w, indexResponse{Word: word.String(), Index: req.Index})
}

// --- /v1/solvable -----------------------------------------------------

type solvableRequest struct {
	SchemeSelector
	// Horizon runs the full analysis at one fixed horizon.
	Horizon int `json:"horizon,omitempty"`
	// MinRounds searches for the smallest solvable horizon ≤ MaxHorizon.
	MinRounds  bool `json:"minRounds,omitempty"`
	MaxHorizon int  `json:"maxHorizon,omitempty"`
}

// solvableResponse (and the net/chaos response types below) are
// aliases for the wire verdict structs: the JSON tags and the binary
// frame layout live together in internal/serve/wire, so the two
// encodings cannot drift apart.
type solvableResponse = wire.Solvable

func (s *Server) handleSolvable(w http.ResponseWriter, r *http.Request) {
	var req solvableRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	sch, err := req.Resolve()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	horizon := req.Horizon
	if req.MinRounds {
		horizon = req.MaxHorizon
	}
	if horizon < 0 || horizon > s.cfg.MaxHorizon {
		s.writeError(w, http.StatusBadRequest, "horizon %d out of range [0, %d]", horizon, s.cfg.MaxHorizon)
		return
	}
	key := SolvableKey(sch, horizon, req.MinRounds)
	start := s.cfg.Clock()
	val, cached, shared, err := s.heavyCompute(r.Context(), key, func(ctx context.Context) (any, error) {
		return s.solveVerdict(ctx, sch, horizon, req.MinRounds)
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	resp := val.(solvableResponse)
	resp.Cached, resp.Shared = cached, shared
	resp.ElapsedMs = s.cfg.Clock().Sub(start).Milliseconds()
	s.writeVerdict(w, r, resp)
}

// solveVerdict runs one bounded-round solvability analysis and shapes
// the verdict. Callers patch Cached/Shared/ElapsedMs afterwards. The
// engine run borrows a pooled scratch arena.
func (s *Server) solveVerdict(ctx context.Context, sch *coordattack.Scheme, horizon int, minRounds bool) (any, error) {
	eng, release := s.engineRunOptions()
	defer release()
	resp := solvableResponse{Scheme: sch.Name(), Horizon: horizon}
	rep, err := coordattack.Analyze(ctx, coordattack.RoundsRequest{
		Scheme:      sch,
		Horizon:     horizon,
		MinRounds:   minRounds,
		VerdictOnly: minRounds,
		Observer:    s.engine.observe,
		Engine:      eng,
	})
	if err != nil {
		return nil, err
	}
	if minRounds {
		found := rep.Found
		resp.Found = &found
		resp.Solvable = found
		if found {
			resp.Horizon = rep.Rounds
		}
	} else {
		resp.Solvable = rep.Solvable
		resp.Configs = rep.Configs
		if rep.ConfigsExact != nil {
			resp.ConfigsExact = rep.ConfigsExact.String()
		}
		resp.Components = rep.Components
		resp.MixedComponents = rep.MixedComponents
	}
	resp.Engine = engineStatsOf(rep.Stats)
	return resp, nil
}

// --- /v1/net/solvable -------------------------------------------------

type netSolvableRequest struct {
	GraphSelector
	F      int `json:"f"`
	Rounds int `json:"rounds"`
}

type netSolvableResponse = wire.NetSolvable

func (s *Server) handleNetSolvable(w http.ResponseWriter, r *http.Request) {
	var req netSolvableRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	g, badReq := s.validateNetRequest(&req)
	if badReq != "" {
		s.writeError(w, http.StatusBadRequest, "%s", badReq)
		return
	}
	key := NetSolvableKey(g, req.F, req.Rounds)
	start := s.cfg.Clock()
	val, cached, _, err := s.heavyCompute(r.Context(), key, func(ctx context.Context) (any, error) {
		return s.netVerdict(ctx, g, req.F, req.Rounds)
	})
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	resp := val.(netSolvableResponse)
	resp.Cached = cached
	resp.ElapsedMs = s.cfg.Clock().Sub(start).Milliseconds()
	s.writeVerdict(w, r, resp)
}

// netVerdict runs one network solvability analysis and shapes the
// verdict; callers patch Cached/ElapsedMs afterwards. The engine run
// borrows a pooled scratch arena.
func (s *Server) netVerdict(ctx context.Context, g *coordattack.Graph, f, rounds int) (any, error) {
	eng, release := s.engineRunOptions()
	defer release()
	rep, err := coordattack.AnalyzeNet(ctx, coordattack.NetAnalysisRequest{
		Graph:       g,
		F:           f,
		Horizon:     rounds,
		VerdictOnly: true,
		Observer:    s.engine.observe,
		Engine:      eng,
	})
	if err != nil {
		return nil, err
	}
	c := g.EdgeConnectivity()
	return netSolvableResponse{
		Graph:            g.Name(),
		N:                g.N(),
		F:                f,
		Rounds:           rounds,
		Solvable:         rep.Solvable,
		EdgeConnectivity: c,
		TheoremV1:        f < c,
		Engine:           engineStatsOf(rep.Stats),
	}, nil
}

// validateNetRequest resolves and bounds-checks one netSolvableRequest.
// Shared by the single handler and the batch tier so both reject the
// same inputs identically.
func (s *Server) validateNetRequest(req *netSolvableRequest) (*coordattack.Graph, string) {
	g, err := req.Resolve()
	if err != nil {
		return nil, err.Error()
	}
	if g.N() < 2 || g.N() > s.cfg.MaxProcs {
		return nil, fmt.Sprintf("graph size %d out of range [2, %d]", g.N(), s.cfg.MaxProcs)
	}
	if req.Rounds < 0 || req.Rounds > s.cfg.MaxHorizon {
		return nil, fmt.Sprintf("rounds %d out of range [0, %d]", req.Rounds, s.cfg.MaxHorizon)
	}
	if req.F < 0 {
		return nil, "f must be ≥ 0"
	}
	return g, ""
}

// --- /v1/chaos --------------------------------------------------------

type chaosRequest struct {
	SchemeSelector
	Executions    int   `json:"executions,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	MaxPrefix     int   `json:"maxPrefix,omitempty"`
	MaxRounds     int   `json:"maxRounds,omitempty"`
	NoInvariant   bool  `json:"noInvariant,omitempty"`
	NoShrink      bool  `json:"noShrink,omitempty"`
	MaxViolations int   `json:"maxViolations,omitempty"`
}

type (
	chaosViolation = wire.ChaosViolation
	chaosResponse  = wire.Chaos
)

// validateChaosRequest resolves and bounds-checks one chaosRequest.
// Shared by the single handler and the batch tier so both reject the
// same inputs identically.
func (s *Server) validateChaosRequest(req *chaosRequest) (*coordattack.Scheme, chaos.Algorithm, string) {
	sch, err := req.Resolve()
	if err != nil {
		return nil, chaos.Algorithm{}, err.Error()
	}
	if req.Executions > s.cfg.MaxExecutions {
		return nil, chaos.Algorithm{}, fmt.Sprintf("executions %d exceeds cap %d", req.Executions, s.cfg.MaxExecutions)
	}
	algo, err := chaos.AWForScheme(sch)
	if err != nil {
		return nil, chaos.Algorithm{}, err.Error()
	}
	return sch, algo, ""
}

// chaosCampaign runs one seeded campaign under ctx and shapes the
// report. The report pointer is returned even on error, so callers can
// surface partial-progress information on an interrupt.
func (s *Server) chaosCampaign(ctx context.Context, sch *coordattack.Scheme, algo chaos.Algorithm, req *chaosRequest) (*chaos.Report, chaosResponse, error) {
	rep, err := chaos.RunCampaignCtx(ctx, chaos.Config{
		Scheme:         sch,
		Algo:           algo,
		Executions:     req.Executions,
		Seed:           req.Seed,
		MaxPrefix:      req.MaxPrefix,
		MaxRounds:      req.MaxRounds,
		CheckInvariant: !req.NoInvariant,
		NoShrink:       req.NoShrink,
		MaxViolations:  req.MaxViolations,
	})
	if err != nil {
		return rep, chaosResponse{}, err
	}
	resp := chaosResponse{
		Scheme:     rep.Scheme,
		Algorithm:  rep.Algorithm,
		Seed:       rep.Seed,
		Executions: rep.Executions,
		Rounds:     rep.Rounds,
		OK:         rep.OK(),
	}
	for _, v := range rep.Violations {
		cv := chaosViolation{
			Property:  string(v.Property),
			Detail:    v.Detail,
			Scenario:  v.Scenario.String(),
			Seed:      v.Seed,
			Execution: v.Execution,
		}
		if v.Minimized {
			cv.Minimized = v.MinScenario.String()
		}
		resp.Violations = append(resp.Violations, cv)
	}
	return rep, resp, nil
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req chaosRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	sch, algo, badReq := s.validateChaosRequest(&req)
	if badReq != "" {
		s.writeError(w, http.StatusBadRequest, "%s", badReq)
		return
	}
	start := s.cfg.Clock()
	var rep *chaos.Report
	var resp chaosResponse
	err := s.guard(func() error {
		var cerr error
		rep, resp, cerr = s.chaosCampaign(r.Context(), sch, algo, &req)
		return cerr
	})
	if err != nil {
		if rep != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			s.m.timeouts.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, apiError{
				Error: fmt.Sprintf("campaign interrupted after %d executions: %v", rep.Executions, err),
			})
			return
		}
		s.writeComputeError(w, err)
		return
	}
	resp.ElapsedMs = s.cfg.Clock().Sub(start).Milliseconds()
	s.writeVerdict(w, r, resp)
}
