package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"testing"

	"repro/internal/serve/wire"
)

// The serve hot path is allocation-budgeted: a cached-hit /v1/solvable
// request — the steady state of a warm node — must stay within
// serveAllocBudget allocations end to end (middleware, admission,
// decode, key, cache lookup, pooled encode). The budget is pinned by
// TestServeSolveAllocsGate the way TestInternerTupleHitZeroAllocs pins
// the interner, so a regression fails `go test`, not just a benchmark
// somebody has to remember to run.
const serveAllocBudget = 24

// nopRW is the cheapest possible ResponseWriter: the benchmark measures
// the server's allocations, not a recorder's.
type nopRW struct {
	h http.Header
}

func (w *nopRW) Header() http.Header         { return w.h }
func (w *nopRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopRW) WriteHeader(int)             {}

// replayBody is a rewindable request body, so one request struct can be
// driven through the handler arbitrarily many times.
type replayBody struct {
	*bytes.Reader
}

func (replayBody) Close() error { return nil }

// solveHitDriver returns a closure that drives one cached-hit
// /v1/solvable request through the full middleware stack, plus the
// handler for it. The first call (the cache miss that computes the
// verdict) is made before returning, so every driven call is a hit.
// accept, when non-empty, rides along as the Accept header so the
// binary hot path can be driven through the same harness.
func solveHitDriver(tb testing.TB, accept string) func() {
	tb.Helper()
	s := New(Config{Logf: func(string, ...any) {}})
	h := s.Handler()
	body := []byte(`{"scheme":"S1","horizon":3}`)
	u, err := url.Parse("/v1/solvable")
	if err != nil {
		tb.Fatal(err)
	}
	br := &replayBody{bytes.NewReader(body)}
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	if accept != "" {
		hdr.Set("Accept", accept)
	}
	req := &http.Request{
		Method:        http.MethodPost,
		URL:           u,
		Header:        hdr,
		Body:          br,
		ContentLength: int64(len(body)),
	}
	w := &nopRW{h: make(http.Header)}
	run := func() {
		br.Seek(0, io.SeekStart)
		clear(w.h)
		h.ServeHTTP(w, req)
	}
	run() // prime: the one real engine run
	if got := s.cache.hits.Load(); got == 0 {
		run()
		if s.cache.hits.Load() == 0 {
			tb.Fatal("driver never hits the cache; benchmark would measure engine runs")
		}
	}
	return run
}

// BenchmarkServeSolveAllocs measures the cached-hit service hot path
// from request to encoded verdict. Run with -benchmem; allocs/op is the
// number TestServeSolveAllocsGate pins.
func BenchmarkServeSolveAllocs(b *testing.B) {
	run := solveHitDriver(b, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkServeSolveBinaryAllocs is the same hot path negotiating the
// binary verdict frame instead of pooled JSON.
func BenchmarkServeSolveBinaryAllocs(b *testing.B) {
	run := solveHitDriver(b, wire.AcceptVerdict)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// TestServeSolveAllocsGate fails the build when the cached-hit path
// regresses past serveAllocBudget allocations per request.
func TestServeSolveAllocsGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates alloc counts; the gate runs unraced")
	}
	run := solveHitDriver(t, "")
	// Warm the pools before measuring: steady state is what's budgeted.
	for i := 0; i < 32; i++ {
		run()
	}
	if a := testing.AllocsPerRun(200, run); a > serveAllocBudget {
		t.Fatalf("cached-hit /v1/solvable allocates %v/request, budget is %d", a, serveAllocBudget)
	}
}

// serveBinaryAllocBudget pins the binary hot path's own budget: frame
// encoding writes positional fields into a pooled buffer with no
// reflection, so it must stay at least as lean as the JSON path.
const serveBinaryAllocBudget = 24

// TestServeSolveBinaryAllocsGate is TestServeSolveAllocsGate for a
// caller that negotiated the binary encoding.
func TestServeSolveBinaryAllocsGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates alloc counts; the gate runs unraced")
	}
	run := solveHitDriver(t, wire.AcceptVerdict)
	for i := 0; i < 32; i++ {
		run()
	}
	if a := testing.AllocsPerRun(200, run); a > serveBinaryAllocBudget {
		t.Fatalf("cached-hit binary /v1/solvable allocates %v/request, budget is %d", a, serveBinaryAllocBudget)
	}
}
