package wire

import (
	"encoding/json"
	"fmt"
	"strings"
)

// The verdict structs live here — with their JSON tags — so the JSON
// bodies the service has always produced and the binary frames are two
// encodings of one source of truth. internal/serve aliases these types;
// the coordinator transcodes between the encodings via these structs.

// EngineStats is the per-response engine instrumentation block, cached
// alongside the verdict so repeat queries can still show what the
// original computation cost.
type EngineStats struct {
	Rounds          int   `json:"rounds"`
	Configs         int64 `json:"configs"`
	Vertices        int   `json:"vertices"`
	Components      int   `json:"components"`
	MixedComponents int   `json:"mixedComponents"`
	Merges          int   `json:"merges"`
	ViewsInterned   int   `json:"viewsInterned"`
	Workers         int   `json:"workers"`
	// Frontier dedup gauges: raw nodes before hash-consing, distinct
	// configurations after, and their ratio (1 when dedup never ran —
	// see fullinfo.Stats).
	FrontierRaw      int64   `json:"frontierRaw"`
	FrontierDistinct int64   `json:"frontierDistinct"`
	DedupRatio       float64 `json:"dedupRatio"`
	// Symbolic interval-walk gauges, present only when the symbolic
	// backend ran (or was requested and fell back): rounds advanced
	// symbolically, the final and peak interval counts, the
	// intervals-per-run fragmentation ratio, and fallback events.
	SymbolicRounds     int     `json:"symbolicRounds,omitempty"`
	Intervals          int     `json:"intervals,omitempty"`
	IntervalRuns       int     `json:"intervalRuns,omitempty"`
	IntervalsPeak      int     `json:"intervalsPeak,omitempty"`
	FragmentationRatio float64 `json:"fragmentationRatio,omitempty"`
	SymbolicFallbacks  int     `json:"symbolicFallbacks,omitempty"`
	WallNanos          int64   `json:"wallNanos"`
}

func (e *EngineStats) appendPayload(dst []byte) []byte {
	dst = appendInt(dst, int64(e.Rounds))
	dst = appendInt(dst, e.Configs)
	dst = appendInt(dst, int64(e.Vertices))
	dst = appendInt(dst, int64(e.Components))
	dst = appendInt(dst, int64(e.MixedComponents))
	dst = appendInt(dst, int64(e.Merges))
	dst = appendInt(dst, int64(e.ViewsInterned))
	dst = appendInt(dst, int64(e.Workers))
	dst = appendInt(dst, e.FrontierRaw)
	dst = appendInt(dst, e.FrontierDistinct)
	dst = appendFloat(dst, e.DedupRatio)
	dst = appendInt(dst, int64(e.SymbolicRounds))
	dst = appendInt(dst, int64(e.Intervals))
	dst = appendInt(dst, int64(e.IntervalRuns))
	dst = appendInt(dst, int64(e.IntervalsPeak))
	dst = appendFloat(dst, e.FragmentationRatio)
	dst = appendInt(dst, int64(e.SymbolicFallbacks))
	dst = appendInt(dst, e.WallNanos)
	return dst
}

func (e *EngineStats) decode(r *reader) {
	e.Rounds = int(r.int())
	e.Configs = r.int()
	e.Vertices = int(r.int())
	e.Components = int(r.int())
	e.MixedComponents = int(r.int())
	e.Merges = int(r.int())
	e.ViewsInterned = int(r.int())
	e.Workers = int(r.int())
	e.FrontierRaw = r.int()
	e.FrontierDistinct = r.int()
	e.DedupRatio = r.float()
	e.SymbolicRounds = int(r.int())
	e.Intervals = int(r.int())
	e.IntervalRuns = int(r.int())
	e.IntervalsPeak = int(r.int())
	e.FragmentationRatio = r.float()
	e.SymbolicFallbacks = int(r.int())
	e.WallNanos = r.int()
}

// appendEngine encodes an optional engine block: presence byte + block.
func appendEngine(dst []byte, e *EngineStats) []byte {
	if e == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return e.appendPayload(dst)
}

func decodeEngine(r *reader) *EngineStats {
	if !r.bool() || r.err != nil {
		return nil
	}
	e := new(EngineStats)
	e.decode(r)
	return e
}

// Solvable is the /v1/solvable verdict (bounded-round solvability of a
// two-general omission scheme).
type Solvable struct {
	Scheme   string `json:"scheme"`
	Horizon  int    `json:"horizon"`
	Solvable bool   `json:"solvable"`
	Found    *bool  `json:"found,omitempty"` // minRounds search outcome
	Configs  int    `json:"configs,omitempty"`
	// ConfigsExact carries the exact decimal configuration count when it
	// overflowed the Configs int (deep symbolic horizons); empty otherwise.
	ConfigsExact    string       `json:"configsExact,omitempty"`
	Components      int          `json:"components,omitempty"`
	MixedComponents int          `json:"mixedComponents,omitempty"`
	Engine          *EngineStats `json:"engine,omitempty"`
	Cached          bool         `json:"cached"`
	Shared          bool         `json:"shared"`
	ElapsedMs       int64        `json:"elapsedMs"`
}

func (v *Solvable) appendPayload(dst []byte) []byte {
	dst = appendString(dst, v.Scheme)
	dst = appendInt(dst, int64(v.Horizon))
	dst = appendBool(dst, v.Solvable)
	if v.Found == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendBool(dst, *v.Found)
	}
	dst = appendInt(dst, int64(v.Configs))
	dst = appendBigDecimal(dst, v.ConfigsExact)
	dst = appendInt(dst, int64(v.Components))
	dst = appendInt(dst, int64(v.MixedComponents))
	dst = appendEngine(dst, v.Engine)
	dst = appendBool(dst, v.Cached)
	dst = appendBool(dst, v.Shared)
	dst = appendInt(dst, v.ElapsedMs)
	return dst
}

func (v *Solvable) decode(r *reader) {
	v.Scheme = r.string()
	v.Horizon = int(r.int())
	v.Solvable = r.bool()
	if r.bool() {
		f := r.bool()
		if r.err == nil {
			v.Found = &f
		}
	}
	v.Configs = int(r.int())
	v.ConfigsExact = r.bigDecimal()
	v.Components = int(r.int())
	v.MixedComponents = int(r.int())
	v.Engine = decodeEngine(r)
	v.Cached = r.bool()
	v.Shared = r.bool()
	v.ElapsedMs = r.int()
}

// NetSolvable is the /v1/net/solvable verdict (n-process network
// solvability under f-bounded omissions).
type NetSolvable struct {
	Graph            string       `json:"graph"`
	N                int          `json:"n"`
	F                int          `json:"f"`
	Rounds           int          `json:"rounds"`
	Solvable         bool         `json:"solvable"`
	EdgeConnectivity int          `json:"edgeConnectivity"`
	TheoremV1        bool         `json:"theoremV1Solvable"` // f < c(G)
	Engine           *EngineStats `json:"engine,omitempty"`
	Cached           bool         `json:"cached"`
	ElapsedMs        int64        `json:"elapsedMs"`
}

func (v *NetSolvable) appendPayload(dst []byte) []byte {
	dst = appendString(dst, v.Graph)
	dst = appendInt(dst, int64(v.N))
	dst = appendInt(dst, int64(v.F))
	dst = appendInt(dst, int64(v.Rounds))
	dst = appendBool(dst, v.Solvable)
	dst = appendInt(dst, int64(v.EdgeConnectivity))
	dst = appendBool(dst, v.TheoremV1)
	dst = appendEngine(dst, v.Engine)
	dst = appendBool(dst, v.Cached)
	dst = appendInt(dst, v.ElapsedMs)
	return dst
}

func (v *NetSolvable) decode(r *reader) {
	v.Graph = r.string()
	v.N = int(r.int())
	v.F = int(r.int())
	v.Rounds = int(r.int())
	v.Solvable = r.bool()
	v.EdgeConnectivity = int(r.int())
	v.TheoremV1 = r.bool()
	v.Engine = decodeEngine(r)
	v.Cached = r.bool()
	v.ElapsedMs = r.int()
}

// ChaosViolation is one property violation found by a chaos campaign.
type ChaosViolation struct {
	Property  string `json:"property"`
	Detail    string `json:"detail"`
	Scenario  string `json:"scenario"`
	Minimized string `json:"minimized,omitempty"`
	Seed      int64  `json:"seed"`
	Execution int    `json:"execution"`
}

// Chaos is the /v1/chaos campaign report.
type Chaos struct {
	Scheme     string           `json:"scheme"`
	Algorithm  string           `json:"algorithm"`
	Seed       int64            `json:"seed"`
	Executions int              `json:"executions"`
	Rounds     int64            `json:"rounds"`
	OK         bool             `json:"ok"`
	Violations []ChaosViolation `json:"violations,omitempty"`
	ElapsedMs  int64            `json:"elapsedMs"`
}

func (v *Chaos) appendPayload(dst []byte) []byte {
	dst = appendString(dst, v.Scheme)
	dst = appendString(dst, v.Algorithm)
	dst = appendInt(dst, v.Seed)
	dst = appendInt(dst, int64(v.Executions))
	dst = appendInt(dst, v.Rounds)
	dst = appendBool(dst, v.OK)
	dst = appendUint(dst, uint64(len(v.Violations)))
	for i := range v.Violations {
		cv := &v.Violations[i]
		dst = appendString(dst, cv.Property)
		dst = appendString(dst, cv.Detail)
		dst = appendString(dst, cv.Scenario)
		dst = appendString(dst, cv.Minimized)
		dst = appendInt(dst, cv.Seed)
		dst = appendInt(dst, int64(cv.Execution))
	}
	dst = appendInt(dst, v.ElapsedMs)
	return dst
}

func (v *Chaos) decode(r *reader) {
	v.Scheme = r.string()
	v.Algorithm = r.string()
	v.Seed = r.int()
	v.Executions = int(r.int())
	v.Rounds = r.int()
	v.OK = r.bool()
	n := r.uint()
	// Each violation costs at least 8 payload bytes (six fields); a
	// count past the remaining bytes is corruption, not an allocation
	// request.
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail()
	}
	if r.err == nil && n > 0 {
		v.Violations = make([]ChaosViolation, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			v.Violations = append(v.Violations, ChaosViolation{
				Property:  r.string(),
				Detail:    r.string(),
				Scenario:  r.string(),
				Minimized: r.string(),
				Seed:      r.int(),
				Execution: int(r.int()),
			})
		}
	}
	v.ElapsedMs = r.int()
}

// Raw is a verdict already in frame form: its payload is embedded into
// a BatchLine without a decode/re-encode round trip. The coordinator
// uses it to stream shard-side frames through to binary callers.
type Raw struct {
	Kind    Kind
	Payload []byte
}

// MarshalJSON transcodes the raw frame payload into the verdict's JSON
// form, so a BatchLine holding a Raw still JSON-encodes correctly.
func (rw Raw) MarshalJSON() ([]byte, error) {
	v, err := unmarshalPayload(rw.Kind, rw.Payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// BatchLine is one per-item record of a batch response stream, shared
// by the node's batch endpoints and the coordinator's mirrors. Status
// is what the single-item endpoint would have answered for the item;
// Cached marks coordinator cache/warm hits (the node never sets it).
// Verdict holds *Solvable, *NetSolvable, *Chaos, or Raw.
type BatchLine struct {
	Index   int    `json:"index"`
	Status  int    `json:"status"`
	Cached  bool   `json:"cached,omitempty"`
	Verdict any    `json:"verdict,omitempty"`
	Error   string `json:"error,omitempty"`
	DiagID  string `json:"diagId,omitempty"`
}

func (l *BatchLine) appendPayload(dst []byte) ([]byte, error) {
	dst = appendUint(dst, uint64(l.Index))
	dst = appendUint(dst, uint64(l.Status))
	dst = appendBool(dst, l.Cached)
	dst = appendString(dst, l.Error)
	dst = appendString(dst, l.DiagID)
	switch v := l.Verdict.(type) {
	case nil:
		dst = append(dst, byte(KindInvalid))
	case *Solvable:
		dst = append(dst, byte(KindSolvable))
		dst = v.appendPayload(dst)
	case *NetSolvable:
		dst = append(dst, byte(KindNetSolvable))
		dst = v.appendPayload(dst)
	case *Chaos:
		dst = append(dst, byte(KindChaos))
		dst = v.appendPayload(dst)
	case Raw:
		dst = append(dst, byte(v.Kind))
		dst = append(dst, v.Payload...)
	default:
		return dst, fmt.Errorf("wire: unencodable batch verdict %T", l.Verdict)
	}
	return dst, nil
}

// DecodeBatchLine decodes one KindBatchLine payload. The embedded
// verdict comes back typed (*Solvable, *NetSolvable, *Chaos) or nil.
func DecodeBatchLine(payload []byte) (*BatchLine, error) {
	r := &reader{b: payload}
	l := &BatchLine{
		Index:  int(r.uint()),
		Status: int(r.uint()),
		Cached: r.bool(),
		Error:  r.string(),
		DiagID: r.string(),
	}
	k := Kind(r.byte())
	if r.err != nil {
		return nil, r.err
	}
	if k != KindInvalid {
		v, err := unmarshalPayload(k, r.b)
		if err != nil {
			return nil, err
		}
		l.Verdict = v
	}
	return l, nil
}

// AppendVerdict appends v as one frame. Accepted values: Solvable,
// NetSolvable, Chaos (value or pointer), *BatchLine, and Raw.
func AppendVerdict(dst []byte, v any) ([]byte, error) {
	switch t := v.(type) {
	case Solvable:
		dst, start := beginFrame(dst, KindSolvable)
		return endFrame(t.appendPayload(dst), start), nil
	case *Solvable:
		dst, start := beginFrame(dst, KindSolvable)
		return endFrame(t.appendPayload(dst), start), nil
	case NetSolvable:
		dst, start := beginFrame(dst, KindNetSolvable)
		return endFrame(t.appendPayload(dst), start), nil
	case *NetSolvable:
		dst, start := beginFrame(dst, KindNetSolvable)
		return endFrame(t.appendPayload(dst), start), nil
	case Chaos:
		dst, start := beginFrame(dst, KindChaos)
		return endFrame(t.appendPayload(dst), start), nil
	case *Chaos:
		dst, start := beginFrame(dst, KindChaos)
		return endFrame(t.appendPayload(dst), start), nil
	case *BatchLine:
		dst, start := beginFrame(dst, KindBatchLine)
		out, err := t.appendPayload(dst)
		if err != nil {
			return out[:start-headerLen], err
		}
		return endFrame(out, start), nil
	case Raw:
		dst, start := beginFrame(dst, t.Kind)
		return endFrame(append(dst, t.Payload...), start), nil
	default:
		return dst, fmt.Errorf("wire: unencodable verdict %T", v)
	}
}

// Marshal encodes v as one frame in a fresh buffer.
func Marshal(v any) ([]byte, error) {
	return AppendVerdict(nil, v)
}

// unmarshalPayload decodes one payload of the given kind into its typed
// verdict pointer.
func unmarshalPayload(kind Kind, payload []byte) (any, error) {
	r := &reader{b: payload}
	var v any
	switch kind {
	case KindSolvable:
		s := new(Solvable)
		s.decode(r)
		v = s
	case KindNetSolvable:
		s := new(NetSolvable)
		s.decode(r)
		v = s
	case KindChaos:
		s := new(Chaos)
		s.decode(r)
		v = s
	case KindBatchLine:
		return DecodeBatchLine(payload)
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", byte(kind))
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		// Trailing garbage means a layout mismatch; refuse rather than
		// return a half-right verdict.
		return nil, errMalformed
	}
	return v, nil
}

// Unmarshal decodes the first frame of b into its typed verdict
// (*Solvable, *NetSolvable, *Chaos, or *BatchLine).
func Unmarshal(b []byte) (any, error) {
	kind, payload, _, err := DecodeFrame(b)
	if err != nil {
		return nil, err
	}
	return unmarshalPayload(kind, payload)
}

// UnmarshalInto decodes the first frame of b into dst, which must be a
// pointer to the verdict type matching the frame's kind.
func UnmarshalInto(b []byte, dst any) error {
	kind, payload, _, err := DecodeFrame(b)
	if err != nil {
		return err
	}
	v, err := unmarshalPayload(kind, payload)
	if err != nil {
		return err
	}
	switch d := dst.(type) {
	case *Solvable:
		if s, ok := v.(*Solvable); ok {
			*d = *s
			return nil
		}
	case *NetSolvable:
		if s, ok := v.(*NetSolvable); ok {
			*d = *s
			return nil
		}
	case *Chaos:
		if s, ok := v.(*Chaos); ok {
			*d = *s
			return nil
		}
	case *BatchLine:
		if s, ok := v.(*BatchLine); ok {
			*d = *s
			return nil
		}
	default:
		return fmt.Errorf("wire: cannot decode into %T", dst)
	}
	return fmt.Errorf("wire: frame kind %s does not match %T", kind, dst)
}

// KindForKey maps a canonical cache-key prefix ("solvable|…",
// "netsolve|…") to its frame kind. Keys without a binary encoding
// (classify) report false — those verdicts travel as JSON only.
func KindForKey(key string) (Kind, bool) {
	op, _, ok := strings.Cut(key, "|")
	if !ok {
		return KindInvalid, false
	}
	switch op {
	case "solvable":
		return KindSolvable, true
	case "netsolve":
		return KindNetSolvable, true
	}
	return KindInvalid, false
}

// FrameToJSON transcodes one verdict frame into its JSON encoding —
// pretty-printed with indent (the service's whole-body format) or
// compact when indent is empty.
func FrameToJSON(b []byte, indent string) ([]byte, error) {
	v, err := Unmarshal(b)
	if err != nil {
		return nil, err
	}
	if indent == "" {
		return json.Marshal(v)
	}
	return json.MarshalIndent(v, "", indent)
}

// JSONToFrame transcodes a JSON verdict body of the given kind into a
// frame.
func JSONToFrame(kind Kind, j []byte) ([]byte, error) {
	var v any
	switch kind {
	case KindSolvable:
		v = new(Solvable)
	case KindNetSolvable:
		v = new(NetSolvable)
	case KindChaos:
		v = new(Chaos)
	default:
		return nil, fmt.Errorf("wire: no frame encoding for kind %d", byte(kind))
	}
	if err := json.Unmarshal(j, v); err != nil {
		return nil, err
	}
	return Marshal(v)
}
