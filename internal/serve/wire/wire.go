// Package wire is the compact binary verdict codec shared by the
// capserved node, the streaming client, the cluster coordinator, and
// the warm verdict store. A verdict travels as one length-prefixed
// frame:
//
//	magic(2) version(1) kind(1) payloadLen(uint32 LE) payload
//
// Payloads are positional field encodings per kind: varint counters
// (unsigned for sizes, zigzag for signed values), length-prefixed
// strings, single-byte bools, fixed 8-byte floats, and an explicit
// big-int encoding for ConfigsExact so exact configuration counts past
// int64 survive the trip byte-for-byte — the binary analogue of the
// warm store's typed JSON decode.
//
// Content negotiation happens over plain HTTP Accept/Content-Type with
// the media types below. JSON remains the default and the fallback:
// every frame kind marshals to exactly the same JSON the service has
// always produced (the verdict structs live here, with their JSON tags),
// so a decoder that does not understand frames loses nothing but bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
)

// Media types for content negotiation. A client asks for frames by
// listing the binary type in Accept; the server answers with whichever
// type it actually wrote in Content-Type.
const (
	// MediaTypeVerdict is one verdict frame (single-item endpoints).
	MediaTypeVerdict = "application/x-capverdict"
	// MediaTypeVerdictStream is a sequence of BatchLine frames (batch
	// endpoints) — the binary analogue of application/x-ndjson.
	MediaTypeVerdictStream = "application/x-capverdict-stream"
	// AcceptVerdict / AcceptVerdictStream are the Accept values a
	// binary-capable client sends: frames preferred, JSON accepted.
	AcceptVerdict       = MediaTypeVerdict + ", application/json"
	AcceptVerdictStream = MediaTypeVerdictStream + ", application/x-ndjson"
)

// Frame constants.
const (
	magic0 = 0xCA
	magic1 = 0x7E
	// Version is the frame payload layout version. Decoders reject
	// frames from a newer layout; the client then falls back to JSON.
	Version = 1
	// headerLen is magic(2) + version(1) + kind(1) + length(4).
	headerLen = 8
	// MaxFramePayload bounds one frame's payload; a length field past it
	// is treated as corruption, not an allocation request.
	MaxFramePayload = 64 << 20
)

// Kind identifies a frame's payload type.
type Kind byte

const (
	KindInvalid     Kind = 0
	KindSolvable    Kind = 1
	KindNetSolvable Kind = 2
	KindChaos       Kind = 3
	KindBatchLine   Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindSolvable:
		return "solvable"
	case KindNetSolvable:
		return "netsolvable"
	case KindChaos:
		return "chaos"
	case KindBatchLine:
		return "batchline"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// ErrNotFrame reports bytes that do not start with a frame header —
// the signal to fall back to the JSON decode path.
var ErrNotFrame = errors.New("wire: not a verdict frame")

// ErrVersion reports a well-formed frame from a newer layout version.
var ErrVersion = errors.New("wire: unsupported frame version")

var errMalformed = errors.New("wire: malformed frame payload")

// IsFrame reports whether b starts with a verdict frame header.
func IsFrame(b []byte) bool {
	return len(b) >= 2 && b[0] == magic0 && b[1] == magic1
}

// beginFrame appends a frame header for kind with a zero length field
// and returns the payload start offset; endFrame patches the length in.
// Split (rather than taking an encode closure) so hot-path callers pay
// no closure allocation.
func beginFrame(dst []byte, kind Kind) ([]byte, int) {
	dst = append(dst, magic0, magic1, Version, byte(kind), 0, 0, 0, 0)
	return dst, len(dst)
}

func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start-4:start], uint32(len(dst)-start))
	return dst
}

// DecodeFrame splits one frame off the front of b: its kind, its
// payload, and the remaining bytes. ErrNotFrame means b is something
// else entirely (JSON, typically); ErrVersion means a newer encoder.
func DecodeFrame(b []byte) (kind Kind, payload, rest []byte, err error) {
	if !IsFrame(b) {
		return 0, nil, b, ErrNotFrame
	}
	if len(b) < headerLen {
		return 0, nil, b, errMalformed
	}
	if b[2] != Version {
		return 0, nil, b, ErrVersion
	}
	kind = Kind(b[3])
	n := binary.LittleEndian.Uint32(b[4:8])
	if n > MaxFramePayload || int(n) > len(b)-headerLen {
		return 0, nil, b, errMalformed
	}
	return kind, b[headerLen : headerLen+int(n)], b[headerLen+int(n):], nil
}

// Encoding primitives. All integers are varints: unsigned for counts
// and lengths, zigzag for fields that may legitimately be negative.

func appendUint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendInt(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }
func appendFloat(dst []byte, v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(dst, buf[:]...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Big-decimal markers for appendBigDecimal.
const (
	bigAbsent   = 0 // empty string
	bigInt      = 1 // sign byte + magnitude bytes
	bigVerbatim = 2 // defensive: a string big.Int would not round-trip
)

// appendBigDecimal encodes a decimal integer string (ConfigsExact) as
// sign + magnitude so arbitrarily large exact counts survive without
// ever passing through a float. Strings that are not canonical decimal
// integers travel verbatim instead of being silently canonicalized.
func appendBigDecimal(dst []byte, s string) []byte {
	if s == "" {
		return append(dst, bigAbsent)
	}
	n, ok := new(big.Int).SetString(s, 10)
	if !ok || n.String() != s {
		dst = append(dst, bigVerbatim)
		return appendString(dst, s)
	}
	dst = append(dst, bigInt)
	dst = appendBool(dst, n.Sign() < 0)
	mag := n.Bytes()
	dst = binary.AppendUvarint(dst, uint64(len(mag)))
	return append(dst, mag...)
}

// reader is a fail-latching payload decoder: the first malformed field
// poisons it and every later read returns zero values, so decode code
// reads fields linearly and checks err once.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() { r.err = errMalformed }

func (r *reader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.b) < 1 {
		r.fail()
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v != 0
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) string() string {
	n := r.uint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) bigDecimal() string {
	switch r.byte() {
	case bigAbsent:
		return ""
	case bigVerbatim:
		return r.string()
	case bigInt:
		neg := r.bool()
		n := r.uint()
		if r.err != nil {
			return ""
		}
		if n > uint64(len(r.b)) {
			r.fail()
			return ""
		}
		v := new(big.Int).SetBytes(r.b[:n])
		r.b = r.b[n:]
		if neg {
			v.Neg(v)
		}
		return v.String()
	default:
		if r.err == nil {
			r.fail()
		}
		return ""
	}
}

// FrameScanner reads consecutive frames off an io.Reader — the binary
// analogue of scanning JSON lines from a batch stream. The payload
// buffer is reused across Next calls; callers must finish with a
// payload before asking for the next frame.
type FrameScanner struct {
	r        io.Reader
	maxFrame int
	buf      []byte
}

// NewFrameScanner wraps r; maxFrame bounds one frame's payload
// (values ≤ 0 mean MaxFramePayload).
func NewFrameScanner(r io.Reader, maxFrame int) *FrameScanner {
	if maxFrame <= 0 || maxFrame > MaxFramePayload {
		maxFrame = MaxFramePayload
	}
	return &FrameScanner{r: r, maxFrame: maxFrame}
}

// ErrFrameTooLarge reports a frame whose payload exceeds the scanner's
// configured bound.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")

// Next reads one frame. io.EOF reports a clean end of stream (between
// frames); a header or payload cut short mid-frame is
// io.ErrUnexpectedEOF.
func (s *FrameScanner) Next() (Kind, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, nil, ErrNotFrame
	}
	if hdr[2] != Version {
		return 0, nil, ErrVersion
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(n) > int64(s.maxFrame) {
		return 0, nil, ErrFrameTooLarge
	}
	if cap(s.buf) < int(n) {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
	if _, err := io.ReadFull(s.r, s.buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return Kind(hdr[3]), s.buf, nil
}
