package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/big"
	"reflect"
	"strings"
	"testing"
)

// The differential suite: for every verdict shape the service can
// produce, the binary frame and the JSON body must decode to the same
// value, and transcoding in either direction must be lossless. This is
// the contract that lets the node, client, coordinator, and warm store
// mix encodings freely.

func fullEngine() *EngineStats {
	return &EngineStats{
		Rounds: 7, Configs: 1 << 40, Vertices: 12345, Components: 42,
		MixedComponents: 9, Merges: 88, ViewsInterned: 4096, Workers: 16,
		FrontierRaw: 9_999_999_999, FrontierDistinct: 123_456_789,
		DedupRatio: 81.02, SymbolicRounds: 33, Intervals: 510,
		IntervalRuns: 17, IntervalsPeak: 1023, FragmentationRatio: 30.0,
		SymbolicFallbacks: 1, WallNanos: 123_456_789_012,
	}
}

// configsExactDeep is 4·3^40 — the exact configuration count of a deep
// symbolic horizon, well past int64. ISSUE 10 pins that it survives the
// frame byte-for-byte.
func configsExactDeep() string {
	n := new(big.Int).Exp(big.NewInt(3), big.NewInt(40), nil)
	return n.Mul(n, big.NewInt(4)).String()
}

func solvableShapes() map[string]*Solvable {
	found := true
	notFound := false
	return map[string]*Solvable{
		"minimal": {Scheme: "S1", Horizon: 3, Solvable: true, Configs: 81, ElapsedMs: 2},
		"full": {
			Scheme: "S2-(b)", Horizon: 11, Solvable: false, Found: &notFound,
			Configs: 1 << 30, Components: 17, MixedComponents: 3,
			Engine: fullEngine(), Cached: true, Shared: true, ElapsedMs: 918,
		},
		"exact-overflow": {
			Scheme: "S1", Horizon: 40, Solvable: true, Found: &found,
			Configs: math.MaxInt32, ConfigsExact: configsExactDeep(),
			Engine: fullEngine(), ElapsedMs: 100_000,
		},
		"negative-exact": {Scheme: "S1", Horizon: 1, ConfigsExact: "-12345678901234567890123456789"},
		"verbatim-exact": {Scheme: "S1", Horizon: 1, ConfigsExact: "007"}, // non-canonical: travels verbatim
	}
}

func netShapes() map[string]*NetSolvable {
	return map[string]*NetSolvable{
		"minimal": {Graph: "K4", N: 4, F: 1, Rounds: 2, Solvable: true, EdgeConnectivity: 3, TheoremV1: true, ElapsedMs: 1},
		"full": {
			Graph: "cycle:9", N: 9, F: 2, Rounds: 8, Solvable: false,
			EdgeConnectivity: 2, TheoremV1: false, Engine: fullEngine(),
			Cached: true, ElapsedMs: 4321,
		},
	}
}

func chaosShapes() map[string]*Chaos {
	return map[string]*Chaos{
		"clean": {Scheme: "S1", Algorithm: "alternating", Seed: -42, Executions: 1000, Rounds: 31337, OK: true, ElapsedMs: 77},
		"violations": {
			Scheme: "S2", Algorithm: "greedy", Seed: 9, Executions: 64, Rounds: 512, OK: false,
			Violations: []ChaosViolation{
				{Property: "agreement", Detail: "split decision", Scenario: "0:ab 1:-b", Minimized: "0:a", Seed: 3, Execution: 17},
				{Property: "validity", Detail: "decided 1 on all-0", Scenario: "…", Seed: -8, Execution: 2},
			},
			ElapsedMs: 5,
		},
	}
}

// roundTrip pins frame → typed decode == original, and that the JSON of
// the decoded value matches the JSON of the original (binary == JSON).
func roundTrip(t *testing.T, v any) {
	t.Helper()
	frame, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%T): %v", v, err)
	}
	if !IsFrame(frame) {
		t.Fatalf("Marshal(%T) did not produce a frame", v)
	}
	back, err := Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal(%T): %v", v, err)
	}
	if !reflect.DeepEqual(back, v) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", back, v)
	}
	wantJSON, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := FrameToJSON(frame, "")
	if err != nil {
		t.Fatalf("FrameToJSON: %v", err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("FrameToJSON != json.Marshal:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestSolvableRoundTrip(t *testing.T) {
	for name, v := range solvableShapes() {
		t.Run(name, func(t *testing.T) { roundTrip(t, v) })
	}
}

func TestNetSolvableRoundTrip(t *testing.T) {
	for name, v := range netShapes() {
		t.Run(name, func(t *testing.T) { roundTrip(t, v) })
	}
}

func TestChaosRoundTrip(t *testing.T) {
	for name, v := range chaosShapes() {
		t.Run(name, func(t *testing.T) { roundTrip(t, v) })
	}
}

// TestConfigsExactSurvivesExactly is the headline ISSUE 10 differential:
// a ConfigsExact of 4·3^40 must come back byte-identical through frame,
// JSON, and both transcode directions.
func TestConfigsExactSurvivesExactly(t *testing.T) {
	exact := configsExactDeep()
	v := &Solvable{Scheme: "S1", Horizon: 40, Solvable: true, Configs: -1, ConfigsExact: exact}
	frame, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var dec Solvable
	if err := UnmarshalInto(frame, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.ConfigsExact != exact {
		t.Fatalf("frame decode: ConfigsExact = %q, want %q", dec.ConfigsExact, exact)
	}
	j, err := FrameToJSON(frame, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(j), `"configsExact":"`+exact+`"`) {
		t.Fatalf("transcoded JSON lost the exact count: %s", j)
	}
	back, err := JSONToFrame(KindSolvable, j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, frame) {
		t.Fatalf("JSON→frame is not byte-identical to the original frame")
	}
}

// TestJSONToFrameDifferential transcodes JSON bodies for every shape
// and checks the frame decodes back to the same value.
func TestJSONToFrameDifferential(t *testing.T) {
	check := func(t *testing.T, kind Kind, v any) {
		t.Helper()
		j, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := JSONToFrame(kind, j)
		if err != nil {
			t.Fatalf("JSONToFrame: %v", err)
		}
		back, err := Unmarshal(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, v) {
			t.Fatalf("JSON→frame→decode mismatch:\n got %#v\nwant %#v", back, v)
		}
	}
	for name, v := range solvableShapes() {
		t.Run("solvable/"+name, func(t *testing.T) { check(t, KindSolvable, v) })
	}
	for name, v := range netShapes() {
		t.Run("netsolvable/"+name, func(t *testing.T) { check(t, KindNetSolvable, v) })
	}
	for name, v := range chaosShapes() {
		t.Run("chaos/"+name, func(t *testing.T) { check(t, KindChaos, v) })
	}
}

func TestBatchLineRoundTrip(t *testing.T) {
	lines := map[string]*BatchLine{
		"ok-solvable":  {Index: 0, Status: 200, Verdict: solvableShapes()["full"]},
		"ok-net":       {Index: 3, Status: 200, Cached: true, Verdict: netShapes()["full"]},
		"ok-chaos":     {Index: 9, Status: 200, Verdict: chaosShapes()["violations"]},
		"bad-request":  {Index: 1, Status: 400, Error: "unknown scheme \"nope\""},
		"engine-panic": {Index: 2, Status: 500, Error: "internal analysis fault", DiagID: "diag-123"},
		"deadline":     {Index: 4, Status: 504, Error: "analysis deadline exceeded"},
		"empty":        {},
	}
	for name, l := range lines {
		t.Run(name, func(t *testing.T) {
			frame, err := Marshal(l)
			if err != nil {
				t.Fatal(err)
			}
			kind, payload, rest, err := DecodeFrame(frame)
			if err != nil || kind != KindBatchLine || len(rest) != 0 {
				t.Fatalf("DecodeFrame = %v,%d rest=%d, want KindBatchLine", err, kind, len(rest))
			}
			back, err := DecodeBatchLine(payload)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, l) {
				t.Fatalf("batch line mismatch:\n got %#v\nwant %#v", back, l)
			}
			// Binary == JSON for the whole line.
			wantJSON, _ := json.Marshal(l)
			gotJSON, _ := json.Marshal(back)
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatalf("batch line JSON mismatch:\n got %s\nwant %s", gotJSON, wantJSON)
			}
		})
	}
}

// TestBatchLineRawEmbeds pins the coordinator's zero-transcode path: a
// Raw payload embedded in a BatchLine decodes identically to embedding
// the typed verdict, and Raw's MarshalJSON matches the verdict's JSON.
func TestBatchLineRawEmbeds(t *testing.T) {
	v := solvableShapes()["exact-overflow"]
	vf, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload, _, err := DecodeFrame(vf)
	if err != nil {
		t.Fatal(err)
	}
	raw := Raw{Kind: kind, Payload: payload}

	lf, err := Marshal(&BatchLine{Index: 5, Status: 200, Verdict: raw})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(lf)
	if err != nil {
		t.Fatal(err)
	}
	line := back.(*BatchLine)
	if !reflect.DeepEqual(line.Verdict, v) {
		t.Fatalf("Raw embed decoded to %#v, want %#v", line.Verdict, v)
	}

	rj, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	vj, _ := json.Marshal(v)
	if !bytes.Equal(rj, vj) {
		t.Fatalf("Raw.MarshalJSON = %s, want %s", rj, vj)
	}
}

func TestUnmarshalIntoKindMismatch(t *testing.T) {
	frame, _ := Marshal(&Solvable{Scheme: "S1"})
	var n NetSolvable
	if err := UnmarshalInto(frame, &n); err == nil {
		t.Fatal("decoding a solvable frame into NetSolvable succeeded")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	frame, _ := Marshal(&Solvable{Scheme: "S1", Horizon: 3})
	cases := map[string][]byte{
		"json":           []byte(`{"scheme":"S1"}`),
		"empty":          nil,
		"short-header":   frame[:4],
		"short-payload":  frame[:len(frame)-1],
		"future-version": append([]byte{magic0, magic1, Version + 1}, frame[3:]...),
		"huge-length":    {magic0, magic1, Version, byte(KindSolvable), 0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, _, err := DecodeFrame(b); err == nil {
				t.Fatalf("DecodeFrame(%q) succeeded", name)
			}
			if _, err := Unmarshal(b); err == nil {
				t.Fatalf("Unmarshal(%q) succeeded", name)
			}
		})
	}
	if _, _, _, err := DecodeFrame([]byte("{}")); !errors.Is(err, ErrNotFrame) {
		t.Fatalf("JSON body = %v, want ErrNotFrame", err)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	frame, _ := Marshal(&Solvable{Scheme: "S1"})
	// Corrupt: grow the payload without the struct knowing.
	grown := append(bytes.Clone(frame), 0, 0, 0)
	grown[4] += 3 // patch the length field
	if _, err := Unmarshal(grown); err == nil {
		t.Fatal("payload with trailing garbage decoded successfully")
	}
}

func TestFrameScanner(t *testing.T) {
	var stream []byte
	want := []*BatchLine{
		{Index: 0, Status: 200, Verdict: solvableShapes()["minimal"]},
		{Index: 1, Status: 400, Error: "bad"},
		{Index: 2, Status: 200, Verdict: chaosShapes()["clean"]},
	}
	for _, l := range want {
		var err error
		stream, err = AppendVerdict(stream, l)
		if err != nil {
			t.Fatal(err)
		}
	}

	sc := NewFrameScanner(bytes.NewReader(stream), 0)
	var got []*BatchLine
	for {
		kind, payload, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if kind != KindBatchLine {
			t.Fatalf("kind = %v", kind)
		}
		l, err := DecodeBatchLine(payload)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, l)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scanned lines mismatch:\n got %#v\nwant %#v", got, want)
	}

	// A stream cut mid-frame is ErrUnexpectedEOF, not a clean EOF.
	sc = NewFrameScanner(bytes.NewReader(stream[:len(stream)-3]), 0)
	var err error
	for err == nil {
		_, _, err = sc.Next()
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn stream = %v, want io.ErrUnexpectedEOF", err)
	}

	// A frame past the scanner's bound is ErrFrameTooLarge.
	sc = NewFrameScanner(bytes.NewReader(stream), 4)
	if _, _, err := sc.Next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame = %v, want ErrFrameTooLarge", err)
	}
}

func TestKindForKey(t *testing.T) {
	cases := []struct {
		key  string
		kind Kind
		ok   bool
	}{
		{"solvable|S1|3", KindSolvable, true},
		{"netsolve|K4|1|2", KindNetSolvable, true},
		{"classify|S1", KindInvalid, false},
		{"no-separator", KindInvalid, false},
		{"", KindInvalid, false},
	}
	for _, c := range cases {
		kind, ok := KindForKey(c.key)
		if kind != c.kind || ok != c.ok {
			t.Fatalf("KindForKey(%q) = %v,%v want %v,%v", c.key, kind, ok, c.kind, c.ok)
		}
	}
}

// FuzzWireFrameDecode throws arbitrary bytes at the full decode surface
// — DecodeFrame, Unmarshal, DecodeBatchLine, FrameScanner — asserting
// it never panics and that anything that decodes re-encodes decodably
// (frames are canonical for typed verdicts).
func FuzzWireFrameDecode(f *testing.F) {
	for _, v := range []any{
		&Solvable{Scheme: "S1", Horizon: 3, Solvable: true, ConfigsExact: configsExactDeep(), Engine: fullEngine()},
		&NetSolvable{Graph: "K4", N: 4, F: 1},
		&Chaos{Scheme: "S1", Violations: []ChaosViolation{{Property: "agreement"}}},
		&BatchLine{Index: 1, Status: 200, Verdict: &Solvable{Scheme: "S2"}},
	} {
		frame, err := Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte(`{"scheme":"S1","horizon":3}`))
	f.Add([]byte{magic0, magic1, Version, byte(KindChaos), 4, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := Unmarshal(b)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode, and the re-encoding must
		// decode to the same value (canonical round trip).
		frame, err := Marshal(v)
		if err != nil {
			t.Fatalf("decoded %T but re-encode failed: %v", v, err)
		}
		back, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, v) {
			t.Fatalf("canonical round trip diverged:\n got %#v\nwant %#v", back, v)
		}
		// And the JSON transcode must work for every decodable frame.
		if _, err := FrameToJSON(frame, ""); err != nil {
			t.Fatalf("FrameToJSON on canonical frame: %v", err)
		}

		// The scanner must agree with the one-shot decoder on the first
		// frame.
		sc := NewFrameScanner(bytes.NewReader(b), 0)
		if _, _, err := sc.Next(); err != nil {
			t.Fatalf("Unmarshal decoded but FrameScanner failed: %v", err)
		}
	})
}
