// Package obstruction implements Section IV-C of Fevat & Godard: the
// structure of minimal obstructions for the Coordinated Attack Problem.
//
// The special pairs form a perfect matching on the non-constant unfair
// scenarios: every unfair scenario u·a^ω (a a loss letter) has exactly one
// partner — the scenario with the adjacent prefix index and the same tail
// — except the two constants (w)^ω and (b)^ω, whose would-be partners fall
// outside the index range (which is exactly why conditions III.8.iii/iv
// exist separately). Each pair has a "lower" and an "upper" member,
// distinguished by the index order, equivalently by the parity/tail-letter
// pattern.
//
// A set U of unfair scenarios hitting every pair exactly once (a minimum
// vertex cover of the matching) yields the inclusion-minimal obstruction
// Γ^ω \ U: removing anything more breaks a pair (or removes a fair
// scenario or a constant) and turns the scheme solvable. The canonical
// choice U = all lower members is implemented as a membership predicate —
// the resulting scheme is not ω-regular (it is a co-Büchi-type condition),
// so it lives outside the DBA Scheme type by necessity.
//
// Finite truncations are regular: L_k = Γ^ω minus the lower members with
// prefix length ≤ k form the strictly decreasing sequence of obstructions
// of the paper's Section IV-C, each checkable by the classifier.
package obstruction

import (
	"fmt"
	"math/big"

	"repro/internal/classify"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// Role classifies a scenario's position in the special-pair matching.
type Role int

const (
	// RoleFair: the scenario is fair (not in the matching at all).
	RoleFair Role = iota
	// RoleLower: unfair, the smaller-index member of its special pair.
	RoleLower
	// RoleUpper: unfair, the larger-index member of its special pair.
	RoleUpper
	// RoleConstant: (w)^ω or (b)^ω — unfair but unpaired.
	RoleConstant
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleFair:
		return "fair"
	case RoleLower:
		return "lower"
	case RoleUpper:
		return "upper"
	case RoleConstant:
		return "constant"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// RoleOf computes the matching role of a Γ-scenario. It panics on
// scenarios outside Γ^ω.
func RoleOf(s omission.Scenario) Role {
	if !s.InGamma() {
		panic("obstruction: RoleOf outside Γ^ω")
	}
	if s.IsFair() {
		return RoleFair
	}
	c := s.Canonical()
	u, tail := c.Prefix(), c.Period()
	// A canonical unfair scenario has a single-loss-letter period.
	if len(tail) != 1 || tail[0] == omission.None {
		panic(fmt.Sprintf("obstruction: unfair scenario %s not in canonical u·a^ω form", s))
	}
	a := tail[0]
	ku := omission.Index(u)
	even := ku.Bit(0) == 0
	// Lower pattern: tail 'w' at even parity, or tail 'b' at odd parity.
	lowerPattern := (a == omission.LossWhite && even) || (a == omission.LossBlack && !even)
	if lowerPattern {
		// Partner would be ind(u)+1; exists iff ind(u) < 3^|u| − 1.
		limit := new(big.Int).Sub(omission.Pow3(len(u)), big.NewInt(1))
		if ku.Cmp(limit) >= 0 {
			return RoleConstant // (w)^ω and padded forms
		}
		return RoleLower
	}
	// Upper pattern: partner would be ind(u)−1; exists iff ind(u) > 0.
	if ku.Sign() == 0 {
		return RoleConstant // (b)^ω
	}
	return RoleUpper
}

// Partner returns the special-pair partner of an unfair non-constant
// scenario (ok=false for fair scenarios and constants). It delegates to
// classify.SpecialPartner and is re-exported here for discoverability.
func Partner(s omission.Scenario) (omission.Scenario, bool) {
	return classify.SpecialPartner(s)
}

// Pair is one edge of the special-pair matching.
type Pair struct {
	Lower, Upper omission.Scenario
}

// UnfairWindow enumerates the canonical unfair scenarios u·a^ω with
// |u| ≤ maxPrefix (over both loss tails), deduplicated semantically.
func UnfairWindow(maxPrefix int) []omission.Scenario {
	seen := map[string]bool{}
	var out []omission.Scenario
	for r := 0; r <= maxPrefix; r++ {
		for _, u := range omission.AllWords(omission.Gamma, r) {
			for _, a := range []omission.Letter{omission.LossWhite, omission.LossBlack} {
				c := omission.UPWord(u, omission.Word{a}).Canonical()
				key := c.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// PairGraph returns the matching edges whose both endpoints lie in the
// given scenario set.
func PairGraph(window []omission.Scenario) []Pair {
	index := map[string]bool{}
	for _, s := range window {
		index[s.Canonical().String()] = true
	}
	seen := map[string]bool{}
	var out []Pair
	for _, s := range window {
		p, ok := Partner(s)
		if !ok || !index[p.Canonical().String()] {
			continue
		}
		lower, upper := classify.OrientPair(s, p)
		key := lower.Canonical().String() + "|" + upper.Canonical().String()
		if !seen[key] {
			seen[key] = true
			out = append(out, Pair{Lower: lower.Canonical(), Upper: upper.Canonical()})
		}
	}
	return out
}

// LowerMembers filters a window down to its RoleLower scenarios — the
// canonical minimum vertex cover of the matching restricted to the window.
func LowerMembers(window []omission.Scenario) []omission.Scenario {
	var out []omission.Scenario
	for _, s := range window {
		if RoleOf(s) == RoleLower {
			out = append(out, s)
		}
	}
	return out
}

// InCanonicalMinimalObstruction reports membership of an ultimately
// periodic Γ-scenario in the canonical minimal obstruction
// Γ^ω \ {all lower members}: fair scenarios, the two constants, and all
// upper members are in; lower members are out. This scheme is not
// ω-regular, hence exposed only as a predicate.
func InCanonicalMinimalObstruction(s omission.Scenario) bool {
	return RoleOf(s) != RoleLower
}

// DecreasingObstructions builds the strictly decreasing sequence of
// regular obstructions L_0 ⊋ L_1 ⊋ … ⊋ L_n of Section IV-C:
// L_k = Γ^ω minus the lower members with canonical prefix length ≤ k.
// Every L_k is an obstruction (each removed scenario's partner is still
// present), verified by the classifier in tests.
func DecreasingObstructions(n int) []*scheme.Scheme {
	var out []*scheme.Scheme
	var removed []omission.Scenario
	for k := 0; k <= n; k++ {
		for _, s := range UnfairWindow(k) {
			if len(s.Prefix()) == k && RoleOf(s) == RoleLower {
				removed = append(removed, s)
			}
		}
		out = append(out, scheme.Minus(fmt.Sprintf("L_%d", k), scheme.R1(), removed...))
	}
	return out
}
