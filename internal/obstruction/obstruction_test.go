package obstruction

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/omission"
	"repro/internal/scheme"
)

func sc(s string) omission.Scenario { return omission.MustScenario(s) }

func TestRoleOf(t *testing.T) {
	cases := []struct {
		s    string
		want Role
	}{
		{"(.)", RoleFair},
		{"(wb)", RoleFair},
		{"www(.b)", RoleFair},
		{"(w)", RoleConstant},
		{"(b)", RoleConstant},
		{"ww(w)", RoleConstant}, // same ω-word as (w)
		{"b(w)", RoleLower},     // ind(b)=0 even, tail w
		{".(w)", RoleUpper},     // ind(.)=1 odd, tail w
		{".(b)", RoleLower},     // odd parity, tail b
		{"w(b)", RoleUpper},     // even parity, tail b
		{"bb(w)", RoleLower},
		{"b.(w)", RoleUpper},
		{"ww(b)", RoleUpper},
		{"w.(b)", RoleLower},
	}
	for _, c := range cases {
		if got := RoleOf(sc(c.s)); got != c.want {
			t.Errorf("RoleOf(%s) = %v, want %v", c.s, got, c.want)
		}
	}
	if RoleFair.String() == "" || RoleLower.String() == "" || RoleUpper.String() == "" ||
		RoleConstant.String() == "" || Role(9).String() == "" {
		t.Error("Role strings")
	}
	defer func() {
		if recover() == nil {
			t.Error("RoleOf outside Γ must panic")
		}
	}()
	RoleOf(sc("(x)"))
}

// TestMatchingStructure verifies the perfect-matching claims on a window:
// every non-constant unfair scenario has exactly one partner, of the
// opposite role, and the pairing is involutive.
func TestMatchingStructure(t *testing.T) {
	window := UnfairWindow(4)
	lower, upper, constant := 0, 0, 0
	for _, s := range window {
		switch RoleOf(s) {
		case RoleConstant:
			constant++
			if _, ok := Partner(s); ok {
				t.Fatalf("constant %s has a partner", s)
			}
		case RoleLower:
			lower++
			p, ok := Partner(s)
			if !ok {
				t.Fatalf("lower %s has no partner", s)
			}
			if RoleOf(p) != RoleUpper {
				t.Fatalf("partner of lower %s is %s (%v)", s, p, RoleOf(p))
			}
			if !classify.IsSpecialPair(s, p) {
				t.Fatalf("(%s, %s) not special", s, p)
			}
			pp, ok := Partner(p)
			if !ok || !pp.Equal(s) {
				t.Fatalf("matching not involutive at %s", s)
			}
		case RoleUpper:
			upper++
		case RoleFair:
			t.Fatalf("fair scenario %s in unfair window", s)
		}
	}
	if constant != 2 {
		t.Errorf("%d constants in window, want 2", constant)
	}
	if lower != upper {
		t.Errorf("matching unbalanced: %d lowers, %d uppers", lower, upper)
	}
	if lower == 0 {
		t.Error("empty matching window")
	}
}

func TestPairGraph(t *testing.T) {
	window := UnfairWindow(3)
	pairs := PairGraph(window)
	if len(pairs) == 0 {
		t.Fatal("no pairs in window")
	}
	seenLower := map[string]bool{}
	for _, p := range pairs {
		if RoleOf(p.Lower) != RoleLower || RoleOf(p.Upper) != RoleUpper {
			t.Fatalf("pair (%s, %s) roles wrong", p.Lower, p.Upper)
		}
		if !classify.IsSpecialPair(p.Lower, p.Upper) {
			t.Fatalf("pair (%s, %s) not special", p.Lower, p.Upper)
		}
		k := p.Lower.String()
		if seenLower[k] {
			t.Fatalf("lower %s matched twice", p.Lower)
		}
		seenLower[k] = true
	}
	// The lower members are exactly the pair lowers whose partner fits in
	// the window (all of them here, since partners share prefix length).
	lowers := LowerMembers(window)
	if len(lowers) != len(pairs) {
		t.Errorf("%d lowers vs %d pairs", len(lowers), len(pairs))
	}
}

// TestDecreasingObstructions reproduces the Section IV-C construction:
// a strictly decreasing infinite (here: truncated) sequence of
// obstructions.
func TestDecreasingObstructions(t *testing.T) {
	seq := DecreasingObstructions(3)
	if len(seq) != 4 {
		t.Fatalf("%d schemes", len(seq))
	}
	for i, l := range seq {
		res, err := classify.Classify(l)
		if err != nil {
			t.Fatal(err)
		}
		if res.Solvable {
			t.Fatalf("L_%d is not an obstruction", i)
		}
		if i > 0 {
			// Strict inclusion L_i ⊊ L_{i-1}.
			if ok, w := scheme.SubsetOf(l, seq[i-1]); !ok {
				t.Fatalf("L_%d ⊄ L_%d (%s)", i, i-1, w)
			}
			if ok, _ := scheme.SubsetOf(seq[i-1], l); ok {
				t.Fatalf("L_%d = L_%d, want strict decrease", i, i-1)
			}
		}
	}
	// Removing the partner of any removed lower from L_n yields a solvable
	// scheme — the minimality mechanism.
	last := seq[len(seq)-1]
	lower := sc(".(b)")
	if last.Contains(lower) {
		t.Fatal(".(b) should already be removed")
	}
	partner, _ := Partner(lower)
	broken := scheme.Minus("L+u", last, partner)
	res, err := classify.Classify(broken)
	if err != nil || !res.Solvable {
		t.Fatalf("breaking a pair must give solvability: %+v %v", res, err)
	}
}

// TestCanonicalMinimalObstruction checks the cover property of the
// canonical (non-regular) minimal obstruction semantically: the scheme
// contains all fair scenarios and constants, contains every upper member,
// excludes every lower member — so each special pair has exactly one
// member inside, and any scenario missing from a proper subset certifies
// solvability.
func TestCanonicalMinimalObstruction(t *testing.T) {
	for _, s := range []string{"(.)", "(wb)", "(w)", "(b)", ".(w)", "w(b)", "b.(w)", "ww(b)"} {
		if !InCanonicalMinimalObstruction(sc(s)) {
			t.Errorf("%s should be in the canonical minimal obstruction", s)
		}
	}
	for _, s := range []string{"b(w)", ".(b)", "bb(w)", "w.(b)"} {
		if InCanonicalMinimalObstruction(sc(s)) {
			t.Errorf("%s (lower) should be excluded", s)
		}
	}
	// Cover property over a window: every pair has its lower out and its
	// upper in.
	for _, p := range PairGraph(UnfairWindow(4)) {
		if InCanonicalMinimalObstruction(p.Lower) || !InCanonicalMinimalObstruction(p.Upper) {
			t.Fatalf("cover property violated at pair (%s, %s)", p.Lower, p.Upper)
		}
	}
}

func TestUnfairWindowDedup(t *testing.T) {
	window := UnfairWindow(2)
	seen := map[string]bool{}
	for _, s := range window {
		k := s.String()
		if seen[k] {
			t.Fatalf("duplicate %s", k)
		}
		seen[k] = true
		if s.IsFair() {
			t.Fatalf("fair scenario %s in window", s)
		}
	}
	// Counts: prefix ε: 2 constants. Canonical scenarios with prefix
	// length exactly r ≥ 1 avoid the tail letter as last prefix letter:
	// 2·3^(r-1)·2 per tail? Just sanity-check growth.
	if len(window) <= len(UnfairWindow(1)) {
		t.Error("window must grow with the prefix bound")
	}
}
