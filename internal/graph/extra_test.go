package graph

import (
	"math/rand"
	"testing"
)

func TestExtraGenerators(t *testing.T) {
	cases := []struct {
		g            *Graph
		n, m         int
		connectivity int
		vertexConn   int
	}{
		{Wheel(6), 6, 10, 3, 3},
		{Star(5), 5, 4, 1, 1},
		{Petersen(), 10, 15, 3, 3},
		{BinaryTree(7), 7, 6, 1, 1},
		{Cycle(6), 6, 6, 2, 2},
		{Complete(5), 5, 10, 4, 4},
		{CompleteBipartite(2, 4), 6, 8, 2, 2},
		{Barbell(4, 2), 8, 14, 2, 2},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.NumEdges() != c.m {
			t.Errorf("%s: n=%d m=%d, want %d/%d", c.g.Name(), c.g.N(), c.g.NumEdges(), c.n, c.m)
		}
		if !c.g.Connected() {
			t.Errorf("%s: disconnected", c.g.Name())
		}
		if got := c.g.EdgeConnectivity(); got != c.connectivity {
			t.Errorf("%s: λ = %d, want %d", c.g.Name(), got, c.connectivity)
		}
		if got := c.g.VertexConnectivity(); got != c.vertexConn {
			t.Errorf("%s: κ = %d, want %d", c.g.Name(), got, c.vertexConn)
		}
	}
}

// TestWhitneyInequalities: κ(G) ≤ λ(G) ≤ δ(G) on random connected graphs.
func TestWhitneyInequalities(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		g := Random(rng, 4+rng.Intn(6), 0.3+rng.Float64()*0.4)
		k := g.VertexConnectivity()
		l := g.EdgeConnectivity()
		d := g.MinDegree()
		if !(k <= l && l <= d) {
			t.Fatalf("%s: κ=%d λ=%d δ=%d violates Whitney", g.Name(), k, l, d)
		}
		if k < 1 {
			t.Fatalf("%s: connected graph with κ=%d", g.Name(), k)
		}
	}
	// Degenerate cases.
	if New("one", 1).VertexConnectivity() != 0 {
		t.Error("κ of trivial graph")
	}
	disc := New("disc", 4)
	disc.AddEdge(0, 1)
	if disc.VertexConnectivity() != 0 {
		t.Error("κ of disconnected graph")
	}
}

// TestVertexVsEdgeGap: a graph where κ < λ — two cliques sharing
// a single vertex have κ = 1 but λ = k−1.
func TestVertexVsEdgeGap(t *testing.T) {
	// Two K4s glued at vertex 0.
	g := New("glued", 7)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	glue := []int{0, 4, 5, 6}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(glue[i], glue[j])
		}
	}
	if k := g.VertexConnectivity(); k != 1 {
		t.Errorf("κ(glued K4s) = %d, want 1", k)
	}
	if l := g.EdgeConnectivity(); l != 3 {
		t.Errorf("λ(glued K4s) = %d, want 3", l)
	}
}

func TestParseEdgeList(t *testing.T) {
	g, err := ParseEdgeList("tri", "0-1, 1-2 ,2-0")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.NumEdges() != 3 || g.EdgeConnectivity() != 2 {
		t.Errorf("triangle: n=%d m=%d λ=%d", g.N(), g.NumEdges(), g.EdgeConnectivity())
	}
	// Trailing commas and whitespace tolerated.
	if _, err := ParseEdgeList("x", "0-1,"); err != nil {
		t.Error(err)
	}
	for _, bad := range []string{"", "0", "a-b", "0-0", "-1-2", "0-1-2x"} {
		if _, err := ParseEdgeList("bad", bad); err == nil {
			t.Errorf("ParseEdgeList(%q) should fail", bad)
		}
	}
}
