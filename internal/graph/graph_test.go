package graph

import (
	"math/rand"
	"testing"
)

func TestBasics(t *testing.T) {
	g := New("g", 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // loop
	g.AddEdge(0, 9) // out of range
	g.AddEdge(1, 2)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) || g.HasEdge(-1, 0) {
		t.Error("HasEdge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("Degree")
	}
	if g.MinDegree() != 0 {
		t.Error("MinDegree with isolated vertex")
	}
	if g.Connected() {
		t.Error("vertex 3 is isolated")
	}
	if NewEdge(3, 1) != (Edge{1, 3}) {
		t.Error("NewEdge normalization")
	}
	if (Edge{1, 3}).String() == "" || (DirEdge{1, 3}).String() == "" {
		t.Error("stringers")
	}
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.HasEdge(2, 3) {
		t.Error("Clone must be independent")
	}
}

func TestGeneratorsShape(t *testing.T) {
	cases := []struct {
		g            *Graph
		n, m         int
		minDeg       int
		connectivity int
	}{
		{Cycle(5), 5, 5, 2, 2},
		{Path(5), 5, 4, 1, 1},
		{Complete(5), 5, 10, 4, 4},
		{CompleteBipartite(2, 3), 5, 6, 2, 2},
		{Grid(3, 3), 9, 12, 2, 2},
		{Hypercube(3), 8, 12, 3, 3},
		{Barbell(4, 2), 8, 14, 3, 2},
		{Barbell(5, 3), 10, 23, 4, 3},
		{Theta(3, 3), 8, 9, 2, 2},
	}
	for _, c := range cases {
		if c.g.N() != c.n {
			t.Errorf("%s: N = %d, want %d", c.g.Name(), c.g.N(), c.n)
		}
		if c.g.NumEdges() != c.m {
			t.Errorf("%s: edges = %d, want %d", c.g.Name(), c.g.NumEdges(), c.m)
		}
		if !c.g.Connected() {
			t.Errorf("%s: not connected", c.g.Name())
		}
		if d := c.g.MinDegree(); d != c.minDeg {
			t.Errorf("%s: minDeg = %d, want %d", c.g.Name(), d, c.minDeg)
		}
		if k := c.g.EdgeConnectivity(); k != c.connectivity {
			t.Errorf("%s: c(G) = %d, want %d", c.g.Name(), k, c.connectivity)
		}
	}
}

// TestBarbellOpenRegime: the barbell family realizes c(G) < deg(G), the
// regime left open by Santoro–Widmayer that Theorem V.1 settles.
func TestBarbellOpenRegime(t *testing.T) {
	for k := 3; k <= 6; k++ {
		for b := 1; b < k-1; b++ {
			g := Barbell(k, b)
			if c, d := g.EdgeConnectivity(), g.MinDegree(); !(c < d) {
				t.Errorf("barbell(%d,%d): c=%d deg=%d, want c < deg", k, b, c, d)
			}
		}
	}
}

func TestMinCutStructure(t *testing.T) {
	for _, g := range []*Graph{Cycle(6), Path(4), Barbell(4, 2), Grid(3, 3), Theta(3, 4), Complete(5)} {
		cut, ok := g.MinCut()
		if !ok {
			t.Fatalf("%s: MinCut failed", g.Name())
		}
		if cut.Size() != g.EdgeConnectivity() {
			t.Fatalf("%s: inconsistent cut size", g.Name())
		}
		if len(cut.SideA)+len(cut.SideB) != g.N() || len(cut.SideA) == 0 || len(cut.SideB) == 0 {
			t.Fatalf("%s: bad partition %v | %v", g.Name(), cut.SideA, cut.SideB)
		}
		// Both sides must induce connected subgraphs (used by the Theorem
		// V.1 proof).
		for _, side := range [][]int{cut.SideA, cut.SideB} {
			allowed := map[int]bool{}
			for _, v := range side {
				allowed[v] = true
			}
			comp := g.component(side[0], allowed)
			if len(comp) != len(side) {
				t.Fatalf("%s: side %v induces a disconnected subgraph", g.Name(), side)
			}
		}
		// Every cut edge crosses the partition; no non-cut edge does.
		inA := map[int]bool{}
		for _, v := range cut.SideA {
			inA[v] = true
		}
		crossing := 0
		for _, e := range g.Edges() {
			if inA[e.U] != inA[e.V] {
				crossing++
			}
		}
		if crossing != cut.Size() {
			t.Fatalf("%s: %d crossing edges, cut claims %d", g.Name(), crossing, cut.Size())
		}
		for _, e := range cut.CutEdges {
			a, b := cut.AEnd(e), cut.BEnd(e)
			if a < 0 || !inA[a] || inA[b] {
				t.Fatalf("%s: AEnd/BEnd wrong for %v", g.Name(), e)
			}
		}
		if cut.InA(cut.SideB[0]) || !cut.InA(cut.SideA[0]) {
			t.Fatalf("%s: InA wrong", g.Name())
		}
	}
}

func TestMinCutEdgeCases(t *testing.T) {
	if _, ok := New("single", 1).MinCut(); ok {
		t.Error("single vertex has no cut")
	}
	if New("single", 1).EdgeConnectivity() != 0 {
		t.Error("λ of trivial graph")
	}
	g := New("disc", 4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	cut, ok := g.MinCut()
	if !ok || cut.Size() != 0 || len(cut.SideA) != 2 {
		t.Errorf("disconnected cut: %+v ok=%v", cut, ok)
	}
	if g.EdgeConnectivity() != 0 {
		t.Error("λ of disconnected graph is 0")
	}
	if g.Diameter() != -1 {
		t.Error("diameter of disconnected graph")
	}
}

// TestStoerWagnerCrossCheck validates the two independent min-cut
// implementations against each other on random connected graphs.
func TestStoerWagnerCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(7)
		g := Random(rng, n, 0.25+rng.Float64()*0.5)
		mf := g.EdgeConnectivity()
		sw := g.StoerWagner()
		if mf != sw {
			t.Fatalf("%s: maxflow λ=%d, Stoer–Wagner λ=%d", g.Name(), mf, sw)
		}
		if mf > g.MinDegree() {
			t.Fatalf("%s: λ=%d exceeds min degree %d", g.Name(), mf, g.MinDegree())
		}
	}
	for _, g := range []*Graph{Cycle(7), Complete(6), Barbell(5, 2), Grid(4, 3), Hypercube(4)} {
		if g.EdgeConnectivity() != g.StoerWagner() {
			t.Fatalf("%s: implementations disagree", g.Name())
		}
	}
	if New("single", 1).StoerWagner() != -1 {
		t.Error("Stoer–Wagner on trivial graph")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(5)
	d := g.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("BFS distances %v", d)
		}
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter of P5 = %d", g.Diameter())
	}
	if Complete(5).Diameter() != 1 {
		t.Error("diameter of K5")
	}
	if Cycle(6).Diameter() != 3 {
		t.Error("diameter of C6")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		g := Random(rng, 6, 0.3)
		if !g.Connected() {
			t.Fatal("Random must return connected graphs")
		}
	}
	// Very low p exercises the fallback path.
	g := Random(rng, 8, 0.01)
	if !g.Connected() {
		t.Fatal("fallback must be connected")
	}
}

func TestThetaMinLength(t *testing.T) {
	g := Theta(2, 1) // clamps to length 2
	if g.N() != 4 || !g.Connected() {
		t.Errorf("theta clamp: n=%d", g.N())
	}
}
