// Package graph provides the undirected-graph substrate for Section V of
// Fevat & Godard: synchronous communication networks of arbitrary
// topology. It implements the quantities the theorem speaks about — edge
// connectivity c(G), minimum degree deg(G) — and extracts the minimum-cut
// 3-partition (A, B, C) used in the impossibility proof of Theorem V.1,
// where C is a minimum set of cut edges and the two sides induce connected
// subgraphs.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// NewEdge normalizes the endpoint order.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("%d–%d", e.U, e.V) }

// DirEdge is a directed edge (an individual message channel).
type DirEdge struct{ From, To int }

// String implements fmt.Stringer.
func (e DirEdge) String() string { return fmt.Sprintf("%d→%d", e.From, e.To) }

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	name string
	n    int
	adj  [][]int
	set  []map[int]bool
}

// New creates an empty graph with n vertices.
func New(name string, n int) *Graph {
	g := &Graph{name: name, n: n, adj: make([][]int, n), set: make([]map[int]bool, n)}
	for i := range g.set {
		g.set[i] = map[int]bool{}
	}
	return g
}

// Name returns the graph's label.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {a, b}; loops and duplicates are
// ignored.
func (g *Graph) AddEdge(a, b int) {
	if a == b || a < 0 || b < 0 || a >= g.n || b >= g.n || g.set[a][b] {
		return
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	g.set[a][b] = true
	g.set[b][a] = true
}

// HasEdge reports whether {a, b} is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || a >= g.n {
		return false
	}
	return g.set[a][b]
}

// Neighbors returns the adjacency list of v (shared; treat as read-only).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns deg(v).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edges lists all undirected edges in sorted order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// MinDegree returns deg(G) = min over vertices of the degree (0 for the
// empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	m := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(v); d < m {
			m = d
		}
	}
	return m
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.component(0, nil)) == g.n
}

// component BFSes from v, restricted to the allowed vertex set when
// non-nil.
func (g *Graph) component(v int, allowed map[int]bool) []int {
	seen := map[int]bool{v: true}
	queue := []int{v}
	var out []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, w := range g.adj[u] {
			if seen[w] || (allowed != nil && !allowed[w]) {
				continue
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
	sort.Ints(out)
	return out
}

// BFSDistances returns the distance from src to every vertex (-1 when
// unreachable).
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the eccentricity maximum over the (assumed connected)
// graph; -1 for disconnected graphs.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		for _, x := range g.BFSDistances(v) {
			if x < 0 {
				return -1
			}
			if x > d {
				d = x
			}
		}
	}
	return d
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.name, g.n)
	for _, e := range g.Edges() {
		c.AddEdge(e.U, e.V)
	}
	return c
}

// --- Named generators -------------------------------------------------

// Cycle returns C_n (c = 2, deg = 2).
func Cycle(n int) *Graph {
	g := New(fmt.Sprintf("cycle-%d", n), n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns P_n (c = 1).
func Path(n int) *Graph {
	g := New(fmt.Sprintf("path-%d", n), n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Complete returns K_n (c = n−1).
func Complete(n int) *Graph {
	g := New(fmt.Sprintf("complete-%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} (c = min(a, b)).
func CompleteBipartite(a, b int) *Graph {
	g := New(fmt.Sprintf("K%d,%d", a, b), a+b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// Grid returns the w×h grid graph (c = 2 for w,h ≥ 2).
func Grid(w, h int) *Graph {
	g := New(fmt.Sprintf("grid-%dx%d", w, h), w*h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

// Hypercube returns Q_d (c = d).
func Hypercube(d int) *Graph {
	n := 1 << d
	g := New(fmt.Sprintf("hypercube-%d", d), n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			g.AddEdge(v, v^(1<<b))
		}
	}
	return g
}

// Barbell returns two K_k cliques joined by `bridges` parallel-ish edges
// between distinct vertex pairs: the canonical family with
// c(G) = bridges < deg(G) = k−1 — the open regime of Santoro & Widmayer
// that Theorem V.1 settles.
func Barbell(k, bridges int) *Graph {
	if bridges > k {
		bridges = k
	}
	g := New(fmt.Sprintf("barbell-%d-%d", k, bridges), 2*k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
			g.AddEdge(k+i, k+j)
		}
	}
	for i := 0; i < bridges; i++ {
		g.AddEdge(i, k+i)
	}
	return g
}

// Theta returns the theta graph: two hub vertices joined by `paths`
// internally disjoint paths of the given length (clamped to ≥ 2). Internal
// path vertices have degree 2, so c(G) = min(2, paths) even though the
// hub-separating cut needs `paths` edges.
func Theta(paths, length int) *Graph {
	if length < 2 {
		length = 2
	}
	n := 2 + paths*(length-1)
	g := New(fmt.Sprintf("theta-%d-%d", paths, length), n)
	next := 2
	for p := 0; p < paths; p++ {
		prev := 0
		for s := 0; s < length-1; s++ {
			g.AddEdge(prev, next)
			prev = next
			next++
		}
		g.AddEdge(prev, 1)
	}
	return g
}

// Random returns a connected G(n, p) sample (rejection sampling; it falls
// back to a path skeleton plus random edges if luck runs out).
func Random(rng *rand.Rand, n int, p float64) *Graph {
	for attempt := 0; attempt < 50; attempt++ {
		g := New(fmt.Sprintf("gnp-%d-%.2f", n, p), n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					g.AddEdge(i, j)
				}
			}
		}
		if g.Connected() {
			return g
		}
	}
	g := Path(n)
	g.name = fmt.Sprintf("gnp-fallback-%d-%.2f", n, p)
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}
