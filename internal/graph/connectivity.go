package graph

import "sort"

// Cut is a minimum edge cut with its two sides, as in the 3-partition
// (A, B, C) of the Theorem V.1 impossibility proof: CutEdges is C, and
// SideA/SideB are the vertex sets whose induced subgraphs are connected
// (guaranteed for minimum cuts of connected graphs).
type Cut struct {
	SideA, SideB []int
	CutEdges     []Edge
}

// Size returns |C|.
func (c Cut) Size() int { return len(c.CutEdges) }

// AEnd returns the endpoint of cut edge e lying in SideA.
func (c Cut) AEnd(e Edge) int {
	for _, v := range c.SideA {
		if v == e.U || v == e.V {
			return v
		}
	}
	return -1
}

// BEnd returns the endpoint of cut edge e lying in SideB.
func (c Cut) BEnd(e Edge) int {
	a := c.AEnd(e)
	if a == e.U {
		return e.V
	}
	return e.U
}

// InA reports whether vertex v belongs to SideA.
func (c Cut) InA(v int) bool {
	for _, u := range c.SideA {
		if u == v {
			return true
		}
	}
	return false
}

// EdgeConnectivity returns c(G), the minimum number of edges whose removal
// disconnects G (0 when G is already disconnected or has < 2 vertices).
func (g *Graph) EdgeConnectivity() int {
	cut, ok := g.MinCut()
	if !ok {
		return 0
	}
	return cut.Size()
}

// MinCut computes a global minimum edge cut via max-flow/min-cut: c(G) =
// min over t ≠ 0 of maxflow(0, t) with unit capacities in both directions.
// ok is false for graphs with fewer than 2 vertices. For a disconnected
// graph it returns the empty cut with SideA = component(0).
func (g *Graph) MinCut() (Cut, bool) {
	if g.n < 2 {
		return Cut{}, false
	}
	comp0 := g.component(0, nil)
	if len(comp0) < g.n {
		inA := map[int]bool{}
		for _, v := range comp0 {
			inA[v] = true
		}
		var rest []int
		for v := 0; v < g.n; v++ {
			if !inA[v] {
				rest = append(rest, v)
			}
		}
		return Cut{SideA: comp0, SideB: rest}, true
	}
	best := -1
	var bestSide []bool
	for t := 1; t < g.n; t++ {
		flow, side := g.maxFlow(0, t)
		if best < 0 || flow < best {
			best = flow
			bestSide = side
		}
	}
	cut := Cut{}
	for v := 0; v < g.n; v++ {
		if bestSide[v] {
			cut.SideA = append(cut.SideA, v)
		} else {
			cut.SideB = append(cut.SideB, v)
		}
	}
	for _, e := range g.Edges() {
		if bestSide[e.U] != bestSide[e.V] {
			cut.CutEdges = append(cut.CutEdges, e)
		}
	}
	return cut, true
}

// maxFlow runs Edmonds–Karp with unit capacities on the bidirected version
// of g, returning the flow value and the source side of the induced
// minimum s-t cut (residual-reachable set).
func (g *Graph) maxFlow(s, t int) (int, []bool) {
	// cap[u][v]: residual capacity.
	capacity := make([]map[int]int, g.n)
	for u := 0; u < g.n; u++ {
		capacity[u] = map[int]int{}
		for _, v := range g.adj[u] {
			capacity[u][v] = 1
		}
	}
	flow := 0
	parent := make([]int, g.n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v, c := range capacity[u] {
				if c > 0 && parent[v] < 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] < 0 {
			break
		}
		// Unit capacities: augment by 1 along the path.
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			capacity[u][v]--
			capacity[v][u]++
		}
		flow++
	}
	side := make([]bool, g.n)
	seen := []int{s}
	side[s] = true
	for len(seen) > 0 {
		u := seen[0]
		seen = seen[1:]
		for v, c := range capacity[u] {
			if c > 0 && !side[v] {
				side[v] = true
				seen = append(seen, v)
			}
		}
	}
	return flow, side
}

// StoerWagner computes the global minimum cut value with the Stoer–Wagner
// algorithm (unit weights), as an independent cross-check of the max-flow
// computation. It returns 0 for disconnected graphs and -1 for graphs with
// fewer than 2 vertices.
func (g *Graph) StoerWagner() int {
	n := g.n
	if n < 2 {
		return -1
	}
	w := make([][]int, n)
	for i := range w {
		w[i] = make([]int, n)
	}
	for _, e := range g.Edges() {
		w[e.U][e.V]++
		w[e.V][e.U]++
	}
	vertices := make([]int, n)
	for i := range vertices {
		vertices[i] = i
	}
	best := -1
	for len(vertices) > 1 {
		// Maximum adjacency order.
		inA := map[int]bool{}
		weights := map[int]int{}
		order := make([]int, 0, len(vertices))
		for len(order) < len(vertices) {
			sel, selW := -1, -1
			for _, v := range vertices {
				if inA[v] {
					continue
				}
				if weights[v] > selW {
					sel, selW = v, weights[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range vertices {
				if !inA[v] {
					weights[v] += w[sel][v]
				}
			}
		}
		last := order[len(order)-1]
		prev := order[len(order)-2]
		cutOfPhase := 0
		for _, v := range vertices {
			if v != last {
				cutOfPhase += w[last][v]
			}
		}
		if best < 0 || cutOfPhase < best {
			best = cutOfPhase
		}
		// Merge last into prev.
		for _, v := range vertices {
			if v != last && v != prev {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		idx := sort.SearchInts(vertices, last)
		// vertices is kept sorted by construction (0..n-1 initially).
		vertices = append(vertices[:idx], vertices[idx+1:]...)
	}
	return best
}
