package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// Additional generators and analyses beyond the Theorem V.1 core:
// classical named graphs for the experiment zoo, vertex connectivity for
// comparison with edge connectivity (κ ≤ λ ≤ δ, Whitney's inequalities),
// and an edge-list parser for CLI-supplied topologies.

// Wheel returns W_n: a cycle of n−1 vertices plus a hub (c = 3 for n ≥ 5).
func Wheel(n int) *Graph {
	g := New(fmt.Sprintf("wheel-%d", n), n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
		next := i + 1
		if next == n {
			next = 1
		}
		g.AddEdge(i, next)
	}
	return g
}

// Star returns K_{1,n−1} (c = 1).
func Star(n int) *Graph {
	g := New(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Petersen returns the Petersen graph (n = 10, 3-regular, c = 3).
func Petersen() *Graph {
	g := New("petersen", 10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	return g
}

// BinaryTree returns the complete binary tree with n vertices (c = 1).
func BinaryTree(n int) *Graph {
	g := New(fmt.Sprintf("bintree-%d", n), n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, (i-1)/2)
	}
	return g
}

// ParseEdgeList builds a graph from a comma-separated list of "a-b"
// edges, e.g. "0-1,1-2,2-0". The vertex count is 1 + the largest index.
func ParseEdgeList(name, list string) (*Graph, error) {
	type pair struct{ a, b int }
	var pairs []pair
	maxV := -1
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ab := strings.SplitN(part, "-", 2)
		if len(ab) != 2 {
			return nil, fmt.Errorf("graph: bad edge %q (want a-b)", part)
		}
		a, err := strconv.Atoi(strings.TrimSpace(ab[0]))
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex in %q: %v", part, err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(ab[1]))
		if err != nil {
			return nil, fmt.Errorf("graph: bad vertex in %q: %v", part, err)
		}
		if a < 0 || b < 0 || a == b {
			return nil, fmt.Errorf("graph: invalid edge %q", part)
		}
		pairs = append(pairs, pair{a, b})
		if a > maxV {
			maxV = a
		}
		if b > maxV {
			maxV = b
		}
	}
	if maxV < 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	g := New(name, maxV+1)
	for _, p := range pairs {
		g.AddEdge(p.a, p.b)
	}
	return g, nil
}

// VertexConnectivity returns κ(G), the minimum number of vertices whose
// removal disconnects G (or leaves a single vertex); n−1 for complete
// graphs. Computed by max-flow on the split-vertex digraph between
// non-adjacent pairs (and a fixed source against enough targets).
func (g *Graph) VertexConnectivity() int {
	n := g.n
	if n < 2 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	complete := true
	for v := 0; v < n && complete; v++ {
		if g.Degree(v) != n-1 {
			complete = false
		}
	}
	if complete {
		return n - 1
	}
	best := n - 1
	// κ(G) = min over s and all t non-adjacent to s of vertex-maxflow(s,t),
	// where s ranges over a dominating set; using vertex 0 and all
	// neighbors of 0 as sources is the standard Even–Tarjan scheme.
	sources := append([]int{0}, g.adj[0]...)
	for _, s := range sources {
		for t := 0; t < n; t++ {
			if t == s || g.HasEdge(s, t) {
				continue
			}
			if f := g.vertexMaxFlow(s, t); f < best {
				best = f
			}
		}
	}
	return best
}

// vertexMaxFlow computes the maximum number of internally vertex-disjoint
// s–t paths via unit-capacity node splitting.
func (g *Graph) vertexMaxFlow(s, t int) int {
	// Node v splits into v_in (2v) and v_out (2v+1); cap(v_in→v_out) = 1
	// (∞ for s and t); each edge {u,v} gives u_out→v_in and v_out→u_in
	// with capacity ∞ (here: a large constant, flows are ≤ n).
	const inf = 1 << 20
	n := g.n
	capacity := make([]map[int]int, 2*n)
	for i := range capacity {
		capacity[i] = map[int]int{}
	}
	for v := 0; v < n; v++ {
		c := 1
		if v == s || v == t {
			c = inf
		}
		capacity[2*v][2*v+1] = c
	}
	for _, e := range g.Edges() {
		capacity[2*e.U+1][2*e.V] = inf
		capacity[2*e.V+1][2*e.U] = inf
	}
	src, dst := 2*s+1, 2*t
	flow := 0
	parent := make([]int, 2*n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for len(queue) > 0 && parent[dst] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v, c := range capacity[u] {
				if c > 0 && parent[v] < 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[dst] < 0 {
			return flow
		}
		// Bottleneck along the path.
		bottleneck := inf
		for v := dst; v != src; v = parent[v] {
			if c := capacity[parent[v]][v]; c < bottleneck {
				bottleneck = c
			}
		}
		for v := dst; v != src; v = parent[v] {
			capacity[parent[v]][v] -= bottleneck
			capacity[v][parent[v]] += bottleneck
		}
		flow += bottleneck
	}
}
