package scheme

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/buchi"
	"repro/internal/omission"
)

// Parse builds a scheme from a rational-expression-style DSL — the paper
// notes that "the rational expressions prove to be very convenient", and
// this parser makes them a runtime input language:
//
//	[.w]^w            safety closure: only the letters ., w ever occur
//	inf[.b]           infinitely many letters from the set {., b}
//	{u(v)}            the singleton scheme {u·v^ω}, e.g. {w.(b)}
//	NAME              a named scheme from the registry (S0, R1, Fair, …)
//	A | B             union
//	A & B             intersection
//	A \ {u(v)}        removal of one ultimately periodic scenario
//	( A )             grouping
//
// Precedence: \ binds tightest, then &, then |. All results are expressed
// over the full alphabet Σ (named Γ-schemes are widened), so expressions
// can mix Γ- and Σ-level constructs; Classify restricts back to Γ when
// the language allows.
//
// Examples:
//
//	[.w]^w | [.b]^w                    — the environment S1
//	[.wb]^w \ {(b)}                    — the almost-fair scheme
//	inf[.b] & inf[.w]                  — the fair scenarios of Γ^ω... over Σ
//	R1 \ {w(b)} \ {.(b)}               — Γ^ω minus a special pair
func Parse(input string) (*Scheme, error) {
	p := &exprParser{src: input}
	s, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("scheme: trailing input %q at offset %d", p.src[p.pos:], p.pos)
	}
	return MustNew(input, "expression "+input, s.Automaton()), nil
}

// MustParse is Parse panicking on error.
func MustParse(input string) *Scheme {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) errf(format string, args ...any) error {
	return fmt.Errorf("scheme: %s (at offset %d of %q)", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *exprParser) parseUnion() (*Scheme, error) {
	left, err := p.parseIntersection()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		right, err := p.parseIntersection()
		if err != nil {
			return nil, err
		}
		left = Union("", left, right)
	}
	return left, nil
}

func (p *exprParser) parseIntersection() (*Scheme, error) {
	left, err := p.parseMinus()
	if err != nil {
		return nil, err
	}
	for p.peek() == '&' {
		p.pos++
		right, err := p.parseMinus()
		if err != nil {
			return nil, err
		}
		left = Intersect("", left, right)
	}
	return left, nil
}

func (p *exprParser) parseMinus() (*Scheme, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.peek() == '\\' {
		p.pos++
		if p.peek() != '{' {
			return nil, p.errf("'\\' must be followed by a scenario literal {u(v)}")
		}
		sc, err := p.parseScenarioLiteral()
		if err != nil {
			return nil, err
		}
		left = Minus("", left, sc)
	}
	return left, nil
}

func (p *exprParser) parseAtom() (*Scheme, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		inner, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil
	case c == '[':
		set, err := p.parseLetterSet()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(p.src[p.pos:], "^w") {
			return nil, p.errf("letter set must be followed by ^w")
		}
		p.pos += 2
		return MustNew("", "", onlyLetters(len(omission.Sigma), set...)), nil
	case c == '{':
		sc, err := p.parseScenarioLiteral()
		if err != nil {
			return nil, err
		}
		u, v := symbolsOf(sc.Prefix()), symbolsOf(sc.Period())
		return MustNew("", "", buchi.WordDBA(len(omission.Sigma), u, v)), nil
	case strings.HasPrefix(p.src[p.pos:], "inf["):
		p.pos += 3
		set, err := p.parseLetterSet()
		if err != nil {
			return nil, err
		}
		return MustNew("", "", infOften(len(omission.Sigma), set...)), nil
	case unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)):
		start := p.pos
		for p.pos < len(p.src) && (unicode.IsLetter(rune(p.src[p.pos])) || unicode.IsDigit(rune(p.src[p.pos]))) {
			p.pos++
		}
		name := p.src[start:p.pos]
		s, err := ByName(name)
		if err != nil {
			return nil, p.errf("unknown scheme name %q", name)
		}
		return Widen(s), nil
	default:
		return nil, p.errf("unexpected character %q", c)
	}
}

// parseLetterSet consumes "[...]" and returns the letters.
func (p *exprParser) parseLetterSet() ([]omission.Letter, error) {
	if p.peek() != '[' {
		return nil, p.errf("expected '['")
	}
	p.pos++
	var set []omission.Letter
	for p.pos < len(p.src) && p.src[p.pos] != ']' {
		l, err := omission.ParseLetter(rune(p.src[p.pos]))
		if err != nil {
			return nil, p.errf("bad letter %q in set", p.src[p.pos])
		}
		set = append(set, l)
		p.pos++
	}
	if p.pos >= len(p.src) {
		return nil, p.errf("unterminated letter set")
	}
	p.pos++ // ']'
	if len(set) == 0 {
		return nil, p.errf("empty letter set")
	}
	return set, nil
}

// parseScenarioLiteral consumes "{u(v)}".
func (p *exprParser) parseScenarioLiteral() (omission.Scenario, error) {
	if p.peek() != '{' {
		return omission.Scenario{}, p.errf("expected '{'")
	}
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], '}')
	if end < 0 {
		return omission.Scenario{}, p.errf("unterminated scenario literal")
	}
	lit := strings.TrimSpace(p.src[p.pos : p.pos+end])
	p.pos += end + 1
	sc, err := omission.ParseScenario(lit)
	if err != nil {
		return omission.Scenario{}, p.errf("bad scenario literal %q: %v", lit, err)
	}
	return sc, nil
}

func symbolsOf(w omission.Word) []buchi.Symbol {
	out := make([]buchi.Symbol, len(w))
	for i, l := range w {
		out[i] = buchi.Symbol(l)
	}
	return out
}
