package scheme

import (
	"fmt"

	"repro/internal/buchi"
	"repro/internal/omission"
)

// Budgeted schemes: classical failure metrics expressed in the omission
// scheme framework. They connect the paper's arbitrary-pattern view back
// to the f-failures literature: AtMostKLosses(k) is the two-process
// instance of the "at most f omission faults in total" model, whose known
// f+1-round bound ([AT99]'s f+1 lower bound for crash/omission consensus)
// falls out of Corollary III.14 as MinRounds = k+1.

// AtMostKLosses returns the Γ-scheme of scenarios losing at most k
// messages in total. It is solvable (fair scenarios with more than k
// losses are missing) with exact round complexity k+1.
func AtMostKLosses(k int) *Scheme {
	if k < 0 {
		panic("scheme: AtMostKLosses needs k ≥ 0")
	}
	// States 0..k count losses; state k+1 is the rejecting sink.
	total := k + 2
	sink := k + 1
	d := &buchi.DBA{
		Alphabet:  len(omission.Gamma),
		Start:     0,
		Delta:     make([][]buchi.State, total),
		Accepting: make([]bool, total),
	}
	for q := 0; q <= k; q++ {
		next := q + 1                             // sink when q == k
		d.Delta[q] = []buchi.State{q, next, next} // '.', 'w', 'b'
		d.Accepting[q] = true
	}
	d.Delta[sink] = []buchi.State{sink, sink, sink}
	return MustNew(fmt.Sprintf("K%d", k), fmt.Sprintf("at most %d messages lost in total", k), d)
}

// BlackoutBudget returns the Σ-scheme of the "all-or-nothing channel":
// each round either delivers both messages or drops both (letters '.' and
// 'x' only), with at most k blackout rounds in total. It lies outside
// Γ^ω — the regime Theorem III.8 leaves open — but the chain package
// decides its bounded-round solvability: exactly k+1 rounds, realized by
// the FirstCleanExchange algorithm.
func BlackoutBudget(k int) *Scheme {
	if k < 0 {
		panic("scheme: BlackoutBudget needs k ≥ 0")
	}
	total := k + 2
	sink := k + 1
	d := &buchi.DBA{
		Alphabet:  len(omission.Sigma),
		Start:     0,
		Delta:     make([][]buchi.State, total),
		Accepting: make([]bool, total),
	}
	for q := 0; q <= k; q++ {
		next := q + 1
		// '.', 'w', 'b', 'x'
		d.Delta[q] = []buchi.State{q, sink, sink, next}
		d.Accepting[q] = true
	}
	d.Delta[sink] = []buchi.State{sink, sink, sink, sink}
	return MustNew(fmt.Sprintf("BX%d", k), fmt.Sprintf("all-or-nothing channel with at most %d blackout rounds", k), d)
}

// SigmaAtMostKLostMessages returns the Σ-scheme losing at most k messages
// in total, where a double omission costs 2. Another double-omission
// scheme outside the Theorem III.8 regime.
func SigmaAtMostKLostMessages(k int) *Scheme {
	if k < 0 {
		panic("scheme: SigmaAtMostKLostMessages needs k ≥ 0")
	}
	total := k + 2
	sink := k + 1
	d := &buchi.DBA{
		Alphabet:  len(omission.Sigma),
		Start:     0,
		Delta:     make([][]buchi.State, total),
		Accepting: make([]bool, total),
	}
	for q := 0; q <= k; q++ {
		one := q + 1
		if one > k {
			one = sink
		}
		two := q + 2
		if two > k {
			two = sink
		}
		d.Delta[q] = []buchi.State{q, one, one, two}
		d.Accepting[q] = true
	}
	d.Delta[sink] = []buchi.State{sink, sink, sink, sink}
	return MustNew(fmt.Sprintf("ΣK%d", k), fmt.Sprintf("at most %d lost messages in total (double omission costs 2)", k), d)
}
