package scheme

import (
	"fmt"
	"sort"

	"repro/internal/buchi"
	"repro/internal/omission"
)

// onlyLetters returns a safety DBA over the given alphabet size accepting
// exactly the words whose letters all lie in allowed.
func onlyLetters(alphabet int, allowed ...omission.Letter) *buchi.DBA {
	ok := make([]bool, alphabet)
	for _, l := range allowed {
		ok[int(l)] = true
	}
	d := &buchi.DBA{
		Alphabet:  alphabet,
		Start:     0,
		Delta:     make([][]buchi.State, 2),
		Accepting: []bool{true, false},
	}
	for q := 0; q < 2; q++ {
		row := make([]buchi.State, alphabet)
		for a := 0; a < alphabet; a++ {
			if q == 0 && ok[a] {
				row[a] = 0
			} else {
				row[a] = 1
			}
		}
		d.Delta[q] = row
	}
	return d
}

// infOften returns a DBA accepting words containing letters of the set
// infinitely often.
func infOften(alphabet int, set ...omission.Letter) *buchi.DBA {
	in := make([]bool, alphabet)
	for _, l := range set {
		in[int(l)] = true
	}
	d := &buchi.DBA{
		Alphabet:  alphabet,
		Start:     0,
		Delta:     make([][]buchi.State, 2),
		Accepting: []bool{false, true},
	}
	for q := 0; q < 2; q++ {
		row := make([]buchi.State, alphabet)
		for a := 0; a < alphabet; a++ {
			if in[a] {
				row[a] = 1
			} else {
				row[a] = 0
			}
		}
		d.Delta[q] = row
	}
	return d
}

// S0 is environment (1) of Section II-A2: no messenger is ever captured.
// S0 = {(.)^ω}.
func S0() *Scheme {
	return MustNew("S0", "no messenger is captured: { .^ω }",
		onlyLetters(3, omission.None))
}

// TWhite is environment (2): only White's messengers may be captured.
// T_white = {., w}^ω.
func TWhite() *Scheme {
	return MustNew("TW", "only White's messengers may be captured: {., w}^ω",
		onlyLetters(3, omission.None, omission.LossWhite))
}

// TBlack is environment (3): only Black's messengers may be captured.
// T_black = {., b}^ω.
func TBlack() *Scheme {
	return MustNew("TB", "only Black's messengers may be captured: {., b}^ω",
		onlyLetters(3, omission.None, omission.LossBlack))
}

// C1 is environment (4), equivalently the crash-prone model of Example
// II.10: at some point, one (unknown) process's messages are lost forever;
// before that point nothing is lost. C1 = .^ω ∪ .^*(w^ω ∪ b^ω).
func C1() *Scheme {
	const (
		q0   = 0 // only '.' seen so far
		qW   = 1 // inside the w^ω tail
		qB   = 2 // inside the b^ω tail
		sink = 3
	)
	d := &buchi.DBA{
		Alphabet: 3,
		Start:    q0,
		Delta: [][]buchi.State{
			q0:   {q0, qW, qB}, // ., w, b
			qW:   {sink, qW, sink},
			qB:   {sink, sink, qB},
			sink: {sink, sink, sink},
		},
		Accepting: []bool{true, true, true, false},
	}
	return MustNew("C1", "crash-like: .^ω ∪ .^*(w^ω ∪ b^ω)", d)
}

// S1 is environment (5): at most one of the processes loses messages
// (which one is not known in advance). S1 = {., w}^ω ∪ {., b}^ω = TW ∪ TB.
func S1() *Scheme {
	const (
		q0   = 0 // only '.' seen so far
		qW   = 1 // committed: White's messages at risk
		qB   = 2
		sink = 3
	)
	d := &buchi.DBA{
		Alphabet: 3,
		Start:    q0,
		Delta: [][]buchi.State{
			q0:   {q0, qW, qB},
			qW:   {qW, qW, sink},
			qB:   {qB, sink, qB},
			sink: {sink, sink, sink},
		},
		Accepting: []bool{true, true, true, false},
	}
	return MustNew("S1", "at most one process loses messages: {.,w}^ω ∪ {.,b}^ω", d)
}

// R1 is environment (6), the classic scheme of [CHLT00], [GKP03]: at most
// one message can be lost per round. R1 = Γ^ω.
func R1() *Scheme {
	return MustNew("R1", "at most one message lost per round: Γ^ω", buchi.Universal(3))
}

// S2 is environment (7): any messenger may be captured. S2 = Σ^ω.
func S2() *Scheme {
	return MustNew("S2", "any messenger may be captured: Σ^ω", buchi.Universal(4))
}

// Fair is the set of fair scenarios of Γ^ω (Definition III.6): each
// process's messages are delivered infinitely often.
func Fair() *Scheme {
	whiteDelivered := infOften(3, omission.None, omission.LossBlack)
	blackDelivered := infOften(3, omission.None, omission.LossWhite)
	return MustNew("Fair", "fair scenarios of Γ^ω: both directions deliver infinitely often",
		whiteDelivered.Intersect(blackDelivered))
}

// FairSigma is the fair communication scheme F of Example II.8, over the
// full alphabet Σ.
func FairSigma() *Scheme {
	whiteDelivered := infOften(4, omission.None, omission.LossBlack)
	blackDelivered := infOften(4, omission.None, omission.LossWhite)
	return MustNew("FairΣ", "fair scenarios of Σ^ω (Example II.8)",
		whiteDelivered.Intersect(blackDelivered))
}

// AlmostFair is the scheme F̃ = Γ^ω \ {b^ω} of Corollary IV.1: everything
// except the single scenario in which Black's messages are always lost.
// It is solvable, and A_{b^ω} is the folklore intuitive algorithm.
func AlmostFair() *Scheme {
	return MustNew("AlmostFair", "Γ^ω minus the single scenario (b)^ω",
		buchi.NotWordDBA(3, nil, []buchi.Symbol{int(omission.LossBlack)}))
}

// Note there is deliberately no Unfair() scheme: the set of unfair
// scenarios (eventually one direction is always lost) is not
// DBA-recognizable — it is the complement of the DBA language Fair and
// needs nondeterminism. Use Fair().Automaton().Complement() or
// omission.Scenario.IsUnfair instead.

// registry holds the named schemes used by the CLIs.
var registry = map[string]func() *Scheme{
	"S0":         S0,
	"TW":         TWhite,
	"TB":         TBlack,
	"C1":         C1,
	"S1":         S1,
	"R1":         R1,
	"S2":         S2,
	"Fair":       Fair,
	"FairSigma":  FairSigma,
	"AlmostFair": AlmostFair,
	"K1":         func() *Scheme { return AtMostKLosses(1) },
	"K2":         func() *Scheme { return AtMostKLosses(2) },
	"K3":         func() *Scheme { return AtMostKLosses(3) },
	"BX1":        func() *Scheme { return BlackoutBudget(1) },
	"BX2":        func() *Scheme { return BlackoutBudget(2) },
}

// ByName looks up a named scheme ("S0", "TW", "TB", "C1", "S1", "R1",
// "S2", "Fair", "FairSigma", "AlmostFair").
func ByName(name string) (*Scheme, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scheme: unknown scheme %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registry names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SevenEnvironments returns the seven environments of Section II-A2 in
// paper order.
func SevenEnvironments() []*Scheme {
	return []*Scheme{S0(), TWhite(), TBlack(), C1(), S1(), R1(), S2()}
}
