package scheme

import (
	"strings"
	"testing"
)

func TestParseEquivalences(t *testing.T) {
	cases := []struct {
		expr string
		want *Scheme
	}{
		{"[.w]^w | [.b]^w", S1()},
		{"[.w]^w & [.b]^w", S0()},
		{"[.]^w", S0()},
		{"[.wb]^w \\ {(b)}", AlmostFair()},
		{"[.wb]^w", R1()},
		{"[.wbx]^w", S2()},
		{"inf[.b] & inf[.w] & [.wb]^w", Fair()},
		{"R1 \\ {w(b)} \\ {.(b)}", Minus("", R1(), sc("w(b)"), sc(".(b)"))},
		{"S0 | {(w)} | {(b)}", Union("", Widen(S0()), Union("", MustParse("{(w)}"), MustParse("{(b)}")))},
		{"(TW | TB)", S1()},
		{"C1", C1()},
	}
	for _, c := range cases {
		got, err := Parse(c.expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.expr, err)
		}
		eq, w := Equivalent(got, c.want)
		if !eq {
			t.Errorf("Parse(%q) ≠ %s: differs at %s", c.expr, c.want.Name(), w)
		}
	}
}

func TestParseSingletons(t *testing.T) {
	s := MustParse("{w.(b)}")
	if !s.Contains(sc("w.(b)")) {
		t.Error("singleton must contain its scenario")
	}
	if s.Contains(sc("(.)")) || s.Contains(sc("w.(bb.)")) {
		t.Error("singleton must contain nothing else")
	}
	// Same ω-word in a different representation is still a member.
	if !s.Contains(sc("w.b(bb)")) {
		t.Error("membership is semantic")
	}
	// Scenario literals with double omissions work.
	if !MustParse("{(x.)}").Contains(sc("(x.)")) {
		t.Error("Σ-literal")
	}
}

func TestParsePrecedence(t *testing.T) {
	// '\' binds tighter than '&' which binds tighter than '|':
	// A | B & C \ {s}  =  A | (B & (C \ {s})).
	left := MustParse("[.w]^w | [.b]^w & [.wb]^w \\ {(b)}")
	right := Union("", TWhite(), Intersect("", TBlack(), AlmostFair()))
	eq, w := Equivalent(left, right)
	if !eq {
		t.Errorf("precedence wrong: differs at %s", w)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"[",
		"[]^w",
		"[.w]",
		"[zq]^w",
		"{(b)",
		"{zz}",
		"unknownScheme",
		"( [.w]^w",
		"[.w]^w |",
		"[.w]^w extra",
		"\\ {(b)}",
		"[.w]^w \\ [.b]^w",
		"inf[",
	}
	for _, e := range bad {
		if _, err := Parse(e); err == nil {
			t.Errorf("Parse(%q) should fail", e)
		}
	}
	// MustParse panics on bad input.
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic")
		}
	}()
	MustParse("[")
}

func TestParseNamesCarryExpression(t *testing.T) {
	s := MustParse("TW | TB")
	if !strings.Contains(s.Description(), "TW | TB") {
		t.Errorf("description %q", s.Description())
	}
}

func TestToDOT(t *testing.T) {
	dot := S1().ToDOT()
	for _, m := range []string{"digraph", "doublecircle", "rankdir=LR", "start ->", `label="w"`} {
		if !strings.Contains(dot, m) {
			t.Errorf("missing %q in DOT:\n%s", m, dot)
		}
	}
	// Letters merge onto one edge where targets coincide.
	if !strings.Contains(R1().ToDOT(), `label=".,w,b"`) {
		t.Errorf("merged labels missing:\n%s", R1().ToDOT())
	}
}
