package scheme

import (
	"testing"

	"repro/internal/omission"
)

func TestAtMostKLosses(t *testing.T) {
	k2 := AtMostKLosses(2)
	in := []string{"(.)", "w(.)", "wb(.)", "w.b(.)", ".w.b.(.)"}
	out := []string{"(w)", "(b)", "wbw(.)", "(.w)", "www(.)"}
	for _, s := range in {
		if !k2.Contains(sc(s)) {
			t.Errorf("K2 should contain %s", s)
		}
	}
	for _, s := range out {
		if k2.Contains(sc(s)) {
			t.Errorf("K2 should not contain %s", s)
		}
	}
	// Monotone in k.
	for k := 0; k < 4; k++ {
		ok, w := SubsetOf(AtMostKLosses(k), AtMostKLosses(k+1))
		if !ok {
			t.Fatalf("K%d ⊄ K%d: %s", k, k+1, w)
		}
	}
	// K0 = S0.
	if eq, w := Equivalent(AtMostKLosses(0), S0()); !eq {
		t.Errorf("K0 ≠ S0: %s", w)
	}
	assertBudgetPanics(t, func() { AtMostKLosses(-1) })
}

func TestBlackoutBudget(t *testing.T) {
	b2 := BlackoutBudget(2)
	for _, s := range []string{"(.)", "x(.)", "xx(.)", ".x.x(.)"} {
		if !b2.Contains(sc(s)) {
			t.Errorf("BX2 should contain %s", s)
		}
	}
	for _, s := range []string{"xxx(.)", "(x)", "w(.)", "(b)", "x(w)"} {
		if b2.Contains(sc(s)) {
			t.Errorf("BX2 should not contain %s", s)
		}
	}
	if b2.OverGamma() {
		t.Error("BX schemes are over Σ")
	}
	assertBudgetPanics(t, func() { BlackoutBudget(-1) })
}

func TestSigmaAtMostKLostMessages(t *testing.T) {
	k2 := SigmaAtMostKLostMessages(2)
	for _, s := range []string{"(.)", "x(.)", "wb(.)", "ww(.)", "bb.(.)"} {
		if !k2.Contains(sc(s)) {
			t.Errorf("ΣK2 should contain %s", s)
		}
	}
	for _, s := range []string{"xx(.)", "xw(.)", "www(.)", "(x)"} {
		if k2.Contains(sc(s)) {
			t.Errorf("ΣK2 should not contain %s", s)
		}
	}
	// A single double omission costs two: ΣK1 excludes x entirely.
	k1 := SigmaAtMostKLostMessages(1)
	if k1.Contains(sc("x(.)")) {
		t.Error("ΣK1 must exclude any double omission")
	}
	if !k1.Contains(sc("w(.)")) {
		t.Error("ΣK1 allows one single loss")
	}
	// Restricted to Γ-letters, ΣKk equals Kk.
	gammaOnly := MustNew("Γω", "", onlyLetters(4, omission.None, omission.LossWhite, omission.LossBlack))
	restricted := Intersect("ΣK2∩Γω", k2, gammaOnly)
	if eq, w := Equivalent(restricted, AtMostKLosses(2)); !eq {
		t.Errorf("ΣK2 ∩ Γ^ω ≠ K2: %s", w)
	}
	assertBudgetPanics(t, func() { SigmaAtMostKLostMessages(-1) })
}

func assertBudgetPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
