package scheme

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/buchi"
	"repro/internal/omission"
)

func sc(s string) omission.Scenario { return omission.MustScenario(s) }
func wd(s string) omission.Word     { return omission.MustWord(s) }

// TestNamedMembership pins membership of characteristic scenarios in each
// named scheme, following the formulas of Example II.11.
func TestNamedMembership(t *testing.T) {
	cases := []struct {
		scheme *Scheme
		in     []string
		out    []string
	}{
		{S0(), []string{"(.)"}, []string{"(w)", "(b)", "w(.)", "(.b)", "(x)"}},
		{TWhite(), []string{"(.)", "(w)", "(.w)", "www(.)"}, []string{"(b)", "(.b)", "w(b)", "(x)"}},
		{TBlack(), []string{"(.)", "(b)", "(.b)"}, []string{"(w)", "(.w)", "b(w)", "(x)"}},
		{C1(), []string{"(.)", "(w)", "(b)", "...(w)", ".(b)"}, []string{"(.w)", "w.(w)", "(wb)", "b.(b)", "(x)", ".w(.)"}},
		{S1(), []string{"(.)", "(w)", "(b)", "(.w)", "(.b)", "w.w(.)"}, []string{"(wb)", "w(b)", "b(w)", "(x)"}},
		{R1(), []string{"(.)", "(w)", "(b)", "(wb)", ".w.b(.)"}, []string{"(x)", ".(x)", "(.x)"}},
		{S2(), []string{"(.)", "(w)", "(b)", "(x)", "(wx)", ".wbx(.)"}, nil},
		{Fair(), []string{"(.)", "(wb)", "(.w)", "(.b)", "wwww(.)"}, []string{"(w)", "(b)", "..(w)", "w(b)", "(x)"}},
		{AlmostFair(), []string{"(.)", "(w)", "(wb)", "b(w)", "b(.)", "bbb(.b)"}, []string{"(b)", "b(b)", "(bb)", "(x)"}},
	}
	for _, c := range cases {
		for _, s := range c.in {
			if !c.scheme.Contains(sc(s)) {
				t.Errorf("%s should contain %s", c.scheme.Name(), s)
			}
		}
		for _, s := range c.out {
			if c.scheme.Contains(sc(s)) {
				t.Errorf("%s should not contain %s", c.scheme.Name(), s)
			}
		}
	}
}

func TestS1IsUnionOfTs(t *testing.T) {
	union := Union("TW∪TB", TWhite(), TBlack())
	eq, witness := Equivalent(S1(), union)
	if !eq {
		t.Fatalf("S1 ≠ TW ∪ TB; distinguishing scenario %s", witness)
	}
}

func TestFairSigmaRestrictsToFair(t *testing.T) {
	// Fair over Γ = FairΣ ∩ Γ^ω.
	gammaOnly := MustNew("Γω", "", onlyLetters(4, omission.None, omission.LossWhite, omission.LossBlack))
	restricted := Intersect("FairΣ∩Γω", FairSigma(), gammaOnly)
	eq, witness := Equivalent(Fair(), restricted)
	if !eq {
		t.Fatalf("Fair(Γ) ≠ FairΣ ∩ Γ^ω; distinguishing scenario %s", witness)
	}
}

func TestSubsetRelations(t *testing.T) {
	// S0 ⊆ TW ⊆ S1 ⊆ R1 ⊆ S2 (after widening) and C1 ⊆ S1.
	chain := []*Scheme{S0(), TWhite(), S1(), R1(), S2()}
	for i := 0; i+1 < len(chain); i++ {
		ok, w := SubsetOf(chain[i], chain[i+1])
		if !ok {
			t.Errorf("%s ⊄ %s: counterexample %s", chain[i].Name(), chain[i+1].Name(), w)
		}
	}
	if ok, _ := SubsetOf(S1(), C1()); ok {
		t.Error("S1 should not be a subset of C1")
	}
	if ok, w := SubsetOf(C1(), S1()); !ok {
		t.Errorf("C1 ⊆ S1 fails: %s", w)
	}
	if ok, _ := SubsetOf(R1(), Fair()); ok {
		t.Error("R1 contains unfair scenarios")
	}
	if ok, w := SubsetOf(Fair(), R1()); !ok {
		t.Errorf("Fair ⊆ Γ^ω fails: %s", w)
	}
}

func TestMinusRemovesExactly(t *testing.T) {
	l := Minus("R1-2", R1(), sc("(b)"), sc("w(.)"))
	if l.Contains(sc("(b)")) || l.Contains(sc("w(.)")) {
		t.Error("Minus failed to remove scenarios")
	}
	// Equal ω-words in other representations are removed too.
	if l.Contains(sc("b(bb)")) || l.Contains(sc("w.(..)")) {
		t.Error("Minus must remove by ω-word semantics, not representation")
	}
	for _, s := range []string{"(.)", "(w)", "b(b.)", "ww(.)"} {
		if !l.Contains(sc(s)) {
			t.Errorf("Minus removed too much: %s", s)
		}
	}
	// AlmostFair = Minus(R1, (b)).
	eq, w := Equivalent(AlmostFair(), Minus("", R1(), sc("(b)")))
	if !eq {
		t.Fatalf("AlmostFair ≠ R1 \\ {(b)}: %s", w)
	}
}

func TestPrefixOracle(t *testing.T) {
	c1 := C1()
	if !c1.AcceptsPrefix(wd("...w")) {
		t.Error("...w is a C1 prefix")
	}
	if c1.AcceptsPrefix(wd("w.")) {
		t.Error("w. is not a C1 prefix (after a loss, losses continue)")
	}
	if !c1.AcceptsPrefix(wd("")) {
		t.Error("ε is a prefix of any non-empty scheme")
	}
	o := c1.NewPrefixOracle()
	if !o.Live() || !o.CanStep(omission.None) || !o.CanStep(omission.LossWhite) {
		t.Error("oracle at ε should allow . and w")
	}
	if o.CanStep(omission.LossBoth) {
		t.Error("Γ-scheme cannot step on x")
	}
	o.Step(omission.LossWhite)
	if o.CanStep(omission.None) {
		t.Error("after w, '.' must be unavailable in C1")
	}
	c := o.Clone()
	if !o.Step(omission.LossWhite) {
		t.Error("w after w should stay live")
	}
	if !c.Live() {
		t.Error("clone independent")
	}
	if c.Step(omission.LossBlack) {
		t.Error("b after w dies in C1")
	}
}

func TestSamplePrefixStaysInScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range []*Scheme{S0(), TWhite(), C1(), S1(), Fair(), AlmostFair()} {
		for i := 0; i < 20; i++ {
			w, ok := s.SamplePrefix(rng, 10)
			if !ok {
				t.Fatalf("%s: sampling failed", s.Name())
			}
			if !s.AcceptsPrefix(w) {
				t.Fatalf("%s: sampled %v not a prefix", s.Name(), w)
			}
		}
	}
}

func TestIsEmpty(t *testing.T) {
	for _, s := range SevenEnvironments() {
		empty, member := s.IsEmpty()
		if empty {
			t.Fatalf("%s should be non-empty", s.Name())
		}
		if !s.Contains(member) {
			t.Fatalf("%s: returned member %s not contained", s.Name(), member)
		}
	}
	emptyScheme := MustNew("none", "", buchi.EmptyDBA(3))
	if empty, _ := emptyScheme.IsEmpty(); !empty {
		t.Error("empty scheme must report empty")
	}
	if _, ok := emptyScheme.SamplePrefix(rand.New(rand.NewSource(1)), 3); ok {
		t.Error("sampling empty scheme must fail")
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, n := range Names() {
		s, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() == "" || s.Description() == "" {
			t.Errorf("%s: empty name/description", n)
		}
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Error("unknown scheme must error")
	}
	if len(SevenEnvironments()) != 7 {
		t.Error("seven environments")
	}
}

func TestWiden(t *testing.T) {
	w := Widen(R1())
	if w.OverGamma() {
		t.Error("widened scheme should be over Σ")
	}
	if w.Contains(sc("(x)")) {
		t.Error("widened Γ^ω must not contain x-scenarios")
	}
	if !w.Contains(sc("(wb)")) {
		t.Error("widened Γ^ω keeps Γ-scenarios")
	}
	s2 := S2()
	if Widen(s2) != s2 {
		t.Error("Widen must be the identity on Σ-schemes")
	}
	// Widening preserves the language on Γ-scenarios.
	eq, dw := Equivalent(R1(), w)
	if !eq {
		t.Errorf("Widen changed the language: %s", dw)
	}
}

func TestRandomSchemeDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(5)), 4)
	b := Random(rand.New(rand.NewSource(5)), 4)
	eq, w := Equivalent(a, b)
	if !eq {
		t.Fatalf("same seed produced different schemes: %s", w)
	}
	if !a.OverGamma() {
		t.Error("random schemes are over Γ")
	}
	if Random(rand.New(rand.NewSource(5)), 0) == nil {
		t.Error("states<1 should clamp")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", "", nil); err == nil {
		t.Error("nil automaton must fail")
	}
	if _, err := New("x", "", buchi.Universal(5)); err == nil {
		t.Error("alphabet 5 must fail")
	}
	bad := &buchi.DBA{Alphabet: 3, Start: 9, Delta: [][]buchi.State{{0, 0, 0}}, Accepting: []bool{true}}
	if _, err := New("x", "", bad); err == nil {
		t.Error("invalid automaton must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on invalid input")
		}
	}()
	MustNew("x", "", nil)
}

func TestSymbolsErrors(t *testing.T) {
	r1 := R1()
	if _, err := r1.Symbols(wd(".x")); err == nil {
		t.Error("x outside Γ alphabet")
	}
	if r1.Contains(sc("(x)")) {
		t.Error("Γ-scheme cannot contain x-scenarios")
	}
	if r1.AcceptsPrefix(wd("x")) {
		t.Error("Γ-scheme cannot have x-prefixes")
	}
	// Mismatched-alphabet combinators panic.
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Intersect("bad", R1(), S2())
}
