package scheme

import (
	"math/big"
	"math/rand"

	"repro/internal/buchi"
	"repro/internal/omission"
)

// ExtendToScenario completes a word w ∈ Pref(L) into an ultimately
// periodic scenario w·stem·(loop)^ω ∈ L, deterministically (the shortest
// lasso from the automaton state reached on w). ok is false when w is not
// in Pref(L).
func (s *Scheme) ExtendToScenario(w omission.Word) (omission.Scenario, bool) {
	sym, err := s.Symbols(w)
	if err != nil {
		return omission.Scenario{}, false
	}
	q := s.auto.StepWord(sym)
	// Non-emptiness from q: reuse the NBA machinery with a shifted start.
	n := s.auto.NBA()
	n.Start = []buchi.State{q}
	empty, lasso := n.IsEmpty()
	if empty {
		return omission.Scenario{}, false
	}
	prefix := w.Concat(Letters(lasso.Stem))
	return omission.UPWord(prefix, Letters(lasso.Loop)), true
}

// SampleScenario draws a random member of L: a random prefix of the given
// length (uniform over live extensions) completed into an ultimately
// periodic scenario. ok is false when the scheme is empty.
func (s *Scheme) SampleScenario(rng *rand.Rand, prefixLen int) (omission.Scenario, bool) {
	w, ok := s.SamplePrefix(rng, prefixLen)
	if !ok {
		return omission.Scenario{}, false
	}
	return s.ExtendToScenario(w)
}

// CountPrefixes returns |Pref(L) ∩ Γ^r| (Σ^r for Σ-schemes): how many
// partial scenarios of length r the environment allows. Computed by
// dynamic programming over the automaton: dead states (empty language)
// are absorbing, so a word lies in Pref(L) iff its run ends in a live
// state.
func (s *Scheme) CountPrefixes(r int) *big.Int {
	live := s.auto.NBA().LiveStates()
	n := s.auto.NumStates()
	counts := make([]*big.Int, n)
	for i := range counts {
		counts[i] = new(big.Int)
	}
	counts[s.auto.Start].SetInt64(1)
	for step := 0; step < r; step++ {
		next := make([]*big.Int, n)
		for i := range next {
			next[i] = new(big.Int)
		}
		for q := 0; q < n; q++ {
			if counts[q].Sign() == 0 {
				continue
			}
			for a := 0; a < s.auto.Alphabet; a++ {
				next[s.auto.Delta[q][a]].Add(next[s.auto.Delta[q][a]], counts[q])
			}
		}
		counts = next
	}
	total := new(big.Int)
	for q := 0; q < n; q++ {
		if live[q] {
			total.Add(total, counts[q])
		}
	}
	return total
}

// AllPrefixes enumerates Pref(L) ∩ Γ^r (or Σ^r for Σ-schemes): every
// length-r word that extends to a member of the scheme.
func (s *Scheme) AllPrefixes(r int) []omission.Word {
	alphabet := omission.Gamma
	if !s.OverGamma() {
		alphabet = omission.Sigma
	}
	live := s.auto.NBA().LiveStates()
	var out []omission.Word
	cur := make(omission.Word, 0, r)
	var rec func(q buchi.State, depth int)
	rec = func(q buchi.State, depth int) {
		if !live[q] {
			return
		}
		if depth == r {
			out = append(out, cur.Clone())
			return
		}
		for _, l := range alphabet {
			cur = append(cur, l)
			rec(s.auto.Delta[q][int(l)], depth+1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(s.auto.Start, 0)
	return out
}
