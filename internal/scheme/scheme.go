// Package scheme represents omission schemes — the sets of infinite loss
// scenarios of Definition II.2 — as ω-regular languages backed by
// deterministic Büchi automata, and provides every named scheme from the
// paper plus combinators to build new ones.
//
// The paper observes that "all communication schemes we are aware of are
// regular"; this package is the executable form of that observation. A
// Scheme over Γ (no double omission) can be fed to the classify package,
// which decides Theorem III.8. Schemes over the full alphabet Σ are also
// representable (e.g. S2 = Σ^ω) for the monotonicity arguments.
package scheme

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/buchi"
	"repro/internal/omission"
)

// Scheme is an ω-regular omission scheme: a named language of infinite
// loss scenarios. The automaton alphabet is indexed by omission.Letter
// values: symbol 0 = None, 1 = LossWhite, 2 = LossBlack, 3 = LossBoth.
// Schemes over Γ use alphabet size 3; schemes over Σ use 4.
type Scheme struct {
	name string
	desc string
	auto *buchi.DBA

	// pdfa caches the compiled prefix DFA (see PrefixDFA); automata are
	// immutable once wrapped, so the compilation is done at most once.
	pdfaOnce sync.Once
	pdfa     *PrefixDFA
}

// New wraps a deterministic Büchi automaton as a scheme. The automaton
// alphabet must be 3 (Γ) or 4 (Σ).
func New(name, desc string, auto *buchi.DBA) (*Scheme, error) {
	if auto == nil {
		return nil, fmt.Errorf("scheme: nil automaton")
	}
	if err := auto.Validate(); err != nil {
		return nil, err
	}
	if auto.Alphabet != len(omission.Gamma) && auto.Alphabet != len(omission.Sigma) {
		return nil, fmt.Errorf("scheme: alphabet size %d, want 3 (Γ) or 4 (Σ)", auto.Alphabet)
	}
	return &Scheme{name: name, desc: desc, auto: auto}, nil
}

// MustNew is New that panics on error.
func MustNew(name, desc string, auto *buchi.DBA) *Scheme {
	s, err := New(name, desc, auto)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the scheme's short name.
func (s *Scheme) Name() string { return s.name }

// Description returns the scheme's one-line description.
func (s *Scheme) Description() string { return s.desc }

// String implements fmt.Stringer.
func (s *Scheme) String() string { return s.name }

// Automaton returns the underlying DBA (shared; treat as read-only).
func (s *Scheme) Automaton() *buchi.DBA { return s.auto }

// OverGamma reports whether the scheme is expressed over Γ (alphabet 3).
// Note a Σ-scheme may still happen to contain only Γ-words.
func (s *Scheme) OverGamma() bool { return s.auto.Alphabet == len(omission.Gamma) }

// Symbols converts a word to automaton symbols; it reports an error if a
// letter is outside the scheme's alphabet.
func (s *Scheme) Symbols(w omission.Word) ([]buchi.Symbol, error) {
	out := make([]buchi.Symbol, len(w))
	for i, l := range w {
		if int(l) >= s.auto.Alphabet {
			return nil, fmt.Errorf("scheme %s: letter %v outside alphabet", s.name, l)
		}
		out[i] = buchi.Symbol(l)
	}
	return out, nil
}

// Letters converts automaton symbols back to a word.
func Letters(sym []buchi.Symbol) omission.Word {
	w := make(omission.Word, len(sym))
	for i, a := range sym {
		w[i] = omission.Letter(a)
	}
	return w
}

// Contains reports whether the ultimately periodic scenario belongs to the
// scheme. Scenarios using letters outside the scheme's alphabet are not
// members.
func (s *Scheme) Contains(sc omission.Scenario) bool {
	u, err := s.Symbols(sc.Prefix())
	if err != nil {
		return false
	}
	v, err := s.Symbols(sc.Period())
	if err != nil {
		return false
	}
	return s.auto.AcceptsUP(u, v)
}

// AcceptsPrefix reports whether some scenario of the scheme begins with w,
// i.e. w ∈ Pref(L) (Definition II.4).
func (s *Scheme) AcceptsPrefix(w omission.Word) bool {
	sym, err := s.Symbols(w)
	if err != nil {
		return false
	}
	return s.auto.NBA().AcceptsPrefix(sym)
}

// PrefixOracle supports incremental Pref(L) queries: extend a partial
// scenario letter by letter, checking at each step whether it remains
// extendable to a member of L.
type PrefixOracle struct {
	s *Scheme
	o *buchi.PrefixOracle
}

// NewPrefixOracle returns an oracle positioned at ε.
func (s *Scheme) NewPrefixOracle() *PrefixOracle {
	return &PrefixOracle{s: s, o: s.auto.NBA().NewPrefixOracle()}
}

// Step appends a letter and reports whether the prefix is still in Pref(L).
func (p *PrefixOracle) Step(l omission.Letter) bool {
	if int(l) >= p.s.auto.Alphabet {
		return false
	}
	return p.o.Step(buchi.Symbol(l))
}

// CanStep reports whether appending l would keep the prefix in Pref(L).
func (p *PrefixOracle) CanStep(l omission.Letter) bool {
	if int(l) >= p.s.auto.Alphabet {
		return false
	}
	return p.o.CanStep(buchi.Symbol(l))
}

// Live reports whether the current prefix is in Pref(L).
func (p *PrefixOracle) Live() bool { return p.o.Live() }

// Clone returns an independent copy.
func (p *PrefixOracle) Clone() *PrefixOracle { return &PrefixOracle{s: p.s, o: p.o.Clone()} }

// SamplePrefix draws a random element of Pref(L) ∩ Σ^n, or ok=false when
// the scheme is empty.
func (s *Scheme) SamplePrefix(rng *rand.Rand, n int) (omission.Word, bool) {
	sym, ok := s.auto.NBA().SamplePrefix(rng, n)
	if !ok {
		return nil, false
	}
	return Letters(sym), true
}

// IsEmpty reports whether the scheme contains no scenario at all; when
// non-empty a member scenario is returned.
func (s *Scheme) IsEmpty() (bool, omission.Scenario) {
	empty, w := s.auto.NBA().IsEmpty()
	if empty {
		return true, omission.Scenario{}
	}
	return false, omission.UPWord(Letters(w.Stem), Letters(w.Loop))
}

// sameAlphabet panics unless the two schemes share an alphabet size.
func sameAlphabet(a, b *Scheme) {
	if a.auto.Alphabet != b.auto.Alphabet {
		panic(fmt.Sprintf("scheme: %s is over alphabet %d but %s is over %d; widen first",
			a.name, a.auto.Alphabet, b.name, b.auto.Alphabet))
	}
}

// Intersect returns the scheme L(a) ∩ L(b).
func Intersect(name string, a, b *Scheme) *Scheme {
	sameAlphabet(a, b)
	return MustNew(name, fmt.Sprintf("(%s ∩ %s)", a.name, b.name), a.auto.Intersect(b.auto))
}

// Union returns the scheme L(a) ∪ L(b).
func Union(name string, a, b *Scheme) *Scheme {
	sameAlphabet(a, b)
	return MustNew(name, fmt.Sprintf("(%s ∪ %s)", a.name, b.name), a.auto.Union(b.auto))
}

// Minus returns L(s) with the given ultimately periodic scenarios removed.
// Each removal is a product with a small "everything but one word" DBA;
// condensing dead states between steps keeps chained removals from
// blowing up multiplicatively.
func Minus(name string, s *Scheme, scs ...omission.Scenario) *Scheme {
	auto := s.auto
	for _, sc := range scs {
		u, err := s.Symbols(sc.Prefix())
		if err != nil {
			panic(err)
		}
		v, err := s.Symbols(sc.Period())
		if err != nil {
			panic(err)
		}
		auto = auto.Intersect(buchi.NotWordDBA(auto.Alphabet, u, v)).Condense()
	}
	desc := fmt.Sprintf("%s minus %d scenario(s)", s.name, len(scs))
	return MustNew(name, desc, auto)
}

// Widen re-expresses a Γ-scheme over the full alphabet Σ (adding a
// rejecting sink for the double omission). It is the identity on
// Σ-schemes.
func Widen(s *Scheme) *Scheme {
	if !s.OverGamma() {
		return s
	}
	old := s.auto
	n := old.NumStates()
	sink := n
	d := &buchi.DBA{
		Alphabet:  len(omission.Sigma),
		Start:     old.Start,
		Delta:     make([][]buchi.State, n+1),
		Accepting: make([]bool, n+1),
	}
	for q := 0; q < n; q++ {
		row := make([]buchi.State, 4)
		for a := 0; a < 3; a++ {
			row[a] = old.Delta[q][a]
		}
		row[int(omission.LossBoth)] = sink
		d.Delta[q] = row
		d.Accepting[q] = old.Accepting[q]
	}
	d.Delta[sink] = []buchi.State{sink, sink, sink, sink}
	return MustNew(s.name, s.desc, d)
}

// Equivalent reports whether two schemes denote the same ω-language, by
// checking both difference languages for emptiness. A distinguishing
// scenario is returned when they differ. Schemes over different alphabets
// are compared after widening.
func Equivalent(a, b *Scheme) (bool, omission.Scenario) {
	a, b = Widen(a), Widen(b)
	// a \ b nonempty?
	diff := a.auto.NBA().Intersect(b.auto.Complement())
	if empty, w := diff.IsEmpty(); !empty {
		return false, omission.UPWord(Letters(w.Stem), Letters(w.Loop))
	}
	diff = b.auto.NBA().Intersect(a.auto.Complement())
	if empty, w := diff.IsEmpty(); !empty {
		return false, omission.UPWord(Letters(w.Stem), Letters(w.Loop))
	}
	return true, omission.Scenario{}
}

// SubsetOf reports whether L(a) ⊆ L(b); when not, a scenario in a\b is
// returned.
func SubsetOf(a, b *Scheme) (bool, omission.Scenario) {
	a, b = Widen(a), Widen(b)
	diff := a.auto.NBA().Intersect(b.auto.Complement())
	if empty, w := diff.IsEmpty(); !empty {
		return false, omission.UPWord(Letters(w.Stem), Letters(w.Loop))
	}
	return true, omission.Scenario{}
}

// Random returns a pseudo-random scheme over Γ with the given number of
// automaton states, for fuzz-testing the classifier. The automaton is
// trimmed; the language may be empty.
func Random(rng *rand.Rand, states int) *Scheme {
	if states < 1 {
		states = 1
	}
	d := &buchi.DBA{
		Alphabet:  len(omission.Gamma),
		Start:     0,
		Delta:     make([][]buchi.State, states),
		Accepting: make([]bool, states),
	}
	for q := 0; q < states; q++ {
		row := make([]buchi.State, 3)
		for a := 0; a < 3; a++ {
			row[a] = rng.Intn(states)
		}
		d.Delta[q] = row
		d.Accepting[q] = rng.Intn(2) == 0
	}
	return MustNew(fmt.Sprintf("random-%d", rng.Int63()), "random DBA scheme over Γ", d.Trim())
}
