package scheme

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/buchi"
	"repro/internal/omission"
)

// PrefixDFA is the scheme's prefix oracle compiled into a flat DFA
// transition table. Each state is one live class of the subset
// construction over the scheme's Büchi automaton; Step moves by plain
// integer indexing, with no allocation and no oracle cloning. State -1 is
// the dead state: the extended word has left Pref(L). Every non-negative
// state is live by construction, so "the walk is still inside Pref(L)"
// is simply "the state is ≥ 0".
//
// This is the hot-path form of PrefixOracle used by the full-information
// analysis engine: the tree walks of internal/chain and internal/nchain
// step millions of edges, and a slice lookup per edge is what lets the
// enumeration fan out across workers without sharing mutable oracles.
type PrefixDFA struct {
	alphabet int
	start    int
	next     []int32 // next[state*alphabet+sym]; -1 = dead
}

// Alphabet returns the symbol-alphabet size (3 for Γ-schemes, 4 for Σ).
func (d *PrefixDFA) Alphabet() int { return d.alphabet }

// Start returns the initial state, or -1 when the scheme is empty (ε is
// not a prefix of any member).
func (d *PrefixDFA) Start() int { return d.start }

// NumStates returns the number of live states.
func (d *PrefixDFA) NumStates() int {
	if d.alphabet == 0 {
		return 0
	}
	return len(d.next) / d.alphabet
}

// Step returns the successor of state under the symbol, or -1 when the
// extension leaves Pref(L). Symbols outside the alphabet are dead.
func (d *PrefixDFA) Step(state, sym int) int {
	if sym < 0 || sym >= d.alphabet {
		return -1
	}
	return int(d.next[state*d.alphabet+sym])
}

// StepLetter is Step on an omission letter.
func (d *PrefixDFA) StepLetter(state int, l omission.Letter) int {
	return d.Step(state, int(l))
}

// maxPrefixDFAStates bounds the subset construction. Scheme automata are
// deterministic, so in practice the DFA has at most as many states as the
// scheme's automaton has live states; the cap only guards pathological
// future NBA-backed schemes.
const maxPrefixDFAStates = 1 << 16

// PrefixDFA compiles (once, cached) the scheme's Pref(L) membership
// automaton into flat-table form.
func (s *Scheme) PrefixDFA() *PrefixDFA {
	s.pdfaOnce.Do(func() { s.pdfa = compilePrefixDFA(s.auto.NBA()) })
	return s.pdfa
}

// compilePrefixDFA runs the subset construction restricted to live NBA
// states. Dead NBA states can never contribute a live state again (their
// successor cones are dead), so dropping them from every subset preserves
// the oracle's CanStep/Live semantics exactly.
func compilePrefixDFA(n *buchi.NBA) *PrefixDFA {
	live := n.LiveStates()
	d := &PrefixDFA{alphabet: n.Alphabet, start: -1}
	start := filterLive(n.Start, live)
	if len(start) == 0 {
		return d
	}
	d.start = 0
	index := map[string]int{subsetKey(start): 0}
	subsets := [][]buchi.State{start}
	mark := make([]bool, n.NumStates())
	for qi := 0; qi < len(subsets); qi++ {
		for a := 0; a < n.Alphabet; a++ {
			var next []buchi.State
			for _, q := range subsets[qi] {
				for _, t := range n.Delta[q][a] {
					if live[t] && !mark[t] {
						mark[t] = true
						next = append(next, t)
					}
				}
			}
			for _, t := range next {
				mark[t] = false
			}
			if len(next) == 0 {
				d.next = append(d.next, -1)
				continue
			}
			sort.Ints(next)
			k := subsetKey(next)
			id, ok := index[k]
			if !ok {
				id = len(subsets)
				if id >= maxPrefixDFAStates {
					panic(fmt.Sprintf("scheme: prefix DFA exceeds %d states", maxPrefixDFAStates))
				}
				index[k] = id
				subsets = append(subsets, next)
			}
			d.next = append(d.next, int32(id))
		}
	}
	return d
}

// filterLive returns the sorted, deduplicated live members of states.
func filterLive(states []buchi.State, live []bool) []buchi.State {
	var out []buchi.State
	for _, q := range states {
		if live[q] {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	n := 0
	for i, q := range out {
		if i == 0 || q != out[n-1] {
			out[n] = q
			n++
		}
	}
	return out[:n]
}

// subsetKey encodes a sorted state set as a map key.
func subsetKey(states []buchi.State) string {
	b := make([]byte, 0, 4*len(states))
	for _, q := range states {
		b = binary.AppendUvarint(b, uint64(q))
	}
	return string(b)
}
