package scheme

import (
	"math/rand"
	"testing"

	"repro/internal/omission"
)

func TestExtendToScenario(t *testing.T) {
	c1 := C1()
	sc, ok := c1.ExtendToScenario(wd("..w"))
	if !ok {
		t.Fatal("..w is a C1 prefix")
	}
	if !c1.Contains(sc) {
		t.Fatalf("extension %s not in C1", sc)
	}
	if !wd("..w").IsPrefixOf(sc.PrefixWord(3)) {
		t.Fatalf("extension %s does not extend ..w", sc)
	}
	if _, ok := c1.ExtendToScenario(wd("w.")); ok {
		t.Error("w. is not a C1 prefix")
	}
	if _, ok := c1.ExtendToScenario(wd("x")); ok {
		t.Error("Γ-scheme has no x-prefixes")
	}
}

func TestSampleScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range []*Scheme{S0(), C1(), S1(), Fair(), AlmostFair(), AtMostKLosses(2), BlackoutBudget(1)} {
		for i := 0; i < 20; i++ {
			sc, ok := s.SampleScenario(rng, rng.Intn(6))
			if !ok {
				t.Fatalf("%s: sampling failed", s.Name())
			}
			if !s.Contains(sc) {
				t.Fatalf("%s: sampled %s not a member", s.Name(), sc)
			}
		}
	}
}

func TestAllPrefixesMatchesOracle(t *testing.T) {
	for _, s := range []*Scheme{S0(), C1(), S1(), Fair(), AtMostKLosses(1), BlackoutBudget(1)} {
		for r := 0; r <= 4; r++ {
			got := s.AllPrefixes(r)
			seen := map[string]bool{}
			for _, w := range got {
				if !s.AcceptsPrefix(w) {
					t.Fatalf("%s: AllPrefixes returned non-prefix %v", s.Name(), w)
				}
				if seen[w.String()] {
					t.Fatalf("%s: duplicate %v", s.Name(), w)
				}
				seen[w.String()] = true
			}
			// Exhaustive cross-check against the oracle.
			alphabet := omission.Gamma
			if !s.OverGamma() {
				alphabet = omission.Sigma
			}
			count := 0
			for _, w := range omission.AllWords(alphabet, r) {
				if s.AcceptsPrefix(w) {
					count++
					if !seen[w.String()] {
						t.Fatalf("%s: missing prefix %v", s.Name(), w)
					}
				}
			}
			if count != len(got) {
				t.Fatalf("%s r=%d: %d vs %d prefixes", s.Name(), r, len(got), count)
			}
		}
	}
}

// TestCountPrefixes pins closed-form prefix counts and cross-checks the DP
// against enumeration.
func TestCountPrefixes(t *testing.T) {
	for r := 0; r <= 6; r++ {
		// Γ^ω: 3^r.
		if got := R1().CountPrefixes(r); got.Int64() != omission.Pow3Int64(r) {
			t.Errorf("R1 r=%d: %v", r, got)
		}
		// Fair has full prefix language too.
		if got := Fair().CountPrefixes(r); got.Int64() != omission.Pow3Int64(r) {
			t.Errorf("Fair r=%d: %v", r, got)
		}
		// S0: exactly one prefix per length.
		if got := S0().CountPrefixes(r); got.Int64() != 1 {
			t.Errorf("S0 r=%d: %v", r, got)
		}
		// C1: .^r plus .^j a^(r−j) for a ∈ {w,b}, j < r ⇒ 2r+1.
		if got := C1().CountPrefixes(r); got.Int64() != int64(2*r+1) {
			t.Errorf("C1 r=%d: %v, want %d", r, got, 2*r+1)
		}
		// S1: {.,w}^r ∪ {.,b}^r shares .^r ⇒ 2^(r+1) − 1.
		if got := S1().CountPrefixes(r); got.Int64() != (1<<(r+1))-1 {
			t.Errorf("S1 r=%d: %v, want %d", r, got, (1<<(r+1))-1)
		}
	}
	// Cross-check against enumeration on assorted schemes.
	for _, s := range []*Scheme{TWhite(), AtMostKLosses(2), BlackoutBudget(2), AlmostFair(), SigmaAtMostKLostMessages(2)} {
		for r := 0; r <= 5; r++ {
			if got, want := s.CountPrefixes(r).Int64(), int64(len(s.AllPrefixes(r))); got != want {
				t.Errorf("%s r=%d: DP %d vs enumeration %d", s.Name(), r, got, want)
			}
		}
	}
}
