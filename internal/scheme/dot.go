package scheme

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/omission"
)

// ToDOT renders the scheme's Büchi automaton in Graphviz DOT format:
// accepting states are double circles, the start state gets an inbound
// arrow, and parallel transitions are merged into one edge labelled with
// all its letters. Useful for documentation and debugging.
func (s *Scheme) ToDOT() string {
	auto := s.auto
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", s.name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	b.WriteString("  start [shape=point];\n")
	fmt.Fprintf(&b, "  start -> q%d;\n", auto.Start)
	for q := 0; q < auto.NumStates(); q++ {
		shape := "circle"
		if auto.Accepting[q] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  q%d [shape=%s];\n", q, shape)
	}
	for q := 0; q < auto.NumStates(); q++ {
		// Merge letters per target.
		byTarget := map[int][]string{}
		for a := 0; a < auto.Alphabet; a++ {
			to := auto.Delta[q][a]
			byTarget[to] = append(byTarget[to], string(omission.Letter(a).Rune()))
		}
		targets := make([]int, 0, len(byTarget))
		for to := range byTarget {
			targets = append(targets, to)
		}
		sort.Ints(targets)
		for _, to := range targets {
			fmt.Fprintf(&b, "  q%d -> q%d [label=%q];\n", q, to, strings.Join(byTarget[to], ","))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
