package scheme

import (
	"math/rand"
	"testing"

	"repro/internal/omission"
)

// TestPrefixDFAMatchesOracle walks random words letter by letter and
// checks that the flat DFA agrees with the incremental PrefixOracle on
// every named scheme and on random DBA schemes: the DFA state is ≥ 0
// exactly when the oracle reports the prefix is still in Pref(L).
func TestPrefixDFAMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var schemes []*Scheme
	for _, n := range Names() {
		s, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	for i := 0; i < 20; i++ {
		schemes = append(schemes, Random(rng, 1+rng.Intn(5)))
	}
	for _, s := range schemes {
		d := s.PrefixDFA()
		oracle := s.NewPrefixOracle()
		if (d.Start() >= 0) != oracle.Live() {
			t.Fatalf("%s: DFA start %d vs oracle live %v", s.Name(), d.Start(), oracle.Live())
		}
		for trial := 0; trial < 30; trial++ {
			o := s.NewPrefixOracle()
			state := d.Start()
			for step := 0; step < 12 && state >= 0; step++ {
				l := omission.Sigma[rng.Intn(len(omission.Sigma))]
				can := o.CanStep(l)
				ns := d.StepLetter(state, l)
				if can != (ns >= 0) {
					t.Fatalf("%s after %d steps: CanStep(%v)=%v but DFA step=%d",
						s.Name(), step, l, can, ns)
				}
				if !can {
					break // stay on the live path, like the chain walk does
				}
				o.Step(l)
				state = ns
			}
		}
	}
}

// TestPrefixDFAEmptyScheme: an empty scheme compiles to a DFA with no
// start state.
func TestPrefixDFAEmptyScheme(t *testing.T) {
	empty := Minus("empty", S0(), omission.MustScenario("(.)"))
	if d := empty.PrefixDFA(); d.Start() != -1 {
		t.Fatalf("empty scheme DFA start = %d, want -1", d.Start())
	}
}

// TestPrefixDFACached: the compilation runs once and is shared.
func TestPrefixDFACached(t *testing.T) {
	s := S1()
	if s.PrefixDFA() != s.PrefixDFA() {
		t.Fatal("PrefixDFA not cached")
	}
}
