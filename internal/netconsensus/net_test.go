package netconsensus

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/omission"
	"repro/internal/sim"
)

func graphZoo() []*graph.Graph {
	return []*graph.Graph{
		graph.Cycle(5),
		graph.Path(4),
		graph.Complete(5),
		graph.Grid(3, 2),
		graph.Barbell(3, 1),
		graph.Barbell(4, 2),
		graph.Hypercube(3),
		graph.Theta(3, 3),
	}
}

func mixedInputs(n int, rng *rand.Rand) []netsim.Value {
	in := make([]netsim.Value, n)
	for i := range in {
		in[i] = netsim.Value(rng.Intn(2))
	}
	return in
}

func minValue(in []netsim.Value) netsim.Value {
	m := in[0]
	for _, v := range in {
		if v < m {
			m = v
		}
	}
	return m
}

// TestFloodNoDrops: failure-free flooding decides the minimum input in
// exactly n−1 rounds on every graph.
func TestFloodNoDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range graphZoo() {
		for trial := 0; trial < 5; trial++ {
			in := mixedInputs(g.N(), rng)
			tr := netsim.Run(g, NewFloodNodes(g), in, netsim.NoDrops{}, g.N()+2)
			rep := netsim.Check(tr)
			if !rep.OK() {
				t.Fatalf("%s: %v (%s)", g.Name(), rep.Violations, tr)
			}
			if tr.Decisions[0] != minValue(in) {
				t.Fatalf("%s: decided %d, want min %d", g.Name(), tr.Decisions[0], minValue(in))
			}
			if tr.Rounds != g.N()-1 {
				t.Fatalf("%s: %d rounds, want n-1=%d", g.Name(), tr.Rounds, g.N()-1)
			}
		}
	}
}

// TestFloodUnderBudget is the possibility half of Theorem V.1: flooding
// succeeds under every adversary losing at most f < c(G) messages per
// round — random budgets and cut-targeting budgets alike.
func TestFloodUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, g := range graphZoo() {
		c := g.EdgeConnectivity()
		if c == 0 {
			continue
		}
		f := c - 1
		cut, _ := g.MinCut()
		advs := []netsim.Adversary{
			netsim.RandomF{F: f, Rng: rand.New(rand.NewSource(7))},
			netsim.TargetedCut{Cut: cut, F: f},
		}
		for _, adv := range advs {
			for trial := 0; trial < 6; trial++ {
				in := mixedInputs(g.N(), rng)
				tr := netsim.Run(g, NewFloodNodes(g), in, adv, g.N()+2)
				if tr.MaxDropsPerRound > f {
					t.Fatalf("%s: adversary exceeded budget (%d > %d)", g.Name(), tr.MaxDropsPerRound, f)
				}
				rep := netsim.Check(tr)
				if !rep.OK() {
					t.Fatalf("%s f=%d: %v (%s)", g.Name(), f, rep.Violations, tr)
				}
				if tr.Decisions[0] != minValue(in) {
					t.Fatalf("%s: wrong min", g.Name())
				}
			}
		}
	}
}

// TestFloodBreaksAtConnectivity is the impossibility half made concrete:
// with f = c(G) losses per round the Γ_C adversary playing (w)^ω keeps
// SideB ignorant of SideA's values forever; with the minimum on side A,
// flooding violates agreement.
func TestFloodBreaksAtConnectivity(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Barbell(3, 1), graph.Cycle(5), graph.Barbell(4, 2), graph.Grid(3, 2)} {
		cut, _ := g.MinCut()
		in := make([]netsim.Value, g.N())
		for _, v := range cut.SideB {
			in[v] = 1 // minimum 0 lives on side A
		}
		adv := netsim.CutScenario{Cut: cut, Src: omission.Constant(omission.LossWhite)}
		tr := netsim.Run(g, NewFloodNodes(g), in, adv, g.N()+2)
		if tr.MaxDropsPerRound != cut.Size() {
			t.Fatalf("%s: Γ_C adversary drops %d, want c(G)=%d", g.Name(), tr.MaxDropsPerRound, cut.Size())
		}
		rep := netsim.Check(tr)
		if rep.Agreement {
			t.Fatalf("%s: expected agreement violation, got %s", g.Name(), tr)
		}
		// Side A learned everything (B→A is open), side B only its own.
		for _, v := range cut.SideA {
			if tr.Decisions[v] != 0 {
				t.Fatalf("%s: side A node %d decided %d", g.Name(), v, tr.Decisions[v])
			}
		}
		for _, v := range cut.SideB {
			if tr.Decisions[v] != 1 {
				t.Fatalf("%s: side B node %d decided %d", g.Name(), v, tr.Decisions[v])
			}
		}
	}
}

// TestEmulationMatchesNetwork validates the Algorithms 2/3 reduction
// mechanically: the two-process lifting of flooding under a scenario w
// produces exactly the decisions of the real network under the Γ_C
// adversary ρ⁻¹(w).
func TestEmulationMatchesNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []*graph.Graph{graph.Barbell(3, 1), graph.Cycle(4), graph.Barbell(3, 2)} {
		cut, _ := g.MinCut()
		mk := func() netsim.Node { return &FloodMin{} }
		for trial := 0; trial < 20; trial++ {
			// Random two-process scenario prefix (padded fair tail).
			prefix := make(omission.Word, g.N())
			for i := range prefix {
				prefix[i] = omission.Gamma[rng.Intn(3)]
			}
			src := omission.UPWord(prefix, omission.MustWord("."))
			inputs := [2]sim.Value{sim.Value(rng.Intn(2)), sim.Value(rng.Intn(2))}

			white := NewEmulation(g, cut, mk)
			black := NewEmulation(g, cut, mk)
			two := sim.RunScenario(white, black, inputs, src, g.N()+3)

			netIn := make([]netsim.Value, g.N())
			for _, v := range cut.SideA {
				netIn[v] = inputs[0]
			}
			for _, v := range cut.SideB {
				netIn[v] = inputs[1]
			}
			net := netsim.Run(g, NewFloodNodes(g), netIn, netsim.CutScenario{Cut: cut, Src: src}, g.N()+3)

			if two.TimedOut || net.TimedOut {
				t.Fatalf("%s: unexpected timeout (two=%v net=%v)", g.Name(), two.TimedOut, net.TimedOut)
			}
			for _, v := range cut.SideA {
				if net.Decisions[v] != two.Decisions[0] {
					t.Fatalf("%s %s: node %d decided %d, emulated white %d", g.Name(), src, v, net.Decisions[v], two.Decisions[0])
				}
			}
			for _, v := range cut.SideB {
				if net.Decisions[v] != two.Decisions[1] {
					t.Fatalf("%s %s: node %d decided %d, emulated black %d", g.Name(), src, v, net.Decisions[v], two.Decisions[1])
				}
			}
		}
	}
}

// TestReductionFindsViolation is the end-to-end Theorem V.1 impossibility
// run: exhaustively search two-process scenarios for one on which lifted
// flooding violates consensus (it must exist since flooding always decides
// by round n−1 while Γ^ω is an obstruction), then replay it on the real
// network through ρ⁻¹ and observe the same violation.
func TestReductionFindsViolation(t *testing.T) {
	g := graph.Barbell(3, 1)
	cut, _ := g.MinCut()
	mk := func() netsim.Node { return &FloodMin{} }
	horizon := g.N() - 1

	var badScenario omission.Scenario
	var badInputs [2]sim.Value
	found := false
search:
	for _, w := range omission.AllWords(omission.Gamma, horizon) {
		src := omission.UPWord(w, omission.MustWord("."))
		for _, inputs := range sim.AllInputs() {
			white := NewEmulation(g, cut, mk)
			black := NewEmulation(g, cut, mk)
			tr := sim.RunScenario(white, black, inputs, src, horizon+2)
			if rep := sim.Check(tr); !rep.OK() {
				badScenario, badInputs, found = src, inputs, true
				break search
			}
		}
	}
	if !found {
		t.Fatal("no violating scenario found — flooding cannot solve Γ^ω, the search must succeed")
	}

	// Replay on the network.
	netIn := make([]netsim.Value, g.N())
	for _, v := range cut.SideA {
		netIn[v] = badInputs[0]
	}
	for _, v := range cut.SideB {
		netIn[v] = badInputs[1]
	}
	tr := netsim.Run(g, NewFloodNodes(g), netIn, netsim.CutScenario{Cut: cut, Src: badScenario}, horizon+2)
	if rep := netsim.Check(tr); rep.OK() {
		t.Fatalf("network replay of %s inputs %v did not violate consensus: %s", badScenario, badInputs, tr)
	}
	if tr.MaxDropsPerRound > cut.Size() {
		t.Fatalf("Γ_C adversary used more than c(G) losses per round")
	}
	t.Logf("violating scenario %s inputs %v (network: %s)", badScenario, badInputs, tr)
}

// TestCutTwoPhase is Algorithm 4: under the scheme Γ_C^ω restricted to
// scenarios whose ρ-image avoids (b)^ω, the two designated cut endpoints
// solve consensus across the cut and broadcast it — all nodes decide.
func TestCutTwoPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	witness := omission.Constant(omission.LossBlack)
	for _, g := range []*graph.Graph{graph.Barbell(3, 1), graph.Barbell(4, 2), graph.Cycle(5), graph.Grid(3, 2)} {
		cut, _ := g.MinCut()
		for trial := 0; trial < 25; trial++ {
			// A scenario of ρ(L) = Γ^ω \ {(b)^ω}: random prefix, fair tail.
			prefix := make(omission.Word, rng.Intn(6))
			for i := range prefix {
				prefix[i] = omission.Gamma[rng.Intn(3)]
			}
			src := omission.UPWord(prefix, omission.MustWord("."))
			in := mixedInputs(g.N(), rng)
			nodes := NewCutTwoPhaseNodes(g, cut, witness)
			tr := netsim.Run(g, nodes, in, netsim.CutScenario{Cut: cut, Src: src}, 60)
			rep := netsim.Check(tr)
			if !rep.OK() {
				t.Fatalf("%s scenario %s inputs %v: %v (%s)", g.Name(), src, in, rep.Violations, tr)
			}
			// The decision is one of the designated endpoints' inputs.
			e := cut.CutEdges[0]
			a1, b1 := cut.AEnd(e), cut.BEnd(e)
			d := tr.Decisions[0]
			if d != in[a1] && d != in[b1] {
				t.Fatalf("%s: decision %d not an input of the designated endpoints (%d, %d)", g.Name(), d, in[a1], in[b1])
			}
		}
	}
}

// TestCutTwoPhaseNeverDecidesOnExcluded: under the excluded scenario
// (b)^ω itself — not a member of the scheme — the designated pair runs
// forever, as it must.
func TestCutTwoPhaseNeverDecidesOnExcluded(t *testing.T) {
	g := graph.Barbell(3, 1)
	cut, _ := g.MinCut()
	witness := omission.Constant(omission.LossBlack)
	nodes := NewCutTwoPhaseNodes(g, cut, witness)
	in := make([]netsim.Value, g.N())
	in[0] = 1
	tr := netsim.Run(g, nodes, in, netsim.CutScenario{Cut: cut, Src: witness}, 80)
	if !tr.TimedOut {
		t.Fatalf("decided under the excluded scenario: %s", tr)
	}
}

func TestNetsimPanicsOnMismatch(t *testing.T) {
	g := graph.Cycle(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	netsim.Run(g, NewFloodNodes(g), []netsim.Value{0}, netsim.NoDrops{}, 3)
}

func TestNetsimCheckViolations(t *testing.T) {
	tr := netsim.Trace{
		Inputs:        []netsim.Value{0, 0},
		Decisions:     []netsim.Value{0, 1},
		DecisionRound: []int{1, 1},
	}
	rep := netsim.Check(tr)
	if rep.Agreement || rep.Validity || !rep.Terminated {
		// decided 1 with unanimous 0: both agreement and validity fail.
		if rep.OK() {
			t.Error("violations must be caught")
		}
	}
	tr.Decisions = []netsim.Value{sim.None, 0}
	tr.DecisionRound = []int{-1, 1}
	if netsim.Check(tr).Terminated {
		t.Error("undecided node must fail termination")
	}
	tr.Decisions = []netsim.Value{7, 7}
	tr.DecisionRound = []int{1, 1}
	if netsim.Check(tr).Validity {
		t.Error("non-input decision must fail validity")
	}
}

func TestFloodKnownGrowth(t *testing.T) {
	// Information propagation: under a budget f < c(G), the number of
	// known origins at any node grows to n within n−1 rounds; check via
	// the exported Known accessor after a run.
	g := graph.Cycle(6)
	nodes := NewFloodNodes(g)
	in := mixedInputs(g.N(), rand.New(rand.NewSource(1)))
	netsim.Run(g, nodes, in, netsim.TargetedCut{Cut: mustCut(g), F: 1}, g.N())
	for i, n := range nodes {
		if n.(*FloodMin).Known() != g.N() {
			t.Fatalf("node %d knows only %d origins", i, n.(*FloodMin).Known())
		}
	}
}

func mustCut(g *graph.Graph) graph.Cut {
	c, ok := g.MinCut()
	if !ok {
		panic("no cut")
	}
	return c
}
