package netconsensus

import (
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Emulation is the two-process lifting of Algorithms 2 and 3: the process
// hosts all nodes of one connected side of a minimum cut and emulates the
// network algorithm on it round by round. Messages internal to the side
// are delivered loss-free; messages on the cut edges are packaged into the
// single two-process message, so that the two-process omission letters act
// exactly like the Γ_C letters under the bijection ρ (the side hosted by
// white is SideA: letter 'w' = all A→B cut messages lost = C_A→B).
//
// Every node of the hosted side is initialized with the two-process input;
// the emulation decides when all hosted nodes have decided, outputting the
// common value.
type Emulation struct {
	g        *graph.Graph
	cut      graph.Cut
	makeNode func() netsim.Node

	id       sim.ID
	side     []int // hosted vertices
	isMine   map[int]bool
	nodes    map[int]netsim.Node
	decision sim.Value
	// pending internal deliveries computed during Send, applied in Receive.
	pendingInternal map[int]map[int]netsim.Message
}

// CutPackage is the two-process message: the hosted side's cut-edge
// messages, keyed by the directed cut edge they ride.
type CutPackage map[graph.DirEdge]netsim.Message

// NewEmulation builds the lifting for one side. White must host SideA and
// black SideB for the ρ mapping to line up with the letters.
func NewEmulation(g *graph.Graph, cut graph.Cut, makeNode func() netsim.Node) *Emulation {
	return &Emulation{g: g, cut: cut, makeNode: makeNode}
}

// Init implements sim.Process.
func (e *Emulation) Init(id sim.ID, input sim.Value) {
	e.id = id
	if id == sim.White {
		e.side = e.cut.SideA
	} else {
		e.side = e.cut.SideB
	}
	e.isMine = map[int]bool{}
	for _, v := range e.side {
		e.isMine[v] = true
	}
	e.nodes = map[int]netsim.Node{}
	for _, v := range e.side {
		n := e.makeNode()
		n.Init(v, e.g, input)
		e.nodes[v] = n
	}
	e.decision = sim.None
	e.pendingInternal = nil
}

// Send implements sim.Process: it runs the network Send step of every
// hosted node, keeps the intra-side deliveries pending, and packages the
// cut-crossing messages.
func (e *Emulation) Send(r int) (sim.Message, bool) {
	if e.decision != sim.None {
		return nil, false
	}
	pkg := CutPackage{}
	e.pendingInternal = map[int]map[int]netsim.Message{}
	for _, v := range e.side {
		e.pendingInternal[v] = map[int]netsim.Message{}
	}
	for _, v := range e.side {
		for to, m := range e.nodes[v].Send(r) {
			if m == nil || !e.g.HasEdge(v, to) {
				continue
			}
			if e.isMine[to] {
				e.pendingInternal[to][v] = m
			} else {
				pkg[graph.DirEdge{From: v, To: to}] = m
			}
		}
	}
	return pkg, true
}

// Receive implements sim.Process: it merges the partner's cut package
// (nil when the letter dropped it — exactly the Γ_C omission) with the
// pending internal deliveries and runs every hosted node's Receive.
func (e *Emulation) Receive(r int, msg sim.Message) {
	if msg != nil {
		for de, m := range msg.(CutPackage) {
			if e.isMine[de.To] && e.g.HasEdge(de.From, de.To) {
				e.pendingInternal[de.To][de.From] = m
			}
		}
	}
	for _, v := range e.side {
		e.nodes[v].Receive(r, e.pendingInternal[v])
	}
	e.pendingInternal = nil

	all := true
	var val sim.Value = sim.None
	for _, v := range e.side {
		d, ok := e.nodes[v].Decision()
		if !ok {
			all = false
			break
		}
		val = d
	}
	if all {
		e.decision = val
	}
}

// Decision implements sim.Process.
func (e *Emulation) Decision() (sim.Value, bool) {
	if e.decision == sim.None {
		return sim.None, false
	}
	return e.decision, true
}
