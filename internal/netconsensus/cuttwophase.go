package netconsensus

import (
	"repro/internal/consensus"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/omission"
	"repro/internal/sim"
)

// CutTwoPhase is Algorithm 4 (A_L) of the paper: consensus on a network
// under a solvable sub-scheme L ⊊ Γ_C^ω. The designated endpoints a1
// (in SideA) and b1 (in SideB) of one cut edge run the two-process
// algorithm A_ρ(w) across that edge — the Γ_C letters restricted to the
// (a1, b1) link are exactly ρ(L) ⊆ Γ^ω — and then broadcast the decided
// value inside their sides, which are loss-free under Γ_C.
//
// Every non-designated node simply adopts and relays the first broadcast
// value it hears.
type CutTwoPhase struct {
	cut graph.Cut
	// witness is the two-process excluded scenario for A_ρ(w).
	witness omission.Source

	id       int
	g        *graph.Graph
	partner  int // the other cut endpoint when designated, else -1
	aw       *consensus.AW
	awRound  int
	decision netsim.Value
}

// phase2 is the broadcast payload.
type phase2 struct{ v netsim.Value }

// phase1 wraps the embedded A_w message.
type phase1 struct{ m sim.Message }

// NewCutTwoPhaseNodes builds the node array for Algorithm 4 on g with the
// given minimum cut and two-process witness scenario. The designated edge
// is the first cut edge.
func NewCutTwoPhaseNodes(g *graph.Graph, cut graph.Cut, witness omission.Source) []netsim.Node {
	nodes := make([]netsim.Node, g.N())
	for i := range nodes {
		nodes[i] = &CutTwoPhase{cut: cut, witness: witness}
	}
	return nodes
}

// Init implements netsim.Node.
func (c *CutTwoPhase) Init(id int, g *graph.Graph, input netsim.Value) {
	c.id = id
	c.g = g
	c.partner = -1
	c.aw = nil
	c.awRound = 0
	c.decision = sim.None
	e := c.cut.CutEdges[0]
	a1, b1 := c.cut.AEnd(e), c.cut.BEnd(e)
	switch id {
	case a1:
		c.partner = b1
		c.aw = consensus.NewAW(c.witness)
		c.aw.Init(sim.White, input)
	case b1:
		c.partner = a1
		c.aw = consensus.NewAW(c.witness)
		c.aw.Init(sim.Black, input)
	}
}

// Send implements netsim.Node.
func (c *CutTwoPhase) Send(r int) map[int]netsim.Message {
	if c.decision != sim.None {
		// Phase 2: relay the decision everywhere.
		out := map[int]netsim.Message{}
		for _, nb := range c.g.Neighbors(c.id) {
			out[nb] = phase2{c.decision}
		}
		return out
	}
	if c.aw != nil {
		c.awRound++
		if m, ok := c.aw.Send(c.awRound); ok {
			return map[int]netsim.Message{c.partner: phase1{m}}
		}
	}
	return nil
}

// Receive implements netsim.Node.
func (c *CutTwoPhase) Receive(r int, msgs map[int]netsim.Message) {
	// Adopt a broadcast decision if one arrives (also terminates a
	// designated node whose own phase 1 is still running: agreement is
	// preserved because the broadcast value originates from the same
	// two-process execution).
	for _, m := range msgs {
		if p2, ok := m.(phase2); ok && c.decision == sim.None {
			c.decision = p2.v
		}
	}
	if c.decision != sim.None || c.aw == nil {
		return
	}
	var embedded sim.Message
	if m, ok := msgs[c.partner]; ok {
		if p1, ok := m.(phase1); ok {
			embedded = p1.m
		}
	}
	c.aw.Receive(c.awRound, embedded)
	if v, ok := c.aw.Decision(); ok {
		c.decision = v
	}
}

// Decision implements netsim.Node.
func (c *CutTwoPhase) Decision() (netsim.Value, bool) {
	if c.decision == sim.None {
		return sim.None, false
	}
	return c.decision, true
}
