// Package netconsensus implements the network-consensus algorithms of
// Section V of Fevat & Godard:
//
//   - FloodMin, the broadcast-based algorithm matching the Santoro–Widmayer
//     possibility side of Theorem V.1: with at most f < c(G) message losses
//     per round, every initial value reaches every node within n−1 rounds
//     (each round, every vertex cut carries ≥ c(G) > f messages, so at
//     least one crosses), after which all nodes decide the minimum.
//
//   - Emulation (Algorithms 2 and 3): the lifting of any network algorithm
//     to a two-process algorithm over Γ, used to prove the impossibility
//     side by reduction to Theorem III.8 — white emulates the connected
//     side A of a minimum cut, black the side B, with the bijection
//     ρ(Γ_C) = Γ mapping cut-omission letters to two-process letters.
//
//   - CutTwoPhase (Algorithm 4): the consensus algorithm for solvable
//     sub-schemes L ⊊ Γ_C^ω — the designated endpoints of one cut edge run
//     the two-process algorithm A_ρ(w) across the cut and then broadcast
//     the decision inside their loss-free sides.
package netconsensus

import (
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// FloodMin is the flooding consensus node: it rebroadcasts every known
// (origin, value) pair for n−1 rounds and then decides the minimum known
// value. It solves consensus whenever at most f < c(G) messages are lost
// per round.
type FloodMin struct {
	id       int
	n        int
	g        *graph.Graph
	known    map[int]netsim.Value
	decision netsim.Value
	horizon  int
}

// KnownMap is the flooding message payload: origin → value.
type KnownMap map[int]netsim.Value

// Init implements netsim.Node.
func (f *FloodMin) Init(id int, g *graph.Graph, input netsim.Value) {
	f.id = id
	f.g = g
	f.n = g.N()
	f.known = map[int]netsim.Value{id: input}
	f.decision = sim.None
	f.horizon = f.n - 1
}

// Send implements netsim.Node.
func (f *FloodMin) Send(r int) map[int]netsim.Message {
	if f.decision != sim.None {
		return nil
	}
	payload := make(KnownMap, len(f.known))
	for k, v := range f.known {
		payload[k] = v
	}
	out := map[int]netsim.Message{}
	for _, nb := range f.g.Neighbors(f.id) {
		out[nb] = payload
	}
	return out
}

// Receive implements netsim.Node.
func (f *FloodMin) Receive(r int, msgs map[int]netsim.Message) {
	for _, m := range msgs {
		for origin, v := range m.(KnownMap) {
			f.known[origin] = v
		}
	}
	if r >= f.horizon {
		min := netsim.Value(1 << 30)
		for _, v := range f.known {
			if v < min {
				min = v
			}
		}
		f.decision = min
	}
}

// Decision implements netsim.Node.
func (f *FloodMin) Decision() (netsim.Value, bool) {
	if f.decision == sim.None {
		return sim.None, false
	}
	return f.decision, true
}

// Known returns how many origins the node has heard from (for the
// propagation-rate experiments).
func (f *FloodMin) Known() int { return len(f.known) }

// NewFloodNodes builds one FloodMin node per vertex.
func NewFloodNodes(g *graph.Graph) []netsim.Node {
	nodes := make([]netsim.Node, g.N())
	for i := range nodes {
		nodes[i] = &FloodMin{}
	}
	return nodes
}
