package netsim

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/sim"
)

// settleGoroutines waits briefly for transient goroutines to exit and
// returns false if the count never drops back to the baseline.
func settleGoroutines(before int) bool {
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	return true
}

// TestGoroutineRunnerNoLeakOnCancellation is the regression test for the
// goroutine leak: cancelling the context mid-run must still release every
// node server goroutine.
func TestGoroutineRunnerNoLeakOnCancellation(t *testing.T) {
	g := graph.Cycle(6)
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the run is interrupted immediately
		ht := RunGoroutinesHardened(ctx, g, nodes(6, 100), make([]Value, 6), NoDrops{}, 50)
		if !ht.Interrupted {
			t.Fatalf("iteration %d: cancelled run not interrupted", i)
		}
	}
	if !settleGoroutines(before) {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("leaked goroutines after cancelled runs: before=%d after=%d\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	}
}

// TestGoroutineRunnerNoLeakOnDeadline drives a run into a wall-clock
// deadline and checks both the interruption report and the cleanup.
func TestGoroutineRunnerNoLeakOnDeadline(t *testing.T) {
	g := graph.Complete(3)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	slow := []Node{
		&slowTestNode{countNode{after: 1000}},
		&slowTestNode{countNode{after: 1000}},
		&slowTestNode{countNode{after: 1000}},
	}
	ht := RunGoroutinesHardened(ctx, g, slow, make([]Value, 3), NoDrops{}, 1000)
	if !ht.Interrupted || ht.Err == nil {
		t.Fatalf("deadline run not interrupted: %+v", ht)
	}
	if !ht.TimedOut {
		t.Fatal("interrupted run should be marked timed out")
	}
	if !settleGoroutines(before) {
		t.Fatalf("leaked goroutines after deadline: before=%d after=%d", before, runtime.NumGoroutine())
	}
}

type slowTestNode struct{ countNode }

func (s *slowTestNode) Send(r int) map[int]Message {
	time.Sleep(5 * time.Millisecond)
	return s.countNode.Send(r)
}

// panicTestNode panics in the named operation at the named round.
type panicTestNode struct {
	countNode
	op    string
	round int
}

func (p *panicTestNode) Init(id int, g *graph.Graph, in Value) {
	if p.op == "init" {
		panic("init exploded")
	}
	p.countNode.Init(id, g, in)
}

func (p *panicTestNode) Send(r int) map[int]Message {
	if p.op == "send" && r == p.round {
		panic("send exploded")
	}
	return p.countNode.Send(r)
}

func (p *panicTestNode) Receive(r int, msgs map[int]Message) {
	if p.op == "receive" && r == p.round {
		panic("receive exploded")
	}
	p.countNode.Receive(r, msgs)
}

// TestHardenedRunnersPanicIsolation checks, for each operation and both
// runners, that a panicking node is crash-stopped with a diagnostic while
// the others finish, and that no goroutine outlives the run.
func TestHardenedRunnersPanicIsolation(t *testing.T) {
	g := graph.Complete(4)
	before := runtime.NumGoroutine()
	for _, op := range []string{"init", "send", "receive"} {
		for _, concurrent := range []bool{true, false} {
			ns := nodes(4, 2)
			ns[1] = &panicTestNode{op: op, round: 2}
			var ht HardenedTrace
			if concurrent {
				ht = RunGoroutinesHardened(context.Background(), g, ns, make([]Value, 4), NoDrops{}, 8)
			} else {
				ht = RunHardened(context.Background(), g, ns, make([]Value, 4), NoDrops{}, 8)
			}
			if len(ht.Crashes) != 1 {
				t.Fatalf("op=%s concurrent=%v: crashes=%v, want one", op, concurrent, ht.Crashes)
			}
			c, ok := ht.Crashed(1)
			if !ok || c.Node != 1 {
				t.Fatalf("op=%s concurrent=%v: node 1 not reported crashed: %v", op, concurrent, ht.Crashes)
			}
			if !strings.Contains(c.Diag, "exploded") {
				t.Fatalf("op=%s concurrent=%v: diagnostic lost the panic: %q", op, concurrent, c.Diag)
			}
			for i, d := range ht.Decisions {
				if i == 1 {
					continue
				}
				if d == sim.None {
					t.Errorf("op=%s concurrent=%v: surviving node %d undecided", op, concurrent, i)
				}
			}
		}
	}
	if !settleGoroutines(before) {
		t.Fatalf("leaked goroutines after panic runs: before=%d after=%d", before, runtime.NumGoroutine())
	}
}

// TestHardenedMatchesPlainOnCleanRuns pins the hardened runners to the
// plain ones when nothing crashes and no deadline fires.
func TestHardenedMatchesPlainOnCleanRuns(t *testing.T) {
	g := graph.Cycle(5)
	in := []Value{0, 1, 0, 1, 1}
	adv := FuncAdversary(func(r int, _ *graph.Graph) map[graph.DirEdge]bool {
		return map[graph.DirEdge]bool{{From: r % 5, To: (r + 1) % 5}: true}
	})
	plain := Run(g, nodes(5, 3), in, adv, 6)
	hard := RunHardened(context.Background(), g, nodes(5, 3), in, adv, 6)
	conc := RunGoroutinesHardened(context.Background(), g, nodes(5, 3), in, adv, 6)
	for i := range plain.Decisions {
		if plain.Decisions[i] != hard.Decisions[i] || plain.Decisions[i] != conc.Decisions[i] {
			t.Fatalf("node %d: plain=%v hard=%v conc=%v", i, plain.Decisions[i], hard.Decisions[i], conc.Decisions[i])
		}
	}
	if len(hard.Crashes) != 0 || len(conc.Crashes) != 0 || hard.Interrupted || conc.Interrupted {
		t.Fatalf("clean runs reported faults: %+v / %+v", hard, conc)
	}
}
