package netsim

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/graph"
)

// The goroutine runner hosts every node in its own server goroutine, with
// the synchronous round structure enforced purely by channel
// communication (the same CSP pattern as the two-process kernel). The
// coordinator requests all sends, applies the adversary's drops, delivers,
// and collects decision state. Traces are identical to Run's.
//
// The runner fails closed: a node that panics in Send/Receive/Decision is
// converted into a crash-stop (its panic value and stack are captured as
// a NodeCrash, it stops sending and receiving, and only its own trace
// entries suffer), and the whole run obeys a context, so neither a
// panicking nor a non-terminating execution can ever hang or kill the
// caller. Server goroutines are released on every exit path — normal
// termination, early decision, cancellation, and panic — via a stop
// channel that guards every channel operation; only a node that blocks
// forever *inside* one of its own methods can pin its server goroutine
// (nothing can preempt that in Go), and even then the coordinator still
// returns.

// NodeCrash records a node panic absorbed by a hardened runner and
// converted into a crash-stop.
type NodeCrash struct {
	// Node is the vertex id of the node that panicked.
	Node int
	// Round is the round (1-based) in which the panic occurred.
	Round int
	// Op is the node method that panicked ("Send", "Receive", "Decision"
	// or "Init").
	Op string
	// Diag is the panic value followed by the goroutine stack.
	Diag string
}

// String implements fmt.Stringer.
func (c NodeCrash) String() string {
	d := c.Diag
	for i := 0; i < len(d); i++ {
		if d[i] == '\n' {
			d = d[:i]
			break
		}
	}
	return fmt.Sprintf("node %d panicked in %s at round %d: %s", c.Node, c.Op, c.Round, d)
}

// HardenedTrace couples a network trace with the failures the hardened
// runners absorbed on its behalf.
type HardenedTrace struct {
	Trace
	// Crashes lists node panics converted to crash-stops (at most one per
	// node).
	Crashes []NodeCrash
	// Interrupted is set when the context expired before the run
	// finished; Err then carries the context error.
	Interrupted bool
	Err         error
}

// Crashed reports whether the given node crash-stopped, with its
// diagnostic.
func (t *HardenedTrace) Crashed(node int) (NodeCrash, bool) {
	for _, c := range t.Crashes {
		if c.Node == node {
			return c, true
		}
	}
	return NodeCrash{}, false
}

type nodeSendResp struct {
	msgs map[int]Message
	err  error
}

type nodeRecvReq struct {
	round int
	msgs  map[int]Message
}

type nodeRecvResp struct {
	decided bool
	value   Value
	err     error
}

type nodeServer struct {
	sendReq  chan int
	sendResp chan nodeSendResp
	recvReq  chan nodeRecvReq
	recvResp chan nodeRecvResp
}

func newNodeServer() *nodeServer {
	// Responses are buffered so a server that finishes its round after the
	// coordinator abandoned the run never blocks on delivery.
	return &nodeServer{
		sendReq:  make(chan int),
		sendResp: make(chan nodeSendResp, 1),
		recvReq:  make(chan nodeRecvReq, 1),
		recvResp: make(chan nodeRecvResp, 1),
	}
}

func recoverDiag(op string, round int, errp *error) {
	if p := recover(); p != nil {
		*errp = fmt.Errorf("%s panicked at round %d: %v\n%s", op, round, p, debug.Stack())
	}
}

func safeSend(n Node, r int) (msgs map[int]Message, err error) {
	defer recoverDiag("Send", r, &err)
	return n.Send(r), nil
}

func safeReceive(n Node, r int, msgs map[int]Message) (err error) {
	defer recoverDiag("Receive", r, &err)
	n.Receive(r, msgs)
	return nil
}

func safeDecision(n Node, r int) (v Value, ok bool, err error) {
	defer recoverDiag("Decision", r, &err)
	v, ok = n.Decision()
	return v, ok, nil
}

// serveNode is the per-node server loop. Once the node panics it is
// crash-stopped: the server keeps answering the round protocol (with
// empty sends and frozen decisions) but never touches the node again.
func serveNode(n Node, s *nodeServer, stop <-chan struct{}) {
	crashed := false
	for {
		var r int
		select {
		case r = <-s.sendReq:
		case <-stop:
			return
		}
		var sr nodeSendResp
		if !crashed {
			sr.msgs, sr.err = safeSend(n, r)
			if sr.err != nil {
				crashed = true
				sr.msgs = nil
			}
		}
		select {
		case s.sendResp <- sr:
		case <-stop:
			return
		}
		var req nodeRecvReq
		select {
		case req = <-s.recvReq:
		case <-stop:
			return
		}
		var rr nodeRecvResp
		if !crashed {
			if err := safeReceive(n, req.round, req.msgs); err != nil {
				crashed = true
				rr.err = err
			} else if v, ok, err := safeDecision(n, req.round); err != nil {
				crashed = true
				rr.err = err
			} else {
				rr.value, rr.decided = v, ok
			}
		}
		select {
		case s.recvResp <- rr:
		case <-stop:
			return
		}
	}
}

// RunGoroutines executes the same semantics as Run with one goroutine per
// node. Node panics crash-stop the offending node (diagnostics are
// available through RunGoroutinesHardened); the process never dies.
func RunGoroutines(g *graph.Graph, nodes []Node, inputs []Value, adv Adversary, maxRounds int) Trace {
	return RunGoroutinesHardened(context.Background(), g, nodes, inputs, adv, maxRounds).Trace
}

// RunGoroutinesHardened is the fully hardened goroutine runner: panic
// isolation per node, context-based cancellation and deadlines, and
// guaranteed release of all server goroutines on every exit path.
func RunGoroutinesHardened(ctx context.Context, g *graph.Graph, nodes []Node, inputs []Value, adv Adversary, maxRounds int) HardenedTrace {
	n := g.N()
	if len(nodes) != n || len(inputs) != n {
		panic("netsim: nodes/inputs length mismatch")
	}
	ht := HardenedTrace{Trace: Trace{
		Inputs:        append([]Value(nil), inputs...),
		Decisions:     make([]Value, n),
		DecisionRound: make([]int, n),
	}}
	for i := range ht.Decisions {
		ht.Decisions[i] = -1
		ht.DecisionRound[i] = -1
	}
	crashed := make([]bool, n)
	crash := func(i, round int, err error) {
		if crashed[i] {
			return
		}
		crashed[i] = true
		ht.Crashes = append(ht.Crashes, NodeCrash{Node: i, Round: round, Op: opOf(err), Diag: err.Error()})
	}

	// Init runs on the coordinator (servers not yet started) under the
	// same panic isolation.
	for i, node := range nodes {
		var err error
		func() {
			defer recoverDiag("Init", 0, &err)
			node.Init(i, g, inputs[i])
		}()
		if err != nil {
			crash(i, 0, err)
		}
	}

	stop := make(chan struct{})
	defer close(stop)
	servers := make([]*nodeServer, n)
	for i, node := range nodes {
		servers[i] = newNodeServer()
		if !crashed[i] {
			go serveNode(node, servers[i], stop)
		} else {
			go serveNode(crashedNode{}, servers[i], stop)
		}
	}

	interrupt := func(err error) HardenedTrace {
		ht.Interrupted = true
		ht.Err = err
		ht.TimedOut = true
		return ht
	}

	// Round-0 decisions are read from the trace state: an undecided,
	// uncrashed node keeps the run going.
	record := func(round int, decided []nodeRecvResp) bool {
		all := true
		for i := range nodes {
			if crashed[i] {
				continue
			}
			if ht.DecisionRound[i] < 0 {
				if decided[i].decided {
					ht.Decisions[i] = decided[i].value
					ht.DecisionRound[i] = round
				} else {
					all = false
				}
			}
		}
		return all
	}

	// Round-0 decisions are read directly (servers idle between rounds).
	zero := make([]nodeRecvResp, n)
	for i, node := range nodes {
		if crashed[i] {
			continue
		}
		v, ok, err := safeDecision(node, 0)
		if err != nil {
			crash(i, 0, err)
			continue
		}
		zero[i] = nodeRecvResp{decided: ok, value: v}
	}
	if record(0, zero) {
		return ht
	}

	for r := 1; r <= maxRounds; r++ {
		if err := ctx.Err(); err != nil {
			return interrupt(err)
		}
		ht.Rounds = r
		drops := adv.Drops(r, g)
		if len(drops) > ht.MaxDropsPerRound {
			ht.MaxDropsPerRound = len(drops)
		}
		ht.TotalDrops += len(drops)

		for _, s := range servers {
			select {
			case s.sendReq <- r:
			case <-ctx.Done():
				return interrupt(ctx.Err())
			}
		}
		outgoing := make([]map[int]Message, n)
		for i, s := range servers {
			select {
			case resp := <-s.sendResp:
				if resp.err != nil {
					crash(i, r, resp.err)
				}
				outgoing[i] = resp.msgs
			case <-ctx.Done():
				return interrupt(ctx.Err())
			}
		}
		incoming := make([]map[int]Message, n)
		for i := range incoming {
			incoming[i] = map[int]Message{}
		}
		for from, msgs := range outgoing {
			for to, m := range msgs {
				if m == nil || !g.HasEdge(from, to) || drops[graph.DirEdge{From: from, To: to}] {
					continue
				}
				incoming[to][from] = m
			}
		}
		for i, s := range servers {
			select {
			case s.recvReq <- nodeRecvReq{round: r, msgs: incoming[i]}:
			case <-ctx.Done():
				return interrupt(ctx.Err())
			}
		}
		resps := make([]nodeRecvResp, n)
		for i, s := range servers {
			select {
			case resp := <-s.recvResp:
				if resp.err != nil {
					crash(i, r, resp.err)
				}
				resps[i] = resp
			case <-ctx.Done():
				return interrupt(ctx.Err())
			}
		}
		if record(r, resps) {
			return ht
		}
	}
	ht.TimedOut = true
	return ht
}

// crashedNode is the stand-in served for a node that already panicked in
// Init: it participates in the round protocol but does nothing.
type crashedNode struct{}

func (crashedNode) Init(int, *graph.Graph, Value) {}
func (crashedNode) Send(int) map[int]Message      { return nil }
func (crashedNode) Receive(int, map[int]Message)  {}
func (crashedNode) Decision() (Value, bool)       { return -1, false }

// opOf extracts the method name from a recoverDiag error ("Send panicked
// at round …").
func opOf(err error) string {
	s := err.Error()
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}
