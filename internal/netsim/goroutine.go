package netsim

import (
	"repro/internal/graph"
)

// The goroutine runner hosts every node in its own server goroutine, with
// the synchronous round structure enforced purely by channel
// communication (the same CSP pattern as the two-process kernel). The
// coordinator requests all sends, applies the adversary's drops, delivers,
// and collects decision state. Traces are identical to Run's.

type nodeSendResp struct {
	msgs map[int]Message
}

type nodeRecvReq struct {
	round int
	msgs  map[int]Message
}

type nodeRecvResp struct {
	decided bool
	value   Value
}

type nodeServer struct {
	sendReq  chan int
	sendResp chan nodeSendResp
	recvReq  chan nodeRecvReq
	recvResp chan nodeRecvResp
}

func serveNode(n Node, s *nodeServer) {
	for r := range s.sendReq {
		s.sendResp <- nodeSendResp{n.Send(r)}
		req := <-s.recvReq
		n.Receive(req.round, req.msgs)
		v, ok := n.Decision()
		s.recvResp <- nodeRecvResp{ok, v}
	}
}

// RunGoroutines executes the same semantics as Run with one goroutine per
// node.
func RunGoroutines(g *graph.Graph, nodes []Node, inputs []Value, adv Adversary, maxRounds int) Trace {
	n := g.N()
	if len(nodes) != n || len(inputs) != n {
		panic("netsim: nodes/inputs length mismatch")
	}
	for i, node := range nodes {
		node.Init(i, g, inputs[i])
	}
	servers := make([]*nodeServer, n)
	for i, node := range nodes {
		s := &nodeServer{
			sendReq:  make(chan int),
			sendResp: make(chan nodeSendResp),
			recvReq:  make(chan nodeRecvReq),
			recvResp: make(chan nodeRecvResp),
		}
		servers[i] = s
		go serveNode(node, s)
	}
	defer func() {
		for _, s := range servers {
			close(s.sendReq)
		}
	}()

	tr := Trace{
		Inputs:        append([]Value(nil), inputs...),
		Decisions:     make([]Value, n),
		DecisionRound: make([]int, n),
	}
	for i := range tr.Decisions {
		tr.Decisions[i] = -1
		tr.DecisionRound[i] = -1
	}

	// Round-0 decisions are read directly (servers not yet driving).
	all := true
	for i, node := range nodes {
		if v, ok := node.Decision(); ok {
			tr.Decisions[i] = v
			tr.DecisionRound[i] = 0
		} else {
			all = false
		}
	}
	if all {
		return tr
	}

	for r := 1; r <= maxRounds; r++ {
		tr.Rounds = r
		drops := adv.Drops(r, g)
		if len(drops) > tr.MaxDropsPerRound {
			tr.MaxDropsPerRound = len(drops)
		}
		tr.TotalDrops += len(drops)

		for _, s := range servers {
			s.sendReq <- r
		}
		outgoing := make([]map[int]Message, n)
		for i, s := range servers {
			outgoing[i] = (<-s.sendResp).msgs
		}
		incoming := make([]map[int]Message, n)
		for i := range incoming {
			incoming[i] = map[int]Message{}
		}
		for from, msgs := range outgoing {
			for to, m := range msgs {
				if m == nil || !g.HasEdge(from, to) || drops[graph.DirEdge{From: from, To: to}] {
					continue
				}
				incoming[to][from] = m
			}
		}
		for i, s := range servers {
			s.recvReq <- nodeRecvReq{round: r, msgs: incoming[i]}
		}
		all = true
		for i, s := range servers {
			resp := <-s.recvResp
			if tr.DecisionRound[i] < 0 {
				if resp.decided {
					tr.Decisions[i] = resp.value
					tr.DecisionRound[i] = r
				} else {
					all = false
				}
			}
		}
		if all {
			return tr
		}
	}
	tr.TimedOut = true
	return tr
}
