// Package netsim is the synchronous message-passing simulator for
// communication networks of arbitrary topology (Section V of Fevat &
// Godard): n processes on the vertices of an undirected graph exchange
// one message per incident directed edge per round, and an adversary
// drops a set of directed messages each round.
//
// The omission schemes of Section V are expressed as adversaries: O_f^ω
// ("at most f losses per round") as a budgeted adversary, and the
// three-letter cut scheme Γ_C of the Theorem V.1 impossibility proof as an
// adversary driven by a two-process scenario through the bijection ρ.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/omission"
	"repro/internal/sim"
)

// Value is a consensus value (shared with the two-process kernel).
type Value = sim.Value

// Message is an algorithm-defined payload.
type Message = sim.Message

// Node is a deterministic synchronous process at a graph vertex.
type Node interface {
	// Init resets the node with its vertex id, the topology, and its
	// input.
	Init(id int, g *graph.Graph, input Value)
	// Send returns the messages for round r keyed by neighbor id; absent
	// keys (or a nil map) mean nothing is sent on that edge.
	Send(r int) map[int]Message
	// Receive delivers the round-r messages keyed by sender id (only the
	// delivered ones appear).
	Receive(r int, msgs map[int]Message)
	// Decision returns the decided value once decided.
	Decision() (Value, bool)
}

// Adversary selects the directed messages to drop each round.
type Adversary interface {
	// Drops returns the set of directed edges whose round-r messages are
	// lost.
	Drops(r int, g *graph.Graph) map[graph.DirEdge]bool
}

// NoDrops is the failure-free adversary.
type NoDrops struct{}

// Drops implements Adversary.
func (NoDrops) Drops(int, *graph.Graph) map[graph.DirEdge]bool { return nil }

// RandomF drops up to F uniformly random directed messages per round.
type RandomF struct {
	F   int
	Rng *rand.Rand
}

// Drops implements Adversary.
func (a RandomF) Drops(_ int, g *graph.Graph) map[graph.DirEdge]bool {
	var all []graph.DirEdge
	for _, e := range g.Edges() {
		all = append(all, graph.DirEdge{From: e.U, To: e.V}, graph.DirEdge{From: e.V, To: e.U})
	}
	a.Rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	k := a.F
	if k > len(all) {
		k = len(all)
	}
	out := map[graph.DirEdge]bool{}
	for _, e := range all[:k] {
		out[e] = true
	}
	return out
}

// CutScenario drives the Γ_C scheme of the Theorem V.1 proof from a
// two-process scenario through ρ⁻¹: letter '.' drops nothing, 'w' drops
// every cut-edge message from SideA ("white's side") to SideB, and 'b'
// drops every message from SideB to SideA.
type CutScenario struct {
	Cut graph.Cut
	Src omission.Source
}

// Drops implements Adversary.
func (a CutScenario) Drops(r int, _ *graph.Graph) map[graph.DirEdge]bool {
	letter := a.Src.At(r - 1)
	out := map[graph.DirEdge]bool{}
	for _, e := range a.Cut.CutEdges {
		aEnd, bEnd := a.Cut.AEnd(e), a.Cut.BEnd(e)
		if letter.LostWhite() {
			out[graph.DirEdge{From: aEnd, To: bEnd}] = true
		}
		if letter.LostBlack() {
			out[graph.DirEdge{From: bEnd, To: aEnd}] = true
		}
	}
	return out
}

// TargetedCut drops a fixed number of the cut's A→B messages per round —
// the meanest adversary that still respects a budget below the cut size.
type TargetedCut struct {
	Cut graph.Cut
	F   int
}

// Drops implements Adversary.
func (a TargetedCut) Drops(_ int, _ *graph.Graph) map[graph.DirEdge]bool {
	out := map[graph.DirEdge]bool{}
	for i, e := range a.Cut.CutEdges {
		if i >= a.F {
			break
		}
		out[graph.DirEdge{From: a.Cut.AEnd(e), To: a.Cut.BEnd(e)}] = true
	}
	return out
}

// FuncAdversary adapts a function.
type FuncAdversary func(r int, g *graph.Graph) map[graph.DirEdge]bool

// Drops implements Adversary.
func (f FuncAdversary) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool { return f(r, g) }

// Trace records a network execution.
type Trace struct {
	Inputs        []Value
	Rounds        int
	Decisions     []Value
	DecisionRound []int
	TimedOut      bool
	// MaxDropsPerRound is the largest number of messages lost in any
	// single round (for checking the O_f budget).
	MaxDropsPerRound int
	TotalDrops       int
}

// String summarizes the trace.
func (t Trace) String() string {
	return fmt.Sprintf("inputs=%v rounds=%d decisions=%v rounds=%v timedOut=%v maxDrops=%d",
		t.Inputs, t.Rounds, t.Decisions, t.DecisionRound, t.TimedOut, t.MaxDropsPerRound)
}

// Run executes the nodes on the graph under the adversary for at most
// maxRounds rounds.
func Run(g *graph.Graph, nodes []Node, inputs []Value, adv Adversary, maxRounds int) Trace {
	n := g.N()
	if len(nodes) != n || len(inputs) != n {
		panic("netsim: nodes/inputs length mismatch")
	}
	for i, node := range nodes {
		node.Init(i, g, inputs[i])
	}
	tr := Trace{
		Inputs:        append([]Value(nil), inputs...),
		Decisions:     make([]Value, n),
		DecisionRound: make([]int, n),
	}
	for i := range tr.Decisions {
		tr.Decisions[i] = sim.None
		tr.DecisionRound[i] = -1
	}
	record := func(round int) bool {
		all := true
		for i, node := range nodes {
			if tr.DecisionRound[i] < 0 {
				if v, ok := node.Decision(); ok {
					tr.Decisions[i] = v
					tr.DecisionRound[i] = round
				} else {
					all = false
				}
			}
		}
		return all
	}
	if record(0) {
		return tr
	}
	for r := 1; r <= maxRounds; r++ {
		tr.Rounds = r
		drops := adv.Drops(r, g)
		if len(drops) > tr.MaxDropsPerRound {
			tr.MaxDropsPerRound = len(drops)
		}
		tr.TotalDrops += len(drops)

		outgoing := make([]map[int]Message, n)
		for i, node := range nodes {
			outgoing[i] = node.Send(r)
		}
		incoming := make([]map[int]Message, n)
		for i := range incoming {
			incoming[i] = map[int]Message{}
		}
		for from, msgs := range outgoing {
			for to, m := range msgs {
				if m == nil || !g.HasEdge(from, to) {
					continue
				}
				if drops[graph.DirEdge{From: from, To: to}] {
					continue
				}
				incoming[to][from] = m
			}
		}
		for i, node := range nodes {
			node.Receive(r, incoming[i])
		}
		if record(r) {
			return tr
		}
	}
	tr.TimedOut = true
	return tr
}

// Report is the consensus-property check outcome for a network trace.
type Report struct {
	Terminated bool
	Agreement  bool
	Validity   bool
	Violations []string
}

// OK reports whether all three properties hold.
func (r Report) OK() bool { return r.Terminated && r.Agreement && r.Validity }

// Check verifies uniform consensus on the trace.
func Check(t Trace) Report {
	rep := Report{Terminated: true, Agreement: true, Validity: true}
	unanimous := true
	for _, v := range t.Inputs {
		if v != t.Inputs[0] {
			unanimous = false
		}
	}
	isInput := func(v Value) bool {
		for _, in := range t.Inputs {
			if in == v {
				return true
			}
		}
		return false
	}
	var first Value = sim.None
	for i, d := range t.Decisions {
		if d == sim.None {
			rep.Terminated = false
			rep.Violations = append(rep.Violations, fmt.Sprintf("termination: node %d undecided", i))
			continue
		}
		if first == sim.None {
			first = d
		} else if d != first {
			rep.Agreement = false
			rep.Violations = append(rep.Violations, fmt.Sprintf("agreement: node %d decided %d, node others %d", i, d, first))
		}
		if !isInput(d) {
			rep.Validity = false
			rep.Violations = append(rep.Violations, fmt.Sprintf("validity: node %d decided non-input %d", i, d))
		}
		if unanimous && d != t.Inputs[0] {
			rep.Validity = false
			rep.Violations = append(rep.Violations, fmt.Sprintf("validity: unanimity %d broken by node %d (%d)", t.Inputs[0], i, d))
		}
	}
	return rep
}
