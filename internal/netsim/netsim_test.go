package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/omission"
	"repro/internal/sim"
)

// countNode decides after `after` rounds on how many messages it received
// in total.
type countNode struct {
	id       int
	g        *graph.Graph
	after    int
	received int
	decision Value
}

func (c *countNode) Init(id int, g *graph.Graph, _ Value) {
	c.id, c.g, c.received, c.decision = id, g, 0, sim.None
}

func (c *countNode) Send(r int) map[int]Message {
	out := map[int]Message{}
	for _, nb := range c.g.Neighbors(c.id) {
		out[nb] = r
	}
	return out
}

func (c *countNode) Receive(r int, msgs map[int]Message) {
	c.received += len(msgs)
	if r >= c.after {
		c.decision = Value(c.received)
	}
}

func (c *countNode) Decision() (Value, bool) { return c.decision, c.decision != sim.None }

func nodes(n int, after int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = &countNode{after: after}
	}
	return out
}

func TestDeliveryAndDrops(t *testing.T) {
	g := graph.Cycle(4)
	// Drop one fixed directed edge every round.
	adv := FuncAdversary(func(r int, _ *graph.Graph) map[graph.DirEdge]bool {
		return map[graph.DirEdge]bool{{From: 0, To: 1}: true}
	})
	ns := nodes(4, 2)
	tr := Run(g, ns, make([]Value, 4), adv, 5)
	if tr.TimedOut {
		t.Fatalf("timeout: %s", tr)
	}
	// Node 1 receives 1 message per round (its 0-side message is dropped);
	// everyone else receives 2 per round over the 2 rounds.
	if tr.Decisions[1] != 2 {
		t.Errorf("node 1 received %d, want 2", tr.Decisions[1])
	}
	for _, i := range []int{0, 2, 3} {
		if tr.Decisions[i] != 4 {
			t.Errorf("node %d received %d, want 4", i, tr.Decisions[i])
		}
	}
	if tr.MaxDropsPerRound != 1 || tr.TotalDrops != 2 {
		t.Errorf("drop accounting: %s", tr)
	}
}

func TestMessagesToNonNeighborsIgnored(t *testing.T) {
	g := graph.Path(3) // 0-1-2; no 0-2 edge
	bad := &rogueNode{}
	ns := []Node{bad, &countNode{after: 1}, &countNode{after: 1}}
	tr := Run(g, ns, make([]Value, 3), NoDrops{}, 2)
	// Node 2 must not receive node 0's out-of-topology message: it hears
	// only from node 1.
	if tr.Decisions[2] != 1 {
		t.Errorf("node 2 received %d messages, want 1", tr.Decisions[2])
	}
}

// rogueNode sends to everyone including non-neighbors, and nil payloads.
type rogueNode struct{ n int }

func (r *rogueNode) Init(_ int, g *graph.Graph, _ Value) { r.n = g.N() }
func (r *rogueNode) Send(int) map[int]Message {
	out := map[int]Message{}
	for i := 1; i < r.n; i++ {
		out[i] = "rogue"
	}
	out[0] = nil // nil messages are dropped silently
	return out
}
func (r *rogueNode) Receive(int, map[int]Message) {}
func (r *rogueNode) Decision() (Value, bool)      { return 0, true }

func TestRandomFBudget(t *testing.T) {
	g := graph.Complete(5)
	rng := rand.New(rand.NewSource(4))
	for f := 0; f <= 5; f++ {
		adv := RandomF{F: f, Rng: rng}
		for r := 1; r <= 10; r++ {
			drops := adv.Drops(r, g)
			if len(drops) != f {
				t.Fatalf("f=%d round %d: %d drops", f, r, len(drops))
			}
			for de := range drops {
				if !g.HasEdge(de.From, de.To) {
					t.Fatalf("dropped non-edge %v", de)
				}
			}
		}
	}
	// Budget beyond 2|E| clamps.
	adv := RandomF{F: 999, Rng: rng}
	if len(adv.Drops(1, g)) != 2*g.NumEdges() {
		t.Error("overlarge budget must clamp to all directed edges")
	}
}

func TestCutScenarioLetters(t *testing.T) {
	g := graph.Barbell(3, 2)
	cut, _ := g.MinCut()
	src := omission.MustScenario("wb(.)")
	adv := CutScenario{Cut: cut, Src: src}
	r1 := adv.Drops(1, g) // 'w': all A→B
	if len(r1) != cut.Size() {
		t.Fatalf("round 1: %d drops, want %d", len(r1), cut.Size())
	}
	for de := range r1 {
		if !cut.InA(de.From) || cut.InA(de.To) {
			t.Fatalf("round 1 drop %v is not A→B", de)
		}
	}
	r2 := adv.Drops(2, g) // 'b': all B→A
	for de := range r2 {
		if cut.InA(de.From) || !cut.InA(de.To) {
			t.Fatalf("round 2 drop %v is not B→A", de)
		}
	}
	if len(adv.Drops(3, g)) != 0 {
		t.Error("round 3 ('.') must drop nothing")
	}
}

func TestTargetedCutRespectsF(t *testing.T) {
	g := graph.Barbell(4, 3)
	cut, _ := g.MinCut()
	for f := 0; f <= cut.Size()+1; f++ {
		adv := TargetedCut{Cut: cut, F: f}
		want := f
		if want > cut.Size() {
			want = cut.Size()
		}
		if got := len(adv.Drops(1, g)); got != want {
			t.Fatalf("f=%d: %d drops, want %d", f, got, want)
		}
	}
}

func TestRunRecordsRound0Decisions(t *testing.T) {
	g := graph.Path(2)
	ns := []Node{&rogueNode{}, &rogueNode{}} // decide immediately
	tr := Run(g, ns, make([]Value, 2), NoDrops{}, 5)
	if tr.Rounds != 0 || tr.DecisionRound[0] != 0 {
		t.Errorf("round-0 decisions: %s", tr)
	}
	if !Check(tr).Terminated {
		t.Error("terminated")
	}
}

func TestTraceString(t *testing.T) {
	tr := Trace{Inputs: []Value{0, 1}, Decisions: []Value{1, 1}, DecisionRound: []int{1, 1}}
	if tr.String() == "" {
		t.Error("empty string")
	}
}

// TestGoroutineRunnerEquivalence: the CSP runner and the sequential
// runner produce identical traces for deterministic nodes and adversaries.
func TestGoroutineRunnerEquivalence(t *testing.T) {
	g := graph.Cycle(5)
	adv := FuncAdversary(func(r int, _ *graph.Graph) map[graph.DirEdge]bool {
		if r%2 == 1 {
			return map[graph.DirEdge]bool{{From: 0, To: 1}: true}
		}
		return map[graph.DirEdge]bool{{From: 2, To: 3}: true}
	})
	in := []Value{0, 1, 0, 1, 1}
	seq := Run(g, nodes(5, 3), in, adv, 6)
	conc := RunGoroutines(g, nodes(5, 3), in, adv, 6)
	if seq.Rounds != conc.Rounds || seq.TimedOut != conc.TimedOut ||
		seq.MaxDropsPerRound != conc.MaxDropsPerRound || seq.TotalDrops != conc.TotalDrops {
		t.Fatalf("trace metadata differs:\n seq: %s\nconc: %s", seq, conc)
	}
	for i := range seq.Decisions {
		if seq.Decisions[i] != conc.Decisions[i] || seq.DecisionRound[i] != conc.DecisionRound[i] {
			t.Fatalf("node %d decisions differ: %s vs %s", i, seq, conc)
		}
	}
	// Timeout path.
	seq = Run(g, nodes(5, 100), in, adv, 4)
	conc = RunGoroutines(g, nodes(5, 100), in, adv, 4)
	if !seq.TimedOut || !conc.TimedOut || seq.Rounds != conc.Rounds {
		t.Fatalf("timeout divergence: %s vs %s", seq, conc)
	}
	// Round-0 path.
	instant := []Node{&rogueNode{}, &rogueNode{}}
	g2 := graph.Path(2)
	c0 := RunGoroutines(g2, instant, make([]Value, 2), NoDrops{}, 3)
	if c0.Rounds != 0 || c0.DecisionRound[0] != 0 {
		t.Fatalf("round-0: %s", c0)
	}
	// Mismatched lengths panic.
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RunGoroutines(g2, instant, make([]Value, 5), NoDrops{}, 1)
}
