package netsim

import (
	"context"

	"repro/internal/graph"
)

// RunHardened is the sequential runner with the fail-closed guarantees of
// RunGoroutinesHardened: a panicking node is crash-stopped with a
// diagnostic instead of killing the process, and the context bounds the
// run's wall-clock time (checked at every round boundary).
func RunHardened(ctx context.Context, g *graph.Graph, nodes []Node, inputs []Value, adv Adversary, maxRounds int) HardenedTrace {
	n := g.N()
	if len(nodes) != n || len(inputs) != n {
		panic("netsim: nodes/inputs length mismatch")
	}
	ht := HardenedTrace{Trace: Trace{
		Inputs:        append([]Value(nil), inputs...),
		Decisions:     make([]Value, n),
		DecisionRound: make([]int, n),
	}}
	for i := range ht.Decisions {
		ht.Decisions[i] = -1
		ht.DecisionRound[i] = -1
	}
	crashed := make([]bool, n)
	crash := func(i, round int, err error) {
		if crashed[i] {
			return
		}
		crashed[i] = true
		ht.Crashes = append(ht.Crashes, NodeCrash{Node: i, Round: round, Op: opOf(err), Diag: err.Error()})
	}

	for i, node := range nodes {
		var err error
		func() {
			defer recoverDiag("Init", 0, &err)
			node.Init(i, g, inputs[i])
		}()
		if err != nil {
			crash(i, 0, err)
		}
	}

	record := func(round int) bool {
		all := true
		for i, node := range nodes {
			if crashed[i] {
				continue
			}
			if ht.DecisionRound[i] < 0 {
				v, ok, err := safeDecision(node, round)
				if err != nil {
					crash(i, round, err)
					continue
				}
				if ok {
					ht.Decisions[i] = v
					ht.DecisionRound[i] = round
				} else {
					all = false
				}
			}
		}
		return all
	}
	if record(0) {
		return ht
	}
	for r := 1; r <= maxRounds; r++ {
		if err := ctx.Err(); err != nil {
			ht.Interrupted = true
			ht.Err = err
			ht.TimedOut = true
			return ht
		}
		ht.Rounds = r
		drops := adv.Drops(r, g)
		if len(drops) > ht.MaxDropsPerRound {
			ht.MaxDropsPerRound = len(drops)
		}
		ht.TotalDrops += len(drops)

		outgoing := make([]map[int]Message, n)
		for i, node := range nodes {
			if crashed[i] {
				continue
			}
			msgs, err := safeSend(node, r)
			if err != nil {
				crash(i, r, err)
				continue
			}
			outgoing[i] = msgs
		}
		incoming := make([]map[int]Message, n)
		for i := range incoming {
			incoming[i] = map[int]Message{}
		}
		for from, msgs := range outgoing {
			for to, m := range msgs {
				if m == nil || !g.HasEdge(from, to) {
					continue
				}
				if drops[graph.DirEdge{From: from, To: to}] {
					continue
				}
				incoming[to][from] = m
			}
		}
		for i, node := range nodes {
			if crashed[i] {
				continue
			}
			if err := safeReceive(node, r, incoming[i]); err != nil {
				crash(i, r, err)
			}
		}
		if record(r) {
			return ht
		}
	}
	ht.TimedOut = true
	return ht
}
