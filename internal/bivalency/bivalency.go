// Package bivalency operationalizes the impossibility proof technique of
// Section III-C: valency analysis of a concrete algorithm against an
// omission scheme.
//
// Given a deterministic algorithm (as a factory of sim.Process pairs), a
// scheme L, and an initial input pair, a partial scenario v ∈ Pref(L) is
// i-valent when every completing execution within the exploration depth
// decides i, and bivalent when both outcomes are reachable (Definition
// III.9). A decisive prefix (Definition III.10) is a bivalent prefix all
// of whose extensions inside Pref(L) are univalent.
//
// For solvable schemes, walking maximal bivalent prefixes terminates in a
// decisive prefix — the combinatorial pivot of the paper's proof. For
// obstructions, the bivalent walk continues forever (certified here up to
// a depth bound); running the same walk against an algorithm that claims
// to solve the scheme would exhibit the contradiction.
package bivalency

import (
	"fmt"

	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Factory produces fresh process pairs of the algorithm under analysis.
type Factory func() (white, black sim.Process)

// Valency is the outcome classification of a partial scenario.
type Valency int

// Valency values.
const (
	// Valent0: every completion within the horizon decides 0.
	Valent0 Valency = iota
	// Valent1: every completion within the horizon decides 1.
	Valent1
	// Bivalent: completions deciding 0 and deciding 1 both exist.
	Bivalent
	// Unknown: no completion within the horizon decides at all (the
	// algorithm stalls, or the horizon is too small).
	Unknown
)

// String implements fmt.Stringer.
func (v Valency) String() string {
	switch v {
	case Valent0:
		return "0-valent"
	case Valent1:
		return "1-valent"
	case Bivalent:
		return "bivalent"
	default:
		return "unknown"
	}
}

// Analyzer explores an algorithm's executions against a scheme.
type Analyzer struct {
	factory Factory
	scheme  *scheme.Scheme
	inputs  [2]sim.Value
	// Horizon bounds the exploration depth beyond the analyzed prefix.
	Horizon int
}

// New builds an analyzer with the given exploration horizon.
func New(f Factory, s *scheme.Scheme, inputs [2]sim.Value, horizon int) *Analyzer {
	return &Analyzer{factory: f, scheme: s, inputs: inputs, Horizon: horizon}
}

// decisionUnder replays the algorithm under the full word and reports the
// (agreeing) decision, ok=false when any process is undecided by the end.
func (a *Analyzer) decisionUnder(w omission.Word) (sim.Value, bool) {
	white, black := a.factory()
	tr := sim.RunScenario(white, black, a.inputs, omission.WordSource(w.Clone()), w.Len())
	if tr.DecisionRound[0] < 0 || tr.DecisionRound[1] < 0 {
		return sim.None, false
	}
	return tr.Decisions[0], true
}

// Valency classifies the partial scenario v (which must be in Pref(L)) by
// exploring all scheme-consistent completions up to the horizon.
func (a *Analyzer) Valency(v omission.Word) Valency {
	alphabet := omission.Gamma
	if !a.scheme.OverGamma() {
		alphabet = omission.Sigma
	}
	saw0, saw1 := false, false
	var explore func(w omission.Word, depth int) bool // true = stop early (bivalent)
	explore = func(w omission.Word, depth int) bool {
		if d, ok := a.decisionUnder(w); ok {
			if d == 0 {
				saw0 = true
			} else {
				saw1 = true
			}
			return saw0 && saw1
		}
		if depth == a.Horizon {
			return false
		}
		for _, l := range alphabet {
			next := w.Append(l)
			if !a.scheme.AcceptsPrefix(next) {
				continue
			}
			if explore(next, depth+1) {
				return true
			}
		}
		return false
	}
	explore(v, 0)
	switch {
	case saw0 && saw1:
		return Bivalent
	case saw0:
		return Valent0
	case saw1:
		return Valent1
	default:
		return Unknown
	}
}

// Decisive reports whether the bivalent prefix v is decisive: every
// one-letter extension inside Pref(L) is univalent (Definition III.10).
func (a *Analyzer) Decisive(v omission.Word) bool {
	if a.Valency(v) != Bivalent {
		return false
	}
	alphabet := omission.Gamma
	if !a.scheme.OverGamma() {
		alphabet = omission.Sigma
	}
	for _, l := range alphabet {
		next := v.Append(l)
		if !a.scheme.AcceptsPrefix(next) {
			continue
		}
		if a.Valency(next) == Bivalent {
			return false
		}
	}
	return true
}

// Walk extends bivalent prefixes from ε, preferring bivalent successors,
// until it reaches a decisive prefix or the depth bound. It returns the
// final prefix and whether it is decisive. (For a correct algorithm on a
// solvable scheme the walk must end decisively — that is Lemma III.11;
// on an obstruction the walk can be extended forever.)
func (a *Analyzer) Walk(maxDepth int) (omission.Word, bool, error) {
	v := omission.Epsilon()
	if a.Valency(v) != Bivalent {
		return nil, false, fmt.Errorf("bivalency: ε is not bivalent for inputs %v (choose distinct inputs)", a.inputs)
	}
	alphabet := omission.Gamma
	if !a.scheme.OverGamma() {
		alphabet = omission.Sigma
	}
	for depth := 0; depth < maxDepth; depth++ {
		extended := false
		for _, l := range alphabet {
			next := v.Append(l)
			if !a.scheme.AcceptsPrefix(next) {
				continue
			}
			if a.Valency(next) == Bivalent {
				v = next
				extended = true
				break
			}
		}
		if !extended {
			// All extensions univalent: v is decisive.
			return v, true, nil
		}
	}
	return v, false, nil
}
