package bivalency

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// boundedS1 builds the round-optimal bounded A_w for S1 (p = 2).
func boundedS1(t *testing.T) (Factory, omission.Scenario, int) {
	t.Helper()
	res, err := classify.Classify(scheme.S1())
	if err != nil {
		t.Fatal(err)
	}
	witness := consensus.BoundedWitness(res.MinRoundsWitness)
	f := func() (sim.Process, sim.Process) {
		return consensus.NewBoundedAW(witness, res.MinRounds), consensus.NewBoundedAW(witness, res.MinRounds)
	}
	return f, witness, res.MinRounds
}

// TestS1ValencyStructure maps Definition III.9/III.10 onto the bounded
// A_w for S1 with inputs (0, 1): ε is bivalent, the letter committing to
// the "White loses" world is 1-valent, the other two letters are
// 0-valent — so ε itself is decisive.
func TestS1ValencyStructure(t *testing.T) {
	f, _, _ := boundedS1(t)
	a := New(f, scheme.S1(), [2]sim.Value{0, 1}, 4)
	if v := a.Valency(omission.Epsilon()); v != Bivalent {
		t.Fatalf("ε valency = %v, want bivalent", v)
	}
	if v := a.Valency(omission.MustWord("w")); v != Valent1 {
		t.Fatalf("valency(w) = %v, want 1-valent", v)
	}
	if v := a.Valency(omission.MustWord("b")); v != Valent0 {
		t.Fatalf("valency(b) = %v, want 0-valent", v)
	}
	if v := a.Valency(omission.MustWord(".")); v != Valent0 {
		t.Fatalf("valency(.) = %v, want 0-valent", v)
	}
	if !a.Decisive(omission.Epsilon()) {
		t.Fatal("ε should be decisive (all extensions univalent)")
	}
	v, decisive, err := a.Walk(6)
	if err != nil {
		t.Fatal(err)
	}
	if !decisive || v.Len() != 0 {
		t.Fatalf("walk should stop decisively at ε, got %v (decisive=%v)", v, decisive)
	}
}

// TestValidityForcesUnanimity: unanimous inputs make ε univalent at the
// matching value — the validity half of the proof setup.
func TestValidityForcesUnanimity(t *testing.T) {
	f, _, _ := boundedS1(t)
	if v := New(f, scheme.S1(), [2]sim.Value{0, 0}, 4).Valency(omission.Epsilon()); v != Valent0 {
		t.Fatalf("unanimous-0 ε = %v", v)
	}
	if v := New(f, scheme.S1(), [2]sim.Value{1, 1}, 4).Valency(omission.Epsilon()); v != Valent1 {
		t.Fatalf("unanimous-1 ε = %v", v)
	}
	// And the walk refuses to start from a univalent ε.
	if _, _, err := New(f, scheme.S1(), [2]sim.Value{1, 1}, 4).Walk(4); err == nil {
		t.Fatal("expected an error for univalent ε")
	}
}

// TestAWbOmegaIsUnivalent documents a subtlety: A_{b^ω} on the almost-fair
// scheme always decides Black's initial value (it IS the intuitive
// algorithm: White adopts Black's value). With inputs (0, 1) every prefix
// is therefore 1-valent — bivalence is a property of an algorithm, not of
// the scheme.
func TestAWbOmegaIsUnivalent(t *testing.T) {
	f := func() (sim.Process, sim.Process) {
		w := omission.MustScenario("(b)")
		return consensus.NewAW(w), consensus.NewAW(w)
	}
	a := New(f, scheme.AlmostFair(), [2]sim.Value{0, 1}, 6)
	for _, p := range []string{"", "b", "bb", ".", "w"} {
		if v := a.Valency(omission.MustWord(p)); v != Valent1 {
			t.Fatalf("valency(%q) = %v, want 1-valent", p, v)
		}
	}
}

// TestTotalAlgorithmFailsOnObstruction closes the impossibility loop: the
// bounded A_w for S1 is a *total* 2-round algorithm, so running it on the
// larger scheme Γ^ω must break consensus on some scenario — and it does,
// exactly on the excluded word w0 used to build it.
func TestTotalAlgorithmFailsOnObstruction(t *testing.T) {
	f, witness, p := boundedS1(t)
	violated := false
	var bad omission.Word
	for _, w := range omission.AllWords(omission.Gamma, p) {
		white, black := f()
		tr := sim.RunScenario(white, black, [2]sim.Value{0, 1}, omission.WordSource(w), p+1)
		if rep := sim.Check(tr); !rep.OK() {
			violated = true
			bad = w
			break
		}
	}
	if !violated {
		t.Fatal("a total algorithm cannot solve Γ^ω — a violation must exist")
	}
	// The violating scenario prefix is exactly the excluded word w0.
	w0 := make(omission.Word, p)
	for i := range w0 {
		w0[i] = witness.At(i)
	}
	if !bad.Equal(w0) {
		t.Logf("violation at %v (excluded word %v)", bad, w0)
	}
	// On its own scheme the same runs are all fine.
	for _, w := range scheme.S1().AllPrefixes(p) {
		white, black := f()
		sc, ok := scheme.S1().ExtendToScenario(w)
		if !ok {
			continue
		}
		tr := sim.RunScenario(white, black, [2]sim.Value{0, 1}, sc, p+2)
		if !sim.Check(tr).OK() {
			t.Fatalf("bounded A_w failed on its own scheme at %v", w)
		}
	}
}

// TestUnknownValency: a never-deciding algorithm yields Unknown.
func TestUnknownValency(t *testing.T) {
	stall := func() (sim.Process, sim.Process) {
		return &stubborn{}, &stubborn{}
	}
	a := New(stall, scheme.AlmostFair(), [2]sim.Value{0, 1}, 3)
	if v := a.Valency(omission.Epsilon()); v != Unknown {
		t.Fatalf("stalling algorithm valency = %v", v)
	}
	if a.Decisive(omission.Epsilon()) {
		t.Fatal("unknown prefixes are not decisive")
	}
	for _, v := range []Valency{Valent0, Valent1, Bivalent, Unknown} {
		if v.String() == "" {
			t.Error("empty valency string")
		}
	}
}

type stubborn struct{}

func (stubborn) Init(sim.ID, sim.Value)       {}
func (stubborn) Send(int) (sim.Message, bool) { return sim.Value(0), true }
func (stubborn) Receive(int, sim.Message)     {}
func (stubborn) Decision() (sim.Value, bool)  { return sim.None, false }
