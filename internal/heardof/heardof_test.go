package heardof

import (
	"context"
	"testing"

	"repro/internal/chain"
	"repro/internal/classify"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func TestLetterPairBijection(t *testing.T) {
	for _, l := range omission.Sigma {
		p := FromLetter(l)
		if !p.White.Contains(sim.White) || !p.Black.Contains(sim.Black) {
			t.Fatalf("%v: HO sets must contain the hearer", l)
		}
		back, err := p.ToLetter()
		if err != nil || back != l {
			t.Fatalf("round trip %v -> %v -> %v (%v)", l, p, back, err)
		}
	}
	// Invalid pairs are rejected.
	if _, err := (Pair{White: JustBlack, Black: Both}).ToLetter(); err == nil {
		t.Error("white must hear itself")
	}
	if _, err := (Pair{White: Both, Black: JustWhite}).ToLetter(); err == nil {
		t.Error("black must hear itself")
	}
}

func TestKernelPerLetter(t *testing.T) {
	cases := []struct {
		l    omission.Letter
		want Set
	}{
		{omission.None, Both},
		{omission.LossWhite, JustBlack},
		{omission.LossBlack, JustWhite},
		{omission.LossBoth, Nobody},
	}
	for _, c := range cases {
		if got := FromLetter(c.l).Kernel(); got != c.want {
			t.Errorf("kernel(%v) = %v, want %v", c.l, got, c.want)
		}
	}
	for _, s := range []Set{Nobody, JustWhite, JustBlack, Both} {
		if s.String() == "" {
			t.Error("set string")
		}
	}
}

// TestKernelPredicateIsGammaOmega: the nonempty-kernel predicate equals
// Γ^ω (R1) as an ω-language over Σ, and is therefore an obstruction.
func TestKernelPredicateIsGammaOmega(t *testing.T) {
	k := NonemptyKernel()
	eq, w := scheme.Equivalent(k, scheme.R1())
	if !eq {
		t.Fatalf("kernel predicate ≠ Γ^ω: %s", w)
	}
	res, err := classify.Classify(k)
	if err != nil || res.Solvable {
		t.Fatalf("nonempty kernel must be an obstruction: %+v %v", res, err)
	}
	// NoSplit coincides for n=2.
	eq, _ = scheme.Equivalent(NoSplit(), k)
	if !eq {
		t.Error("NoSplit ≠ kernel for two processes")
	}
}

// TestEventuallyGoodSolvable: infinitely many all-hear-all rounds make
// consensus solvable even with double omissions in between — but not in
// bounded rounds.
func TestEventuallyGoodSolvable(t *testing.T) {
	eg := EventuallyGood()
	if !eg.Contains(omission.MustScenario("(x.)")) {
		t.Error("x. repeated has infinitely many good rounds")
	}
	if eg.Contains(omission.MustScenario("..(x)")) {
		t.Error("eventually-always-x is not eventually good")
	}
	if eg.Contains(omission.MustScenario("(wb)")) {
		t.Error("no '.' rounds at all")
	}
	// Its Γ-restriction (infinitely many '.' in Γ^ω) is solvable, so
	// Theorem III.8 cannot decide the full Σ-scheme; the bounded analysis
	// says: never bounded-round solvable (the adversary can stall with
	// blackouts arbitrarily long).
	if _, err := classify.Classify(eg); err == nil {
		t.Error("EventuallyGood is a Σ-scheme with solvable Γ-restriction; classify must refuse")
	}
	for r := 0; r <= 3; r++ {
		rep, err := chain.Analyze(context.Background(),
			chain.Request{Scheme: eg, Horizon: r, VerdictOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Solvable {
			t.Fatalf("EventuallyGood bounded-solvable at %d", r)
		}
	}
	// Yet consensus *is* solvable on it: a clean round is common knowledge
	// (as in the blackout channel), so FirstCleanExchange-style waiting
	// works; here we verify the scheme at least admits the one-clean-round
	// argument by running the undeadlined FirstCleanExchange on sampled
	// members. (Every member has a '.' round eventually.)
	// Sampled members: x^j (.) tails.
	for j := 0; j <= 4; j++ {
		sc := omission.UPWord(omission.Uniform(omission.LossBoth, j), omission.MustWord("."))
		if !eg.Contains(sc) {
			t.Fatalf("x^%d(.) should be eventually good", j)
		}
	}
}

func TestPairSource(t *testing.T) {
	src := PairSource{Src: omission.MustScenario("wx(.)")}
	if src.At(0) != FromLetter(omission.LossWhite) {
		t.Error("round 1")
	}
	if src.At(1).Kernel() != Nobody {
		t.Error("round 2 kernel")
	}
	if src.At(5).Kernel() != Both {
		t.Error("tail kernel")
	}
}
