// Package heardof bridges the omission-scheme view of Fevat & Godard with
// the Heard-Of model of Charron-Bost & Schiper ([CBS09], which the paper
// follows for its "phenomenon, not cause" stance): for two processes, a
// round's communication is the pair of heard-of sets
// (HO(white), HO(black)), each containing the hearer itself, and the four
// possibilities correspond exactly to the four omission letters.
//
// Communication predicates — constraints on the infinite sequence of HO
// pairs — are therefore omission schemes, and Theorem III.8 classifies
// them. The package provides the letter ↔ HO-pair bijection and the
// classical predicates expressed as schemes:
//
//	NonemptyKernel  — every round someone is heard by all: exactly Γ^ω,
//	                  i.e. the paper's central obstruction R1;
//	EventuallyGood  — infinitely many all-hear-all rounds: solvable;
//	NoSplit         — every round, the two HO sets intersect: for n = 2
//	                  this is again Γ^ω (the kernel is the intersection).
package heardof

import (
	"fmt"

	"repro/internal/buchi"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// Set is a set of process identities, as a bitmask (bit 0 = White,
// bit 1 = Black).
type Set uint8

// Sets.
const (
	// Nobody is the empty set.
	Nobody Set = 0
	// JustWhite contains only White.
	JustWhite Set = 1 << sim.White
	// JustBlack contains only Black.
	JustBlack Set = 1 << sim.Black
	// Both contains both processes.
	Both Set = JustWhite | JustBlack
)

// Contains reports membership.
func (s Set) Contains(id sim.ID) bool { return s&(1<<id) != 0 }

// String implements fmt.Stringer.
func (s Set) String() string {
	switch s {
	case Nobody:
		return "{}"
	case JustWhite:
		return "{white}"
	case JustBlack:
		return "{black}"
	default:
		return "{white,black}"
	}
}

// Pair is one round of heard-of sets. Valid pairs always include the
// hearer itself.
type Pair struct {
	White Set // HO(white, r)
	Black Set // HO(black, r)
}

// FromLetter converts an omission letter to the round's HO pair: a
// process hears itself always and hears its partner unless the partner's
// message is lost.
func FromLetter(l omission.Letter) Pair {
	p := Pair{White: JustWhite, Black: JustBlack}
	if !l.LostBlack() {
		p.White |= JustBlack
	}
	if !l.LostWhite() {
		p.Black |= JustWhite
	}
	return p
}

// ToLetter converts an HO pair back to the omission letter; it reports an
// error when a set omits the hearer itself.
func (p Pair) ToLetter() (omission.Letter, error) {
	if !p.White.Contains(sim.White) || !p.Black.Contains(sim.Black) {
		return 0, fmt.Errorf("heardof: HO sets must contain the hearer (%v)", p)
	}
	switch {
	case p.White.Contains(sim.Black) && p.Black.Contains(sim.White):
		return omission.None, nil
	case p.White.Contains(sim.Black):
		return omission.LossWhite, nil
	case p.Black.Contains(sim.White):
		return omission.LossBlack, nil
	default:
		return omission.LossBoth, nil
	}
}

// Kernel returns the round's kernel: the processes heard by everyone.
func (p Pair) Kernel() Set { return p.White & p.Black }

// NonemptyKernel is the communication predicate "every round's kernel is
// nonempty". For two processes this is exactly the no-double-omission
// scheme Γ^ω (R1) — hence, by Theorem III.8, an obstruction: the kernel
// predicate alone does not make consensus solvable, matching the negative
// results of the HO literature.
func NonemptyKernel() *scheme.Scheme {
	return scheme.MustNew("HO:kernel", "every round has a nonempty kernel (= Γ^ω)",
		scheme.R1().Automaton())
}

// NoSplit is the predicate "every round the HO sets intersect"; with two
// processes the intersection is the kernel, so NoSplit = NonemptyKernel.
func NoSplit() *scheme.Scheme {
	return scheme.MustNew("HO:nosplit", "HO sets intersect every round (= Γ^ω for n=2)",
		scheme.R1().Automaton())
}

// EventuallyGood is the predicate "infinitely many uniform all-hear-all
// rounds" (the space-time uniform rounds of the HO framework): infinitely
// many '.' letters, over Σ. It is solvable — the constant unfair
// scenarios lie outside it.
func EventuallyGood() *scheme.Scheme {
	d := &buchi.DBA{
		Alphabet: len(omission.Sigma),
		Start:    0,
		Delta: [][]buchi.State{
			{1, 0, 0, 0}, // on '.', visit the accepting state
			{1, 0, 0, 0},
		},
		Accepting: []bool{false, true},
	}
	return scheme.MustNew("HO:evgood", "infinitely many all-hear-all rounds", d)
}

// PairSource adapts an omission scenario into the HO view, round by
// round.
type PairSource struct{ Src omission.Source }

// At returns the HO pair of round r (0-based letter index).
func (p PairSource) At(r int) Pair { return FromLetter(p.Src.At(r)) }
