package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// echoOnce decides its own input after one round, regardless of delivery.
type echoOnce struct {
	init     sim.Value
	decision sim.Value
}

func (p *echoOnce) Init(_ sim.ID, input sim.Value) { p.init, p.decision = input, sim.None }
func (p *echoOnce) Send(r int) (sim.Message, bool) { return p.init, p.decision == sim.None }
func (p *echoOnce) Receive(r int, _ sim.Message)   { p.decision = p.init }
func (p *echoOnce) Decision() (sim.Value, bool) {
	return p.decision, p.decision != sim.None
}

// stubborn never decides.
type stubborn struct{}

func (stubborn) Init(sim.ID, sim.Value)       {}
func (stubborn) Send(int) (sim.Message, bool) { return sim.Value(0), true }
func (stubborn) Receive(int, sim.Message)     {}
func (stubborn) Decision() (sim.Value, bool)  { return sim.None, false }

// recorder decides round 1 on whether it received (1) or not (0).
type recorder struct{ decision sim.Value }

func (p *recorder) Init(sim.ID, sim.Value)         { p.decision = sim.None }
func (p *recorder) Send(r int) (sim.Message, bool) { return sim.Value(9), p.decision == sim.None }
func (p *recorder) Receive(r int, m sim.Message) {
	if m == nil {
		p.decision = 0
	} else {
		p.decision = 1
	}
}
func (p *recorder) Decision() (sim.Value, bool) { return p.decision, p.decision != sim.None }

func TestIDBasics(t *testing.T) {
	if sim.White.Other() != sim.Black || sim.Black.Other() != sim.White {
		t.Error("Other")
	}
	if sim.White.String() != "white" || sim.Black.String() != "black" {
		t.Error("String")
	}
}

func TestOmissionSemantics(t *testing.T) {
	// Letter 'w' drops White's message: Black receives nothing.
	cases := []struct {
		letter       omission.Letter
		white, black sim.Value // recorder decisions: 1 = received
	}{
		{omission.None, 1, 1},
		{omission.LossWhite, 1, 0},
		{omission.LossBlack, 0, 1},
		{omission.LossBoth, 0, 0},
	}
	for _, c := range cases {
		w, b := &recorder{}, &recorder{}
		tr := sim.RunScenario(w, b, [2]sim.Value{0, 0}, omission.WordSource(omission.Word{c.letter}), 5)
		if tr.Decisions[0] != c.white || tr.Decisions[1] != c.black {
			t.Errorf("letter %v: decisions %v, want (%d,%d)", c.letter, tr.Decisions, c.white, c.black)
		}
		if tr.Rounds != 1 {
			t.Errorf("letter %v: %d rounds", c.letter, tr.Rounds)
		}
	}
}

func TestTimeout(t *testing.T) {
	tr := sim.RunScenario(stubborn{}, stubborn{}, [2]sim.Value{0, 1}, omission.Constant(omission.None), 7)
	if !tr.TimedOut || tr.Rounds != 7 {
		t.Errorf("timeout trace: %s", tr)
	}
	rep := sim.Check(tr)
	if rep.Terminated || rep.OK() {
		t.Error("non-terminating run must fail the termination property")
	}
	if !rep.Agreement || !rep.Validity {
		t.Error("undecided runs violate only termination")
	}
}

func TestCheckProperties(t *testing.T) {
	// Agreement violation.
	tr := sim.Trace{
		Inputs:        [2]sim.Value{0, 1},
		Decisions:     [2]sim.Value{0, 1},
		DecisionRound: [2]int{1, 1},
	}
	rep := sim.Check(tr)
	if rep.Agreement || rep.OK() {
		t.Error("disagreement must be caught")
	}
	if !rep.Terminated || !rep.Validity {
		t.Errorf("only agreement should fail: %+v", rep)
	}
	// Validity violation: unanimous 0 but decided 1.
	tr = sim.Trace{
		Inputs:        [2]sim.Value{0, 0},
		Decisions:     [2]sim.Value{1, 1},
		DecisionRound: [2]int{1, 1},
	}
	rep = sim.Check(tr)
	if rep.Validity {
		t.Error("unanimity violation must be caught")
	}
	// Decided value that is no one's input.
	tr = sim.Trace{
		Inputs:        [2]sim.Value{0, 1},
		Decisions:     [2]sim.Value{7, 7},
		DecisionRound: [2]int{1, 1},
	}
	if sim.Check(tr).Validity {
		t.Error("non-input decision must be caught")
	}
	// A clean run.
	tr = sim.Trace{
		Inputs:        [2]sim.Value{0, 1},
		Decisions:     [2]sim.Value{1, 1},
		DecisionRound: [2]int{1, 2},
	}
	if !sim.Check(tr).OK() {
		t.Error("clean trace must pass")
	}
	if len(sim.AllInputs()) != 4 {
		t.Error("four binary input pairs")
	}
}

func TestDecidedProcessGoesSilent(t *testing.T) {
	// echoOnce decides at round 1 and must stop sending; its stubborn
	// partner then receives nil from round 2 on. recorder as partner
	// would decide 0 at round 2 if the kernel silences echoOnce.
	e, r := &echoOnce{}, &recorder{}
	// Round 1 delivers both; echoOnce decides. Round 2: recorder must get nil.
	// recorder decides at round 1 though (it got a message). Use a
	// two-phase recorder instead: decide only on round 2 reception.
	two := &secondRoundRecorder{}
	tr := sim.RunScenario(e, two, [2]sim.Value{5, 6}, omission.Constant(omission.None), 5)
	if tr.Decisions[1] != 0 {
		t.Errorf("partner of a halted process should receive nil at round 2: %s", tr)
	}
	_ = r
}

type secondRoundRecorder struct{ decision sim.Value }

func (p *secondRoundRecorder) Init(sim.ID, sim.Value) { p.decision = sim.None }
func (p *secondRoundRecorder) Send(r int) (sim.Message, bool) {
	return sim.Value(9), p.decision == sim.None
}
func (p *secondRoundRecorder) Receive(r int, m sim.Message) {
	if r < 2 {
		return
	}
	if m == nil {
		p.decision = 0
	} else {
		p.decision = 1
	}
}
func (p *secondRoundRecorder) Decision() (sim.Value, bool) { return p.decision, p.decision != sim.None }

// TestRunnersEquivalent asserts that the sequential and goroutine runners
// produce byte-identical traces for the real algorithm A_w across random
// schemes, scenarios, and inputs.
func TestRunnersEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	type tc struct {
		s       *scheme.Scheme
		witness omission.Scenario // a valid Theorem III.8 witness ∉ L
	}
	cases := []tc{
		{scheme.AlmostFair(), omission.MustScenario("(b)")},
		{scheme.C1(), omission.MustScenario("(wb)")}, // fair, outside C1
		{scheme.S1(), omission.MustScenario("(wb)")},
		{scheme.Fair(), omission.MustScenario("(w)")},
	}
	for trial := 0; trial < 60; trial++ {
		s := cases[trial%len(cases)].s
		witness := cases[trial%len(cases)].witness
		sc, ok := s.SampleScenario(rng, rng.Intn(8))
		if !ok {
			t.Fatalf("sampling from %s failed", s.Name())
		}
		inputs := sim.AllInputs()[trial%4]
		mk := func() (sim.Process, sim.Process) {
			return consensus.NewAW(witness), consensus.NewAW(witness)
		}
		w1, b1 := mk()
		seq := sim.RunScenario(w1, b1, inputs, sc, 200)
		w2, b2 := mk()
		conc := sim.RunGoroutinesScenario(w2, b2, inputs, sc, 200)
		if !seq.Equal(conc) {
			t.Fatalf("runner divergence on %s / %s:\n seq: %s\nconc: %s", s.Name(), sc, seq, conc)
		}
		if !sim.Check(seq).OK() {
			t.Fatalf("A_w failed on %s scenario %s: %s", s.Name(), sc, seq)
		}
	}
}

func TestGoroutineRunnerTimeoutAndRound0(t *testing.T) {
	tr := sim.RunGoroutinesScenario(stubborn{}, stubborn{}, [2]sim.Value{0, 1}, omission.Constant(omission.None), 4)
	if !tr.TimedOut || tr.Rounds != 4 {
		t.Errorf("goroutine timeout: %s", tr)
	}
	// Instantly-decided processes terminate at round 0 in both runners.
	d1, d2 := &instant{}, &instant{}
	tr = sim.RunGoroutinesScenario(d1, d2, [2]sim.Value{1, 1}, omission.Constant(omission.None), 4)
	if tr.Rounds != 0 || tr.DecisionRound != [2]int{0, 0} {
		t.Errorf("round-0 decision: %s", tr)
	}
	d3, d4 := &instant{}, &instant{}
	seq := sim.RunScenario(d3, d4, [2]sim.Value{1, 1}, omission.Constant(omission.None), 4)
	if !seq.Equal(tr) {
		t.Errorf("round-0 divergence: %s vs %s", seq, tr)
	}
}

type instant struct{ v sim.Value }

func (p *instant) Init(_ sim.ID, input sim.Value) { p.v = input }
func (p *instant) Send(int) (sim.Message, bool)   { return nil, false }
func (p *instant) Receive(int, sim.Message)       {}
func (p *instant) Decision() (sim.Value, bool)    { return p.v, true }

func TestFuncAdversary(t *testing.T) {
	alternating := sim.FuncAdversary(func(r int, _ omission.Word) omission.Letter {
		if r%2 == 1 {
			return omission.LossWhite
		}
		return omission.LossBlack
	})
	w, b := &recorder{}, &recorder{}
	tr := sim.Run(w, b, [2]sim.Value{0, 0}, alternating, 3)
	if !tr.Played.Equal(omission.MustWord("w")) {
		t.Errorf("played %v", tr.Played)
	}
}

// TestMessageAccounting checks the sent/delivered counters on a scripted
// run: two recorders run exactly one round under each letter.
func TestMessageAccounting(t *testing.T) {
	cases := []struct {
		letter          omission.Letter
		sent, delivered int
	}{
		{omission.None, 2, 2},
		{omission.LossWhite, 2, 1},
		{omission.LossBlack, 2, 1},
		{omission.LossBoth, 2, 0},
	}
	for _, c := range cases {
		tr := sim.RunScenario(&recorder{}, &recorder{}, [2]sim.Value{0, 0},
			omission.WordSource(omission.Word{c.letter}), 1)
		if tr.MessagesSent != c.sent || tr.MessagesDelivered != c.delivered {
			t.Errorf("letter %v: sent=%d delivered=%d, want %d/%d",
				c.letter, tr.MessagesSent, tr.MessagesDelivered, c.sent, c.delivered)
		}
		tr2 := sim.RunGoroutinesScenario(&recorder{}, &recorder{}, [2]sim.Value{0, 0},
			omission.WordSource(omission.Word{c.letter}), 1)
		if !tr.Equal(tr2) {
			t.Errorf("letter %v: runners disagree on accounting", c.letter)
		}
	}
	// A halted sender stops contributing: A_w under (.) halts white at
	// round 1; round 2 has only black sending into the void.
	w := consensus.NewAW(omission.MustScenario("(b)"))
	b := consensus.NewAW(omission.MustScenario("(b)"))
	tr := sim.RunScenario(w, b, [2]sim.Value{0, 1}, omission.MustScenario("(.)"), 5)
	if tr.MessagesSent != 3 || tr.MessagesDelivered != 2 {
		t.Errorf("A_w accounting: sent=%d delivered=%d, want 3/2", tr.MessagesSent, tr.MessagesDelivered)
	}
}
