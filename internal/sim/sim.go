// Package sim is the synchronous two-process message-passing kernel of the
// Coordinated Attack setting (Section II-C of Fevat & Godard): in each
// round r every process sends a message, receives the other's message —
// unless the round's omission letter drops it — and updates its state.
//
// Two runners execute the same semantics: a sequential one used by
// exhaustive tests, and a channel/goroutine one in which each process is a
// CSP-style server goroutine and the round structure is enforced purely by
// communication. Tests assert trace equality between the two.
package sim

import (
	"fmt"

	"repro/internal/omission"
)

// ID names the two processes.
type ID int

const (
	// White is the process whose messages are dropped by letter 'w'.
	White ID = iota
	// Black is the process whose messages are dropped by letter 'b'.
	Black
)

// String implements fmt.Stringer.
func (id ID) String() string {
	if id == White {
		return "white"
	}
	return "black"
}

// Other returns the opposite process.
func (id ID) Other() ID { return 1 - id }

// Value is a consensus value. Binary consensus uses 0 and 1; None marks
// "not decided".
type Value int

// None is the absent value.
const None Value = -1

// Message is an algorithm-defined payload; nil means "nothing received".
type Message any

// Process is a deterministic synchronous process. The kernel drives it
// with the round structure of Section II-C: Send, then Receive, then
// (implicitly) the state update inside Receive.
//
// A process that has decided and halted must return ok=false from Send;
// the kernel then stops delivering to and from it, which is how the
// partner observes the halt (as missing messages), exactly as in the
// paper's termination argument.
type Process interface {
	// Init resets the process with its identity and input value.
	Init(id ID, input Value)
	// Send produces the round-r message (r is 1-based); ok=false means the
	// process has halted and sends nothing (now and forever).
	Send(r int) (msg Message, ok bool)
	// Receive delivers the message received in round r; nil when the
	// message was lost or the partner is silent.
	Receive(r int, msg Message)
	// Decision returns the decided value, ok=false while undecided.
	Decision() (Value, bool)
}

// Trace records one execution.
type Trace struct {
	// Inputs are the initial values.
	Inputs [2]Value
	// Played is the sequence of omission letters actually applied.
	Played omission.Word
	// Rounds is the number of rounds executed.
	Rounds int
	// Decisions holds each process's decided value (None if undecided).
	Decisions [2]Value
	// DecisionRound holds the round after which each process decided
	// (0 means decided at initialization; -1 means never).
	DecisionRound [2]int
	// TimedOut is set when maxRounds elapsed before both processes
	// decided.
	TimedOut bool
	// MessagesSent counts the messages handed to the kernel by both
	// processes; MessagesDelivered those that actually arrived (lost
	// messages and messages to/from halted processes account for the
	// difference).
	MessagesSent, MessagesDelivered int
}

// String summarizes the trace.
func (t Trace) String() string {
	return fmt.Sprintf("inputs=(%d,%d) scenario=%s rounds=%d decisions=(%d@%d, %d@%d) timedOut=%v",
		t.Inputs[0], t.Inputs[1], t.Played, t.Rounds,
		t.Decisions[0], t.DecisionRound[0], t.Decisions[1], t.DecisionRound[1], t.TimedOut)
}

// Equal reports whether two traces are identical.
func (t Trace) Equal(u Trace) bool {
	return t.Inputs == u.Inputs && t.Played.Equal(u.Played) && t.Rounds == u.Rounds &&
		t.Decisions == u.Decisions && t.DecisionRound == u.DecisionRound && t.TimedOut == u.TimedOut &&
		t.MessagesSent == u.MessagesSent && t.MessagesDelivered == u.MessagesDelivered
}

// Adversary chooses the omission letter for each round, possibly
// adaptively based on the letters played so far. (The standard omission
// adversary is oblivious to message contents; algorithms in this
// repository are deterministic, so letter history determines everything
// anyway.)
type Adversary interface {
	// Next returns the letter for round r (1-based) given the past
	// letters.
	Next(r int, past omission.Word) omission.Letter
}

// SourceAdversary plays a fixed scenario.
type SourceAdversary struct{ Src omission.Source }

// Next implements Adversary.
func (s SourceAdversary) Next(r int, _ omission.Word) omission.Letter { return s.Src.At(r - 1) }

// FuncAdversary adapts a function to the Adversary interface.
type FuncAdversary func(r int, past omission.Word) omission.Letter

// Next implements Adversary.
func (f FuncAdversary) Next(r int, past omission.Word) omission.Letter { return f(r, past) }

// Run executes the two processes under the adversary for at most
// maxRounds rounds, sequentially. Processes are Init-ed with the given
// inputs. The run stops as soon as both processes have decided (a decided
// process may keep running until its partner decides — per the Process
// contract it signals halt via Send).
func Run(white, black Process, inputs [2]Value, adv Adversary, maxRounds int) Trace {
	white.Init(White, inputs[0])
	black.Init(Black, inputs[1])
	tr := Trace{Inputs: inputs, DecisionRound: [2]int{-1, -1}}
	tr.Decisions = [2]Value{None, None}
	record := func(round int) bool {
		both := true
		for i, p := range []Process{white, black} {
			if tr.DecisionRound[i] < 0 {
				if v, ok := p.Decision(); ok {
					tr.Decisions[i] = v
					tr.DecisionRound[i] = round
				} else {
					both = false
				}
			}
		}
		return both
	}
	if record(0) {
		return tr
	}
	for r := 1; r <= maxRounds; r++ {
		letter := adv.Next(r, tr.Played)
		tr.Played = append(tr.Played, letter)
		tr.Rounds = r

		wMsg, wOK := white.Send(r)
		bMsg, bOK := black.Send(r)
		if wOK {
			tr.MessagesSent++
		}
		if bOK {
			tr.MessagesSent++
		}

		var toWhite, toBlack Message
		if bOK && !letter.LostBlack() {
			toWhite = bMsg
			if wOK {
				tr.MessagesDelivered++
			}
		}
		if wOK && !letter.LostWhite() {
			toBlack = wMsg
			if bOK {
				tr.MessagesDelivered++
			}
		}
		// A halted process no longer takes receive steps.
		if wOK {
			white.Receive(r, toWhite)
		}
		if bOK {
			black.Receive(r, toBlack)
		}
		if record(r) {
			return tr
		}
	}
	tr.TimedOut = true
	return tr
}

// RunScenario is Run with a fixed scenario source.
func RunScenario(white, black Process, inputs [2]Value, src omission.Source, maxRounds int) Trace {
	return Run(white, black, inputs, SourceAdversary{src}, maxRounds)
}

// Report is the outcome of checking the three consensus properties of
// Section II-B on a trace.
type Report struct {
	// Terminated: every process decided (uniform termination).
	Terminated bool
	// Agreement: no two processes decided differently.
	Agreement bool
	// Validity: if all inputs equal v, every decided value is v; decided
	// values are always some process's input.
	Validity bool
	// Violations lists human-readable property violations.
	Violations []string
}

// OK reports whether all three properties hold.
func (r Report) OK() bool { return r.Terminated && r.Agreement && r.Validity }

// Check verifies the consensus properties on a trace.
func Check(t Trace) Report {
	rep := Report{Terminated: true, Agreement: true, Validity: true}
	if t.TimedOut || t.DecisionRound[0] < 0 || t.DecisionRound[1] < 0 {
		rep.Terminated = false
		rep.Violations = append(rep.Violations, fmt.Sprintf("termination: decisions at rounds %v (timedOut=%v)", t.DecisionRound, t.TimedOut))
	}
	d0, d1 := t.Decisions[0], t.Decisions[1]
	if d0 != None && d1 != None && d0 != d1 {
		rep.Agreement = false
		rep.Violations = append(rep.Violations, fmt.Sprintf("agreement: white decided %d, black decided %d", d0, d1))
	}
	for i, d := range t.Decisions {
		if d == None {
			continue
		}
		if d != t.Inputs[0] && d != t.Inputs[1] {
			rep.Validity = false
			rep.Violations = append(rep.Violations, fmt.Sprintf("validity: %s decided %d, not an input of %v", ID(i), d, t.Inputs))
		}
		if t.Inputs[0] == t.Inputs[1] && d != t.Inputs[0] {
			rep.Validity = false
			rep.Violations = append(rep.Violations, fmt.Sprintf("validity: unanimous input %d but %s decided %d", t.Inputs[0], ID(i), d))
		}
	}
	return rep
}

// AllInputs enumerates the four binary input assignments.
func AllInputs() [][2]Value {
	return [][2]Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
}
