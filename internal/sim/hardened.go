package sim

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/omission"
)

// The hardened runner exists for chaos testing (internal/chaos): it
// executes the same round structure as Run but fails closed. A process
// that panics mid-round is converted into a crash-stop — its panic value
// and stack are captured as a Crash diagnostic, it stops sending and
// receiving, and only its own trace entries suffer — and the run obeys a
// context, so a non-terminating execution can never hang the caller.

// Crash records a process panic absorbed by the hardened runner and
// converted into a crash-stop.
type Crash struct {
	// Proc is the process that panicked.
	Proc ID
	// Round is the round (1-based) in which the panic occurred.
	Round int
	// Op is the process method that panicked ("Send", "Receive" or
	// "Decision").
	Op string
	// Diag is the panic value followed by the goroutine stack.
	Diag string
}

// String implements fmt.Stringer.
func (c Crash) String() string {
	return fmt.Sprintf("%s panicked in %s at round %d: %s", c.Proc, c.Op, c.Round, firstLine(c.Diag))
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// HardenedTrace couples a trace with the failures the hardened runner
// absorbed on its behalf.
type HardenedTrace struct {
	Trace
	// Crashes lists the process panics converted to crash-stops (at most
	// one per process).
	Crashes []Crash
	// Interrupted is set when the context expired before the run finished;
	// Err then carries the context error.
	Interrupted bool
	Err         error
}

// hardenedProc wraps one process with panic isolation: after the first
// panic the process is crashed — it sends nothing, receives nothing, and
// its decision is frozen.
type hardenedProc struct {
	p       Process
	id      ID
	crashed bool
}

func (h *hardenedProc) guard(round int, op string, crashes *[]Crash) {
	if p := recover(); p != nil {
		h.crashed = true
		*crashes = append(*crashes, Crash{
			Proc:  h.id,
			Round: round,
			Op:    op,
			Diag:  fmt.Sprintf("%v\n%s", p, debug.Stack()),
		})
	}
}

func (h *hardenedProc) send(r int, crashes *[]Crash) (msg Message, ok bool) {
	if h.crashed {
		return nil, false
	}
	defer h.guard(r, "Send", crashes)
	return h.p.Send(r)
}

func (h *hardenedProc) receive(r int, msg Message, crashes *[]Crash) {
	if h.crashed {
		return
	}
	defer h.guard(r, "Receive", crashes)
	h.p.Receive(r, msg)
}

func (h *hardenedProc) decision(r int, crashes *[]Crash) (Value, bool) {
	if h.crashed {
		return None, false
	}
	defer h.guard(r, "Decision", crashes)
	return h.p.Decision()
}

// RunHardened executes the two processes under the adversary with panic
// isolation and context-based cancellation. Semantics match Run exactly
// on well-behaved executions (asserted by tests); a panicking process is
// converted into a crash-stop, and an expired context stops the run at
// the next round boundary with Interrupted set.
func RunHardened(ctx context.Context, white, black Process, inputs [2]Value, adv Adversary, maxRounds int) HardenedTrace {
	ht := HardenedTrace{Trace: Trace{Inputs: inputs, DecisionRound: [2]int{-1, -1}, Decisions: [2]Value{None, None}}}
	procs := [2]*hardenedProc{{p: white, id: White}, {p: black, id: Black}}
	for i, h := range procs {
		func() {
			defer h.guard(0, "Init", &ht.Crashes)
			h.p.Init(h.id, inputs[i])
		}()
	}

	record := func(round int) bool {
		both := true
		for i, h := range procs {
			if ht.DecisionRound[i] < 0 {
				if v, ok := h.decision(round, &ht.Crashes); ok {
					ht.Decisions[i] = v
					ht.DecisionRound[i] = round
				} else {
					both = false
				}
			}
		}
		return both
	}
	if record(0) {
		return ht
	}
	for r := 1; r <= maxRounds; r++ {
		if err := ctx.Err(); err != nil {
			ht.Interrupted = true
			ht.Err = err
			ht.TimedOut = true
			return ht
		}
		letter := adv.Next(r, ht.Played)
		ht.Played = append(ht.Played, letter)
		ht.Rounds = r

		wMsg, wOK := procs[White].send(r, &ht.Crashes)
		bMsg, bOK := procs[Black].send(r, &ht.Crashes)
		if wOK {
			ht.MessagesSent++
		}
		if bOK {
			ht.MessagesSent++
		}

		var toWhite, toBlack Message
		if bOK && !letter.LostBlack() {
			toWhite = bMsg
			if wOK {
				ht.MessagesDelivered++
			}
		}
		if wOK && !letter.LostWhite() {
			toBlack = wMsg
			if bOK {
				ht.MessagesDelivered++
			}
		}
		if wOK {
			procs[White].receive(r, toWhite, &ht.Crashes)
		}
		if bOK {
			procs[Black].receive(r, toBlack, &ht.Crashes)
		}
		if record(r) {
			return ht
		}
		// Both processes crashed: nothing can ever decide; stop early.
		if procs[White].crashed && procs[Black].crashed {
			ht.TimedOut = true
			return ht
		}
	}
	ht.TimedOut = true
	return ht
}

// RunHardenedScenario is RunHardened with a fixed scenario source.
func RunHardenedScenario(ctx context.Context, white, black Process, inputs [2]Value, src omission.Source, maxRounds int) HardenedTrace {
	return RunHardened(ctx, white, black, inputs, SourceAdversary{src}, maxRounds)
}
