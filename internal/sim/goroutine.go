package sim

import "repro/internal/omission"

// The goroutine runner gives each process its own server goroutine and
// drives the synchronous rounds purely by channel communication, in the
// CSP style: the coordinator requests the round's message from both
// servers, applies the adversary's omission letter, delivers, and collects
// decision status. No shared memory is touched by more than one goroutine;
// the round barrier is the communication itself.

type sendResp struct {
	msg Message
	ok  bool
}

type recvReq struct {
	round   int
	msg     Message
	deliver bool // false when the process has halted: skip Receive
}

type recvResp struct {
	decided bool
	value   Value
}

type procServer struct {
	sendReq  chan int
	sendResp chan sendResp
	recvReq  chan recvReq
	recvResp chan recvResp
}

// serve runs the process event loop until sendReq is closed.
func serve(p Process, s *procServer) {
	for r := range s.sendReq {
		msg, ok := p.Send(r)
		s.sendResp <- sendResp{msg, ok}
		req := <-s.recvReq
		if req.deliver {
			p.Receive(req.round, req.msg)
		}
		v, decided := p.Decision()
		s.recvResp <- recvResp{decided, v}
	}
}

// RunGoroutines executes the same semantics as Run, with each process
// hosted in its own goroutine. The resulting trace is identical to the
// sequential runner's (asserted by tests): determinism comes from the
// lock-step protocol, not from scheduling.
func RunGoroutines(white, black Process, inputs [2]Value, adv Adversary, maxRounds int) Trace {
	white.Init(White, inputs[0])
	black.Init(Black, inputs[1])

	servers := [2]*procServer{}
	for i, p := range []Process{white, black} {
		s := &procServer{
			sendReq:  make(chan int),
			sendResp: make(chan sendResp),
			recvReq:  make(chan recvReq),
			recvResp: make(chan recvResp),
		}
		servers[i] = s
		go serve(p, s)
	}
	defer func() {
		close(servers[0].sendReq)
		close(servers[1].sendReq)
	}()

	tr := Trace{Inputs: inputs, DecisionRound: [2]int{-1, -1}, Decisions: [2]Value{None, None}}

	// Initial decision check (round 0) happens outside the servers: the
	// processes are not concurrently owned yet.
	both := true
	for i, p := range []Process{white, black} {
		if v, ok := p.Decision(); ok {
			tr.Decisions[i] = v
			tr.DecisionRound[i] = 0
		} else {
			both = false
		}
	}
	if both {
		return tr
	}

	for r := 1; r <= maxRounds; r++ {
		letter := adv.Next(r, tr.Played)
		tr.Played = append(tr.Played, letter)
		tr.Rounds = r

		// Phase 1: collect sends from both servers concurrently.
		servers[White].sendReq <- r
		servers[Black].sendReq <- r
		wSend := <-servers[White].sendResp
		bSend := <-servers[Black].sendResp

		if wSend.ok {
			tr.MessagesSent++
		}
		if bSend.ok {
			tr.MessagesSent++
		}

		// Phase 2: apply the omission letter and deliver.
		var toWhite, toBlack Message
		if bSend.ok && !letter.LostBlack() {
			toWhite = bSend.msg
			if wSend.ok {
				tr.MessagesDelivered++
			}
		}
		if wSend.ok && !letter.LostWhite() {
			toBlack = wSend.msg
			if bSend.ok {
				tr.MessagesDelivered++
			}
		}
		servers[White].recvReq <- recvReq{round: r, msg: toWhite, deliver: wSend.ok}
		servers[Black].recvReq <- recvReq{round: r, msg: toBlack, deliver: bSend.ok}
		wRecv := <-servers[White].recvResp
		bRecv := <-servers[Black].recvResp

		both = true
		for i, resp := range []recvResp{wRecv, bRecv} {
			if tr.DecisionRound[i] < 0 {
				if resp.decided {
					tr.Decisions[i] = resp.value
					tr.DecisionRound[i] = r
				} else {
					both = false
				}
			}
		}
		if both {
			return tr
		}
	}
	tr.TimedOut = true
	return tr
}

// RunGoroutinesScenario is RunGoroutines with a fixed scenario source.
func RunGoroutinesScenario(white, black Process, inputs [2]Value, src omission.Source, maxRounds int) Trace {
	return RunGoroutines(white, black, inputs, SourceAdversary{src}, maxRounds)
}
