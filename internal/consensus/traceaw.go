package consensus

import (
	"fmt"
	"math/big"

	"repro/internal/omission"
	"repro/internal/sim"
)

// RoundInfo captures the internal state of one A_w round for debugging
// and for the message-size experiments.
type RoundInfo struct {
	Round  int
	Letter omission.Letter
	// WitnessInd is ind(w_r) of the excluded scenario.
	WitnessInd *big.Int
	// IndWhite/IndBlack are the processes' indices after the round (nil
	// once the process halted before the round).
	IndWhite, IndBlack *big.Int
	// BitsWhite/BitsBlack are the bit lengths of the index fields the
	// processes sent this round (0 when silent) — A_w's message size
	// grows linearly: ≈ r·log₂3 bits.
	BitsWhite, BitsBlack int
	HaltedWhite          bool
	HaltedBlack          bool
}

// String implements fmt.Stringer.
func (ri RoundInfo) String() string {
	fmtInd := func(i *big.Int, halted bool) string {
		if halted || i == nil {
			return "halted"
		}
		return i.String()
	}
	return fmt.Sprintf("round %2d  letter %s  ind(w)=%s  white=%s  black=%s",
		ri.Round, ri.Letter, ri.WitnessInd, fmtInd(ri.IndWhite, ri.HaltedWhite), fmtInd(ri.IndBlack, ri.HaltedBlack))
}

// TraceAW runs A_w under a scenario, recording per-round internals.
func TraceAW(witness omission.Source, inputs [2]sim.Value, sc omission.Source, maxRounds int) (sim.Trace, []RoundInfo) {
	white, black := NewAW(witness), NewAW(witness)
	white.Init(sim.White, inputs[0])
	black.Init(sim.Black, inputs[1])
	tr := sim.Trace{Inputs: inputs, DecisionRound: [2]int{-1, -1}, Decisions: [2]sim.Value{sim.None, sim.None}}
	wInd := omission.NewIndexTracker()
	var infos []RoundInfo
	for r := 1; r <= maxRounds; r++ {
		letter := sc.At(r - 1)
		tr.Played = append(tr.Played, letter)
		tr.Rounds = r

		wMsg, wOK := white.Send(r)
		bMsg, bOK := black.Send(r)
		info := RoundInfo{Round: r, Letter: letter, HaltedWhite: !wOK, HaltedBlack: !bOK}
		if wOK {
			info.BitsWhite = wMsg.(AWMessage).Ind.BitLen()
		}
		if bOK {
			info.BitsBlack = bMsg.(AWMessage).Ind.BitLen()
		}

		if wOK {
			tr.MessagesSent++
		}
		if bOK {
			tr.MessagesSent++
		}
		var toW, toB sim.Message
		if bOK && !letter.LostBlack() {
			toW = bMsg
			if wOK {
				tr.MessagesDelivered++
			}
		}
		if wOK && !letter.LostWhite() {
			toB = wMsg
			if bOK {
				tr.MessagesDelivered++
			}
		}
		if wOK {
			white.Receive(r, toW)
		}
		if bOK {
			black.Receive(r, toB)
		}
		wInd.Step(letter)
		_ = wInd // the witness tracker inside each AW is authoritative

		info.WitnessInd = witnessIndexAt(witness, r)
		if wOK {
			info.IndWhite = white.Index()
		}
		if bOK {
			info.IndBlack = black.Index()
		}
		infos = append(infos, info)

		done := true
		for i, p := range []*AW{white, black} {
			if tr.DecisionRound[i] < 0 {
				if v, ok := p.Decision(); ok {
					tr.Decisions[i] = v
					tr.DecisionRound[i] = r
				} else {
					done = false
				}
			}
		}
		if done {
			return tr, infos
		}
	}
	tr.TimedOut = true
	return tr, infos
}

// witnessIndexAt recomputes ind(w_r) for display.
func witnessIndexAt(w omission.Source, r int) *big.Int {
	t := omission.NewIndexTracker()
	for i := 0; i < r; i++ {
		t.Step(w.At(i))
	}
	return t.Value()
}
