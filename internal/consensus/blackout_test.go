package consensus

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestAtMostKLossesRoundBound: the classic f+1 bound falls out of
// Corollary III.14 — at most k total losses ⇒ consensus in exactly k+1
// rounds, achieved by the bounded A_w.
func TestAtMostKLossesRoundBound(t *testing.T) {
	for k := 0; k <= 3; k++ {
		s := scheme.AtMostKLosses(k)
		res, err := classify.Classify(s)
		if err != nil || !res.Solvable {
			t.Fatalf("K%d: %+v %v", k, res, err)
		}
		if res.MinRounds != k+1 {
			t.Fatalf("K%d: MinRounds = %d, want k+1 = %d", k, res.MinRounds, k+1)
		}
		witness := BoundedWitness(res.MinRoundsWitness)
		worst := 0
		for _, prefix := range s.AllPrefixes(res.MinRounds) {
			sc, ok := s.ExtendToScenario(prefix)
			if !ok {
				continue
			}
			for _, inputs := range sim.AllInputs() {
				w := NewBoundedAW(witness, res.MinRounds)
				b := NewBoundedAW(witness, res.MinRounds)
				tr := sim.RunScenario(w, b, inputs, sc, res.MinRounds+3)
				if rep := sim.Check(tr); !rep.OK() {
					t.Fatalf("K%d under %s inputs %v: %v", k, sc, inputs, rep.Violations)
				}
				for _, dr := range tr.DecisionRound {
					if dr > res.MinRounds {
						t.Fatalf("K%d: decided at %d > %d", k, dr, res.MinRounds)
					}
					if dr > worst {
						worst = dr
					}
				}
			}
		}
		if worst != k+1 {
			t.Errorf("K%d: worst decision round %d, want exactly %d", k, worst, k+1)
		}
	}
}

// TestFirstCleanExchange validates the all-or-nothing-channel algorithm
// exhaustively on BlackoutBudget(k): all prefixes of {., x} words with
// ≤ k blackouts, decisions by round k+1, min decided.
func TestFirstCleanExchange(t *testing.T) {
	for k := 0; k <= 4; k++ {
		s := scheme.BlackoutBudget(k)
		for _, prefix := range s.AllPrefixes(k + 1) {
			sc, ok := s.ExtendToScenario(prefix)
			if !ok {
				continue
			}
			for _, inputs := range sim.AllInputs() {
				w := &FirstCleanExchange{Deadline: k + 1}
				b := &FirstCleanExchange{Deadline: k + 1}
				tr := sim.RunScenario(w, b, inputs, sc, k+3)
				rep := sim.Check(tr)
				if !rep.OK() {
					t.Fatalf("BX%d under %s inputs %v: %v", k, sc, inputs, rep.Violations)
				}
				min := inputs[0]
				if inputs[1] < min {
					min = inputs[1]
				}
				if tr.Decisions[0] != min {
					t.Fatalf("BX%d: decided %v, want min %d", k, tr.Decisions, min)
				}
				for _, dr := range tr.DecisionRound {
					if dr > k+1 {
						t.Fatalf("BX%d: decided at round %d > k+1", k, dr)
					}
				}
			}
		}
	}
}

// TestFirstCleanExchangeWorstCase: the all-blackout prefix forces exactly
// k+1 rounds.
func TestFirstCleanExchangeWorstCase(t *testing.T) {
	const k = 3
	sc := omission.UPWord(omission.Uniform(omission.LossBoth, k), omission.MustWord("."))
	w := &FirstCleanExchange{Deadline: k + 1}
	b := &FirstCleanExchange{Deadline: k + 1}
	tr := sim.RunScenario(w, b, [2]sim.Value{1, 0}, sc, k+3)
	if tr.Rounds != k+1 || tr.Decisions[0] != 0 {
		t.Fatalf("worst case: %s", tr)
	}
}

// TestFirstCleanExchangeBrokenPromise documents the deadline fallback:
// outside the scheme (more blackouts than promised) the processes fall
// back to their own values — termination holds, agreement need not.
func TestFirstCleanExchangeBrokenPromise(t *testing.T) {
	sc := omission.Constant(omission.LossBoth)
	w := &FirstCleanExchange{Deadline: 2}
	b := &FirstCleanExchange{Deadline: 2}
	tr := sim.RunScenario(w, b, [2]sim.Value{0, 1}, sc, 5)
	if tr.TimedOut {
		t.Fatal("deadline must force termination")
	}
	if sim.Check(tr).Agreement {
		t.Log("agreement held by luck of equal fallback values")
	}
	if tr.Decisions[0] != 0 || tr.Decisions[1] != 1 {
		t.Fatalf("fallback decisions: %v", tr.Decisions)
	}
	// Without a deadline the processes simply never decide.
	w2, b2 := &FirstCleanExchange{}, &FirstCleanExchange{}
	tr = sim.RunScenario(w2, b2, [2]sim.Value{0, 1}, sc, 5)
	if !tr.TimedOut {
		t.Fatal("no deadline, no decision under eternal blackout")
	}
}

// TestFirstCleanExchangeUnboundedBlackouts: without a deadline, the
// clean-exchange algorithm solves the *unbudgeted* all-or-nothing channel
// restricted to eventually-good scenarios ({., x} letters with infinitely
// many '.'): a reception stays common knowledge no matter how many
// blackouts precede it.
func TestFirstCleanExchangeUnboundedBlackouts(t *testing.T) {
	for _, pre := range []string{"", "x", "xx", "xxxxx", "x.x"} {
		prefix := omission.MustWord(pre)
		sc := omission.UPWord(prefix, omission.MustWord("x."))
		for _, inputs := range sim.AllInputs() {
			w, b := &FirstCleanExchange{}, &FirstCleanExchange{}
			tr := sim.RunScenario(w, b, inputs, sc, len(prefix)+6)
			if rep := sim.Check(tr); !rep.OK() {
				t.Fatalf("under %s inputs %v: %v", sc, inputs, rep.Violations)
			}
		}
	}
}

// TestFirstCleanExchangeUnsoundOnSingleOmissions documents why the
// algorithm is specific to the all-or-nothing channel: a 'w' round
// delivers to one side only, the receiver halts believing the exchange
// was mutual, and its partner starves (termination breaks; with a
// deadline it would be agreement instead).
func TestFirstCleanExchangeUnsoundOnSingleOmissions(t *testing.T) {
	w, b := &FirstCleanExchange{}, &FirstCleanExchange{}
	tr := sim.RunScenario(w, b, [2]sim.Value{0, 0}, omission.MustScenario("w(.)"), 8)
	rep := sim.Check(tr)
	if rep.OK() {
		t.Fatal("expected a violation on a single-omission scheme")
	}
	if rep.Terminated {
		t.Fatalf("expected the starved partner to miss termination: %s", tr)
	}
}
