// Package consensus implements the two-process consensus algorithms of
// Fevat & Godard: the generic algorithm A_w of Section III-D parameterized
// by an excluded scenario w ∉ L, its exact-round-optimal bounded variant
// (Proposition III.15), the folklore "intuitive" algorithm for the
// almost-fair scheme (Corollary IV.1), and simple one-round baselines for
// the trivially solvable environments.
//
// A_w in this repository's convention (δ(b) = −1, δ(.) = 0, δ(w) = +1;
// white starts with index 0, black with 1):
//
//	each round: send (init, ind); receive msg;
//	  if msg = null: ind ← 3·ind
//	  else:          ind ← 2·msg.ind + ind, initOther ← msg.init
//	run while |ind − ind(w_r)| ≤ 1;
//	on halt: white decides init if ind ≤ ind(w_r), else initOther;
//	         black decides init if ind > ind(w_r), else initOther.
//
// The invariant of Proposition III.12 (checked by tests at every round):
// |ind_white − ind_black| = 1, sign(ind_black − ind_white) = (−1)^ind(v),
// and ind(v) = min(ind_white, ind_black) for the actually-played prefix v.
package consensus

import (
	"fmt"
	"math/big"

	"repro/internal/omission"
	"repro/internal/sim"
)

// AWMessage is the message type of Algorithm 1: the sender's initial value
// and current index.
type AWMessage struct {
	Init sim.Value
	Ind  *big.Int
}

// AW is the generic consensus algorithm A_w. The zero value is unusable;
// construct with NewAW or NewBoundedAW. AW implements sim.Process.
type AW struct {
	excluded omission.Source
	// forcedRound, when positive, additionally halts the algorithm at that
	// round (Proposition III.15; requires the excluded scenario's prefix
	// of that length to be outside Pref(L)).
	forcedRound int

	id        sim.ID
	init      sim.Value
	initOther sim.Value
	ind       *big.Int
	w         *omission.IndexTracker
	halted    bool
	decision  sim.Value
	two       *big.Int // scratch
}

// NewAW builds A_w for the excluded scenario w (which must lie outside the
// scheme the algorithm will face, and be a valid witness per Theorem
// III.8: fair, a constant w^ω/b^ω, or half of a fully-excluded special
// pair).
func NewAW(excluded omission.Source) *AW {
	return &AW{excluded: excluded}
}

// NewBoundedAW builds the Proposition III.15 variant that always halts by
// round p: valid when the length-p prefix w0 of the excluded scenario
// satisfies w0 ∉ Pref(L).
func NewBoundedAW(excluded omission.Source, p int) *AW {
	if p < 1 {
		panic("consensus: bounded A_w needs p ≥ 1")
	}
	return &AW{excluded: excluded, forcedRound: p}
}

// Init implements sim.Process.
func (a *AW) Init(id sim.ID, input sim.Value) {
	a.id = id
	a.init = input
	a.initOther = sim.None
	a.ind = big.NewInt(int64(id)) // white: 0, black: 1
	a.w = omission.NewIndexTracker()
	a.halted = false
	a.decision = sim.None
	a.two = big.NewInt(2)
}

// Send implements sim.Process.
func (a *AW) Send(r int) (sim.Message, bool) {
	if a.halted {
		return nil, false
	}
	return AWMessage{Init: a.init, Ind: new(big.Int).Set(a.ind)}, true
}

// Receive implements sim.Process. It panics on a foreign message or a
// double-omission letter in the excluded scenario; ReceiveChecked is the
// error-returning variant for hardened runners.
func (a *AW) Receive(r int, msg sim.Message) {
	if err := a.ReceiveChecked(r, msg); err != nil {
		panic(err.Error())
	}
}

// ReceiveChecked is the error-returning receive/update step of A_w: it
// reports (instead of panicking on) a foreign message type or an excluded
// scenario that leaves Γ. On error the process is left halted without a
// decision, so a hardened runner observes a cleanly crashed process.
func (a *AW) ReceiveChecked(r int, msg sim.Message) error {
	if a.halted {
		return nil
	}
	// Advance the excluded scenario's index to ind(w_r).
	if _, err := a.w.StepChecked(a.excluded.At(r - 1)); err != nil {
		a.halted = true
		return fmt.Errorf("consensus: A_w excluded scenario invalid: %w", err)
	}

	if msg == nil {
		a.ind.Mul(a.ind, big.NewInt(3))
	} else {
		m, ok := msg.(AWMessage)
		if !ok {
			a.halted = true
			return fmt.Errorf("consensus: A_w received foreign message %T", msg)
		}
		a.initOther = m.Init
		// ind ← 2·m.Ind + ind
		t := new(big.Int).Mul(a.two, m.Ind)
		a.ind.Add(t, a.ind)
	}

	diff := new(big.Int).Sub(a.ind, a.w.Peek())
	far := diff.CmpAbs(a.two) >= 0
	if far || (a.forcedRound > 0 && r >= a.forcedRound) {
		a.halted = true
		below := a.ind.Cmp(a.w.Peek()) <= 0
		if (a.id == sim.White) == below {
			a.decision = a.init
		} else {
			a.decision = a.initOther
		}
	}
	return nil
}

// Decision implements sim.Process.
func (a *AW) Decision() (sim.Value, bool) {
	if a.decision == sim.None {
		return sim.None, false
	}
	return a.decision, true
}

// Index returns a copy of the process's current index (exposed for the
// Proposition III.12 invariant checks).
func (a *AW) Index() *big.Int { return new(big.Int).Set(a.ind) }

// Halted reports whether the process has stopped.
func (a *AW) Halted() bool { return a.halted }
