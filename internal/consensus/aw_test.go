package consensus

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

func msc(s string) omission.Scenario { return omission.MustScenario(s) }

// runChecked drives two A_w processes under a scenario with the paper's
// Proposition III.12 invariant verified after every round in which neither
// process has halted:
//
//	|ind_W − ind_B| = 1,
//	sign(ind_B − ind_W) = (−1)^ind(v),
//	ind(v) = min(ind_W, ind_B).
func runChecked(t *testing.T, witness omission.Source, inputs [2]sim.Value, sc omission.Source, maxRounds int) sim.Trace {
	t.Helper()
	white, black := NewAW(witness), NewAW(witness)
	white.Init(sim.White, inputs[0])
	black.Init(sim.Black, inputs[1])
	tr := sim.Trace{Inputs: inputs, DecisionRound: [2]int{-1, -1}, Decisions: [2]sim.Value{sim.None, sim.None}}
	vInd := omission.NewIndexTracker()
	for r := 1; r <= maxRounds; r++ {
		letter := sc.At(r - 1)
		tr.Played = append(tr.Played, letter)
		tr.Rounds = r
		wMsg, wOK := white.Send(r)
		bMsg, bOK := black.Send(r)
		var toWhite, toBlack sim.Message
		if bOK && !letter.LostBlack() {
			toWhite = bMsg
		}
		if wOK && !letter.LostWhite() {
			toBlack = wMsg
		}
		if wOK {
			white.Receive(r, toWhite)
		}
		if bOK {
			black.Receive(r, toBlack)
		}
		vInd.Step(letter)

		if !white.Halted() && !black.Halted() {
			iw, ib := white.Index(), black.Index()
			diff := new(big.Int).Sub(ib, iw)
			if diff.CmpAbs(big.NewInt(1)) != 0 {
				t.Fatalf("round %d of %v: |ind_B−ind_W| = %v, want 1", r, tr.Played, diff)
			}
			wantSign := 1
			if vInd.Parity() == 1 {
				wantSign = -1
			}
			if diff.Sign() != wantSign {
				t.Fatalf("round %d of %v: sign(ind_B−ind_W)=%d, want (−1)^ind(v)=%d", r, tr.Played, diff.Sign(), wantSign)
			}
			minInd := iw
			if ib.Cmp(iw) < 0 {
				minInd = ib
			}
			if minInd.Cmp(vInd.Peek()) != 0 {
				t.Fatalf("round %d of %v: min(ind)=%v, ind(v)=%v", r, tr.Played, minInd, vInd.Peek())
			}
		}

		done := true
		for i, p := range []*AW{white, black} {
			if tr.DecisionRound[i] < 0 {
				if v, ok := p.Decision(); ok {
					tr.Decisions[i] = v
					tr.DecisionRound[i] = r
				} else {
					done = false
				}
			}
		}
		if done {
			return tr
		}
	}
	tr.TimedOut = true
	return tr
}

// TestAWOnSolvableSchemes validates A_w across every solvable named
// scheme, using the classifier's witness, over sampled member scenarios
// and all four input assignments, with the Proposition III.12 invariant
// checked round by round.
func TestAWOnSolvableSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	schemes := []*scheme.Scheme{
		scheme.S0(), scheme.TWhite(), scheme.TBlack(), scheme.C1(), scheme.S1(),
		scheme.Fair(), scheme.AlmostFair(),
		scheme.Minus("R1-dot", scheme.R1(), msc("(.)")),
		scheme.Minus("R1-pair", scheme.R1(), msc("w(b)"), msc(".(b)")),
	}
	for _, s := range schemes {
		res, err := classify.Classify(s)
		if err != nil || !res.Solvable {
			t.Fatalf("%s: classification failed (%v, %+v)", s.Name(), err, res)
		}
		for trial := 0; trial < 25; trial++ {
			sc, ok := s.SampleScenario(rng, rng.Intn(7))
			if !ok {
				t.Fatalf("%s: sampling failed", s.Name())
			}
			for _, inputs := range sim.AllInputs() {
				tr := runChecked(t, res.Witness, inputs, sc, 400)
				if rep := sim.Check(tr); !rep.OK() {
					t.Fatalf("%s under %s: %v (%s)", s.Name(), sc, rep.Violations, tr)
				}
			}
		}
	}
}

// TestAWExhaustiveAlmostFair runs A_{b^ω} on every Γ^r word (r ≤ 7) padded
// with (.)^ω — all members of the almost-fair scheme — exhaustively.
func TestAWExhaustiveAlmostFair(t *testing.T) {
	witness := msc("(b)")
	for r := 0; r <= 7; r++ {
		for _, w := range omission.AllWords(omission.Gamma, r) {
			sc := omission.UPWord(w, omission.MustWord("."))
			for _, inputs := range [][2]sim.Value{{0, 1}, {1, 1}} {
				tr := runChecked(t, witness, inputs, sc, r+40)
				if rep := sim.Check(tr); !rep.OK() {
					t.Fatalf("A_b^ω failed under %s inputs %v: %v", sc, inputs, rep.Violations)
				}
			}
		}
	}
}

// TestAWDoesNotTerminateOnExcludedScenario: running A_w under w itself
// must never decide (that scenario is excluded from the scheme, so this
// is not a violation — it is the reason w must lie outside L).
func TestAWDoesNotTerminateOnExcludedScenario(t *testing.T) {
	for _, w := range []string{"(b)", "(w)", "(wb)", "w(b)"} {
		witness := msc(w)
		white, black := NewAW(witness), NewAW(witness)
		tr := sim.RunScenario(white, black, [2]sim.Value{0, 1}, witness, 120)
		if !tr.TimedOut {
			t.Errorf("A_%s decided under its own excluded scenario: %s", w, tr)
		}
	}
}

// TestIntuitiveEqualsAW asserts Corollary IV.1 operationally: the folklore
// intuitive algorithm and A_{b^ω} produce identical traces on every
// almost-fair scenario (exhaustive prefixes r ≤ 6 plus random samples).
func TestIntuitiveEqualsAW(t *testing.T) {
	witness := msc("(b)")
	check := func(sc omission.Scenario) {
		t.Helper()
		for _, inputs := range sim.AllInputs() {
			a := sim.RunScenario(NewAW(witness), NewAW(witness), inputs, sc, 200)
			b := sim.RunScenario(&Intuitive{}, &Intuitive{}, inputs, sc, 200)
			// Messages differ, so compare the observable outcome rather
			// than raw traces: decisions, decision rounds, rounds.
			if a.Decisions != b.Decisions || a.DecisionRound != b.DecisionRound || a.Rounds != b.Rounds || a.TimedOut != b.TimedOut {
				t.Fatalf("divergence under %s inputs %v:\n  A_w:       %s\n  intuitive: %s", sc, inputs, a, b)
			}
			if !sim.Check(a).OK() {
				t.Fatalf("A_b^ω failed under %s: %s", sc, a)
			}
		}
	}
	for r := 0; r <= 6; r++ {
		for _, w := range omission.AllWords(omission.Gamma, r) {
			check(omission.UPWord(w, omission.MustWord(".")))
		}
	}
	rng := rand.New(rand.NewSource(5))
	af := scheme.AlmostFair()
	for i := 0; i < 50; i++ {
		sc, ok := af.SampleScenario(rng, rng.Intn(10))
		if !ok {
			t.Fatal("sampling failed")
		}
		check(sc)
	}
}

// TestBoundedAWOptimalRounds verifies Proposition III.15: with the
// Corollary III.14 witness w0, the bounded algorithm solves the scheme in
// exactly p rounds — never more, and some scenario needs exactly p.
func TestBoundedAWOptimalRounds(t *testing.T) {
	cases := []struct {
		s *scheme.Scheme
		p int
	}{
		{scheme.S0(), 1},
		{scheme.TWhite(), 1},
		{scheme.TBlack(), 1},
		{scheme.C1(), 2},
		{scheme.S1(), 2},
	}
	for _, c := range cases {
		res, err := classify.Classify(c.s)
		if err != nil {
			t.Fatal(err)
		}
		if res.MinRounds != c.p {
			t.Fatalf("%s: MinRounds=%d want %d", c.s.Name(), res.MinRounds, c.p)
		}
		witness := BoundedWitness(res.MinRoundsWitness)
		maxRound := 0
		for _, prefix := range c.s.AllPrefixes(c.p) {
			sc, ok := c.s.ExtendToScenario(prefix)
			if !ok {
				t.Fatalf("%s: prefix %v does not extend", c.s.Name(), prefix)
			}
			for _, inputs := range sim.AllInputs() {
				white := NewBoundedAW(witness, c.p)
				black := NewBoundedAW(witness, c.p)
				tr := sim.RunScenario(white, black, inputs, sc, c.p+5)
				if rep := sim.Check(tr); !rep.OK() {
					t.Fatalf("%s under %s inputs %v: %v", c.s.Name(), sc, inputs, rep.Violations)
				}
				for _, dr := range tr.DecisionRound {
					if dr > c.p {
						t.Fatalf("%s: decision at round %d > p=%d under %s", c.s.Name(), dr, c.p, sc)
					}
					if dr > maxRound {
						maxRound = dr
					}
				}
			}
		}
		if maxRound != c.p {
			t.Errorf("%s: worst observed decision round %d, want exactly p=%d", c.s.Name(), maxRound, c.p)
		}
	}
}

// TestWorstCaseAdversaryForcesUnboundedRounds: on the almost-fair scheme
// the adversary tracking (b)^ω keeps A_{b^ω} running arbitrarily long —
// the scheme has no bounded-round algorithm (MinRounds = Unbounded).
func TestWorstCaseAdversaryForcesUnboundedRounds(t *testing.T) {
	af := scheme.AlmostFair()
	for _, k := range []int{1, 3, 6, 10} {
		// Play b^k then deviate: decision cannot come before round k.
		sc := omission.UPWord(omission.Uniform(omission.LossBlack, k), omission.MustWord("."))
		white, black := NewAW(msc("(b)")), NewAW(msc("(b)"))
		tr := sim.RunScenario(white, black, [2]sim.Value{0, 1}, sc, k+40)
		if !sim.Check(tr).OK() {
			t.Fatalf("failed under %s: %s", sc, tr)
		}
		if tr.Rounds <= k {
			t.Errorf("k=%d: decided at round %d, expected > k", k, tr.Rounds)
		}
	}
	// The generic worst-case adversary should do at least as well as the
	// hand-rolled one: no decision within 30 rounds.
	adv := WorstCaseAdversary(af, msc("(b)"))
	white, black := NewAW(msc("(b)")), NewAW(msc("(b)"))
	tr := sim.Run(white, black, [2]sim.Value{0, 1}, adv, 30)
	if !tr.TimedOut {
		// The adversary must avoid (b)^ω eventually? No: (b)^ω ∉ AlmostFair,
		// but every finite prefix b^k is in Pref(AlmostFair), so the
		// adversary can track it forever.
		t.Errorf("worst-case adversary let A_w decide at %d rounds: %s", tr.Rounds, tr)
	}
}

// TestSimpleAlgorithms checks the dedicated one-round baselines on their
// environments, exhaustively over the schemes' one-round prefixes.
func TestSimpleAlgorithms(t *testing.T) {
	t.Run("MinOnce-S0", func(t *testing.T) {
		for _, inputs := range sim.AllInputs() {
			tr := sim.RunScenario(&MinOnce{}, &MinOnce{}, inputs, omission.Constant(omission.None), 3)
			rep := sim.Check(tr)
			if !rep.OK() || tr.Rounds != 1 {
				t.Fatalf("MinOnce inputs %v: %s %v", inputs, tr, rep.Violations)
			}
			want := inputs[0]
			if inputs[1] < want {
				want = inputs[1]
			}
			if tr.Decisions[0] != want {
				t.Fatalf("MinOnce decided %v, want min %d", tr.Decisions, want)
			}
		}
	})
	t.Run("AdoptFrom-TW", func(t *testing.T) {
		// TW: White's messages may be lost, Black's always arrive ⇒ adopt
		// from Black.
		for _, letter := range []omission.Letter{omission.None, omission.LossWhite} {
			for _, inputs := range sim.AllInputs() {
				w := &AdoptFrom{Source: sim.Black}
				b := &AdoptFrom{Source: sim.Black}
				tr := sim.RunScenario(w, b, inputs, omission.WordSource(omission.Word{letter}), 3)
				rep := sim.Check(tr)
				if !rep.OK() || tr.Rounds != 1 || tr.Decisions[0] != inputs[1] {
					t.Fatalf("AdoptFrom(Black) letter %v inputs %v: %s %v", letter, inputs, tr, rep.Violations)
				}
			}
		}
	})
	t.Run("AdoptFrom-TB", func(t *testing.T) {
		for _, letter := range []omission.Letter{omission.None, omission.LossBlack} {
			for _, inputs := range sim.AllInputs() {
				w := &AdoptFrom{Source: sim.White}
				b := &AdoptFrom{Source: sim.White}
				tr := sim.RunScenario(w, b, inputs, omission.WordSource(omission.Word{letter}), 3)
				if !sim.Check(tr).OK() || tr.Decisions[1] != inputs[0] {
					t.Fatalf("AdoptFrom(White) letter %v inputs %v: %s", letter, inputs, tr)
				}
			}
		}
	})
	t.Run("BrokenPromise", func(t *testing.T) {
		// Outside its scheme the baseline stays undecided rather than
		// deciding wrongly.
		w := &AdoptFrom{Source: sim.Black}
		b := &AdoptFrom{Source: sim.Black}
		tr := sim.RunScenario(w, b, [2]sim.Value{0, 1}, omission.Constant(omission.LossBlack), 2)
		if tr.Decisions[0] != sim.None {
			t.Error("white must not decide without the promised message")
		}
		m1, m2 := &MinOnce{}, &MinOnce{}
		tr = sim.RunScenario(m1, m2, [2]sim.Value{0, 1}, omission.Constant(omission.LossBoth), 2)
		if !tr.TimedOut {
			t.Error("MinOnce must not decide under total loss")
		}
	})
}

func TestAWPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBoundedAW(p<1) must panic")
		}
	}()
	NewBoundedAW(msc("(b)"), 0)
}

func TestAWForeignMessagePanics(t *testing.T) {
	a := NewAW(msc("(b)"))
	a.Init(sim.White, 0)
	defer func() {
		if recover() == nil {
			t.Error("foreign message must panic")
		}
	}()
	a.Receive(1, "bogus")
}

func TestForScheme(t *testing.T) {
	w, b := ForScheme(msc("(wb)"), 2)
	if w.(*AW).forcedRound != 2 || b.(*AW).forcedRound != 2 {
		t.Error("bounded construction expected")
	}
	w, _ = ForScheme(msc("(wb)"), classify.Unbounded)
	if w.(*AW).forcedRound != 0 {
		t.Error("unbounded construction expected")
	}
}

// TestDecisionRulePinned pins concrete micro-traces of A_{b^ω} that were
// hand-derived from the algorithm (guards against accidental sign flips).
func TestDecisionRulePinned(t *testing.T) {
	// Scenario (.)^ω, inputs (0,1): round 1 white receives black's
	// (init=1, ind=1): ind_W = 2·1+0 = 2, |2−0| ≥ 2, above ⇒ initOther=1.
	// Round 2 black receives nothing (white halted): ind_B = 3, above ⇒
	// init = 1.
	tr := sim.RunScenario(NewAW(msc("(b)")), NewAW(msc("(b)")), [2]sim.Value{0, 1}, msc("(.)"), 10)
	want := sim.Trace{
		Inputs:            [2]sim.Value{0, 1},
		Played:            omission.MustWord(".."),
		Rounds:            2,
		Decisions:         [2]sim.Value{1, 1},
		DecisionRound:     [2]int{1, 2},
		MessagesSent:      3, // round 1: both; round 2: black only (white halted)
		MessagesDelivered: 2, // round 2's message has no live receiver
	}
	if !tr.Equal(want) {
		t.Errorf("pinned trace mismatch:\n got %s\nwant %s", tr, want)
	}
	// Under (w)^ω-tracking witness, scenario ww..: decide init_W at both.
	tr = sim.RunScenario(NewAW(msc("(w)")), NewAW(msc("(w)")), [2]sim.Value{0, 1}, msc("ww(.)"), 10)
	if tr.Decisions != [2]sim.Value{0, 0} {
		t.Errorf("ww(.) under A_w^ω: decisions %v, want (0,0)", tr.Decisions)
	}
	if !sim.Check(tr).OK() {
		t.Error("pinned run must satisfy consensus")
	}
}
