package consensus

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestTraceAWMatchesKernel: the instrumented runner must produce exactly
// the kernel's trace, with internally consistent round infos.
func TestTraceAWMatchesKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	af := scheme.AlmostFair()
	witness := omission.MustScenario("(b)")
	for trial := 0; trial < 40; trial++ {
		sc, ok := af.SampleScenario(rng, rng.Intn(8))
		if !ok {
			t.Fatal("sample")
		}
		for _, inputs := range sim.AllInputs() {
			plain := sim.RunScenario(NewAW(witness), NewAW(witness), inputs, sc, 200)
			traced, infos := TraceAW(witness, inputs, sc, 200)
			if !plain.Equal(traced) {
				t.Fatalf("traced run diverged:\n plain: %s\ntraced: %s", plain, traced)
			}
			if len(infos) != traced.Rounds {
				t.Fatalf("%d infos for %d rounds", len(infos), traced.Rounds)
			}
			for i, ri := range infos {
				if ri.Round != i+1 {
					t.Fatalf("round numbering: %v", ri)
				}
				if ri.Letter != sc.At(i) {
					t.Fatalf("letter mismatch at %d", i)
				}
				if ri.String() == "" || !strings.Contains(ri.String(), "ind(w)=") {
					t.Fatalf("bad info string %q", ri.String())
				}
				// Witness index must match an independent computation.
				want := omission.Index(omissionPrefix(witness, ri.Round))
				if ri.WitnessInd.Cmp(want) != 0 {
					t.Fatalf("witness index at round %d: %v vs %v", ri.Round, ri.WitnessInd, want)
				}
				// A silent process has no index/bits recorded.
				if ri.HaltedWhite && (ri.IndWhite != nil || ri.BitsWhite != 0) {
					t.Fatalf("halted white has state: %v", ri)
				}
				if ri.HaltedBlack && (ri.IndBlack != nil || ri.BitsBlack != 0) {
					t.Fatalf("halted black has state: %v", ri)
				}
			}
		}
	}
}

func omissionPrefix(src omission.Source, n int) omission.Word {
	w := make(omission.Word, n)
	for i := range w {
		w[i] = src.At(i)
	}
	return w
}

// TestTraceAWTimeout covers the non-terminating path.
func TestTraceAWTimeout(t *testing.T) {
	witness := omission.MustScenario("(b)")
	tr, infos := TraceAW(witness, [2]sim.Value{0, 1}, witness, 15)
	if !tr.TimedOut || len(infos) != 15 {
		t.Fatalf("timeout trace: %s (%d infos)", tr, len(infos))
	}
	// Under the excluded scenario neither process halts.
	for _, ri := range infos {
		if ri.HaltedWhite || ri.HaltedBlack {
			t.Fatalf("halt under the excluded scenario: %v", ri)
		}
	}
	// And the String of a halted line renders "halted".
	last := infos[len(infos)-1]
	last.HaltedWhite = true
	last.IndWhite = nil
	if !strings.Contains(last.String(), "halted") {
		t.Error("halted rendering")
	}
}

// TestAWMultivaluedInputs: nothing in A_w is binary-specific — with
// arbitrary integer inputs it still satisfies termination, agreement and
// (input-subset) validity.
func TestAWMultivaluedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	af := scheme.AlmostFair()
	witness := omission.MustScenario("(b)")
	for trial := 0; trial < 60; trial++ {
		sc, ok := af.SampleScenario(rng, rng.Intn(8))
		if !ok {
			t.Fatal("sample")
		}
		inputs := [2]sim.Value{sim.Value(rng.Intn(1000)), sim.Value(rng.Intn(1000))}
		tr := sim.RunScenario(NewAW(witness), NewAW(witness), inputs, sc, 300)
		if rep := sim.Check(tr); !rep.OK() {
			t.Fatalf("multivalued run failed under %s: %v", sc, rep.Violations)
		}
	}
}
