package consensus

import (
	"math/big"

	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// absDiffClamped returns |a − b| clamped into an int64.
func absDiffClamped(a, b *omission.IndexTracker) int64 {
	d := new(big.Int).Sub(a.Peek(), b.Peek())
	d.Abs(d)
	if !d.IsInt64() {
		return 1 << 62
	}
	return d.Int64()
}

// Intuitive is the folklore algorithm of Corollary IV.1 for the
// almost-fair scheme F̃ = Γ^ω \ {(b)^ω}:
//
//	White sends its initial value until it receives a message from Black;
//	then it halts, outputting Black's initial value.
//	Black sends its initial value until it receives no message from White;
//	then it halts, outputting its own initial value.
//
// The paper shows this is exactly A_{b^ω}; tests assert trace equality.
type Intuitive struct {
	id       sim.ID
	init     sim.Value
	decision sim.Value
}

// Init implements sim.Process.
func (p *Intuitive) Init(id sim.ID, input sim.Value) {
	p.id = id
	p.init = input
	p.decision = sim.None
}

// Send implements sim.Process.
func (p *Intuitive) Send(r int) (sim.Message, bool) {
	if p.decision != sim.None {
		return nil, false
	}
	return p.init, true
}

// Receive implements sim.Process.
func (p *Intuitive) Receive(r int, msg sim.Message) {
	switch p.id {
	case sim.White:
		if msg != nil {
			p.decision = msg.(sim.Value) // adopt Black's value
		}
	case sim.Black:
		if msg == nil {
			p.decision = p.init // keep own value
		}
	}
}

// Decision implements sim.Process.
func (p *Intuitive) Decision() (sim.Value, bool) {
	if p.decision == sim.None {
		return sim.None, false
	}
	return p.decision, true
}

// AdoptFrom is the one-round algorithm for the environments where one
// process's messages are never lost (TW: Black's always arrive at White...
// more precisely, source's messages always arrive at the other process):
// everyone decides source's initial value after round 1. It solves TWhite
// with source=Black (letter 'w' only drops White's messages) and TBlack
// with source=White.
type AdoptFrom struct {
	Source sim.ID

	id       sim.ID
	init     sim.Value
	decision sim.Value
}

// Init implements sim.Process.
func (p *AdoptFrom) Init(id sim.ID, input sim.Value) {
	p.id = id
	p.init = input
	p.decision = sim.None
}

// Send implements sim.Process.
func (p *AdoptFrom) Send(r int) (sim.Message, bool) {
	if p.decision != sim.None {
		return nil, false
	}
	return p.init, true
}

// Receive implements sim.Process.
func (p *AdoptFrom) Receive(r int, msg sim.Message) {
	if p.id == p.Source {
		p.decision = p.init
		return
	}
	if msg != nil {
		p.decision = msg.(sim.Value)
	}
	// If the message was lost the scheme promise is broken; stay undecided
	// so the property checker reports non-termination rather than a wrong
	// value.
}

// Decision implements sim.Process.
func (p *AdoptFrom) Decision() (sim.Value, bool) {
	if p.decision == sim.None {
		return sim.None, false
	}
	return p.decision, true
}

// MinOnce is the one-round algorithm for S0 (no losses): exchange values
// and decide the minimum.
type MinOnce struct {
	init     sim.Value
	decision sim.Value
}

// Init implements sim.Process.
func (p *MinOnce) Init(_ sim.ID, input sim.Value) {
	p.init = input
	p.decision = sim.None
}

// Send implements sim.Process.
func (p *MinOnce) Send(r int) (sim.Message, bool) {
	if p.decision != sim.None {
		return nil, false
	}
	return p.init, true
}

// Receive implements sim.Process.
func (p *MinOnce) Receive(r int, msg sim.Message) {
	if msg == nil {
		return // scheme promise broken; remain undecided
	}
	other := msg.(sim.Value)
	if other < p.init {
		p.decision = other
	} else {
		p.decision = p.init
	}
}

// Decision implements sim.Process.
func (p *MinOnce) Decision() (sim.Value, bool) {
	if p.decision == sim.None {
		return sim.None, false
	}
	return p.decision, true
}

// ForScheme constructs the pair of A_w processes appropriate for a scheme,
// from a Theorem III.8 witness scenario, using the bounded variant when
// the scheme admits a finite round bound p (Proposition III.15: the bound
// requires a length-p word outside Pref(L); the witness passed in must
// then extend that word — see BoundedWitness).
func ForScheme(witness omission.Source, minRounds int) (white, black sim.Process) {
	if minRounds > 0 {
		return NewBoundedAW(witness, minRounds), NewBoundedAW(witness, minRounds)
	}
	return NewAW(witness), NewAW(witness)
}

// BoundedWitness turns a Corollary III.14 witness word w0 ∈ Γ^p \ Pref(L)
// into the excluded scenario w0·(.)^ω used by the Proposition III.15
// algorithm.
func BoundedWitness(w0 omission.Word) omission.Scenario {
	return omission.UPWord(w0, omission.Word{omission.None})
}

// WorstCaseAdversary plays, at every round, a letter that keeps the run's
// index as close as possible to the excluded scenario's index while
// staying inside the scheme's prefix language — the strategy that
// maximizes A_w's running time. Ties prefer following the excluded
// scenario's own letter.
func WorstCaseAdversary(l *scheme.Scheme, excluded omission.Source) sim.Adversary {
	oracle := l.NewPrefixOracle()
	vInd := omission.NewIndexTracker()
	wInd := omission.NewIndexTracker()
	return sim.FuncAdversary(func(r int, _ omission.Word) omission.Letter {
		wLetter := excluded.At(r - 1)
		wInd.Step(wLetter)
		type cand struct {
			letter omission.Letter
			diff   int64 // |ind(v·a) − ind(w_r)| clamped
		}
		best := cand{letter: omission.None, diff: 1 << 62}
		found := false
		for _, a := range omission.Gamma {
			if !oracle.CanStep(a) {
				continue
			}
			t := vInd.Clone()
			t.Step(a)
			d := absDiffClamped(t, wInd)
			better := !found || d < best.diff || (d == best.diff && a == wLetter)
			if better {
				best = cand{letter: a, diff: d}
				found = true
			}
		}
		if !found {
			// Scheme prefix exhausted (finite schemes): play the excluded
			// letter; the simulation will have decided already.
			best.letter = wLetter
		}
		oracle.Step(best.letter)
		vInd.Step(best.letter)
		return best.letter
	})
}
