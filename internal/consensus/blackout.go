package consensus

import (
	"repro/internal/sim"
)

// FirstCleanExchange solves consensus on the all-or-nothing channel
// (scheme BlackoutBudget(k): every round either delivers both messages or
// drops both, with at most k blackout rounds). The key property of the
// channel is that a reception is common knowledge: if I received in round
// r, the round's letter was '.', so my partner received too. Both
// processes therefore decide min(own, received) at the first successful
// exchange — at latest round k+1.
//
// This algorithm lives outside the Γ^ω regime of Theorem III.8 (double
// omissions occur); its optimality (k+1 rounds, matching the chain
// analysis lower bound) is established experimentally in the "beyond"
// experiment.
type FirstCleanExchange struct {
	// Deadline, when positive, makes the process decide its own value at
	// that round even without a clean exchange — only sound when the
	// scheme guarantees a clean round by the deadline (it does: k+1).
	Deadline int

	init     sim.Value
	decision sim.Value
}

// Init implements sim.Process.
func (p *FirstCleanExchange) Init(_ sim.ID, input sim.Value) {
	p.init = input
	p.decision = sim.None
}

// Send implements sim.Process.
func (p *FirstCleanExchange) Send(r int) (sim.Message, bool) {
	if p.decision != sim.None {
		return nil, false
	}
	return p.init, true
}

// Receive implements sim.Process.
func (p *FirstCleanExchange) Receive(r int, msg sim.Message) {
	if msg != nil {
		other := msg.(sim.Value)
		if other < p.init {
			p.decision = other
		} else {
			p.decision = p.init
		}
		return
	}
	if p.Deadline > 0 && r >= p.Deadline {
		// No clean round within the promised budget: the scheme promise
		// is broken; deciding own value here is only safe because the
		// scheme forbids this case. (Tests exercise the broken-promise
		// path explicitly.)
		p.decision = p.init
	}
}

// Decision implements sim.Process.
func (p *FirstCleanExchange) Decision() (sim.Value, bool) {
	if p.decision == sim.None {
		return sim.None, false
	}
	return p.decision, true
}
