// Package buchi implements the small ω-automata substrate used to represent
// omission schemes as ω-regular languages and to decide the conditions of
// Theorem III.8 of Fevat & Godard.
//
// Two automaton kinds are provided:
//
//   - DBA: complete deterministic Büchi automata. All named omission schemes
//     of the paper (S0, T, C1, S1, R1, S2, Fair, the almost-fair scheme, …)
//     are DBA-recognizable. DBAs are closed under union and intersection,
//     and their complement is an NBA via the classic "guess the point after
//     which no accepting state is visited" construction.
//
//   - NBA: nondeterministic Büchi automata, closed under intersection, with
//     emptiness + lasso-witness extraction and ultimately periodic word
//     membership. Witness lassos become the excluded scenarios w that
//     parameterize the consensus algorithm A_w.
//
// Automata are over abstract integer symbols 0..Alphabet-1; the scheme
// package maps omission letters onto symbols.
package buchi

import "fmt"

// State is an automaton state, numbered 0..NumStates-1.
type State = int

// Symbol is an input symbol, numbered 0..Alphabet-1.
type Symbol = int

// DBA is a complete deterministic Büchi automaton. A run is accepting when
// it visits an accepting state infinitely often.
type DBA struct {
	Alphabet  int
	Start     State
	Delta     [][]State // Delta[q][a] = successor state; complete
	Accepting []bool
}

// NumStates returns the number of states.
func (d *DBA) NumStates() int { return len(d.Delta) }

// Validate checks internal consistency (completeness, ranges).
func (d *DBA) Validate() error {
	n := d.NumStates()
	if n == 0 {
		return fmt.Errorf("buchi: DBA has no states")
	}
	if d.Alphabet <= 0 {
		return fmt.Errorf("buchi: DBA alphabet size %d", d.Alphabet)
	}
	if d.Start < 0 || d.Start >= n {
		return fmt.Errorf("buchi: DBA start %d out of range", d.Start)
	}
	if len(d.Accepting) != n {
		return fmt.Errorf("buchi: DBA accepting vector has %d entries, want %d", len(d.Accepting), n)
	}
	for q, row := range d.Delta {
		if len(row) != d.Alphabet {
			return fmt.Errorf("buchi: DBA state %d has %d transitions, want %d", q, len(row), d.Alphabet)
		}
		for a, to := range row {
			if to < 0 || to >= n {
				return fmt.Errorf("buchi: DBA transition %d --%d--> %d out of range", q, a, to)
			}
		}
	}
	return nil
}

// StepWord runs the DBA on a finite word from Start, returning the final
// state and whether the run stays defined (it always does; DBAs are
// complete).
func (d *DBA) StepWord(word []Symbol) State {
	q := d.Start
	for _, a := range word {
		q = d.Delta[q][a]
	}
	return q
}

// AcceptsUP reports whether the DBA accepts the ultimately periodic word
// u·v^ω: the unique run is followed for |u| + |v|·NumStates steps, after
// which the (state, position-in-v) pair cycles; acceptance is whether the
// cycle contains an accepting state.
func (d *DBA) AcceptsUP(u, v []Symbol) bool {
	if len(v) == 0 {
		panic("buchi: AcceptsUP with empty period")
	}
	q := d.StepWord(u)
	// Find the cycle of (state, phase) pairs while reading v^ω.
	type cfg struct {
		q     State
		phase int
	}
	seen := map[cfg]int{}
	var trace []State
	phase := 0
	for {
		c := cfg{q, phase}
		if at, ok := seen[c]; ok {
			// States trace[at:] form the cycle.
			for _, s := range trace[at:] {
				if d.Accepting[s] {
					return true
				}
			}
			return false
		}
		seen[c] = len(trace)
		trace = append(trace, q)
		q = d.Delta[q][v[phase]]
		phase = (phase + 1) % len(v)
	}
}

// NBA converts the DBA to an equivalent NBA.
func (d *DBA) NBA() *NBA {
	n := d.NumStates()
	nba := &NBA{
		Alphabet:  d.Alphabet,
		Start:     []State{d.Start},
		Delta:     make([][][]State, n),
		Accepting: append([]bool(nil), d.Accepting...),
	}
	for q := 0; q < n; q++ {
		nba.Delta[q] = make([][]State, d.Alphabet)
		for a := 0; a < d.Alphabet; a++ {
			nba.Delta[q][a] = []State{d.Delta[q][a]}
		}
	}
	return nba
}

// Universal returns the DBA accepting every ω-word over the alphabet.
func Universal(alphabet int) *DBA {
	row := make([]State, alphabet)
	return &DBA{
		Alphabet:  alphabet,
		Start:     0,
		Delta:     [][]State{row},
		Accepting: []bool{true},
	}
}

// EmptyDBA returns the DBA accepting no ω-word.
func EmptyDBA(alphabet int) *DBA {
	row := make([]State, alphabet)
	return &DBA{
		Alphabet:  alphabet,
		Start:     0,
		Delta:     [][]State{row},
		Accepting: []bool{false},
	}
}

// Intersect returns a DBA for L(d) ∩ L(e), by the textbook
// generalized-Büchi degeneralization with a round-robin copy index: from a
// state with copy index i, the index advances when the *source* state's
// i-th component is accepting; accepting product states are those with
// index 0 whose d-component is accepting. Both acceptance sets are then
// visited infinitely often iff the index cycles forever.
func (d *DBA) Intersect(e *DBA) *DBA {
	if d.Alphabet != e.Alphabet {
		panic("buchi: Intersect with mismatched alphabets")
	}
	nd, ne := d.NumStates(), e.NumStates()
	id := func(q1, q2 State, flag int) State { return (q1*ne+q2)*2 + flag }
	total := nd * ne * 2
	out := &DBA{
		Alphabet:  d.Alphabet,
		Start:     id(d.Start, e.Start, 0),
		Delta:     make([][]State, total),
		Accepting: make([]bool, total),
	}
	for q1 := 0; q1 < nd; q1++ {
		for q2 := 0; q2 < ne; q2++ {
			for flag := 0; flag < 2; flag++ {
				q := id(q1, q2, flag)
				nf := flag
				if flag == 0 && d.Accepting[q1] {
					nf = 1
				} else if flag == 1 && e.Accepting[q2] {
					nf = 0
				}
				row := make([]State, d.Alphabet)
				for a := 0; a < d.Alphabet; a++ {
					row[a] = id(d.Delta[q1][a], e.Delta[q2][a], nf)
				}
				out.Delta[q] = row
				out.Accepting[q] = flag == 0 && d.Accepting[q1]
			}
		}
	}
	return out.Trim()
}

// Union returns a DBA for L(d) ∪ L(e): the plain product accepting when
// either component is accepting ("infinitely often F1 or infinitely often
// F2" equals "infinitely often (F1×Q ∪ Q×F2)").
func (d *DBA) Union(e *DBA) *DBA {
	if d.Alphabet != e.Alphabet {
		panic("buchi: Union with mismatched alphabets")
	}
	nd, ne := d.NumStates(), e.NumStates()
	id := func(q1, q2 State) State { return q1*ne + q2 }
	total := nd * ne
	out := &DBA{
		Alphabet:  d.Alphabet,
		Start:     id(d.Start, e.Start),
		Delta:     make([][]State, total),
		Accepting: make([]bool, total),
	}
	for q1 := 0; q1 < nd; q1++ {
		for q2 := 0; q2 < ne; q2++ {
			q := id(q1, q2)
			row := make([]State, d.Alphabet)
			for a := 0; a < d.Alphabet; a++ {
				row[a] = id(d.Delta[q1][a], e.Delta[q2][a])
			}
			out.Delta[q] = row
			out.Accepting[q] = d.Accepting[q1] || e.Accepting[q2]
		}
	}
	return out.Trim()
}

// Trim removes states unreachable from Start, renumbering the remainder.
func (d *DBA) Trim() *DBA {
	n := d.NumStates()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = -1
	}
	order := []State{d.Start}
	idx[d.Start] = 0
	for i := 0; i < len(order); i++ {
		q := order[i]
		for a := 0; a < d.Alphabet; a++ {
			t := d.Delta[q][a]
			if idx[t] < 0 {
				idx[t] = len(order)
				order = append(order, t)
			}
		}
	}
	out := &DBA{
		Alphabet:  d.Alphabet,
		Start:     0,
		Delta:     make([][]State, len(order)),
		Accepting: make([]bool, len(order)),
	}
	for i, q := range order {
		row := make([]State, d.Alphabet)
		for a := 0; a < d.Alphabet; a++ {
			row[a] = idx[d.Delta[q][a]]
		}
		out.Delta[i] = row
		out.Accepting[i] = d.Accepting[q]
	}
	return out
}

// Condense merges every dead state (a state from which no accepting run
// exists) into a single rejecting sink, after trimming unreachable
// states. The language is preserved — dead states are closed under
// successors — and chained products (e.g. repeated Minus) stay small.
func (d *DBA) Condense() *DBA {
	t := d.Trim()
	live := t.NBA().LiveStates()
	idx := make([]int, t.NumStates())
	order := make([]State, 0, t.NumStates())
	anyDead := false
	for q := 0; q < t.NumStates(); q++ {
		if live[q] {
			idx[q] = len(order)
			order = append(order, q)
		} else {
			anyDead = true
			idx[q] = -1
		}
	}
	if !anyDead {
		return t
	}
	sink := len(order)
	total := sink + 1
	out := &DBA{
		Alphabet:  t.Alphabet,
		Delta:     make([][]State, total),
		Accepting: make([]bool, total),
	}
	if live[t.Start] {
		out.Start = idx[t.Start]
	} else {
		out.Start = sink
	}
	for i, q := range order {
		row := make([]State, t.Alphabet)
		for a := 0; a < t.Alphabet; a++ {
			to := t.Delta[q][a]
			if idx[to] >= 0 {
				row[a] = idx[to]
			} else {
				row[a] = sink
			}
		}
		out.Delta[i] = row
		out.Accepting[i] = t.Accepting[q]
	}
	sinkRow := make([]State, t.Alphabet)
	for a := range sinkRow {
		sinkRow[a] = sink
	}
	out.Delta[sink] = sinkRow
	return out
}

// Complement returns an NBA for the complement of L(d). A word is rejected
// by the deterministic d exactly when its unique run visits accepting
// states finitely often; the NBA guesses the point after which no
// accepting state occurs (a second, "safe" copy of the state space
// restricted to non-accepting states).
func (d *DBA) Complement() *NBA {
	n := d.NumStates()
	// States 0..n-1: tracking copy. States n..2n-1: safe copy.
	nba := &NBA{
		Alphabet:  d.Alphabet,
		Start:     nil,
		Delta:     make([][][]State, 2*n),
		Accepting: make([]bool, 2*n),
	}
	nba.Start = []State{d.Start}
	if !d.Accepting[d.Start] {
		nba.Start = append(nba.Start, d.Start+n)
	}
	for q := 0; q < n; q++ {
		nba.Delta[q] = make([][]State, d.Alphabet)
		nba.Delta[q+n] = make([][]State, d.Alphabet)
		nba.Accepting[q+n] = true
		for a := 0; a < d.Alphabet; a++ {
			t := d.Delta[q][a]
			succ := []State{t}
			if !d.Accepting[t] {
				succ = append(succ, t+n)
			}
			nba.Delta[q][a] = succ
			if !d.Accepting[t] {
				nba.Delta[q+n][a] = []State{t + n}
			} else {
				nba.Delta[q+n][a] = nil // dead: obligation violated
			}
		}
	}
	return nba
}

// WordDBA returns a DBA accepting exactly the single ultimately periodic
// word u·v^ω.
func WordDBA(alphabet int, u, v []Symbol) *DBA {
	if len(v) == 0 {
		panic("buchi: WordDBA with empty period")
	}
	total := len(u) + len(v) + 1 // positions plus a rejecting sink
	sink := total - 1
	letterAt := func(i int) Symbol {
		if i < len(u) {
			return u[i]
		}
		return v[(i-len(u))%len(v)]
	}
	nextPos := func(i int) int {
		if i+1 < len(u)+len(v) {
			return i + 1
		}
		return len(u) // wrap into the period
	}
	d := &DBA{
		Alphabet:  alphabet,
		Start:     0,
		Delta:     make([][]State, total),
		Accepting: make([]bool, total),
	}
	for i := 0; i < len(u)+len(v); i++ {
		row := make([]State, alphabet)
		for a := 0; a < alphabet; a++ {
			if a == letterAt(i) {
				row[a] = nextPos(i)
			} else {
				row[a] = sink
			}
		}
		d.Delta[i] = row
		d.Accepting[i] = true
	}
	sinkRow := make([]State, alphabet)
	for a := range sinkRow {
		sinkRow[a] = sink
	}
	d.Delta[sink] = sinkRow
	return d
}

// NotWordDBA returns a DBA accepting every ω-word except u·v^ω: the same
// position tracker, but the mismatch sink is accepting and the tracking
// states are not (a run that never mismatches equals the excluded word).
func NotWordDBA(alphabet int, u, v []Symbol) *DBA {
	d := WordDBA(alphabet, u, v)
	for q := range d.Accepting {
		d.Accepting[q] = !d.Accepting[q]
	}
	return d
}
