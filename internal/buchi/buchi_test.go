package buchi

import (
	"math/rand"
	"testing"
)

// infinitelyOften returns a DBA over the given alphabet accepting words
// containing the symbol sym infinitely often.
func infinitelyOften(alphabet int, sym Symbol) *DBA {
	d := &DBA{Alphabet: alphabet, Start: 0, Delta: make([][]State, 2), Accepting: []bool{false, true}}
	for q := 0; q < 2; q++ {
		row := make([]State, alphabet)
		for a := 0; a < alphabet; a++ {
			if a == sym {
				row[a] = 1
			} else {
				row[a] = 0
			}
		}
		d.Delta[q] = row
	}
	return d
}

// onlySymbols returns a safety DBA accepting words using only the given
// symbols.
func onlySymbols(alphabet int, allowed ...Symbol) *DBA {
	ok := make([]bool, alphabet)
	for _, a := range allowed {
		ok[a] = true
	}
	d := &DBA{Alphabet: alphabet, Start: 0, Delta: make([][]State, 2), Accepting: []bool{true, false}}
	for q := 0; q < 2; q++ {
		row := make([]State, alphabet)
		for a := 0; a < alphabet; a++ {
			if q == 0 && ok[a] {
				row[a] = 0
			} else {
				row[a] = 1
			}
		}
		d.Delta[q] = row
	}
	return d
}

func randomDBA(rng *rand.Rand, states, alphabet int) *DBA {
	d := &DBA{
		Alphabet:  alphabet,
		Start:     rng.Intn(states),
		Delta:     make([][]State, states),
		Accepting: make([]bool, states),
	}
	for q := 0; q < states; q++ {
		row := make([]State, alphabet)
		for a := 0; a < alphabet; a++ {
			row[a] = rng.Intn(states)
		}
		d.Delta[q] = row
		d.Accepting[q] = rng.Intn(2) == 0
	}
	return d
}

func randomUP(rng *rand.Rand, alphabet int) (u, v []Symbol) {
	u = make([]Symbol, rng.Intn(4))
	v = make([]Symbol, 1+rng.Intn(4))
	for i := range u {
		u[i] = rng.Intn(alphabet)
	}
	for i := range v {
		v[i] = rng.Intn(alphabet)
	}
	return u, v
}

func TestValidate(t *testing.T) {
	if err := Universal(3).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := EmptyDBA(2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &DBA{Alphabet: 2, Start: 5, Delta: [][]State{{0, 0}}, Accepting: []bool{true}}
	if bad.Validate() == nil {
		t.Error("out-of-range start must fail validation")
	}
	bad2 := &DBA{Alphabet: 2, Start: 0, Delta: [][]State{{0}}, Accepting: []bool{true}}
	if bad2.Validate() == nil {
		t.Error("incomplete DBA must fail validation")
	}
	if err := Universal(3).NBA().Validate(); err != nil {
		t.Fatal(err)
	}
	if (&NBA{Alphabet: 0}).Validate() == nil {
		t.Error("empty alphabet NBA must fail validation")
	}
}

func TestUniversalAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		u, v := randomUP(rng, 3)
		if !Universal(3).AcceptsUP(u, v) {
			t.Fatalf("Universal rejects %v(%v)", u, v)
		}
		if EmptyDBA(3).AcceptsUP(u, v) {
			t.Fatalf("EmptyDBA accepts %v(%v)", u, v)
		}
	}
}

func TestInfinitelyOften(t *testing.T) {
	d := infinitelyOften(2, 0)
	cases := []struct {
		u, v []Symbol
		want bool
	}{
		{nil, []Symbol{0}, true},
		{nil, []Symbol{1}, false},
		{nil, []Symbol{0, 1}, true},
		{[]Symbol{0, 0, 0}, []Symbol{1}, false},
		{[]Symbol{1, 1}, []Symbol{0}, true},
	}
	for _, c := range cases {
		if got := d.AcceptsUP(c.u, c.v); got != c.want {
			t.Errorf("infOften(0).AcceptsUP(%v,%v) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestWordDBA(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		u, v := randomUP(rng, 3)
		d := WordDBA(3, u, v)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if !d.AcceptsUP(u, v) {
			t.Fatalf("WordDBA(%v,%v) rejects its own word", u, v)
		}
		// Shifted representation of the same ω-word must be accepted too.
		u2 := append(append([]Symbol{}, u...), v...)
		if !d.AcceptsUP(u2, v) {
			t.Fatalf("WordDBA(%v,%v) rejects shifted form", u, v)
		}
		// A word differing in the first letter must be rejected.
		w := append([]Symbol{}, u...)
		first := v[0]
		if len(w) > 0 {
			first = w[0]
		}
		diff := (first + 1) % 3
		if len(w) > 0 {
			w[0] = diff
			if d.AcceptsUP(w, v) {
				t.Fatalf("WordDBA(%v,%v) accepts modified %v", u, v, w)
			}
		} else {
			v2 := append([]Symbol{}, v...)
			v2[0] = diff
			if d.AcceptsUP(v2, v2) {
				t.Fatalf("WordDBA(%v,%v) accepts modified period", u, v)
			}
		}
		// NotWordDBA is the pointwise complement on up-words.
		nd := NotWordDBA(3, u, v)
		if nd.AcceptsUP(u, v) {
			t.Fatal("NotWordDBA accepts the excluded word")
		}
		u3, v3 := randomUP(rng, 3)
		if d.AcceptsUP(u3, v3) == nd.AcceptsUP(u3, v3) {
			t.Fatalf("Word/NotWord disagree on %v(%v)", u3, v3)
		}
	}
}

// TestBooleanOpsRandom cross-validates Intersect, Union and Complement
// against direct membership of random ultimately periodic words in random
// DBAs.
func TestBooleanOpsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		d := randomDBA(rng, 1+rng.Intn(5), 3)
		e := randomDBA(rng, 1+rng.Intn(5), 3)
		inter := d.Intersect(e)
		union := d.Union(e)
		comp := d.Complement()
		if err := comp.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			u, v := randomUP(rng, 3)
			ind, ine := d.AcceptsUP(u, v), e.AcceptsUP(u, v)
			if got := inter.AcceptsUP(u, v); got != (ind && ine) {
				t.Fatalf("Intersect wrong on %v(%v): got %v, want %v&&%v", u, v, got, ind, ine)
			}
			if got := union.AcceptsUP(u, v); got != (ind || ine) {
				t.Fatalf("Union wrong on %v(%v): got %v, want %v||%v", u, v, got, ind, ine)
			}
			if got := comp.AcceptsUP(u, v); got == ind {
				t.Fatalf("Complement wrong on %v(%v): both %v", u, v, got)
			}
		}
	}
}

func TestEmptinessAndLasso(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nonEmpty, empty := 0, 0
	for trial := 0; trial < 60; trial++ {
		d := randomDBA(rng, 1+rng.Intn(6), 3)
		n := d.NBA()
		isEmpty, w := n.IsEmpty()
		if isEmpty {
			empty++
			// No up-word should be accepted (spot check).
			for i := 0; i < 20; i++ {
				u, v := randomUP(rng, 3)
				if d.AcceptsUP(u, v) {
					t.Fatalf("IsEmpty=true but DBA accepts %v(%v)", u, v)
				}
			}
		} else {
			nonEmpty++
			if w == nil || len(w.Loop) == 0 {
				t.Fatal("non-empty without a usable lasso")
			}
			if !d.AcceptsUP(w.Stem, w.Loop) {
				t.Fatalf("lasso witness %v(%v) rejected by the automaton", w.Stem, w.Loop)
			}
		}
	}
	if nonEmpty == 0 || empty == 0 {
		t.Logf("coverage note: nonEmpty=%d empty=%d", nonEmpty, empty)
	}
}

func TestNBAIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		d := randomDBA(rng, 1+rng.Intn(4), 2)
		e := randomDBA(rng, 1+rng.Intn(4), 2)
		ni := d.NBA().Intersect(e.NBA())
		for i := 0; i < 20; i++ {
			u, v := randomUP(rng, 2)
			want := d.AcceptsUP(u, v) && e.AcceptsUP(u, v)
			if got := ni.AcceptsUP(u, v); got != want {
				t.Fatalf("NBA Intersect wrong on %v(%v)", u, v)
			}
		}
	}
}

func TestComplementEmptiness(t *testing.T) {
	// comp(Universal) = ∅; comp(∅) = Universal.
	empty, _ := Universal(2).Complement().IsEmpty()
	if !empty {
		t.Error("complement of universal must be empty")
	}
	empty, w := EmptyDBA(2).Complement().IsEmpty()
	if empty {
		t.Error("complement of empty must be non-empty")
	}
	if w == nil {
		t.Error("expected a witness")
	}
}

func TestPrefixOracle(t *testing.T) {
	// Language: infinitely many 0s AND only symbols {0,1} (over alphabet 3).
	d := infinitelyOften(3, 0).Intersect(onlySymbols(3, 0, 1))
	n := d.NBA()
	if !n.AcceptsPrefix([]Symbol{0, 1, 1, 0}) {
		t.Error("prefix 0110 should be accepted")
	}
	if n.AcceptsPrefix([]Symbol{0, 2}) {
		t.Error("prefix containing 2 must be rejected")
	}
	o := n.NewPrefixOracle()
	if !o.Live() {
		t.Fatal("oracle dead at ε")
	}
	if !o.CanStep(1) || o.CanStep(2) {
		t.Error("CanStep wrong at ε")
	}
	if !o.Step(1) || !o.Step(0) {
		t.Error("steps 1,0 should stay live")
	}
	c := o.Clone()
	if o.Step(2) {
		t.Error("stepping on 2 must kill the oracle")
	}
	if o.Step(0) {
		t.Error("dead oracle must stay dead")
	}
	if !c.Live() {
		t.Error("clone must be unaffected")
	}
}

func TestSamplePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := infinitelyOften(3, 0).Intersect(onlySymbols(3, 0, 1))
	n := d.NBA()
	for i := 0; i < 30; i++ {
		w, ok := n.SamplePrefix(rng, 12)
		if !ok {
			t.Fatal("sampling failed on non-empty language")
		}
		if len(w) != 12 {
			t.Fatalf("sample has length %d", len(w))
		}
		for _, a := range w {
			if a == 2 {
				t.Fatalf("sample %v contains forbidden symbol", w)
			}
		}
		if !n.AcceptsPrefix(w) {
			t.Fatalf("sampled prefix %v not in prefix language", w)
		}
	}
	if _, ok := EmptyDBA(2).NBA().SamplePrefix(rng, 3); ok {
		t.Error("sampling from empty language must fail")
	}
}

func TestDegeneralizeMatchesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		d := randomDBA(rng, 1+rng.Intn(4), 2)
		e := randomDBA(rng, 1+rng.Intn(4), 2)
		// Build the raw product skeleton with two acceptance sets.
		nd, ne := d.NumStates(), e.NumStates()
		id := func(q1, q2 State) State { return q1*ne + q2 }
		delta := make([][][]State, nd*ne)
		setsA := make([]bool, nd*ne)
		setsB := make([]bool, nd*ne)
		for q1 := 0; q1 < nd; q1++ {
			for q2 := 0; q2 < ne; q2++ {
				rows := make([][]State, 2)
				for a := 0; a < 2; a++ {
					rows[a] = []State{id(d.Delta[q1][a], e.Delta[q2][a])}
				}
				delta[id(q1, q2)] = rows
				setsA[id(q1, q2)] = d.Accepting[q1]
				setsB[id(q1, q2)] = e.Accepting[q2]
			}
		}
		gen := Degeneralize(2, nd*ne, []State{id(d.Start, e.Start)}, delta, [][]bool{setsA, setsB})
		inter := d.Intersect(e)
		for i := 0; i < 20; i++ {
			u, v := randomUP(rng, 2)
			if gen.AcceptsUP(u, v) != inter.AcceptsUP(u, v) {
				t.Fatalf("Degeneralize disagrees with Intersect on %v(%v)", u, v)
			}
		}
	}
}

func TestStepWord(t *testing.T) {
	d := infinitelyOften(2, 0)
	if d.StepWord([]Symbol{1, 1, 0}) != 1 {
		t.Error("StepWord should land in the accepting state after a 0")
	}
	if d.StepWord(nil) != 0 {
		t.Error("StepWord(ε) should stay at start")
	}
}

func TestAcceptsUPPanicsOnEmptyPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Universal(2).AcceptsUP(nil, nil)
}

func TestTrimPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		d := randomDBA(rng, 2+rng.Intn(6), 2)
		trimmed := d.Trim()
		if err := trimmed.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			u, v := randomUP(rng, 2)
			if d.AcceptsUP(u, v) != trimmed.AcceptsUP(u, v) {
				t.Fatalf("Trim changed the language on %v(%v)", u, v)
			}
		}
	}
}

func TestMismatchedAlphabetsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { Universal(2).Intersect(Universal(3)) },
		func() { Universal(2).Union(Universal(3)) },
		func() { Universal(2).NBA().Intersect(Universal(3).NBA()) },
		func() { WordDBA(2, nil, nil) },
		func() { Degeneralize(2, 1, []State{0}, [][][]State{{nil, nil}}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCondensePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		d := randomDBA(rng, 2+rng.Intn(8), 3)
		c := d.Condense()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.NumStates() > d.NumStates()+1 {
			t.Fatalf("Condense grew the automaton: %d -> %d", d.NumStates(), c.NumStates())
		}
		for i := 0; i < 20; i++ {
			u, v := randomUP(rng, 3)
			if d.AcceptsUP(u, v) != c.AcceptsUP(u, v) {
				t.Fatalf("Condense changed the language on %v(%v)", u, v)
			}
		}
		// At most one dead state remains.
		live := c.NBA().LiveStates()
		dead := 0
		for _, ok := range live {
			if !ok {
				dead++
			}
		}
		if dead > 1 {
			t.Fatalf("%d dead states after Condense", dead)
		}
	}
	// A fully-live automaton is returned trimmed but unmerged.
	u := Universal(2)
	if got := u.Condense(); got.NumStates() != 1 {
		t.Errorf("Condense(universal) has %d states", got.NumStates())
	}
	// A fully-dead automaton collapses to the sink.
	e := EmptyDBA(2)
	if got := e.Condense(); got.NumStates() != 1 || got.Accepting[got.Start] {
		t.Errorf("Condense(empty): %d states", got.NumStates())
	}
}
