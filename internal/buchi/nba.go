package buchi

import (
	"fmt"
	"math/rand"
)

// NBA is a nondeterministic Büchi automaton. Missing transitions (empty
// successor sets) are allowed and kill the run.
type NBA struct {
	Alphabet  int
	Start     []State
	Delta     [][][]State // Delta[q][a] = successor set (may be empty)
	Accepting []bool
}

// NumStates returns the number of states.
func (n *NBA) NumStates() int { return len(n.Delta) }

// Validate checks internal consistency.
func (n *NBA) Validate() error {
	ns := n.NumStates()
	if n.Alphabet <= 0 {
		return fmt.Errorf("buchi: NBA alphabet size %d", n.Alphabet)
	}
	if len(n.Accepting) != ns {
		return fmt.Errorf("buchi: NBA accepting vector has %d entries, want %d", len(n.Accepting), ns)
	}
	for _, s := range n.Start {
		if s < 0 || s >= ns {
			return fmt.Errorf("buchi: NBA start %d out of range", s)
		}
	}
	for q, rows := range n.Delta {
		if len(rows) != n.Alphabet {
			return fmt.Errorf("buchi: NBA state %d has %d symbol rows, want %d", q, len(rows), n.Alphabet)
		}
		for a, succ := range rows {
			for _, t := range succ {
				if t < 0 || t >= ns {
					return fmt.Errorf("buchi: NBA transition %d --%d--> %d out of range", q, a, t)
				}
			}
		}
	}
	return nil
}

// Lasso is a witness for non-emptiness: the ultimately periodic word
// Stem·Loop^ω is accepted.
type Lasso struct {
	Stem []Symbol
	Loop []Symbol
}

// IsEmpty reports whether L(n) = ∅; when non-empty it also returns a
// lasso witness: a path from a start state to an accepting state f plus a
// non-trivial cycle from f back to itself.
func (n *NBA) IsEmpty() (empty bool, witness *Lasso) {
	reach, stems := n.reachableWithPaths()
	for f := range n.Delta {
		if !reach[f] || !n.Accepting[f] {
			continue
		}
		if cyc, ok := n.cycleThrough(f); ok {
			return false, &Lasso{Stem: stems[f], Loop: cyc}
		}
	}
	return true, nil
}

// reachableWithPaths BFSes from the start states, recording for each
// reachable state one shortest input word leading to it.
func (n *NBA) reachableWithPaths() (reach []bool, paths [][]Symbol) {
	ns := n.NumStates()
	reach = make([]bool, ns)
	paths = make([][]Symbol, ns)
	var queue []State
	for _, s := range n.Start {
		if !reach[s] {
			reach[s] = true
			paths[s] = []Symbol{}
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for a := 0; a < n.Alphabet; a++ {
			for _, t := range n.Delta[q][a] {
				if !reach[t] {
					reach[t] = true
					paths[t] = append(append([]Symbol{}, paths[q]...), a)
					queue = append(queue, t)
				}
			}
		}
	}
	return reach, paths
}

// cycleThrough finds a non-trivial cycle f → … → f, returning its input
// word.
func (n *NBA) cycleThrough(f State) ([]Symbol, bool) {
	ns := n.NumStates()
	visited := make([]bool, ns)
	paths := make([][]Symbol, ns)
	var queue []State
	// Seed with successors of f (ensures ≥ 1 step).
	for a := 0; a < n.Alphabet; a++ {
		for _, t := range n.Delta[f][a] {
			if t == f {
				return []Symbol{a}, true
			}
			if !visited[t] {
				visited[t] = true
				paths[t] = []Symbol{a}
				queue = append(queue, t)
			}
		}
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for a := 0; a < n.Alphabet; a++ {
			for _, t := range n.Delta[q][a] {
				if t == f {
					return append(append([]Symbol{}, paths[q]...), a), true
				}
				if !visited[t] {
					visited[t] = true
					paths[t] = append(append([]Symbol{}, paths[q]...), a)
					queue = append(queue, t)
				}
			}
		}
	}
	return nil, false
}

// Intersect returns an NBA for L(n) ∩ L(m), using the source-state
// round-robin degeneralization (see DBA.Intersect).
func (n *NBA) Intersect(m *NBA) *NBA {
	if n.Alphabet != m.Alphabet {
		panic("buchi: Intersect with mismatched alphabets")
	}
	nn, nm := n.NumStates(), m.NumStates()
	id := func(q1, q2 State, flag int) State { return (q1*nm+q2)*2 + flag }
	total := nn * nm * 2
	out := &NBA{
		Alphabet:  n.Alphabet,
		Delta:     make([][][]State, total),
		Accepting: make([]bool, total),
	}
	for _, s1 := range n.Start {
		for _, s2 := range m.Start {
			out.Start = append(out.Start, id(s1, s2, 0))
		}
	}
	for q1 := 0; q1 < nn; q1++ {
		for q2 := 0; q2 < nm; q2++ {
			for flag := 0; flag < 2; flag++ {
				q := id(q1, q2, flag)
				nf := flag
				if flag == 0 && n.Accepting[q1] {
					nf = 1
				} else if flag == 1 && m.Accepting[q2] {
					nf = 0
				}
				rows := make([][]State, n.Alphabet)
				for a := 0; a < n.Alphabet; a++ {
					for _, t1 := range n.Delta[q1][a] {
						for _, t2 := range m.Delta[q2][a] {
							rows[a] = append(rows[a], id(t1, t2, nf))
						}
					}
				}
				out.Delta[q] = rows
				out.Accepting[q] = flag == 0 && n.Accepting[q1]
			}
		}
	}
	return out.Trim()
}

// Trim removes states unreachable from the start set.
func (n *NBA) Trim() *NBA {
	reach, _ := n.reachableWithPaths()
	idx := make([]int, n.NumStates())
	var order []State
	for q, ok := range reach {
		if ok {
			idx[q] = len(order)
			order = append(order, q)
		} else {
			idx[q] = -1
		}
	}
	out := &NBA{
		Alphabet:  n.Alphabet,
		Delta:     make([][][]State, len(order)),
		Accepting: make([]bool, len(order)),
	}
	for _, s := range n.Start {
		out.Start = append(out.Start, idx[s])
	}
	for i, q := range order {
		rows := make([][]State, n.Alphabet)
		for a := 0; a < n.Alphabet; a++ {
			for _, t := range n.Delta[q][a] {
				if idx[t] >= 0 {
					rows[a] = append(rows[a], idx[t])
				}
			}
		}
		out.Delta[i] = rows
		out.Accepting[i] = n.Accepting[q]
	}
	return out
}

// AcceptsUP reports whether the NBA accepts u·v^ω, by intersecting with
// the single-word DBA and testing emptiness.
func (n *NBA) AcceptsUP(u, v []Symbol) bool {
	word := WordDBA(n.Alphabet, u, v).NBA()
	empty, _ := n.Intersect(word).IsEmpty()
	return !empty
}

// LiveStates returns the set of states from which some accepting run
// exists (i.e. that can reach an accepting state lying on a cycle).
func (n *NBA) LiveStates() []bool {
	ns := n.NumStates()
	// anchors: accepting states on a non-trivial cycle.
	live := make([]bool, ns)
	for f := 0; f < ns; f++ {
		if !n.Accepting[f] {
			continue
		}
		if _, ok := n.cycleThrough(f); ok {
			live[f] = true
		}
	}
	// Backward closure: predecessors of live states are live.
	changed := true
	for changed {
		changed = false
		for q := 0; q < ns; q++ {
			if live[q] {
				continue
			}
			for a := 0; a < n.Alphabet && !live[q]; a++ {
				for _, t := range n.Delta[q][a] {
					if live[t] {
						live[q] = true
						changed = true
						break
					}
				}
			}
		}
	}
	return live
}

// AcceptsPrefix reports whether some ω-word in L(n) begins with the given
// finite word: the subset construction run on the prefix must reach a live
// state.
func (n *NBA) AcceptsPrefix(word []Symbol) bool {
	live := n.LiveStates()
	return n.acceptsPrefixWithLive(word, live)
}

func (n *NBA) acceptsPrefixWithLive(word []Symbol, live []bool) bool {
	cur := map[State]bool{}
	for _, s := range n.Start {
		cur[s] = true
	}
	for _, a := range word {
		next := map[State]bool{}
		for q := range cur {
			for _, t := range n.Delta[q][a] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for q := range cur {
		if live[q] {
			return true
		}
	}
	return false
}

// PrefixOracle returns a stateful oracle for incremental prefix queries;
// it precomputes live states once and then supports O(|Δ|) steps.
type PrefixOracle struct {
	n    *NBA
	live []bool
	cur  map[State]bool
}

// NewPrefixOracle builds an oracle positioned at ε.
func (n *NBA) NewPrefixOracle() *PrefixOracle {
	o := &PrefixOracle{n: n, live: n.LiveStates(), cur: map[State]bool{}}
	for _, s := range n.Start {
		o.cur[s] = true
	}
	return o
}

// Step extends the prefix by one symbol; it returns false when no ω-word
// of the language has the extended prefix (the oracle is then dead and
// further Steps keep returning false).
func (o *PrefixOracle) Step(a Symbol) bool {
	next := map[State]bool{}
	for q := range o.cur {
		for _, t := range o.n.Delta[q][a] {
			next[t] = true
		}
	}
	o.cur = next
	return o.Live()
}

// Live reports whether the current prefix extends to a word of the
// language.
func (o *PrefixOracle) Live() bool {
	for q := range o.cur {
		if o.live[q] {
			return true
		}
	}
	return false
}

// CanStep reports whether appending a would keep the oracle live, without
// moving it.
func (o *PrefixOracle) CanStep(a Symbol) bool {
	next := map[State]bool{}
	for q := range o.cur {
		for _, t := range o.n.Delta[q][a] {
			next[t] = true
		}
	}
	for q := range next {
		if o.live[q] {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the oracle (sharing the immutable
// automaton and live set).
func (o *PrefixOracle) Clone() *PrefixOracle {
	cur := make(map[State]bool, len(o.cur))
	for q := range o.cur {
		cur[q] = true
	}
	return &PrefixOracle{n: o.n, live: o.live, cur: cur}
}

// SamplePrefix draws a uniform-ish random prefix of the given length from
// the language, or ok=false when the language is empty. At each step a
// uniformly random live-extending symbol is chosen.
func (n *NBA) SamplePrefix(rng *rand.Rand, length int) (word []Symbol, ok bool) {
	o := n.NewPrefixOracle()
	if !o.Live() {
		return nil, false
	}
	word = make([]Symbol, 0, length)
	for i := 0; i < length; i++ {
		var choices []Symbol
		for a := 0; a < n.Alphabet; a++ {
			if o.CanStep(a) {
				choices = append(choices, a)
			}
		}
		if len(choices) == 0 {
			return nil, false
		}
		a := choices[rng.Intn(len(choices))]
		o.Step(a)
		word = append(word, a)
	}
	return word, true
}

// Degeneralize builds an NBA from a generalized Büchi skeleton with k
// acceptance sets: states Q×{0..k−1}; the copy index advances when the
// source state belongs to the set it waits for; accepting states are index
// 0 members of set 0. All sets are visited infinitely often iff the index
// cycles forever.
func Degeneralize(alphabet int, numStates int, start []State, delta [][][]State, sets [][]bool) *NBA {
	k := len(sets)
	if k == 0 {
		panic("buchi: Degeneralize with no acceptance sets")
	}
	id := func(q State, i int) State { return q*k + i }
	out := &NBA{
		Alphabet:  alphabet,
		Delta:     make([][][]State, numStates*k),
		Accepting: make([]bool, numStates*k),
	}
	for _, s := range start {
		out.Start = append(out.Start, id(s, 0))
	}
	for q := 0; q < numStates; q++ {
		for i := 0; i < k; i++ {
			ni := i
			if sets[i][q] {
				ni = (i + 1) % k
			}
			rows := make([][]State, alphabet)
			for a := 0; a < alphabet; a++ {
				for _, t := range delta[q][a] {
					rows[a] = append(rows[a], id(t, ni))
				}
			}
			out.Delta[id(q, i)] = rows
			out.Accepting[id(q, i)] = i == 0 && sets[0][q]
		}
	}
	return out.Trim()
}
