package classify

import (
	"fmt"
	"strings"
)

// Explain renders a Result as a short human-readable narrative tying each
// Theorem III.8 condition to its consequence — the text a reader of the
// paper would write down after running the decision procedure.
func Explain(res *Result) string {
	if res == nil {
		return "no verdict"
	}
	var b strings.Builder
	name := "the scheme"
	if res.Scheme != nil {
		name = res.Scheme.Name()
	}
	if !res.Complete {
		fmt.Fprintf(&b, "%s uses double omissions, so Theorem III.8 does not characterize it exactly; ", name)
		if !res.Solvable {
			b.WriteString("however its Γ-restriction is already an obstruction, and obstructions are upward closed: the scheme is unsolvable.\n")
			return b.String()
		}
		b.WriteString("only bounded-horizon analysis applies (see the chain package).\n")
		return b.String()
	}
	if !res.Solvable {
		fmt.Fprintf(&b, "%s is an OBSTRUCTION: every fair scenario belongs to it, both constant scenarios (w)^ω and (b)^ω belong to it, and no special pair lies entirely outside it. ", name)
		b.WriteString("By Theorem III.8 no algorithm solves the Coordinated Attack Problem against this environment; ")
		b.WriteString("operationally, the configurations of every horizon form indistinguishability chains joining unanimous-0 to unanimous-1 executions.\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%s is SOLVABLE. ", name)
	switch res.WitnessCondition {
	case CondWOmegaMissing:
		b.WriteString("The constant scenario (w)^ω — White's messages always lost — cannot happen (condition III.8.iii). ")
	case CondBOmegaMissing:
		b.WriteString("The constant scenario (b)^ω — Black's messages always lost — cannot happen (condition III.8.iv). ")
	case CondFairMissing:
		fmt.Fprintf(&b, "The fair scenario %s cannot happen (condition III.8.i). ", res.Witness)
	case CondPairMissing:
		fmt.Fprintf(&b, "The special pair (%s, %s) lies entirely outside the scheme (condition III.8.ii). ", res.Pair[0], res.Pair[1])
	}
	fmt.Fprintf(&b, "The algorithm A_w with excluded scenario w = %s solves consensus: ", res.Witness)
	b.WriteString("each process tracks an integer index and halts as soon as its index drifts two away from ind(w_r), deciding by which side of ind(w_r) it landed on. ")
	if res.MinRounds == Unbounded {
		b.WriteString("Every finite word is a possible prefix of the environment, so no fixed round bound exists (Corollary III.14); termination time depends on how long the adversary tracks w.\n")
	} else {
		fmt.Fprintf(&b, "The word %s is impossible as a prefix, so by Proposition III.15 the bounded variant decides in exactly %d round(s) — and by Corollary III.14 no algorithm can do better.\n",
			res.MinRoundsWitness, res.MinRounds)
	}
	return b.String()
}
