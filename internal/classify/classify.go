// Package classify decides Theorem III.8 of Fevat & Godard: an omission
// scheme L ⊆ Γ^ω is solvable for the Coordinated Attack Problem iff at
// least one of the following holds:
//
//	(i)   some fair scenario f is outside L,
//	(ii)  some special pair (u, u′) is entirely outside L,
//	(iii) w^ω ∉ L,
//	(iv)  b^ω ∉ L,
//
// where a special pair is two distinct scenarios whose prefix indices stay
// within distance 1 forever (Definition III.7). Each satisfied condition
// comes with an extracted ultimately periodic witness, which is exactly
// the excluded scenario w needed to instantiate the consensus algorithm
// A_w of Section III-D.
//
// The decision reduces to ω-automata emptiness:
//
//	(iii)/(iv) are membership queries;
//	(i) is emptiness of Fair ∩ ¬L;
//	(ii) is emptiness of a product automaton over letter pairs that tracks
//	     the index difference d = ind(u′_r) − ind(u_r) — a finite-state
//	     quantity, since |d| ≥ 2 forces divergence forever and parity
//	     evolution depends only on the letters read.
//
// The package also computes the round-complexity bound p of Corollary
// III.14 (the smallest p with Γ^p ⊄ Pref(L)) together with a witness word
// w0 ∈ Γ^p \ Pref(L) enabling the exact-p-round algorithm of Proposition
// III.15.
package classify

import (
	"fmt"

	"repro/internal/buchi"
	"repro/internal/omission"
	"repro/internal/scheme"
)

// Condition identifies a disjunct of Theorem III.8.
type Condition int

const (
	// CondNone: no condition holds — the scheme is an obstruction.
	CondNone Condition = iota
	// CondWOmegaMissing is III.8.iii: w^ω ∉ L.
	CondWOmegaMissing
	// CondBOmegaMissing is III.8.iv: b^ω ∉ L.
	CondBOmegaMissing
	// CondFairMissing is III.8.i: some fair scenario is outside L.
	CondFairMissing
	// CondPairMissing is III.8.ii: some special pair lies outside L.
	CondPairMissing
)

// String implements fmt.Stringer.
func (c Condition) String() string {
	switch c {
	case CondNone:
		return "none (obstruction)"
	case CondWOmegaMissing:
		return "III.8.iii: (w)^ω ∉ L"
	case CondBOmegaMissing:
		return "III.8.iv: (b)^ω ∉ L"
	case CondFairMissing:
		return "III.8.i: fair scenario ∉ L"
	case CondPairMissing:
		return "III.8.ii: special pair ∉ L"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Unbounded is the MinRounds value meaning Γ^r ⊆ Pref(L) for every r: no
// bounded-round algorithm exists (though an unbounded one may).
const Unbounded = -1

// Result reports the full Theorem III.8 analysis of a scheme.
type Result struct {
	// Scheme is the analyzed scheme.
	Scheme *scheme.Scheme
	// Complete reports whether the characterization applies exactly: the
	// scheme is (equivalent to) a subset of Γ^ω. When false, Solvable is
	// only meaningful if false (obstruction by monotonicity).
	Complete bool
	// Solvable is the verdict. For Complete schemes this is exact; for
	// Σ-schemes it is only reported when the Γ-restriction is already an
	// obstruction (then the scheme is one too, since obstructions are
	// upward closed).
	Solvable bool

	// Per-condition detail.
	WOmegaMissing bool
	BOmegaMissing bool
	FairMissing   bool
	FairWitness   omission.Scenario
	PairMissing   bool
	Pair          [2]omission.Scenario

	// Witness is the chosen excluded scenario w ∉ L suitable for A_w
	// (valid when HasWitness; preference order: constants, fair, special
	// pair — simplest first).
	Witness    omission.Scenario
	HasWitness bool
	// WitnessCondition records which disjunct Witness came from.
	WitnessCondition Condition

	// MinRounds is the p of Corollary III.14: the minimal number of rounds
	// any consensus algorithm for L needs in the worst case, achievable
	// exactly (Proposition III.15) when the scheme is solvable.
	// Unbounded (-1) when Γ^r ⊆ Pref(L) for all r.
	MinRounds int
	// MinRoundsWitness is a word w0 ∈ Γ^MinRounds \ Pref(L) (nil when
	// MinRounds is Unbounded).
	MinRoundsWitness omission.Word
}

// Classify runs the Theorem III.8 analysis. Schemes over Σ are accepted
// when their language is contained in Γ^ω (they are restricted first);
// otherwise the theorem does not apply exactly and only the monotone
// obstruction direction is decided (Complete=false).
func Classify(s *scheme.Scheme) (*Result, error) {
	g, complete := restrictToGamma(s)
	res := &Result{Scheme: s, Complete: complete}

	auto := g.Automaton()
	wOmega := []buchi.Symbol{int(omission.LossWhite)}
	bOmega := []buchi.Symbol{int(omission.LossBlack)}
	res.WOmegaMissing = !auto.AcceptsUP(nil, wOmega)
	res.BOmegaMissing = !auto.AcceptsUP(nil, bOmega)

	// (i): Fair ∩ ¬L ≠ ∅.
	comp := auto.Complement()
	fairAndNotL := scheme.Fair().Automaton().NBA().Intersect(comp)
	if empty, w := fairAndNotL.IsEmpty(); !empty {
		res.FairMissing = true
		res.FairWitness = omission.UPWord(scheme.Letters(w.Stem), scheme.Letters(w.Loop)).Canonical()
	}

	// (ii): special pair entirely outside L.
	if pair, ok := findSpecialPair(comp); ok {
		res.PairMissing = true
		res.Pair = [2]omission.Scenario{pair[0].Canonical(), pair[1].Canonical()}
	}

	res.Solvable = res.WOmegaMissing || res.BOmegaMissing || res.FairMissing || res.PairMissing
	switch {
	case res.WOmegaMissing:
		res.Witness, res.HasWitness = omission.Constant(omission.LossWhite), true
		res.WitnessCondition = CondWOmegaMissing
	case res.BOmegaMissing:
		res.Witness, res.HasWitness = omission.Constant(omission.LossBlack), true
		res.WitnessCondition = CondBOmegaMissing
	case res.FairMissing:
		res.Witness, res.HasWitness = res.FairWitness, true
		res.WitnessCondition = CondFairMissing
	case res.PairMissing:
		// Orientation matters: A_w terminates only with the pair member of
		// larger index (the "upper" one). With the lower member as the
		// excluded scenario, its index advances by the maximal step e = 2
		// every tail round, so a straggler process sitting at distance +1
		// (its partner having halted) is carried along forever:
		// |3·1 − 2| = 1. The upper member's tail step is e = 0 and the
		// straggler escapes after one round.
		_, upper := OrientPair(res.Pair[0], res.Pair[1])
		res.Witness, res.HasWitness = upper, true
		res.WitnessCondition = CondPairMissing
	}

	res.MinRounds, res.MinRoundsWitness = minRounds(auto)

	if !complete {
		// Only the obstruction direction transfers: L ⊇ L∩Γ^ω, and
		// obstructions are upward closed.
		if res.Solvable {
			return res, fmt.Errorf("classify: %s is not a Γ-subscheme; Theorem III.8 characterizes only schemes without double omission (its Γ-restriction is solvable, which decides nothing for the full scheme)", s.Name())
		}
	}
	return res, nil
}

// restrictToGamma returns a Γ-alphabet scheme for L ∩ Γ^ω and whether that
// restriction loses nothing (L ⊆ Γ^ω).
func restrictToGamma(s *scheme.Scheme) (*scheme.Scheme, bool) {
	if s.OverGamma() {
		return s, true
	}
	old := s.Automaton()
	d := &buchi.DBA{
		Alphabet:  len(omission.Gamma),
		Start:     old.Start,
		Delta:     make([][]buchi.State, old.NumStates()),
		Accepting: append([]bool(nil), old.Accepting...),
	}
	for q := 0; q < old.NumStates(); q++ {
		d.Delta[q] = old.Delta[q][:len(omission.Gamma)]
	}
	restricted := scheme.MustNew(s.Name()+"∩Γω", "Γ-restriction of "+s.Name(), d.Trim())
	subset, _ := scheme.SubsetOf(s, scheme.Widen(scheme.R1()))
	return restricted, subset
}

// minRounds computes p = min{r : Γ^r ⊄ Pref(L)} with a witness word, as
// the shortest path in the DBA from the start state to a non-live state
// (a prefix that cannot be extended to any member of L).
func minRounds(auto *buchi.DBA) (int, omission.Word) {
	live := auto.NBA().LiveStates()
	type node struct {
		q    buchi.State
		path []buchi.Symbol
	}
	visited := make([]bool, auto.NumStates())
	queue := []node{{auto.Start, nil}}
	visited[auto.Start] = true
	if !live[auto.Start] {
		return 0, omission.Word{}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for a := 0; a < auto.Alphabet; a++ {
			t := auto.Delta[n.q][a]
			path := append(append([]buchi.Symbol{}, n.path...), a)
			if !live[t] {
				return len(path), scheme.Letters(path)
			}
			if !visited[t] {
				visited[t] = true
				queue = append(queue, node{t, path})
			}
		}
	}
	return Unbounded, nil
}
