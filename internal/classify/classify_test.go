package classify

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/buchi"
	"repro/internal/omission"
	"repro/internal/scheme"
)

func sc(s string) omission.Scenario { return omission.MustScenario(s) }

func classifyOK(t *testing.T, s *scheme.Scheme) *Result {
	t.Helper()
	res, err := Classify(s)
	if err != nil {
		t.Fatalf("Classify(%s): %v", s.Name(), err)
	}
	return res
}

// TestSevenEnvironments pins the Section IV-A application results: the
// solvability verdict and exact round complexity of each environment of
// Section II-A2.
func TestSevenEnvironments(t *testing.T) {
	cases := []struct {
		s         *scheme.Scheme
		solvable  bool
		minRounds int
	}{
		{scheme.S0(), true, 1},
		{scheme.TWhite(), true, 1},
		{scheme.TBlack(), true, 1},
		{scheme.C1(), true, 2},
		{scheme.S1(), true, 2},
		{scheme.R1(), false, Unbounded},
	}
	for _, c := range cases {
		res := classifyOK(t, c.s)
		if res.Solvable != c.solvable {
			t.Errorf("%s: solvable = %v, want %v", c.s.Name(), res.Solvable, c.solvable)
		}
		if res.MinRounds != c.minRounds {
			t.Errorf("%s: MinRounds = %d, want %d", c.s.Name(), res.MinRounds, c.minRounds)
		}
		if !res.Complete {
			t.Errorf("%s: should be a complete (Γ) characterization", c.s.Name())
		}
		if c.minRounds > 0 {
			if res.MinRoundsWitness.Len() != c.minRounds {
				t.Errorf("%s: witness length %d, want %d", c.s.Name(), res.MinRoundsWitness.Len(), c.minRounds)
			}
			if c.s.AcceptsPrefix(res.MinRoundsWitness) {
				t.Errorf("%s: MinRounds witness %v is a prefix of the scheme", c.s.Name(), res.MinRoundsWitness)
			}
		}
	}
	// S2 is over Σ: the theorem decides it only via monotonicity.
	res, err := Classify(scheme.S2())
	if err != nil {
		t.Fatalf("S2: %v", err)
	}
	if res.Complete || res.Solvable {
		t.Errorf("S2 must be an (incomplete-characterization) obstruction; got complete=%v solvable=%v", res.Complete, res.Solvable)
	}
}

func TestConditionsDetail(t *testing.T) {
	// S0 misses both constants and fair scenarios and pairs.
	res := classifyOK(t, scheme.S0())
	if !res.WOmegaMissing || !res.BOmegaMissing || !res.FairMissing || !res.PairMissing {
		t.Errorf("S0 conditions: %+v", res)
	}
	if res.WitnessCondition != CondWOmegaMissing {
		t.Errorf("S0 witness condition = %v", res.WitnessCondition)
	}
	// TW contains w^ω but misses b^ω.
	res = classifyOK(t, scheme.TWhite())
	if res.WOmegaMissing || !res.BOmegaMissing {
		t.Error("TW: (w)^ω ∈ TW and (b)^ω ∉ TW")
	}
	// C1 and S1 contain both constants and all unfair pairs are broken,
	// but miss fair scenarios.
	for _, s := range []*scheme.Scheme{scheme.C1(), scheme.S1()} {
		res = classifyOK(t, s)
		if res.WOmegaMissing || res.BOmegaMissing {
			t.Errorf("%s contains both constants", s.Name())
		}
		if !res.FairMissing {
			t.Errorf("%s must miss a fair scenario", s.Name())
		}
		if !res.FairWitness.IsFair() || s.Contains(res.FairWitness) {
			t.Errorf("%s: bad fair witness %s", s.Name(), res.FairWitness)
		}
		if res.WitnessCondition != CondFairMissing {
			t.Errorf("%s: witness condition %v", s.Name(), res.WitnessCondition)
		}
	}
	// R1: nothing missing.
	res = classifyOK(t, scheme.R1())
	if res.WOmegaMissing || res.BOmegaMissing || res.FairMissing || res.PairMissing || res.HasWitness {
		t.Errorf("R1: %+v", res)
	}
	if res.WitnessCondition != CondNone {
		t.Error("R1 witness condition should be none")
	}
	// AlmostFair misses exactly (b)^ω.
	res = classifyOK(t, scheme.AlmostFair())
	if res.WOmegaMissing || !res.BOmegaMissing || res.FairMissing {
		t.Errorf("AlmostFair: %+v", res)
	}
	if res.MinRounds != Unbounded {
		t.Errorf("AlmostFair MinRounds = %d, want unbounded", res.MinRounds)
	}
	// Fair itself: solvable because constants are unfair.
	res = classifyOK(t, scheme.Fair())
	if !res.Solvable || !res.WOmegaMissing || !res.BOmegaMissing {
		t.Errorf("Fair: %+v", res)
	}
	if res.FairMissing {
		t.Error("Fair contains every fair scenario")
	}
	if !res.PairMissing {
		t.Error("special pairs are unfair, hence outside Fair")
	}
	if res.MinRounds != Unbounded {
		t.Error("Pref(Fair) = Γ*, so MinRounds must be unbounded")
	}
}

// TestMinimalObstructionBoundary exercises the heart of Section IV-C:
// removing a single non-constant unfair scenario from Γ^ω leaves an
// obstruction, but removing its whole special pair makes it solvable.
func TestMinimalObstructionBoundary(t *testing.T) {
	u := sc("w(b)")
	partner, ok := SpecialPartner(u)
	if !ok {
		t.Fatalf("no special partner for %s", u)
	}
	if !partner.Equal(sc(".(b)")) {
		t.Fatalf("partner of w(b) = %s, want .(b)", partner)
	}

	oneGone := scheme.Minus("R1-u", scheme.R1(), u)
	res := classifyOK(t, oneGone)
	if res.Solvable {
		t.Error("Γ^ω minus one non-constant unfair scenario must remain an obstruction")
	}

	bothGone := scheme.Minus("R1-pair", scheme.R1(), u, partner)
	res = classifyOK(t, bothGone)
	if !res.Solvable {
		t.Fatal("Γ^ω minus a full special pair must be solvable")
	}
	if res.WitnessCondition != CondPairMissing {
		t.Errorf("witness condition = %v, want special pair", res.WitnessCondition)
	}
	if !res.PairMissing {
		t.Error("PairMissing must be set")
	}
	if !IsSpecialPair(res.Pair[0], res.Pair[1]) {
		t.Errorf("extracted pair (%s, %s) is not special", res.Pair[0], res.Pair[1])
	}
	for _, p := range res.Pair {
		if bothGone.Contains(p) {
			t.Errorf("pair element %s still in the scheme", p)
		}
	}
}

// TestFairScenarioRemovalSolvable: Γ^ω minus a fair scenario is solvable
// via condition (i).
func TestFairScenarioRemovalSolvable(t *testing.T) {
	l := scheme.Minus("R1-dot", scheme.R1(), sc("(.)"))
	res := classifyOK(t, l)
	if !res.Solvable || !res.FairMissing {
		t.Fatalf("R1 minus (.) must be solvable via fair witness: %+v", res)
	}
	if res.WOmegaMissing || res.BOmegaMissing {
		t.Error("constants still present")
	}
	if !res.FairWitness.Equal(sc("(.)")) && l.Contains(res.FairWitness) {
		t.Errorf("fair witness %s must be outside L", res.FairWitness)
	}
	if res.WitnessCondition != CondFairMissing {
		t.Errorf("witness condition %v", res.WitnessCondition)
	}
}

func TestIsSpecialPair(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"w(b)", ".(b)", true},
		{".(b)", "w(b)", true}, // symmetric
		{"(b)", "(b)", false},  // equal words are not a pair
		{"(w)", "(b)", false},
		{"(w)", ".(w)", false},
		{"(.)", ".(.)", false}, // equal ω-words, different representation
		{"(wb)", "(bw)", false},
		// After divergence the common tail letter is fixed by the lower
		// word's parity: 'w' when ind(lower) is even, 'b' when odd.
		{"ww(b)", "w.(b)", true},  // ind 8 / 7, lower odd ⇒ tail b
		{"ww(w)", "w.(w)", false}, // wrong tail letter
		{"bb(w)", "b.(w)", true},  // ind 0 / 1, lower even ⇒ tail w
		{"bb(b)", "b.(b)", false},
		{".w(b)", "..(b)", true}, // ind 3 / 4 boundary, lower odd
		{".w(w)", "..(w)", false},
	}
	for _, c := range cases {
		if got := IsSpecialPair(sc(c.a), sc(c.b)); got != c.want {
			t.Errorf("IsSpecialPair(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Scenarios outside Γ are never special.
	if IsSpecialPair(sc("(x)"), sc("(x)")) {
		t.Error("x-scenarios cannot form special pairs")
	}
}

func TestSpecialPartnerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	found := 0
	for i := 0; i < 200; i++ {
		// Random unfair scenario u·a^ω with a ∈ {w, b}.
		n := rng.Intn(5)
		u := make(omission.Word, n)
		for j := range u {
			u[j] = omission.Gamma[rng.Intn(3)]
		}
		tail := omission.LossWhite
		if rng.Intn(2) == 0 {
			tail = omission.LossBlack
		}
		s := omission.UPWord(u, omission.Word{tail})
		p, ok := SpecialPartner(s)
		if !ok {
			continue
		}
		found++
		if !IsSpecialPair(s, p) {
			t.Fatalf("SpecialPartner(%s) = %s not special", s, p)
		}
		// The partner's partner is the original.
		pp, ok := SpecialPartner(p)
		if !ok || !pp.Equal(s.Canonical()) {
			t.Fatalf("partner not involutive: %s -> %s -> %s", s, p, pp)
		}
	}
	if found < 20 {
		t.Fatalf("only %d partners found; generator too weak", found)
	}
	// Constants have no partner (that is why III.8.iii/iv are separate
	// conditions).
	for _, s := range []string{"(w)", "(b)", "(.)"} {
		if _, ok := SpecialPartner(sc(s)); ok {
			t.Errorf("%s must have no special partner", s)
		}
	}
	// Fair scenarios have no partner.
	if _, ok := SpecialPartner(sc("(wb)")); ok {
		t.Error("fair scenario cannot have a partner")
	}
}

// TestRandomSchemesInternalConsistency fuzzes the classifier and checks
// the witnesses it returns.
func TestRandomSchemesInternalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	solvable, obstructions := 0, 0
	for i := 0; i < 60; i++ {
		s := scheme.Random(rng, 1+rng.Intn(4))
		res := classifyOK(t, s)
		if res.Solvable {
			solvable++
			if !res.HasWitness {
				t.Fatalf("%s solvable without witness", s.Name())
			}
			if s.Contains(res.Witness) {
				t.Fatalf("%s: witness %s is inside the scheme", s.Name(), res.Witness)
			}
			switch res.WitnessCondition {
			case CondFairMissing:
				if !res.Witness.IsFair() {
					t.Fatalf("%s: fair witness %s is unfair", s.Name(), res.Witness)
				}
			case CondPairMissing:
				if !IsSpecialPair(res.Pair[0], res.Pair[1]) {
					t.Fatalf("%s: pair (%s,%s) not special", s.Name(), res.Pair[0], res.Pair[1])
				}
				if s.Contains(res.Pair[0]) || s.Contains(res.Pair[1]) {
					t.Fatalf("%s: pair not fully outside scheme", s.Name())
				}
			}
		} else {
			obstructions++
			// An obstruction must contain both constants and all fair
			// scenarios (spot check a few) and both halves of spot-check
			// special pairs.
			if !s.Contains(sc("(w)")) || !s.Contains(sc("(b)")) {
				t.Fatalf("%s: obstruction missing a constant", s.Name())
			}
			for _, f := range []string{"(.)", "(wb)", "(.w)", "(.b)", "(w.b)"} {
				if !s.Contains(sc(f)) {
					t.Fatalf("%s: obstruction missing fair scenario %s", s.Name(), f)
				}
			}
			if !s.Contains(sc("w(b)")) || !s.Contains(sc(".(b)")) {
				// At least one of each special pair must be present.
				t.Fatalf("%s: obstruction missing both halves of a pair", s.Name())
			}
		}
	}
	t.Logf("fuzz: %d solvable, %d obstructions", solvable, obstructions)
	if solvable == 0 || obstructions == 0 {
		t.Log("warning: fuzz corpus one-sided")
	}
}

func TestEmptySchemeIsSolvable(t *testing.T) {
	empty := scheme.MustNew("∅", "", buchi.EmptyDBA(3))
	res := classifyOK(t, empty)
	if !res.Solvable || !res.WOmegaMissing || !res.BOmegaMissing {
		t.Error("the empty scheme is (vacuously) solvable")
	}
	if res.MinRounds != 0 {
		t.Errorf("empty scheme MinRounds = %d, want 0", res.MinRounds)
	}
}

func TestSigmaSchemeErrors(t *testing.T) {
	// A Σ-scheme whose Γ-restriction is solvable cannot be decided.
	xOnly := scheme.MustNew("onlyX-ish", "x allowed anywhere", buchi.Universal(4))
	// S2 restriction is Γ^ω: obstruction, fine (tested above). Now build a
	// Σ-scheme with solvable restriction: {.,x}^ω.
	d := buchi.Universal(4)
	// states: 0 ok; build only-{.,x} automaton manually.
	d = &buchi.DBA{
		Alphabet: 4,
		Start:    0,
		Delta: [][]buchi.State{
			{0, 1, 1, 0},
			{1, 1, 1, 1},
		},
		Accepting: []bool{true, false},
	}
	dotX := scheme.MustNew("dotX", "{., x}^ω", d)
	if _, err := Classify(dotX); err == nil {
		t.Error("Σ-scheme with solvable Γ-restriction must return an error")
	}
	_ = xOnly
	// But a Σ-scheme that is semantically ⊆ Γ^ω is fine.
	wid := scheme.Widen(scheme.C1())
	res, err := Classify(wid)
	if err != nil {
		t.Fatalf("widened C1: %v", err)
	}
	if !res.Complete || !res.Solvable || res.MinRounds != 2 {
		t.Errorf("widened C1: %+v", res)
	}
}

func TestConditionString(t *testing.T) {
	for c := CondNone; c <= CondPairMissing; c++ {
		if c.String() == "" {
			t.Error("empty condition string")
		}
	}
	if Condition(42).String() == "" {
		t.Error("unknown condition string")
	}
}

// TestSolvabilityMonotone: solvability is downward closed under scheme
// inclusion (an algorithm for L works for any L' ⊆ L), so classifying a
// random intersection must be solvable whenever either factor is.
func TestSolvabilityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		a := scheme.Random(rng, 1+rng.Intn(3))
		b := scheme.Random(rng, 1+rng.Intn(3))
		ra := classifyOK(t, a)
		rb := classifyOK(t, b)
		inter := scheme.Intersect("a∩b", a, b)
		ri := classifyOK(t, inter)
		if (ra.Solvable || rb.Solvable) && !ri.Solvable {
			t.Fatalf("intersection of a solvable scheme became an obstruction (a=%v b=%v)", ra.Solvable, rb.Solvable)
		}
		union := scheme.Union("a∪b", a, b)
		ru := classifyOK(t, union)
		if ru.Solvable && (!ra.Solvable || !rb.Solvable) {
			t.Fatalf("solvable union with an obstruction factor (a=%v b=%v)", ra.Solvable, rb.Solvable)
		}
		// MinRounds is antitone-ish under inclusion: a subset cannot need
		// more rounds... (it can only have fewer prefixes, so its first
		// missing length is ≤). Check p(inter) ≤ min(p(a), p(b)) treating
		// Unbounded as +∞.
		pi, pa, pb := ri.MinRounds, ra.MinRounds, rb.MinRounds
		bound := pa
		if pb != Unbounded && (bound == Unbounded || pb < bound) {
			bound = pb
		}
		if bound != Unbounded && (pi == Unbounded || pi > bound) {
			t.Fatalf("MinRounds not monotone: inter=%d, factors %d/%d", pi, pa, pb)
		}
	}
}

func TestExplain(t *testing.T) {
	cases := []struct {
		s       *scheme.Scheme
		markers []string
	}{
		{scheme.R1(), []string{"OBSTRUCTION", "Theorem III.8"}},
		{scheme.S0(), []string{"SOLVABLE", "(w)^ω", "exactly 1 round"}},
		{scheme.C1(), []string{"SOLVABLE", "fair scenario", "exactly 2 round"}},
		{scheme.AlmostFair(), []string{"SOLVABLE", "(b)^ω", "no fixed round bound"}},
		{scheme.Minus("pairless", scheme.R1(), sc("w(b)"), sc(".(b)")), []string{"special pair"}},
	}
	for _, c := range cases {
		res, err := Classify(c.s)
		if err != nil {
			t.Fatal(err)
		}
		text := Explain(res)
		for _, m := range c.markers {
			if !strings.Contains(text, m) {
				t.Errorf("%s: missing %q in explanation:\n%s", c.s.Name(), m, text)
			}
		}
	}
	// Σ-schemes get the incompleteness note.
	res, _ := Classify(scheme.S2())
	if !strings.Contains(Explain(res), "double omissions") {
		t.Error("Σ-scheme explanation")
	}
	if Explain(nil) != "no verdict" {
		t.Error("nil explanation")
	}
	// Incomplete-but-solvable restriction branch (error path).
	resBX, errBX := Classify(scheme.BlackoutBudget(1))
	if errBX == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(Explain(resBX), "bounded-horizon analysis") {
		t.Error("incomplete-solvable explanation")
	}
}
