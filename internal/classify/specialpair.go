package classify

import (
	"math/big"

	"repro/internal/buchi"
	"repro/internal/omission"
)

// The index difference between the two coordinates of a candidate pair is
// finite-state. With d = ind(u′_r) − ind(u_r) and p = ind(u_r) mod 2:
//
//	ind(u a)   = 3·ind(u)  + (−1)^p·δ(a)  + 1
//	ind(u′ a′) = 3·ind(u′) + (−1)^p′·δ(a′) + 1,  p′ = p ⊕ (d mod 2)
//	d′         = 3d + (−1)^p′·δ(a′) − (−1)^p·δ(a)
//
// so |d| ≥ 2 implies |d′| ≥ 3·2 − 2 = 4: divergence is permanent, and the
// special-pair condition is the safety property d ∈ {−1, 0, +1} forever.
// Moreover d = 0 is left only by reading different letters (δ is injective
// on Γ) and once |d| = 1 it never returns to 0, hence u ≠ u′ is equivalent
// to "eventually d ≠ 0", which (d≠0 being absorbing) is the Büchi
// condition "infinitely often d ≠ 0". Parity evolves as p′ = p ⊕ [a = .]
// (only the no-loss letter flips parity, since δ(.)+1 is odd).

// diffState packs (d+1, p) into 0..5; dead transitions are omitted.
type diffState struct {
	d int // −1, 0, +1
	p int // parity of ind(u_r)
}

func (s diffState) id() int { return (s.d+1)*2 + s.p }

// stepDiff advances the difference tracker on the letter pair (a, a′); ok
// is false when the pair diverges (|d′| ≥ 2).
func stepDiff(s diffState, a, a2 omission.Letter) (diffState, bool) {
	signP := 1
	if s.p == 1 {
		signP = -1
	}
	p2 := s.p ^ (abs(s.d) % 2)
	signP2 := 1
	if p2 == 1 {
		signP2 = -1
	}
	d := 3*s.d + signP2*a2.Delta() - signP*a.Delta()
	if d < -1 || d > 1 {
		return diffState{}, false
	}
	np := s.p
	if a == omission.None {
		np ^= 1
	}
	return diffState{d: d, p: np}, true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// findSpecialPair searches for a special pair (u, u′) with both
// coordinates in the language of comp (the complement of the scheme).
// The product automaton runs two copies of comp over letter pairs while
// tracking the difference state; acceptance requires both coordinates'
// Büchi conditions and "infinitely often d ≠ 0".
func findSpecialPair(comp *buchi.NBA) ([2]omission.Scenario, bool) {
	// Build only the reachable part of the product on the fly: the
	// difference tracker prunes almost everything (pairs drifting more
	// than one index apart are dead), so the reachable product is tiny
	// compared to the full |comp|²·6 state space.
	const pairAlphabet = 9 // Γ × Γ
	type key struct {
		s1, s2 buchi.State
		ds     int
	}
	idOf := map[key]int{}
	var order []key
	intern := func(k key) int {
		if id, ok := idOf[k]; ok {
			return id
		}
		id := len(order)
		idOf[k] = id
		order = append(order, k)
		return id
	}

	start0 := diffState{d: 0, p: 0}
	var start []buchi.State
	for _, s1 := range comp.Start {
		for _, s2 := range comp.Start {
			start = append(start, intern(key{s1, s2, start0.id()}))
		}
	}
	diffOf := func(id int) diffState {
		return diffState{d: id/2 - 1, p: id % 2}
	}
	var delta [][][]buchi.State
	for next := 0; next < len(order); next++ {
		k := order[next]
		ds := diffOf(k.ds)
		rows := make([][]buchi.State, pairAlphabet)
		for a1 := 0; a1 < 3; a1++ {
			for a2 := 0; a2 < 3; a2++ {
				nds, ok := stepDiff(ds, omission.Letter(a1), omission.Letter(a2))
				if !ok {
					continue
				}
				sym := a1*3 + a2
				for _, t1 := range comp.Delta[k.s1][a1] {
					for _, t2 := range comp.Delta[k.s2][a2] {
						rows[sym] = append(rows[sym], intern(key{t1, t2, nds.id()}))
					}
				}
			}
		}
		delta = append(delta, rows)
	}
	numStates := len(order)
	setA := make([]bool, numStates)  // coordinate 1 accepting
	setB := make([]bool, numStates)  // coordinate 2 accepting
	setNZ := make([]bool, numStates) // d ≠ 0
	for i, k := range order {
		setA[i] = comp.Accepting[k.s1]
		setB[i] = comp.Accepting[k.s2]
		setNZ[i] = diffOf(k.ds).d != 0
	}

	product := buchi.Degeneralize(pairAlphabet, numStates, start, delta, [][]bool{setA, setB, setNZ})
	empty, lasso := product.IsEmpty()
	if empty {
		return [2]omission.Scenario{}, false
	}
	proj := func(sym []buchi.Symbol, first bool) omission.Word {
		w := make(omission.Word, len(sym))
		for i, s := range sym {
			if first {
				w[i] = omission.Letter(s / 3)
			} else {
				w[i] = omission.Letter(s % 3)
			}
		}
		return w
	}
	u := omission.UPWord(proj(lasso.Stem, true), proj(lasso.Loop, true))
	u2 := omission.UPWord(proj(lasso.Stem, false), proj(lasso.Loop, false))
	return [2]omission.Scenario{u, u2}, true
}

// OrientPair orders the two members of a special pair by eventual index:
// it returns (lower, upper) where ind(upper_r) = ind(lower_r) + 1 from the
// divergence round on. It panics if (a, b) is not a special pair.
func OrientPair(a, b omission.Scenario) (lower, upper omission.Scenario) {
	d, ok := finalDiff(a, b)
	if !ok || d == 0 {
		panic("classify: OrientPair on a non-special pair")
	}
	if d > 0 { // ind(b) − ind(a) = +1
		return a, b
	}
	return b, a
}

// finalDiff simulates the finite difference state along two ultimately
// periodic Γ-scenarios until the joint configuration repeats, returning
// the absorbed difference d = ind(b_r) − ind(a_r); ok=false when the pair
// diverges beyond distance 1.
func finalDiff(a, b omission.Scenario) (int, bool) {
	type cfg struct {
		posA, posB int
		ds         int
	}
	la, lb := len(a.Prefix())+len(a.Period()), len(b.Prefix())+len(b.Period())
	wrapA, wrapB := len(a.Prefix()), len(b.Prefix())
	ds := diffState{}
	posA, posB := 0, 0
	seen := map[cfg]bool{}
	for {
		c := cfg{posA, posB, ds.id()}
		if seen[c] {
			return ds.d, true
		}
		seen[c] = true
		var ok bool
		ds, ok = stepDiff(ds, a.At(posA), b.At(posB))
		if !ok {
			return 0, false
		}
		posA++
		if posA == la {
			posA = wrapA
		}
		posB++
		if posB == lb {
			posB = wrapB
		}
	}
}

// IsSpecialPair reports whether (a, b) is a special pair of Γ^ω: a ≠ b and
// the prefix indices stay within distance 1 at every round (Definition
// III.7). Both scenarios must be over Γ.
func IsSpecialPair(a, b omission.Scenario) bool {
	if !a.InGamma() || !b.InGamma() {
		return false
	}
	// Never diverging is necessary; the pair is special iff the words
	// actually differ, i.e. d left 0 at some point. d ≠ 0 is absorbing,
	// so the absorbed d decides.
	d, ok := finalDiff(a, b)
	return ok && d != 0
}

// SpecialPartner returns the canonical special-pair partner of the unfair
// scenario u·a^ω described in the impossibility proof (Lemma III.11): for
// w = u·w^ω with ind(u) even, the partner is ind⁻¹(ind(u)−1)·w^ω, and
// symmetrically for the other parity/letter. ok is false when the
// scenario is not of a form admitting a partner (e.g. it is fair, or the
// boundary index would leave [0, 3^r−1]).
func SpecialPartner(s omission.Scenario) (omission.Scenario, bool) {
	s = s.Canonical()
	period := s.Period()
	if len(period) != 1 || period[0] == omission.None || !s.InGamma() {
		return omission.Scenario{}, false
	}
	a := period[0]
	u := s.Prefix()
	ku := omission.Index(u)
	// The tail letter a keeps the index extreme within the subtree below
	// u. The adjacent scenario with index difference 1 forever is
	// ind⁻¹(ind(u)±1)·a^ω, with the sign chosen so the pair stays adjacent:
	// tail 'w' pushes to the top of u's subtree, so the partner is the next
	// subtree above (ind(u)+1) pushed to its bottom — adjacency holds iff
	// parity matches Lemma III.4's boundary case. Try both neighbours and
	// verify with IsSpecialPair.
	for _, d := range []int64{-1, +1} {
		k := new(big.Int).Add(ku, big.NewInt(d))
		if k.Sign() < 0 || k.Cmp(omission.Pow3(len(u))) >= 0 {
			continue
		}
		u2 := omission.UnIndex(len(u), k)
		cand := omission.UPWord(u2, omission.Word{a})
		if IsSpecialPair(s, cand) {
			return cand, true
		}
	}
	return omission.Scenario{}, false
}
