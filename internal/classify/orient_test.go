package classify

import (
	"testing"

	"repro/internal/scheme"
)

func TestOrientPair(t *testing.T) {
	lower, upper := OrientPair(sc(".(b)"), sc("w(b)"))
	if !lower.Equal(sc(".(b)")) || !upper.Equal(sc("w(b)")) {
		t.Errorf("OrientPair = (%s, %s)", lower, upper)
	}
	// Argument order must not matter.
	lower2, upper2 := OrientPair(sc("w(b)"), sc(".(b)"))
	if !lower2.Equal(lower) || !upper2.Equal(upper) {
		t.Errorf("OrientPair not symmetric: (%s, %s)", lower2, upper2)
	}
	lower, upper = OrientPair(sc("bb(w)"), sc("b.(w)"))
	if !lower.Equal(sc("bb(w)")) || !upper.Equal(sc("b.(w)")) {
		t.Errorf("OrientPair = (%s, %s)", lower, upper)
	}
	assertPanics(t, func() { OrientPair(sc("(w)"), sc("(b)")) })
	assertPanics(t, func() { OrientPair(sc("(.)"), sc("(.)")) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestPairWitnessIsUpper documents the termination-critical orientation:
// the classifier must return the pair member with the larger index as the
// excluded scenario for A_w. (With the lower member, a straggler process
// left at index distance +1 after its partner halts is carried along
// forever, because the lower member's index advances by the maximal step
// e = 2 every tail round.)
func TestPairWitnessIsUpper(t *testing.T) {
	l := scheme.Minus("R1-pair", scheme.R1(), sc("w(b)"), sc(".(b)"))
	res, err := Classify(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.WitnessCondition != CondPairMissing {
		t.Fatalf("expected pair witness, got %v", res.WitnessCondition)
	}
	_, upper := OrientPair(res.Pair[0], res.Pair[1])
	if !res.Witness.Equal(upper) {
		t.Errorf("witness %s is not the upper pair member %s", res.Witness, upper)
	}
	if !res.Witness.Equal(sc("w(b)")) {
		t.Errorf("witness %s, want w(b)", res.Witness)
	}
}
