package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Membership-churn campaigns: seeded schedules of join/leave/kill/
// restart events applied to a cluster's backends while load flows.
// This is the mobile-omission adversary lifted from message schedules
// to membership — the fault set is not fixed at boot, it moves — and
// the availability claim under test is the one DESIGN.md §3d makes:
// with replicas ≥ 2 and at most one member disrupted at a time, keyed
// requests keep answering through every epoch change.

// ChurnKind is one membership disruption verb.
type ChurnKind int

const (
	// ChurnKill makes a backend unreachable in place (transport errors,
	// failed probes) without telling the coordinator — the prober must
	// notice, eject, and later readmit it.
	ChurnKill ChurnKind = iota
	// ChurnRestart undoes a ChurnKill: the backend answers again at the
	// same address, typically cold.
	ChurnRestart
	// ChurnLeave removes a backend via the admin API — a clean,
	// coordinated departure (new epoch, no probe involvement).
	ChurnLeave
	// ChurnJoin (re)introduces a backend via the admin API, triggering
	// a warm handoff.
	ChurnJoin
)

func (k ChurnKind) String() string {
	switch k {
	case ChurnKill:
		return "kill"
	case ChurnRestart:
		return "restart"
	case ChurnLeave:
		return "leave"
	case ChurnJoin:
		return "join"
	default:
		return fmt.Sprintf("ChurnKind(%d)", int(k))
	}
}

// ChurnEvent is one scheduled disruption: At after campaign start,
// Kind applied to backend index Target.
type ChurnEvent struct {
	At     time.Duration
	Kind   ChurnKind
	Target int
}

func (e ChurnEvent) String() string {
	return fmt.Sprintf("%s@%s→backend[%d]", e.Kind, e.At, e.Target)
}

// ChurnPlan parameterizes a schedule.
type ChurnPlan struct {
	// Backends is the cluster size; events target indices [0, Backends).
	Backends int
	// Duration is the campaign window; every event lands strictly inside
	// it, with recovery events leaving slack for the prober to readmit.
	Duration time.Duration
	// Pairs is how many disrupt/recover pairs to schedule (default 2).
	// Each pair is either kill+restart (prober path) or leave+join
	// (admin path), chosen by the seed.
	Pairs int
}

// ChurnSchedule derives a deterministic membership-churn schedule from
// seed. The schedule maintains the invariant the availability bar
// depends on: at most ONE backend is disrupted at any instant (each
// disruption is recovered before the next begins), so a replicas ≥ 2
// cluster always has a healthy replica for every key. Events come back
// sorted by At.
func ChurnSchedule(seed int64, plan ChurnPlan) []ChurnEvent {
	if plan.Backends < 2 {
		return nil // disrupting a 1-node cluster just measures downtime
	}
	if plan.Pairs <= 0 {
		plan.Pairs = 2
	}
	if plan.Duration <= 0 {
		plan.Duration = 10 * time.Second
	}
	rng := rand.New(rand.NewSource(DeriveSeed(seed, 777)))

	// Carve the window: the first and last 15% stay quiet (warmup for a
	// healthy baseline, cooldown for readmission to complete), and each
	// pair owns an equal slice of the middle so disruptions never
	// overlap.
	quiet := plan.Duration * 15 / 100
	active := plan.Duration - 2*quiet
	slice := active / time.Duration(plan.Pairs)

	events := make([]ChurnEvent, 0, 2*plan.Pairs)
	for p := 0; p < plan.Pairs; p++ {
		sliceStart := quiet + time.Duration(p)*slice
		// Down in the first third of the slice, up in the middle third:
		// the final third is slack for the prober/handoff to converge
		// before the next pair begins.
		down := sliceStart + time.Duration(rng.Int63n(int64(slice/3)))
		up := sliceStart + slice/3 + time.Duration(rng.Int63n(int64(slice/3)))
		target := rng.Intn(plan.Backends)
		if rng.Intn(2) == 0 {
			events = append(events,
				ChurnEvent{At: down, Kind: ChurnKill, Target: target},
				ChurnEvent{At: up, Kind: ChurnRestart, Target: target})
		} else {
			events = append(events,
				ChurnEvent{At: down, Kind: ChurnLeave, Target: target},
				ChurnEvent{At: up, Kind: ChurnJoin, Target: target})
		}
	}
	return events
}
