package chaos

import (
	"testing"
	"time"
)

// TestChurnScheduleDeterministicAndSafe: same seed → same schedule;
// different seed → (almost surely) different; every schedule keeps the
// at-most-one-disrupted invariant and stays inside the window.
func TestChurnScheduleDeterministicAndSafe(t *testing.T) {
	plan := ChurnPlan{Backends: 3, Duration: 12 * time.Second, Pairs: 3}
	a := ChurnSchedule(99, plan)
	b := ChurnSchedule(99, plan)
	if len(a) != 2*plan.Pairs {
		t.Fatalf("schedule has %d events, want %d", len(a), 2*plan.Pairs)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic: %v vs %v", a[i], b[i])
		}
	}
	c := ChurnSchedule(100, plan)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical schedules")
	}

	for _, ev := range a {
		if ev.At <= 0 || ev.At >= plan.Duration {
			t.Fatalf("event %v outside the campaign window", ev)
		}
		if ev.Target < 0 || ev.Target >= plan.Backends {
			t.Fatalf("event %v targets a nonexistent backend", ev)
		}
	}
	// Pairs are sequential and non-overlapping: sorted by time, events
	// strictly alternate disrupt, recover, disrupt, recover, … and each
	// recover matches its disruptor's target and verb.
	for i := 0; i+1 < len(a); i += 2 {
		down, up := a[i], a[i+1]
		if down.At >= up.At {
			t.Fatalf("pair %d: recovery %v not after disruption %v", i/2, up, down)
		}
		if down.Target != up.Target {
			t.Fatalf("pair %d: recovery %v targets a different backend than %v", i/2, up, down)
		}
		switch down.Kind {
		case ChurnKill:
			if up.Kind != ChurnRestart {
				t.Fatalf("pair %d: kill recovered by %v", i/2, up.Kind)
			}
		case ChurnLeave:
			if up.Kind != ChurnJoin {
				t.Fatalf("pair %d: leave recovered by %v", i/2, up.Kind)
			}
		default:
			t.Fatalf("pair %d: unexpected disruption %v", i/2, down.Kind)
		}
		if i+2 < len(a) && up.At >= a[i+2].At {
			t.Fatalf("pair %d overlaps the next: %v not before %v", i/2, up, a[i+2])
		}
	}
}

// TestChurnScheduleDegenerate: 1-node clusters get no schedule (there
// is nothing to disrupt without taking the whole service down).
func TestChurnScheduleDegenerate(t *testing.T) {
	if evs := ChurnSchedule(1, ChurnPlan{Backends: 1, Duration: time.Second}); evs != nil {
		t.Fatalf("1-backend plan produced events: %v", evs)
	}
}
