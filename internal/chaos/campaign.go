package chaos

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/classify"
	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// consensusAW builds a fresh A_w pair for the excluded scenario.
func consensusAW(w omission.Scenario) (sim.Process, sim.Process) {
	return consensus.NewAW(w), consensus.NewAW(w)
}

// Algorithm is a two-process algorithm under chaos test: a factory for
// fresh process pairs, plus the A_w witness when the algorithm is A_w
// (enabling the Proposition III.12 invariant watchdog).
type Algorithm struct {
	Name string
	New  func() (white, black sim.Process)
	// Witness, when non-nil, is the excluded scenario of an A_w pair; the
	// campaign then additionally runs the knowledge-invariant watchdog on
	// every execution.
	Witness omission.Source
}

// AWForScheme classifies the scheme and returns the A_w algorithm from
// its witness — the standard known-good subject for chaos campaigns.
func AWForScheme(s *scheme.Scheme) (Algorithm, error) {
	v, err := classify.Classify(s)
	if err != nil {
		return Algorithm{}, err
	}
	if !v.Solvable {
		return Algorithm{}, fmt.Errorf("chaos: scheme %s is an obstruction — no algorithm to test", s.Name())
	}
	if !v.HasWitness {
		return Algorithm{}, fmt.Errorf("chaos: verdict for %s carries no witness", s.Name())
	}
	w := v.Witness
	return Algorithm{
		Name:    fmt.Sprintf("A_w[w=%s]", w),
		New:     func() (sim.Process, sim.Process) { return consensusAW(w) },
		Witness: w,
	}, nil
}

// Config parameterizes a two-process chaos campaign.
type Config struct {
	// Scheme is the environment; executions run under scenarios sampled
	// from it.
	Scheme *scheme.Scheme
	// Algo is the algorithm under test.
	Algo Algorithm
	// Executions is the number of seeded executions (default 1000).
	Executions int
	// Seed is the campaign master seed; per-execution seeds derive from
	// it (DeriveSeed) and are stamped into violations.
	Seed int64
	// MaxPrefix bounds the sampled scenario prefix length (default 8).
	MaxPrefix int
	// MaxRounds caps each execution (default 200); hitting the cap is a
	// termination violation.
	MaxRounds int
	// Deadline is the per-execution wall-clock budget (0 = none).
	Deadline time.Duration
	// CheckInvariant additionally runs the Proposition III.12 watchdog
	// (requires Algo.Witness and a Γ-scheme; default on when possible).
	CheckInvariant bool
	// NoShrink skips counterexample minimization.
	NoShrink bool
	// MaxViolations stops the campaign after this many violations
	// (default 8; the first is always minimized).
	MaxViolations int
}

func (c *Config) defaults() {
	if c.Executions <= 0 {
		c.Executions = 1000
	}
	if c.MaxPrefix <= 0 {
		c.MaxPrefix = 8
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 200
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 8
	}
}

// Report aggregates a campaign's outcome.
type Report struct {
	Scheme     string
	Algorithm  string
	Seed       int64
	Executions int
	// Rounds is the total number of rounds executed across the campaign.
	Rounds int64
	// Violations holds the structured failures (bounded by
	// Config.MaxViolations); Violation.Seed replays each.
	Violations []Violation
}

// OK reports a clean campaign.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String renders the summary, one stanza per violation.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign: scheme=%s algorithm=%s seed=%d executions=%d rounds=%d violations=%d",
		r.Scheme, r.Algorithm, r.Seed, r.Executions, r.Rounds, len(r.Violations))
	for i := range r.Violations {
		fmt.Fprintf(&b, "\n%s", r.Violations[i])
	}
	return b.String()
}

// RunCampaign executes Config.Executions seeded random executions of the
// algorithm under scenarios sampled from the scheme, each with panic
// isolation and an optional wall-clock deadline, checking every trace
// with the watchdog. The first violation is minimized by the shrinker.
func RunCampaign(cfg Config) (*Report, error) {
	return RunCampaignCtx(context.Background(), cfg)
}

// RunCampaignCtx is RunCampaign under a campaign-wide context: the
// context is re-checked between executions (and is the parent of every
// per-execution deadline), so cancellation aborts a sweep promptly
// rather than only at the end. On cancellation the partial report of the
// executions that did complete is returned together with ctx.Err();
// Report.Executions then reflects the truncated count.
func RunCampaignCtx(ctx context.Context, cfg Config) (*Report, error) {
	cfg.defaults()
	if cfg.Scheme == nil || cfg.Algo.New == nil {
		return nil, fmt.Errorf("chaos: campaign needs a scheme and an algorithm")
	}
	rep := &Report{
		Scheme:     cfg.Scheme.Name(),
		Algorithm:  cfg.Algo.Name,
		Seed:       cfg.Seed,
		Executions: cfg.Executions,
	}
	invariant := cfg.CheckInvariant && cfg.Algo.Witness != nil

	for i := 0; i < cfg.Executions && len(rep.Violations) < cfg.MaxViolations; i++ {
		if err := ctx.Err(); err != nil {
			rep.Executions = i
			return rep, err
		}
		execSeed := DeriveSeed(cfg.Seed, i)
		rng := NewRand(execSeed)
		sc, ok := cfg.Scheme.SampleScenario(rng, 1+rng.Intn(cfg.MaxPrefix))
		if !ok {
			return nil, fmt.Errorf("chaos: scheme %s has no member scenarios", cfg.Scheme.Name())
		}
		inputs := [2]sim.Value{sim.Value(rng.Intn(2)), sim.Value(rng.Intn(2))}

		ht := runOnce(ctx, cfg, sc, inputs)
		rep.Rounds += int64(ht.Rounds)
		prop, detail, bad := classifyTwoProcess(ht)
		if !bad && invariant && sc.InGamma() {
			if d, ok := CheckAWInvariant(cfg.Algo.Witness, inputs, sc, cfg.MaxRounds); !ok {
				prop, detail, bad = PropInvariant, d, true
			}
		}
		if !bad {
			continue
		}
		v := Violation{
			Property:  prop,
			Detail:    detail,
			Scheme:    cfg.Scheme.Name(),
			Algorithm: cfg.Algo.Name,
			Scenario:  sc,
			Played:    ht.Played,
			Inputs:    inputs[:],
			Seed:      execSeed,
			Execution: i,
			Trace:     ht.Trace.String(),
		}
		if !cfg.NoShrink {
			repro := func(cand omission.Scenario) (Property, bool) {
				h := runOnce(ctx, cfg, cand, inputs)
				p, _, b := classifyTwoProcess(h)
				if !b && invariant && cand.InGamma() {
					if _, ok := CheckAWInvariant(cfg.Algo.Witness, inputs, cand, cfg.MaxRounds); !ok {
						return PropInvariant, true
					}
				}
				return p, b
			}
			if min, ok := Shrink(cfg.Scheme, ht.Played, prop, repro); ok {
				v.Minimized = true
				v.MinScenario = min
			}
		}
		rep.Violations = append(rep.Violations, v)
	}
	return rep, nil
}

// runOnce executes one hardened run of the algorithm under the scenario.
// The campaign context is the parent of the per-execution deadline, so a
// campaign-wide cancellation also interrupts a running execution at its
// next round boundary.
func runOnce(ctx context.Context, cfg Config, sc omission.Scenario, inputs [2]sim.Value) sim.HardenedTrace {
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	white, black := cfg.Algo.New()
	return sim.RunHardenedScenario(ctx, white, black, inputs, sc, cfg.MaxRounds)
}
