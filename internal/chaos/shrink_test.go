package chaos

import (
	"testing"

	"repro/internal/omission"
	"repro/internal/scheme"
)

// TestShrinkFindsShortestPrefix drives the shrinker with a synthetic
// reproducer that trips whenever the scenario contains a 'w' within the
// first five rounds — the minimal reproduction is then the single word
// "w" (or a shorter clean prefix whose completion supplies it, which R1's
// clean completion never does).
func TestShrinkFindsShortestPrefix(t *testing.T) {
	s := scheme.R1()
	repro := func(sc omission.Scenario) (Property, bool) {
		for r := 0; r < 5; r++ {
			if sc.At(r) == omission.LossWhite {
				return PropTermination, true
			}
		}
		return "", false
	}
	played := omission.MustWord("..b.w.b..w")
	min, ok := Shrink(s, played, PropTermination, repro)
	if !ok {
		t.Fatal("shrinker failed to reproduce at all")
	}
	if got, want := min.Prefix().String(), "....w"; got != want {
		t.Fatalf("minimized prefix = %q, want %q (shortest prefix keeping the round-5 'w', 'b's simplified away)", got, want)
	}
	// Soundness: the returned scenario itself reproduces.
	if _, bad := repro(min); !bad {
		t.Fatal("minimized scenario does not reproduce the violation")
	}
}

// TestShrinkSimplifiesLetters checks phase 2: letters irrelevant to the
// failure are rewritten to '.'.
func TestShrinkSimplifiesLetters(t *testing.T) {
	s := scheme.R1()
	// Trips iff round 1 and round 3 both lose white's message.
	repro := func(sc omission.Scenario) (Property, bool) {
		if sc.At(0) == omission.LossWhite && sc.At(2) == omission.LossWhite {
			return PropAgreement, true
		}
		return "", false
	}
	played := omission.MustWord("wbwbw")
	min, ok := Shrink(s, played, PropAgreement, repro)
	if !ok {
		t.Fatal("shrinker failed to reproduce")
	}
	if got, want := min.Prefix().String(), "w.w"; got != want {
		t.Fatalf("minimized prefix = %q, want %q", got, want)
	}
}

// TestShrinkAlreadyMinimal drives the greedy loop's lower boundary: the
// played word is a single letter that is itself the minimal reproduction.
// Phase 1 must keep it (the empty prefix's clean completion does not
// reproduce), and phase 2 must fail to simplify its only letter — the
// shrinker returns the input unchanged instead of looping or degrading.
func TestShrinkAlreadyMinimal(t *testing.T) {
	s := scheme.R1()
	repro := func(sc omission.Scenario) (Property, bool) {
		if sc.At(0) == omission.LossWhite {
			return PropAgreement, true
		}
		return "", false
	}
	played := omission.MustWord("w")
	min, ok := Shrink(s, played, PropAgreement, repro)
	if !ok {
		t.Fatal("shrinker failed on an already-minimal counterexample")
	}
	if got := min.Prefix().String(); got != "w" {
		t.Fatalf("minimized prefix = %q, want it untouched (%q)", got, "w")
	}
	if _, bad := repro(min); !bad {
		t.Fatal("returned scenario does not reproduce")
	}
}

// TestShrinkEmptyPrefixReproduces drives the other boundary: the failure
// does not depend on the played word at all (e.g. an algorithm bug that
// trips on every execution). The shortest reproducing prefix is then the
// empty word, and the shrinker must return its deterministic clean
// completion rather than skipping l=0 in the greedy loop.
func TestShrinkEmptyPrefixReproduces(t *testing.T) {
	s := scheme.R1()
	repro := func(omission.Scenario) (Property, bool) { return PropTermination, true }
	min, ok := Shrink(s, omission.MustWord("wbwb"), PropTermination, repro)
	if !ok {
		t.Fatal("shrinker failed on an unconditional reproducer")
	}
	if got := min.Prefix().Len(); got != 0 {
		t.Fatalf("minimized prefix has length %d, want 0 (empty prefix already reproduces)", got)
	}
	if lossy, lost := min.Prefix().CountLosses(); lossy != 0 || lost != 0 {
		t.Fatalf("empty-prefix completion should be loss-free, got %d lossy rounds / %d lost messages", lossy, lost)
	}
}

// TestShrinkSingleRoundFailure pins the single-round case end to end: a
// violation that requires exactly one specific first-round letter ('b')
// shrinks to the one-letter prefix "b" from a longer, noisier play.
func TestShrinkSingleRoundFailure(t *testing.T) {
	s := scheme.R1()
	repro := func(sc omission.Scenario) (Property, bool) {
		if sc.At(0) == omission.LossBlack {
			return PropValidity, true
		}
		return "", false
	}
	min, ok := Shrink(s, omission.MustWord("b.wb.w"), PropValidity, repro)
	if !ok {
		t.Fatal("shrinker failed")
	}
	if got := min.Prefix().String(); got != "b" {
		t.Fatalf("minimized prefix = %q, want %q", got, "b")
	}
}

// TestShrinkReportsFailureWhenNotReproducible: a reproducer that never
// trips makes Shrink return ok=false rather than an arbitrary scenario.
func TestShrinkReportsFailureWhenNotReproducible(t *testing.T) {
	s := scheme.R1()
	repro := func(omission.Scenario) (Property, bool) { return "", false }
	if _, ok := Shrink(s, omission.MustWord("wbw"), PropAgreement, repro); ok {
		t.Fatal("shrinker claimed to reproduce an unreproducible violation")
	}
}

// TestShrinkRequiresMatchingProperty: a candidate that breaks a
// *different* property is not accepted as a reproduction.
func TestShrinkRequiresMatchingProperty(t *testing.T) {
	s := scheme.R1()
	repro := func(sc omission.Scenario) (Property, bool) {
		// Everything trips, but short prefixes trip a different property.
		if sc.Prefix().Len() >= 3 {
			return PropAgreement, true
		}
		return PropTermination, true
	}
	min, ok := Shrink(s, omission.MustWord("wbwb"), PropAgreement, repro)
	if !ok {
		t.Fatal("shrinker failed")
	}
	if p, _ := repro(min); p != PropAgreement {
		t.Fatalf("minimized scenario reproduces %s, want %s", p, PropAgreement)
	}
}
