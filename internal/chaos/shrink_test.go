package chaos

import (
	"testing"

	"repro/internal/omission"
	"repro/internal/scheme"
)

// TestShrinkFindsShortestPrefix drives the shrinker with a synthetic
// reproducer that trips whenever the scenario contains a 'w' within the
// first five rounds — the minimal reproduction is then the single word
// "w" (or a shorter clean prefix whose completion supplies it, which R1's
// clean completion never does).
func TestShrinkFindsShortestPrefix(t *testing.T) {
	s := scheme.R1()
	repro := func(sc omission.Scenario) (Property, bool) {
		for r := 0; r < 5; r++ {
			if sc.At(r) == omission.LossWhite {
				return PropTermination, true
			}
		}
		return "", false
	}
	played := omission.MustWord("..b.w.b..w")
	min, ok := Shrink(s, played, PropTermination, repro)
	if !ok {
		t.Fatal("shrinker failed to reproduce at all")
	}
	if got, want := min.Prefix().String(), "....w"; got != want {
		t.Fatalf("minimized prefix = %q, want %q (shortest prefix keeping the round-5 'w', 'b's simplified away)", got, want)
	}
	// Soundness: the returned scenario itself reproduces.
	if _, bad := repro(min); !bad {
		t.Fatal("minimized scenario does not reproduce the violation")
	}
}

// TestShrinkSimplifiesLetters checks phase 2: letters irrelevant to the
// failure are rewritten to '.'.
func TestShrinkSimplifiesLetters(t *testing.T) {
	s := scheme.R1()
	// Trips iff round 1 and round 3 both lose white's message.
	repro := func(sc omission.Scenario) (Property, bool) {
		if sc.At(0) == omission.LossWhite && sc.At(2) == omission.LossWhite {
			return PropAgreement, true
		}
		return "", false
	}
	played := omission.MustWord("wbwbw")
	min, ok := Shrink(s, played, PropAgreement, repro)
	if !ok {
		t.Fatal("shrinker failed to reproduce")
	}
	if got, want := min.Prefix().String(), "w.w"; got != want {
		t.Fatalf("minimized prefix = %q, want %q", got, want)
	}
}

// TestShrinkReportsFailureWhenNotReproducible: a reproducer that never
// trips makes Shrink return ok=false rather than an arbitrary scenario.
func TestShrinkReportsFailureWhenNotReproducible(t *testing.T) {
	s := scheme.R1()
	repro := func(omission.Scenario) (Property, bool) { return "", false }
	if _, ok := Shrink(s, omission.MustWord("wbw"), PropAgreement, repro); ok {
		t.Fatal("shrinker claimed to reproduce an unreproducible violation")
	}
}

// TestShrinkRequiresMatchingProperty: a candidate that breaks a
// *different* property is not accepted as a reproduction.
func TestShrinkRequiresMatchingProperty(t *testing.T) {
	s := scheme.R1()
	repro := func(sc omission.Scenario) (Property, bool) {
		// Everything trips, but short prefixes trip a different property.
		if sc.Prefix().Len() >= 3 {
			return PropAgreement, true
		}
		return PropTermination, true
	}
	min, ok := Shrink(s, omission.MustWord("wbwb"), PropAgreement, repro)
	if !ok {
		t.Fatal("shrinker failed")
	}
	if p, _ := repro(min); p != PropAgreement {
		t.Fatalf("minimized scenario reproduces %s, want %s", p, PropAgreement)
	}
}
