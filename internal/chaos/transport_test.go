package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFaultyTransportDeterministicFromSeed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	outcomes := func(seed int64) []string {
		ft := &FaultyTransport{Seed: seed, Faults: TransportFaults{DropProb: 0.3, Err500Prob: 0.3}}
		client := &http.Client{Transport: ft}
		var out []string
		for i := 0; i < 40; i++ {
			resp, err := client.Get(ts.URL)
			switch {
			case err != nil:
				out = append(out, "drop")
			case resp.StatusCode == http.StatusInternalServerError:
				resp.Body.Close()
				out = append(out, "500")
			default:
				resp.Body.Close()
				out = append(out, "ok")
			}
		}
		return out
	}

	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: same seed diverged: %s vs %s", i, a[i], b[i])
		}
	}
	// A different seed must produce a different schedule (overwhelmingly
	// likely over 40 requests at these probabilities).
	c := outcomes(1)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatal("seeds 42 and 1 produced identical fault schedules")
	}
	// And the faults must actually fire.
	if !strings.Contains(strings.Join(a, ","), "drop") || !strings.Contains(strings.Join(a, ","), "500") {
		t.Fatalf("fault mix missing drop or 500: %v", a)
	}
}

func TestFaultyTransportDelayHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	ft := &FaultyTransport{Seed: 7, Faults: TransportFaults{DelayProb: 1, Delay: time.Minute}}
	client := &http.Client{Transport: ft}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("delayed request succeeded despite expired context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context cancellation took %s; the delay was not context-aware", elapsed)
	}
	if ft.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", ft.Injected())
	}
}

func TestFaultyTransportSlowBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer ts.Close()

	ft := &FaultyTransport{Seed: 3, Faults: TransportFaults{SlowBodyProb: 1, SlowBodyDelay: 10 * time.Millisecond}}
	client := &http.Client{Transport: ft}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "payload" {
		t.Fatalf("slow body corrupted payload: %q", b)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("slow body read finished in %s; throttle did not engage", elapsed)
	}
}
