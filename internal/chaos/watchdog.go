package chaos

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/sim"
)

// Property names the guarantee a violation broke.
type Property string

// The checked properties, in reporting priority order: an absorbed panic
// or an expired deadline explains any downstream consensus-property
// failure, so it is reported instead.
const (
	PropPanic       Property = "panic"
	PropDeadline    Property = "deadline"
	PropAgreement   Property = "agreement"
	PropValidity    Property = "validity"
	PropTermination Property = "termination"
	PropInvariant   Property = "invariant" // Proposition III.12
)

// Violation is the structured report of one failed execution: which
// property broke, under which scenario and inputs, and the seed that
// replays it exactly.
type Violation struct {
	// Property is the broken guarantee.
	Property Property
	// Detail is the human-readable specifics (checker message, panic
	// diagnostic first line, …).
	Detail string
	// Scheme names the environment the execution ran under.
	Scheme string
	// Algorithm names the algorithm under test.
	Algorithm string
	// Scenario is the sampled scenario of the failing execution.
	Scenario omission.Scenario
	// Played is the letter prefix actually executed before the run ended.
	Played omission.Word
	// Inputs are the initial values (two entries for the two-process
	// kernel, n for a network execution).
	Inputs []sim.Value
	// Seed replays this execution: it is the per-execution seed derived
	// from the campaign seed, stamped so the report is reproducible on
	// its own.
	Seed int64
	// Execution is the index within the campaign.
	Execution int
	// Minimized is set once the shrinker ran; MinScenario is then the
	// smallest scenario found that still reproduces Property.
	Minimized   bool
	MinScenario omission.Scenario
	// Trace is the failing execution's trace summary.
	Trace string
}

// String renders the violation as a one-stanza report.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "violation: %s\n", v.Property)
	fmt.Fprintf(&b, "  scheme=%s algorithm=%s seed=%d execution=%d\n", v.Scheme, v.Algorithm, v.Seed, v.Execution)
	if len(v.Scenario.Period()) > 0 {
		fmt.Fprintf(&b, "  scenario=%s played=%s\n", v.Scenario, v.Played)
	}
	if v.Minimized {
		fmt.Fprintf(&b, "  minimized=%s\n", v.MinScenario)
	}
	fmt.Fprintf(&b, "  inputs=%v\n", v.Inputs)
	if v.Trace != "" {
		fmt.Fprintf(&b, "  trace: %s\n", v.Trace)
	}
	fmt.Fprintf(&b, "  detail: %s", v.Detail)
	return b.String()
}

// classifyTwoProcess inspects a hardened two-process trace and returns
// the broken property, if any.
func classifyTwoProcess(ht sim.HardenedTrace) (Property, string, bool) {
	if len(ht.Crashes) > 0 {
		parts := make([]string, len(ht.Crashes))
		for i, c := range ht.Crashes {
			parts[i] = c.String()
		}
		return PropPanic, strings.Join(parts, "; "), true
	}
	if ht.Interrupted {
		return PropDeadline, fmt.Sprintf("run interrupted after %d rounds: %v", ht.Rounds, ht.Err), true
	}
	rep := sim.Check(ht.Trace)
	switch {
	case !rep.Agreement:
		return PropAgreement, strings.Join(rep.Violations, "; "), true
	case !rep.Validity:
		return PropValidity, strings.Join(rep.Violations, "; "), true
	case !rep.Terminated:
		return PropTermination, strings.Join(rep.Violations, "; "), true
	}
	return "", "", false
}

// CheckAWInvariant runs the pair A_w under the scenario and verifies the
// Proposition III.12 knowledge invariant after every round in which
// neither process has halted:
//
//	|ind_W − ind_B| = 1,
//	sign(ind_B − ind_W) = (−1)^ind(v),
//	ind(v) = min(ind_W, ind_B),
//
// for the actually-played prefix v. It reports the first violated
// equation, or ok=true when the run (which must itself be over Γ)
// maintains the invariant throughout.
func CheckAWInvariant(witness omission.Source, inputs [2]sim.Value, sc omission.Source, maxRounds int) (detail string, ok bool) {
	white, black := consensus.NewAW(witness), consensus.NewAW(witness)
	white.Init(sim.White, inputs[0])
	black.Init(sim.Black, inputs[1])
	vInd := omission.NewIndexTracker()
	var played omission.Word
	one := big.NewInt(1)
	for r := 1; r <= maxRounds; r++ {
		letter := sc.At(r - 1)
		played = append(played, letter)

		wMsg, wOK := white.Send(r)
		bMsg, bOK := black.Send(r)
		var toWhite, toBlack sim.Message
		if bOK && !letter.LostBlack() {
			toWhite = bMsg
		}
		if wOK && !letter.LostWhite() {
			toBlack = wMsg
		}
		if wOK {
			if err := white.ReceiveChecked(r, toWhite); err != nil {
				return fmt.Sprintf("round %d of %v: white: %v", r, played, err), false
			}
		}
		if bOK {
			if err := black.ReceiveChecked(r, toBlack); err != nil {
				return fmt.Sprintf("round %d of %v: black: %v", r, played, err), false
			}
		}
		if _, err := vInd.StepChecked(letter); err != nil {
			return fmt.Sprintf("round %d of %v: %v", r, played, err), false
		}

		if !white.Halted() && !black.Halted() {
			iw, ib := white.Index(), black.Index()
			diff := new(big.Int).Sub(ib, iw)
			if diff.CmpAbs(one) != 0 {
				return fmt.Sprintf("round %d of %v: |ind_B−ind_W| = %v, want 1", r, played, diff), false
			}
			wantSign := 1
			if vInd.Parity() == 1 {
				wantSign = -1
			}
			if diff.Sign() != wantSign {
				return fmt.Sprintf("round %d of %v: sign(ind_B−ind_W)=%d, want (−1)^ind(v)=%d", r, played, diff.Sign(), wantSign), false
			}
			minInd := iw
			if ib.Cmp(iw) < 0 {
				minInd = ib
			}
			if minInd.Cmp(vInd.Peek()) != 0 {
				return fmt.Sprintf("round %d of %v: min(ind)=%v, ind(v)=%v", r, played, minInd, vInd.Peek()), false
			}
		}

		wDone := func() bool { _, d := white.Decision(); return d }()
		bDone := func() bool { _, d := black.Decision(); return d }()
		if wDone && bDone {
			return "", true
		}
	}
	// Non-termination is the termination watchdog's finding, not the
	// invariant's: the invariant held on every round we saw.
	return "", true
}
