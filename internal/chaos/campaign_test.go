package chaos

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/omission"
	"repro/internal/scheme"
	"repro/internal/sim"
)

// TestChaosCampaignSevenEnvironments is the headline acceptance test: at
// least 10k seeded random A_w executions spread over the seven Section IV
// environments complete with zero violations — and zero leaked
// goroutines. The two obstructions (R1, S2) have no algorithm to run by
// Theorem III.8; the campaign verifies that refusal instead.
func TestChaosCampaignSevenEnvironments(t *testing.T) {
	perScheme := 2000 // 5 solvable schemes × 2000 = 10k executions
	if testing.Short() {
		perScheme = 100
	}
	before := runtime.NumGoroutine()

	solvable := 0
	for _, s := range scheme.SevenEnvironments() {
		algo, err := AWForScheme(s)
		if err != nil {
			if s.Name() != "R1" && s.Name() != "S2" {
				t.Fatalf("AWForScheme(%s): %v", s.Name(), err)
			}
			if !strings.Contains(err.Error(), "obstruction") {
				t.Fatalf("AWForScheme(%s): want obstruction error, got %v", s.Name(), err)
			}
			continue
		}
		solvable++
		rep, err := RunCampaign(Config{
			Scheme:         s,
			Algo:           algo,
			Executions:     perScheme,
			Seed:           0xC0FFEE ^ int64(solvable),
			CheckInvariant: true,
			Deadline:       30 * time.Second,
		})
		if err != nil {
			t.Fatalf("campaign on %s: %v", s.Name(), err)
		}
		if !rep.OK() {
			t.Errorf("campaign on %s found violations:\n%s", s.Name(), rep)
		}
		if rep.Rounds == 0 {
			t.Errorf("campaign on %s executed zero rounds", s.Name())
		}
	}
	if solvable != 5 {
		t.Fatalf("expected 5 solvable environments, got %d", solvable)
	}

	checkNoLeakedGoroutines(t, before)
}

func checkNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("leaked goroutines: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// firstCleanExchangeAlgo wraps the deliberately-unsound algorithm for
// single-omission schemes: FirstCleanExchange assumes receptions are
// common knowledge, which only holds on the all-or-nothing channel.
func firstCleanExchangeAlgo(deadline int) Algorithm {
	return Algorithm{
		Name: "FirstCleanExchange",
		New: func() (sim.Process, sim.Process) {
			return &consensus.FirstCleanExchange{Deadline: deadline},
				&consensus.FirstCleanExchange{Deadline: deadline}
		},
	}
}

// TestFirstCleanExchangeViolationMinimized runs the known-bad algorithm
// on S1 and demands a minimized, seed-stamped, reproducible violation.
func TestFirstCleanExchangeViolationMinimized(t *testing.T) {
	s := scheme.S1()
	cfg := Config{
		Scheme:     s,
		Algo:       firstCleanExchangeAlgo(0),
		Executions: 200,
		Seed:       1,
		MaxRounds:  40,
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("FirstCleanExchange on S1 produced no violation; it is unsound there")
	}
	v := rep.Violations[0]
	if v.Property != PropTermination {
		t.Fatalf("violation property = %s, want %s", v.Property, PropTermination)
	}
	if !v.Minimized {
		t.Fatalf("violation was not minimized: %s", v)
	}
	// The minimal reproduction is a single lost message followed by the
	// clean tail: one omission starves the unlucky process forever.
	if lossy, lost := v.MinScenario.Prefix().CountLosses(); lossy != 1 || lost != 1 {
		t.Errorf("minimized scenario %s: want exactly one lost message in prefix, got %d rounds/%d messages",
			v.MinScenario, lossy, lost)
	}
	if v.Seed == 0 && v.Execution == 0 {
		t.Error("violation carries no replay seed")
	}

	// The stamped seed replays the identical failing execution.
	rng := NewRand(v.Seed)
	sc, ok := s.SampleScenario(rng, 1+rng.Intn(8))
	if !ok {
		t.Fatal("replay: sampling failed")
	}
	if !sc.Equal(v.Scenario) {
		t.Fatalf("replay scenario %s differs from reported %s", sc, v.Scenario)
	}
	inputs := [2]sim.Value{sim.Value(rng.Intn(2)), sim.Value(rng.Intn(2))}
	if inputs[0] != v.Inputs[0] || inputs[1] != v.Inputs[1] {
		t.Fatalf("replay inputs %v differ from reported %v", inputs, v.Inputs)
	}
	ht := runOnce(context.Background(), cfg, sc, inputs)
	if p, _, bad := classifyTwoProcess(ht); !bad || p != v.Property {
		t.Fatalf("replay did not reproduce %s (bad=%v prop=%s)", v.Property, bad, p)
	}
}

// TestInvariantWatchdog exercises both sides of the Proposition III.12
// checker: a Γ-run of a matched A_w pair maintains the invariant, and a
// run leaving Γ (double omission) is rejected with a diagnostic.
func TestInvariantWatchdog(t *testing.T) {
	good := omission.MustScenario("(w)")
	if d, ok := CheckAWInvariant(good, [2]sim.Value{0, 1}, omission.MustScenario("(.)"), 50); !ok {
		t.Fatalf("invariant should hold for matching witness: %s", d)
	}
	if d, ok := CheckAWInvariant(good, [2]sim.Value{0, 1}, omission.MustScenario("wb.w(.)"), 50); !ok {
		t.Fatalf("invariant should hold on a Γ scenario with omissions: %s", d)
	}
	d, ok := CheckAWInvariant(good, [2]sim.Value{0, 1}, omission.MustScenario("x(.)"), 50)
	if ok {
		t.Fatal("double-omission run passed the Γ-only invariant checker")
	}
	if !strings.Contains(d, "double omission") {
		t.Fatalf("diagnostic should name the double omission, got %q", d)
	}
}

// TestCampaignCatchesMismatchedPair runs an A_w pair whose halves
// disagree about the excluded scenario — white excludes (w), black
// excludes (b). Their indices stop bracketing ind(v) and the consensus
// properties (and thus some watchdog) must trip.
func TestCampaignCatchesMismatchedPair(t *testing.T) {
	bad := Algorithm{
		Name: "A_w[mismatched pair]",
		New: func() (sim.Process, sim.Process) {
			return consensus.NewAW(omission.MustScenario("(w)")), consensus.NewAW(omission.MustScenario("(b)"))
		},
	}
	rep, err := RunCampaign(Config{
		Scheme:     scheme.S1(),
		Algo:       bad,
		Executions: 300,
		Seed:       7,
		MaxRounds:  60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("mismatched-witness A_w pair passed every watchdog; expected a violation")
	}
}

// panicAt is a process that panics inside Receive at a given round.
type panicAt struct {
	consensus.FirstCleanExchange
	round int
}

func (p *panicAt) Receive(r int, msg sim.Message) {
	if r == p.round {
		panic("injected fault: receive exploded")
	}
	p.FirstCleanExchange.Receive(r, msg)
}

// TestPanicIsolationTwoProcess checks that a process panicking mid-round
// fails only its own trace — recorded as a crash with a diagnostic — and
// never the test process.
func TestPanicIsolationTwoProcess(t *testing.T) {
	algo := Algorithm{
		Name: "panics-at-1",
		New: func() (sim.Process, sim.Process) {
			return &panicAt{round: 1}, &consensus.FirstCleanExchange{Deadline: 5}
		},
	}
	rep, err := RunCampaign(Config{
		Scheme:     scheme.S0(),
		Algo:       algo,
		Executions: 5,
		Seed:       3,
		MaxRounds:  10,
		NoShrink:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("panicking algorithm produced no violation")
	}
	v := rep.Violations[0]
	if v.Property != PropPanic {
		t.Fatalf("property = %s, want %s", v.Property, PropPanic)
	}
	if !strings.Contains(v.Detail, "receive exploded") {
		t.Fatalf("diagnostic does not carry the panic value: %q", v.Detail)
	}
}

// slowProcess blocks in Send long enough to blow any reasonable deadline
// and never decides, so only the deadline can end the run.
type slowProcess struct{}

func (s *slowProcess) Init(sim.ID, sim.Value) {}
func (s *slowProcess) Send(r int) (sim.Message, bool) {
	time.Sleep(50 * time.Millisecond)
	return sim.Value(0), true
}
func (s *slowProcess) Receive(int, sim.Message)    {}
func (s *slowProcess) Decision() (sim.Value, bool) { return sim.None, false }

// TestDeadlineEnforcement checks that a wall-clock deadline interrupts a
// slow execution and is reported as a deadline violation.
func TestDeadlineEnforcement(t *testing.T) {
	algo := Algorithm{
		Name: "sleeper",
		New: func() (sim.Process, sim.Process) {
			return &slowProcess{}, &slowProcess{}
		},
	}
	rep, err := RunCampaign(Config{
		Scheme:     scheme.S0(),
		Algo:       algo,
		Executions: 1,
		MaxRounds:  1000,
		Deadline:   20 * time.Millisecond,
		NoShrink:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("deadline did not fire")
	}
	if got := rep.Violations[0].Property; got != PropDeadline {
		t.Fatalf("property = %s, want %s", got, PropDeadline)
	}
}

// TestCampaignCancelBetweenExecutions cancels the campaign context from
// inside the algorithm factory after N instantiations and asserts the
// sweep aborts promptly: the partial report stops at exactly N
// executions and the campaign surfaces ctx.Err() — the context is
// re-checked between executions, not just when the sweep ends.
func TestCampaignCancelBetweenExecutions(t *testing.T) {
	const cancelAfter = 7
	s := scheme.S1()
	base, err := AWForScheme(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	built := 0
	counting := Algorithm{
		Name: base.Name,
		New: func() (sim.Process, sim.Process) {
			built++
			if built == cancelAfter {
				cancel()
			}
			return base.New()
		},
		Witness: base.Witness,
	}
	rep, err := RunCampaignCtx(ctx, Config{
		Scheme:     s,
		Algo:       counting,
		Executions: 10_000,
		Seed:       42,
		NoShrink:   true,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled campaign returned no partial report")
	}
	if rep.Executions != cancelAfter {
		t.Fatalf("partial report counts %d executions, want %d (cancel must stop the very next execution)",
			rep.Executions, cancelAfter)
	}
	if built != cancelAfter {
		t.Fatalf("factory ran %d times after cancellation, want %d", built, cancelAfter)
	}
}

// TestCampaignIsDeterministic replays the same seed twice and compares
// reports.
func TestCampaignIsDeterministic(t *testing.T) {
	run := func() *Report {
		s := scheme.S1()
		algo, err := AWForScheme(s)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunCampaign(Config{Scheme: s, Algo: algo, Executions: 50, Seed: 99, CheckInvariant: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", a, b)
	}
}
