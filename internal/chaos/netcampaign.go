package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// NetConfig parameterizes a network chaos campaign (Section V setting:
// flooding or any node algorithm on a graph under budgeted mobile
// omissions).
type NetConfig struct {
	// Graph is the communication network.
	Graph *graph.Graph
	// NewNodes returns fresh nodes for one execution.
	NewNodes func() []netsim.Node
	// AlgorithmName labels reports.
	AlgorithmName string
	// Executions is the number of seeded executions (default 200).
	Executions int
	// Seed is the campaign master seed.
	Seed int64
	// MaxLossesPerRound is the adversary budget f; the default (and the
	// largest value with a consensus guarantee, Theorem V.1) is c(G)−1.
	MaxLossesPerRound int
	// MaxRounds caps each execution (default n+2 for flooding).
	MaxRounds int
	// Deadline is the per-execution wall-clock budget (0 = none).
	Deadline time.Duration
	// Goroutines selects the CSP runner (one goroutine per node) instead
	// of the sequential one.
	Goroutines bool
	// MaxViolations stops the campaign early (default 8).
	MaxViolations int
}

func (c *NetConfig) defaults() {
	if c.Executions <= 0 {
		c.Executions = 200
	}
	if c.MaxLossesPerRound <= 0 {
		c.MaxLossesPerRound = c.Graph.EdgeConnectivity() - 1
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = c.Graph.N() + 2
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 8
	}
	if c.AlgorithmName == "" {
		c.AlgorithmName = "flood"
	}
}

// RunNetworkCampaign executes seeded random executions of the node
// algorithm on the graph under randomly composed, budget-respecting
// fault injectors, checking uniform consensus on every trace. Panics
// crash-stop single nodes; deadlines bound every execution.
func RunNetworkCampaign(cfg NetConfig) (*Report, error) {
	return RunNetworkCampaignCtx(context.Background(), cfg)
}

// RunNetworkCampaignCtx is RunNetworkCampaign under a campaign-wide
// context, re-checked between executions and parented under every
// per-execution deadline. On cancellation the partial report is returned
// together with ctx.Err(), Report.Executions truncated to the count that
// actually ran.
func RunNetworkCampaignCtx(ctx context.Context, cfg NetConfig) (*Report, error) {
	if cfg.Graph == nil || cfg.NewNodes == nil {
		return nil, fmt.Errorf("chaos: network campaign needs a graph and a node factory")
	}
	cfg.defaults()
	if cfg.MaxLossesPerRound >= cfg.Graph.EdgeConnectivity() {
		return nil, fmt.Errorf("chaos: budget f=%d ≥ c(G)=%d — consensus is unsolvable by Theorem V.1, a campaign would only report the theorem",
			cfg.MaxLossesPerRound, cfg.Graph.EdgeConnectivity())
	}
	rep := &Report{
		Scheme:     fmt.Sprintf("%s,f=%d", cfg.Graph.Name(), cfg.MaxLossesPerRound),
		Algorithm:  cfg.AlgorithmName,
		Seed:       cfg.Seed,
		Executions: cfg.Executions,
	}
	n := cfg.Graph.N()
	for i := 0; i < cfg.Executions && len(rep.Violations) < cfg.MaxViolations; i++ {
		if err := ctx.Err(); err != nil {
			rep.Executions = i
			return rep, err
		}
		execSeed := DeriveSeed(cfg.Seed, i)
		rng := NewRand(execSeed)
		inputs := make([]netsim.Value, n)
		for j := range inputs {
			inputs[j] = netsim.Value(rng.Intn(2))
		}
		adv := randomInjector(rng, cfg.Graph, cfg.MaxLossesPerRound)

		execCtx := ctx
		var cancel context.CancelFunc
		if cfg.Deadline > 0 {
			execCtx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		}
		var ht netsim.HardenedTrace
		if cfg.Goroutines {
			ht = netsim.RunGoroutinesHardened(execCtx, cfg.Graph, cfg.NewNodes(), inputs, adv, cfg.MaxRounds)
		} else {
			ht = netsim.RunHardened(execCtx, cfg.Graph, cfg.NewNodes(), inputs, adv, cfg.MaxRounds)
		}
		if cancel != nil {
			cancel()
		}
		rep.Rounds += int64(ht.Rounds)

		prop, detail, bad := classifyNetwork(ht)
		if !bad {
			continue
		}
		simInputs := make([]sim.Value, n)
		copy(simInputs, inputs)
		rep.Violations = append(rep.Violations, Violation{
			Property:  prop,
			Detail:    detail,
			Scheme:    rep.Scheme,
			Algorithm: cfg.AlgorithmName,
			Inputs:    simInputs,
			Seed:      execSeed,
			Execution: i,
			Trace:     ht.Trace.String(),
		})
	}
	return rep, nil
}

// classifyNetwork inspects a hardened network trace.
func classifyNetwork(ht netsim.HardenedTrace) (Property, string, bool) {
	if len(ht.Crashes) > 0 {
		parts := make([]string, len(ht.Crashes))
		for i, c := range ht.Crashes {
			parts[i] = c.String()
		}
		return PropPanic, strings.Join(parts, "; "), true
	}
	if ht.Interrupted {
		return PropDeadline, fmt.Sprintf("run interrupted after %d rounds: %v", ht.Rounds, ht.Err), true
	}
	rep := netsim.Check(ht.Trace)
	switch {
	case !rep.Agreement:
		return PropAgreement, strings.Join(rep.Violations, "; "), true
	case !rep.Validity:
		return PropValidity, strings.Join(rep.Violations, "; "), true
	case !rep.Terminated:
		return PropTermination, strings.Join(rep.Violations, "; "), true
	}
	return "", "", false
}

// randomInjector composes a budget-respecting adversary for one
// execution: a uniformly random dropper, a targeted cut dropper, or a
// bursty variant of either, every choice driven by the execution's rng.
func randomInjector(rng *rand.Rand, g *graph.Graph, f int) netsim.Adversary {
	var base netsim.Adversary
	switch rng.Intn(3) {
	case 0:
		base = RandomDrops{F: f, Rng: rng}
	case 1:
		if cut, ok := g.MinCut(); ok {
			base = netsim.TargetedCut{Cut: cut, F: f}
		} else {
			base = RandomDrops{F: f, Rng: rng}
		}
	default:
		base = Burst{Every: 2 + rng.Intn(3), Phase: rng.Intn(3), Inner: RandomDrops{F: f, Rng: rng}}
	}
	// The budget cap is belt and braces: every base above already
	// respects f, and the cap also exercises the combinator continuously.
	return &BudgetCap{Inner: base, Budget: 1 << 30, PerRound: f}
}
