package chaos

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/netsim"
)

// Network fault injectors. Each one implements netsim.Adversary by
// choosing a set of directed messages to drop per round; combinators
// compose them. Injectors model the mobile-omission view of failures
// (Godard–Peters): a "crashed" node is a node whose every message the
// adversary silences from some round on — the simulators themselves never
// need a failure notion beyond message loss.
//
// Stateful injectors (BudgetCap, Seq) assume the runner's calling
// convention: Drops is invoked exactly once per round, in round order.

// Crash silences a node from round Round on: every message it sends is
// dropped (crash-stop in the omission model). Messages *to* the node
// still flow — a crashed process may be unable to speak yet still
// listen; dropping its inputs too is Union(Crash, Isolate).
type Crash struct {
	Node  int
	Round int
}

// Drops implements netsim.Adversary.
func (c Crash) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	if r < c.Round {
		return nil
	}
	out := map[graph.DirEdge]bool{}
	for _, nb := range g.Neighbors(c.Node) {
		out[graph.DirEdge{From: c.Node, To: nb}] = true
	}
	return out
}

// Isolate cuts a node off from round Round on: every message sent to it
// is dropped.
type Isolate struct {
	Node  int
	Round int
}

// Drops implements netsim.Adversary.
func (c Isolate) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	if r < c.Round {
		return nil
	}
	out := map[graph.DirEdge]bool{}
	for _, nb := range g.Neighbors(c.Node) {
		out[graph.DirEdge{From: nb, To: c.Node}] = true
	}
	return out
}

// Blackout drops every message in rounds From..To (inclusive; To = 0
// means From only) — the network analogue of the all-or-nothing channel's
// 'x' letter, as a burst.
type Blackout struct {
	From, To int
}

// Drops implements netsim.Adversary.
func (b Blackout) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	to := b.To
	if to == 0 {
		to = b.From
	}
	if r < b.From || r > to {
		return nil
	}
	out := map[graph.DirEdge]bool{}
	for _, e := range g.Edges() {
		out[graph.DirEdge{From: e.U, To: e.V}] = true
		out[graph.DirEdge{From: e.V, To: e.U}] = true
	}
	return out
}

// RandomDrops drops up to F uniformly random directed messages per round,
// from an injected seeded source (the chaos-layer form of
// netsim.RandomF).
type RandomDrops struct {
	F   int
	Rng *rand.Rand
}

// Drops implements netsim.Adversary.
func (a RandomDrops) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	return netsim.RandomF{F: a.F, Rng: a.Rng}.Drops(r, g)
}

// Burst applies Inner only on rounds r with r ≡ Phase (mod Every); other
// rounds are loss-free. Every ≤ 1 degenerates to Inner itself.
type Burst struct {
	Every int
	Phase int
	Inner netsim.Adversary
}

// Drops implements netsim.Adversary.
func (b Burst) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	if b.Every > 1 && r%b.Every != b.Phase%b.Every {
		return nil
	}
	return b.Inner.Drops(r, g)
}

// Stage is one leg of a Seq: an adversary played for Rounds rounds
// (Rounds ≤ 0 on the last stage means forever).
type Stage struct {
	Rounds int
	Adv    netsim.Adversary
}

// Seq plays its stages in order; after the last stage it keeps playing
// it (or drops nothing if the last stage's Rounds expired and more stages
// do not exist — i.e. a finite schedule followed by silence).
type Seq struct {
	Stages []Stage

	round int
	idx   int
}

// NewSeq builds a sequential adversary schedule.
func NewSeq(stages ...Stage) *Seq { return &Seq{Stages: stages} }

// Drops implements netsim.Adversary. It is stateful: call once per round
// in order.
func (s *Seq) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	s.round++
	for s.idx < len(s.Stages) && s.Stages[s.idx].Rounds > 0 && s.round > s.cumulative(s.idx) {
		s.idx++
	}
	if s.idx >= len(s.Stages) {
		return nil
	}
	return s.Stages[s.idx].Adv.Drops(r, g)
}

func (s *Seq) cumulative(idx int) int {
	total := 0
	for i := 0; i <= idx && i < len(s.Stages); i++ {
		if s.Stages[i].Rounds <= 0 {
			return 1 << 30
		}
		total += s.Stages[i].Rounds
	}
	return total
}

// Union drops a message iff any member does.
type Union []netsim.Adversary

// Drops implements netsim.Adversary.
func (u Union) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	out := map[graph.DirEdge]bool{}
	for _, a := range u {
		for e := range a.Drops(r, g) {
			out[e] = true
		}
	}
	return out
}

// BudgetCap passes Inner's drops through until Budget total messages have
// been dropped across the whole execution, then truncates (deliveries
// resume). With PerRound > 0 it additionally caps each round — the O_f^ω
// budget of Section V, enforced on top of any inner adversary.
type BudgetCap struct {
	Inner    netsim.Adversary
	Budget   int
	PerRound int

	spent int
}

// Drops implements netsim.Adversary. It is stateful: call once per round
// in order.
func (b *BudgetCap) Drops(r int, g *graph.Graph) map[graph.DirEdge]bool {
	drops := b.Inner.Drops(r, g)
	if len(drops) == 0 {
		return drops
	}
	limit := b.Budget - b.spent
	if b.PerRound > 0 && b.PerRound < limit {
		limit = b.PerRound
	}
	if limit < 0 {
		limit = 0
	}
	if len(drops) > limit {
		// Deterministic truncation: keep the smallest edges in (From, To)
		// order so a capped adversary replays identically.
		kept := make([]graph.DirEdge, 0, len(drops))
		for e := range drops {
			kept = append(kept, e)
		}
		sortDirEdges(kept)
		drops = map[graph.DirEdge]bool{}
		for _, e := range kept[:limit] {
			drops[e] = true
		}
	}
	b.spent += len(drops)
	return drops
}

func sortDirEdges(es []graph.DirEdge) {
	// Insertion sort: drop sets are small (≤ E) and this avoids pulling in
	// sort for a tuple type.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && less(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func less(a, b graph.DirEdge) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
