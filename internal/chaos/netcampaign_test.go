package chaos

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/netconsensus"
	"repro/internal/netsim"
)

func floodNodes(n int) func() []netsim.Node {
	return func() []netsim.Node {
		nodes := make([]netsim.Node, n)
		for i := range nodes {
			nodes[i] = &netconsensus.FloodMin{}
		}
		return nodes
	}
}

// TestNetworkCampaignFloodClean runs flooding consensus on several graphs
// under seeded random injectors within the Theorem V.1 budget f = c(G)−1;
// both runners must come back with zero violations and zero leaked
// goroutines.
func TestNetworkCampaignFloodClean(t *testing.T) {
	execs := 300
	if testing.Short() {
		execs = 30
	}
	graphs := []*graph.Graph{graph.Complete(4), graph.Cycle(5), graph.CompleteBipartite(2, 3)}
	before := runtime.NumGoroutine()
	for _, g := range graphs {
		for _, goroutines := range []bool{false, true} {
			rep, err := RunNetworkCampaign(NetConfig{
				Graph:      g,
				NewNodes:   floodNodes(g.N()),
				Executions: execs,
				Seed:       int64(g.N()) * 1315423911,
				Goroutines: goroutines,
				Deadline:   30 * time.Second,
			})
			if err != nil {
				t.Fatalf("%s goroutines=%v: %v", g.Name(), goroutines, err)
			}
			if !rep.OK() {
				t.Errorf("%s goroutines=%v:\n%s", g.Name(), goroutines, rep)
			}
		}
	}
	checkNoLeakedGoroutines(t, before)
}

// TestNetworkCampaignRejectsUnsolvableBudget: f ≥ c(G) admits a partition
// and consensus is unsolvable (Theorem V.1) — the campaign refuses to
// pretend otherwise.
func TestNetworkCampaignRejectsUnsolvableBudget(t *testing.T) {
	g := graph.Cycle(4) // c(G) = 2
	_, err := RunNetworkCampaign(NetConfig{
		Graph:             g,
		NewNodes:          floodNodes(4),
		MaxLossesPerRound: 2,
	})
	if err == nil {
		t.Fatal("campaign accepted a budget at the edge connectivity")
	}
	if !strings.Contains(err.Error(), "unsolvable") {
		t.Fatalf("error should cite unsolvability: %v", err)
	}
}

// panicNode panics inside Send at a given round; otherwise it floods.
type panicNode struct {
	netconsensus.FloodMin
	round int
}

func (p *panicNode) Send(r int) map[int]netsim.Message {
	if r == p.round {
		panic("injected fault: node send exploded")
	}
	return p.FloodMin.Send(r)
}

// TestPanicIsolationNetwork is the acceptance check that a node panicking
// mid-round fails only its own trace: the goroutine runner records a
// crash diagnostic for that node, every other node still decides, and the
// test process survives. Also checks the sequential runner agrees.
func TestPanicIsolationNetwork(t *testing.T) {
	g := graph.Complete(4)
	newNodes := func() []netsim.Node {
		nodes := make([]netsim.Node, 4)
		for i := range nodes {
			if i == 2 {
				nodes[i] = &panicNode{round: 2}
			} else {
				nodes[i] = &netconsensus.FloodMin{}
			}
		}
		return nodes
	}
	inputs := []netsim.Value{3, 1, 0, 2}
	before := runtime.NumGoroutine()
	for _, goroutines := range []bool{true, false} {
		var ht netsim.HardenedTrace
		if goroutines {
			ht = netsim.RunGoroutinesHardened(context.Background(), g, newNodes(), inputs, netsim.NoDrops{}, g.N()+2)
		} else {
			ht = netsim.RunHardened(context.Background(), g, newNodes(), inputs, netsim.NoDrops{}, g.N()+2)
		}
		if len(ht.Crashes) != 1 {
			t.Fatalf("goroutines=%v: crashes = %v, want exactly node 2", goroutines, ht.Crashes)
		}
		c := ht.Crashes[0]
		if c.Node != 2 || c.Round != 2 {
			t.Fatalf("goroutines=%v: crash = %+v, want node 2 round 2", goroutines, c)
		}
		if !strings.Contains(c.Diag, "node send exploded") {
			t.Fatalf("goroutines=%v: diagnostic lost the panic value: %q", goroutines, c.Diag)
		}
		for i, d := range ht.Decisions {
			if i == 2 {
				continue
			}
			// Node 2 flooded its input in round 1 before crashing, so the
			// survivors still reach the true minimum.
			if d != 0 {
				t.Errorf("goroutines=%v: surviving node %d decided %v, want 0", goroutines, i, d)
			}
		}
	}
	checkNoLeakedGoroutines(t, before)
}

// TestNetworkCampaignReportsPanic runs the campaign over a fleet that
// always includes the panicking node and checks the violation is typed,
// stamped, and diagnostic-bearing.
func TestNetworkCampaignReportsPanic(t *testing.T) {
	g := graph.Complete(3)
	rep, err := RunNetworkCampaign(NetConfig{
		Graph: g,
		NewNodes: func() []netsim.Node {
			return []netsim.Node{&netconsensus.FloodMin{}, &panicNode{round: 1}, &netconsensus.FloodMin{}}
		},
		AlgorithmName: "flood+panic",
		Executions:    3,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("panicking node produced no violation")
	}
	v := rep.Violations[0]
	if v.Property != PropPanic {
		t.Fatalf("property = %s, want %s", v.Property, PropPanic)
	}
	if !strings.Contains(v.Detail, "node send exploded") {
		t.Fatalf("detail lost the diagnostic: %q", v.Detail)
	}
	if v.Seed == 0 && v.Execution == 0 {
		t.Error("violation carries no replay seed")
	}
}

// TestDeadlineEnforcementNetwork: a slow node trips the per-execution
// deadline in both runners without hanging the campaign.
func TestDeadlineEnforcementNetwork(t *testing.T) {
	g := graph.Complete(3)
	for _, goroutines := range []bool{false, true} {
		rep, err := RunNetworkCampaign(NetConfig{
			Graph: g,
			NewNodes: func() []netsim.Node {
				return []netsim.Node{&slowNode{}, &netconsensus.FloodMin{}, &netconsensus.FloodMin{}}
			},
			AlgorithmName: "flood+sleeper",
			Executions:    1,
			MaxRounds:     1000,
			Deadline:      20 * time.Millisecond,
			Goroutines:    goroutines,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK() {
			t.Fatalf("goroutines=%v: deadline did not fire", goroutines)
		}
		if got := rep.Violations[0].Property; got != PropDeadline {
			t.Fatalf("goroutines=%v: property = %s, want %s", goroutines, got, PropDeadline)
		}
	}
}

type slowNode struct{ netconsensus.FloodMin }

func (s *slowNode) Send(r int) map[int]netsim.Message {
	time.Sleep(40 * time.Millisecond)
	return s.FloodMin.Send(r)
}

// TestNetworkCampaignCancelBetweenExecutions mirrors the two-process
// cancellation test on the network runner: cancelling the campaign
// context from the node factory after N executions stops the sweep at
// exactly N, surfacing ctx.Err() with the partial report.
func TestNetworkCampaignCancelBetweenExecutions(t *testing.T) {
	const cancelAfter = 5
	g := graph.Complete(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	built := 0
	inner := floodNodes(g.N())
	rep, err := RunNetworkCampaignCtx(ctx, NetConfig{
		Graph: g,
		NewNodes: func() []netsim.Node {
			built++
			if built == cancelAfter {
				cancel()
			}
			return inner()
		},
		Executions: 10_000,
		Seed:       11,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign error = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Executions != cancelAfter {
		t.Fatalf("partial report = %+v, want exactly %d executions", rep, cancelAfter)
	}
}
