package chaos

import (
	"repro/internal/omission"
	"repro/internal/scheme"
)

// Reproducer re-runs an execution under a candidate scenario and reports
// the property that broke (ok=true when a violation occurred at all).
// Campaign runners supply one that replays the violating algorithm and
// inputs.
type Reproducer func(sc omission.Scenario) (Property, bool)

// Shrink greedily minimizes a counterexample before it is reported. It
// works on the letter prefix actually played by the failing execution:
//
//  1. Prefix minimization — find the shortest prefix of the played word
//     whose deterministic completion into a member scenario of the scheme
//     (scheme.ExtendToScenario: the shortest lasso) still reproduces the
//     same broken property.
//
//  2. Letter simplification — left to right, try to replace each non-'.'
//     letter of that prefix with '.' (the weakest adversary move),
//     keeping replacements that stay inside Pref(L) and still reproduce.
//
// Every candidate is validated by actually re-running the execution, so
// the result is sound by construction. The returned scenario reproduces
// prop; ok is false when not even the original played word reproduces
// under deterministic completion (e.g. the violation depended on the
// original scenario's tail), in which case callers should report the
// original scenario unminimized.
func Shrink(s *scheme.Scheme, played omission.Word, prop Property, repro Reproducer) (omission.Scenario, bool) {
	reproduces := func(w omission.Word) (omission.Scenario, bool) {
		sc, ok := s.ExtendToScenario(w)
		if !ok {
			return omission.Scenario{}, false
		}
		got, bad := repro(sc)
		return sc, bad && got == prop
	}

	// Phase 1: shortest reproducing prefix.
	var best omission.Word
	var bestSc omission.Scenario
	found := false
	for l := 0; l <= len(played); l++ {
		if sc, ok := reproduces(played.Prefix(l)); ok {
			best, bestSc, found = played.Prefix(l), sc, true
			break
		}
	}
	if !found {
		return omission.Scenario{}, false
	}

	// Phase 2: simplify letters toward '.'.
	for i := 0; i < len(best); i++ {
		if best[i] == omission.None {
			continue
		}
		cand := best.Clone()
		cand[i] = omission.None
		if sc, ok := reproduces(cand); ok {
			best, bestSc = cand, sc
		}
	}
	return bestSc, true
}
