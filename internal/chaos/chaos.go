// Package chaos is the fault-injection and chaos-testing runtime layered
// over both simulators (the two-process kernel of internal/sim and the
// network simulator of internal/netsim).
//
// The paper's subject is surviving an adversary — omission schemes over
// Γ (Theorem III.8), mobile omission faults on networks (Theorem V.1) —
// and this package turns that adversary into a first-class, composable,
// seed-replayable layer:
//
//   - Fault injectors (inject.go): crash-stop nodes, burst/blackout
//     omission schedulers, budgeted random droppers, and adversary
//     combinators (sequence, union, budget-cap), all driven by an
//     injected, seeded *rand.Rand — never the global source — so every
//     randomized execution replays from its seed.
//
//   - A trace watchdog (watchdog.go) that checks agreement, validity and
//     termination on every execution, plus the Proposition III.12
//     knowledge invariant for A_w runs, and converts absorbed panics and
//     expired deadlines into structured Violation reports.
//
//   - A greedy scenario shrinker (shrink.go) that minimizes a violating
//     scenario — shortest reproducing prefix, then letters simplified
//     toward '.' — before reporting, so counterexamples arrive small.
//
//   - Campaign runners (campaign.go, netcampaign.go) that execute N
//     seeded executions against a scheme or a graph, each under a
//     wall-clock deadline with panic isolation, and aggregate a Report.
//
// Everything is deterministic given the campaign seed: per-execution
// seeds are derived with a SplitMix64 step, and each Violation is stamped
// with the seed that reproduces it.
package chaos

import "math/rand"

// NewRand returns a seeded source for injectors and campaigns. Chaos code
// never touches the global math/rand source.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DeriveSeed maps (campaign seed, execution index) to the execution's own
// seed via a SplitMix64 step, so executions are independent yet
// individually replayable.
func DeriveSeed(master int64, execution int) int64 {
	z := uint64(master) + uint64(execution+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63)) // keep it non-negative for rand.NewSource ergonomics
}
