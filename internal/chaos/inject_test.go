package chaos

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
)

func drops(t *testing.T, a netsim.Adversary, r int, g *graph.Graph) map[graph.DirEdge]bool {
	t.Helper()
	return a.Drops(r, g)
}

func TestCrashSilencesNodeFromRound(t *testing.T) {
	g := graph.Complete(4)
	c := Crash{Node: 2, Round: 3}
	if got := drops(t, c, 2, g); len(got) != 0 {
		t.Fatalf("round 2 before crash: dropped %v", got)
	}
	for _, r := range []int{3, 4, 10} {
		got := drops(t, c, r, g)
		if len(got) != 3 {
			t.Fatalf("round %d: want all 3 outgoing edges dropped, got %v", r, got)
		}
		for e := range got {
			if e.From != 2 {
				t.Fatalf("round %d: dropped non-outgoing edge %v", r, e)
			}
		}
	}
}

func TestIsolateCutsIncomingEdges(t *testing.T) {
	g := graph.Complete(4)
	got := drops(t, Isolate{Node: 1, Round: 1}, 5, g)
	if len(got) != 3 {
		t.Fatalf("want 3 incoming edges dropped, got %v", got)
	}
	for e := range got {
		if e.To != 1 {
			t.Fatalf("dropped edge %v does not target node 1", e)
		}
	}
}

func TestBlackoutWindow(t *testing.T) {
	g := graph.Cycle(4)
	b := Blackout{From: 2, To: 3}
	all := 2 * g.NumEdges()
	for r, want := range map[int]int{1: 0, 2: all, 3: all, 4: 0} {
		if got := len(drops(t, b, r, g)); got != want {
			t.Errorf("round %d: dropped %d edges, want %d", r, got, want)
		}
	}
	// To = 0 means a single-round blackout.
	single := Blackout{From: 5}
	if got := len(drops(t, single, 5, g)); got != all {
		t.Errorf("single-round blackout: dropped %d, want %d", got, all)
	}
	if got := len(drops(t, single, 6, g)); got != 0 {
		t.Errorf("round after single blackout: dropped %d, want 0", got)
	}
}

func TestRandomDropsRespectsBudgetAndSeed(t *testing.T) {
	g := graph.Complete(5)
	a := RandomDrops{F: 3, Rng: NewRand(7)}
	b := RandomDrops{F: 3, Rng: NewRand(7)}
	for r := 1; r <= 20; r++ {
		da, db := drops(t, a, r, g), drops(t, b, r, g)
		if len(da) > 3 {
			t.Fatalf("round %d: dropped %d > budget 3", r, len(da))
		}
		if len(da) != len(db) {
			t.Fatalf("round %d: same seed diverged: %v vs %v", r, da, db)
		}
		for e := range da {
			if !db[e] {
				t.Fatalf("round %d: same seed diverged on edge %v", r, e)
			}
		}
	}
}

func TestBurstAppliesInnerOnPhase(t *testing.T) {
	g := graph.Complete(3)
	b := Burst{Every: 3, Phase: 1, Inner: Blackout{From: 1, To: 1 << 20}}
	for r := 1; r <= 9; r++ {
		got := len(drops(t, b, r, g))
		if r%3 == 1 && got == 0 {
			t.Errorf("round %d: burst phase should drop, dropped nothing", r)
		}
		if r%3 != 1 && got != 0 {
			t.Errorf("round %d: off-phase round dropped %d edges", r, got)
		}
	}
}

func TestSeqPlaysStagesInOrder(t *testing.T) {
	g := graph.Complete(3)
	s := NewSeq(
		Stage{Rounds: 2, Adv: Blackout{From: 1, To: 1 << 20}},
		Stage{Rounds: 2, Adv: netsim.NoDrops{}},
		Stage{Rounds: 0, Adv: Crash{Node: 0, Round: 1}},
	)
	wantDrop := []bool{true, true, false, false, true, true, true}
	for i, want := range wantDrop {
		r := i + 1
		got := len(drops(t, s, r, g)) > 0
		if got != want {
			t.Errorf("round %d: dropping=%v, want %v", r, got, want)
		}
	}
}

func TestSeqFiniteScheduleEndsInSilence(t *testing.T) {
	g := graph.Complete(3)
	s := NewSeq(Stage{Rounds: 1, Adv: Blackout{From: 1, To: 1 << 20}})
	if got := len(drops(t, s, 1, g)); got == 0 {
		t.Fatal("round 1: stage should drop")
	}
	for r := 2; r <= 5; r++ {
		if got := len(drops(t, s, r, g)); got != 0 {
			t.Errorf("round %d: exhausted schedule dropped %d edges", r, got)
		}
	}
}

func TestUnionDropsAnyMembersDrop(t *testing.T) {
	g := graph.Complete(4)
	u := Union{Crash{Node: 0, Round: 1}, Isolate{Node: 0, Round: 1}}
	got := drops(t, u, 1, g)
	if len(got) != 6 {
		t.Fatalf("union of crash+isolate on K4: want 6 directed edges, got %v", got)
	}
	for e := range got {
		if e.From != 0 && e.To != 0 {
			t.Fatalf("union dropped unrelated edge %v", e)
		}
	}
}

func TestBudgetCapTotalAndPerRound(t *testing.T) {
	g := graph.Complete(4)
	cap := &BudgetCap{Inner: Blackout{From: 1, To: 1 << 20}, Budget: 5, PerRound: 2}
	total := 0
	for r := 1; r <= 10; r++ {
		got := drops(t, cap, r, g)
		if len(got) > 2 {
			t.Fatalf("round %d: per-round cap exceeded: %d", r, len(got))
		}
		total += len(got)
	}
	if total != 5 {
		t.Fatalf("total drops %d, want budget 5", total)
	}
}

func TestBudgetCapTruncationIsDeterministic(t *testing.T) {
	g := graph.Complete(5)
	run := func() []graph.DirEdge {
		cap := &BudgetCap{Inner: Blackout{From: 1, To: 1 << 20}, Budget: 1 << 30, PerRound: 3}
		var seq []graph.DirEdge
		for r := 1; r <= 4; r++ {
			kept := make([]graph.DirEdge, 0, 3)
			for e := range drops(t, cap, r, g) {
				kept = append(kept, e)
			}
			sortDirEdges(kept)
			seq = append(seq, kept...)
		}
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDeriveSeedIsStableAndSpreads(t *testing.T) {
	if DeriveSeed(42, 0) != DeriveSeed(42, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if s < 0 {
			t.Fatalf("DeriveSeed(42,%d) = %d < 0", i, s)
		}
		if seen[s] {
			t.Fatalf("DeriveSeed collision at execution %d", i)
		}
		seen[s] = true
	}
}
