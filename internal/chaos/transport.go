package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// TransportFaults parameterizes a FaultyTransport. Probabilities are
// independent per request and evaluated in order: drop, then 500, then
// delay, then slow body — so a request can be both delayed and given a
// crawling body, mirroring how a real degraded backend stacks symptoms.
type TransportFaults struct {
	// DropProb returns a transport error without the request ever
	// reaching the backend — the HTTP analogue of a dropped message.
	DropProb float64
	// Err500Prob short-circuits with a synthesized 500 response.
	Err500Prob float64
	// DelayProb sleeps Delay (context-aware) before forwarding.
	DelayProb float64
	Delay     time.Duration
	// SlowBodyProb forwards the request but throttles the response body:
	// each Read stalls for SlowBodyDelay, modelling a shard that accepts
	// work and then trickles its answer.
	SlowBodyProb  float64
	SlowBodyDelay time.Duration
}

// FaultyTransport is a seeded fault-injecting http.RoundTripper for
// cluster-level chaos campaigns: it wraps a real transport and
// drops/delays/fails requests with SplitMix64-derived per-request
// randomness, so a campaign against a live coordinator replays exactly
// from its seed the way the simulator campaigns do.
//
// It implements the same adversary stance as the message-level
// injectors (inject.go), one layer up the stack: the coordinator's
// backends become the processes, HTTP requests the messages.
type FaultyTransport struct {
	// Inner performs the real round trips (default
	// http.DefaultTransport).
	Inner http.RoundTripper
	// Seed is the campaign master seed; request i uses
	// DeriveSeed(Seed, i).
	Seed   int64
	Faults TransportFaults

	calls    atomic.Int64
	injected atomic.Int64
}

// Injected reports how many requests had any fault injected — the
// observability hook harness assertions use ("the adversary actually
// acted").
func (t *FaultyTransport) Injected() int64 { return t.injected.Load() }

// Calls reports the total requests routed through the transport.
func (t *FaultyTransport) Calls() int64 { return t.calls.Load() }

// errDropped is the transport error for an adversary-dropped request.
type errDropped struct{ seq int64 }

func (e errDropped) Error() string {
	return fmt.Sprintf("chaos: transport dropped request %d", e.seq)
}

// RoundTrip implements http.RoundTripper.
func (t *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	seq := t.calls.Add(1) - 1
	rng := NewRand(DeriveSeed(t.Seed, int(seq)))
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	f := t.Faults

	if f.DropProb > 0 && rng.Float64() < f.DropProb {
		t.injected.Add(1)
		// Drain the body like a real transport would on failure.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, errDropped{seq: seq}
	}
	if f.Err500Prob > 0 && rng.Float64() < f.Err500Prob {
		t.injected.Add(1)
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"chaos: injected 500 on request %d"}`, seq)
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if f.DelayProb > 0 && f.Delay > 0 && rng.Float64() < f.DelayProb {
		t.injected.Add(1)
		timer := time.NewTimer(f.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if f.SlowBodyProb > 0 && f.SlowBodyDelay > 0 && rng.Float64() < f.SlowBodyProb {
		t.injected.Add(1)
		resp.Body = &slowBody{inner: resp.Body, delay: f.SlowBodyDelay, ctx: req.Context()}
	}
	return resp, nil
}

// slowBody throttles every Read by delay, honoring the request context
// so a hedged-away or drained caller is not held hostage by the stall.
type slowBody struct {
	inner io.ReadCloser
	delay time.Duration
	ctx   interface {
		Done() <-chan struct{}
		Err() error
	}
}

func (s *slowBody) Read(p []byte) (int, error) {
	timer := time.NewTimer(s.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.ctx.Done():
		return 0, s.ctx.Err()
	}
	return s.inner.Read(p)
}

func (s *slowBody) Close() error { return s.inner.Close() }
