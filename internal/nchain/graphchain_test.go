package nchain

import (
	"testing"

	"repro/internal/graph"
)

// TestGraphAnalyzeMatchesComplete: on complete graphs the generalized
// analysis must agree with the K_n-specific one.
func TestGraphAnalyzeMatchesComplete(t *testing.T) {
	for n := 2; n <= 3; n++ {
		for f := 0; f <= 2; f++ {
			for r := 0; r <= 2; r++ {
				a := analyzeKn(t, n, f, r)
				b := GraphAnalyze(graph.Complete(n), f, r)
				if a.Solvable != b.Solvable || a.Configs != b.Configs {
					t.Fatalf("n=%d f=%d r=%d: K_n-specific %v vs graph-general %v", n, f, r, a, b)
				}
			}
		}
	}
}

// TestTheoremV1Exhaustive is the strongest Theorem V.1 validation in the
// repository: on small graphs, the full-information analysis quantifies
// over ALL algorithms — for f < c(G) some horizon is solvable; for
// f = c(G) no horizon up to the bound is (and by Theorem V.1, none ever).
func TestTheoremV1Exhaustive(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		maxR int
	}{
		{graph.Path(3), 3},  // c = 1
		{graph.Cycle(3), 3}, // c = 2
		{graph.Path(4), 3},  // c = 1
		{graph.Star(4), 3},  // c = 1
		{graph.Cycle(4), 2}, // c = 2 (keep horizons small: 4 nodes)
	}
	for _, c := range cases {
		conn := c.g.EdgeConnectivity()
		// Below the threshold: solvable at some horizon ≤ n−1.
		for f := 0; f < conn; f++ {
			p, ok := GraphMinRounds(c.g, f, c.g.N()-1)
			if !ok {
				t.Fatalf("%s f=%d: should be solvable by horizon n−1=%d (Thm V.1 possibility)", c.g.Name(), f, c.g.N()-1)
			}
			if p > c.g.N()-1 {
				t.Fatalf("%s f=%d: horizon %d exceeds the flooding bound", c.g.Name(), f, p)
			}
			t.Logf("%s f=%d: first solvable horizon %d (n−1 = %d)", c.g.Name(), f, p, c.g.N()-1)
		}
		// At the threshold: no algorithm at any checked horizon.
		for r := 0; r <= c.maxR; r++ {
			if GraphAnalyze(c.g, conn, r).Solvable {
				t.Fatalf("%s f=c(G)=%d solvable at horizon %d — contradicts Theorem V.1", c.g.Name(), conn, r)
			}
		}
	}
}

// TestGraphHorizonsBeatFlooding documents where the exact horizon is
// strictly below the flooding bound n−1.
func TestGraphHorizonsBeatFlooding(t *testing.T) {
	// Star(4): c=1, f=0 — the hub hears everyone in round 1, leaves learn
	// the decision in round 2 < n−1 = 3.
	p, ok := GraphMinRounds(graph.Star(4), 0, 3)
	if !ok {
		t.Fatal("star f=0 solvable")
	}
	if p >= 3 {
		t.Fatalf("star-4 f=0: horizon %d, expected < n−1", p)
	}
	t.Logf("star-4 f=0: exact horizon %d (flooding bound 3)", p)
}

func TestGraphPatternsPanicOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for large graphs")
		}
	}()
	GraphAnalyze(graph.Complete(6), 1, 1)
}
