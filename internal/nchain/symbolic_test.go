package nchain

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// TestPatternsUpToMatchesSweep pins the combinatorial subset builder
// against the historical filter-a-2^E-sweep semantics, order included,
// on every edge count the old guard allowed.
func TestPatternsUpToMatchesSweep(t *testing.T) {
	for edges := 0; edges <= 12; edges++ {
		for f := 0; f <= 3; f++ {
			var want []LossPattern
			for p := LossPattern(0); p < 1<<edges; p++ {
				if p.Count() <= f {
					want = append(want, p)
				}
			}
			got := patternsUpTo(edges, f)
			if len(got) != len(want) {
				t.Fatalf("E=%d f=%d: %d patterns, want %d", edges, f, len(got), len(want))
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("E=%d f=%d: patterns not in ascending mask order", edges, f)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("E=%d f=%d: pattern[%d] = %b, want %b", edges, f, i, got[i], want[i])
				}
			}
		}
	}
	// Negative budget means no patterns at all, not a panic.
	if got := patternsUpTo(6, -1); len(got) != 0 {
		t.Fatalf("negative budget produced %d patterns", len(got))
	}
}

// TestEdgeCapBackendAware pins the centralized size guard: a 11-cycle
// (22 directed edges) exceeds the default cap but is admitted — and
// correctly analyzed — when the request opts into the symbolic backend;
// a 14-cycle (28 directed edges) exceeds even the raised cap.
func TestEdgeCapBackendAware(t *testing.T) {
	ctx := context.Background()
	c11 := graph.Cycle(11)
	if _, err := Analyze(ctx, Request{Graph: c11, F: 1, Horizon: 1}); !errors.Is(err, errTooLarge) {
		t.Fatalf("cycle(11) default: err=%v, want errTooLarge", err)
	}
	rep, err := Analyze(ctx, Request{
		Graph: c11, F: 1, Horizon: 1, VerdictOnly: true,
		Engine: &fullinfo.Options{Backend: fullinfo.BackendSymbolic},
	})
	if err != nil {
		t.Fatalf("cycle(11) symbolic: %v", err)
	}
	// One round cannot flood an 11-cycle: must be unsolvable at r=1.
	if rep.Solvable {
		t.Fatal("cycle(11) f=1 solvable at r=1")
	}
	// The loss steppers have no chain structure, so the explicit
	// symbolic request degrades to enumeration and says so.
	if rep.Stats.SymbolicFallbacks == 0 {
		t.Fatalf("degradation not recorded: %+v", rep.Stats)
	}
	if _, err := Analyze(ctx, Request{
		Graph: graph.Cycle(14), F: 1, Horizon: 1,
		Engine: &fullinfo.Options{Backend: fullinfo.BackendSymbolic},
	}); !errors.Is(err, errTooLarge) {
		t.Fatalf("cycle(14) symbolic: err=%v, want errTooLarge", err)
	}
}

// TestBackendGridMatchesSequential threads every backend through the
// n-process analysis on a small grid of instances: identical Analysis
// regardless of backend, identical to the sequential reference.
func TestBackendGridMatchesSequential(t *testing.T) {
	ctx := context.Background()
	cases := []Request{
		{N: 2, F: 1, Horizon: 3},
		{N: 3, F: 1, Horizon: 2},
		{N: 3, F: 2, Horizon: 2},
		{Graph: graph.Cycle(4), F: 1, Horizon: 2},
	}
	for _, base := range cases {
		seqReq := base
		seqReq.Sequential = true
		want, err := Analyze(ctx, seqReq)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []fullinfo.BackendMode{fullinfo.BackendAuto, fullinfo.BackendEnumerate, fullinfo.BackendSymbolic} {
			req := base
			req.Engine = &fullinfo.Options{Backend: b}
			got, err := Analyze(ctx, req)
			if err != nil {
				t.Fatalf("backend %v: %v", b, err)
			}
			if got.Analysis != want.Analysis {
				t.Errorf("n=%d f=%d r=%d backend %v: %+v != sequential %+v",
					want.N, want.F, want.Rounds, b, got.Analysis, want.Analysis)
			}
		}
	}
}
