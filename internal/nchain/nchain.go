// Package nchain extends the two-process full-information analysis to n
// synchronous processes on a complete graph with at most f message losses
// per round — the paper's closing future-work direction ("this work
// should be fully extended for any given number of processes").
//
// A round's loss pattern is a set of at most f directed edges whose
// messages are dropped (the scheme O_f of Section V-A restricted to K_n);
// a configuration after r rounds is a loss-pattern sequence plus a binary
// input vector. Any r-round algorithm is refined by the full-information
// protocol, so r-round consensus exists iff no connected component of the
// shares-a-view graph contains both the all-0 and the all-1 input vector.
//
// For the complete graph Theorem V.1 specializes to: solvable iff
// f < c(K_n) = n−1, and flooding gives an (n−1)-round algorithm; this
// package confirms both the threshold and the exact bounded horizons for
// small n, r.
package nchain

import (
	"fmt"
	"math/big"
	"sort"
)

// LossPattern is one round's set of dropped directed edges on K_n,
// encoded as a bitmask over the n·(n−1) ordered pairs.
type LossPattern uint64

// edgeIndex numbers the directed edges of K_n: (from, to), from ≠ to.
func edgeIndex(n, from, to int) int {
	idx := from*(n-1) + to
	if to > from {
		idx--
	}
	return idx
}

// Dropped reports whether the pattern drops the message from → to.
func (p LossPattern) Dropped(n, from, to int) bool {
	return p&(1<<edgeIndex(n, from, to)) != 0
}

// Count returns the number of dropped messages.
func (p LossPattern) Count() int {
	c := 0
	for ; p != 0; p &= p - 1 {
		c++
	}
	return c
}

// Directed-edge caps for loss-pattern enumeration, centralized here so
// every entry point shares one constant behind the errTooLarge check
// (historically the limit was hard-coded in three places, two of them
// panic paths reachable from Analyze).
const (
	// maxDirEdges bounds instances under the default backends. It keeps
	// the C(E, ≤f) pattern set and the 2^n-input engine walk within the
	// same budget the historical 2^20 sweep allowed.
	maxDirEdges = 20
	// maxDirEdgesSymbolic is the raised cap honored when the request
	// explicitly selects fullinfo.BackendSymbolic: the n-process
	// steppers carry no chain structure, so the engine still
	// enumerates, but the opt-in is the caller accepting the larger
	// combinatorial budget (e.g. a 13-cycle with f=1: 26 directed
	// edges, 27 patterns) that the symbolic work made generable without
	// a 2^26 sweep.
	maxDirEdgesSymbolic = 26
	// maxPatternBits is the hard representation limit of the uint64
	// LossPattern mask; the enumerators panic past it.
	maxPatternBits = 63
)

// PatternsUpTo enumerates every loss pattern of K_n with at most f
// drops, in ascending mask order.
func PatternsUpTo(n, f int) []LossPattern {
	return patternsUpTo(n*(n-1), f)
}

// patternsUpTo enumerates the bitmasks over `edges` bits with at most f
// bits set, ascending. It generates the C(edges, ≤f) subsets directly —
// never the 2^edges sweep — so wide-but-sparse instances (the raised
// symbolic cap) stay proportional to their pattern count.
func patternsUpTo(edges, f int) []LossPattern {
	if edges > maxPatternBits {
		panic("nchain: pattern space exceeds the 64-bit loss mask")
	}
	if f < 0 {
		// The historical sweep filtered on Count() ≤ f, so a negative
		// budget admits nothing at all.
		return nil
	}
	if f > edges {
		f = edges
	}
	var out []LossPattern
	var rec func(mask LossPattern, nextBit, remaining int)
	rec = func(mask LossPattern, nextBit, remaining int) {
		out = append(out, mask)
		if remaining == 0 {
			return
		}
		for b := nextBit; b < edges; b++ {
			rec(mask|1<<b, b+1, remaining-1)
		}
	}
	rec(0, 0, f)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Analysis is the result of the bounded-round computation. Configs
// saturates at math.MaxInt; ConfigsExact is non-nil exactly when the
// true count exceeds int range (so small-instance Analysis values stay
// comparable with ==), mirroring chain.Analysis.
type Analysis struct {
	N, F, Rounds    int
	Configs         int
	Components      int
	MixedComponents int
	Solvable        bool
	ConfigsExact    *big.Int
}

// String implements fmt.Stringer.
func (a Analysis) String() string {
	return fmt.Sprintf("n=%d f=%d r=%d: configs=%d components=%d mixed=%d solvable=%v",
		a.N, a.F, a.Rounds, a.Configs, a.Components, a.MixedComponents, a.Solvable)
}

type viewKey struct {
	prev int
	// recv packs the received views: an interned tuple id.
	recv int
}

type interner struct {
	views  map[viewKey]int
	tuples map[string]int
	next   int
}

func newInterner() *interner {
	return &interner{views: map[viewKey]int{}, tuples: map[string]int{}}
}

func (in *interner) view(prev, recv int) int {
	k := viewKey{prev, recv}
	if id, ok := in.views[k]; ok {
		return id
	}
	in.next++
	id := in.next
	in.views[k] = id
	return id
}

// tuple interns a received-views vector (−1 for "nothing received").
func (in *interner) tuple(vals []int) int {
	key := fmt.Sprint(vals)
	if id, ok := in.tuples[key]; ok {
		return id
	}
	in.next++
	id := in.next
	in.tuples[key] = id
	return id
}

// analyzeSequential decides r-round binary consensus for n processes on
// K_n under at most f losses per round with the original single-threaded
// materialize-then-union algorithm. It is the reference implementation
// the streaming engine is differentially tested against, reachable
// through Analyze with Request.Sequential. Input vectors range over
// {0,1}^n.
func analyzeSequential(n, f, r int) Analysis {
	patterns := PatternsUpTo(n, f)
	in := newInterner()

	type cfg struct {
		views  []int
		inputs int // bitmask of the input vector
	}
	var configs []cfg

	var walk func(depth int, views []int, inputs int)
	walk = func(depth int, views []int, inputs int) {
		if depth == r {
			configs = append(configs, cfg{append([]int(nil), views...), inputs})
			return
		}
		for _, p := range patterns {
			next := make([]int, n)
			recv := make([]int, n)
			for to := 0; to < n; to++ {
				vals := make([]int, 0, n-1)
				for from := 0; from < n; from++ {
					if from == to {
						continue
					}
					if p.Dropped(n, from, to) {
						vals = append(vals, -1)
					} else {
						vals = append(vals, views[from])
					}
				}
				recv[to] = in.tuple(vals)
			}
			for i := 0; i < n; i++ {
				next[i] = in.view(views[i], recv[i])
			}
			walk(depth+1, next, inputs)
		}
	}

	initViewOf := func(inputs, i int) int {
		// Initial views: distinct per input bit (identity is implicit in
		// the per-process component grouping).
		return -2 - ((inputs >> i) & 1)
	}
	for inputs := 0; inputs < 1<<n; inputs++ {
		views := make([]int, n)
		for i := 0; i < n; i++ {
			views[i] = initViewOf(inputs, i)
		}
		walk(0, views, inputs)
	}

	// Union-find over configs: same view at the same process index ⇒ same
	// component.
	parent := make([]int, len(configs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	type pv struct{ proc, view int }
	byView := map[pv]int{}
	for idx, c := range configs {
		for i, v := range c.views {
			k := pv{i, v}
			if j, ok := byView[k]; ok {
				union(idx, j)
			} else {
				byView[k] = idx
			}
		}
	}

	all1 := 1<<n - 1
	type compInfo struct{ has0, has1 bool }
	comps := map[int]*compInfo{}
	for idx, c := range configs {
		root := find(idx)
		ci := comps[root]
		if ci == nil {
			ci = &compInfo{}
			comps[root] = ci
		}
		if c.inputs == 0 {
			ci.has0 = true
		}
		if c.inputs == all1 {
			ci.has1 = true
		}
	}
	an := Analysis{N: n, F: f, Rounds: r, Configs: len(configs), Components: len(comps)}
	for _, ci := range comps {
		if ci.has0 && ci.has1 {
			an.MixedComponents++
		}
	}
	an.Solvable = an.MixedComponents == 0
	return an
}

// Threshold returns the Theorem V.1 prediction for K_n: solvable iff
// f < n−1.
func Threshold(n, f int) bool { return f < n-1 }
