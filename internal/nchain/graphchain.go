package nchain

import (
	"fmt"

	"repro/internal/graph"
)

// graphAnalyzeSequential is the original single-threaded
// materialize-then-union analysis for arbitrary topologies — the
// reference implementation the streaming engine is differentially
// tested against, reachable through Analyze with Request.Graph and
// Request.Sequential.
func graphAnalyzeSequential(g *graph.Graph, f, r int) Analysis {
	n := g.N()
	patterns := graphPatterns(g, f)
	in := newInterner()

	type cfg struct {
		views  []int
		inputs int
	}
	var configs []cfg

	dir := directedEdges(g)
	var walk func(depth int, views []int, inputs int)
	walk = func(depth int, views []int, inputs int) {
		if depth == r {
			configs = append(configs, cfg{append([]int(nil), views...), inputs})
			return
		}
		for _, p := range patterns {
			recv := make([]int, n)
			for to := 0; to < n; to++ {
				vals := make([]int, 0, g.Degree(to))
				for _, from := range g.Neighbors(to) {
					if p&(1<<dirIndex(dir, from, to)) != 0 {
						vals = append(vals, -1)
					} else {
						vals = append(vals, views[from])
					}
				}
				recv[to] = in.tuple(vals)
			}
			next := make([]int, n)
			for i := 0; i < n; i++ {
				next[i] = in.view(views[i], recv[i])
			}
			walk(depth+1, next, inputs)
		}
	}

	for inputs := 0; inputs < 1<<n; inputs++ {
		views := make([]int, n)
		for i := 0; i < n; i++ {
			views[i] = -2 - ((inputs >> i) & 1)
		}
		walk(0, views, inputs)
	}

	parent := make([]int, len(configs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	type pv struct{ proc, view int }
	byView := map[pv]int{}
	for idx, c := range configs {
		for i, v := range c.views {
			k := pv{i, v}
			if j, ok := byView[k]; ok {
				ra, rb := find(idx), find(j)
				if ra != rb {
					parent[rb] = ra
				}
			} else {
				byView[k] = idx
			}
		}
	}

	all1 := 1<<n - 1
	type compInfo struct{ has0, has1 bool }
	comps := map[int]*compInfo{}
	for idx, c := range configs {
		root := find(idx)
		ci := comps[root]
		if ci == nil {
			ci = &compInfo{}
			comps[root] = ci
		}
		if c.inputs == 0 {
			ci.has0 = true
		}
		if c.inputs == all1 {
			ci.has1 = true
		}
	}
	an := Analysis{N: n, F: f, Rounds: r, Configs: len(configs), Components: len(comps)}
	for _, ci := range comps {
		if ci.has0 && ci.has1 {
			an.MixedComponents++
		}
	}
	an.Solvable = an.MixedComponents == 0
	return an
}

// directedEdges enumerates the directed edges of g in a fixed order.
func directedEdges(g *graph.Graph) []graph.DirEdge {
	var out []graph.DirEdge
	for _, e := range g.Edges() {
		out = append(out, graph.DirEdge{From: e.U, To: e.V}, graph.DirEdge{From: e.V, To: e.U})
	}
	return out
}

// dirIndex locates a directed edge in the fixed order (linear scan; the
// graphs here are tiny).
func dirIndex(dir []graph.DirEdge, from, to int) int {
	for i, d := range dir {
		if d.From == from && d.To == to {
			return i
		}
	}
	panic(fmt.Sprintf("nchain: directed edge %d→%d not in graph", from, to))
}

// graphPatterns enumerates the loss patterns of g with at most f drops,
// as bitmasks over the directed-edge order (see patternsUpTo for the
// combinatorial generation and its representation limit).
func graphPatterns(g *graph.Graph, f int) []LossPattern {
	return patternsUpTo(2*g.NumEdges(), f)
}
