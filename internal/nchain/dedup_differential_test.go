package nchain

import (
	"context"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// TestDedupDifferential pins the hash-consed incremental engine against
// the non-dedup reference on the (n, f, r) grid and on arbitrary
// topologies: identical Results whether dedup is forced on or off and
// whether growth is sequential or chunk-parallel.
func TestDedupDifferential(t *testing.T) {
	ctx := context.Background()
	opts := []struct {
		name string
		opt  fullinfo.Options
	}{
		{"dedup-seq", fullinfo.Options{Dedup: fullinfo.DedupOn}},
		{"dedup-par", fullinfo.Options{Dedup: fullinfo.DedupOn, Parallel: true, Workers: 4}},
		{"nodedup-seq", fullinfo.Options{Dedup: fullinfo.DedupOff}},
	}
	check := func(name string, st fullinfo.Stepper, maxR int) {
		engs := make([]*fullinfo.Engine, len(opts))
		for i, o := range opts {
			engs[i] = fullinfo.NewEngine(st, o.opt)
		}
		for r := 0; r <= maxR; r++ {
			want, _, err := fullinfo.RunChecked(ctx, st, r, fullinfo.Options{Dedup: fullinfo.DedupOff})
			if err != nil {
				t.Fatal(err)
			}
			for i, o := range opts {
				got, err := engs[i].ExtendTo(ctx, r)
				if err != nil {
					t.Fatalf("%s r=%d %s: %v", name, r, o.name, err)
				}
				if got != want {
					t.Errorf("%s r=%d %s: %+v != reference %+v", name, r, o.name, got, want)
				}
			}
		}
	}
	for _, tc := range nfCases {
		check("kn", knStepper(tc.n, tc.f), tc.maxR)
	}
	check("path-3", graphStepper(graph.Path(3), 1), 2)
	check("star-4", graphStepper(graph.Star(4), 0), 2)
	check("cycle-4", graphStepper(graph.Cycle(4), 1), 1)
}
