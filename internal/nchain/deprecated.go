// Deprecated wrappers over the unified Analyze entry point, kept for
// the root facade and out-of-tree callers; everything under internal/
// and cmd/ calls Analyze(ctx, Request) directly (enforced by verify.sh).
package nchain

import (
	"context"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// mustReport runs Analyze under a background context and panics on
// error, matching the fail-loud behavior of the old non-ctx API.
func mustReport(req Request) Report {
	rep, err := Analyze(context.Background(), req)
	if err != nil {
		panic(err.Error())
	}
	return rep
}

// foundRounds reproduces the historical (0, false) not-found shape.
func foundRounds(rep Report) (int, bool) {
	if !rep.Found {
		return 0, false
	}
	return rep.Rounds, true
}

// AnalyzeOpt decides r-round consensus on K_n with explicit engine
// options.
//
// Deprecated: use Analyze with Request.Engine.
func AnalyzeOpt(n, f, r int, opt fullinfo.Options) Analysis {
	return mustReport(Request{N: n, F: f, Horizon: r, Engine: &opt}).Analysis
}

// AnalyzeSequential is the single-threaded materialize-then-union
// reference analysis on K_n.
//
// Deprecated: use Analyze with Request.Sequential.
func AnalyzeSequential(n, f, r int) Analysis {
	return mustReport(Request{N: n, F: f, Horizon: r, Sequential: true}).Analysis
}

// SolvableInRounds reports whether (n, f) consensus on K_n is r-round
// solvable.
//
// Deprecated: use Analyze with Request.VerdictOnly.
func SolvableInRounds(n, f, r int) bool {
	return mustReport(Request{N: n, F: f, Horizon: r, VerdictOnly: true}).Solvable
}

// SolvableInRoundsChecked is SolvableInRounds under a context.
//
// Deprecated: use Analyze with Request.VerdictOnly.
func SolvableInRoundsChecked(ctx context.Context, n, f, r int) (bool, error) {
	rep, err := Analyze(ctx, Request{N: n, F: f, Horizon: r, VerdictOnly: true})
	return rep.Solvable, err
}

// MinRounds finds the smallest horizon ≤ maxR at which (n, f) consensus
// is solvable on K_n.
//
// Deprecated: use Analyze with Request.MinRounds.
func MinRounds(n, f, maxR int) (int, bool) {
	return foundRounds(mustReport(Request{N: n, F: f, Horizon: maxR, MinRounds: true, VerdictOnly: true}))
}

// GraphAnalyzeOpt is the arbitrary-topology analysis with explicit
// engine options.
//
// Deprecated: use Analyze with Request.Graph and Request.Engine.
func GraphAnalyzeOpt(g *graph.Graph, f, r int, opt fullinfo.Options) Analysis {
	return mustReport(Request{Graph: g, F: f, Horizon: r, Engine: &opt}).Analysis
}

// GraphAnalyze decides r-round consensus for the scheme O_f^ω on an
// arbitrary connected topology.
//
// Deprecated: use Analyze with Request.Graph.
func GraphAnalyze(g *graph.Graph, f, r int) Analysis {
	return mustReport(Request{Graph: g, F: f, Horizon: r}).Analysis
}

// GraphAnalyzeSequential is the single-threaded reference analysis for
// arbitrary topologies.
//
// Deprecated: use Analyze with Request.Graph and Request.Sequential.
func GraphAnalyzeSequential(g *graph.Graph, f, r int) Analysis {
	return mustReport(Request{Graph: g, F: f, Horizon: r, Sequential: true}).Analysis
}

// GraphSolvableInRounds reports whether (g, f) consensus is r-round
// solvable.
//
// Deprecated: use Analyze with Request.Graph and Request.VerdictOnly.
func GraphSolvableInRounds(g *graph.Graph, f, r int) bool {
	return mustReport(Request{Graph: g, F: f, Horizon: r, VerdictOnly: true}).Solvable
}

// GraphSolvableInRoundsChecked is GraphSolvableInRounds under a context.
//
// Deprecated: use Analyze with Request.Graph and Request.VerdictOnly.
func GraphSolvableInRoundsChecked(ctx context.Context, g *graph.Graph, f, r int) (bool, error) {
	rep, err := Analyze(ctx, Request{Graph: g, F: f, Horizon: r, VerdictOnly: true})
	return rep.Solvable, err
}

// GraphMinRounds finds the smallest horizon ≤ maxR at which (g, f)
// consensus is solvable.
//
// Deprecated: use Analyze with Request.Graph and Request.MinRounds.
func GraphMinRounds(g *graph.Graph, f, maxR int) (int, bool) {
	return foundRounds(mustReport(Request{Graph: g, F: f, Horizon: maxR, MinRounds: true, VerdictOnly: true}))
}
