package nchain

import (
	"math"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// recvEdge is one in-edge of a process: the sender and the loss-pattern
// bit that drops the message.
type recvEdge struct {
	from int
	bit  int
}

// lossStepper adapts the n-process loss-pattern analysis (K_n or an
// arbitrary graph) to the fullinfo engine: actions are loss patterns,
// every pattern sequence is admissible (trivial one-state automaton),
// and a step interns each process's received-views tuple and next view.
type lossStepper struct {
	n        int
	patterns []LossPattern
	recv     [][]recvEdge // per receiving process, its in-edges in order
}

// knStepper builds the stepper for the complete graph K_n with at most f
// losses per round, matching AnalyzeSequential's enumeration order.
func knStepper(n, f int) lossStepper {
	st := lossStepper{n: n, patterns: PatternsUpTo(n, f), recv: make([][]recvEdge, n)}
	for to := 0; to < n; to++ {
		for from := 0; from < n; from++ {
			if from == to {
				continue
			}
			st.recv[to] = append(st.recv[to], recvEdge{from: from, bit: edgeIndex(n, from, to)})
		}
	}
	return st
}

// graphStepper builds the stepper for an arbitrary topology, matching
// GraphAnalyzeSequential's directed-edge order.
func graphStepper(g *graph.Graph, f int) lossStepper {
	n := g.N()
	dir := directedEdges(g)
	st := lossStepper{n: n, patterns: graphPatterns(g, f), recv: make([][]recvEdge, n)}
	for to := 0; to < n; to++ {
		for _, from := range g.Neighbors(to) {
			st.recv[to] = append(st.recv[to], recvEdge{from: from, bit: dirIndex(dir, from, to)})
		}
	}
	return st
}

func (st lossStepper) NumProcs() int     { return st.n }
func (st lossStepper) NumActions() int   { return len(st.patterns) }
func (st lossStepper) Root() (int, bool) { return 0, true }

func (st lossStepper) Step(ctx *fullinfo.Ctx, state, a int, views, next []int) (int, bool) {
	p := st.patterns[a]
	for to := 0; to < st.n; to++ {
		edges := st.recv[to]
		vals := ctx.Buf(len(edges))
		for i, e := range edges {
			if p&(1<<e.bit) != 0 {
				vals[i] = -1
			} else {
				vals[i] = views[e.from]
			}
		}
		next[to] = ctx.In.View(views[to], ctx.In.Tuple(vals))
	}
	return 0, true
}

func analysisOf(n, f, r int, res fullinfo.Result) Analysis {
	configs := int(math.MaxInt)
	if res.Configs <= math.MaxInt {
		configs = int(res.Configs)
	}
	return Analysis{
		N: n, F: f, Rounds: r,
		Configs:         configs,
		Components:      res.Components,
		MixedComponents: res.MixedComponents,
		Solvable:        res.Solvable,
		ConfigsExact:    res.ConfigsExact,
	}
}
