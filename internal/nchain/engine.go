package nchain

import (
	"context"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// recvEdge is one in-edge of a process: the sender and the loss-pattern
// bit that drops the message.
type recvEdge struct {
	from int
	bit  int
}

// lossStepper adapts the n-process loss-pattern analysis (K_n or an
// arbitrary graph) to the fullinfo engine: actions are loss patterns,
// every pattern sequence is admissible (trivial one-state automaton),
// and a step interns each process's received-views tuple and next view.
type lossStepper struct {
	n        int
	patterns []LossPattern
	recv     [][]recvEdge // per receiving process, its in-edges in order
}

// knStepper builds the stepper for the complete graph K_n with at most f
// losses per round, matching AnalyzeSequential's enumeration order.
func knStepper(n, f int) lossStepper {
	st := lossStepper{n: n, patterns: PatternsUpTo(n, f), recv: make([][]recvEdge, n)}
	for to := 0; to < n; to++ {
		for from := 0; from < n; from++ {
			if from == to {
				continue
			}
			st.recv[to] = append(st.recv[to], recvEdge{from: from, bit: edgeIndex(n, from, to)})
		}
	}
	return st
}

// graphStepper builds the stepper for an arbitrary topology, matching
// GraphAnalyzeSequential's directed-edge order.
func graphStepper(g *graph.Graph, f int) lossStepper {
	n := g.N()
	dir := directedEdges(g)
	st := lossStepper{n: n, patterns: graphPatterns(g, f), recv: make([][]recvEdge, n)}
	for to := 0; to < n; to++ {
		for _, from := range g.Neighbors(to) {
			st.recv[to] = append(st.recv[to], recvEdge{from: from, bit: dirIndex(dir, from, to)})
		}
	}
	return st
}

func (st lossStepper) NumProcs() int     { return st.n }
func (st lossStepper) NumActions() int   { return len(st.patterns) }
func (st lossStepper) Root() (int, bool) { return 0, true }

func (st lossStepper) Step(ctx *fullinfo.Ctx, state, a int, views, next []int) (int, bool) {
	p := st.patterns[a]
	for to := 0; to < st.n; to++ {
		edges := st.recv[to]
		vals := ctx.Buf(len(edges))
		for i, e := range edges {
			if p&(1<<e.bit) != 0 {
				vals[i] = -1
			} else {
				vals[i] = views[e.from]
			}
		}
		next[to] = ctx.In.View(views[to], ctx.In.Tuple(vals))
	}
	return 0, true
}

func analysisOf(n, f, r int, res fullinfo.Result) Analysis {
	return Analysis{
		N: n, F: f, Rounds: r,
		Configs:         int(res.Configs),
		Components:      res.Components,
		MixedComponents: res.MixedComponents,
		Solvable:        res.Solvable,
	}
}

// AnalyzeOpt decides r-round consensus on K_n with explicit engine
// options; results are identical to AnalyzeSequential.
func AnalyzeOpt(n, f, r int, opt fullinfo.Options) Analysis {
	res, _ := fullinfo.Run(knStepper(n, f), r, opt)
	return analysisOf(n, f, r, res)
}

// Analyze decides r-round binary consensus for n processes on K_n under
// at most f losses per round, using the parallel streaming engine.
// Input vectors range over {0,1}^n.
func Analyze(n, f, r int) Analysis {
	return AnalyzeOpt(n, f, r, fullinfo.Defaults())
}

// SolvableInRounds reports whether (n, f) consensus on K_n is r-round
// solvable, aborting the exploration on the first mixed component.
func SolvableInRounds(n, f, r int) bool {
	opt := fullinfo.Defaults()
	opt.EarlyExit = true
	res, _ := fullinfo.Run(knStepper(n, f), r, opt)
	return res.Solvable
}

// GraphAnalyzeOpt is GraphAnalyze with explicit engine options.
func GraphAnalyzeOpt(g *graph.Graph, f, r int, opt fullinfo.Options) Analysis {
	res, _ := fullinfo.Run(graphStepper(g, f), r, opt)
	return analysisOf(g.N(), f, r, res)
}

// GraphAnalyze generalizes the full-information analysis from K_n to an
// arbitrary connected topology on the parallel streaming engine: it
// decides whether r-round binary consensus exists for n processes on g
// with at most f message losses per round (the scheme O_f^ω of Section
// V-A). Combined over horizons this gives an exhaustive validation of
// Theorem V.1 on small graphs: for f < c(G) some horizon works
// (flooding shows r = n−1 suffices), while for f ≥ c(G) *no* horizon
// does — an all-algorithms impossibility, much stronger than exhibiting
// one failing algorithm.
func GraphAnalyze(g *graph.Graph, f, r int) Analysis {
	return GraphAnalyzeOpt(g, f, r, fullinfo.Defaults())
}

// GraphSolvableInRounds reports whether (g, f) consensus is r-round
// solvable, aborting the exploration on the first mixed component.
func GraphSolvableInRounds(g *graph.Graph, f, r int) bool {
	opt := fullinfo.Defaults()
	opt.EarlyExit = true
	res, _ := fullinfo.Run(graphStepper(g, f), r, opt)
	return res.Solvable
}

// SolvableInRoundsChecked is SolvableInRounds under a context: the
// deadline propagates into the engine's worker pool and an interrupted
// walk surfaces ctx.Err() instead of a partial verdict.
func SolvableInRoundsChecked(ctx context.Context, n, f, r int) (bool, error) {
	opt := fullinfo.Defaults()
	opt.EarlyExit = true
	res, _, err := fullinfo.RunChecked(ctx, knStepper(n, f), r, opt)
	if err != nil {
		return false, err
	}
	return res.Solvable, nil
}

// GraphSolvableInRoundsChecked is GraphSolvableInRounds under a context.
func GraphSolvableInRoundsChecked(ctx context.Context, g *graph.Graph, f, r int) (bool, error) {
	opt := fullinfo.Defaults()
	opt.EarlyExit = true
	res, _, err := fullinfo.RunChecked(ctx, graphStepper(g, f), r, opt)
	if err != nil {
		return false, err
	}
	return res.Solvable, nil
}
