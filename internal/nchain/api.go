package nchain

import (
	"context"
	"errors"
	"time"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// Request selects one n-process bounded-round solvability computation:
// K_N under at most F losses per round when Graph is nil, or an
// arbitrary connected topology otherwise.
type Request struct {
	// N is the process count for the complete-graph analysis. Ignored
	// (taken from Graph) when Graph is non-nil.
	N int
	// F is the per-round message-loss budget.
	F int
	// Graph, when non-nil, analyzes the scheme O_F^ω on this topology
	// instead of K_N.
	Graph *graph.Graph
	// Horizon is the round horizon r — or the search cap when
	// MinRounds is set.
	Horizon int
	// MinRounds searches the smallest solvable r ≤ Horizon on the
	// incremental engine (horizon r+1 extends the horizon-r frontier).
	MinRounds bool
	// VerdictOnly lets the engine abandon a horizon on the first mixed
	// component; counts in the Report may then be partial.
	VerdictOnly bool
	// Sequential routes through the materializing single-threaded
	// reference walk, kept for differential testing.
	Sequential bool
	// Engine optionally tunes the streaming engine; nil means
	// fullinfo.Defaults(). EarlyExit and Observer are managed by
	// Analyze.
	Engine *fullinfo.Options
	// Observer receives one fullinfo.Stats snapshot per engine run or
	// per incremental round.
	Observer func(fullinfo.Stats)
}

// Report is the outcome of Analyze; see chain.Report for the field
// conventions (Found, partial counts, aggregated Stats).
type Report struct {
	Analysis
	Found bool
	Stats fullinfo.Stats
}

var (
	errBadProcs = errors.New("nchain: Analyze requires N ≥ 2 or a Graph")
	errTooLarge = errors.New("nchain: instance too large to enumerate loss patterns (limit 20 directed edges; 26 when the request selects the symbolic backend)")
)

// Analyze is the single analysis entry point of the package: every
// other exported analysis function is a deprecated wrapper around it.
// The context bounds the whole computation.
func Analyze(ctx context.Context, req Request) (Report, error) {
	n := req.N
	if req.Graph != nil {
		n = req.Graph.N()
	}
	if n < 2 {
		return Report{}, errBadProcs
	}
	// Bound the loss-pattern space up front — a request error, never the
	// enumerators' representation panic. Explicitly selecting the
	// symbolic backend raises the cap (see maxDirEdgesSymbolic).
	limit := maxDirEdges
	if req.Engine != nil && req.Engine.Backend == fullinfo.BackendSymbolic {
		limit = maxDirEdgesSymbolic
	}
	if dirEdges := 2 * graphEdgeCount(req); dirEdges > limit {
		return Report{}, errTooLarge
	}
	if req.Horizon < 0 {
		req.Horizon = 0
	}
	var agg fullinfo.Stats
	observe := func(s fullinfo.Stats) {
		agg.Merge(s)
		if req.Observer != nil {
			req.Observer(s)
		}
	}
	if req.Sequential {
		return analyzeSequentialReq(ctx, req, n, &agg, observe)
	}
	var st lossStepper
	if req.Graph != nil {
		st = graphStepper(req.Graph, req.F)
	} else {
		st = knStepper(n, req.F)
	}
	opt := fullinfo.Defaults()
	if req.Engine != nil {
		opt = *req.Engine
	}
	opt.EarlyExit = req.VerdictOnly
	opt.Observer = observe

	if !req.MinRounds {
		res, _, err := fullinfo.RunChecked(ctx, st, req.Horizon, opt)
		if err != nil {
			return Report{}, err
		}
		return Report{Analysis: analysisOf(n, req.F, req.Horizon, res), Found: res.Solvable, Stats: agg}, nil
	}

	eng := fullinfo.NewEngine(st, opt)
	defer eng.Release()
	var last fullinfo.Result
	for r := 0; r <= req.Horizon; r++ {
		res, err := eng.ExtendTo(ctx, r)
		if err != nil {
			return Report{}, err
		}
		if res.Solvable {
			return Report{Analysis: analysisOf(n, req.F, r, res), Found: true, Stats: agg}, nil
		}
		last = res
	}
	return Report{Analysis: analysisOf(n, req.F, req.Horizon, last), Stats: agg}, nil
}

// graphEdgeCount returns the undirected edge count of the requested
// topology (K_N when Graph is nil).
func graphEdgeCount(req Request) int {
	if req.Graph != nil {
		return req.Graph.NumEdges()
	}
	return req.N * (req.N - 1) / 2
}

// analyzeSequentialReq serves Request.Sequential through the reference
// walks, restarting per horizon in MinRounds mode.
func analyzeSequentialReq(ctx context.Context, req Request, n int, agg *fullinfo.Stats, observe func(fullinfo.Stats)) (Report, error) {
	runOne := func(r int) (Analysis, error) {
		if err := ctx.Err(); err != nil {
			return Analysis{}, err
		}
		start := time.Now()
		var an Analysis
		if req.Graph != nil {
			an = graphAnalyzeSequential(req.Graph, req.F, r)
		} else {
			an = analyzeSequential(n, req.F, r)
		}
		observe(fullinfo.Stats{
			Horizon:         r,
			Rounds:          r,
			Configs:         int64(an.Configs),
			Components:      an.Components,
			MixedComponents: an.MixedComponents,
			Workers:         1,
			WallNanos:       time.Since(start).Nanoseconds(),
		})
		return an, nil
	}
	if !req.MinRounds {
		an, err := runOne(req.Horizon)
		if err != nil {
			return Report{}, err
		}
		return Report{Analysis: an, Found: an.Solvable, Stats: *agg}, nil
	}
	var last Analysis
	for r := 0; r <= req.Horizon; r++ {
		an, err := runOne(r)
		if err != nil {
			return Report{}, err
		}
		if an.Solvable {
			return Report{Analysis: an, Found: true, Stats: *agg}, nil
		}
		last = an
	}
	return Report{Analysis: last, Stats: *agg}, nil
}
