package nchain

import (
	"context"
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// nfCase bounds the horizon per (n, f) so the full suite stays fast
// enough to run under -race: the configuration space is
// (#patterns)^r · 2^n.
var nfCases = []struct{ n, f, maxR int }{
	{2, 0, 3}, {2, 1, 3},
	{3, 0, 2}, {3, 1, 2}, {3, 2, 2},
	{4, 0, 2}, {4, 1, 2}, {4, 2, 1}, {4, 3, 1},
}

// TestEngineMatchesSequential pins the engine against the sequential
// reference for K_n over n ∈ {2,3,4}, f ∈ {0..n-1}: identical Analysis
// values, with both a single worker and a real pool (the latter drives
// the fan-out/merge paths under -race).
func TestEngineMatchesSequential(t *testing.T) {
	for _, tc := range nfCases {
		for r := 0; r <= tc.maxR; r++ {
			want := AnalyzeSequential(tc.n, tc.f, r)
			for _, workers := range []int{1, 4} {
				got := AnalyzeOpt(tc.n, tc.f, r, fullinfo.Options{Parallel: true, Workers: workers})
				if got != want {
					t.Errorf("n=%d f=%d r=%d workers=%d: engine %+v != sequential %+v",
						tc.n, tc.f, r, workers, got, want)
				}
			}
			if got := SolvableInRounds(tc.n, tc.f, r); got != want.Solvable {
				t.Errorf("n=%d f=%d r=%d: SolvableInRounds=%v want %v",
					tc.n, tc.f, r, got, want.Solvable)
			}
		}
	}
}

// TestGraphEngineMatchesSequential does the same for arbitrary
// topologies: path, cycle, and star graphs at small horizons.
func TestGraphEngineMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		f, r int
	}{
		{"path-3", graph.Path(3), 0, 2},
		{"path-3", graph.Path(3), 1, 2},
		{"cycle-4", graph.Cycle(4), 1, 1},
		{"star-4", graph.Star(4), 0, 2},
		{"star-4", graph.Star(4), 1, 1},
	}
	for _, tc := range cases {
		want := GraphAnalyzeSequential(tc.g, tc.f, tc.r)
		for _, workers := range []int{1, 4} {
			got := GraphAnalyzeOpt(tc.g, tc.f, tc.r, fullinfo.Options{Parallel: true, Workers: workers})
			if got != want {
				t.Errorf("%s f=%d r=%d workers=%d: engine %+v != sequential %+v",
					tc.name, tc.f, tc.r, workers, got, want)
			}
		}
		if got := GraphSolvableInRounds(tc.g, tc.f, tc.r); got != want.Solvable {
			t.Errorf("%s f=%d r=%d: GraphSolvableInRounds=%v want %v",
				tc.name, tc.f, tc.r, got, want.Solvable)
		}
	}
}

// TestMinRoundsMatchesThreshold re-pins Theorem V.1 on the early-exit
// search path: on K_n, (n, f) is eventually solvable iff f < n−1, and
// flooding's n−1 rounds are known to suffice.
func TestMinRoundsMatchesThreshold(t *testing.T) {
	for n := 2; n <= 3; n++ {
		for f := 0; f < n; f++ {
			r, ok := MinRounds(n, f, n)
			if ok != Threshold(n, f) {
				t.Errorf("n=%d f=%d: MinRounds ok=%v, Threshold=%v", n, f, ok, Threshold(n, f))
			}
			if ok && r > n-1 {
				t.Errorf("n=%d f=%d: MinRounds=%d exceeds flooding bound %d", n, f, r, n-1)
			}
		}
	}
}

// TestIncrementalExtendMatchesRestart pins the incremental engine on
// the (n, f, r) grid: one Engine extended round by round must report
// exactly the same Result — verdict and component structure — as a
// from-scratch engine run at every horizon.
func TestIncrementalExtendMatchesRestart(t *testing.T) {
	ctx := context.Background()
	for _, tc := range nfCases {
		eng := fullinfo.NewEngine(knStepper(tc.n, tc.f), fullinfo.Options{})
		for r := 0; r <= tc.maxR; r++ {
			got, err := eng.ExtendTo(ctx, r)
			if err != nil {
				t.Fatalf("n=%d f=%d r=%d: %v", tc.n, tc.f, r, err)
			}
			want, _, err := fullinfo.RunChecked(ctx, knStepper(tc.n, tc.f), r,
				fullinfo.Options{Parallel: true, Workers: 4})
			if err != nil {
				t.Fatalf("n=%d f=%d r=%d: %v", tc.n, tc.f, r, err)
			}
			if got != want {
				t.Errorf("n=%d f=%d r=%d: incremental %+v != restart %+v", tc.n, tc.f, r, got, want)
			}
		}
	}
}

// TestGraphIncrementalExtendMatchesRestart does the same on arbitrary
// topologies.
func TestGraphIncrementalExtendMatchesRestart(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		g    *graph.Graph
		f    int
		maxR int
	}{
		{"path-3", graph.Path(3), 1, 2},
		{"cycle-4", graph.Cycle(4), 1, 1},
		{"star-4", graph.Star(4), 0, 2},
	}
	for _, tc := range cases {
		eng := fullinfo.NewEngine(graphStepper(tc.g, tc.f), fullinfo.Options{})
		for r := 0; r <= tc.maxR; r++ {
			got, err := eng.ExtendTo(ctx, r)
			if err != nil {
				t.Fatalf("%s f=%d r=%d: %v", tc.name, tc.f, r, err)
			}
			want, _, err := fullinfo.RunChecked(ctx, graphStepper(tc.g, tc.f), r,
				fullinfo.Options{Parallel: true, Workers: 4})
			if err != nil {
				t.Fatalf("%s f=%d r=%d: %v", tc.name, tc.f, r, err)
			}
			if got != want {
				t.Errorf("%s f=%d r=%d: incremental %+v != restart %+v", tc.name, tc.f, r, got, want)
			}
		}
	}
}

// TestAnalyzeMinRoundsMatchesRestartSearch drives the MinRounds mode of
// the unified entry point against the naive restart search over the
// sequential reference, for both K_n and graph requests.
func TestAnalyzeMinRoundsMatchesRestartSearch(t *testing.T) {
	ctx := context.Background()
	for _, tc := range nfCases {
		wantR, wantOK := 0, false
		for r := 0; r <= tc.maxR; r++ {
			if analyzeSequential(tc.n, tc.f, r).Solvable {
				wantR, wantOK = r, true
				break
			}
		}
		rep, err := Analyze(ctx, Request{N: tc.n, F: tc.f, Horizon: tc.maxR, MinRounds: true, VerdictOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Found != wantOK || (wantOK && rep.Rounds != wantR) {
			t.Errorf("n=%d f=%d: MinRounds found=%v rounds=%d, want found=%v rounds=%d",
				tc.n, tc.f, rep.Found, rep.Rounds, wantOK, wantR)
		}
		if wantOK {
			exact := analyzeSequential(tc.n, tc.f, rep.Rounds)
			if rep.Analysis != exact {
				t.Errorf("n=%d f=%d: found-horizon analysis %+v != sequential %+v",
					tc.n, tc.f, rep.Analysis, exact)
			}
		}
	}
	star := graph.Star(4)
	wantR, wantOK := 0, false
	for r := 0; r <= 3; r++ {
		if graphAnalyzeSequential(star, 0, r).Solvable {
			wantR, wantOK = r, true
			break
		}
	}
	rep, err := Analyze(ctx, Request{Graph: star, F: 0, Horizon: 3, MinRounds: true, VerdictOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Found != wantOK || rep.Rounds != wantR {
		t.Errorf("star-4 f=0: MinRounds %+v, want found=%v at %d", rep.Analysis, wantOK, wantR)
	}
}
