package nchain

import (
	"testing"

	"repro/internal/fullinfo"
	"repro/internal/graph"
)

// nfCase bounds the horizon per (n, f) so the full suite stays fast
// enough to run under -race: the configuration space is
// (#patterns)^r · 2^n.
var nfCases = []struct{ n, f, maxR int }{
	{2, 0, 3}, {2, 1, 3},
	{3, 0, 2}, {3, 1, 2}, {3, 2, 2},
	{4, 0, 2}, {4, 1, 2}, {4, 2, 1}, {4, 3, 1},
}

// TestEngineMatchesSequential pins the engine against the sequential
// reference for K_n over n ∈ {2,3,4}, f ∈ {0..n-1}: identical Analysis
// values, with both a single worker and a real pool (the latter drives
// the fan-out/merge paths under -race).
func TestEngineMatchesSequential(t *testing.T) {
	for _, tc := range nfCases {
		for r := 0; r <= tc.maxR; r++ {
			want := AnalyzeSequential(tc.n, tc.f, r)
			for _, workers := range []int{1, 4} {
				got := AnalyzeOpt(tc.n, tc.f, r, fullinfo.Options{Parallel: true, Workers: workers})
				if got != want {
					t.Errorf("n=%d f=%d r=%d workers=%d: engine %+v != sequential %+v",
						tc.n, tc.f, r, workers, got, want)
				}
			}
			if got := SolvableInRounds(tc.n, tc.f, r); got != want.Solvable {
				t.Errorf("n=%d f=%d r=%d: SolvableInRounds=%v want %v",
					tc.n, tc.f, r, got, want.Solvable)
			}
		}
	}
}

// TestGraphEngineMatchesSequential does the same for arbitrary
// topologies: path, cycle, and star graphs at small horizons.
func TestGraphEngineMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		f, r int
	}{
		{"path-3", graph.Path(3), 0, 2},
		{"path-3", graph.Path(3), 1, 2},
		{"cycle-4", graph.Cycle(4), 1, 1},
		{"star-4", graph.Star(4), 0, 2},
		{"star-4", graph.Star(4), 1, 1},
	}
	for _, tc := range cases {
		want := GraphAnalyzeSequential(tc.g, tc.f, tc.r)
		for _, workers := range []int{1, 4} {
			got := GraphAnalyzeOpt(tc.g, tc.f, tc.r, fullinfo.Options{Parallel: true, Workers: workers})
			if got != want {
				t.Errorf("%s f=%d r=%d workers=%d: engine %+v != sequential %+v",
					tc.name, tc.f, tc.r, workers, got, want)
			}
		}
		if got := GraphSolvableInRounds(tc.g, tc.f, tc.r); got != want.Solvable {
			t.Errorf("%s f=%d r=%d: GraphSolvableInRounds=%v want %v",
				tc.name, tc.f, tc.r, got, want.Solvable)
		}
	}
}

// TestMinRoundsMatchesThreshold re-pins Theorem V.1 on the early-exit
// search path: on K_n, (n, f) is eventually solvable iff f < n−1, and
// flooding's n−1 rounds are known to suffice.
func TestMinRoundsMatchesThreshold(t *testing.T) {
	for n := 2; n <= 3; n++ {
		for f := 0; f < n; f++ {
			r, ok := MinRounds(n, f, n)
			if ok != Threshold(n, f) {
				t.Errorf("n=%d f=%d: MinRounds ok=%v, Threshold=%v", n, f, ok, Threshold(n, f))
			}
			if ok && r > n-1 {
				t.Errorf("n=%d f=%d: MinRounds=%d exceeds flooding bound %d", n, f, r, n-1)
			}
		}
	}
}
