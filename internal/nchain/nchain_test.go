package nchain

import (
	"context"
	"testing"
)

// analyzeKn runs the unified entry point for K_n at one fixed horizon.
func analyzeKn(t *testing.T, n, f, r int) Analysis {
	t.Helper()
	rep, err := Analyze(context.Background(), Request{N: n, F: f, Horizon: r})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Analysis
}

func TestLossPatterns(t *testing.T) {
	// K_3 has 6 directed edges; with f=1 there are 1+6 patterns.
	ps := PatternsUpTo(3, 1)
	if len(ps) != 7 {
		t.Fatalf("|patterns(3,1)| = %d, want 7", len(ps))
	}
	if len(PatternsUpTo(3, 2)) != 1+6+15 {
		t.Fatal("patterns(3,2)")
	}
	if len(PatternsUpTo(3, 0)) != 1 {
		t.Fatal("patterns(3,0)")
	}
	// Dropped/Count round-trip.
	var p LossPattern
	p |= 1 << edgeIndex(3, 0, 2)
	p |= 1 << edgeIndex(3, 2, 1)
	if !p.Dropped(3, 0, 2) || !p.Dropped(3, 2, 1) || p.Dropped(3, 1, 0) {
		t.Error("Dropped")
	}
	if p.Count() != 2 {
		t.Error("Count")
	}
	// Edge indexing is a bijection onto 0..n(n−1)−1.
	seen := map[int]bool{}
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			if from == to {
				continue
			}
			idx := edgeIndex(3, from, to)
			if idx < 0 || idx >= 6 || seen[idx] {
				t.Fatalf("edgeIndex(3,%d,%d) = %d", from, to, idx)
			}
			seen[idx] = true
		}
	}
	// The combinatorial enumeration handles wide-but-sparse instances
	// the historical 2^E sweep could not: K_6 has 30 directed edges.
	if got := len(PatternsUpTo(6, 1)); got != 31 {
		t.Fatalf("|patterns(6,1)| = %d, want 31", got)
	}
	// Only the uint64 mask representation itself still panics (K_9 has
	// 72 directed edges); Analyze guards with errTooLarge long before.
	defer func() {
		if recover() == nil {
			t.Error("patterns past the 64-bit mask must panic")
		}
	}()
	PatternsUpTo(9, 1)
}

// TestTwoProcessesMatchesChain: n=2 must reproduce the two-process
// results — f=0 ⇒ solvable at round 1 (S0); f=1 ⇒ never (Γ^ω... here O_1
// on K_2 includes the double omission? No: f=1 allows at most one loss
// per round = exactly the Γ^ω scheme R1).
func TestTwoProcessesMatchesChain(t *testing.T) {
	if p, ok := MinRounds(2, 0, 3); !ok || p != 1 {
		t.Fatalf("n=2 f=0: %d", p)
	}
	for r := 0; r <= 4; r++ {
		if analyzeKn(t, 2, 1, r).Solvable {
			t.Fatalf("n=2 f=1 solvable at r=%d — contradicts the Coordinated Attack impossibility", r)
		}
	}
}

// TestThresholdK3: Theorem V.1 on K_3 — f=1 < c(K_3)=2 solvable (at the
// flooding horizon n−1 = 2), f=2 unsolvable at every checked horizon.
func TestThresholdK3(t *testing.T) {
	if !Threshold(3, 1) || Threshold(3, 2) {
		t.Error("threshold predicate")
	}
	// f=0: one clean exchange suffices.
	if p, ok := MinRounds(3, 0, 2); !ok || p != 1 {
		t.Fatalf("n=3 f=0: first horizon %d", p)
	}
	// f=1: solvable, and not in a single round.
	p, ok := MinRounds(3, 1, 3)
	if !ok {
		t.Fatal("n=3 f=1 should be bounded-round solvable")
	}
	if p != 2 {
		t.Fatalf("n=3 f=1: first horizon %d, want 2 (= n−1, the flooding bound)", p)
	}
	// f=2 = c(K_3): unsolvable.
	for r := 0; r <= 3; r++ {
		if analyzeKn(t, 3, 2, r).Solvable {
			t.Fatalf("n=3 f=2 solvable at r=%d", r)
		}
	}
}

// TestK4LowBudget: n=4, f=1 — the analysis finds the exact horizon
// (flooding needs n−1 = 3, but with only one loss per round full
// dissemination completes in 2).
func TestK4LowBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 enumeration is heavy")
	}
	p, ok := MinRounds(4, 1, 2)
	if !ok || p != 2 {
		t.Fatalf("n=4 f=1: first horizon %d (ok=%v), want 2", p, ok)
	}
}

func TestAnalysisString(t *testing.T) {
	if analyzeKn(t, 2, 0, 1).String() == "" {
		t.Error("empty analysis string")
	}
}
