package fullinfo

import "math/bits"

// Open-addressed flat hash tables for the engine's two hottest lookup
// structures: the Interner's view table and the (process, view) vertex
// tables of the streaming union-finds. Both were Go maps before PR 5;
// profiles showed two thirds of an incremental run inside runtime map
// code (hashing, group probing, incremental growth) plus one heap
// allocation per interned view. A power-of-two linear-probing table
// with inline uint64 keys turns every lookup into one multiply and, in
// the common case, a single cache line touch, and allocates only on
// doubling.
//
// Keys are biased by the caller so that the packed value 0 never occurs
// (0 marks an empty slot); see packView and packVertex.

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// hash for already-packed keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// flatU64 maps non-zero uint64 keys to int32 values with open
// addressing and linear probing at a maximum load factor of 1/2. The
// zero value is an empty table.
type flatU64 struct {
	keys []uint64
	vals []int32
	mask uint64
	n    int
}

const flatMinCap = 16

// get returns the value stored under k.
func (f *flatU64) get(k uint64) (int32, bool) {
	if f.n == 0 {
		return 0, false
	}
	for i := mix64(k) & f.mask; ; i = (i + 1) & f.mask {
		switch f.keys[i] {
		case k:
			return f.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// put stores v under k. k must not already be present (the engine's
// callers always probe first) and must be non-zero.
func (f *flatU64) put(k uint64, v int32) {
	if 2*(f.n+1) > len(f.keys) {
		f.grow()
	}
	i := mix64(k) & f.mask
	for f.keys[i] != 0 {
		i = (i + 1) & f.mask
	}
	f.keys[i] = k
	f.vals[i] = v
	f.n++
}

// probe combines get and put's search into one pass: it grows the
// table up front (so the returned slot stays valid), then returns
// either the value stored under k (hit) or the insertion slot for
// setAt (miss). The hot create path pays a single probe sequence
// instead of get-then-put's two.
func (f *flatU64) probe(k uint64) (v int32, slot uint64, hit bool) {
	if 2*(f.n+1) > len(f.keys) {
		f.grow()
	}
	i := mix64(k) & f.mask
	for {
		switch f.keys[i] {
		case k:
			return f.vals[i], 0, true
		case 0:
			return 0, i, false
		}
		i = (i + 1) & f.mask
	}
}

// setAt stores v under k at the empty slot returned by probe. No table
// mutation may occur between the two calls.
func (f *flatU64) setAt(slot, k uint64, v int32) {
	f.keys[slot] = k
	f.vals[slot] = v
	f.n++
}

// grow doubles the table (or allocates the initial one) and rehashes.
func (f *flatU64) grow() {
	newCap := flatMinCap
	if len(f.keys) > 0 {
		newCap = 2 * len(f.keys)
	}
	oldKeys, oldVals := f.keys, f.vals
	f.keys = make([]uint64, newCap)
	f.vals = make([]int32, newCap)
	f.mask = uint64(newCap - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := mix64(k) & f.mask
		for f.keys[j] != 0 {
			j = (j + 1) & f.mask
		}
		f.keys[j] = k
		f.vals[j] = oldVals[i]
	}
}

// reset empties the table, keeping capacity.
func (f *flatU64) reset() {
	if f.n == 0 {
		return
	}
	clear(f.keys)
	f.n = 0
}

// packView packs an Interner view key (prev, recv) into a non-zero
// uint64. prev is a view id or an initial-view sentinel (≥ -3, never
// -1), recv is a view id, tuple id, or -1; both fit in int32 (the
// interner guards its id space). The +1 bias makes 0 unreachable: it
// would require prev == recv == -1, and prev is never -1.
func packView(prev, recv int) uint64 {
	return (uint64(uint32(int32(prev)))<<32 | uint64(uint32(int32(recv)))) + 1
}

// packVertex biases a vertexKey into a non-zero uint64. Vertex keys are
// view<<vertProcBits|proc with view ≥ -3, so key ≥ -(3<<vertProcBits)
// and adding vertBias makes the result strictly positive.
func packVertex(k int64) uint64 {
	return uint64(k + vertBias)
}

const vertBias = 3<<vertProcBits + 1

// viewShard holds the view entries whose prev falls in one interner
// round (see Interner.shardIdx). Because round ids are a dense
// contiguous range and engine traversal visits prevs near-monotonically,
// the shard is direct-indexed by prev-lo rather than hashed: null
// receptions (recv == -1, exactly one entry per prev, half of a chain
// engine's probe volume) live in a flat array, other receptions in
// 3-entry inline buckets with a hash-table spill for crowded prevs.
// Lookups are read-only; only insert extends the arrays.
type viewShard struct {
	lo       int          // smallest prev this shard serves
	null     []int32      // (prev, -1) → id+1, indexed by prev-lo
	buckets  []viewBucket // other recvs, indexed by prev-lo
	overflow flatU64      // spill for buckets past viewBucketCap entries
}

const viewBucketCap = 3

// viewBucket inlines up to viewBucketCap (recv → id) pairs for one
// prev. n > viewBucketCap marks that further entries spilled to the
// shard's overflow table.
type viewBucket struct {
	n    int32
	recv [viewBucketCap]int32
	id   [viewBucketCap]int32
}

// lookup returns the id interned for (prev, recv), if any.
func (s *viewShard) lookup(prev, recv int) (int32, bool) {
	i := prev - s.lo
	if recv == -1 {
		if i < len(s.null) {
			if v := s.null[i]; v != 0 {
				return v - 1, true
			}
		}
		return 0, false
	}
	if i < len(s.buckets) {
		bk := &s.buckets[i]
		n := bk.n
		if n > viewBucketCap {
			n = viewBucketCap
		}
		r := int32(recv)
		for j := int32(0); j < n; j++ {
			if bk.recv[j] == r {
				return bk.id[j], true
			}
		}
		if bk.n > viewBucketCap {
			return s.overflow.get(packView(prev, recv))
		}
	}
	return 0, false
}

// insert records (prev, recv) → id. The key must not be present.
func (s *viewShard) insert(prev, recv int, id int32) {
	i := prev - s.lo
	if recv == -1 {
		s.null = growZeroed(s.null, i+1)
		s.null[i] = id + 1
		return
	}
	s.buckets = growZeroed(s.buckets, i+1)
	bk := &s.buckets[i]
	if bk.n < viewBucketCap {
		bk.recv[bk.n] = int32(recv)
		bk.id[bk.n] = id
		bk.n++
		return
	}
	s.overflow.put(packView(prev, recv), id)
	bk.n = viewBucketCap + 1
}

// clearKeep empties the shard for arena reuse, zeroing live entries and
// truncating so the storage can be re-adopted by a later shardFor. The
// growZeroed invariant (slots past len are zero) holds afterwards for
// the whole capacity: clear zeroes [0, len) and [len, cap) was already
// zero.
func (s *viewShard) clearKeep() {
	clear(s.null)
	s.null = s.null[:0]
	clear(s.buckets)
	s.buckets = s.buckets[:0]
	s.overflow.reset()
}

// growZeroed extends s to length n, preserving contents and keeping
// every slot past the old length zero (make zeroes full capacity and
// the extended region is never written before this returns).
func growZeroed[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	ns := make([]T, n, c)
	copy(ns, s)
	return ns
}

// dedupTable hash-conses frontier configurations into dense node
// indexes. The key material (automaton state, input mask, view tuple)
// lives in the caller's arrays; the table stores index+1 per slot (0 =
// empty) and the caller verifies equality through the eq callback. It
// is sized once per round to twice the maximum insert count, so probes
// never trigger a mid-round rehash.
type dedupTable struct {
	slots []int32
	mask  uint64
}

// reset prepares the table for up to maxInserts insertions.
func (t *dedupTable) reset(maxInserts int) {
	need := flatMinCap
	if maxInserts > 0 {
		need = 1 << bits.Len(uint(2*maxInserts-1))
	}
	if need > len(t.slots) {
		t.slots = make([]int32, need)
		t.mask = uint64(need - 1)
	} else {
		// Shrink the probe space to the round's need: clearing and
		// probing a right-sized prefix beats touching a huge stale one.
		need = len(t.slots)
		t.mask = uint64(need - 1)
		clear(t.slots)
	}
}

// find probes for a configuration with hash h, calling eq with
// candidate node indexes. It returns the matching node index, or -1
// with the insert slot for the caller to claim via claim.
func (t *dedupTable) find(h uint64, eq func(int32) bool) (idx int32, slot uint64) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := t.slots[i]
		if s == 0 {
			return -1, i
		}
		if eq(s - 1) {
			return s - 1, i
		}
	}
}

// claim records node index idx in the slot returned by find.
func (t *dedupTable) claim(slot uint64, idx int32) {
	t.slots[slot] = idx + 1
}

// hashConfig hashes one frontier configuration (automaton state, input
// mask, n view ids).
func hashConfig(state, inputs int, views []int) uint64 {
	h := uint64(state)*0x9e3779b97f4a7c15 ^ uint64(inputs)
	for _, v := range views {
		h = (h ^ uint64(uint32(int32(v)))) * 0x9e3779b97f4a7c15
	}
	return mix64(h)
}
