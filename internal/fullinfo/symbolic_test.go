package fullinfo

import (
	"context"
	"errors"
	"math"
	"math/big"
	"testing"
)

// gammaStepper enumerates the chain problem a SymbolicSpec describes,
// with exactly the semantics chain.chainStepper has after re-keying by
// child offset: action 0 loses black's message (white receives
// nothing), action 1 delivers both, action 2 loses white's (black
// receives nothing). It lets the symbolic backend be differentially
// tested against honest enumeration on arbitrary specs, inside the
// package, without compiling schemes.
type gammaStepper struct{ spec SymbolicSpec }

func (g gammaStepper) NumProcs() int     { return 2 }
func (g gammaStepper) NumActions() int   { return g.spec.Base }
func (g gammaStepper) Root() (int, bool) { return g.spec.Start, g.spec.Start >= 0 }

func (g gammaStepper) Step(ctx *Ctx, state, a int, views, next []int) (int, bool) {
	ns := g.spec.Next[state*g.spec.Base+a]
	if ns < 0 {
		return 0, false
	}
	rw, rb := views[1], views[0]
	if a == 0 {
		rw = -1
	}
	if a == 2 {
		rb = -1
	}
	next[0] = ctx.View(views[0], rw)
	next[1] = ctx.View(views[1], rb)
	return int(ns), true
}

func (g gammaStepper) SymbolicSpec() (SymbolicSpec, bool) { return g.spec, true }

// universalSpec admits every Γ word: one state, all letters live.
func universalSpec() SymbolicSpec {
	return SymbolicSpec{Base: 3, Start: 0, Next: []int32{0, 0, 0}}
}

// splitSpec kills the middle letter, so every index's surviving
// children are gapped (offsets 0 and 2): the interval frontier
// fragments geometrically.
func splitSpec() SymbolicSpec {
	return SymbolicSpec{Base: 3, Start: 0, Next: []int32{0, -1, 0}}
}

func TestParseBackendMode(t *testing.T) {
	cases := map[string]BackendMode{
		"": BackendAuto, "auto": BackendAuto,
		"enumerate": BackendEnumerate, "enum": BackendEnumerate,
		"symbolic": BackendSymbolic, "sym": BackendSymbolic,
	}
	for in, want := range cases {
		got, err := ParseBackendMode(in)
		if err != nil || got != want {
			t.Errorf("ParseBackendMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackendMode("frobnicate"); err == nil {
		t.Error("ParseBackendMode accepted garbage")
	}
	for _, m := range []BackendMode{BackendAuto, BackendEnumerate, BackendSymbolic} {
		back, err := ParseBackendMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v → %q → %v, %v", m, m.String(), back, err)
		}
	}
	if BackendMode(99).String() == "" {
		t.Error("out-of-range mode has no String")
	}
}

// TestSymbolicMatchesEnumerate is the in-package differential: on a
// family of specs covering the uniform fast path, dead letters,
// parity-dependent splits, and the empty language, the symbolic
// backend must reproduce the enumerating analysis exactly.
func TestSymbolicMatchesEnumerate(t *testing.T) {
	specs := map[string]SymbolicSpec{
		"universal": universalSpec(),
		"empty":     {Base: 3, Start: -1},
		"split":     splitSpec(),
		"no-loss":   {Base: 3, Start: 0, Next: []int32{-1, 0, -1}},
		"two-state": {Base: 3, Start: 0, Next: []int32{1, 0, 0, -1, 1, 1}},
		"swap":      {Base: 3, Start: 0, Next: []int32{1, 1, 1, 0, 0, 0}},
		"fair-ish":  {Base: 3, Start: 0, Next: []int32{1, 0, 2, 1, 1, -1, -1, 2, 2}},
	}
	for name, spec := range specs {
		st := gammaStepper{spec: spec}
		for r := 0; r <= 6; r++ {
			want, _, err := RunChecked(context.Background(), st, r, Options{Backend: BackendEnumerate})
			if err != nil {
				t.Fatalf("%s r=%d enumerate: %v", name, r, err)
			}
			got, _, err := RunChecked(context.Background(), st, r, Options{Backend: BackendSymbolic})
			if err != nil {
				t.Fatalf("%s r=%d symbolic: %v", name, r, err)
			}
			if got != want {
				t.Fatalf("%s r=%d: symbolic %+v != enumerate %+v", name, r, got, want)
			}
			auto, _, err := RunChecked(context.Background(), st, r, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if auto != want {
				t.Fatalf("%s r=%d: auto %+v != enumerate %+v", name, r, auto, want)
			}
		}
	}
}

// TestSymbolicDeepHorizon pushes the universal chain to depth 45 —
// 4·3^45 configurations, unreachable by enumeration — and checks the
// saturation contract: scalar fields pin to their maxima while
// ConfigsExact carries the exact count.
func TestSymbolicDeepHorizon(t *testing.T) {
	var last Stats
	eng := NewEngine(gammaStepper{spec: universalSpec()}, Options{Observer: func(s Stats) { last = s }})
	res, err := eng.ExtendTo(context.Background(), 45)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(big.NewInt(3), big.NewInt(45), nil)
	want.Lsh(want, 2) // 4·3^45
	if res.Configs != math.MaxInt64 {
		t.Fatalf("Configs = %d, want saturated MaxInt64", res.Configs)
	}
	if res.ConfigsExact == nil || res.ConfigsExact.Cmp(want) != 0 {
		t.Fatalf("ConfigsExact = %v, want %v", res.ConfigsExact, want)
	}
	if res.Vertices != math.MaxInt {
		t.Fatalf("Vertices = %d, want saturated MaxInt", res.Vertices)
	}
	// The full chain is one mixed component: unsolvable at every horizon.
	if res.Solvable || res.Components != 1 || res.MixedComponents != 1 {
		t.Fatalf("universal chain at depth 45: %+v", res)
	}
	if eng.Horizon() != 45 || eng.FrontierLen() != 1 {
		t.Fatalf("engine gauges: horizon=%d frontier=%d, want 45 and 1 interval", eng.Horizon(), eng.FrontierLen())
	}
	if last.SymbolicRounds == 0 || last.Intervals != 1 || last.IntervalsPeak != 1 || last.SymbolicFallbacks != 0 {
		t.Fatalf("symbolic stats: %+v", last)
	}
	if last.FragmentationRatio() != 1 {
		t.Fatalf("FragmentationRatio = %v, want 1", last.FragmentationRatio())
	}
}

// TestSymbolicBelowOverflowKeepsExactNil pins the comparability
// contract: in int64 range, ConfigsExact stays nil so Result values
// remain ==-comparable across backends.
func TestSymbolicBelowOverflowKeepsExactNil(t *testing.T) {
	res, _, err := RunChecked(context.Background(), gammaStepper{spec: universalSpec()}, 10, Options{Backend: BackendSymbolic})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConfigsExact != nil {
		t.Fatalf("ConfigsExact = %v at depth 10, want nil", res.ConfigsExact)
	}
	if res.Configs != 4*pow3(10) {
		t.Fatalf("Configs = %d, want %d", res.Configs, 4*pow3(10))
	}
}

// TestSymbolicFragmentationFallback: with a tiny interval budget the
// split spec fragments immediately; RunChecked must fall back to
// enumeration, produce the enumerating answer, and record exactly one
// fallback event.
func TestSymbolicFragmentationFallback(t *testing.T) {
	st := gammaStepper{spec: splitSpec()}
	for r := 0; r <= 6; r++ {
		want, _, err := RunChecked(context.Background(), st, r, Options{Backend: BackendEnumerate})
		if err != nil {
			t.Fatal(err)
		}
		var last Stats
		got, _, err := RunChecked(context.Background(), st, r, Options{
			Backend:              BackendSymbolic,
			SymbolicMaxIntervals: 2,
			Observer:             func(s Stats) { last = s },
		})
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if got != want {
			t.Fatalf("r=%d: fallback %+v != enumerate %+v", r, got, want)
		}
		// Depth ≤ 1 fits two intervals, so the symbolic run succeeds there.
		if r >= 2 && last.SymbolicFallbacks != 1 {
			t.Fatalf("r=%d: SymbolicFallbacks = %d, want 1 (stats %+v)", r, last.SymbolicFallbacks, last)
		}
	}
}

// TestSymbolicEngineFallbackReplay: the incremental engine drops its
// symbolic frontier on fragmentation and replays the enumeration from
// the roots; results must match a purely enumerating engine round by
// round, before and after the switch.
func TestSymbolicEngineFallbackReplay(t *testing.T) {
	st := gammaStepper{spec: splitSpec()}
	var fallbacks int
	sym := NewEngine(st, Options{
		SymbolicMaxIntervals: 4,
		Observer:             func(s Stats) { fallbacks += s.SymbolicFallbacks },
	})
	ref := NewEngine(st, Options{Backend: BackendEnumerate})
	for r := 0; r <= 7; r++ {
		want, err := ref.ExtendTo(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sym.ExtendTo(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("r=%d: %+v != %+v", r, got, want)
		}
		if sym.Horizon() != r {
			t.Fatalf("r=%d: Horizon()=%d", r, sym.Horizon())
		}
	}
	if fallbacks != 1 {
		t.Fatalf("observed %d fallbacks across the run, want 1", fallbacks)
	}
}

// TestBackendSymbolicWithoutChainStructure: requesting the symbolic
// backend on a Stepper with no chain structure degrades to enumeration
// and records the degradation.
func TestBackendSymbolicWithoutChainStructure(t *testing.T) {
	var last Stats
	got, _, err := RunChecked(context.Background(), binStepper{}, 4, Options{
		Backend:  BackendSymbolic,
		Observer: func(s Stats) { last = s },
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Run(binStepper{}, 4, Options{})
	if got != want {
		t.Fatalf("degraded symbolic %+v != reference %+v", got, want)
	}
	if last.SymbolicFallbacks != 1 || last.SymbolicRounds != 0 {
		t.Fatalf("degradation not recorded: %+v", last)
	}

	// Same through the incremental engine.
	var engLast Stats
	eng := NewEngine(binStepper{}, Options{Backend: BackendSymbolic, Observer: func(s Stats) { engLast = s }})
	inc, err := eng.ExtendTo(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if inc != want {
		t.Fatalf("engine degraded symbolic %+v != reference %+v", inc, want)
	}
	if engLast.SymbolicFallbacks != 1 {
		t.Fatalf("engine degradation not recorded: %+v", engLast)
	}
}

// TestSymbolicMinimize: states with identical residual languages must
// merge — the swap automaton (two universal states exchanging on every
// letter) collapses to one.
func TestSymbolicMinimize(t *testing.T) {
	swap := SymbolicSpec{Base: 3, Start: 0, Next: []int32{1, 1, 1, 0, 0, 0}}
	min := swap.minimize()
	if min.numStates() != 1 {
		t.Fatalf("swap automaton minimized to %d states, want 1", min.numStates())
	}
	// Distinguishable states must stay apart: split's dead middle letter
	// versus a universal state.
	two := SymbolicSpec{Base: 3, Start: 0, Next: []int32{1, -1, 1, 1, 1, 1}}
	if got := two.minimize().numStates(); got != 2 {
		t.Fatalf("distinguishable pair minimized to %d states, want 2", got)
	}
}

// TestNormalizeSpans covers the merge discipline: empty, singleton,
// adjacency (merge), gaps (keep), containment, and unsorted input.
func TestNormalizeSpans(t *testing.T) {
	sp := func(lo, hi int64) span { return span{lo: big.NewInt(lo), hi: big.NewInt(hi)} }
	render := func(spans []span) [][2]int64 {
		var out [][2]int64
		for _, s := range spans {
			out = append(out, [2]int64{s.lo.Int64(), s.hi.Int64()})
		}
		return out
	}
	cases := []struct {
		in, want []span
	}{
		{nil, nil},
		{[]span{sp(5, 5)}, []span{sp(5, 5)}},
		{[]span{sp(0, 1), sp(2, 3)}, []span{sp(0, 3)}},                     // adjacent
		{[]span{sp(0, 1), sp(3, 4)}, []span{sp(0, 1), sp(3, 4)}},           // gapped
		{[]span{sp(0, 9), sp(2, 3)}, []span{sp(0, 9)}},                     // contained
		{[]span{sp(6, 8), sp(0, 2), sp(3, 4)}, []span{sp(0, 4), sp(6, 8)}}, // unsorted
	}
	for i, c := range cases {
		got := normalizeSpans(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: %v, want %v", i, render(got), render(c.want))
		}
		for j := range got {
			if got[j].lo.Cmp(c.want[j].lo) != 0 || got[j].hi.Cmp(c.want[j].hi) != 0 {
				t.Fatalf("case %d: %v, want %v", i, render(got), render(c.want))
			}
		}
	}
}

// TestSymbolicFragmentedErrorKeepsFrontier: a failed step leaves the
// engine at its previous depth with the frontier intact, so retrying
// with a bigger budget (or falling back) starts from consistent state.
func TestSymbolicFragmentedErrorKeepsFrontier(t *testing.T) {
	e := newSymEngine(splitSpec(), Options{SymbolicMaxIntervals: 2})
	_, err := e.extendTo(context.Background(), 6)
	if !errors.Is(err, errSymbolicFragmented) {
		t.Fatalf("err = %v, want errSymbolicFragmented", err)
	}
	if e.depth >= 6 || e.intervals == 0 || e.intervals > 2 {
		t.Fatalf("post-error frontier: depth=%d intervals=%d", e.depth, e.intervals)
	}
	// The intact frontier still produces the analysis for its own depth.
	res, err := e.extendTo(context.Background(), e.depth)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := RunChecked(context.Background(), gammaStepper{spec: splitSpec()}, e.depth, Options{Backend: BackendEnumerate})
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Fatalf("frontier analysis %+v != enumerate %+v", res, want)
	}
}

// TestStatsSymbolicMerge pins the aggregation policy of the new
// instrumentation fields: rounds and fallbacks accumulate, interval
// gauges track the latest snapshot, the peak keeps its maximum.
func TestStatsSymbolicMerge(t *testing.T) {
	var agg Stats
	agg.Merge(Stats{SymbolicRounds: 3, Intervals: 5, IntervalRuns: 2, IntervalsPeak: 7, SymbolicFallbacks: 1})
	agg.Merge(Stats{SymbolicRounds: 2, Intervals: 1, IntervalRuns: 1, IntervalsPeak: 4})
	if agg.SymbolicRounds != 5 || agg.SymbolicFallbacks != 1 {
		t.Fatalf("accumulating fields: %+v", agg)
	}
	if agg.Intervals != 1 || agg.IntervalRuns != 1 || agg.IntervalsPeak != 7 {
		t.Fatalf("gauge fields: %+v", agg)
	}
	frag := Stats{Intervals: 6, IntervalRuns: 4}
	if got := frag.FragmentationRatio(); got != 1.5 {
		t.Fatalf("FragmentationRatio = %v, want 1.5", got)
	}
	var zero Stats
	if got := zero.FragmentationRatio(); got != 1 {
		t.Fatalf("FragmentationRatio of zero stats = %v, want 1", got)
	}
	// Config counts saturate instead of wrapping: a deep symbolic
	// MinRounds sweep merges several already-saturated rounds.
	sat := Stats{Configs: math.MaxInt64 - 1}
	sat.Merge(Stats{Configs: math.MaxInt64})
	sat.Merge(Stats{Configs: 17})
	if sat.Configs != math.MaxInt64 {
		t.Fatalf("Configs = %d, want saturated MaxInt64", sat.Configs)
	}
}
