package fullinfo

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

// binStepper is a toy two-process problem over a two-letter alphabet
// {deliver, drop}: on deliver both processes learn each other's view, on
// drop neither does. Every history is admissible. After r rounds the
// configurations with at least one deliver collapse per input
// assignment, and the all-drop chains keep processes at their initial
// views, so the indistinguishability structure is easy to predict for
// small r.
type binStepper struct{ link bool }

func (binStepper) NumProcs() int     { return 2 }
func (binStepper) NumActions() int   { return 2 }
func (binStepper) Root() (int, bool) { return 0, true }
func (s binStepper) Step(ctx *Ctx, state, a int, views, next []int) (int, bool) {
	r0, r1 := -1, -1
	if a == 0 {
		r0, r1 = views[1], views[0]
	}
	next[0] = ctx.In.View(views[0], r0)
	next[1] = ctx.In.View(views[1], r1)
	return 0, true
}

// deadStepper admits nothing.
type deadStepper struct{ binStepper }

func (deadStepper) Root() (int, bool) { return 0, false }

func runBoth(t *testing.T, st Stepper, r int) (Result, Result) {
	t.Helper()
	seq, _ := Run(st, r, Options{})
	par, _ := Run(st, r, Options{Parallel: true, Workers: 4, SplitDepth: 1})
	return seq, par
}

func TestEngineSequentialParallelAgree(t *testing.T) {
	for r := 0; r <= 6; r++ {
		seq, par := runBoth(t, binStepper{}, r)
		if seq != par {
			t.Fatalf("r=%d: sequential %+v != parallel %+v", r, seq, par)
		}
		if want := int64(4) * pow2(r); seq.Configs != want {
			t.Fatalf("r=%d: Configs=%d want %d", r, seq.Configs, want)
		}
		if !seq.Exhaustive {
			t.Fatalf("r=%d: not exhaustive", r)
		}
	}
}

func pow2(r int) int64 {
	return int64(1) << r
}

func TestEngineDropChainsNeverSolvable(t *testing.T) {
	// The all-drop history keeps every input assignment mutually
	// indistinguishable for the receiver-less processes... actually with
	// this toy stepper the all-drop chain gives each process a view
	// depending only on its own input, so configs 00 and 01 share
	// process 0's vertex, 01 and 11 share process 1's vertex: one big
	// component containing both unanimous configs. Never solvable.
	for r := 1; r <= 5; r++ {
		res, _ := Run(binStepper{}, r, Options{Parallel: true, Workers: 3})
		if res.Solvable {
			t.Fatalf("r=%d: expected unsolvable, got %+v", r, res)
		}
		if res.MixedComponents == 0 {
			t.Fatalf("r=%d: expected a mixed component", r)
		}
	}
}

func TestEngineEarlyExit(t *testing.T) {
	res, _ := Run(binStepper{}, 6, Options{Parallel: true, Workers: 4, EarlyExit: true})
	if res.Solvable {
		t.Fatal("expected unsolvable")
	}
	if res.Exhaustive && res.Configs == 4*64 {
		// Early exit may legitimately finish the whole tree on a tiny
		// instance, but it must still report the right verdict; nothing
		// more to assert here.
		t.Log("early exit completed full tree (tiny instance)")
	}
}

func TestEngineEmptyRoot(t *testing.T) {
	res, g := Run(deadStepper{}, 3, Options{BuildGraph: true})
	if !res.Solvable || !res.Exhaustive || res.Configs != 0 || res.Components != 0 {
		t.Fatalf("empty root: %+v", res)
	}
	if g == nil || g.NumVertices() != 0 {
		t.Fatalf("empty root graph: %+v", g)
	}
}

func TestEngineZeroRounds(t *testing.T) {
	// r=0: four configs, each a clique over two initial-view vertices.
	// Vertices: (0, init0), (0, init1), (1, init0), (1, init1).
	res, g := Run(binStepper{}, 0, Options{BuildGraph: true})
	if res.Configs != 4 || res.Vertices != 4 {
		t.Fatalf("r=0: %+v", res)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("graph vertices = %d", g.NumVertices())
	}
	seen := 0
	g.EachVertex(func(proc, view int, has0, has1 bool) {
		seen++
		if view != InitView(0) && view != InitView(1) {
			t.Fatalf("unexpected vertex view %d", view)
		}
	})
	if seen != 4 {
		t.Fatalf("EachVertex visited %d", seen)
	}
}

func TestInternerAbsorb(t *testing.T) {
	shared := NewInterner(nil)
	a := shared.View(InitView(0), -1)
	child := NewInterner(shared)
	// Hit on the parent: no new id.
	if got := child.View(InitView(0), -1); got != a {
		t.Fatalf("child parent-hit = %d want %d", got, a)
	}
	b := child.View(InitView(1), a)
	tup := child.Tuple([]int{a, b, -1})
	c := child.View(a, tup)
	trans := shared.absorb(child)
	// Canonical ids must resolve to the same structures.
	wantB := shared.View(InitView(1), a)
	if trans[b-child.base] != wantB {
		t.Fatalf("b translated to %d want %d", trans[b-child.base], wantB)
	}
	wantTup := shared.Tuple([]int{a, wantB, -1})
	if trans[tup-child.base] != wantTup {
		t.Fatalf("tuple translated to %d want %d", trans[tup-child.base], wantTup)
	}
	if got, want := trans[c-child.base], shared.View(a, wantTup); got != want {
		t.Fatalf("c translated to %d want %d", got, want)
	}
}

func TestInternerTwoChildrenConverge(t *testing.T) {
	shared := NewInterner(nil)
	c1 := NewInterner(shared)
	c2 := NewInterner(shared)
	x1 := c1.View(InitView(0), InitView(1))
	x2 := c2.View(InitView(0), InitView(1))
	t1 := shared.absorb(c1)
	t2 := shared.absorb(c2)
	if t1[x1-c1.base] != t2[x2-c2.base] {
		t.Fatalf("same view canonicalized differently: %d vs %d",
			t1[x1-c1.base], t2[x2-c2.base])
	}
}

func TestCompUFFlags(t *testing.T) {
	var u compUF
	a, b, c := u.add(), u.add(), u.add()
	u.mark(a, flagHas0)
	u.mark(b, flagHas1)
	if u.mixed != 0 || u.roots != 3 {
		t.Fatalf("pre-union: mixed=%d roots=%d", u.mixed, u.roots)
	}
	u.union(a, b)
	if u.mixed != 1 || u.roots != 2 {
		t.Fatalf("post-union: mixed=%d roots=%d", u.mixed, u.roots)
	}
	u.union(b, c) // absorbing an unflagged singleton keeps mixed count
	if u.mixed != 1 || u.roots != 1 {
		t.Fatalf("post-union2: mixed=%d roots=%d", u.mixed, u.roots)
	}
	u.mark(c, flagHas0) // already mixed: no double count
	if u.mixed != 1 {
		t.Fatalf("re-mark: mixed=%d", u.mixed)
	}
}

func TestCompUFMergeTwoMixed(t *testing.T) {
	var u compUF
	a, b := u.add(), u.add()
	u.mark(a, flagMixed)
	u.mark(b, flagMixed)
	if u.mixed != 2 {
		t.Fatalf("mixed=%d", u.mixed)
	}
	u.union(a, b)
	if u.mixed != 1 || u.roots != 1 {
		t.Fatalf("merged: mixed=%d roots=%d", u.mixed, u.roots)
	}
}

// Sanity: the abort flag type used by walk is the atomic one (compile
// guard against accidental plain-bool regressions).
var _ atomic.Bool

// panicStepper panics once a worker reaches depth ≥ 2.
type panicStepper struct{ binStepper }

func (s panicStepper) Step(ctx *Ctx, state, a int, views, next []int) (int, bool) {
	if state >= 1 {
		panic("stepper exploded")
	}
	s.binStepper.Step(ctx, state, a, views, next)
	return state + 1, true
}

func TestRunCheckedStepperPanicIsolated(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		_, _, err := RunChecked(context.Background(), panicStepper{}, 4,
			Options{Parallel: parallel, Workers: 4, SplitDepth: 1})
		if err == nil {
			t.Fatalf("parallel=%v: panicking Stepper returned no error", parallel)
		}
		if !strings.Contains(err.Error(), "stepper exploded") {
			t.Fatalf("parallel=%v: error lost the panic value: %v", parallel, err)
		}
	}
	// Run (the panicking facade) must still propagate.
	defer func() {
		if recover() == nil {
			t.Error("Run should panic when the Stepper does")
		}
	}()
	Run(panicStepper{}, 4, Options{})
}

func TestRunCheckedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []bool{false, true} {
		res, _, err := RunChecked(ctx, binStepper{}, 8, Options{Parallel: parallel, Workers: 2, SplitDepth: 1})
		if err == nil {
			t.Fatalf("parallel=%v: cancelled run returned no error", parallel)
		}
		if res.Exhaustive {
			t.Fatalf("parallel=%v: cancelled run claims exhaustive analysis", parallel)
		}
	}
}
