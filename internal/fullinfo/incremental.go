package fullinfo

import (
	"context"
	"fmt"
	"time"
)

// Engine is the resumable form of Run. Where Run rebuilds the whole
// admissible-history tree for every horizon, an Engine keeps the
// interner and the leaf frontier alive between calls: the frontier at
// horizon r is exactly the node set that horizon r+1 grows from, so
// Extend performs one round of growth plus one leaf scan instead of a
// from-scratch walk. MinRounds-style searches (solvable at 0? at 1? …)
// become linear in the final tree instead of quadratic in its levels.
//
// The Engine is sequential and single-goroutine: Options.Parallel,
// Workers, SplitDepth, and BuildGraph are ignored. Options.EarlyExit
// truncates only the leaf scan (never frontier growth, which later
// rounds depend on), so Solvable stays exact while unsolvable horizons
// are abandoned at the first mixed component. Options.Observer receives
// one Stats snapshot per Extend/ExtendTo call.
//
// An Engine is not safe for concurrent use. After a Stepper panic the
// engine is poisoned and every later call returns the same error; after
// a context cancellation the engine is left at its previous horizon and
// the call may simply be retried.
type Engine struct {
	st   Stepper
	opt  Options
	sctx *Ctx

	n, na, all1 int
	horizon     int

	// Frontier at the current horizon, parallel slices: automaton
	// state, input-assignment bitmask, and n flat view ids per node.
	states []int
	inputs []int32
	views  []int

	err error
}

// ctx poll strides: how many nodes are processed between context
// checks while growing the frontier and while scanning leaves.
const (
	growPollStride = 1024
	scanPollStride = 4096
)

// NewEngine returns an engine positioned at horizon 0 (the frontier is
// the 2^n input-assignment roots, or empty when the Stepper admits no
// history at all).
func NewEngine(st Stepper, opt Options) *Engine {
	n := st.NumProcs()
	e := &Engine{
		st:   st,
		opt:  opt,
		sctx: &Ctx{In: NewInterner(nil)},
		n:    n,
		na:   st.NumActions(),
		all1: 1<<n - 1,
	}
	if start, ok := st.Root(); ok {
		for inputs := 0; inputs < 1<<n; inputs++ {
			e.states = append(e.states, start)
			e.inputs = append(e.inputs, int32(inputs))
			for i := 0; i < n; i++ {
				e.views = append(e.views, InitView((inputs>>i)&1))
			}
		}
	}
	return e
}

// Horizon returns the round horizon of the live frontier.
func (e *Engine) Horizon() int { return e.horizon }

// FrontierLen returns the number of live frontier nodes.
func (e *Engine) FrontierLen() int { return len(e.states) }

// Extend grows the frontier by one round and analyzes the new horizon.
func (e *Engine) Extend(ctx context.Context) (Result, error) {
	return e.ExtendTo(ctx, e.horizon+1)
}

// ExtendTo grows the frontier to horizon r (which must not be below the
// current horizon; r equal to the current horizon just re-scans, which
// is how horizon 0 is analyzed) and returns the analysis there.
func (e *Engine) ExtendTo(ctx context.Context, r int) (Result, error) {
	if e.err != nil {
		return Result{}, e.err
	}
	if r < e.horizon {
		return Result{}, fmt.Errorf("fullinfo: ExtendTo(%d) below current horizon %d", r, e.horizon)
	}
	start := time.Now()
	startIDs := e.sctx.In.NumIDs()
	rounds := r - e.horizon
	for e.horizon < r {
		if err := e.grow(ctx); err != nil {
			return Result{}, err
		}
	}
	res, err := e.scan(ctx)
	if err != nil {
		return Result{}, err
	}
	if e.opt.Observer != nil {
		e.opt.Observer(Stats{
			Horizon:         e.horizon,
			Rounds:          rounds,
			Configs:         res.Configs,
			Vertices:        res.Vertices,
			Components:      res.Components,
			MixedComponents: res.MixedComponents,
			Merges:          res.Vertices - res.Components,
			ViewsInterned:   e.sctx.In.NumIDs(),
			NewViews:        e.sctx.In.NumIDs() - startIDs,
			Workers:         1,
			Subtrees:        len(e.states),
			WallNanos:       time.Since(start).Nanoseconds(),
		})
	}
	return res, nil
}

// grow advances the frontier one round. The new frontier is committed
// only on success: a context cancellation leaves the engine retryable
// at its previous horizon, while a Stepper panic poisons it.
func (e *Engine) grow(ctx context.Context) error {
	n, na := e.n, e.na
	nodes := len(e.states)
	nextStates := make([]int, 0, nodes*na)
	nextInputs := make([]int32, 0, nodes*na)
	nextViews := make([]int, 0, nodes*na*n)
	nv := make([]int, n)
	err := func() (err error) {
		defer recoverStepper(&err)
		for i := 0; i < nodes; i++ {
			if i%growPollStride == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			vs := e.views[i*n : (i+1)*n]
			for a := 0; a < na; a++ {
				ns, ok := e.st.Step(e.sctx, e.states[i], a, vs, nv)
				if !ok {
					continue
				}
				nextStates = append(nextStates, ns)
				nextInputs = append(nextInputs, e.inputs[i])
				nextViews = append(nextViews, nv...)
			}
		}
		return nil
	}()
	if err != nil {
		if ctx.Err() == nil {
			e.err = err // Stepper panic: state is suspect, poison.
		}
		return err
	}
	e.states, e.inputs, e.views = nextStates, nextInputs, nextViews
	e.horizon++
	return nil
}

// scan streams the live frontier's leaf configurations into a fresh
// union-find and reports the component structure at the current
// horizon. Vertices are resolved through a dense (view, process) table
// rather than a hash map: frontier view ids are interner-dense, so the
// table costs one slice of size (NumIDs+3)·n (+3 covers the sentinel
// initial views, which reach down to InitView(1) = -3).
func (e *Engine) scan(ctx context.Context) (Result, error) {
	n := e.n
	uf := &compUF{}
	vert := make([]int32, (e.sctx.In.NumIDs()+3)*n)
	vertex := func(proc, view int) int32 {
		slot := &vert[(view+3)*n+proc]
		if *slot == 0 {
			*slot = uf.add() + 1
		}
		return *slot - 1
	}
	var configs int64
	exhaustive := true
	for i := 0; i < len(e.states); i++ {
		if i%scanPollStride == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		vs := e.views[i*n : (i+1)*n]
		configs++
		root := uf.find(vertex(0, vs[0]))
		for p := 1; p < n; p++ {
			root = uf.union(root, vertex(p, vs[p]))
		}
		switch e.inputs[i] {
		case 0:
			uf.mark(root, flagHas0)
		case int32(e.all1):
			uf.mark(root, flagHas1)
		}
		if e.opt.EarlyExit && uf.mixed > 0 {
			exhaustive = false
			break
		}
	}
	return Result{
		Configs:         configs,
		Vertices:        len(uf.parent),
		Components:      uf.roots,
		MixedComponents: uf.mixed,
		Solvable:        uf.mixed == 0,
		Exhaustive:      exhaustive,
	}, nil
}
